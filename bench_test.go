// Benchmarks regenerating the paper's evaluation, one benchmark family per
// figure (see DESIGN.md §4 for the index, and cmd/ibrfigs for the
// full-duration sweeps). Each sub-benchmark is one (scheme) line of the
// figure at a fixed thread count; throughput is the benchmark's ns/op (and
// an explicit Mops/s metric), and the Fig. 9/10 space metric is reported as
// "retired-blocks".
//
// Run with: go test -bench=. -benchmem
package ibr

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ibr/internal/core"
	"ibr/internal/ds"
)

// benchThreads is the worker count used by the figure benches. The paper
// sweeps 1..100 threads; a testing.B bench needs one representative point,
// and cmd/ibrfigs does the full sweep.
const benchThreads = 4

var (
	generalSchemes = []string{"none", "ebr", "hp", "he", "tagibr", "tagibr-faa", "tagibr-wcas", "2geibr"}
	bonsaiSchemes  = []string{"none", "ebr", "poibr", "tagibr", "tagibr-faa", "tagibr-wcas", "2geibr"}
)

// benchCell drives b.N operations of the paper's write- or read-dominated
// mix against a prefilled structure, spread over benchThreads goroutines.
func benchCell(b *testing.B, structure, scheme string, keyRange uint64, readPct int, emptyFreq int) {
	b.Helper()
	m, err := ds.NewMap(structure, ds.Config{
		Scheme: scheme,
		Core:   core.Options{Threads: benchThreads, EmptyFreq: emptyFreq},
	})
	if err != nil {
		b.Fatal(err)
	}
	pairs := make([]ds.KV, 0, keyRange*3/4)
	for k := uint64(0); k < keyRange; k++ {
		if k%4 != 3 {
			pairs = append(pairs, ds.KV{Key: k, Val: k})
		}
	}
	// Shuffle: an ascending prefill would degenerate the unbalanced
	// Natarajan–Mittal tree into a path.
	shuf := splitmix(7)
	for i := len(pairs) - 1; i > 0; i-- {
		j := int(shuf.next() % uint64(i+1))
		pairs[i], pairs[j] = pairs[j], pairs[i]
	}
	m.Fill(pairs)

	var (
		spaceSum   atomic.Int64
		spaceCount atomic.Int64
	)
	perThread := b.N / benchThreads
	scheme2 := m.(ds.Instrumented).Scheme()
	b.ResetTimer()
	var wg sync.WaitGroup
	for tid := 0; tid < benchThreads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			n := perThread
			if tid == 0 {
				n += b.N - perThread*benchThreads
			}
			s := splitmix(uint64(tid) + 1)
			var localSum, localCnt int64
			for i := 0; i < n; i++ {
				localSum += int64(scheme2.Unreclaimed(tid))
				localCnt++
				key := s.next() % keyRange
				r := s.next() % 100
				switch {
				case int(r) < readPct:
					m.Get(tid, key)
				case s.next()%2 == 0:
					m.Insert(tid, key, key)
				default:
					m.Remove(tid, key)
				}
			}
			spaceSum.Add(localSum)
			spaceCount.Add(localCnt)
		}(tid)
	}
	wg.Wait()
	b.StopTimer()
	if spaceCount.Load() > 0 {
		avgPerThread := float64(spaceSum.Load()) / float64(spaceCount.Load())
		b.ReportMetric(avgPerThread*benchThreads, "retired-blocks")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops/s")
}

// BenchmarkFig8a / Fig9a: Harris–Michael list, write-dominated. The list's
// long traversals are where TagIBR's fence-free reads beat HP hardest. The
// key range is 4096 (not the paper's 65536) to keep per-op cost sane inside
// testing.B; cmd/ibrfigs runs the full range.
func BenchmarkFig8aList(b *testing.B) {
	for _, s := range generalSchemes {
		b.Run(s, func(b *testing.B) { benchCell(b, "list", s, 4096, 0, 0) })
	}
}

// BenchmarkFig8b / Fig9b: Michael hash map, write-dominated, full key range.
func BenchmarkFig8bHashMap(b *testing.B) {
	for _, s := range generalSchemes {
		b.Run(s, func(b *testing.B) { benchCell(b, "hashmap", s, 65536, 0, 0) })
	}
}

// BenchmarkFig8c / Fig9c: Natarajan–Mittal tree, write-dominated.
func BenchmarkFig8cNMTree(b *testing.B) {
	for _, s := range generalSchemes {
		b.Run(s, func(b *testing.B) { benchCell(b, "nmtree", s, 65536, 0, 0) })
	}
}

// BenchmarkFig8d / Fig9d: Bonsai tree, write-dominated; POIBR replaces the
// pointer-based schemes (§5).
func BenchmarkFig8dBonsai(b *testing.B) {
	for _, s := range bonsaiSchemes {
		b.Run(s, func(b *testing.B) { benchCell(b, "bonsai", s, 8192, 0, 0) })
	}
}

// BenchmarkFig10 is the read-dominated (90% lookup) Natarajan–Mittal run
// whose space metric is Fig. 10.
func BenchmarkFig10NMTreeReadDom(b *testing.B) {
	for _, s := range []string{"ebr", "hp", "he", "tagibr", "tagibr-faa", "tagibr-wcas", "2geibr"} {
		b.Run(s, func(b *testing.B) { benchCell(b, "nmtree", s, 65536, 90, 0) })
	}
}

// BenchmarkEmptyFreqSweep is the §5 tuning experiment: throughput should
// stay roughly flat for 1 <= k <= 50 while the retired-blocks metric grows
// about linearly in k.
func BenchmarkEmptyFreqSweep(b *testing.B) {
	for _, k := range []int{1, 10, 30, 50} {
		b.Run(fmt.Sprintf("tagibr/k=%d", k), func(b *testing.B) {
			benchCell(b, "hashmap", "tagibr", 16384, 0, k)
		})
	}
}

// BenchmarkReadPrimitive isolates the per-read instrumentation cost of each
// scheme — the mechanism behind the whole Fig. 8 ranking: EBR and the IBRs
// read with at most one local comparison, HP pays a fenced store + re-read
// on every pointer hop.
func BenchmarkReadPrimitive(b *testing.B) {
	for _, name := range core.Names() {
		if !ds.SchemeSupports(name, "list") {
			continue // poibr: the list is not persistent
		}
		b.Run(name, func(b *testing.B) {
			m, err := ds.NewMap("list", ds.Config{Scheme: name, Core: core.Options{Threads: 1}})
			if err != nil {
				b.Fatal(err)
			}
			l := m.(*ds.List)
			var pairs []ds.KV
			for k := uint64(0); k < 64; k++ {
				pairs = append(pairs, ds.KV{Key: k, Val: k})
			}
			l.Fill(pairs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Get(0, uint64(i)%64) // ~32 protected reads per call
			}
		})
	}
}

// BenchmarkAllocRetire isolates the allocation + retirement + scan path:
// the write-side overhead of each scheme.
func BenchmarkAllocRetire(b *testing.B) {
	for _, name := range []string{"ebr", "hp", "he", "poibr", "tagibr", "tagibr-wcas", "2geibr"} {
		b.Run(name, func(b *testing.B) {
			st, err := ds.NewStack(ds.Config{Scheme: name, Core: core.Options{Threads: 1}})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Push(0, uint64(i))
				st.Pop(0)
			}
		})
	}
}

type sm struct{ s uint64 }

func splitmix(seed uint64) *sm { return &sm{s: seed} }
func (r *sm) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
