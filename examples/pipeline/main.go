// pipeline: Michael–Scott queues as stages of a processing pipeline.
//
// Three stages (parse → transform → aggregate) connected by two lock-free
// queues, with every stage's dequeues retiring the old dummy nodes through
// 2GEIBR — the highest-retire-rate pattern in this repository (one retire
// per successful dequeue). The example verifies end-to-end conservation
// and prints the reclamation books: allocations equal frees after the
// final drain, even though nodes were freed concurrently with traffic.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ibr"
)

const (
	producers = 2
	stage2ers = 2
	stage3ers = 2
	perProd   = 40_000
)

func main() {
	threads := producers + stage2ers + stage3ers
	q1, err := ibr.NewQueue(ibr.Config{Scheme: "2geibr", Threads: threads})
	if err != nil {
		panic(err)
	}
	q2, err := ibr.NewQueue(ibr.Config{Scheme: "2geibr", Threads: threads})
	if err != nil {
		panic(err)
	}

	var (
		wg        sync.WaitGroup
		stage1Sum atomic.Uint64
		stage3Sum atomic.Uint64
		prodDone  atomic.Int32
		xformDone atomic.Int32
		consumed  atomic.Uint64
	)

	// Stage 1: producers push raw values.
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			defer prodDone.Add(1)
			for i := 1; i <= perProd; i++ {
				v := uint64(tid*perProd + i)
				for !q1.Enqueue(tid, v) {
				}
				stage1Sum.Add(v * 3) // expected post-transform checksum
			}
		}(p)
	}
	// Stage 2: transform (×3) and forward.
	for s := 0; s < stage2ers; s++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			defer xformDone.Add(1)
			for {
				v, ok := q1.Dequeue(tid)
				if !ok {
					if prodDone.Load() == producers && q1.Len() == 0 {
						return
					}
					continue
				}
				for !q2.Enqueue(tid, v*3) {
				}
			}
		}(producers + s)
	}
	// Stage 3: aggregate.
	for c := 0; c < stage3ers; c++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				v, ok := q2.Dequeue(tid)
				if ok {
					stage3Sum.Add(v)
					consumed.Add(1)
					continue
				}
				if xformDone.Load() == stage2ers && q2.Len() == 0 {
					return
				}
			}
		}(producers + stage2ers + c)
	}
	wg.Wait()

	ibr.Drain(q1, threads)
	ibr.Drain(q2, threads)
	s1, s2 := q1.PoolStats(), q2.PoolStats()
	fmt.Printf("items through pipeline: %d (want %d)\n", consumed.Load(), producers*perProd)
	fmt.Printf("checksum in  %d\nchecksum out %d\n", stage1Sum.Load(), stage3Sum.Load())
	fmt.Printf("queue1 books: %d allocated, %d freed, %d live (dummy)\n", s1.Allocs, s1.Frees, s1.Live())
	fmt.Printf("queue2 books: %d allocated, %d freed, %d live (dummy)\n", s2.Allocs, s2.Frees, s2.Live())
	if stage1Sum.Load() != stage3Sum.Load() || consumed.Load() != producers*perProd {
		panic("pipeline lost or corrupted items")
	}
	if s1.Live() != 1 || s2.Live() != 1 {
		panic("queue nodes leaked")
	}
	fmt.Println("conservation holds; every dequeued node was reclaimed in flight")
}
