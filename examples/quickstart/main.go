// Quickstart: a concurrent hash map under interval-based reclamation.
//
// Eight goroutines (one per thread id) hammer a shared map with inserts,
// removals and lookups while TagIBR reclaims detached nodes behind them.
// At the end we print the allocator's books: everything retired has been
// freed, and live slots equal the surviving entries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"ibr"
)

func main() {
	const threads = 8

	m, err := ibr.NewMap("hashmap", ibr.Config{Scheme: "tagibr", Threads: threads})
	if err != nil {
		panic(err)
	}

	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			base := uint64(tid) * 1_000_000
			// Insert a block of keys, read them back, remove half.
			for k := uint64(0); k < 10_000; k++ {
				m.Insert(tid, base+k, k*k)
			}
			for k := uint64(0); k < 10_000; k++ {
				if v, ok := m.Get(tid, base+k); !ok || v != k*k {
					panic(fmt.Sprintf("lost update: key %d", base+k))
				}
			}
			for k := uint64(0); k < 10_000; k += 2 {
				m.Remove(tid, base+k)
			}
		}(tid)
	}
	wg.Wait()

	// Release the bounded residue the in-flight reservations were holding.
	ibr.Drain(m.(ibr.Instrumented), threads)

	keys := m.Keys()
	st := m.(ibr.Instrumented).PoolStats()
	fmt.Printf("entries remaining: %d\n", len(keys))
	fmt.Printf("allocator: %d allocated, %d freed, %d live slots\n",
		st.Allocs, st.Frees, st.Live())
	fmt.Printf("reclamation scheme: %s (robust: %v)\n",
		m.(ibr.Instrumented).Scheme().Name(), m.(ibr.Instrumented).Scheme().Robust())
}
