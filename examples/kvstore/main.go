// kvstore: a session-cache workload — the kind of "library of concurrent
// data structures" use case the paper's introduction motivates.
//
// A web tier stores session tokens in a shared map: logins insert, logouts
// remove, requests look up. The example runs the same workload under every
// applicable reclamation scheme and prints a comparison table: throughput,
// average retired-but-unreclaimed nodes (the space a scheme lets pile up),
// and the final allocator books. The ranking reproduces the paper's Fig. 8b
// in miniature: EBR fastest, IBRs within a few percent, HP trailing.
//
//	go run ./examples/kvstore [-sessions 65536] [-threads 8] [-ms 300]
package main

import (
	"flag"
	"fmt"
	"time"

	"ibr"
)

func main() {
	sessions := flag.Uint64("sessions", 65536, "session id space")
	threads := flag.Int("threads", 8, "concurrent request workers")
	ms := flag.Int("ms", 300, "milliseconds per scheme")
	flag.Parse()

	fmt.Printf("session cache: %d ids, %d workers, %dms per scheme\n\n",
		*sessions, *threads, *ms)
	fmt.Printf("%-12s %12s %16s %12s\n", "scheme", "Mops/s", "avg retired", "live slots")

	for _, scheme := range ibr.Schemes() {
		if !ibr.Supports(scheme, "hashmap") {
			continue
		}
		res, err := ibr.RunBench(ibr.BenchConfig{
			Structure: "hashmap",
			Scheme:    scheme,
			Threads:   *threads,
			Duration:  time.Duration(*ms) * time.Millisecond,
			KeyRange:  *sessions,
			Prefill:   0.75,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12s %12.3f %16.1f %12d\n",
			scheme, res.Mops, res.AvgRetired, res.Live)
	}

	fmt.Println("\nNoMM ('none') leaks every logout; EBR reclaims fastest but one")
	fmt.Println("stalled worker would pin unbounded memory; the IBR rows get both:")
	fmt.Println("EBR-class speed and a robust bound (see examples/stallrobust).")
}
