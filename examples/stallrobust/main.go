// stallrobust: the paper's headline property, live.
//
// One worker thread is "preempted" mid-operation — it publishes a
// reservation and parks, exactly what happens when an OS deschedules a
// thread inside a data-structure operation (the paper's oversubscribed
// regime, Fig. 9 beyond 72 threads). Meanwhile other workers churn a hash
// map.
//
// Under EBR the parked reservation pins EVERY block retired after it:
// memory grows for as long as the thread sleeps. Under TagIBR/2GEIBR the
// frozen interval covers only blocks born before its upper endpoint — a
// bounded set (Theorem 2) — so memory stays flat. That is the definition of
// a robust scheme, and the reason to pick IBR when threads outnumber cores.
//
//	go run ./examples/stallrobust [-stallms 200]
package main

import (
	"flag"
	"fmt"
	"time"

	"ibr"
)

func main() {
	stallMS := flag.Int("stallms", 200, "how long the preempted thread sleeps")
	keys := flag.Uint64("keys", 2048, "key range (the structure size bounds what IBR can pin)")
	flag.Parse()

	fmt.Printf("2 workers churning, 1 thread parked holding its reservation for %dms\n\n", *stallMS)
	fmt.Printf("%-12s %-8s %18s %14s\n", "scheme", "robust", "avg retired blocks", "Mops/s")

	for _, scheme := range []string{"ebr", "hp", "he", "tagibr", "tagibr-wcas", "2geibr"} {
		res, err := ibr.RunBench(ibr.BenchConfig{
			Structure: "hashmap",
			Scheme:    scheme,
			Threads:   2,
			Stalled:   1,
			StallFor:  time.Duration(*stallMS) * time.Millisecond,
			Duration:  time.Duration(4*(*stallMS)) * time.Millisecond,
			KeyRange:  *keys,
		})
		if err != nil {
			panic(err)
		}
		m, _ := ibr.NewMap("hashmap", ibr.Config{Scheme: scheme, Threads: 1})
		robust := m.(ibr.Instrumented).Scheme().Robust()
		fmt.Printf("%-12s %-8v %18.1f %14.3f\n", scheme, robust, res.AvgRetired, res.Mops)
	}

	fmt.Println("\nEBR pins every block retired after the stalled epoch — growing with")
	fmt.Println("stall time without bound. Each IBR pins at most the blocks alive at the")
	fmt.Println("stalled epoch (Theorem 2): bounded by the structure size, however long")
	fmt.Println("the stall. HP pins at most its hazard slots. Try -stallms 1000.")
}
