// pstack: persistent-object IBR on a Treiber stack.
//
// A work-crew drains a shared LIFO of "tasks" while producers keep pushing
// — the §3.1 scenario: the stack is persistent (immutable below the top),
// so POIBR's single instrumented root read protects every node an operation
// can reach, with no per-pointer work at all.
//
// The example verifies task conservation (every value pushed is popped
// exactly once) and shows POIBR reclaiming popped nodes concurrently.
//
//	go run ./examples/pstack
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ibr"
)

func main() {
	const (
		producers = 3
		consumers = 4
		perProd   = 50_000
	)
	threads := producers + consumers

	st, err := ibr.NewStack(ibr.Config{Scheme: "poibr", Threads: threads})
	if err != nil {
		panic(err)
	}

	var (
		wg       sync.WaitGroup
		pushed   atomic.Uint64
		popped   atomic.Uint64
		sumIn    atomic.Uint64
		sumOut   atomic.Uint64
		prodDone atomic.Int32
	)

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			defer prodDone.Add(1)
			for i := 0; i < perProd; i++ {
				task := uint64(tid)*perProd + uint64(i) + 1
				for !st.Push(tid, task) {
				}
				pushed.Add(1)
				sumIn.Add(task)
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				if v, ok := st.Pop(tid); ok {
					popped.Add(1)
					sumOut.Add(v)
					continue
				}
				if prodDone.Load() == producers && st.Len() == 0 {
					return
				}
			}
		}(producers + c)
	}
	wg.Wait()

	// At quiescence, drain the residue that active reservations were
	// protecting (on an oversubscribed box that residue can be the whole
	// standing structure — descheduled goroutines hold reservations, and
	// Theorem 2's bound covers every block born before them).
	ibr.Drain(st, threads)

	stats := st.PoolStats()
	fmt.Printf("tasks pushed:  %d (checksum %d)\n", pushed.Load(), sumIn.Load())
	fmt.Printf("tasks popped:  %d (checksum %d)\n", popped.Load(), sumOut.Load())
	fmt.Printf("allocator:     %d allocated, %d freed, %d live\n",
		stats.Allocs, stats.Frees, stats.Live())
	if sumIn.Load() != sumOut.Load() || pushed.Load() != popped.Load() {
		panic("task conservation violated")
	}
	fmt.Println("conservation holds; POIBR reclaimed the popped nodes concurrently")
}
