package ibr

import (
	"context"

	"ibr/internal/mem"
	"ibr/internal/obs"
	"ibr/internal/server"
)

// This file is the public face of the serving layer: the sharded engine,
// the TCP server, and the pipelined context-aware client, re-exported so
// applications embed the KV service without importing internal packages.
// cmd/ibrd and cmd/ibrload are thin wrappers over exactly this surface.

// Engine is the sharded KV engine (see internal/server): tid-leased
// workers over per-shard IBR structures, with stall quarantine and
// watermark admission control built in.
type Engine = server.Engine

// EngineConfig sizes an Engine; the zero value of every field selects a
// sensible default.
type EngineConfig = server.EngineConfig

// Server is the TCP front end over an Engine.
type Server = server.Server

// ServerConfig tunes the connection front end.
type ServerConfig = server.ServerConfig

// Client is a pipelined, context-aware connection to a served Engine.
type Client = server.Client

// ClientOption configures a Client at dial time (see WithRetry).
type ClientOption = server.ClientOption

// RetryPolicy shapes a retrying client's jittered exponential backoff on
// StatusBusy responses (see WithRetry).
type RetryPolicy = server.RetryPolicy

// Request is one typed operation — the unit of Client.DoContext and
// Engine.SubmitRequest. Optional fields (KeyHi, TTL, Limit, TraceID) are
// zero for ops that don't use them.
type Request = server.Request

// Response is one operation's result; Pairs is set only for Range.
type Response = server.Response

// Pair is one key→value result of a Range scan.
type Pair = server.Pair

// Op is a wire operation code; Status a wire response code.
type (
	Op     = server.Op
	Status = server.Status
)

// Resp is the former name of Response.
//
// Deprecated: use Response.
type Resp = server.Resp

// ObsOptions tunes the engine's observability layer (EngineConfig.Obs).
type ObsOptions = obs.Options

// SchemeObs is a per-structure scheme observer (Config.Obs); build one
// with NewSchemeObs when embedding the library without the engine.
type SchemeObs = obs.SchemeObs

// SchemeObsConfig configures NewSchemeObs.
type SchemeObsConfig = obs.SchemeObsConfig

// NewSchemeObs builds a scheme observer for Config.Obs.
func NewSchemeObs(cfg SchemeObsConfig) *SchemeObs { return obs.NewSchemeObs(cfg) }

// Wire operation and status codes, re-exported verbatim.
const (
	OpPing  = server.OpPing
	OpGet   = server.OpGet
	OpPut   = server.OpPut
	OpDel   = server.OpDel
	OpRange = server.OpRange

	StatusOK          = server.StatusOK
	StatusNotFound    = server.StatusNotFound
	StatusExists      = server.StatusExists
	StatusBusy        = server.StatusBusy
	StatusShutdown    = server.StatusShutdown
	StatusBadRequest  = server.StatusBadRequest
	StatusInternal    = server.StatusInternal
	StatusUnsupported = server.StatusUnsupported
)

// Typed sentinels, all errors.Is-comparable:
//
//   - ErrBusy: a shard queue was full, or a retrying client ran out of
//     attempts against busy responses — transient overload, retry with
//     backoff.
//   - ErrShedding: a shard is refusing work while its unreclaimed backlog
//     sits above the hard watermark; also transient, but caused by
//     reclamation lag rather than request volume.
//   - ErrClosed: the engine (or client) is shut down — permanent.
//   - ErrPoolExhausted: a node pool ran out of slots; the serving path
//     converts it to StatusBusy instead of failing.
var (
	ErrBusy          = server.ErrBusy
	ErrShedding      = server.ErrShedding
	ErrClosed        = server.ErrClosed
	ErrPoolExhausted = mem.ErrPoolExhausted
)

// NewEngine builds the shards and starts the workers, stallers, and the
// remediation loop.
func NewEngine(cfg EngineConfig) (*Engine, error) { return server.NewEngine(cfg) }

// NewServer wraps an Engine in the TCP front end.
func NewServer(e *Engine, cfg ServerConfig) *Server { return server.NewServer(e, cfg) }

// DialServer connects a Client to a served Engine. Options configure the
// client — notably WithRetry, which makes DoContext transparently retry
// StatusBusy responses.
func DialServer(addr string, opts ...ClientOption) (*Client, error) {
	return server.Dial(addr, opts...)
}

// WithRetry makes a Client's DoContext transparently retry StatusBusy
// responses under p with jittered exponential backoff.
func WithRetry(p RetryPolicy) ClientOption { return server.WithRetry(p) }

// WithTraceID returns a context carrying a causal trace ID; Client.DoContext
// sends it in the request frame and the serving worker records the op's
// execution span under it (see /debug/trace). 0 means untraced.
func WithTraceID(ctx context.Context, id uint64) context.Context {
	return server.WithTraceID(ctx, id)
}

// TraceIDFrom returns the trace ID carried by ctx (0 = untraced).
func TraceIDFrom(ctx context.Context) uint64 { return server.TraceIDFrom(ctx) }
