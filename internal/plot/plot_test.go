package plot

import (
	"strings"
	"testing"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "fig8b — throughput",
		XLabel: "threads",
		YLabel: "M ops/s",
		Series: []Series{
			{Name: "ebr", X: []float64{1, 2, 4}, Y: []float64{7.4, 2.7, 2.7}},
			{Name: "tagibr", X: []float64{1, 2, 4}, Y: []float64{6.7, 2.6, 2.2}},
		},
	}
}

func TestSVGWellFormedBasics(t *testing.T) {
	svg := sampleChart().SVG()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "ebr", "tagibr", "threads", "M ops/s",
		"fig8b",
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<svg") != 1 || strings.Count(svg, "</svg>") != 1 {
		t.Fatal("unbalanced svg tags")
	}
}

func TestSVGEscapesText(t *testing.T) {
	c := sampleChart()
	c.Title = "a<b & c>d"
	svg := c.SVG()
	if strings.Contains(svg, "a<b") {
		t.Fatal("unescaped < in title")
	}
	if !strings.Contains(svg, "a&lt;b &amp; c&gt;d") {
		t.Fatal("escaped title missing")
	}
}

func TestLogYSkipsNonPositive(t *testing.T) {
	c := &Chart{
		LogY: true,
		Series: []Series{
			{Name: "s", X: []float64{1, 2, 3}, Y: []float64{0, 10, 100}},
		},
	}
	svg := c.SVG()
	// Only 2 positive points: the polyline has exactly two coordinates.
	if !strings.Contains(svg, "polyline") {
		t.Fatal("no polyline for positive points")
	}
}

func TestEmptyChartDoesNotPanic(t *testing.T) {
	c := &Chart{Title: "empty"}
	if svg := c.SVG(); !strings.Contains(svg, "</svg>") {
		t.Fatal("empty chart produced invalid SVG")
	}
}

func TestSingleValueRanges(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "p", X: []float64{5}, Y: []float64{42}}}}
	if svg := c.SVG(); !strings.Contains(svg, "</svg>") {
		t.Fatal("degenerate ranges broke rendering")
	}
}

func TestTicksAreRound(t *testing.T) {
	for _, tc := range []struct{ lo, hi float64 }{
		{0, 10}, {0, 1}, {3, 97000}, {-5, 5}, {0.001, 0.009},
	} {
		ts := ticks(tc.lo, tc.hi, 6)
		if len(ts) < 2 || len(ts) > 14 {
			t.Fatalf("ticks(%v,%v) produced %d ticks: %v", tc.lo, tc.hi, len(ts), ts)
		}
		for _, v := range ts {
			if v < tc.lo-1e-9 || v > tc.hi+1e-9 {
				t.Fatalf("tick %v outside [%v,%v]", v, tc.lo, tc.hi)
			}
		}
	}
}

func TestFmtNum(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		7:       "7",
		1500:    "1.5k",
		2500000: "2.5M",
		0.25:    "0.25",
	}
	for in, want := range cases {
		if got := fmtNum(in); got != want {
			t.Errorf("fmtNum(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestReadHarnessCSV(t *testing.T) {
	csvData := `experiment,structure,workload,scheme,threads,stalled,emptyfreq,duration_ms,ops,mops,avg_retired,allocs,frees,live
fig8b,hashmap,write,ebr,1,0,0,250,1000,7.4,104.5,5000,4000,1000
fig8b,hashmap,write,ebr,4,0,0,250,900,2.7,25502.2,5000,4000,1000
fig8b,hashmap,write,tagibr,1,0,0,250,950,6.7,73.4,5000,4000,1000
`
	rows, err := ReadHarnessCSV(strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1].Scheme != "ebr" || rows[1].Threads != 4 || rows[1].Space != 25502.2 {
		t.Fatalf("row 1 = %+v", rows[1])
	}
	c := BuildFigure("fig8b", "mops", rows)
	if len(c.Series) != 2 {
		t.Fatalf("%d series, want 2 (ebr, tagibr)", len(c.Series))
	}
	if c.LogY {
		t.Fatal("throughput chart must be linear")
	}
	cs := BuildFigure("fig8b", "space", rows)
	if !cs.LogY {
		t.Fatal("space chart must be log")
	}
	if cs.Series[0].Y[1] != 25502.2 {
		t.Fatalf("space series = %+v", cs.Series[0])
	}
}

func TestReadHarnessCSVErrors(t *testing.T) {
	if _, err := ReadHarnessCSV(strings.NewReader("a,b\n")); err == nil {
		t.Fatal("missing columns accepted")
	}
	if _, err := ReadHarnessCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty file accepted")
	}
	bad := "experiment,structure,workload,scheme,threads,stalled,emptyfreq,duration_ms,ops,mops,avg_retired,allocs,frees,live\nx,h,w,ebr,NOPE,0,0,1,1,1,1,1,1,1\n"
	if _, err := ReadHarnessCSV(strings.NewReader(bad)); err == nil {
		t.Fatal("malformed row accepted")
	}
}

func TestBuildFigureKsweepAxis(t *testing.T) {
	rows := []Row{
		{Scheme: "ebr", Threads: 4, Mops: 1, Space: 10, Empty: 30},
		{Scheme: "ebr", Threads: 4, Mops: 2, Space: 20, Empty: 1},
	}
	c := BuildFigure("ksweep", "mops", rows)
	if c.XLabel != "empty frequency k" {
		t.Fatalf("xlabel = %q", c.XLabel)
	}
	// Sorted by emptyfreq: 1 before 30.
	if c.Series[0].X[0] != 1 || c.Series[0].X[1] != 30 {
		t.Fatalf("ksweep x = %v", c.Series[0].X)
	}
}
