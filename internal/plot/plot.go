// Package plot renders simple SVG line charts with the Go standard library
// only. It stands in for the R script the paper's artifact uses to draw
// Figs. 8–10: one chart per figure, one series per reclamation scheme,
// thread count on the x axis.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one line on a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a renderable line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// LogY selects a log10 y axis (useful for space plots whose series
	// span orders of magnitude).
	LogY bool
	// Width and Height are the SVG canvas size; zero selects 860×520.
	Width, Height int
}

// palette holds line colors (ColorBrewer-ish, readable on white).
var palette = []string{
	"#1b9e77", "#d95f02", "#7570b3", "#e7298a", "#66a61e",
	"#e6ab02", "#a6761d", "#666666", "#1f78b4", "#b2182b",
}

// markers are per-series point glyphs so lines stay distinguishable in
// grayscale.
var markers = []string{"circle", "square", "diamond", "triangle", "circle", "square", "diamond", "triangle", "circle", "square"}

// SVG renders the chart.
func (c *Chart) SVG() string {
	w, h := c.Width, c.Height
	if w == 0 {
		w = 860
	}
	if h == 0 {
		h = 520
	}
	const (
		marginL = 80
		marginR = 170
		marginT = 50
		marginB = 60
	)
	plotW := float64(w - marginL - marginR)
	plotH := float64(h - marginT - marginB)

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			y := s.Y[i]
			if c.LogY && y <= 0 {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if math.IsInf(minX, 1) { // no data
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	if c.LogY {
		minY = math.Log10(minY)
		maxY = math.Log10(maxY)
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	// pad y range 5%
	pad := (maxY - minY) * 0.05
	minY -= pad
	maxY += pad

	xPix := func(x float64) float64 { return float64(marginL) + (x-minX)/(maxX-minX)*plotW }
	yVal := func(y float64) float64 {
		if c.LogY {
			return math.Log10(y)
		}
		return y
	}
	yPix := func(y float64) float64 { return float64(marginT) + (1-(y-minY)/(maxY-minY))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="28" font-family="sans-serif" font-size="16" font-weight="bold">%s</text>`+"\n", marginL, esc(c.Title))

	// Axes frame.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#333" stroke-width="1"/>`+"\n",
		marginL, marginT, plotW, plotH)

	// Y ticks.
	for _, t := range ticks(minY, maxY, 6) {
		py := yPix(t)
		label := t
		if c.LogY {
			label = math.Pow(10, t)
		}
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", marginL, py, float64(marginL)+plotW, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, py+4, fmtNum(label))
	}
	// X ticks at the observed thread counts (dedup across series).
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range c.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		px := xPix(x)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333"/>`+"\n",
			px, float64(marginT)+plotH, px, float64(marginT)+plotH+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px, float64(marginT)+plotH+18, fmtNum(x))
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle">%s</text>`+"\n",
		float64(marginL)+plotW/2, h-14, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="18" y="%.1f" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 18 %.1f)">%s</text>`+"\n",
		float64(marginT)+plotH/2, float64(marginT)+plotH/2, esc(c.YLabel))

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			if c.LogY && s.Y[i] <= 0 {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xPix(s.X[i]), yPix(yVal(s.Y[i]))))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for i := range s.X {
			if c.LogY && s.Y[i] <= 0 {
				continue
			}
			writeMarker(&b, markers[si%len(markers)], xPix(s.X[i]), yPix(yVal(s.Y[i])), color)
		}
		// Legend entry.
		ly := marginT + 8 + si*20
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1.8"/>`+"\n",
			w-marginR+12, ly, w-marginR+36, ly, color)
		writeMarker(&b, markers[si%len(markers)], float64(w-marginR+24), float64(ly), color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			w-marginR+42, ly+4, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func writeMarker(b *strings.Builder, kind string, x, y float64, color string) {
	const r = 3.2
	switch kind {
	case "square":
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n", x-r, y-r, 2*r, 2*r, color)
	case "diamond":
		fmt.Fprintf(b, `<path d="M%.1f %.1f L%.1f %.1f L%.1f %.1f L%.1f %.1f Z" fill="%s"/>`+"\n",
			x, y-r*1.3, x+r*1.3, y, x, y+r*1.3, x-r*1.3, y, color)
	case "triangle":
		fmt.Fprintf(b, `<path d="M%.1f %.1f L%.1f %.1f L%.1f %.1f Z" fill="%s"/>`+"\n",
			x, y-r*1.3, x+r*1.2, y+r, x-r*1.2, y+r, color)
	default:
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, color)
	}
}

// ticks picks ~n round tick values covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	span := hi - lo
	if span <= 0 || n < 2 {
		return []float64{lo}
	}
	raw := span / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi; t += step {
		out = append(out, t)
	}
	return out
}

// fmtNum renders a tick label compactly.
func fmtNum(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	case av == math.Trunc(av):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
