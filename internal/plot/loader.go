package plot

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Row is one benchmark cell parsed from a harness CSV.
type Row struct {
	Scheme  string
	Threads int
	Mops    float64
	Space   float64
	Empty   int // emptyfreq (x axis of the ksweep figure)
}

// ReadHarnessCSV parses the CSV written by cmd/ibrfigs / cmd/ibrbench.
func ReadHarnessCSV(r io.Reader) ([]Row, error) {
	records, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("plot: no data rows")
	}
	col := map[string]int{}
	for i, name := range records[0] {
		col[name] = i
	}
	for _, want := range []string{"scheme", "threads", "mops", "avg_retired"} {
		if _, ok := col[want]; !ok {
			return nil, fmt.Errorf("plot: missing column %q", want)
		}
	}
	var rows []Row
	for _, rec := range records[1:] {
		threads, err1 := strconv.Atoi(rec[col["threads"]])
		mops, err2 := strconv.ParseFloat(rec[col["mops"]], 64)
		space, err3 := strconv.ParseFloat(rec[col["avg_retired"]], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("plot: bad row %v", rec)
		}
		row := Row{Scheme: rec[col["scheme"]], Threads: threads, Mops: mops, Space: space}
		if i, ok := col["emptyfreq"]; ok {
			row.Empty, _ = strconv.Atoi(rec[i])
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BuildFigure turns parsed rows into a chart for one metric ("mops" or
// "space"). Figures whose name contains "ksweep" use the empty-frequency
// column as the x axis; space charts use a log y axis.
func BuildFigure(name, metric string, rows []Row) *Chart {
	c := &Chart{
		Title:  fmt.Sprintf("%s — %s", name, map[string]string{"mops": "throughput", "space": "retired-but-unreclaimed blocks"}[metric]),
		XLabel: "threads",
		YLabel: map[string]string{"mops": "M ops/s", "space": "avg retired blocks"}[metric],
		LogY:   metric == "space",
	}
	ksweep := strings.Contains(name, "ksweep")
	if ksweep {
		c.XLabel = "empty frequency k"
	}
	bySeries := map[string][]Row{}
	var order []string
	for _, r := range rows {
		if _, ok := bySeries[r.Scheme]; !ok {
			order = append(order, r.Scheme)
		}
		bySeries[r.Scheme] = append(bySeries[r.Scheme], r)
	}
	for _, scheme := range order {
		rs := bySeries[scheme]
		sort.Slice(rs, func(i, j int) bool {
			if ksweep {
				return rs[i].Empty < rs[j].Empty
			}
			return rs[i].Threads < rs[j].Threads
		})
		s := Series{Name: scheme}
		for _, r := range rs {
			x := float64(r.Threads)
			if ksweep {
				x = float64(r.Empty)
			}
			y := r.Mops
			if metric == "space" {
				y = r.Space
			}
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
		}
		c.Series = append(c.Series, s)
	}
	return c
}
