package harness

import (
	"strings"
	"testing"
	"time"
)

func quick(t *testing.T, cfg Config) Result {
	t.Helper()
	if cfg.Duration == 0 {
		cfg.Duration = 30 * time.Millisecond
	}
	if cfg.KeyRange == 0 {
		cfg.KeyRange = 512
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunBasics(t *testing.T) {
	r := quick(t, Config{Structure: "hashmap", Scheme: "ebr", Threads: 2})
	if r.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if r.Mops <= 0 {
		t.Fatal("non-positive throughput")
	}
	if len(r.PerThreadOps) != 2 {
		t.Fatalf("PerThreadOps has %d entries, want 2", len(r.PerThreadOps))
	}
	if r.Allocs == 0 {
		t.Fatal("no allocations recorded (prefill should allocate)")
	}
}

func TestRunAllStructuresAllSchemes(t *testing.T) {
	for _, structure := range []string{"list", "hashmap", "nmtree", "bonsai"} {
		for _, scheme := range []string{"none", "ebr", "hp", "he", "poibr", "tagibr", "tagibr-faa", "tagibr-wcas", "2geibr"} {
			cfg := Config{Structure: structure, Scheme: scheme, Threads: 2,
				Duration: 15 * time.Millisecond, KeyRange: 256}
			if _, err := cfg.withDefaults(); err != nil {
				continue // unsupported combination: validated separately
			}
			t.Run(structure+"/"+scheme, func(t *testing.T) {
				if r := quick(t, cfg); r.Ops == 0 {
					t.Fatal("no operations completed")
				}
			})
		}
	}
}

func TestRunRejectsUnsupportedPairs(t *testing.T) {
	for _, c := range []Config{
		{Structure: "list", Scheme: "poibr", Threads: 1},
		{Structure: "bonsai", Scheme: "hp", Threads: 1},
		{Structure: "bonsai", Scheme: "he", Threads: 1},
		{Structure: "", Scheme: "ebr"},
		{Structure: "hashmap", Scheme: ""},
	} {
		if _, err := Run(c); err == nil {
			t.Errorf("Run(%+v) should have failed", c)
		}
	}
}

func TestRunPrefillFraction(t *testing.T) {
	r := quick(t, Config{Structure: "hashmap", Scheme: "none", Threads: 1,
		KeyRange: 4096, Prefill: 0.75, Duration: 10 * time.Millisecond})
	// Prefill allocates one node per inserted key; with NoMM nothing is
	// freed, so allocs >= prefill size.
	if r.Allocs < 2800 { // E[prefill] = 3072; allow slack
		t.Fatalf("allocs %d, expected roughly 3072 prefill nodes", r.Allocs)
	}
}

func TestRunDeterministicPrefill(t *testing.T) {
	a := quick(t, Config{Structure: "hashmap", Scheme: "none", Threads: 1,
		KeyRange: 1024, Seed: 7, Duration: 5 * time.Millisecond})
	b := quick(t, Config{Structure: "hashmap", Scheme: "none", Threads: 1,
		KeyRange: 1024, Seed: 7, Duration: 5 * time.Millisecond})
	// Same seed → same prefill; ops differ (timing) but the prefill
	// allocation count must match exactly before workers start. We can't
	// observe that directly post-run, so compare a stronger proxy: the
	// number of distinct keys sampled is identical because both runs use
	// the same generator. Weak but deterministic: prefill count parity via
	// Live for NoMM minus op allocations is noisy, so just require both
	// runs completed ops.
	if a.Ops == 0 || b.Ops == 0 {
		t.Fatal("runs made no progress")
	}
}

// TestStalledThreadSpaceBlowup is the executable form of the paper's
// headline robustness claim (Fig. 9 beyond 72 threads): with stalled
// threads holding reservations, EBR's retired-but-unreclaimed count grows
// far beyond any IBR's.
func TestStalledThreadSpaceBlowup(t *testing.T) {
	// Long stalls relative to the run keep the contrast visible even when
	// the race detector slows churn ~10x: EBR's pile grows with
	// retire-rate × stall-time, the IBRs' is bounded by the (small)
	// structure, so the ratio survives any uniform slowdown.
	run := func(scheme string) Result {
		return quick(t, Config{
			Structure: "hashmap", Scheme: scheme, Threads: 2,
			Stalled: 2, StallFor: 150 * time.Millisecond,
			Duration: 400 * time.Millisecond, KeyRange: 1024,
		})
	}
	ebr := run("ebr")
	tag := run("tagibr")
	twoge := run("2geibr")
	if ebr.AvgRetired < 2*tag.AvgRetired {
		t.Errorf("EBR avg retired %.1f not >> TagIBR %.1f under stalls", ebr.AvgRetired, tag.AvgRetired)
	}
	if ebr.AvgRetired < 2*twoge.AvgRetired {
		t.Errorf("EBR avg retired %.1f not >> 2GEIBR %.1f under stalls", ebr.AvgRetired, twoge.AvgRetired)
	}
}

func TestExperimentsIndex(t *testing.T) {
	exps := Experiments()
	if len(exps) < 7 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		ids[e.ID] = true
		if len(e.Schemes) == 0 || len(e.Threads) == 0 {
			t.Errorf("experiment %s has empty sweep", e.ID)
		}
		for _, s := range e.Schemes {
			if !dsSupports(s, e.Structure) {
				t.Errorf("experiment %s lists unsupported scheme %s", e.ID, s)
			}
		}
	}
	for _, want := range []string{"fig8a", "fig8b", "fig8c", "fig8d", "fig10", "ksweep", "stall"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func dsSupports(scheme, structure string) bool {
	cfg := Config{Structure: structure, Scheme: scheme, Threads: 1}
	_, err := cfg.withDefaults()
	return err == nil
}

func TestExperimentAliases(t *testing.T) {
	for alias, wantID := range map[string]string{
		"fig9a": "fig8a", "9c": "fig8c", "8b": "fig8b", "10": "fig10", "k": "ksweep",
	} {
		e, err := ExperimentByID(alias)
		if err != nil || e.ID != wantID {
			t.Errorf("ExperimentByID(%q) = %v, %v; want %s", alias, e.ID, err, wantID)
		}
	}
	if _, err := ExperimentByID("fig99"); err == nil {
		t.Error("unknown experiment id did not error")
	}
}

func TestCellsExpansion(t *testing.T) {
	e, _ := ExperimentByID("fig8b")
	cells := e.Cells(50*time.Millisecond, []int{1, 2})
	if len(cells) != 2*len(e.Schemes) {
		t.Fatalf("got %d cells, want %d", len(cells), 2*len(e.Schemes))
	}
	for _, c := range cells {
		if c.Duration != 50*time.Millisecond || c.Structure != "hashmap" {
			t.Fatalf("bad cell %+v", c)
		}
	}
	k, _ := ExperimentByID("ksweep")
	cells = k.Cells(time.Millisecond, nil)
	if len(cells) != len(k.Schemes)*len(k.EmptyFreqs) {
		t.Fatalf("ksweep: got %d cells, want %d", len(cells), len(k.Schemes)*len(k.EmptyFreqs))
	}
}

func TestCSVOutput(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSVHeader(&sb); err != nil {
		t.Fatal(err)
	}
	r := quick(t, Config{Structure: "hashmap", Scheme: "tagibr", Threads: 1})
	if err := WriteCSVRow(&sb, "fig8b", r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if got, want := len(strings.Split(lines[1], ",")), len(strings.Split(CSVHeader, ",")); got != want {
		t.Fatalf("row has %d fields, header %d", got, want)
	}
	if !strings.HasPrefix(lines[1], "fig8b,hashmap,write,tagibr,1,") {
		t.Fatalf("unexpected row prefix: %s", lines[1])
	}
}

func TestSeriesTable(t *testing.T) {
	var rs []Result
	for _, th := range []int{1, 2} {
		for _, s := range []string{"ebr", "tagibr"} {
			r := quick(t, Config{Structure: "hashmap", Scheme: s, Threads: th,
				Duration: 5 * time.Millisecond})
			rs = append(rs, r)
		}
	}
	var sb strings.Builder
	Series(&sb, "test", "mops", rs)
	out := sb.String()
	for _, want := range []string{"ebr", "tagibr", "scheme\\thr"} {
		if !strings.Contains(out, want) {
			t.Fatalf("series table missing %q:\n%s", want, out)
		}
	}
	Series(&sb, "test", "space", rs)
}

func TestXrandDistinctStreams(t *testing.T) {
	a, b := newRand(1), newRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.next() == b.next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent seeds produced %d/100 identical outputs", same)
	}
	f := newRand(3).float()
	if f < 0 || f >= 1 {
		t.Fatalf("float() = %v out of [0,1)", f)
	}
}

// TestXrandKeyOpIndependence is the regression test for a subtle workload
// bug: with the original xorshift64* generator, the op-selection bit was a
// deterministic function of the key draw, so every key was permanently
// paired with insert-only or remove-only and the benchmark degenerated into
// ~100% failed operations. With SplitMix64, every key must see both ops.
func TestXrandKeyOpIndependence(t *testing.T) {
	r := newRand(1)
	opsSeen := map[uint64]int{}
	for i := 0; i < 300000; i++ {
		key := r.next() % 2048
		if r.next()%2 == 0 {
			opsSeen[key] |= 1
		} else {
			opsSeen[key] |= 2
		}
	}
	stuck := 0
	for _, m := range opsSeen {
		if m != 3 {
			stuck++
		}
	}
	if stuck > 0 {
		t.Fatalf("%d of %d keys saw only one op type: key/op correlation is back", stuck, len(opsSeen))
	}
}

// TestWorkloadReachesSteadyState checks the benchmark actually churns: in a
// write-dominated run, successful inserts (hence allocations) must be a
// significant fraction of operations, not a vanishing one.
func TestWorkloadReachesSteadyState(t *testing.T) {
	r := quick(t, Config{Structure: "hashmap", Scheme: "ebr", Threads: 1,
		KeyRange: 4096, Duration: 100 * time.Millisecond})
	workerAllocs := float64(r.Allocs) // includes ~3072 prefill
	if workerAllocs < float64(r.Ops)/10 {
		t.Fatalf("only %.0f allocs for %d ops: workload degenerated", workerAllocs, r.Ops)
	}
}

// TestOutcomeCounters checks the op-outcome accounting: counters must sum
// to Ops, and a steady-state write-dominated run must succeed a healthy
// fraction of its updates (the churn regression guard, structural version).
func TestOutcomeCounters(t *testing.T) {
	r := quick(t, Config{Structure: "hashmap", Scheme: "ebr", Threads: 2,
		KeyRange: 2048, Duration: 80 * time.Millisecond})
	sum := r.InsertOK + r.InsertFail + r.RemoveOK + r.RemoveFail + r.GetHit + r.GetMiss
	if sum != r.Ops {
		t.Fatalf("outcome counters sum to %d, ops = %d", sum, r.Ops)
	}
	if r.GetHit+r.GetMiss != 0 {
		t.Fatal("write-dominated run recorded reads")
	}
	if ok := float64(r.InsertOK+r.RemoveOK) / float64(r.Ops); ok < 0.2 {
		t.Fatalf("only %.1f%% of updates succeeded: degenerate workload", ok*100)
	}
	rd := quick(t, Config{Structure: "hashmap", Scheme: "ebr", Threads: 2,
		Workload: ReadDominated, KeyRange: 2048, Duration: 50 * time.Millisecond})
	reads := rd.GetHit + rd.GetMiss
	if frac := float64(reads) / float64(rd.Ops); frac < 0.85 || frac > 0.95 {
		t.Fatalf("read fraction %.2f, want ~0.90", frac)
	}
}

// TestSpaceSeriesShowsStallGrowth records the space-vs-time curve with a
// mid-run staller: EBR's curve must climb well past its stall-free level,
// and the series machinery must produce ordered, plausible samples.
func TestSpaceSeries(t *testing.T) {
	s, err := RunSpaceSeries(Config{
		Structure: "hashmap", Scheme: "ebr", Threads: 2,
		Stalled: 1, StallFor: 40 * time.Millisecond,
		Duration: 120 * time.Millisecond, KeyRange: 2048,
	}, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) < 10 {
		t.Fatalf("only %d samples", len(s.Points))
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].T <= s.Points[i-1].T {
			t.Fatal("samples not time-ordered")
		}
	}
	max := 0
	for _, p := range s.Points {
		if p.Retired > max {
			max = p.Retired
		}
	}
	if max < 1000 {
		t.Fatalf("peak retired %d; stall did not inflate EBR's curve", max)
	}
	var sb strings.Builder
	if err := WriteSpaceSeriesCSV(&sb, s); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != len(s.Points)+1 {
		t.Fatalf("CSV has %d lines, want %d", lines, len(s.Points)+1)
	}
}

func TestLatencyHistogram(t *testing.T) {
	var h LatencyHist
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	for i := 0; i < 900; i++ {
		h.Record(100 * time.Nanosecond)
	}
	for i := 0; i < 100; i++ {
		h.Record(100 * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if p50 := h.Quantile(0.5); p50 > time.Microsecond {
		t.Fatalf("p50 = %v, want sub-microsecond", p50)
	}
	if p999 := h.Quantile(0.999); p999 < 50*time.Microsecond {
		t.Fatalf("p999 = %v, want >= 50µs", p999)
	}
	var h2 LatencyHist
	h2.Record(time.Millisecond)
	h.Merge(&h2)
	if h.Count() != 1001 {
		t.Fatal("merge lost counts")
	}
	if h.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestRunWithLatency(t *testing.T) {
	r := quick(t, Config{Structure: "hashmap", Scheme: "tagibr", Threads: 2,
		KeyRange: 1024, Duration: 50 * time.Millisecond, MeasureLatency: true})
	if r.Latency == nil || r.Latency.Count() == 0 {
		t.Fatal("no latency samples recorded")
	}
	if r.Latency.Count() != r.Ops {
		t.Fatalf("latency samples %d != ops %d", r.Latency.Count(), r.Ops)
	}
	if p50 := r.Latency.Quantile(0.5); p50 <= 0 || p50 > time.Second {
		t.Fatalf("implausible p50 %v", p50)
	}
	// Default runs must not allocate a histogram.
	r2 := quick(t, Config{Structure: "hashmap", Scheme: "tagibr", Threads: 1})
	if r2.Latency != nil {
		t.Fatal("latency measured without opt-in")
	}
}

func TestScanStatsSurface(t *testing.T) {
	r := quick(t, Config{Structure: "hashmap", Scheme: "ebr", Threads: 2,
		KeyRange: 1024, Duration: 60 * time.Millisecond})
	if r.Scans == 0 || r.ScanFreed == 0 {
		t.Fatalf("no scan work recorded: %+v", r)
	}
	if r.ScanMeanLen <= 0 {
		t.Fatal("mean scan length not computed")
	}
	n := quick(t, Config{Structure: "hashmap", Scheme: "none", Threads: 1,
		Duration: 10 * time.Millisecond})
	if n.Scans != 0 {
		t.Fatal("NoMM reported scans")
	}
}
