package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// CSVHeader is the column list of the result format (the artifact's
// "table in csv format").
const CSVHeader = "experiment,structure,workload,scheme,threads,stalled,emptyfreq,duration_ms,ops,mops,avg_retired,allocs,frees,live"

// WriteCSVHeader emits the header line.
func WriteCSVHeader(w io.Writer) error {
	_, err := fmt.Fprintln(w, CSVHeader)
	return err
}

// WriteCSVRow emits one result as a CSV line.
func WriteCSVRow(w io.Writer, experiment string, r Result) error {
	_, err := fmt.Fprintf(w, "%s,%s,%s,%s,%d,%d,%d,%d,%d,%.6f,%.2f,%d,%d,%d\n",
		experiment, r.Structure, r.Workload, r.Scheme, r.Threads, r.Stalled,
		r.EmptyFreq, r.Duration.Milliseconds(), r.Ops, r.Mops, r.AvgRetired,
		r.Allocs, r.Frees, r.Live)
	return err
}

// Series renders an ASCII table of one metric across the (scheme × threads)
// grid — the stand-in for the artifact's R plots. metric selects "mops" or
// "space".
func Series(w io.Writer, title, metric string, results []Result) {
	fmt.Fprintf(w, "# %s (%s)\n", title, metric)
	schemes := make([]string, 0)
	threads := make([]int, 0)
	seenS := map[string]bool{}
	seenT := map[int]bool{}
	for _, r := range results {
		if !seenS[r.Scheme] {
			seenS[r.Scheme] = true
			schemes = append(schemes, r.Scheme)
		}
		if !seenT[r.Threads] {
			seenT[r.Threads] = true
			threads = append(threads, r.Threads)
		}
	}
	sort.Ints(threads)
	cell := map[string]float64{}
	for _, r := range results {
		v := r.Mops
		if metric == "space" {
			v = r.AvgRetired
		}
		cell[fmt.Sprintf("%s/%d", r.Scheme, r.Threads)] = v
	}
	fmt.Fprintf(w, "%-14s", "scheme\\thr")
	for _, t := range threads {
		fmt.Fprintf(w, "%12d", t)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 14+12*len(threads)))
	for _, s := range schemes {
		fmt.Fprintf(w, "%-14s", s)
		for _, t := range threads {
			if v, ok := cell[fmt.Sprintf("%s/%d", s, t)]; ok {
				fmt.Fprintf(w, "%12.4f", v)
			} else {
				fmt.Fprintf(w, "%12s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}
