package harness

import (
	"fmt"
	"io"
	"time"

	"ibr/internal/ds"
)

// SpacePoint is one sample of the global retired-but-unreclaimed count.
type SpacePoint struct {
	T       time.Duration // since workload start
	Retired int           // Σ Unreclaimed over all threads
}

// SpaceSeries is the space-vs-time curve of one run.
type SpaceSeries struct {
	Config Config
	Points []SpacePoint
}

// RunSpaceSeries runs one benchmark cell while a sampler goroutine records
// the global retired-block count at a fixed interval. It renders the
// paper's robustness story as a time series: start a run with a stalled
// thread and watch EBR's curve climb for exactly as long as the stall
// lasts while the IBR curves plateau at the Theorem 2 bound.
//
// The sampler reads each thread's padded counter; its cost is negligible
// next to the workload.
func RunSpaceSeries(cfg Config, sampleEvery time.Duration) (SpaceSeries, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return SpaceSeries{}, err
	}
	if sampleEvery <= 0 {
		sampleEvery = 5 * time.Millisecond
	}
	out := SpaceSeries{Config: cfg}

	// Reuse Run's machinery by sampling from a sibling goroutine: Run owns
	// the workload; we poll the scheme through the structure it exposes.
	// To coordinate, we inline a reduced copy of Run's setup.
	done := make(chan error, 1)
	ready := make(chan ds.Instrumented, 1)
	go func() {
		res, err := runWithHook(cfg, func(inst ds.Instrumented) { ready <- inst })
		_ = res
		done <- err
	}()
	inst := <-ready
	scheme := inst.Scheme()
	start := time.Now()
	ticker := time.NewTicker(sampleEvery)
	defer ticker.Stop()
	for {
		select {
		case err := <-done:
			return out, err
		case <-ticker.C:
			total := 0
			for tid := 0; tid < cfg.Threads+cfg.Stalled; tid++ {
				total += scheme.Unreclaimed(tid)
			}
			out.Points = append(out.Points, SpacePoint{T: time.Since(start), Retired: total})
		}
	}
}

// runWithHook is Run with a callback that exposes the structure as soon as
// prefill completes (before workers start).
func runWithHook(cfg Config, hook func(ds.Instrumented)) (Result, error) {
	cfg.onReady = hook
	return Run(cfg)
}

// WriteSpaceSeriesCSV emits "ms,retired" rows.
func WriteSpaceSeriesCSV(w io.Writer, s SpaceSeries) error {
	if _, err := fmt.Fprintln(w, "ms,retired"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%.1f,%d\n", float64(p.T.Microseconds())/1000, p.Retired); err != nil {
			return err
		}
	}
	return nil
}
