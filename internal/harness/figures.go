package harness

import (
	"fmt"
	"time"
)

// Experiment is one of the paper's evaluation artifacts: a sweep of
// benchmark cells whose output regenerates a figure (or pair of figures:
// every throughput plot in Fig. 8 shares its cells with the space plot in
// Fig. 9, so one sweep yields both).
type Experiment struct {
	ID        string // e.g. "fig8a" (also covers fig9a)
	Title     string
	Structure string
	Workload  Workload
	Schemes   []string
	Threads   []int
	// KeyRange overrides the default 65536 (0 = default).
	KeyRange uint64
	// EmptyFreqs, when non-empty, sweeps the retire-scan frequency instead
	// of reading it from the config (the §5 tuning experiment).
	EmptyFreqs []int
	// Stalled workers per cell (the preempted-thread regime).
	Stalled int
}

// Paper scheme line-ups. Fig. 8a–c / 9a–c include the pointer-based
// schemes; the Bonsai tree panels swap HP/HE for POIBR (§5: "We didn't
// include precise approaches (HP and HE) for the Bonsai Tree").
var (
	generalSchemes = []string{"none", "ebr", "hp", "he", "tagibr", "tagibr-faa", "tagibr-wcas", "2geibr"}
	bonsaiSchemes  = []string{"none", "ebr", "poibr", "tagibr", "tagibr-faa", "tagibr-wcas", "2geibr"}
	spaceSchemes   = []string{"ebr", "hp", "he", "tagibr", "tagibr-faa", "tagibr-wcas", "2geibr"}
)

// DefaultThreads is the thread sweep used on this (single-CPU) testbed; the
// paper sweeps 1..100 over 72 hardware threads. Everything above
// GOMAXPROCS runs oversubscribed, which is the regime the paper's
// right-hand plot regions probe.
var DefaultThreads = []int{1, 2, 4, 8, 16, 32, 64, 96}

// Experiments returns the full per-figure index (see DESIGN.md §4).
func Experiments() []Experiment {
	return []Experiment{
		{
			ID: "fig8a", Title: "Harris-Michael list: throughput (Fig 8a) + space (Fig 9a), write-dominated",
			Structure: "list", Workload: WriteDominated,
			Schemes: generalSchemes, Threads: DefaultThreads,
			// The full 65536-key list makes each op traverse ~25k nodes; the
			// artifact uses the full range, and so do we.
		},
		{
			ID: "fig8b", Title: "Michael hash map: throughput (Fig 8b) + space (Fig 9b), write-dominated",
			Structure: "hashmap", Workload: WriteDominated,
			Schemes: generalSchemes, Threads: DefaultThreads,
		},
		{
			ID: "fig8c", Title: "Natarajan-Mittal tree: throughput (Fig 8c) + space (Fig 9c), write-dominated",
			Structure: "nmtree", Workload: WriteDominated,
			Schemes: generalSchemes, Threads: DefaultThreads,
		},
		{
			ID: "fig8d", Title: "Bonsai tree: throughput (Fig 8d) + space (Fig 9d), write-dominated",
			Structure: "bonsai", Workload: WriteDominated,
			Schemes: bonsaiSchemes, Threads: DefaultThreads,
		},
		{
			ID: "fig10", Title: "Natarajan-Mittal tree: space, read-dominated (Fig 10)",
			Structure: "nmtree", Workload: ReadDominated,
			Schemes: spaceSchemes, Threads: DefaultThreads,
		},
		{
			ID: "ksweep", Title: "§5 tuning: space vs empty-frequency k (throughput should stay flat, space ~linear)",
			Structure: "hashmap", Workload: WriteDominated,
			Schemes: []string{"ebr", "tagibr", "2geibr"}, Threads: []int{4},
			EmptyFreqs: []int{1, 5, 10, 20, 30, 50},
		},
		{
			ID: "stall", Title: "§4.3.1 robustness: space with 2 stalled threads (EBR unbounded, IBR/HP/HE bounded)",
			Structure: "hashmap", Workload: WriteDominated,
			Schemes: spaceSchemes, Threads: []int{2, 4, 8},
			// A small structure makes Theorem 2's bound visible: each IBR
			// can pin at most the blocks alive at the stalled epoch (~3k
			// here), while EBR pins every subsequent retirement.
			KeyRange: 4096,
			Stalled:  2,
		},
	}
}

// ExperimentByID finds an experiment ("fig8a", "fig9a" → the 8a sweep, …).
func ExperimentByID(id string) (Experiment, error) {
	alias := map[string]string{
		"fig9a": "fig8a", "fig9b": "fig8b", "fig9c": "fig8c", "fig9d": "fig8d",
		"8a": "fig8a", "8b": "fig8b", "8c": "fig8c", "8d": "fig8d",
		"9a": "fig8a", "9b": "fig8b", "9c": "fig8c", "9d": "fig8d",
		"10": "fig10", "k": "ksweep",
	}
	if canonical, ok := alias[id]; ok {
		id = canonical
	}
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

// Cells expands an experiment into concrete benchmark configs.
func (e Experiment) Cells(duration time.Duration, threadsOverride []int) []Config {
	threads := e.Threads
	if len(threadsOverride) > 0 {
		threads = threadsOverride
	}
	var out []Config
	for _, th := range threads {
		for _, s := range e.Schemes {
			base := Config{
				Structure: e.Structure,
				Scheme:    s,
				Threads:   th,
				Duration:  duration,
				Workload:  e.Workload,
				KeyRange:  e.KeyRange,
				Stalled:   e.Stalled,
			}
			if len(e.EmptyFreqs) == 0 {
				out = append(out, base)
				continue
			}
			for _, k := range e.EmptyFreqs {
				c := base
				c.EmptyFreq = k
				out = append(out, c)
			}
		}
	}
	return out
}
