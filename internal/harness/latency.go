package harness

import (
	"fmt"
	"math/bits"
	"time"
)

// LatencyHist is a log2-bucketed latency histogram: bucket i counts
// operations whose latency in nanoseconds satisfies 2^i <= ns < 2^(i+1).
// Recording is two instructions (bit-length + increment), cheap enough to
// leave on in benchmark workers.
type LatencyHist struct {
	buckets [48]uint64
	count   uint64
}

// Record adds one operation's duration.
func (h *LatencyHist) Record(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if ns == 0 {
		ns = 1
	}
	i := bits.Len64(ns) - 1
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.count++
}

// Merge folds other into h (used to combine per-worker histograms).
func (h *LatencyHist) Merge(other *LatencyHist) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.count += other.count
}

// Count returns the number of recorded operations.
func (h *LatencyHist) Count() uint64 { return h.count }

// Quantile returns an upper bound on the q-quantile latency (the top of
// the bucket containing it). q in [0,1].
func (h *LatencyHist) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			return time.Duration(uint64(1) << (i + 1)) // bucket upper bound
		}
	}
	return time.Duration(uint64(1) << len(h.buckets))
}

// String renders the histogram's headline quantiles.
func (h *LatencyHist) String() string {
	return fmt.Sprintf("n=%d p50<%v p99<%v p999<%v",
		h.count, h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999))
}
