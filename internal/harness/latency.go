package harness

import (
	"fmt"
	"math/bits"
	"time"
)

// LatencyHist is a log2-bucketed latency histogram: bucket i counts
// operations whose latency in nanoseconds satisfies 2^i <= ns < 2^(i+1).
// Recording is two instructions (bit-length + increment), cheap enough to
// leave on in benchmark workers.
type LatencyHist struct {
	buckets [48]uint64
	count   uint64
}

// Record adds one operation's duration.
func (h *LatencyHist) Record(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if ns == 0 {
		ns = 1
	}
	i := bits.Len64(ns) - 1
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.count++
}

// Merge folds other into h (used to combine per-worker histograms).
func (h *LatencyHist) Merge(other *LatencyHist) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.count += other.count
}

// Count returns the number of recorded operations.
func (h *LatencyHist) Count() uint64 { return h.count }

// Quantile estimates the q-quantile latency (q in [0,1]; values outside
// are clamped) by locating the bucket containing rank q·count and
// interpolating linearly inside it: bucket i spans [2^i, 2^(i+1)) ns (with
// bucket 0 starting at 1 ns, the recording floor). Quantile(0) is the
// lower bound of the fastest non-empty bucket, Quantile(1) the upper bound
// of the slowest, and the estimate is monotone in q.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.count)
	var seen float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= target {
			lo := float64(uint64(1) << i)
			hi := float64(uint64(1) << (i + 1))
			frac := (target - seen) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return time.Duration(lo + frac*(hi-lo))
		}
		seen += float64(c)
	}
	return time.Duration(uint64(1) << len(h.buckets))
}

// String renders the histogram's headline quantiles (interpolated
// estimates, hence the "~").
func (h *LatencyHist) String() string {
	return fmt.Sprintf("n=%d p50~%v p99~%v p999~%v",
		h.count, h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999))
}
