// Package harness implements the paper's fixed-time microbenchmark (§5 and
// artifact appendix A): threads hammer a shared key-value structure with a
// random operation mix over a random key range for a fixed wall-clock
// interval, measuring throughput and the average number of retired-but-
// unreclaimed blocks sampled at the start of each operation (the space
// metric of Fig. 9). Stall injection reproduces the oversubscribed /
// preempted-thread regime beyond the hardware thread count.
package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ibr/internal/core"
	"ibr/internal/ds"
	"ibr/internal/obs"
)

// Workload selects the operation mix of §5.
type Workload int

const (
	// WriteDominated is the paper's default: 50% insert / 50% remove.
	WriteDominated Workload = iota
	// ReadDominated is the §5 variant: 90% reads, 10% updates.
	ReadDominated
)

func (w Workload) String() string {
	if w == ReadDominated {
		return "read"
	}
	return "write"
}

// Config describes one benchmark cell (one point on a paper figure).
type Config struct {
	Structure string        // ds registry name: list, hashmap, nmtree, bonsai
	Scheme    string        // core registry name: none, ebr, hp, ...
	Threads   int           // worker count (may exceed GOMAXPROCS: oversubscription)
	Duration  time.Duration // fixed run time
	Workload  Workload
	KeyRange  uint64  // keys drawn uniformly from [0, KeyRange); default 65536
	Prefill   float64 // fraction of the key range inserted before timing; default 0.75
	EpochFreq int     // per-thread allocations per epoch bump; default 150
	EmptyFreq int     // retirements per retire-list scan; default 30 (paper's k)
	PoolSlots uint64  // node pool capacity; default mem.DefaultMaxSlots
	Buckets   int     // hash map buckets; default ds.DefaultBuckets
	Seed      int64   // RNG seed; default 1

	// Stalled is the number of additional "stalled" workers: each
	// repeatedly publishes a reservation (start_op), parks for StallFor,
	// then withdraws it — the paper's preempted thread. Stalled workers
	// perform no data-structure operations and are not counted in
	// throughput.
	Stalled  int
	StallFor time.Duration

	// MeasureLatency enables per-operation latency histograms (two
	// time.Now calls per op, ~2-5%% overhead; off by default).
	MeasureLatency bool

	// Obs, when set, runs the cell with the observability hooks live: a
	// flight recorder ring per thread plus the retire-age/scan-duration/
	// free-batch histograms (see internal/obs). The benchscan -obs cell uses
	// this to price the recording overhead against an uninstrumented run.
	Obs *obs.Options

	// onReady, when set, is called with the built structure right after
	// prefill, before workers start (used by RunSpaceSeries's sampler).
	onReady func(ds.Instrumented)
}

func (c Config) withDefaults() (Config, error) {
	if c.Structure == "" || c.Scheme == "" {
		return c, fmt.Errorf("harness: Structure and Scheme are required")
	}
	if !ds.SchemeSupports(c.Scheme, c.Structure) {
		return c, fmt.Errorf("harness: scheme %q cannot run structure %q", c.Scheme, c.Structure)
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.KeyRange == 0 {
		c.KeyRange = 65536
	}
	if c.Prefill == 0 {
		c.Prefill = 0.75
	}
	if c.Prefill < 0 || c.Prefill > 1 {
		return c, fmt.Errorf("harness: Prefill %v out of [0,1]", c.Prefill)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.StallFor == 0 {
		c.StallFor = time.Millisecond
	}
	return c, nil
}

// Result is one measured cell.
type Result struct {
	Config

	Ops        uint64        // completed operations (workers only)
	Mops       float64       // throughput in million operations per second
	Elapsed    time.Duration // measured wall time (workers running), not Config.Duration
	AvgRetired float64       // mean retired-but-unreclaimed blocks (global estimate)

	// Operation outcome counters: a healthy write-dominated run at steady
	// state succeeds ~50% of inserts and removes; a degenerate workload
	// (see the SplitMix64 note below) shows up immediately here.
	InsertOK, InsertFail uint64
	RemoveOK, RemoveFail uint64
	GetHit, GetMiss      uint64

	Allocs uint64 // allocator counters at the end of the run
	Frees  uint64
	Live   uint64

	// Latency is the merged per-op latency histogram; non-nil only when
	// Config.MeasureLatency was set.
	Latency *LatencyHist

	// Scan work performed by the reclamation scheme (zero for NoMM):
	// Scans is the number of empty() executions, ScanExamined the number of
	// retired blocks those scans examined (conflict tests actually run —
	// with the summarized scans this can be far below the retire-list
	// length), ScanMeanLen = ScanExamined/Scans — the per-retirement
	// overhead that lands on the critical path when every core is busy (see
	// EXPERIMENTS.md).
	Scans        uint64
	ScanExamined uint64
	ScanMeanLen  float64
	ScanFreed    uint64
	// Whole-bucket scan decisions: buckets kept (skips) or freed wholesale
	// by one corner test each, without touching their blocks.
	ScanBucketSkips uint64
	ScanBucketFrees uint64

	PerThreadOps []uint64
}

// worker-local accumulators, padded against false sharing.
type workerStat struct {
	_          [64]byte
	ops        uint64
	spaceSum   uint64 // Σ own-unreclaimed sampled at op start
	spaceCount uint64
	insOK      uint64
	insFail    uint64
	remOK      uint64
	remFail    uint64
	getHit     uint64
	getMiss    uint64
	lat        LatencyHist
	_          [64]byte
}

// Run executes one benchmark cell and returns its measurements.
func Run(cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	totalThreads := cfg.Threads + cfg.Stalled
	var schemeObs *obs.SchemeObs
	if cfg.Obs != nil {
		o := cfg.Obs.WithDefaults()
		schemeObs = obs.NewSchemeObs(obs.SchemeObsConfig{
			Threads:     totalThreads,
			Recorder:    obs.NewRecorder(totalThreads, o.RingSize),
			RetireAge:   &obs.Hist{},
			ScanDur:     &obs.Hist{},
			FreeBatch:   &obs.Hist{},
			SampleEvery: o.SampleEvery,
		})
	}
	m, err := ds.NewMap(cfg.Structure, ds.Config{
		Scheme: cfg.Scheme,
		Core: core.Options{
			Threads:   totalThreads,
			EpochFreq: cfg.EpochFreq,
			EmptyFreq: cfg.EmptyFreq,
			Obs:       schemeObs,
		},
		PoolSlots: cfg.PoolSlots,
		Buckets:   cfg.Buckets,
	})
	if err != nil {
		return Result{}, err
	}
	inst := m.(ds.Instrumented)

	// Prefill with ~Prefill of the key range (deterministic per Seed). The
	// pairs are shuffled: the Natarajan–Mittal tree is unbalanced, so an
	// ascending prefill would degenerate it into a 49k-deep path, while
	// the paper's random-order prefill yields expected O(log n) depth.
	rng := newRand(uint64(cfg.Seed))
	pairs := make([]ds.KV, 0, int(float64(cfg.KeyRange)*cfg.Prefill)+1)
	for k := uint64(0); k < cfg.KeyRange; k++ {
		if rng.float() < cfg.Prefill {
			pairs = append(pairs, ds.KV{Key: k, Val: k})
		}
	}
	for i := len(pairs) - 1; i > 0; i-- { // Fisher–Yates
		j := int(rng.next() % uint64(i+1))
		pairs[i], pairs[j] = pairs[j], pairs[i]
	}
	m.Fill(pairs)
	if cfg.onReady != nil {
		cfg.onReady(inst)
	}

	var (
		stop  atomic.Bool
		stats = make([]workerStat, cfg.Threads)
		wg    sync.WaitGroup
	)
	scheme := inst.Scheme()
	for tid := 0; tid < cfg.Threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			r := newRand(uint64(cfg.Seed)*0x9E3779B97F4A7C15 + uint64(tid) + 1)
			st := &stats[tid]
			for !stop.Load() {
				st.spaceSum += uint64(scheme.Unreclaimed(tid))
				st.spaceCount++
				key := r.next() % cfg.KeyRange
				var opStart time.Time
				if cfg.MeasureLatency {
					opStart = time.Now()
				}
				switch cfg.Workload {
				case ReadDominated:
					if r.next()%100 < 90 {
						if _, ok := m.Get(tid, key); ok {
							st.getHit++
						} else {
							st.getMiss++
						}
					} else if r.next()%2 == 0 {
						if m.Insert(tid, key, key) {
							st.insOK++
						} else {
							st.insFail++
						}
					} else {
						if m.Remove(tid, key) {
							st.remOK++
						} else {
							st.remFail++
						}
					}
				default:
					if r.next()%2 == 0 {
						if m.Insert(tid, key, key) {
							st.insOK++
						} else {
							st.insFail++
						}
					} else {
						if m.Remove(tid, key) {
							st.remOK++
						} else {
							st.remFail++
						}
					}
				}
				if cfg.MeasureLatency {
					st.lat.Record(time.Since(opStart))
				}
				st.ops++
			}
		}(tid)
	}
	// Stalled workers: park with a published reservation (see Config).
	for i := 0; i < cfg.Stalled; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for !stop.Load() {
				scheme.StartOp(tid)
				time.Sleep(cfg.StallFor)
				scheme.EndOp(tid)
			}
		}(cfg.Threads + i)
	}

	start := time.Now()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{Config: cfg, PerThreadOps: make([]uint64, cfg.Threads)}
	for tid := range stats {
		res.Ops += stats[tid].ops
		res.PerThreadOps[tid] = stats[tid].ops
		res.InsertOK += stats[tid].insOK
		res.InsertFail += stats[tid].insFail
		res.RemoveOK += stats[tid].remOK
		res.RemoveFail += stats[tid].remFail
		res.GetHit += stats[tid].getHit
		res.GetMiss += stats[tid].getMiss
		if stats[tid].spaceCount > 0 {
			res.AvgRetired += float64(stats[tid].spaceSum) / float64(stats[tid].spaceCount)
		}
	}
	if cfg.MeasureLatency {
		res.Latency = &LatencyHist{}
		for tid := range stats {
			res.Latency.Merge(&stats[tid].lat)
		}
	}
	res.Elapsed = elapsed
	res.Mops = float64(res.Ops) / elapsed.Seconds() / 1e6
	if ss, ok := scheme.(interface{ ScanStats() core.ScanStats }); ok {
		stats := ss.ScanStats()
		res.Scans = stats.Scans
		res.ScanExamined = stats.Scanned
		res.ScanMeanLen = stats.MeanListLen()
		res.ScanFreed = stats.Freed
		res.ScanBucketSkips = stats.BucketSkips
		res.ScanBucketFrees = stats.BucketFrees
	}
	st := inst.PoolStats()
	res.Allocs, res.Frees, res.Live = st.Allocs, st.Frees, st.Live()
	return res, nil
}

// xrand is a per-worker SplitMix64 generator: fast, deterministic per seed
// (math/rand's lock would serialize the workers), and — crucially — with
// *all* output bits well mixed. An earlier xorshift64* version had a
// workload-degenerating pathology: the low bit of output n+1 is a function
// of bits 0 and 7 of state n, and key = output n mod 2^16 is invertible in
// the low state bits, so every benchmark key was permanently paired with
// one operation type and the insert/remove mix froze. SplitMix64's two
// multiply-xorshift finalizer rounds decouple every output bit from the
// (purely additive) state.
type xrand struct{ s uint64 }

func newRand(seed uint64) *xrand { return &xrand{s: seed} }

func (r *xrand) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *xrand) float() float64 { return float64(r.next()>>11) / (1 << 53) }
