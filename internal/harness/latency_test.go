package harness

import (
	"testing"
	"time"
)

// TestLatencyBucketBoundaries pins the log2 bucketing: bucket i must hold
// exactly the durations with 2^i <= ns < 2^(i+1), with 0 ns promoted to
// the 1 ns floor and overflows clamped into the last bucket.
func TestLatencyBucketBoundaries(t *testing.T) {
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},                // floor: recorded as 1 ns
		{1, 0},                // 2^0
		{2, 1},                // 2^1
		{3, 1},                // still below 4
		{255, 7},              // top of [128, 256)
		{256, 8},              // bottom of [256, 512)
		{time.Microsecond, 9}, // 1024 ns → [1024, 2048)
		{time.Millisecond - 1, 19},
		{time.Millisecond, 19}, // 1e6 ns → [2^19, 2^20)
		{1 << 47, 47},          // bottom of the last bucket
		{1<<62 + 5, 47},        // clamped overflow
	}
	for _, c := range cases {
		var h LatencyHist
		h.Record(c.d)
		for i, n := range h.buckets {
			want := uint64(0)
			if i == c.bucket {
				want = 1
			}
			if n != want {
				t.Fatalf("Record(%v): bucket %d = %d, want bucket %d", c.d, i, n, c.bucket)
			}
		}
	}
}

// TestLatencyQuantileInterpolation checks the linear interpolation inside
// one bucket: four samples in [1024, 2048) place q=0 at the bucket floor,
// q=1 at the ceiling, and intermediate quantiles linearly between.
func TestLatencyQuantileInterpolation(t *testing.T) {
	var h LatencyHist
	for i := 0; i < 4; i++ {
		h.Record(1500 * time.Nanosecond) // bucket 10: [1024, 2048)
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, 1024},
		{0.25, 1280},
		{0.5, 1536},
		{0.75, 1792},
		{1, 2048},
		{-1, 1024}, // clamped
		{2, 2048},  // clamped
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestLatencyQuantileAcrossBuckets checks bucket selection with a skewed
// two-bucket population and that the estimate is monotone in q.
func TestLatencyQuantileAcrossBuckets(t *testing.T) {
	var h LatencyHist
	for i := 0; i < 90; i++ {
		h.Record(100 * time.Nanosecond) // bucket 6: [64, 128)
	}
	for i := 0; i < 10; i++ {
		h.Record(100 * time.Microsecond) // bucket 16: [65536, 131072)
	}
	if p50 := h.Quantile(0.5); p50 < 64 || p50 >= 128 {
		t.Fatalf("p50 = %v, want inside [64ns, 128ns)", p50)
	}
	if p95 := h.Quantile(0.95); p95 < 65536 || p95 > 131072 {
		t.Fatalf("p95 = %v, want inside [65.5µs, 131µs]", p95)
	}
	prev := time.Duration(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("Quantile not monotone: q=%v gave %v after %v", q, cur, prev)
		}
		prev = cur
	}
}

// TestLatencyMerge checks Merge sums buckets and counts so that merged
// quantiles equal those of the union population.
func TestLatencyMerge(t *testing.T) {
	var a, b, both LatencyHist
	for i := 0; i < 50; i++ {
		a.Record(100 * time.Nanosecond)
		both.Record(100 * time.Nanosecond)
	}
	for i := 0; i < 50; i++ {
		b.Record(50 * time.Microsecond)
		both.Record(50 * time.Microsecond)
	}
	a.Merge(&b)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d, want 100", a.Count())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got, want := a.Quantile(q), both.Quantile(q); got != want {
			t.Fatalf("Quantile(%v): merged %v, union %v", q, got, want)
		}
	}
	var empty LatencyHist
	a.Merge(&empty)
	if a.Count() != 100 {
		t.Fatal("merging an empty histogram changed the count")
	}
}
