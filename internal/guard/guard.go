// Package guard is the misuse-resistant facade over the IBR reservation
// protocol (internal/core + internal/mem): Guarded[T].Do brackets an
// operation with StartOp/EndOp, and the Guard it passes to the closure is
// the only way to touch handles inside the bracket — protected loads,
// dereferences, publishes, and retires all go through it, so the bracket
// and the per-call protocol discipline cannot drift apart.
//
// The division of labor with the ibrlint suite: the lifecycle analyzer
// treats these methods as trusted protocol events (a Guard.Load is a
// protected read, a Guard.Retire is a retire, ...), while the facade's own
// implementation is proven by the other analyzers — endop checks Do's
// bracket, retirefree audits Discard's direct Free, epochstamp sees Alloc
// delegate to the birth-stamping Scheme.Alloc.
//
// With the ibrdebug build tag each Guard also carries an active flag, so a
// Guard captured and used outside its Do bracket panics deterministically
// instead of racing reclamation.
package guard

import (
	"ibr/internal/core"
	"ibr/internal/mem"
)

// Guarded wraps a scheme and its pool for one node type. It is the
// long-lived half of the facade: data structures hold a *Guarded[T] and
// open brackets on it with Do.
type Guarded[T any] struct {
	s    core.Scheme
	pool *mem.Pool[T]
}

// New builds the facade over an existing scheme/pool pair.
func New[T any](s core.Scheme, pool *mem.Pool[T]) *Guarded[T] {
	return &Guarded[T]{s: s, pool: pool}
}

// Scheme exposes the underlying scheme for quiescent paths (bulk loads,
// stats, draining) that run outside any bracket.
func (w *Guarded[T]) Scheme() core.Scheme { return w.s }

// Pool exposes the underlying allocator for quiescent paths.
func (w *Guarded[T]) Pool() *mem.Pool[T] { return w.pool }

// Do runs fn inside a StartOp/EndOp reservation bracket for tid. The Guard
// is valid only until fn returns; under the ibrdebug tag, retaining and
// using it afterwards panics.
func (w *Guarded[T]) Do(tid int, fn func(g *Guard[T])) {
	g := Guard[T]{w: w, tid: tid}
	g.enter()
	w.s.StartOp(tid)
	defer g.exit()
	defer w.s.EndOp(tid)
	fn(&g)
}

// Guard is the in-bracket capability: every protocol touch point on
// handles, scoped to one operation of one thread.
type Guard[T any] struct {
	w   *Guarded[T]
	tid int
	debugState
}

// Tid returns the thread id the bracket was opened for.
func (g *Guard[T]) Tid() int { return g.tid }

// Load performs a protected pointer load into protection slot.
func (g *Guard[T]) Load(slot int, p *core.Ptr) mem.Handle {
	g.check()
	return g.w.s.Read(g.tid, slot, p)
}

// LoadRoot is Load for a structure's root pointer (POIBR snapshots it).
func (g *Guard[T]) LoadRoot(slot int, p *core.Ptr) mem.Handle {
	g.check()
	return g.w.s.ReadRoot(g.tid, slot, p)
}

// Deref returns the node a protected handle designates.
func (g *Guard[T]) Deref(h mem.Handle) *T {
	g.check()
	return g.w.pool.Get(h)
}

// Publish stores h into the shared pointer p through the scheme (TagIBR
// variants raise the pointer's born-before tag).
func (g *Guard[T]) Publish(p *core.Ptr, h mem.Handle) {
	g.check()
	g.w.s.Write(g.tid, p, h)
}

// CompareAndSwap conditionally publishes new into p.
func (g *Guard[T]) CompareAndSwap(p *core.Ptr, old, new mem.Handle) bool {
	g.check()
	return g.w.s.CompareAndSwap(g.tid, p, old, new)
}

// Retire hands a detached (unlinked) block to the reclamation system.
func (g *Guard[T]) Retire(h mem.Handle) {
	g.check()
	g.w.s.Retire(g.tid, h)
}

// Alloc allocates a birth-stamped block via the scheme.
func (g *Guard[T]) Alloc() mem.Handle {
	g.check()
	return g.w.s.Alloc(g.tid)
}

// Discard returns a never-published block straight to the allocator — the
// failed-insert path, where no CAS ever linked the node so no other thread
// can hold it. Publishing a handle and then Discarding it is a protocol
// violation (the lifecycle analyzer flags it at the call site).
func (g *Guard[T]) Discard(h mem.Handle) {
	g.check()
	//ibrlint:ignore never published by contract: Discard is the facade's failed-insert path, no CAS ever linked the block
	g.w.pool.Free(g.tid, h)
}

// Restart renews the reservation mid-operation (the §4.3.1 starvation
// bound). The caller must hold no node references across the call.
func (g *Guard[T]) Restart() {
	g.check()
	g.w.s.RestartOp(g.tid)
}
