//go:build ibrdebug

package guard

// debugState tracks whether the Guard's bracket is still open. A Guard
// leaked out of its Do closure and used after EndOp would race reclamation
// nondeterministically; under ibrdebug it panics at the touch point.
type debugState struct{ active bool }

func (d *debugState) enter() { d.active = true }
func (d *debugState) exit()  { d.active = false }

func (d *debugState) check() {
	if !d.active {
		panic("guard: Guard used outside its Do bracket (the reservation is gone)")
	}
}
