package guard_test

import (
	"testing"

	"ibr/internal/core"
	"ibr/internal/guard"
	"ibr/internal/mem"
)

type node struct {
	val  uint64
	next core.Ptr
}

func newGuarded(t *testing.T, scheme string) *guard.Guarded[node] {
	t.Helper()
	pool := mem.New[node](mem.Options[node]{Threads: 2})
	s, err := core.New(scheme, pool, core.Options{Threads: 2})
	if err != nil {
		t.Fatalf("core.New(%q): %v", scheme, err)
	}
	return guard.New(s, pool)
}

// TestGuardLifecycle drives a full allocate→publish→load→swap→retire cycle
// through the facade, for a representative scheme of each read-protection
// style (epochs, hazard pointers, intervals).
func TestGuardLifecycle(t *testing.T) {
	for _, scheme := range []string{"ebr", "hp", "2geibr", "tagibr"} {
		t.Run(scheme, func(t *testing.T) {
			w := newGuarded(t, scheme)
			var root core.Ptr

			w.Do(0, func(g *guard.Guard[node]) {
				if g.Tid() != 0 {
					t.Fatalf("Tid = %d, want 0", g.Tid())
				}
				h := g.Alloc()
				if h.IsNil() {
					t.Fatal("Alloc returned nil handle")
				}
				g.Deref(h).val = 41
				g.Publish(&root, h)
			})

			// A second bracket re-reads the published node and swaps it.
			w.Do(1, func(g *guard.Guard[node]) {
				h := g.LoadRoot(0, &root)
				if h.IsNil() {
					t.Fatal("LoadRoot lost the published handle")
				}
				if v := g.Deref(h).val; v != 41 {
					t.Fatalf("Deref val = %d, want 41", v)
				}
				repl := g.Alloc()
				g.Deref(repl).val = 42
				if !g.CompareAndSwap(&root, h, repl) {
					t.Fatal("CompareAndSwap failed with no contention")
				}
				g.Retire(h)

				// Load through the generic slot path too.
				h2 := g.Load(1, &root)
				if v := g.Deref(h2).val; v != 42 {
					t.Fatalf("after swap, val = %d, want 42", v)
				}
			})

			// Failed-insert shape: a never-published block goes back via
			// Discard, and Restart renews the reservation mid-bracket.
			w.Do(0, func(g *guard.Guard[node]) {
				spare := g.Alloc()
				g.Discard(spare)
				g.Restart()
				if h := g.Load(0, &root); g.Deref(h).val != 42 {
					t.Fatal("value lost across Restart")
				}
			})

			if w.Scheme() == nil || w.Pool() == nil {
				t.Fatal("Scheme/Pool accessors returned nil")
			}
			if got := w.Pool().Stats().Allocs; got != 3 {
				t.Fatalf("pool saw %d allocs, want 3", got)
			}
		})
	}
}

// TestGuardDoBracket checks that Do closes the reservation even when fn
// panics: EndOp runs via defer, so a later bracket on the same tid starts
// clean instead of deadlocking a reservation-counting scheme.
func TestGuardDoBracket(t *testing.T) {
	w := newGuarded(t, "2geibr")
	func() {
		defer func() { _ = recover() }()
		w.Do(0, func(g *guard.Guard[node]) { panic("boom") })
	}()
	// If EndOp was skipped, this second bracket would nest StartOp calls;
	// schemes with per-thread active flags would be corrupted. It must run
	// normally.
	w.Do(0, func(g *guard.Guard[node]) {
		h := g.Alloc()
		g.Discard(h)
	})
}
