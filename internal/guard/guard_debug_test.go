//go:build ibrdebug

package guard_test

import (
	"testing"

	"ibr/internal/core"
	"ibr/internal/guard"
	"ibr/internal/mem"
)

// TestGuardEscapePanics proves the ibrdebug liveness check: a Guard
// retained past its Do bracket panics on the next touch point instead of
// issuing an unprotected read.
func TestGuardEscapePanics(t *testing.T) {
	pool := mem.New[node](mem.Options[node]{Threads: 1})
	s, err := core.New("2geibr", pool, core.Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := guard.New(s, pool)

	var leaked *guard.Guard[node]
	var root core.Ptr
	w.Do(0, func(g *guard.Guard[node]) { leaked = g })

	defer func() {
		if recover() == nil {
			t.Fatal("Load on a Guard outside its Do bracket did not panic")
		}
	}()
	leaked.Load(0, &root)
}
