//go:build !ibrdebug

package guard

// debugState is empty in normal builds: the bracket-liveness check
// compiles away entirely.
type debugState struct{}

func (debugState) enter() {}
func (debugState) exit()  {}
func (debugState) check() {}
