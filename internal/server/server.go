package server

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ServerConfig tunes the network front end.
type ServerConfig struct {
	// MaxInflight caps the number of pipelined requests a single
	// connection may have outstanding (default 128). The cap is what makes
	// completion delivery non-blocking: the response channel has exactly
	// MaxInflight slots, so a shard worker's done callback can never block
	// on a slow or dead connection.
	MaxInflight int
	// IdleTimeout closes a connection that sends no frame for this long
	// (default 5m). It doubles as the shutdown poll interval bound: a
	// draining server is never stuck behind a silent peer.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response batch write (default 30s).
	WriteTimeout time.Duration
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 128
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	return c
}

// Server accepts connections and feeds their requests to an Engine.
type Server struct {
	cfg      ServerConfig
	eng      *Engine
	draining atomic.Bool

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}

	connWG        sync.WaitGroup
	accepted      atomic.Uint64
	protoDropped  atomic.Uint64
	protoRejected atomic.Uint64
}

// NewServer wraps an engine. The caller retains ownership of the engine
// until Shutdown, which closes it after the last connection drains.
func NewServer(eng *Engine, cfg ServerConfig) *Server {
	return &Server{cfg: cfg.withDefaults(), eng: eng, conns: map[net.Conn]struct{}{}}
}

// Engine returns the engine behind the server (metrics, tests).
func (s *Server) Engine() *Engine { return s.eng }

// Accepted returns the number of connections accepted so far.
func (s *Server) Accepted() uint64 { return s.accepted.Load() }

// ProtoDropped returns the number of connections dropped for protocol
// violations the reader cannot recover from (bad frame length, a
// desynchronized or mid-frame-aborted stream).
func (s *Server) ProtoDropped() uint64 { return s.protoDropped.Load() }

// ProtoRejected returns the number of well-framed requests carrying an
// invalid op. Those frames are answered with StatusBadRequest and the
// connection stays alive — they are rejected frames, not dropped
// connections.
func (s *Server) ProtoRejected() uint64 { return s.protoRejected.Load() }

// ProtoErrors returns ProtoDropped() + ProtoRejected().
//
// Deprecated: the two counts mean different things (a lost connection vs a
// survivable bad frame); use the split counters.
func (s *Server) ProtoErrors() uint64 { return s.protoDropped.Load() + s.protoRejected.Load() }

// Serve runs the accept loop on ln until Shutdown. It returns nil on
// graceful shutdown and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		if s.draining.Load() {
			c.Close()
			continue
		}
		s.accepted.Add(1)
		s.track(c, true)
		s.connWG.Add(1)
		go s.handle(c)
	}
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) track(c net.Conn, add bool) {
	s.mu.Lock()
	if add {
		s.conns[c] = struct{}{}
	} else {
		delete(s.conns, c)
	}
	s.mu.Unlock()
}

// Shutdown drains gracefully: stop accepting, kick every reader out of its
// blocking read, let in-flight requests complete and their responses
// flush, close the connections, then drain the engine. Every request whose
// frame was fully read before shutdown receives exactly one response.
func (s *Server) Shutdown() {
	s.draining.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		// Wake blocked readers immediately; handle() sees draining and
		// stops reading new frames instead of treating this as idleness.
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.connWG.Wait()
	s.eng.Close()
}

// wireResp is one response ready to encode. legacy selects the 13-byte v1
// encoding: a response always answers in its request's framing dialect, so
// pre-range clients (which read with a hard 13-byte bound) never see the
// v2 header.
type wireResp struct {
	id     uint32
	legacy bool
	r      Response
}

// respBatchBytes is the writer's batching budget: keep encoding queued
// responses until the buffer holds this much, then flush the run in one
// write. With variable-length responses a byte budget (not a response
// count) is what actually bounds the write size — one full range response
// can exceed it alone, and then it simply flushes by itself.
const respBatchBytes = 16 * 1024

// respBufCap is the retained capacity cap for the writer's encode buffer:
// a range-heavy burst may grow it to megabytes; past this it is dropped
// after the flush so one burst does not pin the peak for the connection's
// lifetime.
const respBufCap = 64 * 1024

// handle runs one connection: a reader loop (this goroutine) that parses
// frames and submits them, and a writer goroutine that encodes completed
// responses in batches. The in-flight semaphore bounds the gap between
// them; outstanding tracks submitted-but-unwritten requests so shutdown
// can wait for the tail.
func (s *Server) handle(c net.Conn) {
	defer s.connWG.Done()
	defer s.track(c, false)

	var (
		inflight    = make(chan struct{}, s.cfg.MaxInflight) // semaphore
		resps       = make(chan wireResp, s.cfg.MaxInflight)
		outstanding sync.WaitGroup
		dead        atomic.Bool // writer hit a write error
		writerDone  = make(chan struct{})
	)

	go func() { // writer
		defer close(writerDone)
		bw := bufio.NewWriter(c)
		buf := make([]byte, 0, respBatchBytes)
		flush := func() {
			if len(buf) == 0 {
				return
			}
			c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			if !dead.Load() {
				if _, err := bw.Write(buf); err != nil || bw.Flush() != nil {
					// Keep draining so done callbacks and the reader's
					// semaphore never wedge on a dead peer.
					dead.Store(true)
					c.SetReadDeadline(time.Now())
				}
			}
			if cap(buf) > respBufCap {
				buf = make([]byte, 0, respBatchBytes)
			} else {
				buf = buf[:0]
			}
		}
		encode := func(wr wireResp) {
			if wr.legacy {
				buf = appendResponseV1(buf, wr.id, wr.r)
			} else {
				buf = appendResponse(buf, wr.id, wr.r)
			}
		}
		for wr := range resps {
			encode(wr)
			<-inflight
			// Batch: keep encoding while more responses are ready, then
			// flush the whole run in one write.
			for len(buf) < respBatchBytes {
				select {
				case more, ok := <-resps:
					if !ok {
						flush()
						return
					}
					encode(more)
					<-inflight
				default:
					goto emit
				}
			}
		emit:
			flush()
		}
		flush()
	}()

	br := bufio.NewReader(c)
	frame := make([]byte, maxReqFrame)
	for !dead.Load() {
		c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		payload, err := readFrame(br, maxReqFrame, frame)
		if err != nil {
			var ne net.Error
			switch {
			case errors.As(err, &ne) && ne.Timeout():
				// Shutdown kick or idle timeout: stop reading new frames
				// either way; in-flight requests still complete below.
			case errors.Is(err, io.EOF), errors.Is(err, net.ErrClosed):
				// Clean close by the peer.
			default:
				s.protoDropped.Add(1) // malformed frame or mid-frame abort
			}
			break
		}
		id, req, legacy, perr := parseRequest(payload)
		if perr != nil {
			// An announced length that is neither request version means a
			// desynchronized stream; nothing after it can be trusted.
			s.protoDropped.Add(1)
			break
		}
		// Reserve a semaphore slot before submitting: at most MaxInflight
		// responses can ever be queued, so resps never blocks a worker.
		inflight <- struct{}{}
		outstanding.Add(1)
		done := func(r Response) {
			resps <- wireResp{id: id, legacy: legacy, r: r}
			outstanding.Done()
		}
		// A v1 frame only speaks the pre-range op set: its 13-byte response
		// cannot carry pairs, so a v1-framed RANGE is a bad request — the
		// same verdict the v1 server gave op 5.
		if !req.Op.valid() || (legacy && req.Op > OpDel) {
			done(Response{Status: StatusBadRequest})
			s.protoRejected.Add(1)
			continue
		}
		if err := s.eng.SubmitRequest(req, done); err != nil {
			// ErrBusy (queue full) and ErrShedding (unreclaimed backlog
			// above the hard watermark) are both transient overload: the
			// client sees StatusBusy and retries with backoff.
			st := StatusBusy
			if errors.Is(err, ErrClosed) {
				st = StatusShutdown
			}
			done(Response{Status: st})
		}
	}
	outstanding.Wait() // every submitted request has enqueued its response
	close(resps)
	<-writerDone // responses flushed (or the conn is dead)
	c.Close()
}
