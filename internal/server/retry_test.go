package server

import (
	"bufio"
	"context"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"
)

// startFakeServer runs a minimal wire-protocol peer whose responses are
// scripted by handle — the way to force statuses (busy, slow) that a real
// engine only produces under contrived load.
func startFakeServer(t *testing.T, handle func(id uint32, req Request) (Response, time.Duration)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				buf := make([]byte, reqPayloadV2Len)
				for {
					p, err := readFrame(br, maxReqFrame, buf)
					if err != nil {
						return
					}
					id, req, _, err := parseRequest(p)
					if err != nil {
						return
					}
					resp, delay := handle(id, req)
					if delay > 0 {
						time.Sleep(delay)
					}
					if _, err := c.Write(appendResponse(nil, id, resp)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// TestBackoffDelayBounds: attempt n's delay is uniform in [exp/2, exp) for
// exp = min(Base<<n, Max) — exponential, capped, never zero, never above
// the cap.
func TestBackoffDelayBounds(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 100 * time.Millisecond}
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for attempt := 0; attempt < 12; attempt++ {
			exp := p.BaseDelay << attempt
			if exp > p.MaxDelay {
				exp = p.MaxDelay
			}
			d := backoffDelay(p, attempt, rng)
			if d < exp/2 || d >= exp {
				t.Fatalf("seed %d attempt %d: delay %v outside [%v, %v)", seed, attempt, d, exp/2, exp)
			}
		}
	}
}

// TestDoRetryExhaustion: a server that never stops answering BUSY makes
// DoRetry spend its attempts, sleep between them, count the retries, and
// return an error wrapping ErrBusy alongside the last busy Resp.
func TestDoRetryExhaustion(t *testing.T) {
	addr := startFakeServer(t, func(id uint32, req Request) (Response, time.Duration) {
		return Response{Status: StatusBusy}, 0
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	resp, err := cl.DoRetry(context.Background(), OpPut, 1, 2, p)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("DoRetry error = %v, want errors.Is ErrBusy", err)
	}
	if resp.Status != StatusBusy {
		t.Fatalf("DoRetry resp = %v, want the last busy response", resp)
	}
	if got := cl.Retries(); got != uint64(p.MaxAttempts-1) {
		t.Fatalf("Retries() = %d, want %d", got, p.MaxAttempts-1)
	}
}

// TestWithRetryClient: a WithRetry client retries transparently inside
// DoContext — no DoRetry call, no per-call policy — and succeeds once the
// server stops answering busy.
func TestWithRetryClient(t *testing.T) {
	var calls int
	addr := startFakeServer(t, func(id uint32, req Request) (Response, time.Duration) {
		calls++
		if calls <= 2 {
			return Response{Status: StatusBusy}, 0
		}
		return Response{Status: StatusOK, Val: req.Val}, 0
	})
	cl, err := Dial(addr, WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.DoContext(context.Background(), Request{Op: OpPut, Key: 1, Val: 7})
	if err != nil || resp.Status != StatusOK || resp.Val != 7 {
		t.Fatalf("DoContext = %v, %v; want OK/7", resp, err)
	}
	if got := cl.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2", got)
	}
}

// TestWithRetryExhaustion: the WithRetry client's exhaustion surface matches
// DoRetry's — the last busy Response plus an ErrBusy-wrapping error.
func TestWithRetryExhaustion(t *testing.T) {
	addr := startFakeServer(t, func(id uint32, req Request) (Response, time.Duration) {
		return Response{Status: StatusBusy}, 0
	})
	cl, err := Dial(addr, WithRetry(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Get(context.Background(), 1)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("Get error = %v, want errors.Is ErrBusy", err)
	}
	if resp.Status != StatusBusy {
		t.Fatalf("Get resp = %v, want the last busy response", resp)
	}
}

// TestDoRetryEventualSuccess: busy responses stop after two tries; the
// third succeeds with no error.
func TestDoRetryEventualSuccess(t *testing.T) {
	var calls int
	addr := startFakeServer(t, func(id uint32, req Request) (Response, time.Duration) {
		calls++
		if calls <= 2 {
			return Response{Status: StatusBusy}, 0
		}
		return Response{Status: StatusOK, Val: req.Val}, 0
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.DoRetry(context.Background(), OpPut, 1, 7,
		RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond})
	if err != nil || resp.Status != StatusOK || resp.Val != 7 {
		t.Fatalf("DoRetry = %v, %v; want OK/7", resp, err)
	}
}

// TestDoContextPreCancelled: an already-dead context never touches the wire.
func TestDoContextPreCancelled(t *testing.T) {
	addr := startFakeServer(t, func(id uint32, req Request) (Response, time.Duration) {
		t.Error("request reached the server despite a cancelled context")
		return Response{Status: StatusOK}, 0
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.DoContext(ctx, Request{Op: OpGet, Key: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("DoContext = %v, want context.Canceled", err)
	}
}

// TestDoContextAbandonInFlight: a deadline that expires while the request
// is on the wire abandons the call — and ONLY the call. The late response
// is absorbed when it arrives and the same client keeps working, which is
// the whole point of keeping the pending entry alive.
func TestDoContextAbandonInFlight(t *testing.T) {
	addr := startFakeServer(t, func(id uint32, req Request) (Response, time.Duration) {
		if req.Op == OpGet {
			return Response{Status: StatusOK, Val: 9}, 150 * time.Millisecond // slow: outlives the deadline
		}
		return Response{Status: StatusOK, Val: req.Val}, 0
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := cl.Get(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Get = %v, want context.DeadlineExceeded", err)
	}
	// The abandoned response lands mid-flight; the client must survive it
	// and keep serving new calls on the same connection.
	if err := cl.PingContext(context.Background()); err != nil {
		t.Fatalf("client unusable after abandoned call: %v", err)
	}
}

// TestCloseWrapsErrClosed: calls failed by Close report an error callers
// can match with errors.Is(err, ErrClosed).
func TestCloseWrapsErrClosed(t *testing.T) {
	addr := startFakeServer(t, func(id uint32, req Request) (Response, time.Duration) {
		return Response{Status: StatusOK, Val: req.Val}, time.Second // park the call until Close
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := cl.Do(OpGet, 1, 0)
		errc <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the call get on the wire
	cl.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("in-flight Do after Close = %v, want errors.Is ErrClosed", err)
	}
}

// TestCloseContextGraceful: CloseContext waits out in-flight calls instead
// of failing them.
func TestCloseContextGraceful(t *testing.T) {
	addr := startFakeServer(t, func(id uint32, req Request) (Response, time.Duration) {
		return Response{Status: StatusOK, Val: req.Val}, 50 * time.Millisecond
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := cl.Do(OpPut, 1, 5)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := cl.CloseContext(context.Background()); err != nil {
		t.Fatalf("CloseContext: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("in-flight Do during graceful close: %v", err)
	}
}
