package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ibr/internal/obs"
)

// TestTraceHandlerConcurrentScrape hammers /debug/trace while the engine
// serves traced load. Run with -race: the Perfetto encoding walks the same
// rings the workers are writing, so the scrape must stay tear-free and
// non-blocking. The final scrape must be valid JSON containing both an op
// span under a submitted trace ID and completed block lifecycle spans.
func TestTraceHandlerConcurrentScrape(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Shards: 2, WorkersPerShard: 2, QueueDepth: 1024,
		EpochFreq: 8, EmptyFreq: 8,
		Obs: &obs.Options{SampleEvery: 1, TraceEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	handler := TraceHandler(eng)

	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
			if rec.Code != 200 {
				t.Errorf("trace handler status = %d", rec.Code)
				return
			}
			var doc map[string]any
			if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
				t.Errorf("mid-load trace is not valid JSON: %v", err)
				return
			}
		}
	}()

	const producers = 4
	var loadWG sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		loadWG.Add(1)
		go func(pr int) {
			defer loadWG.Done()
			n := 4000
			if testing.Short() {
				n = 1000
			}
			ch := make(chan Resp, 1)
			done := func(r Resp) { ch <- r }
			for i := 0; i < n; i++ {
				key := uint64(pr*1000 + i%512)
				trace := uint64(pr+1)<<32 | uint64(i+1)
				for _, op := range []Op{OpPut, OpDel} {
					if err := eng.SubmitTraced(op, key, key, trace, done); err == nil {
						<-ch
					}
				}
			}
		}(pr)
	}
	loadWG.Wait()
	close(stop)
	scrapeWG.Wait()

	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("final trace is not valid JSON: %v", err)
	}
	var ops, retired int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Name == "op" && ev.Ph == "X":
			ops++
			if ev.Args["trace_id"] == "0x0000000000000000" {
				t.Error("op span recorded for an untraced request")
			}
		case ev.Name == "retired" && ev.Ph == "X" && ev.Args["truncated"] != true:
			retired++ // a complete retire→free span
		}
	}
	if ops == 0 {
		t.Error("no op spans despite traced submits")
	}
	if retired == 0 {
		t.Error("no complete retire→free block spans despite a delete-heavy run")
	}

	// The human-readable summary rides the same counters.
	var buf bytes.Buffer
	eng.WriteCausalSummary(&buf)
	if !strings.Contains(buf.String(), "scan phases") {
		t.Errorf("causal summary missing the phase breakdown:\n%s", buf.String())
	}
	eng.Close()
}

// TestTraceIDWireRoundTrip drives a trace ID through the whole stack:
// client context → request frame → server parse → shard worker → flight
// recorder op event.
func TestTraceIDWireRoundTrip(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Shards: 1, WorkersPerShard: 1,
		Obs: &obs.Options{SampleEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng, ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	const traceID = 0xABCD_0001_0002_0003
	ctx, cancel := context.WithTimeout(WithTraceID(context.Background(), traceID), 5*time.Second)
	defer cancel()
	if r, err := cl.DoContext(ctx, Request{Op: OpPut, Key: 7, Val: 11}); err != nil || r.Status != StatusOK {
		t.Fatalf("traced PUT: %v / %v", r.Status, err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		found := false
		for _, ev := range eng.Obs().Recorder().Snapshot() {
			if ev.Kind == obs.KindOp && ev.Value == traceID {
				found = true
				if ev.Epoch == 0 {
					t.Error("op event carries no duration")
				}
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("trace ID never reached the flight recorder")
		}
		time.Sleep(time.Millisecond)
	}
	cl.Close()
	srv.Shutdown()
}

// TestTraceHandlerDisabled: without observability /debug/trace 404s, like
// the flight-recorder endpoint, so scripts can probe for the capability.
func TestTraceHandlerDisabled(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Shards: 1, WorkersPerShard: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rec := httptest.NewRecorder()
	TraceHandler(eng).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 404 {
		t.Errorf("trace handler with obs disabled: status %d, want 404", rec.Code)
	}
}
