package server

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"ibr/internal/ds"
)

func TestEngineBasicOps(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Shards: 4, WorkersPerShard: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	if r, _ := eng.Do(OpGet, 1, 0); r.Status != StatusNotFound {
		t.Fatalf("Get(empty) = %v", r.Status)
	}
	if r, _ := eng.Do(OpPut, 1, 100); r.Status != StatusOK {
		t.Fatalf("Put = %v", r.Status)
	}
	if r, _ := eng.Do(OpPut, 1, 200); r.Status != StatusExists {
		t.Fatalf("second Put = %v", r.Status)
	}
	if r, _ := eng.Do(OpGet, 1, 0); r.Status != StatusOK || r.Val != 100 {
		t.Fatalf("Get = %v/%d", r.Status, r.Val)
	}
	if r, _ := eng.Do(OpDel, 1, 0); r.Status != StatusOK {
		t.Fatalf("Del = %v", r.Status)
	}
	if r, _ := eng.Do(OpDel, 1, 0); r.Status != StatusNotFound {
		t.Fatalf("second Del = %v", r.Status)
	}
	if r, _ := eng.Do(OpPing, 0, 7); r.Status != StatusOK || r.Val != 7 {
		t.Fatalf("Ping = %v/%d", r.Status, r.Val)
	}
	if r, _ := eng.Do(OpGet, ds.KeyLimit, 0); r.Status != StatusBadRequest {
		t.Fatalf("Get(KeyLimit) = %v, want BAD_REQUEST", r.Status)
	}
}

// TestEngineShardDistribution checks every shard sees traffic for a dense
// key range — i.e. the shard hash actually spreads the key space.
func TestEngineShardDistribution(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Shards: 8, WorkersPerShard: 1})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 4096; k++ {
		if _, err := eng.Do(OpPut, k, k); err != nil {
			t.Fatal(err)
		}
	}
	for i, st := range eng.Stats() {
		if st.Ops < 256 { // E[ops] = 512 per shard; 256 is a loose floor
			t.Fatalf("shard %d got only %d of 4096 ops", i, st.Ops)
		}
	}
	eng.Close()
}

// TestEngineDrainLosesNothing is the shutdown/drain race test of the
// issue: submitters race Close, and every operation the engine accepted
// (Submit returned nil) must complete exactly once — none lost, none
// double-completed — even though Close lands mid-stream. Run with -race.
func TestEngineDrainLosesNothing(t *testing.T) {
	for round := 0; round < 8; round++ {
		eng, err := NewEngine(EngineConfig{
			Shards: 4, WorkersPerShard: 2, QueueDepth: 256,
			EpochFreq: 16, EmptyFreq: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		const submitters = 8
		var (
			accepted  atomic.Uint64
			completed atomic.Uint64
			rejected  atomic.Uint64
			wg        sync.WaitGroup
			release   = make(chan struct{})
		)
		for s := 0; s < submitters; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				<-release
				for i := 0; ; i++ {
					key := uint64(s*100000 + i%512)
					op := OpPut
					if i%2 == 1 {
						op = OpDel
					}
					var fired atomic.Bool
					err := eng.Submit(op, key, key, func(Resp) {
						if !fired.CompareAndSwap(false, true) {
							t.Error("request completed twice")
						}
						completed.Add(1)
					})
					switch err {
					case nil:
						accepted.Add(1)
					case ErrBusy:
						rejected.Add(1)
					case ErrClosed:
						return
					default:
						t.Errorf("Submit: %v", err)
						return
					}
				}
			}(s)
		}
		close(release)
		// Let the submitters get going, then drain under them.
		for accepted.Load() < 1000 {
			runtime.Gosched()
		}
		eng.Close()
		wg.Wait()
		if completed.Load() != accepted.Load() {
			t.Fatalf("round %d: accepted %d ops but completed %d (rejected %d)",
				round, accepted.Load(), completed.Load(), rejected.Load())
		}
		// Close is idempotent and must not hang or re-drain.
		eng.Close()
	}
}

// TestEngineBusyBackpressure fills a tiny queue from a stalled shard and
// checks Submit surfaces ErrBusy rather than buffering without bound.
func TestEngineBusyBackpressure(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Shards: 1, WorkersPerShard: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Park the single worker on a request that blocks until we say so.
	gate := make(chan struct{})
	blocked := make(chan struct{})
	if err := eng.Submit(OpPing, 0, 0, func(Resp) { close(blocked); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-blocked // the worker is now inside a done callback, not popping
	sawBusy := false
	for i := 0; i < 64; i++ {
		err := eng.Submit(OpPing, uint64(i), 0, func(Resp) {})
		if err == ErrBusy {
			sawBusy = true
			break
		}
		if err != nil {
			t.Fatalf("unexpected error %v", err)
		}
	}
	close(gate)
	if !sawBusy {
		t.Fatal("queue of depth 4 accepted 64 requests without ErrBusy")
	}
}

// TestEngineStats checks the metrics snapshot exposes work and epoch
// movement for an epoch-based scheme.
func TestEngineStats(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Structure: "hashmap", Scheme: "tagibr",
		Shards: 2, WorkersPerShard: 1, EpochFreq: 4, EmptyFreq: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 2000; k++ {
		eng.Do(OpPut, k, k)
		if k%2 == 0 {
			eng.Do(OpDel, k, 0)
		}
	}
	snap := eng.snapshot()
	if snap.Ops == 0 || snap.Live == 0 {
		t.Fatalf("snapshot shows no work: %+v", snap)
	}
	if snap.PerShard[0].Epoch == 0 || snap.PerShard[1].Epoch == 0 {
		t.Fatalf("epoch clock did not advance: %+v", snap.PerShard)
	}
	if got := fmt.Sprintf("%d", snap.Shards); got != "2" {
		t.Fatalf("shards = %s", got)
	}
	// A delete-heavy run with EmptyFreq 4 must have scanned retire lists and
	// freed blocks; the scan counters ride ShardStats into the snapshot.
	if snap.Scans == 0 || snap.ScanFreed == 0 {
		t.Fatalf("scan stats missing from snapshot: %+v", snap)
	}
	if snap.ScanExamined < snap.ScanFreed {
		t.Fatalf("examined %d < freed %d: scans cannot free more than they examine",
			snap.ScanExamined, snap.ScanFreed)
	}
	var perShardScans uint64
	for _, sh := range snap.PerShard {
		perShardScans += sh.Scans
	}
	if perShardScans != snap.Scans {
		t.Fatalf("per-shard scans %d do not sum to total %d", perShardScans, snap.Scans)
	}
	eng.Close()
}

// TestTrimSpill checks the worker's batch-buffer recycling stays bounded: a
// modest batch is reused, a burst-sized one is dropped so its backing array
// is not pinned for the engine's lifetime.
func TestTrimSpill(t *testing.T) {
	small := make([]request, 0, maxSpillCap)
	if got := trimSpill(small); cap(got) != maxSpillCap {
		t.Fatalf("cap-%d buffer not recycled (cap %d)", maxSpillCap, cap(got))
	}
	big := make([]request, 0, maxSpillCap+1)
	if got := trimSpill(big); got != nil {
		t.Fatalf("cap-%d buffer recycled; want dropped", cap(big))
	}
}
