package server

import (
	"expvar"
)

// statsSnapshot is the JSON shape exported on /debug/vars under "ibrd".
type statsSnapshot struct {
	Structure       string       `json:"structure"`
	Scheme          string       `json:"scheme"`
	Shards          int          `json:"shards"`
	WorkersPerShard int          `json:"workers_per_shard"`
	Ops             uint64       `json:"ops"`
	QueueDepth      int          `json:"queue_depth"`
	Unreclaimed     int          `json:"unreclaimed"`
	Live            uint64       `json:"live"`
	MaxEpochLag     uint64       `json:"max_epoch_lag"`
	Scans           uint64       `json:"scans"`
	ScanExamined    uint64       `json:"scan_examined"`
	ScanFreed       uint64       `json:"scan_freed"`
	ScanMeanLen     float64      `json:"scan_examined_mean"`
	Quarantines     uint64       `json:"tid_quarantines"`
	Adopted         uint64       `json:"blocks_adopted"`
	Shed            uint64       `json:"submits_shed"`
	ShedEpisodes    uint64       `json:"shed_episodes"`
	PoolExhausted   uint64       `json:"pool_exhausted"`
	Deaths          uint64       `json:"worker_deaths"`
	SheddingShards  int          `json:"shedding_shards"`
	RangeLegs       uint64       `json:"range_legs"`
	ActiveScans     int64        `json:"active_scans"`
	UnderScanHW     int64        `json:"unreclaimed_under_scan_hw"`
	Expired         uint64       `json:"expired"`
	ExpiryPending   int          `json:"expiry_pending"`
	RetiredUser     uint64       `json:"retired_user"`
	RetiredExpiry   uint64       `json:"retired_expiry"`
	PerShard        []shardStats `json:"per_shard"`
}

type shardStats struct {
	Ops          uint64 `json:"ops"`
	QueueDepth   int    `json:"queue_depth"`
	Unreclaimed  int    `json:"unreclaimed"`
	Epoch        uint64 `json:"epoch"`
	EpochLag     uint64 `json:"epoch_lag"`
	Live         uint64 `json:"live"`
	Scans        uint64 `json:"scans"`
	ScanExamined uint64 `json:"scan_examined"`
	ScanFreed    uint64 `json:"scan_freed"`
	Quarantines  uint64 `json:"tid_quarantines"`
	Shedding     bool   `json:"shedding"`
	RangeLegs    uint64 `json:"range_legs"`
	UnderScanHW  int64  `json:"unreclaimed_under_scan_hw"`
	Expired      uint64 `json:"expired"`
}

// snapshot builds the exported view from a live Stats() pass.
func (e *Engine) snapshot() statsSnapshot {
	per := e.Stats()
	out := statsSnapshot{
		Structure:       e.cfg.Structure,
		Scheme:          e.cfg.Scheme,
		Shards:          e.cfg.Shards,
		WorkersPerShard: e.cfg.WorkersPerShard,
		PerShard:        make([]shardStats, len(per)),
	}
	for i, s := range per {
		out.Ops += s.Ops
		out.QueueDepth += s.QueueDepth
		out.Unreclaimed += s.Unreclaimed
		out.Live += s.Live
		out.Scans += s.Scan.Scans
		out.ScanExamined += s.Scan.Scanned
		out.ScanFreed += s.Scan.Freed
		if s.EpochLag > out.MaxEpochLag {
			out.MaxEpochLag = s.EpochLag
		}
		out.Quarantines += s.Quarantines
		out.Adopted += s.Adopted
		out.Shed += s.Shed
		out.ShedEpisodes += s.ShedEpisodes
		out.PoolExhausted += s.PoolExhausted
		out.Deaths += s.Deaths
		if s.Shedding {
			out.SheddingShards++
		}
		out.RangeLegs += s.RangeOps
		out.ActiveScans += s.ActiveScans
		if s.UnderScanHW > out.UnderScanHW {
			out.UnderScanHW = s.UnderScanHW
		}
		out.Expired += s.Expired
		out.ExpiryPending += s.ExpiryPending
		out.RetiredUser += s.RetiredUser
		out.RetiredExpiry += s.RetiredExpiry
		out.PerShard[i] = shardStats{
			Ops: s.Ops, QueueDepth: s.QueueDepth, Unreclaimed: s.Unreclaimed,
			Epoch: s.Epoch, EpochLag: s.EpochLag, Live: s.Live,
			Scans: s.Scan.Scans, ScanExamined: s.Scan.Scanned, ScanFreed: s.Scan.Freed,
			Quarantines: s.Quarantines, Shedding: s.Shedding,
			RangeLegs: s.RangeOps, UnderScanHW: s.UnderScanHW, Expired: s.Expired,
		}
	}
	if out.Scans > 0 {
		out.ScanMeanLen = float64(out.ScanExamined) / float64(out.Scans)
	}
	return out
}

// PublishVars registers the engine's metrics under the given expvar name
// (conventionally "ibrd"); importing expvar's handler then serves them on
// /debug/vars. Call at most once per name per process — expvar panics on
// duplicate registration, so tests should use Engine.Stats directly.
func PublishVars(name string, e *Engine) {
	expvar.Publish(name, expvar.Func(func() any { return e.snapshot() }))
}

// serverSnapshot is the JSON shape exported by PublishServerVars: the
// connection front end's counters, with dropped connections and rejected
// frames reported separately (they mean different things — see
// ProtoDropped/ProtoRejected).
type serverSnapshot struct {
	Accepted          uint64 `json:"accepted"`
	ConnsDroppedProto uint64 `json:"conns_dropped_proto"`
	FramesRejected    uint64 `json:"frames_rejected"`
}

// PublishServerVars registers the server's connection counters under the
// given expvar name (conventionally "ibrd_server"). Same single-
// registration caveat as PublishVars.
func PublishServerVars(name string, s *Server) {
	expvar.Publish(name, expvar.Func(func() any {
		return serverSnapshot{
			Accepted:          s.Accepted(),
			ConnsDroppedProto: s.ProtoDropped(),
			FramesRejected:    s.ProtoRejected(),
		}
	}))
}
