package server

import (
	"expvar"
)

// statsSnapshot is the JSON shape exported on /debug/vars under "ibrd".
type statsSnapshot struct {
	Structure       string       `json:"structure"`
	Scheme          string       `json:"scheme"`
	Shards          int          `json:"shards"`
	WorkersPerShard int          `json:"workers_per_shard"`
	Ops             uint64       `json:"ops"`
	QueueDepth      int          `json:"queue_depth"`
	Unreclaimed     int          `json:"unreclaimed"`
	Live            uint64       `json:"live"`
	MaxEpochLag     uint64       `json:"max_epoch_lag"`
	PerShard        []shardStats `json:"per_shard"`
}

type shardStats struct {
	Ops         uint64 `json:"ops"`
	QueueDepth  int    `json:"queue_depth"`
	Unreclaimed int    `json:"unreclaimed"`
	Epoch       uint64 `json:"epoch"`
	EpochLag    uint64 `json:"epoch_lag"`
	Live        uint64 `json:"live"`
}

// snapshot builds the exported view from a live Stats() pass.
func (e *Engine) snapshot() statsSnapshot {
	per := e.Stats()
	out := statsSnapshot{
		Structure:       e.cfg.Structure,
		Scheme:          e.cfg.Scheme,
		Shards:          e.cfg.Shards,
		WorkersPerShard: e.cfg.WorkersPerShard,
		PerShard:        make([]shardStats, len(per)),
	}
	for i, s := range per {
		out.Ops += s.Ops
		out.QueueDepth += s.QueueDepth
		out.Unreclaimed += s.Unreclaimed
		out.Live += s.Live
		if s.EpochLag > out.MaxEpochLag {
			out.MaxEpochLag = s.EpochLag
		}
		out.PerShard[i] = shardStats{
			Ops: s.Ops, QueueDepth: s.QueueDepth, Unreclaimed: s.Unreclaimed,
			Epoch: s.Epoch, EpochLag: s.EpochLag, Live: s.Live,
		}
	}
	return out
}

// PublishVars registers the engine's metrics under the given expvar name
// (conventionally "ibrd"); importing expvar's handler then serves them on
// /debug/vars. Call at most once per name per process — expvar panics on
// duplicate registration, so tests should use Engine.Stats directly.
func PublishVars(name string, e *Engine) {
	expvar.Publish(name, expvar.Func(func() any { return e.snapshot() }))
}
