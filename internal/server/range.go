package server

import (
	"sync"

	"ibr/internal/core"
	"ibr/internal/ds"
	"ibr/internal/obs"
)

// Range execution. Keys are hashed across shards, so one Range fans out to
// every shard: each leg scans its shard's structure inside a single
// reservation bracket (ds.Ranger's contract) — the paper's long-running
// read, one interval per shard — and reports its sorted slice to the
// shared collector. The last leg to finish merges the slices and invokes
// the caller's done exactly once.
type rangeOp struct {
	from, to uint64
	limit    int

	mu      sync.Mutex
	pending int // legs not yet reported, +1 submission sentinel
	status  Status
	parts   [][]Pair
	done    func(Response)
}

// finish retires one leg (or the submission sentinel), folding its result
// in; the caller that drops pending to zero completes the request. A leg
// that failed (worker death) poisons the whole range: a partial merge
// would silently present a hole as an empty interval. part must already be
// sorted ascending (legs scan in key order).
func (ro *rangeOp) finish(e *Engine, sh *shard, part []Pair, st Response) {
	ro.mu.Lock()
	if st.Status != StatusOK {
		ro.status = st.Status
	} else if part != nil {
		ro.parts = append(ro.parts, part)
	}
	ro.pending--
	last := ro.pending == 0
	ro.mu.Unlock()
	if !last {
		return
	}
	// Single completer past this point; the fields are ours alone.
	if ro.status != StatusOK {
		ro.done(Response{Status: ro.status})
		return
	}
	merged := mergePairs(ro.parts, ro.limit)
	if eo := e.obs; eo != nil {
		eo.rangeLen.Record(uint64(len(merged)))
	}
	ro.done(Response{Status: StatusOK, Pairs: merged})
}

// mergePairs k-way merges per-shard ascending slices into one ascending
// result of at most limit pairs. Shards partition the key space (a key
// lives on exactly one shard), so no cross-part duplicates can occur.
func mergePairs(parts [][]Pair, limit int) []Pair {
	live := parts[:0]
	total := 0
	for _, p := range parts {
		if len(p) > 0 {
			live = append(live, p)
			total += len(p)
		}
	}
	if total > limit {
		total = limit
	}
	if total == 0 {
		return nil
	}
	out := make([]Pair, 0, total)
	for len(out) < total {
		best := -1
		for i, p := range live {
			if best < 0 || p[0].Key < live[best][0].Key {
				best = i
			}
		}
		out = append(out, live[best][0])
		if live[best] = live[best][1:]; len(live[best]) == 0 {
			live[best] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return out
}

// submitRange validates and fans a Range out to every shard. The pending
// count starts at len(shards)+1: the +1 submission sentinel keeps the
// collector from completing while legs are still being enqueued, and its
// retirement (after the loop) also folds in any enqueue failures.
func (e *Engine) submitRange(req Request, done func(Response)) error {
	if !e.ranging {
		// A typed answer, not an error: the request was well-formed, the
		// serving structure just cannot execute it (see StatusUnsupported).
		done(Response{Status: StatusUnsupported})
		return nil
	}
	if req.KeyHi < req.Key || req.KeyHi >= ds.KeyLimit {
		done(Response{Status: StatusBadRequest})
		return nil
	}
	// Admission: a range touches every shard, so any shedding shard sheds
	// the whole request — scans are exactly the load a backlogged shard
	// must refuse, pinning as they do its oldest epoch for their duration.
	for _, sh := range e.shards {
		if sh.shedding.Load() {
			sh.shed.Add(1)
			return ErrShedding
		}
	}
	limit := e.cfg.MaxRangeResults
	if req.Limit != 0 && int(req.Limit) < limit {
		limit = int(req.Limit)
	}
	ro := &rangeOp{
		from:    req.Key,
		to:      req.KeyHi,
		limit:   limit,
		pending: len(e.shards) + 1,
		done:    done,
	}
	failed := Response{Status: StatusOK}
	for _, sh := range e.shards {
		if err := sh.q.push(request{req: req, rng: ro}); err != nil {
			// This leg will never run; account it here. Remaining shards
			// still get the request — the sentinel's failure status wins,
			// but accepted legs must execute (their queues own them now).
			failed = Response{Status: StatusBusy}
			ro.finish(e, nil, nil, Response{Status: StatusBusy})
		}
	}
	ro.finish(e, nil, nil, failed) // retire the submission sentinel
	return nil
}

// execRange runs one shard leg under the worker's leased tid: one
// ds.Ranger scan — a single StartOp/EndOp bracket, however many keys it
// visits — collecting at most limit pairs. The unreclaimed sample taken
// while the reservation is still notionally pinning (right after the scan)
// feeds the under-scan high-water mark, the end-to-end evidence for the
// paper's claim: under EBR a concurrent writer's garbage accumulates for
// the scan's whole duration; under the interval schemes it stays bounded.
func (e *Engine) execRange(sh *shard, tid int, r *request) {
	ro := r.rng
	sh.rangeOps.Add(1)
	sh.activeScans.Add(1)
	var t0 uint64
	if e.obs != nil {
		t0 = obs.Now()
	}
	var part []Pair
	// The visitor receives values, not handles, so nothing escapes the
	// bracket — the ds-side Range implementations are held to that contract
	// by ibrlint's range-callback rule (derefguard + lifecycle).
	sh.m.(ds.Ranger).Range(tid, ro.from, ro.to, func(k, v uint64) bool {
		part = append(part, Pair{Key: k, Val: v})
		return len(part) < ro.limit
	})
	sh.noteUnderScan(core.TotalUnreclaimed(sh.inst.Scheme(), e.tids))
	sh.activeScans.Add(-1)
	if eo := e.obs; eo != nil {
		d := obs.Now() - t0
		eo.opLat[latRange].Record(d)
		if r.req.TraceID != 0 {
			eo.opEvent(sh.idx, tid, r.req.TraceID, d)
		}
	}
	ro.finish(e, sh, part, Response{Status: StatusOK})
}
