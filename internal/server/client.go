package server

import (
	"bufio"
	"fmt"
	"net"
	"sync"
)

// Client is a pipelined connection to an ibrd server. It is safe for
// concurrent use: many goroutines may call Do on one Client, requests are
// coalesced into batched writes by a dedicated writer goroutine, and ids
// match responses back to callers — so N concurrent callers give a natural
// pipeline depth of N without any per-request connection state.
type Client struct {
	conn net.Conn
	reqs chan reqFrame
	done chan struct{} // closed by fail(): unblocks senders, stops the writer

	pmu      sync.Mutex // guards pending, nextID, err
	pending  map[uint32]chan result
	nextID   uint32
	err      error // first fatal error; set once, fails all later Dos
	failOnce sync.Once
}

type reqFrame struct {
	id       uint32
	op       Op
	key, val uint64
}

type result struct {
	resp Resp
	err  error
}

// Dial connects to an ibrd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	cl := &Client{
		conn:    conn,
		reqs:    make(chan reqFrame, 256),
		done:    make(chan struct{}),
		pending: map[uint32]chan result{},
	}
	go cl.writeLoop()
	go cl.readLoop()
	return cl, nil
}

// writeLoop encodes requests and writes them in batches: one syscall
// covers every request that arrived while the previous write was in
// flight, which is where the pipeline's throughput comes from.
func (c *Client) writeLoop() {
	var buf []byte
	for {
		var r reqFrame
		select {
		case r = <-c.reqs:
		case <-c.done:
			return
		}
		buf = appendRequest(buf[:0], r.id, r.op, r.key, r.val)
	coalesce:
		for len(buf) < 16*1024 {
			select {
			case r = <-c.reqs:
				buf = appendRequest(buf, r.id, r.op, r.key, r.val)
			default:
				break coalesce
			}
		}
		if _, err := c.conn.Write(buf); err != nil {
			c.fail(fmt.Errorf("server: write: %w", err))
			return
		}
	}
}

// readLoop dispatches responses to waiting callers by id. On any transport
// or protocol error it fails every pending and future call.
func (c *Client) readLoop() {
	br := bufio.NewReader(c.conn)
	frame := make([]byte, respPayloadLen)
	for {
		payload, err := readFrame(br, respPayloadLen, frame)
		if err != nil {
			c.fail(fmt.Errorf("server: connection lost: %w", err))
			return
		}
		id, st, val := parseResponse(payload)
		c.pmu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.pmu.Unlock()
		if !ok {
			c.fail(fmt.Errorf("server: response for unknown request id %d", id))
			return
		}
		ch <- result{resp: Resp{Status: st, Val: val}}
	}
}

// fail marks the client broken, stops the writer, and wakes every waiting
// caller exactly once each (a caller's channel leaves pending the moment
// anything is sent on it).
func (c *Client) fail(err error) {
	c.pmu.Lock()
	if c.err == nil {
		c.err = err
	}
	err = c.err
	stranded := c.pending
	c.pending = map[uint32]chan result{}
	c.pmu.Unlock()
	c.failOnce.Do(func() { close(c.done) })
	for _, ch := range stranded {
		ch <- result{err: err}
	}
}

// Do issues one operation and blocks for its response. A non-nil error
// means the connection is broken (no response will ever arrive); protocol
// outcomes like StatusNotFound are returned in Resp, not as errors.
func (c *Client) Do(op Op, key, val uint64) (Resp, error) {
	ch := make(chan result, 1)
	c.pmu.Lock()
	if c.err != nil {
		err := c.err
		c.pmu.Unlock()
		return Resp{}, err
	}
	// After nextID wraps uint32, the counter can land on an id whose
	// request is still in flight; assigning it again would overwrite the
	// earlier caller's channel in pending and strand that caller forever.
	// Skip ids that are still pending (there are at most MaxInflight-ish
	// of them, so this terminates after a handful of probes).
	id := c.nextID
	for {
		if _, taken := c.pending[id]; !taken {
			break
		}
		id++
	}
	c.nextID = id + 1
	c.pending[id] = ch
	c.pmu.Unlock()

	select {
	case c.reqs <- reqFrame{id: id, op: op, key: key, val: val}:
	case <-c.done:
		// The client failed while we were enqueueing; fail() has already
		// delivered the error to ch (we registered before selecting).
	}
	r := <-ch
	return r.resp, r.err
}

// Ping round-trips a no-op frame.
func (c *Client) Ping() error {
	r, err := c.Do(OpPing, 0, 42)
	if err != nil {
		return err
	}
	if r.Status != StatusOK || r.Val != 42 {
		return fmt.Errorf("server: ping got %v/%d", r.Status, r.Val)
	}
	return nil
}

// Close tears the connection down; in-flight Dos fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.fail(fmt.Errorf("server: client closed"))
	return err
}
