package server

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Client is a pipelined connection to an ibrd server. It is safe for
// concurrent use: many goroutines may call DoContext on one Client,
// requests are coalesced into batched writes by a dedicated writer
// goroutine, and ids match responses back to callers — so N concurrent
// callers give a natural pipeline depth of N without any per-request
// connection state.
//
// Every blocking call takes a context. Cancellation abandons the CALL, not
// the connection: a request already on the wire still gets its response,
// which is discarded on arrival (the result channel is buffered, so the
// reader never blocks on an abandoned caller), and the client stays usable.
type Client struct {
	conn  net.Conn
	reqs  chan reqFrame
	done  chan struct{} // closed by fail(): unblocks senders, stops the writer
	retry *RetryPolicy  // WithRetry: DoContext retries StatusBusy under it

	pmu      sync.Mutex // guards pending, nextID, err
	pending  map[uint32]chan result
	nextID   uint32
	err      error // first fatal error; set once, fails all later Dos
	failOnce sync.Once

	retries atomic.Uint64 // busy re-submissions made under a retry policy
}

type reqFrame struct {
	id  uint32
	req Request
}

type result struct {
	resp Response
	err  error
}

// ClientOption configures a Client at Dial time.
type ClientOption func(*Client)

// WithRetry makes every DoContext (and the ops built on it) transparently
// retry StatusBusy responses — the server's backpressure signal for a full
// shard queue, a shedding shard, or an exhausted node pool — under p with
// jittered exponential backoff, until the context ends or attempts run
// out. On exhaustion the call returns the last busy Response and an error
// wrapping ErrBusy, so callers distinguish "the server kept refusing"
// (errors.Is ErrBusy) from a broken connection. Other statuses and
// transport errors return immediately, unretried. The zero RetryPolicy
// selects the defaults.
func WithRetry(p RetryPolicy) ClientOption {
	return func(c *Client) {
		pol := p.withDefaults()
		c.retry = &pol
	}
}

// RetryPolicy shapes a retrying client's handling of StatusBusy responses
// (see WithRetry). Delays grow exponentially from BaseDelay, are capped at
// MaxDelay, and carry ±50% jitter so a fleet of clients backing off from
// the same overloaded shard does not resynchronize into waves. The zero
// value selects the defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, first included (default 4).
	MaxAttempts int
	// BaseDelay is the pre-jitter delay after the first busy response
	// (default 1ms); attempt n waits about BaseDelay<<n.
	BaseDelay time.Duration
	// MaxDelay caps the pre-jitter delay (default 100ms).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	return p
}

// backoffDelay is attempt n's (0-based) sleep: exponential growth capped at
// MaxDelay, then jittered to a uniform value in [exp/2, exp). rng may be
// nil (the global source); tests pass a seeded one for determinism.
func backoffDelay(p RetryPolicy, attempt int, rng *rand.Rand) time.Duration {
	exp := p.BaseDelay
	for i := 0; i < attempt && exp < p.MaxDelay; i++ {
		exp *= 2
	}
	if exp > p.MaxDelay {
		exp = p.MaxDelay
	}
	half := exp / 2
	if half <= 0 {
		return exp
	}
	var j int64
	if rng != nil {
		j = rng.Int63n(int64(half))
	} else {
		j = rand.Int63n(int64(half))
	}
	return half + time.Duration(j)
}

// Dial connects to an ibrd server.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	cl := &Client{
		conn:    conn,
		reqs:    make(chan reqFrame, 256),
		done:    make(chan struct{}),
		pending: map[uint32]chan result{},
	}
	for _, o := range opts {
		o(cl)
	}
	go cl.writeLoop()
	go cl.readLoop()
	return cl, nil
}

// writeLoop encodes requests and writes them in batches: one syscall
// covers every request that arrived while the previous write was in
// flight, which is where the pipeline's throughput comes from.
func (c *Client) writeLoop() {
	var buf []byte
	for {
		var r reqFrame
		select {
		case r = <-c.reqs:
		case <-c.done:
			return
		}
		buf = appendRequest(buf[:0], r.id, r.req)
	coalesce:
		for len(buf) < 16*1024 {
			select {
			case r = <-c.reqs:
				buf = appendRequest(buf, r.id, r.req)
			default:
				break coalesce
			}
		}
		if _, err := c.conn.Write(buf); err != nil {
			c.fail(fmt.Errorf("server: write: %w", err))
			return
		}
	}
}

// readLoop dispatches responses to waiting callers by id. On any transport
// or protocol error it fails every pending and future call. Responses for
// abandoned calls (context expired after the request was sent) still have a
// pending entry with a buffered channel, so delivery never blocks and an
// id is recycled only after its response arrived.
func (c *Client) readLoop() {
	br := bufio.NewReader(c.conn)
	frame := make([]byte, 0, respHeaderLen)
	for {
		payload, err := readFrame(br, maxRespFrame, frame)
		if err != nil {
			c.fail(fmt.Errorf("server: connection lost: %w", err))
			return
		}
		frame = payload[:0]
		id, resp, perr := parseResponse(payload)
		if perr != nil {
			c.fail(fmt.Errorf("server: connection lost: %w", perr))
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.pmu.Unlock()
		if !ok {
			c.fail(fmt.Errorf("server: response for unknown request id %d", id))
			return
		}
		ch <- result{resp: resp}
	}
}

// fail marks the client broken, stops the writer, and wakes every waiting
// caller exactly once each (a caller's channel leaves pending the moment
// anything is sent on it).
func (c *Client) fail(err error) {
	c.pmu.Lock()
	if c.err == nil {
		c.err = err
	}
	err = c.err
	stranded := c.pending
	c.pending = map[uint32]chan result{}
	c.pmu.Unlock()
	c.failOnce.Do(func() { close(c.done) })
	for _, ch := range stranded {
		ch <- result{err: err}
	}
}

// DoContext issues one typed operation and blocks for its response or the
// context's end, whichever comes first. A non-nil error is either the
// context's (the call was abandoned; the connection is fine and the client
// remains usable), a transport error (the connection is broken and every
// future call fails the same way), or — on a WithRetry client — an
// ErrBusy-wrapping exhaustion error. Protocol outcomes like StatusNotFound
// or StatusUnsupported are returned in the Response, not as errors. A zero
// req.TraceID is filled from ctx (see WithTraceID).
func (c *Client) DoContext(ctx context.Context, req Request) (Response, error) {
	if req.TraceID == 0 {
		req.TraceID = TraceIDFrom(ctx)
	}
	if c.retry == nil {
		return c.doOnce(ctx, req)
	}
	return c.doRetry(ctx, req, *c.retry)
}

// doOnce issues req exactly once.
func (c *Client) doOnce(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	ch := make(chan result, 1)
	c.pmu.Lock()
	if c.err != nil {
		err := c.err
		c.pmu.Unlock()
		return Response{}, err
	}
	// After nextID wraps uint32, the counter can land on an id whose
	// request is still in flight; assigning it again would overwrite the
	// earlier caller's channel in pending and strand that caller forever.
	// Skip ids that are still pending (there are at most MaxInflight-ish
	// of them, so this terminates after a handful of probes).
	id := c.nextID
	for {
		if _, taken := c.pending[id]; !taken {
			break
		}
		id++
	}
	c.nextID = id + 1
	c.pending[id] = ch
	c.pmu.Unlock()

	select {
	case c.reqs <- reqFrame{id: id, req: req}:
	case <-c.done:
		// The client failed while we were enqueueing; fail() has already
		// delivered the error to ch (we registered before selecting).
	case <-ctx.Done():
		// Nothing went on the wire. If the entry is still ours, withdraw it
		// and the id is free for reuse; if it is already gone, fail() raced
		// us and a result is (or is about to be) in ch — consume it so the
		// call reports the more specific outcome.
		c.pmu.Lock()
		_, mine := c.pending[id]
		delete(c.pending, id)
		c.pmu.Unlock()
		if mine {
			return Response{}, ctx.Err()
		}
		r := <-ch
		return r.resp, r.err
	}
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-ctx.Done():
		// The request is on the wire and its response WILL arrive carrying
		// this id, so the pending entry must stay: readLoop uses it to
		// recognize the id and discards the result into the buffered
		// channel. Deleting it here would make the response "unknown" and
		// kill the whole connection.
		return Response{}, ctx.Err()
	}
}

// doRetry issues req, retrying StatusBusy under p (see WithRetry).
func (c *Client) doRetry(ctx context.Context, req Request, p RetryPolicy) (Response, error) {
	var resp Response
	for attempt := 0; ; attempt++ {
		var err error
		resp, err = c.doOnce(ctx, req)
		if err != nil {
			return resp, err
		}
		if resp.Status != StatusBusy {
			return resp, nil
		}
		if attempt == p.MaxAttempts-1 {
			return resp, fmt.Errorf("server: %d attempts exhausted: %w", p.MaxAttempts, ErrBusy)
		}
		t := time.NewTimer(backoffDelay(p, attempt, nil))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return resp, ctx.Err()
		}
		c.retries.Add(1)
	}
}

// Get looks key up.
func (c *Client) Get(ctx context.Context, key uint64) (Response, error) {
	return c.DoContext(ctx, Request{Op: OpGet, Key: key})
}

// Put inserts key→val if absent. ttl, when positive, arms the server-side
// expiry: the key is removed — through the reclamation scheme's normal
// retire path — once it lapses. Pass 0 for no expiry.
func (c *Client) Put(ctx context.Context, key, val uint64, ttl time.Duration) (Response, error) {
	return c.DoContext(ctx, Request{Op: OpPut, Key: key, Val: val, TTL: ttl})
}

// Del removes key.
func (c *Client) Del(ctx context.Context, key uint64) (Response, error) {
	return c.DoContext(ctx, Request{Op: OpDel, Key: key})
}

// Range scans [from, hi] ascending, returning at most limit pairs (0 =
// the server's default cap). The scan executes inside one reservation
// interval per shard — it is the paper's long-running read, issued over
// the wire.
func (c *Client) Range(ctx context.Context, from, hi uint64, limit uint32) (Response, error) {
	return c.DoContext(ctx, Request{Op: OpRange, Key: from, KeyHi: hi, Limit: limit})
}

// Do issues one positional operation with no deadline.
//
// Deprecated: use DoContext with a typed Request (or the Get/Put/Del/Range
// helpers), which bounds the wait and keeps the client usable when a
// caller gives up.
func (c *Client) Do(op Op, key, val uint64) (Resp, error) {
	return c.DoContext(context.Background(), Request{Op: op, Key: key, Val: val})
}

// DoRetry issues one positional operation, retrying StatusBusy under p.
//
// Deprecated: dial with WithRetry(p) instead; DoContext then retries
// transparently.
func (c *Client) DoRetry(ctx context.Context, op Op, key, val uint64, p RetryPolicy) (Resp, error) {
	return c.doRetry(ctx, Request{Op: op, Key: key, Val: val, TraceID: TraceIDFrom(ctx)}, p.withDefaults())
}

// Retries returns how many busy re-submissions the client's retry policy
// has made over its lifetime — the load generator's retry-rate counter.
func (c *Client) Retries() uint64 { return c.retries.Load() }

// PingContext round-trips a no-op frame under ctx.
func (c *Client) PingContext(ctx context.Context) error {
	r, err := c.DoContext(ctx, Request{Op: OpPing, Val: 42})
	if err != nil {
		return err
	}
	if r.Status != StatusOK || r.Val != 42 {
		return fmt.Errorf("server: ping got %v/%d", r.Status, r.Val)
	}
	return nil
}

// Ping round-trips a no-op frame with no deadline.
//
// Deprecated: use PingContext.
func (c *Client) Ping() error { return c.PingContext(context.Background()) }

// Close tears the connection down immediately; in-flight calls fail with an
// error wrapping ErrClosed.
func (c *Client) Close() error {
	// fail() first: it wins the first-error slot, so in-flight calls see
	// ErrClosed instead of the readLoop's "use of closed connection".
	c.fail(fmt.Errorf("server: client closed: %w", ErrClosed))
	return c.conn.Close()
}

// CloseContext waits for every in-flight call to complete — the graceful
// counterpart to Close — then tears the connection down. If ctx ends
// first, it closes immediately (failing the stragglers) and returns the
// context's error.
func (c *Client) CloseContext(ctx context.Context) error {
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	for {
		c.pmu.Lock()
		n := len(c.pending)
		broken := c.err != nil
		c.pmu.Unlock()
		if n == 0 || broken {
			return c.Close()
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			c.Close()
			return ctx.Err()
		}
	}
}
