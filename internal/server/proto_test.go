package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

func TestProtoRequestRoundTrip(t *testing.T) {
	var wire []byte
	type fr struct {
		id  uint32
		req Request
	}
	frames := []fr{
		{0, Request{Op: OpPing, Val: 42}},
		{1, Request{Op: OpGet, Key: 7, TraceID: 0xDEADBEEF}},
		{2, Request{Op: OpPut, Key: ^uint64(0), Val: ^uint64(0), TTL: 250 * time.Millisecond, TraceID: ^uint64(0)}},
		{3, Request{Op: OpRange, Key: 10, KeyHi: 1 << 61, Limit: 4096}},
		{4294967295, Request{Op: OpDel, Key: 1 << 61, TraceID: 1}},
	}
	for _, f := range frames {
		wire = appendRequest(wire, f.id, f.req)
	}
	br := bufio.NewReader(bytes.NewReader(wire))
	buf := make([]byte, reqPayloadV2Len)
	for _, want := range frames {
		p, err := readFrame(br, maxReqFrame, buf)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		id, req, legacy, err := parseRequest(p)
		if err != nil {
			t.Fatalf("parseRequest: %v", err)
		}
		if id != want.id || req != want.req || legacy {
			t.Fatalf("got (%d %+v legacy=%v), want %+v", id, req, legacy, want)
		}
	}
	if _, err := readFrame(br, maxReqFrame, buf); err == nil {
		t.Fatal("expected EOF after last frame")
	}
}

// TestProtoRequestV1Compat pins the evolvability promise: a 29-byte legacy
// frame still parses, with the v2-only fields zero.
func TestProtoRequestV1Compat(t *testing.T) {
	wire := appendRequestV1(nil, 17, OpPut, 5, 99, 0xABC)
	br := bufio.NewReader(bytes.NewReader(wire))
	p, err := readFrame(br, maxReqFrame, nil)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	id, req, legacy, err := parseRequest(p)
	if err != nil {
		t.Fatalf("parseRequest: %v", err)
	}
	want := Request{Op: OpPut, Key: 5, Val: 99, TraceID: 0xABC}
	if id != 17 || req != want {
		t.Fatalf("got (%d %+v), want (17 %+v)", id, req, want)
	}
	if !legacy {
		t.Fatal("29-byte frame not flagged legacy: its response would use the v2 layout")
	}
	if req.TTL != 0 || req.KeyHi != 0 || req.Limit != 0 {
		t.Fatalf("v1 request must zero-fill v2 fields: %+v", req)
	}
}

// TestProtoResponseV1Compat pins the response direction of the promise: the
// legacy encoding is exactly 13 payload bytes, readable by a pre-range
// client whose readFrame bound is 13.
func TestProtoResponseV1Compat(t *testing.T) {
	wire := appendResponseV1(nil, 23, Response{Status: StatusExists, Val: 0xFEED})
	if len(wire) != 4+respPayloadV1Len {
		t.Fatalf("v1 response frame is %d bytes, want %d", len(wire), 4+respPayloadV1Len)
	}
	// A v1 client bounds announced lengths at exactly respPayloadV1Len.
	p, err := readFrame(bufio.NewReader(bytes.NewReader(wire)), respPayloadV1Len, nil)
	if err != nil {
		t.Fatalf("v1-bounded readFrame: %v", err)
	}
	id, resp, err := parseResponseV1(p)
	if err != nil {
		t.Fatalf("parseResponseV1: %v", err)
	}
	if id != 23 || resp.Status != StatusExists || resp.Val != 0xFEED {
		t.Fatalf("got (%d %+v), want (23 EXISTS 0xFEED)", id, resp)
	}
	// The v2 encoding must NOT pass a v1 reader: that asymmetry is the bug
	// class this test exists for.
	v2 := appendResponse(nil, 23, Response{Status: StatusExists, Val: 0xFEED})
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(v2)), respPayloadV1Len, nil); err == nil {
		t.Fatal("v2 response accepted by a v1-bounded reader")
	}
}

func TestProtoTTLWire(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want uint32
	}{
		{0, 0},
		{-time.Second, 0},
		{time.Millisecond, 1},
		{200 * time.Microsecond, 1}, // rounds up, never silently immortal
		{1500 * time.Microsecond, 2},
		{time.Hour, 3600_000},
		{100 * 24 * 365 * time.Hour, ^uint32(0)}, // ~100 years clamps at wire max
	}
	for _, c := range cases {
		if got := ttlToWire(c.in); got != c.want {
			t.Errorf("ttlToWire(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestProtoResponseRoundTrip(t *testing.T) {
	resps := []struct {
		id uint32
		r  Response
	}{
		{9, Response{Status: StatusExists, Val: 77}},
		{10, Response{Status: StatusOK}},
		{11, Response{Status: StatusOK, Pairs: []Pair{{1, 100}, {2, 200}, {^uint64(0) - 1, ^uint64(0)}}}},
	}
	var wire []byte
	for _, c := range resps {
		wire = appendResponse(wire, c.id, c.r)
	}
	br := bufio.NewReader(bytes.NewReader(wire))
	var buf []byte
	for _, want := range resps {
		p, err := readFrame(br, maxRespFrame, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = p[:0]
		id, r, err := parseResponse(p)
		if err != nil {
			t.Fatalf("parseResponse: %v", err)
		}
		if id != want.id || r.Status != want.r.Status || r.Val != want.r.Val {
			t.Fatalf("got (%d %+v), want %+v", id, r, want)
		}
		if len(r.Pairs) != len(want.r.Pairs) {
			t.Fatalf("got %d pairs, want %d", len(r.Pairs), len(want.r.Pairs))
		}
		for i := range r.Pairs {
			if r.Pairs[i] != want.r.Pairs[i] {
				t.Fatalf("pair %d: got %+v, want %+v", i, r.Pairs[i], want.r.Pairs[i])
			}
		}
	}
}

func TestProtoRejectsBadLengths(t *testing.T) {
	// A response-sized frame is not a valid request length.
	var wire []byte
	wire = appendResponse(wire, 1, Response{Status: StatusOK})
	if p, err := readFrame(bufio.NewReader(bytes.NewReader(wire)), maxReqFrame, nil); err == nil {
		if _, _, _, perr := parseRequest(p); perr == nil {
			t.Fatal("response-sized frame accepted as a request")
		}
	}
	// Absurd length prefix: reject before attempting to read the payload.
	huge := binary.BigEndian.AppendUint32(nil, maxRespFrame+1)
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(huge)), maxRespFrame, nil); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// A request length that is neither v1 nor v2 is a desync.
	odd := binary.BigEndian.AppendUint32(nil, 31)
	odd = append(odd, make([]byte, 31)...)
	p, err := readFrame(bufio.NewReader(bytes.NewReader(odd)), maxReqFrame, nil)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if _, _, _, perr := parseRequest(p); perr == nil {
		t.Fatal("31-byte request accepted")
	}
	// A response whose announced pair count disagrees with its length.
	bad := appendResponse(nil, 3, Response{Status: StatusOK, Pairs: []Pair{{1, 2}}})
	binary.BigEndian.PutUint32(bad[4+13:], 2) // claim 2 pairs, carry 1
	p, err = readFrame(bufio.NewReader(bytes.NewReader(bad)), maxRespFrame, nil)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if _, _, perr := parseResponse(p); perr == nil {
		t.Fatal("pair-count mismatch accepted")
	}
}
