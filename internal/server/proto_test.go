package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
)

func TestProtoRequestRoundTrip(t *testing.T) {
	var wire []byte
	type req struct {
		id       uint32
		op       Op
		key, val uint64
		trace    uint64
	}
	reqs := []req{
		{0, OpPing, 0, 42, 0},
		{1, OpGet, 7, 0, 0xDEADBEEF},
		{2, OpPut, ^uint64(0), ^uint64(0), ^uint64(0)},
		{4294967295, OpDel, 1 << 61, 3, 1},
	}
	for _, r := range reqs {
		wire = appendRequest(wire, r.id, r.op, r.key, r.val, r.trace)
	}
	br := bufio.NewReader(bytes.NewReader(wire))
	buf := make([]byte, reqPayloadLen)
	for _, want := range reqs {
		p, err := readFrame(br, reqPayloadLen, buf)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		id, op, key, val, trace := parseRequest(p)
		if id != want.id || op != want.op || key != want.key || val != want.val || trace != want.trace {
			t.Fatalf("got (%d %v %d %d %d), want %+v", id, op, key, val, trace, want)
		}
	}
	if _, err := readFrame(br, reqPayloadLen, buf); err == nil {
		t.Fatal("expected EOF after last frame")
	}
}

func TestProtoResponseRoundTrip(t *testing.T) {
	var wire []byte
	wire = appendResponse(wire, 9, StatusExists, 77)
	wire = appendResponse(wire, 10, StatusOK, 0)
	br := bufio.NewReader(bytes.NewReader(wire))
	buf := make([]byte, respPayloadLen)
	p, err := readFrame(br, respPayloadLen, buf)
	if err != nil {
		t.Fatal(err)
	}
	if id, st, val := parseResponse(p); id != 9 || st != StatusExists || val != 77 {
		t.Fatalf("got (%d %v %d)", id, st, val)
	}
	p, err = readFrame(br, respPayloadLen, buf)
	if err != nil {
		t.Fatal(err)
	}
	if id, st, val := parseResponse(p); id != 10 || st != StatusOK || val != 0 {
		t.Fatalf("got (%d %v %d)", id, st, val)
	}
}

func TestProtoRejectsBadLengths(t *testing.T) {
	// Wrong announced length for the direction.
	var wire []byte
	wire = appendResponse(wire, 1, StatusOK, 0)
	br := bufio.NewReader(bytes.NewReader(wire))
	if _, err := readFrame(br, reqPayloadLen, make([]byte, reqPayloadLen)); err == nil {
		t.Fatal("response-sized frame accepted as a request")
	}
	// Absurd length prefix: reject before attempting to read the payload.
	huge := binary.BigEndian.AppendUint32(nil, maxFrame+1)
	br = bufio.NewReader(bytes.NewReader(huge))
	if _, err := readFrame(br, reqPayloadLen, make([]byte, reqPayloadLen)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}
