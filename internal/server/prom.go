package server

import (
	"io"
	"net/http"
	"strconv"

	"ibr/internal/obs"
)

// WriteMetrics emits the engine's full Prometheus text exposition: per-shard
// serving and reclamation gauges/counters (always available — they come from
// Engine.Stats), the allocator cache counters, and, when observability is
// enabled, the histogram families (retire→free age per shard, scan duration,
// free-batch size, op latency) plus the watchdog and flight-recorder series.
// srv may be nil; when set, the connection front end's counters ride along.
func (e *Engine) WriteMetrics(w io.Writer, srv *Server) error {
	p := obs.NewPromWriter(w)
	stats := e.Stats()
	shardLabel := make([][]obs.Label, len(stats))
	for i := range stats {
		shardLabel[i] = []obs.Label{{K: "shard", V: strconv.Itoa(i)}}
	}

	p.Header("ibr_engine_info", "gauge", "Engine configuration (value is always 1).")
	p.Uint("ibr_engine_info", []obs.Label{
		{K: "structure", V: e.cfg.Structure},
		{K: "scheme", V: e.cfg.Scheme},
		{K: "workers_per_shard", V: strconv.Itoa(e.cfg.WorkersPerShard)},
	}, 1)

	p.Header("ibr_ops_total", "counter", "Operations completed per shard.")
	for i, s := range stats {
		p.Uint("ibr_ops_total", shardLabel[i], s.Ops)
	}
	p.Header("ibr_queue_depth", "gauge", "Requests queued per shard.")
	for i, s := range stats {
		p.Int("ibr_queue_depth", shardLabel[i], int64(s.QueueDepth))
	}
	p.Header("ibr_unreclaimed", "gauge", "Retired-but-unreclaimed blocks per shard (the paper's Fig. 9 metric).")
	for i, s := range stats {
		p.Int("ibr_unreclaimed", shardLabel[i], int64(s.Unreclaimed))
	}
	p.Header("ibr_live_blocks", "gauge", "Live node-pool slots per shard.")
	for i, s := range stats {
		p.Uint("ibr_live_blocks", shardLabel[i], s.Live)
	}
	p.Header("ibr_epoch", "gauge", "Shard scheme's current global epoch (0 for epoch-free schemes).")
	for i, s := range stats {
		p.Uint("ibr_epoch", shardLabel[i], s.Epoch)
	}
	p.Header("ibr_epoch_lag", "gauge", "Current epoch minus the oldest reserved lower endpoint, per shard (0 when idle).")
	for i, s := range stats {
		p.Uint("ibr_epoch_lag", shardLabel[i], s.EpochLag)
	}
	p.Header("ibr_scans_total", "counter", "Retire-list scans per shard.")
	for i, s := range stats {
		p.Uint("ibr_scans_total", shardLabel[i], s.Scan.Scans)
	}
	p.Header("ibr_scan_examined_total", "counter", "Retired blocks examined by scans per shard.")
	for i, s := range stats {
		p.Uint("ibr_scan_examined_total", shardLabel[i], s.Scan.Scanned)
	}
	p.Header("ibr_scan_freed_total", "counter", "Blocks freed by scans per shard.")
	for i, s := range stats {
		p.Uint("ibr_scan_freed_total", shardLabel[i], s.Scan.Freed)
	}
	p.Header("ibr_scan_bucket_skips_total", "counter", "Retire buckets kept wholesale by one corner test per shard.")
	for i, s := range stats {
		p.Uint("ibr_scan_bucket_skips_total", shardLabel[i], s.Scan.BucketSkips)
	}
	p.Header("ibr_scan_bucket_frees_total", "counter", "Retire buckets freed wholesale by one corner test per shard.")
	for i, s := range stats {
		p.Uint("ibr_scan_bucket_frees_total", shardLabel[i], s.Scan.BucketFrees)
	}

	p.Header("ibr_tid_quarantines_total", "counter", "Tids quarantined per shard (stalled or dead lease holders whose reservation was cleared and retire list adopted).")
	for i, s := range stats {
		p.Uint("ibr_tid_quarantines_total", shardLabel[i], s.Quarantines)
	}
	p.Header("ibr_blocks_adopted_total", "counter", "Retired blocks adopted from quarantined tids per shard.")
	for i, s := range stats {
		p.Uint("ibr_blocks_adopted_total", shardLabel[i], s.Adopted)
	}
	p.Header("ibr_submits_shed_total", "counter", "Submits refused with ErrShedding per shard (unreclaimed backlog above the hard watermark).")
	for i, s := range stats {
		p.Uint("ibr_submits_shed_total", shardLabel[i], s.Shed)
	}
	p.Header("ibr_shed_episodes_total", "counter", "Times shedding switched on per shard.")
	for i, s := range stats {
		p.Uint("ibr_shed_episodes_total", shardLabel[i], s.ShedEpisodes)
	}
	p.Header("ibr_shedding", "gauge", "Whether the shard is currently shedding load (1) or admitting (0).")
	for i, s := range stats {
		v := uint64(0)
		if s.Shedding {
			v = 1
		}
		p.Uint("ibr_shedding", shardLabel[i], v)
	}
	p.Header("ibr_pool_exhausted_total", "counter", "Puts answered StatusBusy because the shard node pool was exhausted, per shard.")
	for i, s := range stats {
		p.Uint("ibr_pool_exhausted_total", shardLabel[i], s.PoolExhausted)
	}
	p.Header("ibr_worker_deaths_total", "counter", "Worker goroutines lost to panics per shard (each is quarantined and replaced).")
	for i, s := range stats {
		p.Uint("ibr_worker_deaths_total", shardLabel[i], s.Deaths)
	}

	p.Header("ibr_range_legs_total", "counter", "Range scan legs executed per shard (one reservation interval each).")
	for i, s := range stats {
		p.Uint("ibr_range_legs_total", shardLabel[i], s.RangeOps)
	}
	p.Header("ibr_active_scans", "gauge", "Range legs currently holding a reservation per shard.")
	for i, s := range stats {
		p.Int("ibr_active_scans", shardLabel[i], s.ActiveScans)
	}
	p.Header("ibr_unreclaimed_under_scan", "gauge", "Peak retired-but-unreclaimed blocks sampled while a range leg held its reservation, per shard — EBR's grows with scan length, the interval schemes' stays bounded.")
	for i, s := range stats {
		p.Int("ibr_unreclaimed_under_scan", shardLabel[i], s.UnderScanHW)
	}
	p.Header("ibr_expired_total", "counter", "Keys removed by TTL expiry per shard (each retires through the normal scheme path).")
	for i, s := range stats {
		p.Uint("ibr_expired_total", shardLabel[i], s.Expired)
	}
	p.Header("ibr_expiry_pending", "gauge", "Keys currently armed in the expiry wheel per shard.")
	for i, s := range stats {
		p.Int("ibr_expiry_pending", shardLabel[i], int64(s.ExpiryPending))
	}
	p.Header("ibr_retired_total", "counter", "Node retirements per shard, split by what caused them (user delete vs TTL expiry).")
	for i, s := range stats {
		p.Uint("ibr_retired_total", append(shardLabel[i], obs.Label{K: "source", V: "user"}), s.RetiredUser)
		p.Uint("ibr_retired_total", append(shardLabel[i], obs.Label{K: "source", V: "expiry"}), s.RetiredExpiry)
	}

	p.Header("ibr_pool_cache_hits_total", "counter", "Thread-cache Alloc hits per shard pool.")
	p.Header("ibr_pool_cache_misses_total", "counter", "Thread-cache Alloc misses per shard pool.")
	p.Header("ibr_pool_global_refills_total", "counter", "Cache refills served by the global free list per shard pool.")
	p.Header("ibr_pool_fresh_carves_total", "counter", "Cache refills carved from never-used slots per shard pool.")
	for i, sh := range e.shards {
		ps := sh.inst.PoolStats()
		p.Uint("ibr_pool_cache_hits_total", shardLabel[i], ps.CacheHits)
		p.Uint("ibr_pool_cache_misses_total", shardLabel[i], ps.CacheMisses)
		p.Uint("ibr_pool_global_refills_total", shardLabel[i], ps.GlobalRefills)
		p.Uint("ibr_pool_fresh_carves_total", shardLabel[i], ps.FreshCarves)
	}

	if eo := e.obs; eo != nil {
		scheme := []obs.Label{{K: "scheme", V: e.cfg.Scheme}}
		p.Header("ibr_retire_age", "histogram", "Retire-to-free age of reclaimed blocks, in epochs, per shard.")
		for i := range eo.retireAge {
			p.Histogram("ibr_retire_age", append(shardLabel[i], scheme[0]), eo.retireAge[i].Snapshot())
		}
		p.Header("ibr_scan_duration_ns", "histogram", "Retire-list scan wall time in nanoseconds.")
		p.Histogram("ibr_scan_duration_ns", scheme, eo.scanDur.Snapshot())
		p.Header("ibr_free_batch_size", "histogram", "Blocks freed per scan (zero-free scans included).")
		p.Histogram("ibr_free_batch_size", scheme, eo.freeBatch.Snapshot())
		p.Header("ibr_op_latency_ns", "histogram", "In-shard execution latency per op type in nanoseconds (range = one shard leg's scan).")
		for i, h := range eo.opLat {
			p.Histogram("ibr_op_latency_ns", []obs.Label{{K: "op", V: latNames[i]}}, h.Snapshot())
		}
		p.Header("ibr_range_len", "histogram", "Merged result sizes of completed Range scans, in pairs.")
		p.Histogram("ibr_range_len", nil, eo.rangeLen.Snapshot())
		p.Header("ibr_scan_phase_ns", "histogram", "Scan wall time by phase: summarize, bucket_decide, residual_sweep, free_batch.")
		for ph := 0; ph < obs.NumScanPhases; ph++ {
			p.Histogram("ibr_scan_phase_ns", []obs.Label{{K: "phase", V: obs.PhaseNames[ph]}}, eo.phases[ph].Snapshot())
		}

		// Pinned-memory blame: who is responsible for the unreclaimed
		// backlog right now. Top-k per shard keeps the scrape bounded while
		// still naming every meaningful pinner (k > the handful of
		// concurrently stalled tids any recipe injects).
		const blameTopK = 8
		blame := make([][]obs.PinStat, len(eo.scheme))
		for i := range eo.scheme {
			blame[i] = eo.scheme[i].PinnedBlame()
			if len(blame[i]) > blameTopK {
				blame[i] = blame[i][:blameTopK]
			}
		}
		p.Header("ibr_pinned_blocks", "gauge", "Retired-but-unreclaimed blocks charged to the reservation-holding tid that pinned them at the latest scans (top-k per shard).")
		for i, top := range blame {
			for _, ps := range top {
				p.Uint("ibr_pinned_blocks", append(shardLabel[i], obs.Label{K: "tid", V: strconv.Itoa(ps.Tid)}), ps.Blocks)
			}
		}
		p.Header("ibr_pin_age_seconds", "gauge", "How long each blamed tid has been continuously pinning memory.")
		for i, top := range blame {
			for _, ps := range top {
				p.Sample("ibr_pin_age_seconds", append(shardLabel[i], obs.Label{K: "tid", V: strconv.Itoa(ps.Tid)}), ps.Age.Seconds())
			}
		}

		if wd := eo.watchdog; wd != nil {
			p.Header("ibr_stall_alerts_total", "counter", "Stall alerts raised (reservation unchanged past the threshold).")
			p.Uint("ibr_stall_alerts_total", nil, wd.Alerts())
			p.Header("ibr_stalled_reservations", "gauge", "Reservations currently held past the stall threshold.")
			p.Int("ibr_stalled_reservations", nil, wd.Stalled())
			p.Header("ibr_max_epoch_lag", "gauge", "Largest epoch minus reserved lower endpoint at the last watchdog tick.")
			p.Uint("ibr_max_epoch_lag", nil, wd.MaxEpochLag())
		}

		p.Header("ibr_flight_events_total", "counter", "Flight-recorder events written across all rings.")
		p.Uint("ibr_flight_events_total", nil, eo.rec.Written())
		p.Header("ibr_flight_dropped_total", "counter", "Flight-recorder events overwritten before any dump saw them.")
		p.Uint("ibr_flight_dropped_total", nil, eo.rec.Dropped())
	}

	if srv != nil {
		p.Header("ibrd_connections_accepted_total", "counter", "TCP connections accepted.")
		p.Uint("ibrd_connections_accepted_total", nil, srv.Accepted())
		p.Header("ibrd_conns_dropped_proto_total", "counter", "Connections dropped for protocol violations.")
		p.Uint("ibrd_conns_dropped_proto_total", nil, srv.ProtoDropped())
		p.Header("ibrd_frames_rejected_total", "counter", "Frames rejected with an error status but the connection kept.")
		p.Uint("ibrd_frames_rejected_total", nil, srv.ProtoRejected())
	}
	return p.Err()
}

// MetricsHandler serves WriteMetrics as a Prometheus scrape endpoint.
// srv may be nil when no connection front end exists (tests).
func MetricsHandler(e *Engine, srv *Server) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		_ = e.WriteMetrics(w, srv)
	})
}

// FlightRecorderHandler dumps the flight recorder as JSONL. The snapshot
// never blocks the writing workers; an engine without observability serves
// 404 so scripts can probe for the capability.
func FlightRecorderHandler(e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := e.Obs().Recorder()
		if rec == nil {
			http.Error(w, "flight recorder disabled (run with -obs)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = rec.WriteJSONL(w)
	})
}
