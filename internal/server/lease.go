package server

import (
	"sync"
	"sync/atomic"
)

// leaseRole says what kind of goroutine holds a tid.
type leaseRole uint8

const (
	roleWorker  leaseRole = iota // serves requests off the shard queue
	roleStaller                  // injected stall (pins a reservation, serves nothing)
)

// leaseStatus is a tid's position in the lease lifecycle.
type leaseStatus uint8

const (
	// leaseFree: no goroutine owns the tid; its reservation is withdrawn
	// and its retire list empty or adoptable by whoever leases it next.
	leaseFree leaseStatus = iota
	// leaseHeld: one goroutine owns the tid and is the only one allowed to
	// run scheme operations under it.
	leaseHeld
	// leaseQuarantined: the remediator revoked the lease. The former holder
	// must no longer act under the tid; a worker-executed control op will
	// clear its reservation, adopt its retire list, and return it to free.
	leaseQuarantined
)

// lease tracks one scheme tid of one shard. All fields except beat are
// guarded by the owning leaseTable's mutex; beat is written lock-free by the
// holder (once per executed batch) and read by the remediator, so a stalled
// holder is distinguishable from a merely busy one.
type lease struct {
	role   leaseRole
	status leaseStatus
	// gen increments each time the tid is re-leased. Holders carry the gen
	// they acquired and present it on every state change, so a goroutine
	// whose lease was revoked (and possibly re-issued) cannot mutate the
	// successor's lease — the ABA guard of the quarantine protocol.
	gen uint64
	// parked is set by a staller right before it blocks and means "this
	// holder has no node references and will re-check its lease before
	// touching the scheme again" — the evidence that makes clearing its
	// reservation safe.
	parked bool
	// dead is set when a worker goroutine exits via panic; its tid can be
	// quarantined immediately.
	dead bool
	beat atomic.Uint64
}

// leaseTable owns every scheme tid of one shard. Workers and stallers
// acquire tids from it instead of being handed fixed indices, which is what
// lets the remediator revoke a stalled tid and hand a fresh one to a
// replacement goroutine while the scheme (sized for all tids up front)
// stays untouched.
type leaseTable struct {
	mu     sync.Mutex
	leases []lease
	free   []int // LIFO of leaseFree tids
}

func newLeaseTable(tids int) *leaseTable {
	t := &leaseTable{leases: make([]lease, tids), free: make([]int, 0, tids)}
	// Hand out low tids first: workers land on 0..W-1 as before, spares sit
	// at the top until a quarantine consumes one.
	for tid := tids - 1; tid >= 0; tid-- {
		t.free = append(t.free, tid)
	}
	return t
}

// acquire leases a free tid to a new holder. ok is false when none is free
// (all tids held or awaiting quarantine cleanup); callers retry later.
func (t *leaseTable) acquire(role leaseRole) (tid int, gen uint64, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.free) == 0 {
		return 0, 0, false
	}
	tid = t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	l := &t.leases[tid]
	l.role = role
	l.status = leaseHeld
	l.parked = false
	l.dead = false
	return tid, l.gen, true
}

// beat is the holder's heartbeat: bumped once per executed batch, lock-free.
// A reservation held across many ticks with no beat movement is stalled, not
// busy.
func (t *leaseTable) beat(tid int) { t.leases[tid].beat.Add(1) }

// setParked publishes that tid's holder is about to block holding no node
// references. Must be called by the holder before parking.
func (t *leaseTable) setParked(tid int, gen uint64, parked bool) {
	t.mu.Lock()
	l := &t.leases[tid]
	if l.status == leaseHeld && l.gen == gen {
		l.parked = parked
	}
	t.mu.Unlock()
}

// unpark is the staller's wake-up check: it reports whether the lease is
// still held by this holder. true — the holder still owns the tid and must
// EndOp as usual. false — the lease was revoked while parked; the holder
// must walk away without touching the scheme (the quarantine already
// withdrew its reservation, and the tid may already belong to someone else).
func (t *leaseTable) unpark(tid int, gen uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := &t.leases[tid]
	if l.status == leaseHeld && l.gen == gen {
		l.parked = false
		return true
	}
	return false
}

// markDead records that tid's holder goroutine exited without releasing the
// lease (worker panic). The tid becomes immediately quarantinable.
func (t *leaseTable) markDead(tid int, gen uint64) {
	t.mu.Lock()
	l := &t.leases[tid]
	if l.status == leaseHeld && l.gen == gen {
		l.dead = true
	}
	t.mu.Unlock()
}

// release returns a held tid to the free list on clean shutdown paths.
func (t *leaseTable) release(tid int, gen uint64) {
	t.mu.Lock()
	l := &t.leases[tid]
	if l.status == leaseHeld && l.gen == gen {
		l.status = leaseFree
		l.gen++
		l.parked = false
		l.dead = false
		t.free = append(t.free, tid)
	}
	t.mu.Unlock()
}

// quarantine revokes tid's lease if its holder is verifiably out of the
// scheme: parked (stallers publish this before blocking) or dead. It
// reports whether the revocation happened; after true, the former holder's
// unpark/setParked/markDead calls all become no-ops (gen mismatch is not
// even needed — status left leaseHeld), and a ctlQuarantine op must run on
// a live worker to clean the tid up.
func (t *leaseTable) quarantine(tid int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := &t.leases[tid]
	if l.status != leaseHeld || !(l.parked || l.dead) {
		return false
	}
	l.status = leaseQuarantined
	return true
}

// cleanable re-verifies, from the worker about to execute the cleanup, that
// tid is still quarantined (Close or a concurrent cleanup may have won).
func (t *leaseTable) cleanable(tid int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.leases[tid].status == leaseQuarantined
}

// finishQuarantine returns a cleaned tid to the free list with a new gen.
func (t *leaseTable) finishQuarantine(tid int) {
	t.mu.Lock()
	l := &t.leases[tid]
	if l.status == leaseQuarantined {
		l.status = leaseFree
		l.gen++
		l.parked = false
		l.dead = false
		t.free = append(t.free, tid)
	}
	t.mu.Unlock()
}

// leaseInfo is the remediator's per-tick view of one lease.
type leaseInfo struct {
	status leaseStatus
	role   leaseRole
	parked bool
	dead   bool
	beat   uint64
}

// snapshot copies the table for the remediator's staleness scan.
func (t *leaseTable) snapshot(out []leaseInfo) []leaseInfo {
	t.mu.Lock()
	out = out[:0]
	for i := range t.leases {
		l := &t.leases[i]
		out = append(out, leaseInfo{
			status: l.status,
			role:   l.role,
			parked: l.parked,
			dead:   l.dead,
			beat:   l.beat.Load(),
		})
	}
	t.mu.Unlock()
	return out
}
