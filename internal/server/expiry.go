package server

import (
	"sync"
	"time"
)

// TTL expiry. Each shard owns one expiryWheel: a classic timing wheel of
// wheelSlots buckets, each covering one granularity-sized tick of wall
// time, plus an authoritative table mapping armed keys to their deadline
// and a sequence number. The wheel answers "which keys lapsed since the
// last look?" in time proportional to the ticks crossed plus the entries
// due — the remediator polls it every RemedyInterval and hands the due
// batch to a shard worker as an opCtlExpire control op, so the removals
// (and their retirements) happen under a leased tid like all structure
// work.
//
// Consistency model, deliberately weak and cheap: the table is the truth
// and wheel entries are hints. Arming bumps the sequence number, so a
// cancelled or re-armed key's stale wheel entry fails its seq check at
// collection and is dropped. The one acknowledged race: between the
// remediator collecting a due key and the worker executing the removal,
// a client can Del+Put the key; the expiry then removes the new value up
// to one tick early. Serving-grade TTL semantics (memcached's, Redis's)
// accept exactly this window rather than pay for per-op coordination.
const wheelSlots = 64

// expEntry is one armed expiry hint: a key and the arm-time sequence
// number that validates it against the table.
type expEntry struct {
	key uint64
	seq uint64
}

// expRecord is the table's authoritative per-key state.
type expRecord struct {
	deadline int64 // UnixNano
	seq      uint64
}

type expiryWheel struct {
	mu       sync.Mutex
	gran     int64 // slot width in nanoseconds
	lastTick int64 // last collected tick (deadline / gran)
	seq      uint64
	table    map[uint64]expRecord
	slots    [wheelSlots][]expEntry
}

// newExpiryWheel builds a wheel with the given slot width; now anchors the
// collection clock so entries armed before the first collect are not seen
// as a full revolution old.
func newExpiryWheel(gran time.Duration, now int64) *expiryWheel {
	g := gran.Nanoseconds()
	if g <= 0 {
		g = 1
	}
	return &expiryWheel{
		gran:     g,
		lastTick: now / g,
		table:    make(map[uint64]expRecord),
	}
}

// schedule arms (or re-arms) key to lapse at deadline. Called by a worker
// on a successful TTL-Put.
func (w *expiryWheel) schedule(key uint64, deadline int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	w.table[key] = expRecord{deadline: deadline, seq: w.seq}
	tick := deadline / w.gran
	if tick <= w.lastTick {
		// The deadline's slot was already collected this revolution; park
		// the entry in the next tick to be looked at, or it would hide for
		// a full wheel turn.
		tick = w.lastTick + 1
	}
	w.slots[int(tick%wheelSlots)] = append(w.slots[int(tick%wheelSlots)], expEntry{key: key, seq: w.seq})
}

// cancel disarms key's expiry. Called by a worker on a successful Del or a
// successful TTL-less Put; the key's wheel entry, if any, dies at its seq
// check.
func (w *expiryWheel) cancel(key uint64) {
	w.mu.Lock()
	delete(w.table, key)
	w.mu.Unlock()
}

// collectDue appends every entry that lapsed by now to due and returns it.
// Collected keys are disarmed (removed from the table) — the caller owns
// their removal from here. Entries whose slot the clock crossed but whose
// deadline is still ahead (wheel wrap: armed more than a revolution out)
// are re-queued for a later tick.
func (w *expiryWheel) collectDue(now int64, due []expEntry) []expEntry {
	w.mu.Lock()
	defer w.mu.Unlock()
	cur := now / w.gran
	if cur <= w.lastTick {
		return due
	}
	// Crossing more than a full revolution visits every slot once; going
	// around again would rescan survivors for nothing.
	from := w.lastTick + 1
	if cur-from >= wheelSlots {
		from = cur - wheelSlots + 1
	}
	for t := from; t <= cur; t++ {
		si := int(t % wheelSlots)
		slot := w.slots[si]
		w.slots[si] = slot[:0]
		for _, en := range slot {
			rec, ok := w.table[en.key]
			if !ok || rec.seq != en.seq {
				continue // cancelled or re-armed; the live entry is elsewhere
			}
			if rec.deadline <= now {
				delete(w.table, en.key)
				due = append(due, en)
				continue
			}
			// Not yet due. Two cases, told apart by the deadline's own tick.
			// If that tick is still ahead of the clock, the entry is armed ≥
			// one revolution out (wheel wrap) and its slot comes around
			// again: leave it where it is. But if the tick was just crossed
			// (a deadline later within this tick than the poll, or an entry
			// parked into a crossed slot by schedule), this slot will not be
			// revisited for a full revolution — park it in the next tick to
			// be collected, mirroring schedule()'s already-collected-tick
			// handling, so it lapses on the next poll instead of ~one wheel
			// turn late. Appending to the slice we are compacting is safe —
			// the write index never passes the read index — and the parked
			// slot is either past this pass's range or already compacted.
			if rec.deadline/w.gran <= cur {
				ni := int((cur + 1) % wheelSlots)
				w.slots[ni] = append(w.slots[ni], en)
			} else {
				w.slots[si] = append(w.slots[si], en)
			}
		}
	}
	w.lastTick = cur
	return due
}

// requeue re-arms entries whose opCtlExpire batch never executed (the
// worker died mid-batch, or the shard queue closed under the control op).
// collectDue already disarmed them, so without this they would silently
// never expire. Each key is re-armed as due-now and parked in the next
// tick to be collected; a key the table knows again (re-armed by a client
// Put in the meantime) keeps its newer record — the newer arm wins. The
// residual race — the dead worker already removed the key and a client
// re-Put it TTL-less before requeue runs — can expire the new value one
// tick early, the same acknowledged window the collect/execute gap has.
func (w *expiryWheel) requeue(entries []expEntry, now int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, en := range entries {
		if _, ok := w.table[en.key]; ok {
			continue
		}
		w.seq++
		w.table[en.key] = expRecord{deadline: now, seq: w.seq}
		si := int((w.lastTick + 1) % wheelSlots)
		w.slots[si] = append(w.slots[si], expEntry{key: en.key, seq: w.seq})
	}
}

// pending returns how many keys are currently armed.
func (w *expiryWheel) pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.table)
}
