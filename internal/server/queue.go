package server

import "sync"

// reqQueue is the per-shard MPSC request queue: many connection goroutines
// push, the shard's few leased workers pop. Pops take the entire backlog in
// one swap (natural batching — a worker that wakes up amortizes the lock
// and scheme cadence over every request that arrived while it slept), and
// the two backing slices are recycled between the queue and the workers so
// a steady-state shard allocates nothing per request.
//
// The queue is bounded: push fails with errBusy at max entries, turning
// overload into StatusBusy backpressure at the protocol layer instead of
// unbounded buffering. After close, push fails with errClosed but pops
// continue until the backlog is empty — that drain-to-empty guarantee is
// what makes graceful shutdown lose no accepted operation.
type reqQueue struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	buf      []request
	max      int
	closed   bool
}

func newReqQueue(max int) *reqQueue {
	q := &reqQueue{max: max}
	q.notEmpty.L = &q.mu
	return q
}

// push enqueues r. It returns errClosed after close and errBusy when the
// queue is at capacity; in both cases r was not accepted and r.done will
// never be called by a worker.
func (q *reqQueue) push(r request) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return errClosed
	}
	if len(q.buf) >= q.max {
		q.mu.Unlock()
		return errBusy
	}
	q.buf = append(q.buf, r)
	q.mu.Unlock()
	q.notEmpty.Signal()
	return nil
}

// pushControl enqueues an engine-internal control request, bypassing the
// capacity bound: remediation must be admittable precisely when the queue
// is saturated. It reports false only after close, when control work is
// pointless (Close resolves outstanding quarantines itself at quiescence).
func (q *reqQueue) pushControl(r request) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.buf = append(q.buf, r)
	q.mu.Unlock()
	q.notEmpty.Signal()
	return true
}

// popAll blocks until the queue is non-empty or closed, then returns the
// whole backlog. spill is the caller's previous batch, recycled as the new
// backing buffer. ok is false only when the queue is closed AND empty —
// the worker's signal to exit.
func (q *reqQueue) popAll(spill []request) (batch []request, ok bool) {
	q.mu.Lock()
	for len(q.buf) == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if len(q.buf) == 0 { // closed and drained
		q.mu.Unlock()
		return nil, false
	}
	batch = q.buf
	q.buf = spill[:0]
	q.mu.Unlock()
	return batch, true
}

// close marks the queue closed and wakes every waiting worker. Requests
// already accepted remain in the backlog and will still be popped.
func (q *reqQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
}

// depth returns the current backlog length (metrics).
func (q *reqQueue) depth() int {
	q.mu.Lock()
	n := len(q.buf)
	q.mu.Unlock()
	return n
}
