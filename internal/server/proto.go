// Package server is the serving layer over the IBR data structures: a
// sharded key-value engine (engine.go) fronted by a length-prefixed binary
// protocol (this file), a TCP server with graceful drain (server.go), and a
// pipelined client (client.go) shared by cmd/ibrload and the tests.
//
// The architecturally new piece is the tid lease: every reclamation scheme
// in internal/core assumes a small fixed thread-id space with one goroutine
// per tid, while a network server faces an unbounded set of connection
// goroutines. The engine closes that gap by giving each shard a private
// pool of worker goroutines that each hold one scheme tid for their whole
// lifetime; connection goroutines never touch a scheme — they enqueue
// requests onto per-shard MPSC queues and the leased workers execute them
// in batches (see DESIGN.md §"Serving layer").
package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Op is a wire operation code.
type Op uint8

const (
	// OpPing is a no-op round trip; the server echoes Val.
	OpPing Op = 1 + iota
	// OpGet looks a key up: StatusOK + value, or StatusNotFound.
	OpGet
	// OpPut inserts key→val if absent: StatusOK, or StatusExists. The
	// insert-if-absent semantics mirror ds.Map.Insert exactly, which keeps
	// server histories checkable by internal/lincheck.
	OpPut
	// OpDel removes a key: StatusOK, or StatusNotFound.
	OpDel
)

func (o Op) String() string {
	switch o {
	case OpPing:
		return "PING"
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDel:
		return "DEL"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// valid reports whether o is a known operation code.
func (o Op) valid() bool { return o >= OpPing && o <= OpDel }

// Status is a wire response code.
type Status uint8

const (
	// StatusOK: the operation succeeded (Get hit, Put inserted, Del removed).
	StatusOK Status = iota
	// StatusNotFound: Get or Del on an absent key.
	StatusNotFound
	// StatusExists: Put on a present key (nothing changed).
	StatusExists
	// StatusBusy: the shard queue was full; retry later.
	StatusBusy
	// StatusShutdown: the server is draining and accepts no new work.
	StatusShutdown
	// StatusBadRequest: the request frame was malformed.
	StatusBadRequest
	// StatusInternal: the worker executing the request died (panic); the
	// operation's effect is unknown. The shard itself keeps serving — a
	// replacement worker takes over the tid's duties.
	StatusInternal
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusExists:
		return "EXISTS"
	case StatusBusy:
		return "BUSY"
	case StatusShutdown:
		return "SHUTDOWN"
	case StatusBadRequest:
		return "BAD_REQUEST"
	case StatusInternal:
		return "INTERNAL"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Frame layout. Every frame is a 4-byte big-endian payload length followed
// by the payload. Payloads are fixed-size per direction:
//
//	request:  id uint32 | op uint8  | key uint64 | val uint64 | trace uint64  (29 bytes)
//	response: id uint32 | st uint8  | val uint64                             (13 bytes)
//
// id is a connection-scoped request identifier chosen by the client; the
// server echoes it, so responses may complete out of order and clients can
// pipeline arbitrarily deep. trace is a client-chosen causal trace ID
// (0 = untraced): the worker executing a traced request records an op span
// under the ID in its flight-recorder ring, so the request joins its
// shard's reclamation timeline on /debug/trace (see WithTraceID). The
// explicit length prefix (rather than bare fixed frames) keeps the protocol
// evolvable — growing the request payload for the trace field was exactly
// such an evolution — and lets both ends reject a desynchronized stream
// immediately.
const (
	reqPayloadLen  = 29
	respPayloadLen = 13
	// maxFrame bounds any announced payload length; longer prefixes mean a
	// desynchronized or hostile stream.
	maxFrame = 1 << 10
)

// appendRequest appends one encoded request frame to b.
func appendRequest(b []byte, id uint32, op Op, key, val, trace uint64) []byte {
	b = binary.BigEndian.AppendUint32(b, reqPayloadLen)
	b = binary.BigEndian.AppendUint32(b, id)
	b = append(b, byte(op))
	b = binary.BigEndian.AppendUint64(b, key)
	b = binary.BigEndian.AppendUint64(b, val)
	return binary.BigEndian.AppendUint64(b, trace)
}

// appendResponse appends one encoded response frame to b.
func appendResponse(b []byte, id uint32, st Status, val uint64) []byte {
	b = binary.BigEndian.AppendUint32(b, respPayloadLen)
	b = binary.BigEndian.AppendUint32(b, id)
	b = append(b, byte(st))
	return binary.BigEndian.AppendUint64(b, val)
}

// readFrame reads one length-prefixed payload into buf (reused across
// calls) and returns it. want is the payload length this direction demands;
// any other announced length is a protocol error.
func readFrame(r *bufio.Reader, want int, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("server: frame length %d exceeds limit %d", n, maxFrame)
	}
	if int(n) != want {
		return nil, fmt.Errorf("server: frame length %d, want %d", n, want)
	}
	buf = buf[:want]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// parseRequest decodes a request payload (length already validated).
func parseRequest(p []byte) (id uint32, op Op, key, val, trace uint64) {
	id = binary.BigEndian.Uint32(p[0:4])
	op = Op(p[4])
	key = binary.BigEndian.Uint64(p[5:13])
	val = binary.BigEndian.Uint64(p[13:21])
	trace = binary.BigEndian.Uint64(p[21:29])
	return
}

// parseResponse decodes a response payload (length already validated).
func parseResponse(p []byte) (id uint32, st Status, val uint64) {
	id = binary.BigEndian.Uint32(p[0:4])
	st = Status(p[4])
	val = binary.BigEndian.Uint64(p[5:13])
	return
}
