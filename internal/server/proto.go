// Package server is the serving layer over the IBR data structures: a
// sharded key-value engine (engine.go) fronted by a length-prefixed binary
// protocol (this file), a TCP server with graceful drain (server.go), and a
// pipelined client (client.go) shared by cmd/ibrload and the tests.
//
// The architecturally new piece is the tid lease: every reclamation scheme
// in internal/core assumes a small fixed thread-id space with one goroutine
// per tid, while a network server faces an unbounded set of connection
// goroutines. The engine closes that gap by giving each shard a private
// pool of worker goroutines that each hold one scheme tid for their whole
// lifetime; connection goroutines never touch a scheme — they enqueue
// requests onto per-shard MPSC queues and the leased workers execute them
// in batches (see DESIGN.md §"Serving layer").
package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Op is a wire operation code.
type Op uint8

const (
	// OpPing is a no-op round trip; the server echoes Val.
	OpPing Op = 1 + iota
	// OpGet looks a key up: StatusOK + value, or StatusNotFound.
	OpGet
	// OpPut inserts key→val if absent: StatusOK, or StatusExists. The
	// insert-if-absent semantics mirror ds.Map.Insert exactly, which keeps
	// server histories checkable by internal/lincheck. A Put may carry a
	// TTL; the engine's expiry wheel then retires the key when it lapses.
	OpPut
	// OpDel removes a key: StatusOK, or StatusNotFound.
	OpDel
	// OpRange scans [Key, KeyHi] in ascending key order, returning up to
	// Limit pairs. The whole scan executes inside one scheme reservation
	// interval per shard — the paper's long-running read, end to end. On a
	// structure without ordered iteration the engine answers
	// StatusUnsupported.
	OpRange
)

func (o Op) String() string {
	switch o {
	case OpPing:
		return "PING"
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDel:
		return "DEL"
	case OpRange:
		return "RANGE"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// valid reports whether o is a known operation code.
func (o Op) valid() bool { return o >= OpPing && o <= OpRange }

// Status is a wire response code.
type Status uint8

const (
	// StatusOK: the operation succeeded (Get hit, Put inserted, Del removed,
	// Range scanned — possibly to an empty result).
	StatusOK Status = iota
	// StatusNotFound: Get or Del on an absent key.
	StatusNotFound
	// StatusExists: Put on a present key (nothing changed).
	StatusExists
	// StatusBusy: the shard queue was full; retry later.
	StatusBusy
	// StatusShutdown: the server is draining and accepts no new work.
	StatusShutdown
	// StatusBadRequest: the request frame was malformed.
	StatusBadRequest
	// StatusInternal: the worker executing the request died (panic); the
	// operation's effect is unknown. The shard itself keeps serving — a
	// replacement worker takes over the tid's duties.
	StatusInternal
	// StatusUnsupported: the operation is well-formed but the serving
	// structure cannot execute it (OpRange on a structure without ordered
	// iteration). A typed answer, not a protocol error: the connection
	// stays up and the client sees a Response, not a torn stream.
	StatusUnsupported
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusExists:
		return "EXISTS"
	case StatusBusy:
		return "BUSY"
	case StatusShutdown:
		return "SHUTDOWN"
	case StatusBadRequest:
		return "BAD_REQUEST"
	case StatusInternal:
		return "INTERNAL"
	case StatusUnsupported:
		return "UNSUPPORTED"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Request is one typed operation, the unit of the client and engine APIs.
// Fields beyond Op/Key are op-specific and ignored elsewhere: Val is Put's
// value (and Ping's echo payload), KeyHi and Limit shape a Range, TTL arms
// Put's expiry. The zero value of every optional field means "absent".
type Request struct {
	// Op selects the operation.
	Op Op
	// Key is the operation's key; for Range, the inclusive lower bound.
	Key uint64
	// KeyHi is Range's inclusive upper bound (ignored by other ops).
	KeyHi uint64
	// Val is Put's value and Ping's echo payload.
	Val uint64
	// TTL, when positive on a Put, schedules the key's expiry: once it
	// lapses the engine removes the key through the normal scheme retire
	// path, exactly as a user delete would. Wire granularity is 1ms;
	// sub-millisecond TTLs round up. Zero means no expiry.
	TTL time.Duration
	// Limit caps Range's result count; 0 selects the engine's default
	// (EngineConfig.MaxRangeResults).
	Limit uint32
	// TraceID is a causal trace ID (0 = untraced): the worker executing a
	// traced request records an op span under it, joining the request to
	// its shard's reclamation timeline on /debug/trace. Client.DoContext
	// fills it from the context (WithTraceID) when unset.
	TraceID uint64
}

// Pair is one key→value result of a Range scan.
type Pair struct {
	Key, Val uint64
}

// Response is one operation's result. Pairs is set only for Range (ascending
// key order, length ≤ the effective limit); every other op answers through
// Status and Val.
type Response struct {
	Status Status
	Val    uint64
	Pairs  []Pair
}

// Resp is the former name of Response, kept as an alias so pre-v2 callers
// compile unchanged.
//
// Deprecated: use Response.
type Resp = Response

// Frame layout. Every frame is a 4-byte big-endian payload length followed
// by the payload:
//
//	request v2:  id u32 | op u8 | key u64 | keyHi u64 | val u64 | ttlMs u32 | limit u32 | trace u64  (45 bytes)
//	request v1:  id u32 | op u8 | key u64 | val u64 | trace u64                                      (29 bytes, legacy)
//	response v2: id u32 | st u8 | val u64 | npairs u32 | npairs × (key u64 | val u64)                (17 + 16·npairs bytes)
//	response v1: id u32 | st u8 | val u64                                                           (13 bytes, legacy)
//
// id is a connection-scoped request identifier chosen by the client; the
// server echoes it, so responses may complete out of order and clients can
// pipeline arbitrarily deep. The explicit length prefix (rather than bare
// fixed frames) is what makes the protocol evolvable: the server tells v1
// and v2 requests apart by announced length alone and fills the missing v2
// fields with zero, so old clients keep working against a v2 server. The
// compatibility promise covers both directions — a pre-range client also
// expects exactly 13-byte responses, so the server keys each response's
// encoding off its request's announced length and answers v1-framed
// requests with the legacy layout (v1 ops can never carry pairs; a
// v1-framed RANGE is rejected as a bad request, exactly as the v1 server
// rejected op 5). v2 responses became variable-length the moment Range
// needed to carry pairs, with no version byte anywhere. Both ends still
// reject a desynchronized or hostile stream immediately via the
// per-direction length bounds.
const (
	reqPayloadV1Len  = 29
	reqPayloadV2Len  = 45
	respHeaderLen    = 17
	respPayloadV1Len = 13
	pairLen          = 16
	// maxReqFrame bounds announced request payload lengths. Requests are
	// small and fixed-size; anything larger is a desynchronized stream.
	maxReqFrame = reqPayloadV2Len
	// maxRespFrame bounds announced response payload lengths: the header
	// plus a full default-limit range result, with headroom. Engines cap
	// range results well below this (MaxRangeResults ≤ 64k pairs = 1MiB).
	maxRespFrame = 2 << 20
	// maxRangeLimit is the protocol-level ceiling on one Range's result
	// count; it keeps every well-formed response under maxRespFrame.
	maxRangeLimit = 1 << 16
)

// ttlToWire converts a TTL to its millisecond wire form: 0 stays 0 (no
// expiry), positive values round up so a 200µs TTL does not silently become
// immortal, and overflow clamps to the ~49-day wire maximum.
func ttlToWire(ttl time.Duration) uint32 {
	if ttl <= 0 {
		return 0
	}
	if ttl >= time.Duration(^uint32(0))*time.Millisecond {
		return ^uint32(0)
	}
	return uint32((ttl + time.Millisecond - 1) / time.Millisecond)
}

// appendRequest appends one encoded v2 request frame to b.
func appendRequest(b []byte, id uint32, r Request) []byte {
	b = binary.BigEndian.AppendUint32(b, reqPayloadV2Len)
	b = binary.BigEndian.AppendUint32(b, id)
	b = append(b, byte(r.Op))
	b = binary.BigEndian.AppendUint64(b, r.Key)
	b = binary.BigEndian.AppendUint64(b, r.KeyHi)
	b = binary.BigEndian.AppendUint64(b, r.Val)
	b = binary.BigEndian.AppendUint32(b, ttlToWire(r.TTL))
	b = binary.BigEndian.AppendUint32(b, r.Limit)
	return binary.BigEndian.AppendUint64(b, r.TraceID)
}

// appendRequestV1 appends one encoded legacy (29-byte) request frame to b.
// Only tests use it — it pins the compatibility promise that a v2 server
// keeps accepting pre-range clients.
func appendRequestV1(b []byte, id uint32, op Op, key, val, trace uint64) []byte {
	b = binary.BigEndian.AppendUint32(b, reqPayloadV1Len)
	b = binary.BigEndian.AppendUint32(b, id)
	b = append(b, byte(op))
	b = binary.BigEndian.AppendUint64(b, key)
	b = binary.BigEndian.AppendUint64(b, val)
	return binary.BigEndian.AppendUint64(b, trace)
}

// appendResponseV1 appends one encoded legacy (13-byte) response frame to
// b. The server uses it to answer v1-framed requests — a pre-range client
// reads responses with a hard 13-byte bound, so it must never see the v2
// header. Pairs are dropped by construction: v1 ops cannot produce them.
func appendResponseV1(b []byte, id uint32, r Response) []byte {
	b = binary.BigEndian.AppendUint32(b, respPayloadV1Len)
	b = binary.BigEndian.AppendUint32(b, id)
	b = append(b, byte(r.Status))
	return binary.BigEndian.AppendUint64(b, r.Val)
}

// appendResponse appends one encoded response frame to b.
func appendResponse(b []byte, id uint32, r Response) []byte {
	n := respHeaderLen + pairLen*len(r.Pairs)
	b = binary.BigEndian.AppendUint32(b, uint32(n))
	b = binary.BigEndian.AppendUint32(b, id)
	b = append(b, byte(r.Status))
	b = binary.BigEndian.AppendUint64(b, r.Val)
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Pairs)))
	for _, p := range r.Pairs {
		b = binary.BigEndian.AppendUint64(b, p.Key)
		b = binary.BigEndian.AppendUint64(b, p.Val)
	}
	return b
}

// readFrame reads one length-prefixed payload into buf (reused and grown
// across calls) and returns the payload slice. max bounds the announced
// length for this direction; direction-specific validity (request version
// lengths, pair-count consistency) is the parser's job.
func readFrame(r *bufio.Reader, max int, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > max {
		return nil, fmt.Errorf("server: frame length %d exceeds limit %d", n, max)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// parseRequest decodes a request payload, accepting both the legacy v1 and
// the current v2 layout by length; v1 requests get zero KeyHi/TTL/Limit.
// legacy reports which layout carried the request, because the answer must
// travel back in the same dialect: the server encodes a 13-byte v1
// response for a v1-framed request.
func parseRequest(p []byte) (id uint32, req Request, legacy bool, err error) {
	switch len(p) {
	case reqPayloadV1Len:
		legacy = true
		id = binary.BigEndian.Uint32(p[0:4])
		req.Op = Op(p[4])
		req.Key = binary.BigEndian.Uint64(p[5:13])
		req.Val = binary.BigEndian.Uint64(p[13:21])
		req.TraceID = binary.BigEndian.Uint64(p[21:29])
	case reqPayloadV2Len:
		id = binary.BigEndian.Uint32(p[0:4])
		req.Op = Op(p[4])
		req.Key = binary.BigEndian.Uint64(p[5:13])
		req.KeyHi = binary.BigEndian.Uint64(p[13:21])
		req.Val = binary.BigEndian.Uint64(p[21:29])
		req.TTL = time.Duration(binary.BigEndian.Uint32(p[29:33])) * time.Millisecond
		req.Limit = binary.BigEndian.Uint32(p[33:37])
		req.TraceID = binary.BigEndian.Uint64(p[37:45])
	default:
		err = fmt.Errorf("server: request length %d, want %d (v2) or %d (v1)", len(p), reqPayloadV2Len, reqPayloadV1Len)
	}
	return
}

// parseResponseV1 decodes a legacy 13-byte response payload. Only tests use
// it — it is the pre-range client's reader, pinning the response-direction
// half of the compatibility promise.
func parseResponseV1(p []byte) (id uint32, resp Response, err error) {
	if len(p) != respPayloadV1Len {
		return 0, Response{}, fmt.Errorf("server: v1 response length %d, want %d", len(p), respPayloadV1Len)
	}
	id = binary.BigEndian.Uint32(p[0:4])
	resp.Status = Status(p[4])
	resp.Val = binary.BigEndian.Uint64(p[5:13])
	return
}

// parseResponse decodes a response payload, validating that the announced
// pair count matches the payload length exactly.
func parseResponse(p []byte) (id uint32, resp Response, err error) {
	if len(p) < respHeaderLen {
		return 0, Response{}, fmt.Errorf("server: response length %d, want at least %d", len(p), respHeaderLen)
	}
	id = binary.BigEndian.Uint32(p[0:4])
	resp.Status = Status(p[4])
	resp.Val = binary.BigEndian.Uint64(p[5:13])
	n := int(binary.BigEndian.Uint32(p[13:17]))
	if len(p) != respHeaderLen+pairLen*n {
		return 0, Response{}, fmt.Errorf("server: response announces %d pairs but carries %d bytes", n, len(p)-respHeaderLen)
	}
	if n > 0 {
		resp.Pairs = make([]Pair, n)
		for i := range resp.Pairs {
			off := respHeaderLen + pairLen*i
			resp.Pairs[i].Key = binary.BigEndian.Uint64(p[off : off+8])
			resp.Pairs[i].Val = binary.BigEndian.Uint64(p[off+8 : off+16])
		}
	}
	return
}
