package server

// Causal trace plumbing: the context key that threads a trace ID from a
// client call site through DoContext into the wire protocol, the
// /debug/trace HTTP handler serving the flight recorder in Perfetto form,
// and the human-readable causal summary (scan phases + pinned-memory
// blame) the daemon prints on SIGQUIT/SIGTERM.

import (
	"context"
	"fmt"
	"io"
	"net/http"

	"ibr/internal/obs"
)

// traceIDKey carries a caller-chosen wire trace ID on a context.
type traceIDKey struct{}

// WithTraceID returns a context carrying a causal trace ID. Client
// DoContext sends the ID in the request frame; the serving worker records
// the op's execution span under it, so the request's timing joins its
// shard's reclamation timeline on /debug/trace. IDs are caller-chosen —
// any non-zero uint64 (0 means untraced); uniqueness is the caller's
// concern, collisions merely merge spans under one label.
func WithTraceID(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom returns the trace ID carried by ctx (0 = untraced).
func TraceIDFrom(ctx context.Context) uint64 {
	id, _ := ctx.Value(traceIDKey{}).(uint64)
	return id
}

// TraceHandler serves the engine's flight recorder as a Perfetto /
// chrome://tracing JSON trace (load it at https://ui.perfetto.dev).
// Mirrors FlightRecorderHandler: 404 when observability is off.
func TraceHandler(e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := e.Obs().Recorder()
		if rec == nil {
			http.Error(w, "observability disabled (run with -obs)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = rec.WriteTraceJSON(w)
	})
}

// WriteCausalSummary writes the causal telemetry in human-readable form:
// the scan-phase timing breakdown and, per shard, the top pinned-memory
// blame entries ("tid 2 pins 1234 blocks, 2.1s"). cmd/ibrd appends it to
// the SIGQUIT live dump and the SIGTERM final snapshot.
func (e *Engine) WriteCausalSummary(w io.Writer) {
	eo := e.obs
	if eo == nil {
		fmt.Fprintln(w, "causal summary: observability disabled (run with -obs)")
		return
	}
	fmt.Fprintln(w, "scan phases (wall ns per scan):")
	for p := 0; p < obs.NumScanPhases; p++ {
		s := eo.phases[p].Snapshot()
		if s.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-14s n=%-8d p50=%-8.0f p99=%-8.0f mean=%.0f\n",
			obs.PhaseNames[p], s.Count, s.Quantile(0.5), s.Quantile(0.99),
			float64(s.Sum)/float64(s.Count))
	}
	const topK = 8
	for i := range eo.scheme {
		top := eo.scheme[i].PinnedBlame()
		if len(top) == 0 {
			continue
		}
		if len(top) > topK {
			top = top[:topK]
		}
		fmt.Fprintf(w, "shard %d pinned-memory blame:", i)
		for _, ps := range top {
			fmt.Fprintf(w, " tid %d=%d blocks (%.1fs)", ps.Tid, ps.Blocks, ps.Age.Seconds())
		}
		fmt.Fprintln(w)
	}
}
