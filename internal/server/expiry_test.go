package server

import (
	"testing"
	"time"
)

// TestExpiryWheelSameTickDeadline pins the one-tick lag promise: a deadline
// that lands later within a tick the poll just collected must lapse on the
// next poll, not a full wheel revolution (~wheelSlots ticks) later. With
// RemedyInterval == granularity (both default 50ms) roughly half of all
// deadlines land in exactly this window, so the regression is the common
// case, not a corner.
func TestExpiryWheelSameTickDeadline(t *testing.T) {
	const g = 100 // slot width in ns
	w := newExpiryWheel(g*time.Nanosecond, 1000)

	// Deadline 1150 sits in tick 11; the first poll happens at 1120 —
	// inside tick 11 but before the deadline.
	w.schedule(1, 1150)
	if due := w.collectDue(1120, nil); len(due) != 0 {
		t.Fatalf("key due %d ns early: %v", 1150-1120, due)
	}
	// The very next tick's poll must deliver it.
	due := w.collectDue(1220, nil)
	if len(due) != 1 || due[0].key != 1 {
		t.Fatalf("key not due one tick after its deadline: %v", due)
	}
	if w.pending() != 0 {
		t.Fatalf("collected key still armed: pending=%d", w.pending())
	}
}

// TestExpiryWheelWrapStaysParked: an entry armed more than a revolution out
// keeps its slot across intermediate passes and lapses on time.
func TestExpiryWheelWrapStaysParked(t *testing.T) {
	const g = 100
	w := newExpiryWheel(g*time.Nanosecond, 1000)

	w.schedule(7, 1000+g*130) // 130 ticks out: two revolutions ahead
	if due := w.collectDue(1000+g*70, nil); len(due) != 0 {
		t.Fatalf("wrapped entry collected %d ticks early: %v", 130-70, due)
	}
	due := w.collectDue(1000+g*131, nil)
	if len(due) != 1 || due[0].key != 7 {
		t.Fatalf("wrapped entry never lapsed: %v", due)
	}
}

// TestExpiryWheelRequeue: keys disarmed by collectDue whose removal batch
// was lost (worker panic, closed queue) are re-armed by requeue and
// surface again on the next poll — unless the table learned a newer arm in
// the meantime, which wins.
func TestExpiryWheelRequeue(t *testing.T) {
	const g = 100
	w := newExpiryWheel(g*time.Nanosecond, 1000)

	w.schedule(1, 1050)
	w.schedule(2, 1050)
	due := w.collectDue(1000+g*2, nil)
	if len(due) != 2 {
		t.Fatalf("want both keys due, got %v", due)
	}
	// Key 2 gets re-armed by a "client" before the recovery runs: requeue
	// must not clobber the newer record.
	w.schedule(2, 1000+g*500)
	w.requeue(due, 1000+g*2)
	again := w.collectDue(1000+g*3, nil)
	if len(again) != 1 || again[0].key != 1 {
		t.Fatalf("requeue: want key 1 due again (and only it), got %v", again)
	}
	if w.pending() != 1 { // key 2's newer arm survives
		t.Fatalf("pending=%d, want 1 (key 2 re-armed far out)", w.pending())
	}
}
