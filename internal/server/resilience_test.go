package server

import (
	"errors"
	"testing"
	"time"

	"ibr/internal/core"
)

// waitFor polls cond every millisecond until it holds or the deadline
// passes; it reports whether cond held.
func waitFor(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

// sum folds one counter over all shards.
func sum(stats []ShardStats, f func(ShardStats) uint64) uint64 {
	var t uint64
	for _, s := range stats {
		t += f(s)
	}
	return t
}

func unreclaimed(stats []ShardStats) int {
	var t int
	for _, s := range stats {
		t += s.Unreclaimed
	}
	return t
}

// TestQuarantineDrainsStalledBacklog is the acceptance scenario: an
// injected staller pins reclamation for 30s (far beyond the test), churn
// builds an unreclaimed backlog behind it, and the remediator must
// quarantine the stalled tid and drain the backlog to near-baseline well
// within a second — WITHOUT the stall ever ending on its own. It runs
// under both pin mechanisms: ebr (a stuck epoch reservation the clear
// withdraws) and hyaline (a stuck active slot whose batch references the
// clear force-drops).
func TestQuarantineDrainsStalledBacklog(t *testing.T) {
	for _, scheme := range []string{"ebr", "hyaline"} {
		t.Run(scheme, func(t *testing.T) {
			eng, err := NewEngine(EngineConfig{
				Scheme: scheme, Shards: 1, WorkersPerShard: 1,
				EpochFreq: 4, EmptyFreq: 4,
				Stalled: 1, StallFor: 30 * time.Second,
				QuarantineAfter: 50 * time.Millisecond,
				RemedyInterval:  10 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()

			// Give the staller time to park and publish its reservation, then
			// churn: every Del retires a node the pin keeps unreclaimable.
			time.Sleep(20 * time.Millisecond)
			churn := func(rounds int) {
				for i := 0; i < rounds; i++ {
					k := uint64(i % 512)
					if _, err := eng.Do(OpPut, k, k+1); err != nil {
						t.Fatal(err)
					}
					if _, err := eng.Do(OpDel, k, 0); err != nil {
						t.Fatal(err)
					}
				}
			}
			churn(2000)
			if got := unreclaimed(eng.Stats()); got == 0 {
				t.Fatal("stall did not pin a backlog; the scenario is vacuous")
			}

			if !waitFor(2*time.Second, func() bool {
				return sum(eng.Stats(), func(s ShardStats) uint64 { return s.Quarantines }) > 0
			}) {
				t.Fatal("remediator never quarantined the stalled tid")
			}
			// The stall is still "running" (StallFor is 30s); only the
			// quarantine can release the backlog. A little more traffic lets
			// cadence scans run post-clear, and the cleanup op itself drains
			// once.
			start := time.Now()
			ok := waitFor(time.Second, func() bool {
				churn(50)
				return unreclaimed(eng.Stats()) < 200
			})
			if !ok {
				t.Fatalf("backlog stuck at %d blocks %v after quarantine; want near-baseline without waiting out the stall",
					unreclaimed(eng.Stats()), time.Since(start))
			}
		})
	}
}

// TestQuarantineNeutralizesDEBRA runs the same acceptance scenario under
// the debra scheme, where the quarantine is not just a reservation clear
// but a real DEBRA+ neutralization: the remediator's ClearReservation must
// latch the staller's neutralize flag (signaled > 0) and the stalled
// backlog must drain while the stall keeps running — the lease watchdog
// standing in for DEBRA+'s POSIX signal.
func TestQuarantineNeutralizesDEBRA(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Scheme: "debra", Shards: 1, WorkersPerShard: 1,
		EpochFreq: 4, EmptyFreq: 4,
		Stalled: 1, StallFor: 30 * time.Second,
		QuarantineAfter: 50 * time.Millisecond,
		RemedyInterval:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	time.Sleep(20 * time.Millisecond) // let the staller park and pin
	churn := func(rounds int) {
		for i := 0; i < rounds; i++ {
			k := uint64(i % 512)
			if _, err := eng.Do(OpPut, k, k+1); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Do(OpDel, k, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	churn(2000)
	if got := unreclaimed(eng.Stats()); got == 0 {
		t.Fatal("stall did not pin a backlog; the scenario is vacuous")
	}

	if !waitFor(2*time.Second, func() bool {
		return sum(eng.Stats(), func(s ShardStats) uint64 { return s.Quarantines }) > 0
	}) {
		t.Fatal("remediator never quarantined the stalled tid")
	}
	d, ok := eng.shards[0].inst.Scheme().(*core.DEBRA)
	if !ok {
		t.Fatalf("shard scheme is %T, want *core.DEBRA", eng.shards[0].inst.Scheme())
	}
	if sig, _ := d.NeutralizeStats(); sig == 0 {
		t.Fatal("quarantine delivered no neutralization signal")
	}
	ok = waitFor(time.Second, func() bool {
		churn(50)
		return unreclaimed(eng.Stats()) < 200
	})
	if !ok {
		t.Fatalf("backlog stuck at %d blocks after neutralization; the stall never ended on its own",
			unreclaimed(eng.Stats()))
	}
}

// TestWorkerDeathReplacement: a panic inside the serving path must (1)
// answer the poisoned request with StatusInternal instead of hanging or
// crashing, (2) get the dead tid quarantined and its retired backlog
// adopted, (3) keep the shard serving via a replacement worker.
func TestWorkerDeathReplacement(t *testing.T) {
	const poison = uint64(7777)
	eng, err := NewEngine(EngineConfig{
		Scheme: "ebr", Shards: 1, WorkersPerShard: 1,
		EpochFreq: 4, EmptyFreq: 1 << 20, // never scan: the dead tid keeps its backlog
		QuarantineAfter: 50 * time.Millisecond,
		RemedyInterval:  5 * time.Millisecond,
		testExecHook: func(op Op, key uint64) {
			if key == poison {
				panic("injected worker fault")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Build a retire backlog on the doomed worker's tid.
	for i := uint64(0); i < 64; i++ {
		if _, err := eng.Do(OpPut, i, i); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Do(OpDel, i, 0); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := eng.Do(OpGet, poison, 0)
	if err != nil {
		t.Fatalf("Submit of the poisoned request failed: %v", err)
	}
	if resp.Status != StatusInternal {
		t.Fatalf("poisoned request answered %v, want StatusInternal", resp.Status)
	}

	// The shard must come back: a replacement worker leases a spare tid and
	// serves, and the dead tid's backlog is adopted.
	if !waitFor(2*time.Second, func() bool {
		r, err := eng.Do(OpPut, 9999, 1)
		return err == nil && r.Status == StatusOK
	}) {
		t.Fatal("shard never resumed serving after the worker death")
	}
	st := eng.Stats()
	if got := sum(st, func(s ShardStats) uint64 { return s.Deaths }); got != 1 {
		t.Fatalf("Deaths = %d, want 1", got)
	}
	if !waitFor(2*time.Second, func() bool {
		st := eng.Stats()
		return sum(st, func(s ShardStats) uint64 { return s.Quarantines }) >= 1 &&
			sum(st, func(s ShardStats) uint64 { return s.Adopted }) > 0
	}) {
		st := eng.Stats()
		t.Fatalf("dead tid not cleaned up: quarantines=%d adopted=%d",
			sum(st, func(s ShardStats) uint64 { return s.Quarantines }),
			sum(st, func(s ShardStats) uint64 { return s.Adopted }))
	}
}

// TestSheddingAboveHardWatermark: with a staller pinning reclamation
// indefinitely and watermarks scaled down to a tiny pool, churn must push
// the shard over its hard cap and turn Submit into ErrShedding — admission
// control instead of unbounded backlog growth.
func TestSheddingAboveHardWatermark(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Scheme: "ebr", Shards: 1, WorkersPerShard: 1,
		EpochFreq: 4, EmptyFreq: 4,
		PoolSlots: 4096,
		Stalled:   1, StallFor: 30 * time.Second,
		QuarantineAfter: 10 * time.Minute, // never quarantine: shedding must act alone
		RemedyInterval:  5 * time.Millisecond,
		SoftWatermark:   0.02, HardWatermark: 0.05, // hard cap ≈ 204 blocks
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	time.Sleep(20 * time.Millisecond) // staller parks and pins
	var sawShedding bool
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		k := uint64(i % 1024)
		if _, err := eng.Do(OpPut, k, k+1); err != nil {
			if errors.Is(err, ErrShedding) {
				sawShedding = true
				break
			}
			t.Fatal(err)
		}
		if _, err := eng.Do(OpDel, k, 0); err != nil {
			if errors.Is(err, ErrShedding) {
				sawShedding = true
				break
			}
			t.Fatal(err)
		}
	}
	if !sawShedding {
		t.Fatalf("no ErrShedding despite %d unreclaimed blocks above a hard cap of ~204",
			unreclaimed(eng.Stats()))
	}
	if got := sum(eng.Stats(), func(s ShardStats) uint64 { return s.Shed }); got == 0 {
		t.Fatal("Shed counter did not move")
	}
}

// TestPoolExhaustionBecomesBusy: under the leak scheme a small pool runs
// dry; Puts must answer StatusBusy — typed backpressure — rather than
// panicking or misreporting StatusExists.
func TestPoolExhaustionBecomesBusy(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Scheme: "none", Shards: 1, WorkersPerShard: 1,
		PoolSlots: 256,
		// Keep admission out of the way: NoMM retires nothing, so the
		// watermarks never trip; this test is about the alloc path.
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	var sawBusy bool
	for i := uint64(0); i < 1024; i++ {
		resp, err := eng.Do(OpPut, i, i+1)
		if err != nil {
			t.Fatal(err)
		}
		switch resp.Status {
		case StatusOK:
		case StatusBusy:
			sawBusy = true
		default:
			t.Fatalf("Put %d answered %v, want OK or BUSY", i, resp.Status)
		}
		if sawBusy {
			break
		}
	}
	if !sawBusy {
		t.Fatal("pool never exhausted: the scenario is vacuous")
	}
	if got := sum(eng.Stats(), func(s ShardStats) uint64 { return s.PoolExhausted }); got == 0 {
		t.Fatal("PoolExhausted counter did not move")
	}
	// And the engine is still alive: reads keep working on the full pool.
	if r, err := eng.Do(OpGet, 0, 0); err != nil || r.Status != StatusOK {
		t.Fatalf("Get after exhaustion = %v, %v; want OK", r, err)
	}
}

// TestStallerSurvivesQuarantine: after its tid is quarantined, the staller
// goroutine wakes at the end of its stall, finds the lease revoked, leases
// a fresh tid, and stalls again — the injected fault stays alive for the
// telemetry while the engine keeps remediating. StallFor is short here so
// the revoke-discover-re-lease cycle completes several times in-test.
func TestStallerSurvivesQuarantine(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Scheme: "ebr", Shards: 1, WorkersPerShard: 1,
		EpochFreq: 4, EmptyFreq: 4,
		Stalled: 1, StallFor: 150 * time.Millisecond,
		QuarantineAfter: 30 * time.Millisecond,
		RemedyInterval:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Two quarantines prove the cycle: pin → quarantine → re-lease → pin.
	if !waitFor(3*time.Second, func() bool {
		return sum(eng.Stats(), func(s ShardStats) uint64 { return s.Quarantines }) >= 2
	}) {
		t.Fatalf("quarantines = %d, want >= 2 (staller should re-lease and stall again)",
			sum(eng.Stats(), func(s ShardStats) uint64 { return s.Quarantines }))
	}
}
