package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ibr/internal/core"
	"ibr/internal/ds"
	"ibr/internal/epoch"
	"ibr/internal/obs"
)

// Errors returned by Engine.Submit. In every case the request was NOT
// accepted and its done callback will never run. All three are distinct
// sentinels (errors.Is-comparable) so callers can tell transient overload
// (ErrBusy, ErrShedding — retry with backoff) from shutdown (ErrClosed).
var (
	errClosed = errors.New("server: engine is draining")
	errBusy   = errors.New("server: shard queue full")

	// ErrClosed is returned by Submit once Close has begun.
	ErrClosed = errClosed
	// ErrBusy is returned by Submit when the target shard's queue is full.
	ErrBusy = errBusy
	// ErrShedding is returned by Submit while the target shard's unreclaimed
	// backlog sits above its hard watermark: the shard refuses new work until
	// reclamation catches up, instead of letting a stalled reservation grow
	// the heap without bound. The wire layer reports it as StatusBusy, so
	// clients treat it exactly like queue backpressure.
	ErrShedding = errors.New("server: shard shedding load (unreclaimed backlog above hard watermark)")
)

// Control ops are engine-internal requests the remediator enqueues on shard
// queues so that scheme maintenance always runs on a worker, under a worker's
// leased tid. They sit far above the wire op range and never carry a done
// callback.
const (
	opCtlBase Op = 0xF0
	// opCtlDrain: scan the executing worker's retire list now (soft
	// watermark crossed). Also serves as a queue wake-up so idle workers
	// notice drainGen.
	opCtlDrain Op = 0xF0
	// opCtlQuarantine: clean up the quarantined tid in key — clear its
	// reservation, adopt its retire list, return its lease to the free pool.
	opCtlQuarantine Op = 0xF1
	// opCtlExpire: remove the TTL-lapsed keys carried in the request's exp
	// batch. The removals run under the worker's leased tid, tagged
	// core.SourceExpiry, and retire nodes through the exact path user
	// deletes take — expirations compete with client work for the same
	// scan capacity, which is the point.
	opCtlExpire Op = 0xF2
)

// EngineConfig sizes the sharded engine. The zero value of every field
// selects a sensible default (hashmap × tagibr, 8 shards × 2 workers).
type EngineConfig struct {
	// Structure is a ds map registry name (default "hashmap").
	Structure string
	// Scheme is a core scheme registry name (default "tagibr").
	Scheme string
	// Shards is the number of independent ds.Map instances the key space
	// is hashed across (default 8). Each shard has its own node pool,
	// scheme instance, and worker pool, so shards never contend.
	Shards int
	// WorkersPerShard is the number of tid-leased worker goroutines per
	// shard (default 2).
	WorkersPerShard int
	// QueueDepth bounds each shard's request backlog (default 4096);
	// beyond it Submit returns ErrBusy.
	QueueDepth int

	// EpochFreq, EmptyFreq, Slots tune each shard's scheme (see
	// core.Options); zero selects the paper's defaults.
	EpochFreq, EmptyFreq, Slots int
	// PoolSlots caps each shard's node pool (0 = mem.DefaultMaxSlots).
	PoolSlots uint64
	// Buckets sets the hash map bucket count per shard (0 = default).
	Buckets int

	// Obs enables the observability layer — flight recorder, latency/scan/
	// retire-age histograms, and the stall watchdog (see internal/obs). Nil
	// disables it: the hooks stay compiled in but cost one pointer test.
	Obs *obs.Options

	// Stalled injects the paper's preempted thread (§4.3.1) into the live
	// engine: each shard runs this many staller goroutines that lease a tid,
	// publish a reservation, park for StallFor (default 2s), and withdraw
	// it. They serve no requests — they exist to pin reclamation so the lag
	// telemetry and the quarantine remediation can be exercised against a
	// known cause.
	Stalled  int
	StallFor time.Duration

	// SoftWatermark and HardWatermark are fractions of the shard pool's slot
	// capacity (defaults 0.5 and 0.85). Above soft, the remediator forces
	// retire-list scans on the shard's workers every tick. Above hard, the
	// shard sheds: Submit returns ErrShedding until the backlog falls back
	// below 90% of the hard cap.
	SoftWatermark, HardWatermark float64
	// QuarantineAfter is how long a leased tid's holder may stay parked with
	// an unchanged heartbeat before the remediator quarantines the tid —
	// revokes the lease, clears its reservation, and adopts its retire list
	// (default 1s). Dead holders (worker panics) are quarantined on the next
	// tick regardless.
	QuarantineAfter time.Duration
	// RemedyInterval is the remediator poll period (default 50ms).
	RemedyInterval time.Duration
	// SpareTids is how many extra scheme tids each shard keeps unleased
	// (default 2). A quarantine consumes the stalled tid until its cleanup
	// runs; spares are what let a replacement worker or staller start
	// immediately instead of waiting for that cleanup.
	SpareTids int

	// MaxRangeResults caps one Range's result count (default 65536, the
	// protocol ceiling); a request's Limit of 0 selects it, larger limits
	// clamp to it. A full-limit scan is deliberately large — it is the
	// paper's long-running read, executed inside one reservation interval
	// per shard.
	MaxRangeResults int
	// ExpiryGranularity is the TTL expiry wheel's slot width (default
	// 50ms): deadlines round to it, and expirations lag it by up to one
	// remediator tick. Sub-tick TTL precision is explicitly not a goal.
	ExpiryGranularity time.Duration

	// testExecHook, when set, runs at the top of every data-path exec with
	// the request's op and key. Tests use it to inject faults (panics,
	// delays) inside a worker; it is deliberately unexported.
	testExecHook func(op Op, key uint64)
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.Structure == "" {
		c.Structure = "hashmap"
	}
	if c.Scheme == "" {
		c.Scheme = "tagibr"
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.Stalled < 0 {
		c.Stalled = 0
	}
	if c.StallFor <= 0 {
		c.StallFor = 2 * time.Second
	}
	if c.SoftWatermark == 0 {
		c.SoftWatermark = 0.5
	}
	if c.HardWatermark == 0 {
		c.HardWatermark = 0.85
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = time.Second
	}
	if c.RemedyInterval <= 0 {
		c.RemedyInterval = 50 * time.Millisecond
	}
	if c.SpareTids <= 0 {
		c.SpareTids = 2
	}
	if c.MaxRangeResults <= 0 || c.MaxRangeResults > maxRangeLimit {
		c.MaxRangeResults = maxRangeLimit
	}
	if c.ExpiryGranularity <= 0 {
		c.ExpiryGranularity = 50 * time.Millisecond
	}
	return c
}

// request is one queued operation. done is invoked exactly once, on the
// shard worker that executed the request; it must not block (connection
// handlers guarantee buffer space via their in-flight cap). Control
// requests (req.Op >= opCtlBase) carry a nil done. A Range's per-shard legs
// carry rng instead of done: the collector invokes the caller's done once
// every leg has reported. An opCtlExpire carries its due-key batch in exp.
type request struct {
	req  Request
	done func(Response)
	rng  *rangeOp
	exp  []expEntry
}

// shard is one slice of the key space: a private structure + scheme +
// lease table + worker pool. Lease-holding goroutines are the only ones
// that ever touch m, each under its leased tid, so the scheme's "one
// goroutine per tid" contract holds no matter how many connections the
// server carries — and survives workers dying and being replaced.
type shard struct {
	idx    int
	m      ds.Map
	inst   ds.Instrumented
	q      *reqQueue
	leases *leaseTable
	ops    atomic.Uint64
	wheel  *expiryWheel // TTL expiry (always built; idle when no TTLs arrive)

	// Admission control: softCap/hardCap are the watermark fractions applied
	// to the shard pool's slot capacity; resumeCap is the hysteresis floor
	// (90% of hard) below which shedding ends.
	softCap, hardCap, resumeCap int
	shedding                    atomic.Bool
	// drainGen forces retire-list scans: the remediator bumps it when the
	// soft watermark is crossed, and every worker drains once per batch in
	// which it observes a new value.
	drainGen atomic.Uint64

	// Degradation counters (Stats / /metrics).
	quarantines   atomic.Uint64 // tids quarantined (ibr_tid_quarantines_total)
	adopted       atomic.Uint64 // retired blocks adopted from quarantined tids
	shed          atomic.Uint64 // Submits refused with ErrShedding
	shedEpisodes  atomic.Uint64 // shedding activations
	poolExhausted atomic.Uint64 // Puts answered StatusBusy for pool exhaustion
	deaths        atomic.Uint64 // worker goroutines lost to panics
	expired       atomic.Uint64 // keys removed by TTL expiry (ibr_expired_total)
	rangeOps      atomic.Uint64 // range legs executed on this shard
	activeScans   atomic.Int64  // range legs currently inside their reservation
	underScanHW   atomic.Int64  // high-water unreclaimed sampled while a scan was active
}

// noteUnderScan folds one unreclaimed sample, taken while a range leg held
// its reservation, into the shard's high-water mark. The mark is what the
// EXPERIMENTS recipe reads: EBR's grows with scan length, the interval
// schemes' stays bounded.
func (sh *shard) noteUnderScan(un int) {
	for {
		cur := sh.underScanHW.Load()
		if int64(un) <= cur || sh.underScanHW.CompareAndSwap(cur, int64(un)) {
			return
		}
	}
}

// Engine is the sharded KV engine behind the server.
type Engine struct {
	cfg        EngineConfig
	shards     []*shard
	tids       int        // scheme tids per shard: workers + stallers + spares
	ranging    bool       // the structure implements ds.Ranger
	obs        *EngineObs // nil when cfg.Obs is nil
	wg         sync.WaitGroup
	stallStop  chan struct{} // nil unless cfg.Stalled > 0
	stallWG    sync.WaitGroup
	remedyStop chan struct{}
	remedyDone chan struct{}
	closeOnce  sync.Once
}

// NewEngine builds the shards and starts every worker, staller, and the
// remediator. The workers idle on their queues until Submit feeds them;
// Close stops them.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	cfg = cfg.withDefaults()
	if !ds.SchemeSupports(cfg.Scheme, cfg.Structure) {
		return nil, fmt.Errorf("server: scheme %q cannot run structure %q", cfg.Scheme, cfg.Structure)
	}
	if cfg.SoftWatermark <= 0 || cfg.SoftWatermark >= cfg.HardWatermark || cfg.HardWatermark > 1 {
		return nil, fmt.Errorf("server: watermarks must satisfy 0 < soft < hard <= 1, got soft=%v hard=%v",
			cfg.SoftWatermark, cfg.HardWatermark)
	}
	e := &Engine{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	// The scheme (and the observer's ring layout) is sized for every tid a
	// shard can ever lease: workers, injected stallers, and the spares that
	// replacement workers draw from after a quarantine.
	e.tids = cfg.WorkersPerShard + cfg.Stalled + cfg.SpareTids
	if cfg.Obs != nil {
		e.obs = newEngineObs(*cfg.Obs, cfg.Shards, e.tids)
	}
	for i := range e.shards {
		m, err := ds.NewMap(cfg.Structure, ds.Config{
			Scheme: cfg.Scheme,
			Core: core.Options{
				Threads:   e.tids,
				EpochFreq: cfg.EpochFreq,
				EmptyFreq: cfg.EmptyFreq,
				Slots:     cfg.Slots,
				Obs:       e.obs.schemeObs(i),
			},
			PoolSlots: cfg.PoolSlots,
			Buckets:   cfg.Buckets,
		})
		if err != nil {
			return nil, err
		}
		if i == 0 {
			_, e.ranging = m.(ds.Ranger)
		}
		sh := &shard{
			idx:    i,
			m:      m,
			inst:   m.(ds.Instrumented),
			q:      newReqQueue(cfg.QueueDepth),
			leases: newLeaseTable(e.tids),
			wheel:  newExpiryWheel(cfg.ExpiryGranularity, time.Now().UnixNano()),
		}
		cap := sh.inst.PoolStats().Capacity
		sh.softCap = int(float64(cap) * cfg.SoftWatermark)
		sh.hardCap = int(float64(cap) * cfg.HardWatermark)
		sh.resumeCap = sh.hardCap * 9 / 10
		if sh.softCap < 1 {
			sh.softCap = 1
		}
		if sh.hardCap <= sh.softCap {
			sh.hardCap = sh.softCap + 1
		}
		if sh.resumeCap < sh.softCap {
			sh.resumeCap = sh.softCap
		}
		e.shards[i] = sh
	}
	e.obs.startWatchdog(e)
	for _, sh := range e.shards {
		for i := 0; i < cfg.WorkersPerShard; i++ {
			tid, gen, ok := sh.leases.acquire(roleWorker)
			if !ok { // cannot happen: table was sized for the workers
				return nil, fmt.Errorf("server: shard %d lease table exhausted at startup", sh.idx)
			}
			e.wg.Add(1)
			go e.worker(sh, tid, gen)
		}
	}
	if cfg.Stalled > 0 {
		e.stallStop = make(chan struct{})
		for _, sh := range e.shards {
			for j := 0; j < cfg.Stalled; j++ {
				e.stallWG.Add(1)
				go e.staller(sh)
			}
		}
	}
	e.remedyStop = make(chan struct{})
	e.remedyDone = make(chan struct{})
	go e.remediator()
	return e, nil
}

// staller is one injected-stall goroutine: lease a tid, publish a
// reservation, park for StallFor, withdraw, repeat. Exactly the harness's
// stalled worker, running against the serving engine — but under the lease
// protocol: it declares itself parked before blocking (it holds no node
// references, so clearing its reservation on its behalf is safe), and on
// waking it re-checks the lease. If the remediator quarantined the tid
// while it slept, it walks away without touching the scheme and leases a
// fresh tid for the next stall cycle.
func (e *Engine) staller(sh *shard) {
	defer e.stallWG.Done()
	s := sh.inst.Scheme()
	for {
		tid, gen, ok := sh.leases.acquire(roleStaller)
		if !ok {
			// Every tid is leased or awaiting cleanup; retry shortly.
			select {
			case <-e.stallStop:
				return
			case <-time.After(10 * time.Millisecond):
				continue
			}
		}
		for {
			//ibrlint:ignore quarantine: if the lease is revoked while parked, EndOp is the remediator's job (ClearReservation), not ours
			s.StartOp(tid)
			sh.leases.setParked(tid, gen, true)
			stop := false
			select {
			case <-e.stallStop:
				stop = true
			case <-time.After(e.cfg.StallFor):
			}
			if sh.leases.unpark(tid, gen) {
				s.EndOp(tid)
				if stop {
					sh.leases.release(tid, gen)
					return
				}
				continue
			}
			// Quarantined while parked: the reservation is no longer ours
			// to withdraw. Abandon the tid.
			if stop {
				return
			}
			break
		}
	}
}

// remediator is the engine's degradation-policy loop. Every RemedyInterval
// it, per shard: (1) applies the admission watermarks to the unreclaimed
// backlog — forcing scans above soft, shedding above hard; (2) scans the
// lease table for holders that are dead, or parked past QuarantineAfter
// with an unchanged heartbeat, and quarantines their tids (cleanup runs on
// a worker via a control op); (3) spawns replacement workers for
// quarantined worker tids so the shard keeps serving at full width.
func (e *Engine) remediator() {
	defer close(e.remedyDone)
	ticker := time.NewTicker(e.cfg.RemedyInterval)
	defer ticker.Stop()
	// Per-shard, per-tid staleness tracking: a park observation only ages
	// while the heartbeat stays put.
	type track struct {
		beat     uint64
		since    time.Time
		tracking bool
	}
	states := make([][]track, len(e.shards))
	snaps := make([][]leaseInfo, len(e.shards))
	deficit := make([]int, len(e.shards))
	for i := range states {
		states[i] = make([]track, e.tids)
	}
	for {
		select {
		case <-e.remedyStop:
			return
		case <-ticker.C:
		}
		now := time.Now()
		for si, sh := range e.shards {
			s := sh.inst.Scheme()

			un := core.TotalUnreclaimed(s, e.tids)
			if un >= sh.hardCap {
				if sh.shedding.CompareAndSwap(false, true) {
					sh.shedEpisodes.Add(1)
				}
			} else if sh.shedding.Load() && un < sh.resumeCap {
				sh.shedding.Store(false)
			}
			if un >= sh.softCap {
				sh.drainGen.Add(1)
				sh.q.pushControl(request{req: Request{Op: opCtlDrain}})
				// Couple the scheme's adaptive drain to the admission signal:
				// above the soft watermark, space is the binding constraint,
				// so workers stop backing off futile scans and probe at the
				// base EmptyFreq cadence until the backlog recedes.
				core.SetDrainPressure(s, true)
			} else {
				core.SetDrainPressure(s, false)
			}

			// TTL expiry: collect the keys whose deadline passed and hand
			// them to a worker as one control batch. Collection is cheap
			// (the wheel only walks slots the clock crossed), and execution
			// on a worker keeps the one-goroutine-per-tid contract — the
			// remediator never touches the structure itself.
			if due := sh.wheel.collectDue(now.UnixNano(), nil); len(due) > 0 {
				if !sh.q.pushControl(request{req: Request{Op: opCtlExpire}, exp: due}) {
					// Queue closed under us (shutdown race): re-arm the batch
					// so the collect isn't a silent drop.
					sh.wheel.requeue(due, now.UnixNano())
				}
			}

			snaps[si] = sh.leases.snapshot(snaps[si])
			for tid, info := range snaps[si] {
				tr := &states[si][tid]
				switch {
				case info.status == leaseHeld && info.dead:
					e.tryQuarantine(sh, tid, info.role, &deficit[si])
					tr.tracking = false
				case info.status == leaseHeld && info.parked:
					if !tr.tracking || tr.beat != info.beat {
						*tr = track{beat: info.beat, since: now, tracking: true}
					} else if now.Sub(tr.since) >= e.cfg.QuarantineAfter {
						e.tryQuarantine(sh, tid, info.role, &deficit[si])
						tr.tracking = false
					}
				default:
					tr.tracking = false
				}
			}

			// Replacements are spawned here — never from the cleanup op —
			// so a shard whose every worker died still recovers: the new
			// worker is what will execute the pending quarantine cleanups.
			for deficit[si] > 0 {
				tid, gen, ok := sh.leases.acquire(roleWorker)
				if !ok {
					break // no free tid until a cleanup completes; retry next tick
				}
				e.wg.Add(1)
				go e.worker(sh, tid, gen)
				deficit[si]--
			}
		}
	}
}

// tryQuarantine revokes tid's lease if the holder is still verifiably out
// of the scheme, then enqueues the cleanup control op. Worker tids add to
// the shard's replacement deficit.
func (e *Engine) tryQuarantine(sh *shard, tid int, role leaseRole, deficit *int) {
	if !sh.leases.quarantine(tid) {
		return
	}
	sh.quarantines.Add(1)
	sh.q.pushControl(request{req: Request{Op: opCtlQuarantine, Key: uint64(tid)}})
	if role == roleWorker {
		*deficit++
	}
}

// Obs returns the engine's observability state, nil when disabled.
func (e *Engine) Obs() *EngineObs { return e.obs }

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() EngineConfig { return e.cfg }

// shardFor hashes a key to its shard. The SplitMix64 finalizer decorrelates
// the shard choice from the hash map's in-shard Fibonacci bucket hash, so
// dense key ranges spread over both levels independently.
func shardFor(key uint64, n int) int {
	z := key + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int((z ^ (z >> 31)) % uint64(n))
}

// SubmitRequest enqueues one typed operation. If it returns nil, done will
// be called exactly once — usually on a shard worker, but semantic
// rejections (an unsupported or malformed Range) answer synchronously, so
// done must tolerate running on the submitting goroutine. If it returns
// ErrClosed, ErrBusy, or ErrShedding, the operation was rejected and done
// is never called. done must not block.
//
// Single-key ops go to their key's shard. A Range fans out to EVERY shard —
// keys are hashed across them, so each holds an interleaved slice of the
// interval — and done fires once, with the merged ascending result, after
// the last shard leg completes. When observability is on, a non-zero
// TraceID makes the executing worker record an op span under it (see
// /debug/trace).
func (e *Engine) SubmitRequest(req Request, done func(Response)) error {
	if !req.Op.valid() {
		return fmt.Errorf("server: invalid op %d", req.Op)
	}
	if req.Op == OpRange {
		return e.submitRange(req, done)
	}
	sh := e.shards[shardFor(req.Key, len(e.shards))]
	if sh.shedding.Load() {
		sh.shed.Add(1)
		return ErrShedding
	}
	return sh.q.push(request{req: req, done: done})
}

// DoContext runs one typed operation synchronously, bounded by ctx. A
// context end abandons the wait, not the work: an already accepted request
// still executes and its result is discarded.
func (e *Engine) DoContext(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	ch := make(chan Response, 1)
	if err := e.SubmitRequest(req, func(r Response) { ch <- r }); err != nil {
		return Response{}, err
	}
	select {
	case r := <-ch:
		return r, nil
	case <-ctx.Done():
		return Response{}, ctx.Err()
	}
}

// Submit enqueues one positional operation.
//
// Deprecated: use SubmitRequest, which carries the full typed Request.
func (e *Engine) Submit(op Op, key, val uint64, done func(Resp)) error {
	return e.SubmitRequest(Request{Op: op, Key: key, Val: val}, done)
}

// SubmitTraced enqueues one positional operation with a causal trace ID.
//
// Deprecated: use SubmitRequest with Request.TraceID set.
func (e *Engine) SubmitTraced(op Op, key, val, trace uint64, done func(Resp)) error {
	return e.SubmitRequest(Request{Op: op, Key: key, Val: val, TraceID: trace}, done)
}

// Do runs one positional operation synchronously.
//
// Deprecated: use DoContext with a typed Request.
func (e *Engine) Do(op Op, key, val uint64) (Resp, error) {
	return e.DoContext(context.Background(), Request{Op: op, Key: key, Val: val})
}

// maxSpillCap bounds the batch buffer a worker keeps between queue pops.
// Without it one backlog burst pins a backlog-peak-sized backing array per
// worker for the engine's lifetime; oversized buffers are dropped and the
// next pop starts from a fresh, demand-sized allocation.
const maxSpillCap = 256

// worker is one leased executor: it owns scheme tid `tid` (generation gen)
// of sh's scheme until it exits or its lease is revoked, and is — with its
// sibling lease holders — the only goroutine that ever calls into sh.m. It
// drains the shard queue in batches until the queue is closed and empty.
//
// A panic anywhere in the serving path does not take the shard down: the
// worker marks its lease dead (the remediator quarantines the tid, adopts
// its retire backlog, and spawns a replacement), answers its unfinished
// batch with StatusInternal so no client blocks, and exits.
func (e *Engine) worker(sh *shard, tid int, gen uint64) {
	defer e.wg.Done()
	var (
		batch []request
		cur   int
	)
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		sh.deaths.Add(1)
		sh.leases.markDead(tid, gen)
		fmt.Fprintf(os.Stderr, "server: shard %d worker tid %d died: %v\n%s", sh.idx, tid, p, debug.Stack())
		for ; cur < len(batch); cur++ {
			r := &batch[cur]
			if r.rng != nil {
				r.rng.finish(e, sh, nil, Response{Status: StatusInternal})
			} else if r.done != nil {
				r.done(Response{Status: StatusInternal})
			} else if len(r.exp) > 0 {
				// An expiry batch this worker never (fully) executed:
				// collectDue already disarmed the keys, so hand them back to
				// the wheel or they never expire. The batch at `cur` may be
				// partially done — re-arming an already-removed key is
				// harmless (its removal just fails on the next pass).
				sh.wheel.requeue(r.exp, time.Now().UnixNano())
			}
		}
	}()
	var spill []request
	lastDrain := sh.drainGen.Load()
	for {
		var ok bool
		batch, ok = sh.q.popAll(spill)
		if !ok {
			sh.leases.release(tid, gen)
			return
		}
		// Heartbeat: the remediator reads this to tell a busy worker from a
		// wedged one before trusting the parked flag.
		sh.leases.beat(tid)
		if g := sh.drainGen.Load(); g != lastDrain {
			lastDrain = g
			sh.inst.Scheme().Drain(tid)
		}
		for cur = 0; cur < len(batch); cur++ {
			r := &batch[cur]
			if r.req.Op >= opCtlBase {
				e.execCtl(sh, tid, r)
				batch[cur] = request{}
				continue
			}
			if r.rng != nil {
				e.execRange(sh, tid, r)
				sh.ops.Add(1)
				batch[cur] = request{}
				continue
			}
			var resp Response
			if eo := e.obs; eo != nil {
				if li := latIndex(r.req.Op); li >= 0 {
					t0 := obs.Now()
					resp = e.exec(sh, tid, r)
					d := obs.Now() - t0
					eo.opLat[li].Record(d)
					if r.req.TraceID != 0 {
						eo.opEvent(sh.idx, tid, r.req.TraceID, d)
					}
				} else {
					resp = e.exec(sh, tid, r)
				}
			} else {
				resp = e.exec(sh, tid, r)
			}
			sh.ops.Add(1)
			r.done(resp)
			batch[cur] = request{} // release the done closure promptly
		}
		spill = trimSpill(batch)
	}
}

// trimSpill recycles batch as the next pop's backing buffer, dropping it
// once a burst has grown it past maxSpillCap.
func trimSpill(batch []request) []request {
	if cap(batch) > maxSpillCap {
		return nil
	}
	return batch
}

// exec runs one request under the worker's leased tid.
func (e *Engine) exec(sh *shard, tid int, r *request) Response {
	if h := e.cfg.testExecHook; h != nil {
		h(r.req.Op, r.req.Key)
	}
	key := r.req.Key
	switch r.req.Op {
	case OpPing:
		return Response{Status: StatusOK, Val: r.req.Val}
	case OpGet:
		if key >= ds.KeyLimit {
			return Response{Status: StatusBadRequest}
		}
		if v, ok := sh.m.Get(tid, key); ok {
			return Response{Status: StatusOK, Val: v}
		}
		return Response{Status: StatusNotFound}
	case OpPut:
		if key >= ds.KeyLimit {
			return Response{Status: StatusBadRequest}
		}
		if sh.m.Insert(tid, key, r.req.Val) {
			// Arm (or, for a plain Put, disarm any stale) expiry only after
			// the insert succeeded: Put is insert-if-absent, so a losing Put
			// must not touch the winner's TTL.
			if r.req.TTL > 0 {
				sh.wheel.schedule(key, expDeadline(r.req.TTL))
			} else {
				sh.wheel.cancel(key)
			}
			return Response{Status: StatusOK, Val: r.req.Val}
		}
		// A failed insert is ambiguous: the key may exist, or the node
		// allocation may have failed on an exhausted pool. The scheme
		// records which; exhaustion is overload, not a data answer.
		if core.AllocFailed(sh.inst.Scheme(), tid) {
			sh.poolExhausted.Add(1)
			return Response{Status: StatusBusy}
		}
		return Response{Status: StatusExists}
	case OpDel:
		if key >= ds.KeyLimit {
			return Response{Status: StatusBadRequest}
		}
		if sh.m.Remove(tid, key) {
			sh.wheel.cancel(key)
			return Response{Status: StatusOK}
		}
		return Response{Status: StatusNotFound}
	}
	return Response{Status: StatusBadRequest}
}

// expDeadline converts a TTL into an absolute UnixNano deadline.
func expDeadline(ttl time.Duration) int64 { return time.Now().Add(ttl).UnixNano() }

// execCtl runs one control request under the worker's leased tid. The
// quarantine cleanup lives here — on a worker, not on the remediator — so
// the adopting tid is owned by the executing goroutine and the scheme's
// one-goroutine-per-tid contract holds throughout.
func (e *Engine) execCtl(sh *shard, tid int, r *request) {
	s := sh.inst.Scheme()
	switch r.req.Op {
	case opCtlDrain:
		s.Drain(tid)
	case opCtlExpire:
		// Tag the batch's retirements as expiry-driven, then remove through
		// the ordinary structure path: each removal retires its node into
		// this worker's retire list exactly as a client delete would, so
		// expirations and user deletes compete for the same scan capacity.
		core.SetRetireSource(s, tid, core.SourceExpiry)
		for _, en := range r.exp {
			if en.key < ds.KeyLimit && sh.m.Remove(tid, en.key) {
				sh.expired.Add(1)
			}
		}
		core.SetRetireSource(s, tid, core.SourceUser)
	case opCtlQuarantine:
		qt := int(r.req.Key)
		// Re-verify under the lease lock: a concurrent cleanup of the same
		// tid (duplicate control op) or Close may have resolved it already.
		if !sh.leases.cleanable(qt) {
			return
		}
		// Safe: the lease table proved qt's holder parked (holding no node
		// references) or dead before revoking the lease, and revocation
		// means the holder will never act under qt again.
		//ibrlint:ignore quarantine: holder verified parked or dead via lease table before revocation
		core.ClearReservation(s, qt)
		//ibrlint:ignore quarantine: qt is revoked and this worker owns tid, the adopting side
		n := core.AdoptRetired(s, qt, tid)
		sh.adopted.Add(uint64(n))
		sh.leases.finishQuarantine(qt)
		// The adopted backlog was pinned by qt's own reservation; with that
		// cleared, one scan usually returns it to the pool wholesale.
		s.Drain(tid)
		var ep uint64
		if c, ok := s.(interface{ Clock() *epoch.Clock }); ok {
			ep = c.Clock().Now()
		}
		e.obs.quarantineEvent(sh.idx, tid, qt, ep, uint64(n))
	}
}

// Close drains the engine: new Submits fail with ErrClosed, every already
// accepted request is executed and completed, the remediator, stallers and
// workers exit, and each shard's retire lists are scanned one last time at
// quiescence. It is idempotent and safe to call concurrently with Submit.
func (e *Engine) Close() {
	// sync.Once blocks concurrent callers until the drain completes, so
	// every Close returns only once the engine is fully quiescent.
	e.closeOnce.Do(func() {
		// The remediator stops first: it is the only goroutine that spawns
		// workers, so after remedyDone the worker set can only shrink and
		// wg.Wait below cannot race a spawn.
		close(e.remedyStop)
		<-e.remedyDone
		// Withdraw injected stalls next so the final scans can reclaim.
		if e.stallStop != nil {
			close(e.stallStop)
			e.stallWG.Wait()
		}
		for _, sh := range e.shards {
			sh.q.close()
		}
		e.wg.Wait()
		for _, sh := range e.shards {
			// Quarantines whose cleanup op never ran (queue closed under
			// them, or every worker died) are resolved here, at quiescence:
			// no goroutine acts under any tid anymore, so the transfer
			// preconditions hold trivially.
			s := sh.inst.Scheme()
			for tid := 0; tid < e.tids; tid++ {
				if !sh.leases.cleanable(tid) {
					continue
				}
				//ibrlint:ignore quarantine: engine is quiescent, no goroutine owns any tid
				core.ClearReservation(s, tid)
				//ibrlint:ignore quarantine: engine is quiescent, no goroutine owns any tid
				n := core.AdoptRetired(s, tid, 0)
				sh.adopted.Add(uint64(n))
				sh.leases.finishQuarantine(tid)
			}
			core.DrainAll(s, e.tids)
		}
		e.obs.stop()
	})
}

// ShardStats is one shard's metrics snapshot.
type ShardStats struct {
	Ops         uint64 // operations completed
	QueueDepth  int    // current backlog
	Unreclaimed int    // retired-but-unreclaimed blocks (Fig. 9's metric)
	Epoch       uint64 // the shard scheme's current epoch (0 if epoch-free)
	EpochLag    uint64 // epoch - oldest reserved lower endpoint, 0 when idle
	Live        uint64 // live slots in the shard's node pool

	// Scan is the shard scheme's reclamation-scan work (zero for NoMM):
	// how often workers scanned their retire lists, how many blocks those
	// scans examined, and how many they freed.
	Scan core.ScanStats

	// Degradation policy: quarantine and admission-control activity.
	Quarantines   uint64 // tids quarantined (stalled or dead holders)
	Adopted       uint64 // retired blocks adopted from quarantined tids
	Shed          uint64 // Submits refused while above the hard watermark
	ShedEpisodes  uint64 // times shedding switched on
	PoolExhausted uint64 // Puts answered StatusBusy on pool exhaustion
	Deaths        uint64 // worker goroutines lost to panics
	Shedding      bool   // currently above the hard watermark

	// Range and TTL activity.
	RangeOps      uint64 // range legs executed on this shard
	ActiveScans   int64  // range legs currently holding a reservation
	UnderScanHW   int64  // peak unreclaimed sampled while a scan was active
	Expired       uint64 // keys removed by TTL expiry
	ExpiryPending int    // keys currently armed in the expiry wheel
	RetiredUser   uint64 // retirements caused by client operations
	RetiredExpiry uint64 // retirements caused by TTL expiry
}

// Stats snapshots every shard. Safe to call concurrently with serving.
func (e *Engine) Stats() []ShardStats {
	out := make([]ShardStats, len(e.shards))
	for i, sh := range e.shards {
		st := ShardStats{
			Ops:           sh.ops.Load(),
			QueueDepth:    sh.q.depth(),
			Unreclaimed:   core.TotalUnreclaimed(sh.inst.Scheme(), e.tids),
			Live:          sh.inst.PoolStats().Live(),
			Quarantines:   sh.quarantines.Load(),
			Adopted:       sh.adopted.Load(),
			Shed:          sh.shed.Load(),
			ShedEpisodes:  sh.shedEpisodes.Load(),
			PoolExhausted: sh.poolExhausted.Load(),
			Deaths:        sh.deaths.Load(),
			Shedding:      sh.shedding.Load(),
			RangeOps:      sh.rangeOps.Load(),
			ActiveScans:   sh.activeScans.Load(),
			UnderScanHW:   sh.underScanHW.Load(),
			Expired:       sh.expired.Load(),
			ExpiryPending: sh.wheel.pending(),
		}
		s := sh.inst.Scheme()
		src := core.RetireSources(s)
		st.RetiredUser, st.RetiredExpiry = src[core.SourceUser], src[core.SourceExpiry]
		if sc, ok := s.(interface{ ScanStats() core.ScanStats }); ok {
			st.Scan = sc.ScanStats()
		}
		if c, ok := s.(interface{ Clock() *epoch.Clock }); ok {
			st.Epoch = c.Clock().Now()
			if r, ok := s.(interface{ Reservations() *epoch.Table }); ok {
				if lo := r.Reservations().MinLower(); lo != epoch.None && lo <= st.Epoch {
					st.EpochLag = st.Epoch - lo
				}
			}
		}
		out[i] = st
	}
	return out
}
