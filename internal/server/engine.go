package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ibr/internal/core"
	"ibr/internal/ds"
	"ibr/internal/epoch"
	"ibr/internal/obs"
)

// Errors returned by Engine.Submit. In both cases the request was NOT
// accepted and its done callback will never run.
var (
	errClosed = errors.New("server: engine is draining")
	errBusy   = errors.New("server: shard queue full")

	// ErrClosed is returned by Submit once Close has begun.
	ErrClosed = errClosed
	// ErrBusy is returned by Submit when the target shard's queue is full.
	ErrBusy = errBusy
)

// EngineConfig sizes the sharded engine. The zero value of every field
// selects a sensible default (hashmap × tagibr, 8 shards × 2 workers).
type EngineConfig struct {
	// Structure is a ds map registry name (default "hashmap").
	Structure string
	// Scheme is a core scheme registry name (default "tagibr").
	Scheme string
	// Shards is the number of independent ds.Map instances the key space
	// is hashed across (default 8). Each shard has its own node pool,
	// scheme instance, and worker pool, so shards never contend.
	Shards int
	// WorkersPerShard is the number of tid-leased worker goroutines per
	// shard (default 2); it is also the scheme's Options.Threads.
	WorkersPerShard int
	// QueueDepth bounds each shard's request backlog (default 4096);
	// beyond it Submit returns ErrBusy.
	QueueDepth int

	// EpochFreq, EmptyFreq, Slots tune each shard's scheme (see
	// core.Options); zero selects the paper's defaults.
	EpochFreq, EmptyFreq, Slots int
	// PoolSlots caps each shard's node pool (0 = mem.DefaultMaxSlots).
	PoolSlots uint64
	// Buckets sets the hash map bucket count per shard (0 = default).
	Buckets int

	// Obs enables the observability layer — flight recorder, latency/scan/
	// retire-age histograms, and the stall watchdog (see internal/obs). Nil
	// disables it: the hooks stay compiled in but cost one pointer test.
	Obs *obs.Options

	// Stalled injects the paper's preempted thread (§4.3.1) into the live
	// engine: each shard gets this many extra scheme tids whose goroutines
	// repeatedly publish a reservation, park for StallFor (default 2s), and
	// withdraw it. They serve no requests — they exist to pin reclamation so
	// the lag telemetry (epoch lag, unreclaimed growth, stall alerts) can be
	// watched against a known cause.
	Stalled  int
	StallFor time.Duration
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.Structure == "" {
		c.Structure = "hashmap"
	}
	if c.Scheme == "" {
		c.Scheme = "tagibr"
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.Stalled < 0 {
		c.Stalled = 0
	}
	if c.StallFor <= 0 {
		c.StallFor = 2 * time.Second
	}
	return c
}

// Resp is the engine-level result of one operation.
type Resp struct {
	Status Status
	Val    uint64
}

// request is one queued operation. done is invoked exactly once, on the
// shard worker that executed the request; it must not block (connection
// handlers guarantee buffer space via their in-flight cap).
type request struct {
	op       Op
	key, val uint64
	done     func(Resp)
}

// shard is one slice of the key space: a private structure + scheme +
// worker pool. Workers are the only goroutines that ever touch m, each
// under its leased tid, so the scheme's "one goroutine per tid" contract
// holds no matter how many connections the server carries.
type shard struct {
	m    ds.Map
	inst ds.Instrumented
	q    *reqQueue
	ops  atomic.Uint64
}

// Engine is the sharded KV engine behind the server.
type Engine struct {
	cfg       EngineConfig
	shards    []*shard
	obs       *EngineObs // nil when cfg.Obs is nil
	wg        sync.WaitGroup
	stallStop chan struct{} // nil unless cfg.Stalled > 0
	stallWG   sync.WaitGroup
	closeOnce sync.Once
}

// NewEngine builds the shards and starts every worker. The workers idle on
// their queues until Submit feeds them; Close stops them.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	cfg = cfg.withDefaults()
	if !ds.SchemeSupports(cfg.Scheme, cfg.Structure) {
		return nil, fmt.Errorf("server: scheme %q cannot run structure %q", cfg.Scheme, cfg.Structure)
	}
	e := &Engine{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	// Stalled reservation holders are extra tids beyond the workers, so the
	// scheme (and the observer's ring layout) is sized for both.
	tids := cfg.WorkersPerShard + cfg.Stalled
	if cfg.Obs != nil {
		e.obs = newEngineObs(*cfg.Obs, cfg.Shards, tids)
	}
	for i := range e.shards {
		m, err := ds.NewMap(cfg.Structure, ds.Config{
			Scheme: cfg.Scheme,
			Core: core.Options{
				Threads:   tids,
				EpochFreq: cfg.EpochFreq,
				EmptyFreq: cfg.EmptyFreq,
				Slots:     cfg.Slots,
				Obs:       e.obs.schemeObs(i),
			},
			PoolSlots: cfg.PoolSlots,
			Buckets:   cfg.Buckets,
		})
		if err != nil {
			return nil, err
		}
		e.shards[i] = &shard{m: m, inst: m.(ds.Instrumented), q: newReqQueue(cfg.QueueDepth)}
	}
	e.obs.startWatchdog(e)
	for _, sh := range e.shards {
		for tid := 0; tid < cfg.WorkersPerShard; tid++ {
			e.wg.Add(1)
			go e.worker(sh, tid)
		}
	}
	if cfg.Stalled > 0 {
		e.stallStop = make(chan struct{})
		for _, sh := range e.shards {
			for j := 0; j < cfg.Stalled; j++ {
				e.stallWG.Add(1)
				go e.staller(sh.inst.Scheme(), cfg.WorkersPerShard+j)
			}
		}
	}
	return e, nil
}

// staller owns one injected-stall tid: publish a reservation, park for
// StallFor, withdraw, repeat. Exactly the harness's stalled worker, running
// against the serving engine.
func (e *Engine) staller(s core.Scheme, tid int) {
	defer e.stallWG.Done()
	for {
		s.StartOp(tid)
		stop := false
		select {
		case <-e.stallStop:
			stop = true
		case <-time.After(e.cfg.StallFor):
		}
		s.EndOp(tid)
		if stop {
			return
		}
	}
}

// Obs returns the engine's observability state, nil when disabled.
func (e *Engine) Obs() *EngineObs { return e.obs }

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() EngineConfig { return e.cfg }

// shardFor hashes a key to its shard. The SplitMix64 finalizer decorrelates
// the shard choice from the hash map's in-shard Fibonacci bucket hash, so
// dense key ranges spread over both levels independently.
func shardFor(key uint64, n int) int {
	z := key + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int((z ^ (z >> 31)) % uint64(n))
}

// Submit enqueues one operation on its key's shard. If it returns nil,
// done will be called exactly once (on a shard worker); if it returns
// ErrClosed or ErrBusy, the operation was rejected and done is never
// called. done must not block.
func (e *Engine) Submit(op Op, key, val uint64, done func(Resp)) error {
	if !op.valid() {
		return fmt.Errorf("server: invalid op %d", op)
	}
	sh := e.shards[shardFor(key, len(e.shards))]
	return sh.q.push(request{op: op, key: key, val: val, done: done})
}

// Do runs one operation synchronously; tests and simple callers.
func (e *Engine) Do(op Op, key, val uint64) (Resp, error) {
	ch := make(chan Resp, 1)
	if err := e.Submit(op, key, val, func(r Resp) { ch <- r }); err != nil {
		return Resp{}, err
	}
	return <-ch, nil
}

// maxSpillCap bounds the batch buffer a worker keeps between queue pops.
// Without it one backlog burst pins a backlog-peak-sized backing array per
// worker for the engine's lifetime; oversized buffers are dropped and the
// next pop starts from a fresh, demand-sized allocation.
const maxSpillCap = 256

// worker is one leased executor: it owns scheme tid `tid` of sh's scheme
// for its whole lifetime and is, with its sibling workers, the only
// goroutine that ever calls into sh.m. It drains the shard queue in
// batches until the queue is closed and empty.
func (e *Engine) worker(sh *shard, tid int) {
	defer e.wg.Done()
	var spill []request
	for {
		batch, ok := sh.q.popAll(spill)
		if !ok {
			return
		}
		for i := range batch {
			r := &batch[i]
			var resp Resp
			if eo := e.obs; eo != nil {
				if li := latIndex(r.op); li >= 0 {
					t0 := obs.Now()
					resp = e.exec(sh, tid, r)
					eo.opLat[li].Record(obs.Now() - t0)
				} else {
					resp = e.exec(sh, tid, r)
				}
			} else {
				resp = e.exec(sh, tid, r)
			}
			sh.ops.Add(1)
			r.done(resp)
			batch[i] = request{} // release the done closure promptly
		}
		spill = trimSpill(batch)
	}
}

// trimSpill recycles batch as the next pop's backing buffer, dropping it
// once a burst has grown it past maxSpillCap.
func trimSpill(batch []request) []request {
	if cap(batch) > maxSpillCap {
		return nil
	}
	return batch
}

// exec runs one request under the worker's leased tid.
func (e *Engine) exec(sh *shard, tid int, r *request) Resp {
	switch r.op {
	case OpPing:
		return Resp{Status: StatusOK, Val: r.val}
	case OpGet:
		if r.key >= ds.KeyLimit {
			return Resp{Status: StatusBadRequest}
		}
		if v, ok := sh.m.Get(tid, r.key); ok {
			return Resp{Status: StatusOK, Val: v}
		}
		return Resp{Status: StatusNotFound}
	case OpPut:
		if r.key >= ds.KeyLimit {
			return Resp{Status: StatusBadRequest}
		}
		if sh.m.Insert(tid, r.key, r.val) {
			return Resp{Status: StatusOK, Val: r.val}
		}
		return Resp{Status: StatusExists}
	case OpDel:
		if r.key >= ds.KeyLimit {
			return Resp{Status: StatusBadRequest}
		}
		if sh.m.Remove(tid, r.key) {
			return Resp{Status: StatusOK}
		}
		return Resp{Status: StatusNotFound}
	}
	return Resp{Status: StatusBadRequest}
}

// Close drains the engine: new Submits fail with ErrClosed, every already
// accepted request is executed and completed, the workers exit, and each
// shard's retire lists are scanned one last time at quiescence. It is
// idempotent and safe to call concurrently with Submit.
func (e *Engine) Close() {
	// sync.Once blocks concurrent callers until the drain completes, so
	// every Close returns only once the engine is fully quiescent.
	e.closeOnce.Do(func() {
		// Withdraw injected stalls first so the final scans can reclaim.
		if e.stallStop != nil {
			close(e.stallStop)
			e.stallWG.Wait()
		}
		for _, sh := range e.shards {
			sh.q.close()
		}
		e.wg.Wait()
		for _, sh := range e.shards {
			core.DrainAll(sh.inst.Scheme(), e.cfg.WorkersPerShard)
		}
		e.obs.stop()
	})
}

// ShardStats is one shard's metrics snapshot.
type ShardStats struct {
	Ops         uint64 // operations completed
	QueueDepth  int    // current backlog
	Unreclaimed int    // retired-but-unreclaimed blocks (Fig. 9's metric)
	Epoch       uint64 // the shard scheme's current epoch (0 if epoch-free)
	EpochLag    uint64 // epoch - oldest reserved lower endpoint, 0 when idle
	Live        uint64 // live slots in the shard's node pool

	// Scan is the shard scheme's reclamation-scan work (zero for NoMM):
	// how often workers scanned their retire lists, how many blocks those
	// scans examined, and how many they freed.
	Scan core.ScanStats
}

// Stats snapshots every shard. Safe to call concurrently with serving.
func (e *Engine) Stats() []ShardStats {
	out := make([]ShardStats, len(e.shards))
	for i, sh := range e.shards {
		st := ShardStats{
			Ops:         sh.ops.Load(),
			QueueDepth:  sh.q.depth(),
			Unreclaimed: core.TotalUnreclaimed(sh.inst.Scheme(), e.cfg.WorkersPerShard),
			Live:        sh.inst.PoolStats().Live(),
		}
		s := sh.inst.Scheme()
		if sc, ok := s.(interface{ ScanStats() core.ScanStats }); ok {
			st.Scan = sc.ScanStats()
		}
		if c, ok := s.(interface{ Clock() *epoch.Clock }); ok {
			st.Epoch = c.Clock().Now()
			if r, ok := s.(interface{ Reservations() *epoch.Table }); ok {
				if lo := r.Reservations().MinLower(); lo != epoch.None && lo <= st.Epoch {
					st.EpochLag = st.Epoch - lo
				}
			}
		}
		out[i] = st
	}
	return out
}
