package server

import (
	"errors"
	"fmt"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ibr/internal/core"
	"ibr/internal/ds"
	"ibr/internal/epoch"
	"ibr/internal/obs"
)

// Errors returned by Engine.Submit. In every case the request was NOT
// accepted and its done callback will never run. All three are distinct
// sentinels (errors.Is-comparable) so callers can tell transient overload
// (ErrBusy, ErrShedding — retry with backoff) from shutdown (ErrClosed).
var (
	errClosed = errors.New("server: engine is draining")
	errBusy   = errors.New("server: shard queue full")

	// ErrClosed is returned by Submit once Close has begun.
	ErrClosed = errClosed
	// ErrBusy is returned by Submit when the target shard's queue is full.
	ErrBusy = errBusy
	// ErrShedding is returned by Submit while the target shard's unreclaimed
	// backlog sits above its hard watermark: the shard refuses new work until
	// reclamation catches up, instead of letting a stalled reservation grow
	// the heap without bound. The wire layer reports it as StatusBusy, so
	// clients treat it exactly like queue backpressure.
	ErrShedding = errors.New("server: shard shedding load (unreclaimed backlog above hard watermark)")
)

// Control ops are engine-internal requests the remediator enqueues on shard
// queues so that scheme maintenance always runs on a worker, under a worker's
// leased tid. They sit far above the wire op range and never carry a done
// callback.
const (
	opCtlBase Op = 0xF0
	// opCtlDrain: scan the executing worker's retire list now (soft
	// watermark crossed). Also serves as a queue wake-up so idle workers
	// notice drainGen.
	opCtlDrain Op = 0xF0
	// opCtlQuarantine: clean up the quarantined tid in key — clear its
	// reservation, adopt its retire list, return its lease to the free pool.
	opCtlQuarantine Op = 0xF1
)

// EngineConfig sizes the sharded engine. The zero value of every field
// selects a sensible default (hashmap × tagibr, 8 shards × 2 workers).
type EngineConfig struct {
	// Structure is a ds map registry name (default "hashmap").
	Structure string
	// Scheme is a core scheme registry name (default "tagibr").
	Scheme string
	// Shards is the number of independent ds.Map instances the key space
	// is hashed across (default 8). Each shard has its own node pool,
	// scheme instance, and worker pool, so shards never contend.
	Shards int
	// WorkersPerShard is the number of tid-leased worker goroutines per
	// shard (default 2).
	WorkersPerShard int
	// QueueDepth bounds each shard's request backlog (default 4096);
	// beyond it Submit returns ErrBusy.
	QueueDepth int

	// EpochFreq, EmptyFreq, Slots tune each shard's scheme (see
	// core.Options); zero selects the paper's defaults.
	EpochFreq, EmptyFreq, Slots int
	// PoolSlots caps each shard's node pool (0 = mem.DefaultMaxSlots).
	PoolSlots uint64
	// Buckets sets the hash map bucket count per shard (0 = default).
	Buckets int

	// Obs enables the observability layer — flight recorder, latency/scan/
	// retire-age histograms, and the stall watchdog (see internal/obs). Nil
	// disables it: the hooks stay compiled in but cost one pointer test.
	Obs *obs.Options

	// Stalled injects the paper's preempted thread (§4.3.1) into the live
	// engine: each shard runs this many staller goroutines that lease a tid,
	// publish a reservation, park for StallFor (default 2s), and withdraw
	// it. They serve no requests — they exist to pin reclamation so the lag
	// telemetry and the quarantine remediation can be exercised against a
	// known cause.
	Stalled  int
	StallFor time.Duration

	// SoftWatermark and HardWatermark are fractions of the shard pool's slot
	// capacity (defaults 0.5 and 0.85). Above soft, the remediator forces
	// retire-list scans on the shard's workers every tick. Above hard, the
	// shard sheds: Submit returns ErrShedding until the backlog falls back
	// below 90% of the hard cap.
	SoftWatermark, HardWatermark float64
	// QuarantineAfter is how long a leased tid's holder may stay parked with
	// an unchanged heartbeat before the remediator quarantines the tid —
	// revokes the lease, clears its reservation, and adopts its retire list
	// (default 1s). Dead holders (worker panics) are quarantined on the next
	// tick regardless.
	QuarantineAfter time.Duration
	// RemedyInterval is the remediator poll period (default 50ms).
	RemedyInterval time.Duration
	// SpareTids is how many extra scheme tids each shard keeps unleased
	// (default 2). A quarantine consumes the stalled tid until its cleanup
	// runs; spares are what let a replacement worker or staller start
	// immediately instead of waiting for that cleanup.
	SpareTids int

	// testExecHook, when set, runs at the top of every data-path exec with
	// the request's op and key. Tests use it to inject faults (panics,
	// delays) inside a worker; it is deliberately unexported.
	testExecHook func(op Op, key uint64)
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.Structure == "" {
		c.Structure = "hashmap"
	}
	if c.Scheme == "" {
		c.Scheme = "tagibr"
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.Stalled < 0 {
		c.Stalled = 0
	}
	if c.StallFor <= 0 {
		c.StallFor = 2 * time.Second
	}
	if c.SoftWatermark == 0 {
		c.SoftWatermark = 0.5
	}
	if c.HardWatermark == 0 {
		c.HardWatermark = 0.85
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = time.Second
	}
	if c.RemedyInterval <= 0 {
		c.RemedyInterval = 50 * time.Millisecond
	}
	if c.SpareTids <= 0 {
		c.SpareTids = 2
	}
	return c
}

// Resp is the engine-level result of one operation.
type Resp struct {
	Status Status
	Val    uint64
}

// request is one queued operation. done is invoked exactly once, on the
// shard worker that executed the request; it must not block (connection
// handlers guarantee buffer space via their in-flight cap). Control
// requests (op >= opCtlBase) carry a nil done.
type request struct {
	op       Op
	key, val uint64
	trace    uint64 // wire trace ID; non-zero requests record op spans
	done     func(Resp)
}

// shard is one slice of the key space: a private structure + scheme +
// lease table + worker pool. Lease-holding goroutines are the only ones
// that ever touch m, each under its leased tid, so the scheme's "one
// goroutine per tid" contract holds no matter how many connections the
// server carries — and survives workers dying and being replaced.
type shard struct {
	idx    int
	m      ds.Map
	inst   ds.Instrumented
	q      *reqQueue
	leases *leaseTable
	ops    atomic.Uint64

	// Admission control: softCap/hardCap are the watermark fractions applied
	// to the shard pool's slot capacity; resumeCap is the hysteresis floor
	// (90% of hard) below which shedding ends.
	softCap, hardCap, resumeCap int
	shedding                    atomic.Bool
	// drainGen forces retire-list scans: the remediator bumps it when the
	// soft watermark is crossed, and every worker drains once per batch in
	// which it observes a new value.
	drainGen atomic.Uint64

	// Degradation counters (Stats / /metrics).
	quarantines   atomic.Uint64 // tids quarantined (ibr_tid_quarantines_total)
	adopted       atomic.Uint64 // retired blocks adopted from quarantined tids
	shed          atomic.Uint64 // Submits refused with ErrShedding
	shedEpisodes  atomic.Uint64 // shedding activations
	poolExhausted atomic.Uint64 // Puts answered StatusBusy for pool exhaustion
	deaths        atomic.Uint64 // worker goroutines lost to panics
}

// Engine is the sharded KV engine behind the server.
type Engine struct {
	cfg        EngineConfig
	shards     []*shard
	tids       int        // scheme tids per shard: workers + stallers + spares
	obs        *EngineObs // nil when cfg.Obs is nil
	wg         sync.WaitGroup
	stallStop  chan struct{} // nil unless cfg.Stalled > 0
	stallWG    sync.WaitGroup
	remedyStop chan struct{}
	remedyDone chan struct{}
	closeOnce  sync.Once
}

// NewEngine builds the shards and starts every worker, staller, and the
// remediator. The workers idle on their queues until Submit feeds them;
// Close stops them.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	cfg = cfg.withDefaults()
	if !ds.SchemeSupports(cfg.Scheme, cfg.Structure) {
		return nil, fmt.Errorf("server: scheme %q cannot run structure %q", cfg.Scheme, cfg.Structure)
	}
	if cfg.SoftWatermark <= 0 || cfg.SoftWatermark >= cfg.HardWatermark || cfg.HardWatermark > 1 {
		return nil, fmt.Errorf("server: watermarks must satisfy 0 < soft < hard <= 1, got soft=%v hard=%v",
			cfg.SoftWatermark, cfg.HardWatermark)
	}
	e := &Engine{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	// The scheme (and the observer's ring layout) is sized for every tid a
	// shard can ever lease: workers, injected stallers, and the spares that
	// replacement workers draw from after a quarantine.
	e.tids = cfg.WorkersPerShard + cfg.Stalled + cfg.SpareTids
	if cfg.Obs != nil {
		e.obs = newEngineObs(*cfg.Obs, cfg.Shards, e.tids)
	}
	for i := range e.shards {
		m, err := ds.NewMap(cfg.Structure, ds.Config{
			Scheme: cfg.Scheme,
			Core: core.Options{
				Threads:   e.tids,
				EpochFreq: cfg.EpochFreq,
				EmptyFreq: cfg.EmptyFreq,
				Slots:     cfg.Slots,
				Obs:       e.obs.schemeObs(i),
			},
			PoolSlots: cfg.PoolSlots,
			Buckets:   cfg.Buckets,
		})
		if err != nil {
			return nil, err
		}
		sh := &shard{
			idx:    i,
			m:      m,
			inst:   m.(ds.Instrumented),
			q:      newReqQueue(cfg.QueueDepth),
			leases: newLeaseTable(e.tids),
		}
		cap := sh.inst.PoolStats().Capacity
		sh.softCap = int(float64(cap) * cfg.SoftWatermark)
		sh.hardCap = int(float64(cap) * cfg.HardWatermark)
		sh.resumeCap = sh.hardCap * 9 / 10
		if sh.softCap < 1 {
			sh.softCap = 1
		}
		if sh.hardCap <= sh.softCap {
			sh.hardCap = sh.softCap + 1
		}
		if sh.resumeCap < sh.softCap {
			sh.resumeCap = sh.softCap
		}
		e.shards[i] = sh
	}
	e.obs.startWatchdog(e)
	for _, sh := range e.shards {
		for i := 0; i < cfg.WorkersPerShard; i++ {
			tid, gen, ok := sh.leases.acquire(roleWorker)
			if !ok { // cannot happen: table was sized for the workers
				return nil, fmt.Errorf("server: shard %d lease table exhausted at startup", sh.idx)
			}
			e.wg.Add(1)
			go e.worker(sh, tid, gen)
		}
	}
	if cfg.Stalled > 0 {
		e.stallStop = make(chan struct{})
		for _, sh := range e.shards {
			for j := 0; j < cfg.Stalled; j++ {
				e.stallWG.Add(1)
				go e.staller(sh)
			}
		}
	}
	e.remedyStop = make(chan struct{})
	e.remedyDone = make(chan struct{})
	go e.remediator()
	return e, nil
}

// staller is one injected-stall goroutine: lease a tid, publish a
// reservation, park for StallFor, withdraw, repeat. Exactly the harness's
// stalled worker, running against the serving engine — but under the lease
// protocol: it declares itself parked before blocking (it holds no node
// references, so clearing its reservation on its behalf is safe), and on
// waking it re-checks the lease. If the remediator quarantined the tid
// while it slept, it walks away without touching the scheme and leases a
// fresh tid for the next stall cycle.
func (e *Engine) staller(sh *shard) {
	defer e.stallWG.Done()
	s := sh.inst.Scheme()
	for {
		tid, gen, ok := sh.leases.acquire(roleStaller)
		if !ok {
			// Every tid is leased or awaiting cleanup; retry shortly.
			select {
			case <-e.stallStop:
				return
			case <-time.After(10 * time.Millisecond):
				continue
			}
		}
		for {
			//ibrlint:ignore quarantine: if the lease is revoked while parked, EndOp is the remediator's job (ClearReservation), not ours
			s.StartOp(tid)
			sh.leases.setParked(tid, gen, true)
			stop := false
			select {
			case <-e.stallStop:
				stop = true
			case <-time.After(e.cfg.StallFor):
			}
			if sh.leases.unpark(tid, gen) {
				s.EndOp(tid)
				if stop {
					sh.leases.release(tid, gen)
					return
				}
				continue
			}
			// Quarantined while parked: the reservation is no longer ours
			// to withdraw. Abandon the tid.
			if stop {
				return
			}
			break
		}
	}
}

// remediator is the engine's degradation-policy loop. Every RemedyInterval
// it, per shard: (1) applies the admission watermarks to the unreclaimed
// backlog — forcing scans above soft, shedding above hard; (2) scans the
// lease table for holders that are dead, or parked past QuarantineAfter
// with an unchanged heartbeat, and quarantines their tids (cleanup runs on
// a worker via a control op); (3) spawns replacement workers for
// quarantined worker tids so the shard keeps serving at full width.
func (e *Engine) remediator() {
	defer close(e.remedyDone)
	ticker := time.NewTicker(e.cfg.RemedyInterval)
	defer ticker.Stop()
	// Per-shard, per-tid staleness tracking: a park observation only ages
	// while the heartbeat stays put.
	type track struct {
		beat     uint64
		since    time.Time
		tracking bool
	}
	states := make([][]track, len(e.shards))
	snaps := make([][]leaseInfo, len(e.shards))
	deficit := make([]int, len(e.shards))
	for i := range states {
		states[i] = make([]track, e.tids)
	}
	for {
		select {
		case <-e.remedyStop:
			return
		case <-ticker.C:
		}
		now := time.Now()
		for si, sh := range e.shards {
			s := sh.inst.Scheme()

			un := core.TotalUnreclaimed(s, e.tids)
			if un >= sh.hardCap {
				if sh.shedding.CompareAndSwap(false, true) {
					sh.shedEpisodes.Add(1)
				}
			} else if sh.shedding.Load() && un < sh.resumeCap {
				sh.shedding.Store(false)
			}
			if un >= sh.softCap {
				sh.drainGen.Add(1)
				sh.q.pushControl(request{op: opCtlDrain})
				// Couple the scheme's adaptive drain to the admission signal:
				// above the soft watermark, space is the binding constraint,
				// so workers stop backing off futile scans and probe at the
				// base EmptyFreq cadence until the backlog recedes.
				core.SetDrainPressure(s, true)
			} else {
				core.SetDrainPressure(s, false)
			}

			snaps[si] = sh.leases.snapshot(snaps[si])
			for tid, info := range snaps[si] {
				tr := &states[si][tid]
				switch {
				case info.status == leaseHeld && info.dead:
					e.tryQuarantine(sh, tid, info.role, &deficit[si])
					tr.tracking = false
				case info.status == leaseHeld && info.parked:
					if !tr.tracking || tr.beat != info.beat {
						*tr = track{beat: info.beat, since: now, tracking: true}
					} else if now.Sub(tr.since) >= e.cfg.QuarantineAfter {
						e.tryQuarantine(sh, tid, info.role, &deficit[si])
						tr.tracking = false
					}
				default:
					tr.tracking = false
				}
			}

			// Replacements are spawned here — never from the cleanup op —
			// so a shard whose every worker died still recovers: the new
			// worker is what will execute the pending quarantine cleanups.
			for deficit[si] > 0 {
				tid, gen, ok := sh.leases.acquire(roleWorker)
				if !ok {
					break // no free tid until a cleanup completes; retry next tick
				}
				e.wg.Add(1)
				go e.worker(sh, tid, gen)
				deficit[si]--
			}
		}
	}
}

// tryQuarantine revokes tid's lease if the holder is still verifiably out
// of the scheme, then enqueues the cleanup control op. Worker tids add to
// the shard's replacement deficit.
func (e *Engine) tryQuarantine(sh *shard, tid int, role leaseRole, deficit *int) {
	if !sh.leases.quarantine(tid) {
		return
	}
	sh.quarantines.Add(1)
	sh.q.pushControl(request{op: opCtlQuarantine, key: uint64(tid)})
	if role == roleWorker {
		*deficit++
	}
}

// Obs returns the engine's observability state, nil when disabled.
func (e *Engine) Obs() *EngineObs { return e.obs }

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() EngineConfig { return e.cfg }

// shardFor hashes a key to its shard. The SplitMix64 finalizer decorrelates
// the shard choice from the hash map's in-shard Fibonacci bucket hash, so
// dense key ranges spread over both levels independently.
func shardFor(key uint64, n int) int {
	z := key + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int((z ^ (z >> 31)) % uint64(n))
}

// Submit enqueues one operation on its key's shard. If it returns nil,
// done will be called exactly once (on a shard worker); if it returns
// ErrClosed, ErrBusy, or ErrShedding, the operation was rejected and done
// is never called. done must not block.
func (e *Engine) Submit(op Op, key, val uint64, done func(Resp)) error {
	return e.SubmitTraced(op, key, val, 0, done)
}

// SubmitTraced is Submit carrying a causal trace ID: when observability is
// on and trace is non-zero, the worker that executes the request records an
// op span under the ID into its flight-recorder ring, so the request shows
// up on /debug/trace next to the shard's scan and block-lifecycle spans.
func (e *Engine) SubmitTraced(op Op, key, val, trace uint64, done func(Resp)) error {
	if !op.valid() {
		return fmt.Errorf("server: invalid op %d", op)
	}
	sh := e.shards[shardFor(key, len(e.shards))]
	if sh.shedding.Load() {
		sh.shed.Add(1)
		return ErrShedding
	}
	return sh.q.push(request{op: op, key: key, val: val, trace: trace, done: done})
}

// Do runs one operation synchronously; tests and simple callers.
func (e *Engine) Do(op Op, key, val uint64) (Resp, error) {
	ch := make(chan Resp, 1)
	if err := e.Submit(op, key, val, func(r Resp) { ch <- r }); err != nil {
		return Resp{}, err
	}
	return <-ch, nil
}

// maxSpillCap bounds the batch buffer a worker keeps between queue pops.
// Without it one backlog burst pins a backlog-peak-sized backing array per
// worker for the engine's lifetime; oversized buffers are dropped and the
// next pop starts from a fresh, demand-sized allocation.
const maxSpillCap = 256

// worker is one leased executor: it owns scheme tid `tid` (generation gen)
// of sh's scheme until it exits or its lease is revoked, and is — with its
// sibling lease holders — the only goroutine that ever calls into sh.m. It
// drains the shard queue in batches until the queue is closed and empty.
//
// A panic anywhere in the serving path does not take the shard down: the
// worker marks its lease dead (the remediator quarantines the tid, adopts
// its retire backlog, and spawns a replacement), answers its unfinished
// batch with StatusInternal so no client blocks, and exits.
func (e *Engine) worker(sh *shard, tid int, gen uint64) {
	defer e.wg.Done()
	var (
		batch []request
		cur   int
	)
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		sh.deaths.Add(1)
		sh.leases.markDead(tid, gen)
		fmt.Fprintf(os.Stderr, "server: shard %d worker tid %d died: %v\n%s", sh.idx, tid, p, debug.Stack())
		for ; cur < len(batch); cur++ {
			if r := &batch[cur]; r.done != nil {
				r.done(Resp{Status: StatusInternal})
			}
		}
	}()
	var spill []request
	lastDrain := sh.drainGen.Load()
	for {
		var ok bool
		batch, ok = sh.q.popAll(spill)
		if !ok {
			sh.leases.release(tid, gen)
			return
		}
		// Heartbeat: the remediator reads this to tell a busy worker from a
		// wedged one before trusting the parked flag.
		sh.leases.beat(tid)
		if g := sh.drainGen.Load(); g != lastDrain {
			lastDrain = g
			sh.inst.Scheme().Drain(tid)
		}
		for cur = 0; cur < len(batch); cur++ {
			r := &batch[cur]
			if r.op >= opCtlBase {
				e.execCtl(sh, tid, r)
				batch[cur] = request{}
				continue
			}
			var resp Resp
			if eo := e.obs; eo != nil {
				if li := latIndex(r.op); li >= 0 {
					t0 := obs.Now()
					resp = e.exec(sh, tid, r)
					d := obs.Now() - t0
					eo.opLat[li].Record(d)
					if r.trace != 0 {
						eo.opEvent(sh.idx, tid, r.trace, d)
					}
				} else {
					resp = e.exec(sh, tid, r)
				}
			} else {
				resp = e.exec(sh, tid, r)
			}
			sh.ops.Add(1)
			r.done(resp)
			batch[cur] = request{} // release the done closure promptly
		}
		spill = trimSpill(batch)
	}
}

// trimSpill recycles batch as the next pop's backing buffer, dropping it
// once a burst has grown it past maxSpillCap.
func trimSpill(batch []request) []request {
	if cap(batch) > maxSpillCap {
		return nil
	}
	return batch
}

// exec runs one request under the worker's leased tid.
func (e *Engine) exec(sh *shard, tid int, r *request) Resp {
	if h := e.cfg.testExecHook; h != nil {
		h(r.op, r.key)
	}
	switch r.op {
	case OpPing:
		return Resp{Status: StatusOK, Val: r.val}
	case OpGet:
		if r.key >= ds.KeyLimit {
			return Resp{Status: StatusBadRequest}
		}
		if v, ok := sh.m.Get(tid, r.key); ok {
			return Resp{Status: StatusOK, Val: v}
		}
		return Resp{Status: StatusNotFound}
	case OpPut:
		if r.key >= ds.KeyLimit {
			return Resp{Status: StatusBadRequest}
		}
		if sh.m.Insert(tid, r.key, r.val) {
			return Resp{Status: StatusOK, Val: r.val}
		}
		// A failed insert is ambiguous: the key may exist, or the node
		// allocation may have failed on an exhausted pool. The scheme
		// records which; exhaustion is overload, not a data answer.
		if core.AllocFailed(sh.inst.Scheme(), tid) {
			sh.poolExhausted.Add(1)
			return Resp{Status: StatusBusy}
		}
		return Resp{Status: StatusExists}
	case OpDel:
		if r.key >= ds.KeyLimit {
			return Resp{Status: StatusBadRequest}
		}
		if sh.m.Remove(tid, r.key) {
			return Resp{Status: StatusOK}
		}
		return Resp{Status: StatusNotFound}
	}
	return Resp{Status: StatusBadRequest}
}

// execCtl runs one control request under the worker's leased tid. The
// quarantine cleanup lives here — on a worker, not on the remediator — so
// the adopting tid is owned by the executing goroutine and the scheme's
// one-goroutine-per-tid contract holds throughout.
func (e *Engine) execCtl(sh *shard, tid int, r *request) {
	s := sh.inst.Scheme()
	switch r.op {
	case opCtlDrain:
		s.Drain(tid)
	case opCtlQuarantine:
		qt := int(r.key)
		// Re-verify under the lease lock: a concurrent cleanup of the same
		// tid (duplicate control op) or Close may have resolved it already.
		if !sh.leases.cleanable(qt) {
			return
		}
		// Safe: the lease table proved qt's holder parked (holding no node
		// references) or dead before revoking the lease, and revocation
		// means the holder will never act under qt again.
		//ibrlint:ignore quarantine: holder verified parked or dead via lease table before revocation
		core.ClearReservation(s, qt)
		//ibrlint:ignore quarantine: qt is revoked and this worker owns tid, the adopting side
		n := core.AdoptRetired(s, qt, tid)
		sh.adopted.Add(uint64(n))
		sh.leases.finishQuarantine(qt)
		// The adopted backlog was pinned by qt's own reservation; with that
		// cleared, one scan usually returns it to the pool wholesale.
		s.Drain(tid)
		var ep uint64
		if c, ok := s.(interface{ Clock() *epoch.Clock }); ok {
			ep = c.Clock().Now()
		}
		e.obs.quarantineEvent(sh.idx, tid, qt, ep, uint64(n))
	}
}

// Close drains the engine: new Submits fail with ErrClosed, every already
// accepted request is executed and completed, the remediator, stallers and
// workers exit, and each shard's retire lists are scanned one last time at
// quiescence. It is idempotent and safe to call concurrently with Submit.
func (e *Engine) Close() {
	// sync.Once blocks concurrent callers until the drain completes, so
	// every Close returns only once the engine is fully quiescent.
	e.closeOnce.Do(func() {
		// The remediator stops first: it is the only goroutine that spawns
		// workers, so after remedyDone the worker set can only shrink and
		// wg.Wait below cannot race a spawn.
		close(e.remedyStop)
		<-e.remedyDone
		// Withdraw injected stalls next so the final scans can reclaim.
		if e.stallStop != nil {
			close(e.stallStop)
			e.stallWG.Wait()
		}
		for _, sh := range e.shards {
			sh.q.close()
		}
		e.wg.Wait()
		for _, sh := range e.shards {
			// Quarantines whose cleanup op never ran (queue closed under
			// them, or every worker died) are resolved here, at quiescence:
			// no goroutine acts under any tid anymore, so the transfer
			// preconditions hold trivially.
			s := sh.inst.Scheme()
			for tid := 0; tid < e.tids; tid++ {
				if !sh.leases.cleanable(tid) {
					continue
				}
				//ibrlint:ignore quarantine: engine is quiescent, no goroutine owns any tid
				core.ClearReservation(s, tid)
				//ibrlint:ignore quarantine: engine is quiescent, no goroutine owns any tid
				n := core.AdoptRetired(s, tid, 0)
				sh.adopted.Add(uint64(n))
				sh.leases.finishQuarantine(tid)
			}
			core.DrainAll(s, e.tids)
		}
		e.obs.stop()
	})
}

// ShardStats is one shard's metrics snapshot.
type ShardStats struct {
	Ops         uint64 // operations completed
	QueueDepth  int    // current backlog
	Unreclaimed int    // retired-but-unreclaimed blocks (Fig. 9's metric)
	Epoch       uint64 // the shard scheme's current epoch (0 if epoch-free)
	EpochLag    uint64 // epoch - oldest reserved lower endpoint, 0 when idle
	Live        uint64 // live slots in the shard's node pool

	// Scan is the shard scheme's reclamation-scan work (zero for NoMM):
	// how often workers scanned their retire lists, how many blocks those
	// scans examined, and how many they freed.
	Scan core.ScanStats

	// Degradation policy: quarantine and admission-control activity.
	Quarantines   uint64 // tids quarantined (stalled or dead holders)
	Adopted       uint64 // retired blocks adopted from quarantined tids
	Shed          uint64 // Submits refused while above the hard watermark
	ShedEpisodes  uint64 // times shedding switched on
	PoolExhausted uint64 // Puts answered StatusBusy on pool exhaustion
	Deaths        uint64 // worker goroutines lost to panics
	Shedding      bool   // currently above the hard watermark
}

// Stats snapshots every shard. Safe to call concurrently with serving.
func (e *Engine) Stats() []ShardStats {
	out := make([]ShardStats, len(e.shards))
	for i, sh := range e.shards {
		st := ShardStats{
			Ops:           sh.ops.Load(),
			QueueDepth:    sh.q.depth(),
			Unreclaimed:   core.TotalUnreclaimed(sh.inst.Scheme(), e.tids),
			Live:          sh.inst.PoolStats().Live(),
			Quarantines:   sh.quarantines.Load(),
			Adopted:       sh.adopted.Load(),
			Shed:          sh.shed.Load(),
			ShedEpisodes:  sh.shedEpisodes.Load(),
			PoolExhausted: sh.poolExhausted.Load(),
			Deaths:        sh.deaths.Load(),
			Shedding:      sh.shedding.Load(),
		}
		s := sh.inst.Scheme()
		if sc, ok := s.(interface{ ScanStats() core.ScanStats }); ok {
			st.Scan = sc.ScanStats()
		}
		if c, ok := s.(interface{ Clock() *epoch.Clock }); ok {
			st.Epoch = c.Clock().Now()
			if r, ok := s.(interface{ Reservations() *epoch.Table }); ok {
				if lo := r.Reservations().MinLower(); lo != epoch.None && lo <= st.Epoch {
					st.EpochLag = st.Epoch - lo
				}
			}
		}
		out[i] = st
	}
	return out
}
