package server

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ibr/internal/lincheck"
)

// startTestServer brings up an engine + server on a loopback port and
// returns the address plus a shutdown func.
func startTestServer(t *testing.T, cfg EngineConfig, scfg ServerConfig) (string, *Server) {
	t.Helper()
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng, scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-serveDone; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ln.Addr().String(), srv
}

func TestServerEndToEnd(t *testing.T) {
	addr, _ := startTestServer(t,
		EngineConfig{Shards: 4, WorkersPerShard: 2},
		ServerConfig{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if r, err := cl.Do(OpPut, 5, 55); err != nil || r.Status != StatusOK {
		t.Fatalf("Put = %v, %v", r, err)
	}
	if r, err := cl.Do(OpGet, 5, 0); err != nil || r.Status != StatusOK || r.Val != 55 {
		t.Fatalf("Get = %v, %v", r, err)
	}
	if r, err := cl.Do(OpDel, 5, 0); err != nil || r.Status != StatusOK {
		t.Fatalf("Del = %v, %v", r, err)
	}
	if r, err := cl.Do(OpGet, 5, 0); err != nil || r.Status != StatusNotFound {
		t.Fatalf("Get after Del = %v, %v", r, err)
	}
}

// TestServerLinearizable records a concurrent GET/PUT/DEL history through
// real connections and checks it with internal/lincheck: the tid-lease
// layer must not reorder, lose, or double-apply operations even though
// requests from different connections interleave in the shard queues.
func TestServerLinearizable(t *testing.T) {
	addr, _ := startTestServer(t,
		EngineConfig{Shards: 4, WorkersPerShard: 2, EpochFreq: 16, EmptyFreq: 8},
		ServerConfig{})

	const (
		clients  = 4
		opsEach  = 120
		keySpace = 48 // ~10 events/key expected; far under lincheck's 64 cap
	)
	rec := lincheck.NewRecorder(clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(tid int, cl *Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid) + 1))
			for i := 0; i < opsEach; i++ {
				key := rng.Uint64() % keySpace
				var (
					kind lincheck.Kind
					op   Op
				)
				switch rng.Intn(4) {
				case 0:
					kind, op = lincheck.Insert, OpPut
				case 1:
					kind, op = lincheck.Remove, OpDel
				default:
					kind, op = lincheck.Get, OpGet
				}
				invoke := rec.Begin()
				resp, err := cl.Do(op, key, key*10+uint64(tid))
				if err != nil {
					t.Errorf("tid %d: %v", tid, err)
					return
				}
				var ok bool
				switch resp.Status {
				case StatusOK:
					ok = true
				case StatusNotFound, StatusExists:
					ok = false
				default:
					t.Errorf("tid %d: unexpected status %v", tid, resp.Status)
					return
				}
				rec.Record(tid, kind, key, ok, invoke)
			}
		}(c, cl)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	rep := lincheck.Check(rec.Events(), func(uint64) bool { return false })
	if err := rep.Err(); err != nil {
		t.Fatalf("%v (report: %+v)", err, rep)
	}
	if rep.EventsChecked == 0 {
		t.Fatal("lincheck verified no events")
	}
	t.Logf("lincheck: %d keys, %d events checked, %d inconclusive",
		rep.Keys, rep.EventsChecked, rep.Inconclusive)
}

// TestServerGracefulShutdown races in-flight traffic against Shutdown and
// checks the drain contract from the client's side: every Do call returns
// (a response or a connection error — never a hang), the server completes
// whatever it read, and the engine refuses work afterwards. Run with -race.
func TestServerGracefulShutdown(t *testing.T) {
	addr, srv := startTestServer(t,
		EngineConfig{Shards: 2, WorkersPerShard: 2, EpochFreq: 16, EmptyFreq: 8},
		ServerConfig{MaxInflight: 32})

	const clients = 4
	var (
		responses atomic.Uint64
		connErrs  atomic.Uint64
		wg        sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(cl *Client, slot int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(slot)))
				for i := 0; ; i++ {
					op := OpPut
					if i%2 == 0 {
						op = OpDel
					}
					r, err := cl.Do(op, rng.Uint64()%128, 1)
					if err != nil {
						connErrs.Add(1)
						return
					}
					responses.Add(1)
					if r.Status == StatusShutdown {
						return
					}
				}
			}(cl, c*4+g)
		}
	}
	time.Sleep(30 * time.Millisecond) // let traffic build
	done := make(chan struct{})
	go func() { srv.Shutdown(); close(done) }()

	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("clients hung across shutdown: drain lost an in-flight op")
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return")
	}
	if responses.Load() == 0 {
		t.Fatal("no responses before shutdown — test raced to nothing")
	}
	// The engine is fully drained: new work is refused, and a second
	// shutdown is a no-op.
	if err := srv.Engine().Submit(OpPing, 0, 0, func(Resp) {}); err != ErrClosed {
		t.Fatalf("Submit after shutdown = %v, want ErrClosed", err)
	}
	srv.Shutdown()
	t.Logf("shutdown drain: %d responses delivered, %d conns ended in error", responses.Load(), connErrs.Load())
}

// TestServerRejectsGarbage checks a desynchronized stream is dropped and
// counted, and does not wedge the server for other clients.
func TestServerRejectsGarbage(t *testing.T) {
	addr, srv := startTestServer(t,
		EngineConfig{Shards: 1, WorkersPerShard: 1},
		ServerConfig{})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte("GET / HTTP/1.1\r\n\r\n")) // not our protocol
	buf := make([]byte, 64)
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("server answered a garbage stream instead of closing it")
	}
	raw.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.ProtoDropped() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dropped connection not counted")
		}
		time.Sleep(time.Millisecond)
	}
	// A desynchronized stream is a dropped connection, not a rejected frame.
	if n := srv.ProtoRejected(); n != 0 {
		t.Fatalf("ProtoRejected = %d after a garbage stream, want 0", n)
	}
	// A well-behaved client still works.
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestServerRejectsBadOp checks the other half of the protocol-error split:
// a well-framed request with an unknown op code is answered with
// StatusBadRequest on a connection that stays fully usable, and lands in
// ProtoRejected — not ProtoDropped.
func TestServerRejectsBadOp(t *testing.T) {
	addr, srv := startTestServer(t,
		EngineConfig{Shards: 1, WorkersPerShard: 1},
		ServerConfig{})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetDeadline(time.Now().Add(5 * time.Second))

	frame := appendRequest(nil, 7, Request{Op: Op(99), Key: 1, Val: 2})
	frame = appendRequest(frame, 8, Request{Op: OpPing, Val: 42}) // valid op on the same conn
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(raw)
	got := map[uint32]Status{}
	for i := 0; i < 2; i++ {
		payload, err := readFrame(br, maxRespFrame, nil)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		id, resp, perr := parseResponse(payload)
		if perr != nil {
			t.Fatalf("response %d: %v", i, perr)
		}
		got[id] = resp.Status
	}
	if got[7] != StatusBadRequest {
		t.Fatalf("bad-op response = %v, want BAD_REQUEST", got[7])
	}
	if got[8] != StatusOK {
		t.Fatalf("ping after bad op = %v, want OK (connection must survive)", got[8])
	}
	if n := srv.ProtoRejected(); n != 1 {
		t.Fatalf("ProtoRejected = %d, want 1", n)
	}
	if n := srv.ProtoDropped(); n != 0 {
		t.Fatalf("ProtoDropped = %d, want 0 (the connection was never dropped)", n)
	}
	if sum := srv.ProtoErrors(); sum != 1 {
		t.Fatalf("ProtoErrors = %d, want the split counters' sum 1", sum)
	}
}

// TestClientIDWrapSkipsPending pins the id-assignment bug: after nextID
// wraps uint32, the counter can land on an id whose request is still in
// flight; reusing it would overwrite that caller's channel in pending and
// strand it forever. Do must probe past pending ids instead.
func TestClientIDWrapSkipsPending(t *testing.T) {
	addr, _ := startTestServer(t,
		EngineConfig{Shards: 1, WorkersPerShard: 1},
		ServerConfig{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Simulate the post-wrap collision: park a fake in-flight request on the
	// exact id the counter will hand out next.
	stranded := make(chan result, 1)
	cl.pmu.Lock()
	cl.nextID = 5
	cl.pending[5] = stranded
	cl.pmu.Unlock()

	for i := 0; i < 3; i++ {
		if err := cl.Ping(); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}

	cl.pmu.Lock()
	ch, still := cl.pending[5]
	next := cl.nextID
	cl.pmu.Unlock()
	if !still || ch != stranded {
		t.Fatal("pending id 5 was overwritten by a wrapped id assignment")
	}
	if len(stranded) != 0 {
		t.Fatal("stranded channel received a response routed to the wrong caller")
	}
	if next != 9 { // 5 skipped; pings took 6, 7, 8
		t.Fatalf("nextID = %d, want 9 (id 5 skipped, three pings issued)", next)
	}

	// The literal wrap: the counter rolls through MaxUint32 to 0 without
	// colliding or losing responses.
	cl.pmu.Lock()
	cl.nextID = ^uint32(0)
	cl.pmu.Unlock()
	for i := 0; i < 3; i++ {
		if err := cl.Ping(); err != nil {
			t.Fatalf("post-wrap ping %d: %v", i, err)
		}
	}
	cl.pmu.Lock()
	delete(cl.pending, 5)
	cl.pmu.Unlock()
}

// TestServerPipelining issues a burst of concurrent requests over one
// connection and checks ids match values back correctly.
func TestServerPipelining(t *testing.T) {
	addr, _ := startTestServer(t,
		EngineConfig{Shards: 2, WorkersPerShard: 2},
		ServerConfig{MaxInflight: 64})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				key := uint64(g*16 + i)
				if r, err := cl.Do(OpPut, key, key+1000); err != nil || r.Status != StatusOK {
					errs <- fmt.Errorf("Put %d: %v %v", key, r, err)
					return
				}
				if r, err := cl.Do(OpGet, key, 0); err != nil || r.Val != key+1000 {
					errs <- fmt.Errorf("Get %d: %v %v", key, r, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
