package server

import (
	"strconv"

	"ibr/internal/epoch"
	"ibr/internal/obs"
)

// Latency histogram slots, one per data-path op. Ping is excluded: it never
// touches a shard structure, so it would only dilute the distributions.
const (
	latGet = iota
	latPut
	latDel
	latRange
	latKinds
)

// latNames are the `op` label values of ibr_op_latency_ns. The range slot
// measures one shard LEG's scan (the span a reservation is actually held),
// not the merged client-visible latency — that is the load generator's to
// report.
var latNames = [latKinds]string{"get", "put", "del", "range"}

// latIndex maps a wire op to its latency slot (-1 for ops not measured).
// OpRange is absent deliberately: its legs are timed in execRange, not by
// the worker's generic path.
func latIndex(op Op) int {
	switch op {
	case OpGet:
		return latGet
	case OpPut:
		return latPut
	case OpDel:
		return latDel
	}
	return -1
}

// EngineObs is the engine-wide observability state: one flight-recorder ring
// per worker (plus a system ring the watchdog writes stall events to), a
// per-shard retire→free age histogram, engine-wide scan and latency
// histograms, and the stall watchdog. Built by NewEngine when
// EngineConfig.Obs is set; all methods are safe on a nil receiver, so the
// serving path carries at most one pointer test when observability is off.
type EngineObs struct {
	opts         obs.Options
	rec          *obs.Recorder
	tidsPerShard int              // ring-index stride: shard i, tid t → ring i*tidsPerShard+t
	scheme       []*obs.SchemeObs // per shard
	retireAge    []*obs.Hist      // per shard
	scanDur      *obs.Hist
	freeBatch    *obs.Hist
	phases       *obs.ScanPhases // scan-phase breakdown, shared across shards
	opLat        [latKinds]*obs.Hist
	rangeLen     *obs.Hist // merged result sizes of completed Ranges
	watchdog     *obs.Watchdog
}

// newEngineObs sizes the recorder for shards×workers scheme rings plus one
// trailing system ring and builds the histogram registry. The watchdog is
// attached later (startWatchdog) once the shards exist.
func newEngineObs(o obs.Options, shards, workers int) *EngineObs {
	o = o.WithDefaults()
	eo := &EngineObs{
		opts:         o,
		rec:          obs.NewRecorder(shards*workers+1, o.RingSize),
		tidsPerShard: workers,
		scheme:       make([]*obs.SchemeObs, shards),
		retireAge:    make([]*obs.Hist, shards),
		scanDur:      &obs.Hist{},
		freeBatch:    &obs.Hist{},
		phases:       &obs.ScanPhases{},
		rangeLen:     &obs.Hist{},
	}
	for i := range eo.opLat {
		eo.opLat[i] = &obs.Hist{}
	}
	for i := 0; i < shards; i++ {
		eo.retireAge[i] = &obs.Hist{}
		eo.scheme[i] = obs.NewSchemeObs(obs.SchemeObsConfig{
			Threads:     workers,
			Recorder:    eo.rec,
			RingBase:    i * workers,
			RetireAge:   eo.retireAge[i],
			ScanDur:     eo.scanDur,
			FreeBatch:   eo.freeBatch,
			SampleEvery: o.SampleEvery,
			TraceEvery:  o.TraceEvery,
			Phases:      eo.phases,
		})
	}
	return eo
}

// schemeObs returns shard i's scheme observer (nil when observability is
// off, which core treats as disabled hooks).
func (eo *EngineObs) schemeObs(i int) *obs.SchemeObs {
	if eo == nil {
		return nil
	}
	return eo.scheme[i]
}

// startWatchdog builds stall sources from every shard scheme that exposes an
// epoch clock and a reservation table (the epoch-based schemes; HP and NoMM
// have no interval reservations to go stale) and starts polling. The system
// ring — the recorder's last — takes the stall events.
func (eo *EngineObs) startWatchdog(e *Engine) {
	if eo == nil {
		return
	}
	var sources []obs.Source
	for i, sh := range e.shards {
		s := sh.inst.Scheme()
		c, ok := s.(interface{ Clock() *epoch.Clock })
		if !ok {
			continue
		}
		r, ok := s.(interface{ Reservations() *epoch.Table })
		if !ok {
			continue
		}
		clock, table := c.Clock(), r.Reservations()
		sources = append(sources, obs.Source{
			Label: "shard" + strconv.Itoa(i),
			Epoch: clock.Now,
			Lowers: func(buf []uint64) []uint64 {
				for slot := 0; slot < table.Len(); slot++ {
					buf = append(buf, table.At(slot).Lower())
				}
				return buf
			},
		})
	}
	if len(sources) == 0 {
		return
	}
	eo.watchdog = obs.NewWatchdog(sources, eo.opts.StallThreshold, eo.opts.WatchInterval, eo.rec, eo.rec.Rings()-1)
	eo.watchdog.Start()
}

// quarantineEvent records a tid quarantine into the executing worker's own
// ring — the recorder is single-writer per ring, and the worker running the
// cleanup control op already owns ring shard*tidsPerShard+workerTid.
func (eo *EngineObs) quarantineEvent(shard, workerTid, quarantinedTid int, epoch, adopted uint64) {
	if eo == nil {
		return
	}
	eo.rec.Record(shard*eo.tidsPerShard+workerTid, obs.KindQuarantine, quarantinedTid, epoch, adopted)
}

// opEvent records a traced request's execution into the executing worker's
// own ring (single-writer, like quarantineEvent), joining the wire trace ID
// to the shard's reclamation timeline.
func (eo *EngineObs) opEvent(shard, workerTid int, trace, durNs uint64) {
	if eo == nil {
		return
	}
	eo.rec.Record(shard*eo.tidsPerShard+workerTid, obs.KindOp, workerTid, durNs, trace)
}

// stop halts the watchdog (the recorder and histograms are passive).
func (eo *EngineObs) stop() {
	if eo == nil || eo.watchdog == nil {
		return
	}
	eo.watchdog.Stop()
}

// Recorder returns the flight recorder (nil when observability is off).
func (eo *EngineObs) Recorder() *obs.Recorder {
	if eo == nil {
		return nil
	}
	return eo.rec
}

// Watchdog returns the stall watchdog (nil when observability is off or no
// shard scheme exposes reservations).
func (eo *EngineObs) Watchdog() *obs.Watchdog {
	if eo == nil {
		return nil
	}
	return eo.watchdog
}

// OpLatency snapshots the latency histogram of one measured op kind
// (latGet/latPut/latDel order, matching latNames).
func (eo *EngineObs) OpLatency(i int) obs.HistSnapshot {
	if eo == nil {
		return obs.HistSnapshot{}
	}
	return eo.opLat[i].Snapshot()
}

// RangeLen snapshots the merged result-size histogram of completed Ranges.
func (eo *EngineObs) RangeLen() obs.HistSnapshot {
	if eo == nil {
		return obs.HistSnapshot{}
	}
	return eo.rangeLen.Snapshot()
}

// RetireAge snapshots shard i's retire→free age histogram (epochs).
func (eo *EngineObs) RetireAge(i int) obs.HistSnapshot {
	if eo == nil {
		return obs.HistSnapshot{}
	}
	return eo.retireAge[i].Snapshot()
}

// ScanPhase snapshots phase p of the engine-wide scan-phase timing
// breakdown (obs.Phase* order, matching obs.PhaseNames).
func (eo *EngineObs) ScanPhase(p int) obs.HistSnapshot {
	if eo == nil {
		return obs.HistSnapshot{}
	}
	return eo.phases[p].Snapshot()
}

// PinnedBlame returns shard i's pinned-memory blame attribution, most
// pinned first (empty when observability is off).
func (eo *EngineObs) PinnedBlame(i int) []obs.PinStat {
	if eo == nil {
		return nil
	}
	return eo.scheme[i].PinnedBlame()
}

// Shards returns the number of shard observers (0 when observability is
// off); the per-shard accessors accept indices below it.
func (eo *EngineObs) Shards() int {
	if eo == nil {
		return 0
	}
	return len(eo.scheme)
}
