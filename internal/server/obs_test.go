package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ibr/internal/obs"
)

// TestEngineObsConcurrentScrape is the live-telemetry race test: a loaded
// engine is scraped (/metrics encoding and a flight-recorder JSONL dump)
// concurrently with the serving workers. Run with -race — the scrape paths
// must never synchronize with, pause, or corrupt the hot path.
func TestEngineObsConcurrentScrape(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Shards: 2, WorkersPerShard: 2, QueueDepth: 1024,
		EpochFreq: 8, EmptyFreq: 8,
		Obs: &obs.Options{SampleEvery: 1, WatchInterval: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	metrics := MetricsHandler(eng, nil)
	flight := FlightRecorderHandler(eng)

	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := httptest.NewRecorder()
			metrics.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			if got := rec.Header().Get("Content-Type"); got != obs.ContentType {
				t.Errorf("metrics Content-Type = %q", got)
				return
			}
			rec = httptest.NewRecorder()
			flight.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flightrecorder", nil))
			if rec.Code != 200 {
				t.Errorf("flight recorder status = %d", rec.Code)
				return
			}
		}
	}()

	const producers = 4
	var loadWG sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		loadWG.Add(1)
		go func(pr int) {
			defer loadWG.Done()
			n := 8000
			if testing.Short() {
				n = 1500
			}
			for i := 0; i < n; i++ {
				key := uint64(pr*1000 + i%512)
				eng.Do(OpPut, key, key)
				eng.Do(OpGet, key, 0)
				eng.Do(OpDel, key, 0)
			}
		}(pr)
	}
	loadWG.Wait()
	close(stop)
	scrapeWG.Wait()

	// Final scrape: the series the observability layer exists for must be
	// present and, for a delete-heavy run, non-empty.
	var buf bytes.Buffer
	if err := eng.WriteMetrics(&buf, nil); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, series := range []string{
		"ibr_unreclaimed{shard=\"0\"}",
		"ibr_epoch_lag{shard=\"1\"}",
		"ibr_retire_age_bucket{shard=\"0\",scheme=\"tagibr\",le=\"+Inf\"}",
		"ibr_op_latency_ns_bucket{op=\"put\",le=\"+Inf\"}",
		"ibr_scan_duration_ns_count{scheme=\"tagibr\"}",
		"ibr_free_batch_size_sum{scheme=\"tagibr\"}",
		"ibr_pool_cache_hits_total{shard=\"0\"}",
		"ibr_stall_alerts_total",
		"ibr_flight_events_total",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics output missing %s", series)
		}
	}
	if strings.Contains(text, "ibr_retire_age_count{shard=\"0\",scheme=\"tagibr\"} 0\n") &&
		strings.Contains(text, "ibr_retire_age_count{shard=\"1\",scheme=\"tagibr\"} 0\n") {
		t.Error("no retire->free ages recorded on any shard despite a delete-heavy run")
	}
	if strings.Contains(text, "ibr_op_latency_ns_count{op=\"get\"} 0\n") {
		t.Error("no get latencies recorded")
	}

	// The JSONL dump decodes line by line: a header, then events with known
	// kinds, all while the recorder kept running.
	rec := httptest.NewRecorder()
	flight.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flightrecorder", nil))
	sc := bufio.NewScanner(rec.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if lines == 0 {
			if m["kind"] != "header" {
				t.Fatalf("first line kind = %v, want header", m["kind"])
			}
		} else if m["kind"] == "" || m["kind"] == "unknown" {
			t.Fatalf("line %d has kind %q", lines, m["kind"])
		}
		lines++
	}
	if lines < 2 {
		t.Fatalf("flight dump has %d lines; want header + events", lines)
	}

	if eng.Obs().Watchdog() == nil {
		t.Fatal("tagibr engine should have a watchdog (clock + reservations exposed)")
	}
	eng.Close()
	// After Close the watchdog is stopped; a post-shutdown scrape still works.
	buf.Reset()
	if err := eng.WriteMetrics(&buf, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEngineObsDisabled checks the nil path: no obs config, handlers still
// serve the stats-derived series, and the flight recorder 404s.
func TestEngineObsDisabled(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Shards: 1, WorkersPerShard: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.Do(OpPut, 1, 1)

	var buf bytes.Buffer
	if err := eng.WriteMetrics(&buf, nil); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "ibr_ops_total{shard=\"0\"}") {
		t.Error("stats series missing with obs disabled")
	}
	if strings.Contains(text, "ibr_retire_age") {
		t.Error("histogram series present with obs disabled")
	}

	rec := httptest.NewRecorder()
	FlightRecorderHandler(eng).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flightrecorder", nil))
	if rec.Code != 404 {
		t.Errorf("flight recorder with obs disabled: status %d, want 404", rec.Code)
	}
}
