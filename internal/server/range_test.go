package server

import (
	"bufio"
	"context"
	"net"
	"testing"
	"time"

	"ibr/internal/core"
	"ibr/internal/ds"
)

// TestEngineRangeAllSchemes drives OpRange end-to-end through the full
// scheme registry over the skiplist: the fan-out, per-shard scan legs, and
// the k-way merge must return the exact sorted interval contents no matter
// which reclamation scheme guards the traversal.
func TestEngineRangeAllSchemes(t *testing.T) {
	for _, scheme := range core.Schemes() {
		if !ds.SchemeSupports(scheme, "skiplist") {
			continue
		}
		t.Run(scheme, func(t *testing.T) {
			eng, err := NewEngine(EngineConfig{
				Structure: "skiplist", Scheme: scheme,
				Shards: 4, WorkersPerShard: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			ctx := context.Background()
			for k := uint64(0); k < 512; k++ {
				if r, err := eng.DoContext(ctx, Request{Op: OpPut, Key: k, Val: k * 3}); err != nil || r.Status != StatusOK {
					t.Fatalf("Put(%d) = %v/%v", k, r.Status, err)
				}
			}
			// Full interval: every key in [100, 299], ascending, correct values.
			r, err := eng.DoContext(ctx, Request{Op: OpRange, Key: 100, KeyHi: 299})
			if err != nil || r.Status != StatusOK {
				t.Fatalf("Range = %v/%v", r.Status, err)
			}
			if len(r.Pairs) != 200 {
				t.Fatalf("Range [100,299] returned %d pairs, want 200", len(r.Pairs))
			}
			for i, p := range r.Pairs {
				want := uint64(100 + i)
				if p.Key != want || p.Val != want*3 {
					t.Fatalf("pair %d = (%d,%d), want (%d,%d)", i, p.Key, p.Val, want, want*3)
				}
			}
			// Limited scan: exactly Limit pairs, still the smallest keys first.
			r, err = eng.DoContext(ctx, Request{Op: OpRange, Key: 100, KeyHi: 299, Limit: 25})
			if err != nil || r.Status != StatusOK || len(r.Pairs) != 25 {
				t.Fatalf("limited Range = %v/%v, %d pairs", r.Status, err, len(r.Pairs))
			}
			if r.Pairs[0].Key != 100 || r.Pairs[24].Key != 124 {
				t.Fatalf("limited Range spans [%d,%d], want [100,124]", r.Pairs[0].Key, r.Pairs[24].Key)
			}
			// Empty interval above the population: OK with no pairs.
			r, err = eng.DoContext(ctx, Request{Op: OpRange, Key: 600, KeyHi: 700})
			if err != nil || r.Status != StatusOK || len(r.Pairs) != 0 {
				t.Fatalf("empty Range = %v/%v, %d pairs", r.Status, err, len(r.Pairs))
			}
			// Malformed intervals are typed rejections, not errors.
			if r, _ := eng.DoContext(ctx, Request{Op: OpRange, Key: 10, KeyHi: 5}); r.Status != StatusBadRequest {
				t.Fatalf("inverted Range = %v, want BAD_REQUEST", r.Status)
			}
			if r, _ := eng.DoContext(ctx, Request{Op: OpRange, Key: 0, KeyHi: ds.KeyLimit}); r.Status != StatusBadRequest {
				t.Fatalf("Range to KeyLimit = %v, want BAD_REQUEST", r.Status)
			}
			// Three scans fanned out; every shard ran one leg per scan.
			var legs uint64
			for _, st := range eng.Stats() {
				legs += st.RangeOps
			}
			if legs != 3*4 {
				t.Fatalf("range legs = %d, want %d", legs, 3*4)
			}
		})
	}
}

// TestEngineRangeUnsupported: structures without ordered layout answer a
// typed status, not a protocol error, and no shard leg runs.
func TestEngineRangeUnsupported(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Structure: "hashmap", Scheme: "tagibr", Shards: 2, WorkersPerShard: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	r, err := eng.DoContext(context.Background(), Request{Op: OpRange, Key: 0, KeyHi: 10})
	if err != nil || r.Status != StatusUnsupported {
		t.Fatalf("Range on hashmap = %v/%v, want UNSUPPORTED", r.Status, err)
	}
	for i, st := range eng.Stats() {
		if st.RangeOps != 0 {
			t.Fatalf("shard %d ran %d range legs for an unsupported structure", i, st.RangeOps)
		}
	}
}

// TestEngineTTLExpiry: a TTL'd Put arms the shard's expiry wheel, the
// remediator collects the lapsed keys, and their removal retires blocks
// through the normal scheme path tagged SourceExpiry — while untimed keys
// and cancelled timers survive.
func TestEngineTTLExpiry(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Structure: "skiplist", Scheme: "tagibr",
		Shards: 2, WorkersPerShard: 1,
		RemedyInterval:    2 * time.Millisecond,
		ExpiryGranularity: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()

	// Long-fuse keys: armed but nowhere near lapsing — they pin the
	// pending gauge at a known value.
	const armed = 16
	for k := uint64(1000); k < 1000+armed; k++ {
		if r, _ := eng.DoContext(ctx, Request{Op: OpPut, Key: k, Val: k, TTL: 10 * time.Minute}); r.Status != StatusOK {
			t.Fatalf("armed Put(%d) = %v", k, r.Status)
		}
	}
	pending := 0
	for _, st := range eng.Stats() {
		pending += st.ExpiryPending
	}
	if pending != armed {
		t.Fatalf("expiry pending = %d, want %d", pending, armed)
	}

	// Short-fuse keys expire; their untimed neighbours do not.
	const n = 32
	for k := uint64(0); k < n; k++ {
		req := Request{Op: OpPut, Key: k, Val: k}
		if k%2 == 0 {
			req.TTL = 10 * time.Millisecond
		}
		if r, _ := eng.DoContext(ctx, req); r.Status != StatusOK {
			t.Fatalf("Put(%d) = %v", k, r.Status)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		gone := 0
		for k := uint64(0); k < n; k += 2 {
			if r, _ := eng.DoContext(ctx, Request{Op: OpGet, Key: k}); r.Status == StatusNotFound {
				gone++
			}
		}
		if gone == n/2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d TTL'd keys expired within the deadline", gone, n/2)
		}
		time.Sleep(2 * time.Millisecond)
	}
	for k := uint64(1); k < n; k += 2 {
		if r, _ := eng.DoContext(ctx, Request{Op: OpGet, Key: k}); r.Status != StatusOK {
			t.Fatalf("untimed key %d = %v after expiry sweep, want OK", k, r.Status)
		}
	}

	// A Del cancels the timer; the key's replacement (untimed) survives its
	// predecessor's deadline.
	if r, _ := eng.DoContext(ctx, Request{Op: OpPut, Key: 5000, Val: 1, TTL: 20 * time.Millisecond}); r.Status != StatusOK {
		t.Fatalf("Put(5000) = %v", r.Status)
	}
	if r, _ := eng.DoContext(ctx, Request{Op: OpDel, Key: 5000}); r.Status != StatusOK {
		t.Fatalf("Del(5000) = %v", r.Status)
	}
	if r, _ := eng.DoContext(ctx, Request{Op: OpPut, Key: 5000, Val: 2}); r.Status != StatusOK {
		t.Fatalf("re-Put(5000) = %v", r.Status)
	}
	time.Sleep(60 * time.Millisecond)
	if r, _ := eng.DoContext(ctx, Request{Op: OpGet, Key: 5000}); r.Status != StatusOK || r.Val != 2 {
		t.Fatalf("cancelled-timer key = %v/%d, want OK/2", r.Status, r.Val)
	}

	var expired, retiredExpiry, retiredUser uint64
	for _, st := range eng.Stats() {
		expired += st.Expired
		retiredExpiry += st.RetiredExpiry
		retiredUser += st.RetiredUser
	}
	if expired < n/2 {
		t.Fatalf("expired counter = %d, want >= %d", expired, n/2)
	}
	if retiredExpiry == 0 {
		t.Fatal("no retirements attributed to SourceExpiry")
	}
	if retiredUser == 0 {
		t.Fatal("no retirements attributed to SourceUser (the Del above retired)")
	}
}

// TestServerRangeTTLOverWire exercises the full stack — typed client, v2
// frames, range fan-out, TTL expiry — against a served engine.
func TestServerRangeTTLOverWire(t *testing.T) {
	addr, _ := startTestServer(t,
		EngineConfig{
			Structure: "skiplist", Scheme: "hyaline",
			Shards: 4, WorkersPerShard: 2,
			RemedyInterval:    2 * time.Millisecond,
			ExpiryGranularity: time.Millisecond,
		},
		ServerConfig{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	for k := uint64(0); k < 100; k++ {
		if r, err := cl.Put(ctx, k, k+7, 0); err != nil || r.Status != StatusOK {
			t.Fatalf("Put(%d) = %v/%v", k, r.Status, err)
		}
	}
	r, err := cl.Range(ctx, 10, 49, 0)
	if err != nil || r.Status != StatusOK || len(r.Pairs) != 40 {
		t.Fatalf("Range [10,49] = %v/%v, %d pairs", r.Status, err, len(r.Pairs))
	}
	for i, p := range r.Pairs {
		if want := uint64(10 + i); p.Key != want || p.Val != want+7 {
			t.Fatalf("pair %d = (%d,%d), want (%d,%d)", i, p.Key, p.Val, want, want+7)
		}
	}
	if r, err = cl.Range(ctx, 0, 99, 7); err != nil || len(r.Pairs) != 7 {
		t.Fatalf("limited Range = %v/%v, %d pairs", r.Status, err, len(r.Pairs))
	}

	// TTL over the wire: the client's Put carries the deadline; the served
	// engine expires it and subsequent reads and scans agree.
	for k := uint64(200); k < 210; k++ {
		if r, err := cl.Put(ctx, k, 1, 15*time.Millisecond); err != nil || r.Status != StatusOK {
			t.Fatalf("TTL Put(%d) = %v/%v", k, r.Status, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if r, err := cl.Get(ctx, 205); err != nil {
			t.Fatalf("Get: %v", err)
		} else if r.Status == StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("TTL'd key never expired over the wire")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if r, err = cl.Range(ctx, 200, 209, 0); err != nil || r.Status != StatusOK {
		t.Fatalf("post-expiry Range = %v/%v", r.Status, err)
	}
	for _, p := range r.Pairs {
		if r2, _ := cl.Get(ctx, p.Key); r2.Status == StatusNotFound {
			t.Fatalf("Range returned key %d that Get says is expired", p.Key)
		}
	}
}

// TestServerV1CompatOverWire: a legacy 29-byte v1 frame (no KeyHi, TTL, or
// Limit) still round-trips against the v2 server — the length prefix is the
// version discriminator — AND the responses come back in the legacy
// 13-byte layout. The reader below is a faithful v1 client: it bounds
// announced response lengths at respPayloadV1Len, so any v2-encoded answer
// fails the test immediately.
func TestServerV1CompatOverWire(t *testing.T) {
	addr, _ := startTestServer(t,
		EngineConfig{Shards: 2, WorkersPerShard: 1}, ServerConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	roundTrip := func(id uint32, op Op, key, val uint64) Response {
		t.Helper()
		if _, err := conn.Write(appendRequestV1(nil, id, op, key, val, 0)); err != nil {
			t.Fatal(err)
		}
		frame, err := readFrame(br, respPayloadV1Len, nil)
		if err != nil {
			t.Fatalf("v1-bounded readFrame: %v", err)
		}
		gotID, resp, err := parseResponseV1(frame)
		if err != nil {
			t.Fatal(err)
		}
		if gotID != id {
			t.Fatalf("response id %d, want %d", gotID, id)
		}
		return resp
	}

	if r := roundTrip(1, OpPut, 42, 4242); r.Status != StatusOK {
		t.Fatalf("v1 Put = %v", r.Status)
	}
	if r := roundTrip(2, OpGet, 42, 0); r.Status != StatusOK || r.Val != 4242 {
		t.Fatalf("v1 Get = %v/%d, want OK/4242", r.Status, r.Val)
	}
	if r := roundTrip(3, OpDel, 42, 0); r.Status != StatusOK {
		t.Fatalf("v1 Del = %v", r.Status)
	}
	if r := roundTrip(4, OpGet, 42, 0); r.Status != StatusNotFound {
		t.Fatalf("v1 Get after Del = %v, want NOT_FOUND", r.Status)
	}
	// Op 5 (RANGE) does not exist in the v1 dialect and its result could
	// not be framed in 13 bytes anyway: the server must reject it, not
	// answer with pairs.
	if r := roundTrip(5, OpRange, 0, 0); r.Status != StatusBadRequest {
		t.Fatalf("v1-framed RANGE = %v, want BAD_REQUEST", r.Status)
	}
	// The connection survives the rejection.
	if r := roundTrip(6, OpPing, 0, 7); r.Status != StatusOK || r.Val != 7 {
		t.Fatalf("Ping after rejected RANGE = %v/%d, want OK/7", r.Status, r.Val)
	}
}

// TestServerMixedVersionsOneConn pins per-request dialect selection: v1 and
// v2 frames interleaved on one connection each get answers in their own
// framing.
func TestServerMixedVersionsOneConn(t *testing.T) {
	addr, _ := startTestServer(t,
		EngineConfig{Shards: 2, WorkersPerShard: 1}, ServerConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	// v2 Put, then v1 Get of the same key, then v2 Get: one at a time so
	// the response order is deterministic.
	if _, err := conn.Write(appendRequest(nil, 1, Request{Op: OpPut, Key: 9, Val: 90})); err != nil {
		t.Fatal(err)
	}
	frame, err := readFrame(br, maxRespFrame, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id, r, err := parseResponse(frame); err != nil || id != 1 || r.Status != StatusOK {
		t.Fatalf("v2 Put = id %d %+v err %v", id, r, err)
	}
	if _, err := conn.Write(appendRequestV1(nil, 2, OpGet, 9, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if frame, err = readFrame(br, respPayloadV1Len, nil); err != nil {
		t.Fatalf("v1 response after v2 traffic: %v", err)
	}
	if id, r, err := parseResponseV1(frame); err != nil || id != 2 || r.Status != StatusOK || r.Val != 90 {
		t.Fatalf("v1 Get = id %d %+v err %v, want OK/90", id, r, err)
	}
	if _, err := conn.Write(appendRequest(nil, 3, Request{Op: OpGet, Key: 9})); err != nil {
		t.Fatal(err)
	}
	if frame, err = readFrame(br, maxRespFrame, nil); err != nil {
		t.Fatal(err)
	}
	if id, r, err := parseResponse(frame); err != nil || id != 3 || r.Status != StatusOK || r.Val != 90 {
		t.Fatalf("v2 Get = id %d %+v err %v, want OK/90", id, r, err)
	}
}
