package obs

// Perfetto / chrome://tracing export of the flight recorder: WriteTrace
// renders a snapshot of events into the Trace Event Format's JSON flavor
// (the `traceEvents` array both https://ui.perfetto.dev and chrome://tracing
// load directly).
//
// The trace uses two synthetic processes:
//
//   - pid 1 "rings": one thread track per recorder ring. Scans and traced
//     ops become complete ("X") slices, stalls/quarantines/bucket skips
//     become instants, and epoch advances / retire backlogs become counter
//     tracks — the shard-side timeline.
//   - pid 2 "blocks": one thread track per traced pool slot. The per-slot
//     lifecycle state machine stitches block_* events into a "live" slice
//     (alloc→retire) and a "retired" slice (retire→free), with publish and
//     kept instants on top — the block-side timeline. A lifecycle still
//     open when the snapshot ends (e.g. a block a stalled reservation
//     pins) renders as a slice extended to the last event timestamp with
//     args.truncated=true, so pinned memory is visible rather than absent.
//
// Slot reuse is handled by flushing the previous lifecycle whenever a new
// block_alloc arrives for a slot that already has one open; ring
// wraparound simply drops legs (a span missing its alloc still renders its
// retire→free slice).

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Synthetic process ids of the emitted trace.
const (
	tracePidRings  = 1
	tracePidBlocks = 2
)

// traceEvent is one entry of the traceEvents array.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds since process start
	Dur   *float64       `json:"dur,omitempty"` // microseconds, complete events only
	Pid   int            `json:"pid"`
	Tid   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope
	Args  map[string]any `json:"args,omitempty"`
}

// blockLife is the per-slot lifecycle state machine.
type blockLife struct {
	haveAlloc   bool
	allocTS     uint64
	birth       uint64
	havePublish bool
	haveRetire  bool
	retireTS    uint64
	retireEpoch uint64
}

// WriteTrace encodes events (sorted in place by timestamp) as a Perfetto /
// chrome://tracing JSON document.
func WriteTrace(w io.Writer, events []Event) error {
	sort.Slice(events, func(i, j int) bool { return events[i].TS < events[j].TS })

	var (
		out    []traceEvent
		lives  = map[uint64]*blockLife{}
		rings  = map[int]bool{}
		slots  = map[uint64]bool{}
		lastTS uint64
	)
	us := func(ts uint64) float64 { return float64(ts) / 1e3 }
	durp := func(a, b uint64) *float64 { // [a,b] as a duration pointer
		d := us(b) - us(a)
		return &d
	}
	slice := func(pid int, tid uint64, name string, from, to uint64, args map[string]any) {
		out = append(out, traceEvent{Name: name, Ph: "X", TS: us(from), Dur: durp(from, to), Pid: pid, Tid: tid, Args: args})
	}
	instant := func(pid int, tid uint64, name string, ts uint64, args map[string]any) {
		out = append(out, traceEvent{Name: name, Ph: "i", TS: us(ts), Pid: pid, Tid: tid, Scope: "t", Args: args})
	}
	counter := func(tid uint64, name string, ts uint64, v uint64) {
		out = append(out, traceEvent{Name: name, Ph: "C", TS: us(ts), Pid: tracePidRings, Tid: tid, Args: map[string]any{"value": v}})
	}
	// flushOpen renders whatever legs of a still-open lifecycle exist,
	// extended to endTS and marked truncated.
	flushOpen := func(slot uint64, l *blockLife, endTS uint64) {
		if l.haveAlloc {
			to := endTS
			args := map[string]any{"birth": l.birth, "truncated": true}
			if l.haveRetire {
				to = l.retireTS
				delete(args, "truncated")
			}
			slice(tracePidBlocks, slot, "live", l.allocTS, to, args)
		}
		if l.haveRetire {
			slice(tracePidBlocks, slot, "retired", l.retireTS, endTS,
				map[string]any{"retire_epoch": l.retireEpoch, "truncated": true})
		}
	}

	for i := range events {
		ev := &events[i]
		if ev.TS > lastTS {
			lastTS = ev.TS
		}
		switch ev.Kind {
		case KindBlockAlloc, KindBlockPublish, KindBlockRetire, KindBlockKept, KindBlockFree:
			slots[ev.Value] = true
		default:
			rings[ev.Ring] = true
		}
		switch ev.Kind {
		case KindBlockAlloc:
			if l := lives[ev.Value]; l != nil {
				// Slot reused: the previous lifecycle ended (its free was
				// lost to ring wraparound) — flush it before starting over.
				flushOpen(ev.Value, l, ev.TS)
			}
			lives[ev.Value] = &blockLife{haveAlloc: true, allocTS: ev.TS, birth: ev.Epoch}
		case KindBlockPublish:
			l := lives[ev.Value]
			if l == nil {
				l = &blockLife{}
				lives[ev.Value] = l
			}
			if !l.havePublish {
				l.havePublish = true
				instant(tracePidBlocks, ev.Value, "publish", ev.TS, nil)
			}
		case KindBlockRetire:
			l := lives[ev.Value]
			if l == nil {
				l = &blockLife{}
				lives[ev.Value] = l
			}
			if !l.haveRetire {
				l.haveRetire = true
				l.retireTS = ev.TS
				l.retireEpoch = ev.Epoch
			}
		case KindBlockKept:
			instant(tracePidBlocks, ev.Value, "kept", ev.TS,
				map[string]any{"witness_tid": int64(ev.Epoch)})
		case KindBlockFree:
			if l := lives[ev.Value]; l != nil {
				if l.haveAlloc && l.haveRetire {
					slice(tracePidBlocks, ev.Value, "live", l.allocTS, l.retireTS,
						map[string]any{"birth": l.birth})
				}
				if l.haveRetire {
					slice(tracePidBlocks, ev.Value, "retired", l.retireTS, ev.TS,
						map[string]any{"retire_epoch": l.retireEpoch, "age_epochs": ev.Epoch})
				} else {
					instant(tracePidBlocks, ev.Value, "freed", ev.TS,
						map[string]any{"age_epochs": ev.Epoch})
				}
				delete(lives, ev.Value)
			} else {
				instant(tracePidBlocks, ev.Value, "freed", ev.TS,
					map[string]any{"age_epochs": ev.Epoch})
			}
		case KindScanEnd:
			from := ev.TS
			if ev.Value < from {
				from = ev.TS - ev.Value
			}
			slice(tracePidRings, uint64(ev.Ring), "scan", from, ev.TS,
				map[string]any{"examined": ev.Epoch})
		case KindOp:
			from := ev.TS
			if ev.Epoch < from {
				from = ev.TS - ev.Epoch
			}
			slice(tracePidRings, uint64(ev.Ring), "op", from, ev.TS,
				map[string]any{"trace_id": fmt.Sprintf("0x%016x", ev.Value)})
		case KindFreeBatch:
			instant(tracePidRings, uint64(ev.Ring), "free_batch", ev.TS,
				map[string]any{"freed": ev.Value})
		case KindStall:
			instant(tracePidRings, uint64(ev.Ring), "stall", ev.TS,
				map[string]any{"tid": ev.Tid, "stale_lower": ev.Value})
		case KindQuarantine:
			instant(tracePidRings, uint64(ev.Ring), "quarantine", ev.TS,
				map[string]any{"tid": ev.Tid, "adopted": ev.Value})
		case KindBucketSkip:
			instant(tracePidRings, uint64(ev.Ring), "bucket_skip", ev.TS,
				map[string]any{"birth_lo": ev.Epoch, "birth_hi": ev.Value})
		case KindEpochAdvance:
			counter(uint64(ev.Ring), "epoch", ev.TS, ev.Epoch)
		case KindRetire:
			counter(uint64(ev.Ring), "retired_backlog", ev.TS, ev.Value)
		}
	}
	for slot, l := range lives {
		flushOpen(slot, l, lastTS)
	}

	// Track naming metadata: one per process, one per used track.
	meta := func(pid int, tid uint64, key, name string) {
		out = append(out, traceEvent{Name: key, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name}})
	}
	meta(tracePidRings, 0, "process_name", "rings")
	meta(tracePidBlocks, 0, "process_name", "blocks")
	for r := range rings {
		meta(tracePidRings, uint64(r), "thread_name", fmt.Sprintf("ring %d", r))
	}
	for s := range slots {
		meta(tracePidBlocks, s, "thread_name", fmt.Sprintf("slot %d", s))
	}

	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{out, "ns"}
	return json.NewEncoder(w).Encode(&doc)
}

// WriteTraceJSON snapshots the recorder and writes the snapshot in the
// Perfetto / chrome://tracing JSON form.
func (r *Recorder) WriteTraceJSON(w io.Writer) error {
	return WriteTrace(w, r.Snapshot())
}
