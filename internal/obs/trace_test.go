package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// traceDoc mirrors the emitted Perfetto JSON for decoding in tests.
type traceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  *float64       `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  uint64         `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestTraceSamplingDeterministic checks the slot-index mask: a slot is
// always traced or never, with TraceEvery rounded up to a power of two.
func TestTraceSamplingDeterministic(t *testing.T) {
	rec := NewRecorder(1, 64)
	o := NewSchemeObs(SchemeObsConfig{Threads: 1, Recorder: rec, TraceEvery: 48}) // rounds to 64

	o.BlockAlloc(0, 3, 1)
	o.BlockAlloc(0, 48, 1)
	o.BlockAlloc(0, 65, 1)
	o.BlockRetire(0, 3, 5)
	o.BlockFree(0, 3, 1)
	if n := len(rec.Snapshot()); n != 0 {
		t.Fatalf("sampled-out slots recorded %d events, want 0", n)
	}

	o.BlockAlloc(0, 0, 1)
	o.BlockAlloc(0, 64, 2)
	o.BlockRetire(0, 128, 5)
	if n := len(rec.Snapshot()); n != 3 {
		t.Fatalf("slot ≡ 0 (mod 64) events recorded = %d, want 3", n)
	}
}

// TestWriteTraceGolden drives one full lifecycle, one sampled-out slot, and
// one pinned (never-freed) slot through a SchemeObs and checks the encoded
// Perfetto document: the complete span renders live+retired without a
// truncated mark, the pinned one is extended and marked truncated, and the
// sampled-out slot is entirely absent.
func TestWriteTraceGolden(t *testing.T) {
	rec := NewRecorder(1, 64)
	o := NewSchemeObs(SchemeObsConfig{Threads: 1, Recorder: rec, TraceEvery: 4})

	// Slot 0: complete alloc→publish→retire→kept→freed lifecycle.
	o.BlockAlloc(0, 0, 5)
	o.BlockPublish(0, 0)
	o.BlockRetire(0, 0, 9)
	o.BlockKept(0, 0, 2)
	o.BlockFree(0, 0, 3)
	// Slot 3: not selected by the mask — must not appear at all.
	o.BlockAlloc(0, 3, 5)
	o.BlockRetire(0, 3, 9)
	o.BlockFree(0, 3, 1)
	// Slot 4: retired but never freed (pinned at snapshot time).
	o.BlockAlloc(0, 4, 6)
	o.BlockRetire(0, 4, 9)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	var live0, retired0, kept0, live4, retired4 int
	for _, ev := range doc.TraceEvents {
		if ev.Pid != 2 {
			continue
		}
		if ev.Tid == 3 {
			t.Fatalf("sampled-out slot 3 leaked into the trace: %+v", ev)
		}
		trunc := ev.Args["truncated"] == true
		switch {
		case ev.Tid == 0 && ev.Name == "live" && ev.Ph == "X":
			live0++
			if trunc {
				t.Errorf("complete live span marked truncated: %+v", ev)
			}
		case ev.Tid == 0 && ev.Name == "retired" && ev.Ph == "X":
			retired0++
			if trunc {
				t.Errorf("complete retired span marked truncated: %+v", ev)
			}
			if ev.Args["age_epochs"] != float64(3) {
				t.Errorf("retired span age_epochs = %v, want 3", ev.Args["age_epochs"])
			}
		case ev.Tid == 0 && ev.Name == "kept":
			kept0++
			if ev.Args["witness_tid"] != float64(2) {
				t.Errorf("kept witness_tid = %v, want 2", ev.Args["witness_tid"])
			}
		case ev.Tid == 4 && ev.Name == "live" && ev.Ph == "X":
			live4++
			if trunc {
				t.Errorf("live leg with a seen retire marked truncated: %+v", ev)
			}
		case ev.Tid == 4 && ev.Name == "retired" && ev.Ph == "X":
			retired4++
			if !trunc {
				t.Errorf("pinned (never freed) retired span not marked truncated: %+v", ev)
			}
		}
	}
	if live0 != 1 || retired0 != 1 || kept0 != 1 {
		t.Errorf("slot 0 spans: live=%d retired=%d kept=%d, want 1 each", live0, retired0, kept0)
	}
	if live4 != 1 || retired4 != 1 {
		t.Errorf("slot 4 spans: live=%d retired=%d, want 1 each", live4, retired4)
	}
}

// TestWriteTraceWraparound laps a small ring mid-span so the alloc leg is
// lost, and checks the encoder still renders the surviving retire→free leg
// instead of dropping or corrupting the span.
func TestWriteTraceWraparound(t *testing.T) {
	rec := NewRecorder(1, 8)
	o := NewSchemeObs(SchemeObsConfig{Threads: 1, Recorder: rec, TraceEvery: 1})

	o.BlockAlloc(0, 7, 1)
	for i := 0; i < 8; i++ { // overwrite the alloc
		o.EpochAdvance(0, uint64(i))
	}
	o.BlockRetire(0, 7, 4)
	o.BlockFree(0, 7, 2)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var live, retired int
	for _, ev := range doc.TraceEvents {
		if ev.Pid != 2 || ev.Tid != 7 {
			continue
		}
		switch ev.Name {
		case "live":
			live++
		case "retired":
			retired++
			if ev.Args["truncated"] == true {
				t.Errorf("retired leg with a seen free marked truncated: %+v", ev)
			}
		}
	}
	if live != 0 {
		t.Errorf("live slices = %d, want 0 (alloc leg lost to wraparound)", live)
	}
	if retired != 1 {
		t.Errorf("retired slices = %d, want 1", retired)
	}
}

// TestPinBlame checks the blame rollup: scanners own rows, sums are read
// per witness, ages appear while a witness stays blamed and clear when its
// last scanner retracts.
func TestPinBlame(t *testing.T) {
	o := NewSchemeObs(SchemeObsConfig{Threads: 4})

	o.PinBlame(0, []uint64{0, 10, 0, 2})
	o.PinBlame(1, []uint64{0, 5, 0, 0})
	top := o.PinnedBlame()
	if len(top) != 2 || top[0].Tid != 1 || top[0].Blocks != 15 || top[1].Tid != 3 || top[1].Blocks != 2 {
		t.Fatalf("PinnedBlame = %+v, want tid1=15 then tid3=2", top)
	}
	time.Sleep(2 * time.Millisecond)
	if top = o.PinnedBlame(); top[0].Age <= 0 {
		t.Errorf("blamed tid has no age: %+v", top[0])
	}

	// Retract: both scanners now blame nobody; the table empties and the
	// pin-since stamps reset.
	o.PinBlame(0, nil)
	o.PinBlame(1, nil)
	if top = o.PinnedBlame(); len(top) != 0 {
		t.Fatalf("PinnedBlame after retraction = %+v, want empty", top)
	}
	o.PinBlame(0, []uint64{0, 1, 0, 0})
	if top = o.PinnedBlame(); len(top) != 1 || top[0].Age > time.Second {
		t.Errorf("re-blamed tid kept a stale age: %+v", top)
	}
}
