package obs

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the number of log2 buckets: bucket i counts values v with
// 2^i <= v < 2^(i+1) (v = 0 lands in bucket 0), enough for the full uint64
// range.
const HistBuckets = 64

// Hist is a concurrent log2-bucketed histogram: the multi-writer sibling of
// harness.LatencyHist. Recording is a bit-length plus two atomic adds
// (count is derived from the buckets at snapshot time, not maintained),
// cheap enough to leave enabled in serving workers; any number of
// goroutines may Record and Snapshot concurrently. Batch producers (the
// reclamation scans) accumulate a local BucketCounts and flush it with
// AddBatch, paying the atomics per distinct bucket instead of per sample.
type Hist struct {
	buckets [HistBuckets]atomic.Uint64
	sum     atomic.Uint64
}

// BucketCounts is a local, non-atomic bucket accumulator for AddBatch.
type BucketCounts [HistBuckets]uint64

// BucketOf returns the log2 bucket index of v.
func BucketOf(v uint64) int {
	if v == 0 {
		return 0
	}
	return bits.Len64(v) - 1
}

// BucketUpper returns the exclusive upper bound of bucket i (2^(i+1)); for
// the last bucket it returns the maximum uint64.
func BucketUpper(i int) uint64 {
	if i >= HistBuckets-1 {
		return ^uint64(0)
	}
	return uint64(1) << (i + 1)
}

// Record adds one observation.
func (h *Hist) Record(v uint64) {
	h.buckets[BucketOf(v)].Add(1)
	h.sum.Add(v)
}

// AddBatch folds a locally accumulated bucket array (plus the batch's value
// sum) into the histogram, touching each non-empty bucket once.
func (h *Hist) AddBatch(counts *BucketCounts, sum uint64) {
	for i, c := range counts {
		if c != 0 {
			h.buckets[i].Add(c)
		}
	}
	if sum != 0 {
		h.sum.Add(sum)
	}
}

// Count returns the number of observations so far (a sum over buckets).
func (h *Hist) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Snapshot copies the histogram. Taken while writers run it is a slightly
// stale but internally usable view (bucket sums may trail count by the
// writes in flight).
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a Hist. Count is the sum of the
// bucket counts (recomputed at snapshot time so the buckets are always
// internally consistent for cumulative encoding).
type HistSnapshot struct {
	Buckets [HistBuckets]uint64
	Count   uint64
	Sum     uint64
}

// MaxBucket returns the index of the highest non-empty bucket (-1 if the
// snapshot is empty); the Prometheus encoder uses it to trim the tail of
// empty buckets.
func (s *HistSnapshot) MaxBucket() int {
	for i := HistBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return i
		}
	}
	return -1
}

// Quantile estimates the q-quantile (clamped to [0,1]) by linear
// interpolation inside the bucket containing rank q·count, exactly like
// harness.LatencyHist.Quantile.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var seen float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= target {
			lo := float64(uint64(1) << i)
			if i == 0 {
				lo = 0
			}
			hi := float64(BucketUpper(i))
			frac := (target - seen) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		seen += float64(c)
	}
	return float64(^uint64(0))
}

// Merge folds other into s.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
}
