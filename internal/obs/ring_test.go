package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestRingWraparound writes more events than the ring holds and checks the
// snapshot retains exactly the newest ringSize events, in order.
func TestRingWraparound(t *testing.T) {
	const size = 16
	r := NewRecorder(1, size)
	const total = 3*size + 5
	for i := 0; i < total; i++ {
		r.Record(0, KindRetire, 0, uint64(i), uint64(2*i))
	}
	if got := r.Written(); got != total {
		t.Fatalf("Written = %d, want %d", got, total)
	}
	if got := r.Dropped(); got != total-size {
		t.Fatalf("Dropped = %d, want %d", got, total-size)
	}
	evs := r.Snapshot()
	if len(evs) != size {
		t.Fatalf("snapshot has %d events, want %d", len(evs), size)
	}
	for i, ev := range evs {
		wantPos := uint64(total - size + i)
		if ev.Pos != wantPos {
			t.Errorf("event %d: pos %d, want %d", i, ev.Pos, wantPos)
		}
		if ev.Epoch != wantPos || ev.Value != 2*wantPos {
			t.Errorf("event %d: payload (%d,%d), want (%d,%d)", i, ev.Epoch, ev.Value, wantPos, 2*wantPos)
		}
		if ev.Kind != KindRetire {
			t.Errorf("event %d: kind %v, want retire", i, ev.Kind)
		}
	}
}

// TestRingSizeRounding checks the capacity rounds up to a power of two.
func TestRingSizeRounding(t *testing.T) {
	r := NewRecorder(1, 100) // → 128
	for i := 0; i < 128; i++ {
		r.Record(0, KindAlloc, 0, 0, 0)
	}
	if got := r.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d after filling a rounded-up ring, want 0", got)
	}
	r.Record(0, KindAlloc, 0, 0, 0)
	if got := r.Dropped(); got != 1 {
		t.Fatalf("Dropped = %d after one overwrite, want 1", got)
	}
}

// TestRingConcurrentSnapshot hammers every ring from its own writer while
// snapshots and JSONL dumps run; under -race this doubles as the proof the
// recorder is data-race free, and every event a snapshot does return must
// be internally consistent (epoch/value written together).
func TestRingConcurrentSnapshot(t *testing.T) {
	const writers = 4
	r := NewRecorder(writers, 64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Record(w, KindRetire, w, i, i+7)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		for _, ev := range r.Snapshot() {
			if ev.Value != ev.Epoch+7 {
				t.Errorf("torn event: epoch %d value %d", ev.Epoch, ev.Value)
			}
			if ev.Tid != ev.Ring {
				t.Errorf("event in ring %d carries tid %d", ev.Ring, ev.Tid)
			}
		}
		var buf bytes.Buffer
		if err := r.WriteJSONL(&buf); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestWriteJSONL checks the dump is valid JSONL with a header line.
func TestWriteJSONL(t *testing.T) {
	r := NewRecorder(2, 8)
	r.Record(0, KindAlloc, 0, 3, 0)
	r.Record(1, KindScanEnd, 1, 10, 1234)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not JSON: %v", len(lines), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 events", len(lines))
	}
	if lines[0]["kind"] != "header" {
		t.Errorf("first line kind = %v, want header", lines[0]["kind"])
	}
	if lines[0]["written"].(float64) != 2 {
		t.Errorf("header written = %v, want 2", lines[0]["written"])
	}
	kinds := map[string]bool{}
	for _, m := range lines[1:] {
		kinds[m["kind"].(string)] = true
	}
	if !kinds["alloc"] || !kinds["scan_end"] {
		t.Errorf("event kinds = %v, want alloc and scan_end", kinds)
	}
}
