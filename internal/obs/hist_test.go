package obs

import (
	"sync"
	"testing"
)

func TestHistBuckets(t *testing.T) {
	var h Hist
	h.Record(0) // bucket 0
	h.Record(1) // bucket 0
	h.Record(2) // bucket 1
	h.Record(3) // bucket 1
	h.Record(1024)
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if s.Sum != 1030 {
		t.Fatalf("Sum = %d, want 1030", s.Sum)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 2 || s.Buckets[10] != 1 {
		t.Fatalf("bucket layout wrong: %v", s.Buckets[:12])
	}
	if got := s.MaxBucket(); got != 10 {
		t.Fatalf("MaxBucket = %d, want 10", got)
	}
}

func TestHistQuantileMonotone(t *testing.T) {
	var h Hist
	for i := uint64(1); i <= 1000; i++ {
		h.Record(i)
	}
	s := h.Snapshot()
	prev := -1.0
	for _, q := range []float64{-1, 0, 0.25, 0.5, 0.9, 0.99, 1, 2} {
		v := s.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%v) = %v < previous %v", q, v, prev)
		}
		prev = v
	}
	if p50 := s.Quantile(0.5); p50 < 256 || p50 > 1024 {
		t.Errorf("p50 = %v, want within the bucket holding rank 500", p50)
	}
}

func TestHistConcurrent(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	const per = 1000
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(uint64(w*per + i))
			}
		}(w)
	}
	for i := 0; i < 100; i++ {
		_ = h.Snapshot() // concurrent reads must be race-free
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8*per {
		t.Fatalf("Count = %d, want %d", s.Count, 8*per)
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	var a, b Hist
	a.Record(1)
	a.Record(100)
	b.Record(100)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 || sa.Sum != 201 {
		t.Fatalf("merged count/sum = %d/%d, want 3/201", sa.Count, sa.Sum)
	}
}
