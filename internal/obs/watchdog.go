package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Source is one reservation table the watchdog polls: a scheme instance
// (one engine shard, one benchmark scheme, ...). Epoch returns the
// scheme's current global epoch; Lowers appends the per-slot reserved
// lower endpoints (NoEpoch for idle slots) to buf and returns it. Both are
// called from the watchdog goroutine only.
type Source struct {
	Label  string
	Epoch  func() uint64
	Lowers func(buf []uint64) []uint64
}

// heldState tracks one reservation slot across ticks.
type heldState struct {
	lower   uint64
	since   uint64 // nowNanos when this lower value was first observed
	alerted bool
}

// Watchdog is the live form of the paper's stalled-thread experiment
// (§4.3.1): it polls every source's reservation table and flags any slot
// whose reservation (published by StartOp, withdrawn by EndOp) has kept the
// same lower endpoint past the threshold — the signature of a stalled or
// leaked operation pinning reclamation. Alerts are edge-triggered per stall
// episode: one alert when the threshold is crossed, re-armed when the
// reservation changes or clears. A held slot also drives the stalled-now
// gauge and the max-epoch-lag gauge, the /metrics view of Fig. 9's x-axis.
type Watchdog struct {
	sources   []Source
	threshold uint64 // ns
	interval  time.Duration
	rec       *Recorder // may be nil
	ring      int       // system ring for KindStall events

	held    [][]heldState
	scratch []uint64

	alerts     atomic.Uint64
	stalledNow atomic.Int64
	maxLag     atomic.Uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewWatchdog builds a watchdog over sources. rec/ring locate the system
// ring stall events are written to (the watchdog goroutine is that ring's
// single writer); rec may be nil. Call Start to begin polling, or drive
// Tick directly (tests).
func NewWatchdog(sources []Source, threshold, interval time.Duration, rec *Recorder, ring int) *Watchdog {
	if threshold <= 0 {
		threshold = time.Second
	}
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	w := &Watchdog{
		sources:   sources,
		threshold: uint64(threshold),
		interval:  interval,
		rec:       rec,
		ring:      ring,
		held:      make([][]heldState, len(sources)),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	return w
}

// Start launches the polling goroutine; Stop terminates it.
func (w *Watchdog) Start() {
	go func() {
		defer close(w.done)
		t := time.NewTicker(w.interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.Tick()
			}
		}
	}()
}

// Stop halts polling and waits for the goroutine to exit. Idempotent.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

// Alerts returns the total number of stall alerts raised.
func (w *Watchdog) Alerts() uint64 { return w.alerts.Load() }

// Stalled returns the number of reservations currently past the threshold.
func (w *Watchdog) Stalled() int64 { return w.stalledNow.Load() }

// MaxEpochLag returns the largest (epoch − reserved lower) observed across
// sources at the last tick, 0 when every slot is idle.
func (w *Watchdog) MaxEpochLag() uint64 { return w.maxLag.Load() }

// Tick runs one poll pass. It is called by the Start goroutine; tests may
// call it directly instead of starting the goroutine (never both at once).
func (w *Watchdog) Tick() {
	now := nowNanos()
	var stalled int64
	var maxLag uint64
	for si := range w.sources {
		src := &w.sources[si]
		epoch := src.Epoch()
		w.scratch = src.Lowers(w.scratch[:0])
		if len(w.held[si]) < len(w.scratch) {
			w.held[si] = append(w.held[si], make([]heldState, len(w.scratch)-len(w.held[si]))...)
		}
		for slot, lo := range w.scratch {
			h := &w.held[si][slot]
			if lo == NoEpoch {
				h.lower, h.alerted = NoEpoch, false
				continue
			}
			if lo != h.lower {
				// New (or renewed) reservation: restart the clock. A thread
				// making progress republishes fresh epochs, so only a truly
				// stuck StartOp keeps the same lower across ticks.
				h.lower, h.since, h.alerted = lo, now, false
			}
			if lag := epoch - lo; lo <= epoch && lag > maxLag {
				maxLag = lag
			}
			if now-h.since >= w.threshold {
				stalled++
				if !h.alerted {
					h.alerted = true
					w.alerts.Add(1)
					if w.rec != nil {
						w.rec.Record(w.ring, KindStall, slot, epoch, lo)
					}
				}
			}
		}
	}
	w.stalledNow.Store(stalled)
	w.maxLag.Store(maxLag)
}
