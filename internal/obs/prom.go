package obs

import (
	"io"
	"strconv"
	"strings"
)

// This file is a hand-rolled, dependency-free encoder for the Prometheus
// text exposition format (version 0.0.4): HELP/TYPE headers, label
// escaping, and cumulative histogram buckets. It implements exactly the
// subset the daemons need; see the format reference in the Prometheus docs.

// ContentType is the HTTP Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair.
type Label struct{ K, V string }

// PromWriter accumulates an exposition. Errors from the underlying writer
// are sticky: the first one is kept and every later call is a no-op, so
// call sites stay linear and check Err once.
type PromWriter struct {
	w   io.Writer
	buf []byte
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, buf: make([]byte, 0, 256)}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) emit() {
	if p.err == nil {
		_, p.err = p.w.Write(p.buf)
	}
	p.buf = p.buf[:0]
}

// escapeHelp escapes a HELP string (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// EscapeLabel escapes a label value (backslash, double quote, newline).
func EscapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Header emits the HELP and TYPE lines for a metric family. typ is one of
// "counter", "gauge", "histogram", "untyped".
func (p *PromWriter) Header(name, typ, help string) {
	p.buf = append(p.buf, "# HELP "...)
	p.buf = append(p.buf, name...)
	p.buf = append(p.buf, ' ')
	p.buf = append(p.buf, escapeHelp(help)...)
	p.buf = append(p.buf, "\n# TYPE "...)
	p.buf = append(p.buf, name...)
	p.buf = append(p.buf, ' ')
	p.buf = append(p.buf, typ...)
	p.buf = append(p.buf, '\n')
	p.emit()
}

func (p *PromWriter) sample(name string, labels []Label, value string) {
	p.buf = append(p.buf, name...)
	if len(labels) > 0 {
		p.buf = append(p.buf, '{')
		for i, l := range labels {
			if i > 0 {
				p.buf = append(p.buf, ',')
			}
			p.buf = append(p.buf, l.K...)
			p.buf = append(p.buf, '=', '"')
			p.buf = append(p.buf, EscapeLabel(l.V)...)
			p.buf = append(p.buf, '"')
		}
		p.buf = append(p.buf, '}')
	}
	p.buf = append(p.buf, ' ')
	p.buf = append(p.buf, value...)
	p.buf = append(p.buf, '\n')
	p.emit()
}

// Sample emits one float sample.
func (p *PromWriter) Sample(name string, labels []Label, v float64) {
	p.sample(name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}

// Uint emits one unsigned-integer sample (counters and integer gauges keep
// full 64-bit precision this way).
func (p *PromWriter) Uint(name string, labels []Label, v uint64) {
	p.sample(name, labels, strconv.FormatUint(v, 10))
}

// Int emits one signed-integer sample.
func (p *PromWriter) Int(name string, labels []Label, v int64) {
	p.sample(name, labels, strconv.FormatInt(v, 10))
}

// Histogram emits a histogram family member from a snapshot: cumulative
// <name>_bucket samples with le="2^(i+1)" upper bounds (trimmed after the
// highest non-empty bucket), the mandatory le="+Inf" bucket, and the _sum
// and _count series. labels are the member's own labels; le is appended.
// Call Header(name, "histogram", ...) once before the first member.
func (p *PromWriter) Histogram(name string, labels []Label, s HistSnapshot) {
	bl := make([]Label, len(labels)+1)
	copy(bl, labels)
	var cum uint64
	last := s.MaxBucket()
	for i := 0; i <= last; i++ {
		cum += s.Buckets[i]
		bl[len(labels)] = Label{"le", strconv.FormatUint(BucketUpper(i), 10)}
		p.sample(name+"_bucket", bl, strconv.FormatUint(cum, 10))
	}
	bl[len(labels)] = Label{"le", "+Inf"}
	p.sample(name+"_bucket", bl, strconv.FormatUint(s.Count, 10))
	p.sample(name+"_sum", labels, strconv.FormatUint(s.Sum, 10))
	p.sample(name+"_count", labels, strconv.FormatUint(s.Count, 10))
}
