package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// SchemeObs is the hook sink a reclamation scheme (internal/core) reports
// into. Every method is safe on a nil receiver — a disabled observer is a
// nil pointer, so the hooks compiled into the scheme hot paths cost one
// predictable branch when observability is off. Per-operation kinds (alloc,
// retire) are thinned by the sampling mask before touching the ring; scan-
// rate kinds are recorded unconditionally, they are orders of magnitude
// rarer.
//
// A SchemeObs serves the thread ids of exactly one scheme instance: ring
// RingBase+tid of the recorder must be written only through this observer
// by the goroutine leasing tid (the same single-writer contract the scheme
// itself imposes).
type SchemeObs struct {
	rec        *Recorder
	ringBase   int
	retireAge  *Hist
	scanDur    *Hist
	freeBatch  *Hist
	sampleMask uint64
	traceMask  uint64
	phases     *ScanPhases
	ts         []schemeThread

	// Pinned-memory blame attribution: pin[scanner][witness] is the number
	// of kept blocks scanner charged to witness's reservation at its latest
	// scan; pinSince[witness] is the timestamp the witness first became a
	// pinner (0 = not currently blamed). Scanners own their rows (plain
	// stores), readers sum columns.
	pin      [][]atomic.Uint64
	pinSince []atomic.Uint64
}

// Scan-phase indices of ScanPhases, in scan order.
const (
	PhaseSummarize = iota
	PhaseBucketDecide
	PhaseResidualSweep
	PhaseFreeBatch
	NumScanPhases
)

// PhaseNames are the `phase` label values of ibr_scan_phase_ns, indexed by
// the Phase constants.
var PhaseNames = [NumScanPhases]string{"summarize", "bucket_decide", "residual_sweep", "free_batch"}

// ScanPhases is the scan-phase timing breakdown: one nanosecond histogram
// per phase (reservation summarize, whole-bucket corner decisions, residual
// per-segment sweep, free-batch handback). The serving engine shares one
// instance across every shard's observer so /metrics exports a single
// per-phase family.
type ScanPhases [NumScanPhases]Hist

// PinStat is one reservation-holding tid's pinned-memory attribution.
type PinStat struct {
	Tid    int
	Blocks uint64        // kept blocks charged to the tid by the latest scans
	Age    time.Duration // how long the tid has been continuously blamed
}

// schemeThread is per-tid sampling state, padded so two workers' counters
// never share a cache line.
type schemeThread struct {
	_       [64]byte
	allocs  uint64
	retires uint64
	_       [64]byte
}

// SchemeObsConfig wires a SchemeObs.
type SchemeObsConfig struct {
	// Threads is the scheme's thread-id count. Required.
	Threads int
	// Recorder and RingBase place the per-tid event rings: tid writes ring
	// RingBase+tid. A nil Recorder disables ring events but keeps the
	// histograms.
	Recorder *Recorder
	RingBase int
	// RetireAge observes the retire→free age in epochs of every reclaimed
	// block (the live form of Fig. 9's unreclaimed-growth metric).
	RetireAge *Hist
	// ScanDur observes retire-list scan wall time in nanoseconds.
	ScanDur *Hist
	// FreeBatch observes blocks freed per scan (including zero-free scans).
	FreeBatch *Hist
	// SampleEvery thins alloc/retire ring events (default 64, rounded up
	// to a power of two).
	SampleEvery int
	// TraceEvery selects traced block-lifecycle spans by pool slot index:
	// slots ≡ 0 (mod TraceEvery) record span events (default 64, rounded up
	// to a power of two; 1 traces every slot).
	TraceEvery int
	// Phases, when non-nil, receives the scan-phase timing breakdown. It
	// may be shared across observers — the serving engine keeps one per
	// process.
	Phases *ScanPhases
}

// pow2AtLeast rounds n up to a power of two, defaulting non-positive n.
func pow2AtLeast(n, def int) int {
	if n <= 0 {
		n = def
	}
	if n&(n-1) != 0 {
		p := 1
		for p < n {
			p <<= 1
		}
		n = p
	}
	return n
}

// NewSchemeObs builds an observer. Histograms left nil are simply not fed.
func NewSchemeObs(cfg SchemeObsConfig) *SchemeObs {
	if cfg.Threads <= 0 {
		panic("obs: SchemeObsConfig.Threads must be positive")
	}
	se := pow2AtLeast(cfg.SampleEvery, 64)
	te := pow2AtLeast(cfg.TraceEvery, 64)
	o := &SchemeObs{
		rec:        cfg.Recorder,
		ringBase:   cfg.RingBase,
		retireAge:  cfg.RetireAge,
		scanDur:    cfg.ScanDur,
		freeBatch:  cfg.FreeBatch,
		sampleMask: uint64(se - 1),
		traceMask:  uint64(te - 1),
		phases:     cfg.Phases,
		ts:         make([]schemeThread, cfg.Threads),
		pin:        make([][]atomic.Uint64, cfg.Threads),
		pinSince:   make([]atomic.Uint64, cfg.Threads),
	}
	for i := range o.pin {
		o.pin[i] = make([]atomic.Uint64, cfg.Threads)
	}
	return o
}

// RetireAgeHist returns the retire→free age histogram (nil when unset).
func (o *SchemeObs) RetireAgeHist() *Hist {
	if o == nil {
		return nil
	}
	return o.retireAge
}

// Alloc records a block allocation (sampled). epoch is the birth epoch, 0
// for schemes that do not stamp births.
func (o *SchemeObs) Alloc(tid int, epoch uint64) {
	if o == nil {
		return
	}
	t := &o.ts[tid]
	t.allocs++
	if o.rec != nil && t.allocs&o.sampleMask == 0 {
		o.rec.Record(o.ringBase+tid, KindAlloc, tid, epoch, 0)
	}
}

// Retire records a block retirement (sampled). backlog is the retire-list
// length after the append.
func (o *SchemeObs) Retire(tid int, epoch uint64, backlog int) {
	if o == nil {
		return
	}
	t := &o.ts[tid]
	t.retires++
	if o.rec != nil && t.retires&o.sampleMask == 0 {
		o.rec.Record(o.ringBase+tid, KindRetire, tid, epoch, uint64(backlog))
	}
}

// EpochAdvance records a global-epoch bump to the new value e.
func (o *SchemeObs) EpochAdvance(tid int, e uint64) {
	if o == nil || o.rec == nil {
		return
	}
	o.rec.Record(o.ringBase+tid, KindEpochAdvance, tid, e, 0)
}

// ScanStart records the beginning of a retire-list scan and returns the
// start timestamp for the matching ScanEnd (0 when the observer is nil —
// still a valid argument to ScanEnd).
func (o *SchemeObs) ScanStart(tid int, epoch uint64) uint64 {
	if o == nil {
		return 0
	}
	if o.rec != nil {
		o.rec.Record(o.ringBase+tid, KindScanStart, tid, epoch, 0)
	}
	return nowNanos()
}

// ScanEnd records the completion of the scan started at t0: its duration
// into the scan-duration histogram and a scan_end event carrying blocks
// examined and the duration; freed goes to the free-batch histogram and,
// when non-zero, a free_batch event.
func (o *SchemeObs) ScanEnd(tid int, t0 uint64, examined, freed int) {
	if o == nil {
		return
	}
	dur := nowNanos() - t0
	if o.scanDur != nil {
		o.scanDur.Record(dur)
	}
	if o.freeBatch != nil {
		o.freeBatch.Record(uint64(freed))
	}
	if o.rec != nil {
		o.rec.Record(o.ringBase+tid, KindScanEnd, tid, uint64(examined), dur)
		if freed > 0 {
			o.rec.Record(o.ringBase+tid, KindFreeBatch, tid, uint64(examined), uint64(freed))
		}
	}
}

// ScanBuckets records a scan's whole-bucket decisions: skipped buckets were
// kept by one corner test, freed buckets freed by one. No-op (and no ring
// event) when both are zero — scans over flat single-bucket stores (EBR and
// friends) stay silent.
func (o *SchemeObs) ScanBuckets(tid int, skipped, freed uint64) {
	if o == nil || o.rec == nil || (skipped == 0 && freed == 0) {
		return
	}
	o.rec.Record(o.ringBase+tid, KindBucketScan, tid, skipped, freed)
}

// FreeAge records one reclaimed block's retire→free age in epochs.
func (o *SchemeObs) FreeAge(age uint64) {
	if o == nil || o.retireAge == nil {
		return
	}
	o.retireAge.Record(age)
}

// FreeAgeBatch folds one scan's locally bucketed retire→free ages into the
// age histogram — per-bucket atomics instead of per-block.
func (o *SchemeObs) FreeAgeBatch(counts *BucketCounts, sum uint64) {
	if o == nil || o.retireAge == nil {
		return
	}
	o.retireAge.AddBatch(counts, sum)
}

// Enabled reports whether o is non-nil; core uses it to skip per-block work
// (the age loop) entirely when observability is off.
func (o *SchemeObs) Enabled() bool { return o != nil }

// BlockAlloc records the alloc leg of a traced block's lifecycle span.
// slot is the block's pool slot index — tracing selects slots through the
// TraceEvery mask, so a slot is always traced or never.
func (o *SchemeObs) BlockAlloc(tid int, slot, birth uint64) {
	if o == nil || o.rec == nil || slot&o.traceMask != 0 {
		return
	}
	o.rec.Record(o.ringBase+tid, KindBlockAlloc, tid, birth, slot)
}

// BlockPublish records a traced block's handle being stored into a shared
// pointer — the block became reachable.
func (o *SchemeObs) BlockPublish(tid int, slot uint64) {
	if o == nil || o.rec == nil || slot&o.traceMask != 0 {
		return
	}
	o.rec.Record(o.ringBase+tid, KindBlockPublish, tid, 0, slot)
}

// BlockRetire records a traced block's retirement at epoch retire.
func (o *SchemeObs) BlockRetire(tid int, slot, retire uint64) {
	if o == nil || o.rec == nil || slot&o.traceMask != 0 {
		return
	}
	o.rec.Record(o.ringBase+tid, KindBlockRetire, tid, retire, slot)
}

// BlockKept records a scan individually examining and keeping a traced
// block; witness is the tid of the reservation that pinned it (-1 when the
// scan has no interval witness, e.g. the HP address scan).
func (o *SchemeObs) BlockKept(tid int, slot uint64, witness int) {
	if o == nil || o.rec == nil || slot&o.traceMask != 0 {
		return
	}
	o.rec.Record(o.ringBase+tid, KindBlockKept, tid, uint64(int64(witness)), slot)
}

// BlockFree records a traced block's reclamation; age is its retire→free
// age in epochs.
func (o *SchemeObs) BlockFree(tid int, slot, age uint64) {
	if o == nil || o.rec == nil || slot&o.traceMask != 0 {
		return
	}
	o.rec.Record(o.ringBase+tid, KindBlockFree, tid, age, slot)
}

// BucketSkip records a scan keeping a whole retire bucket on one corner
// test, with the bucket's birth-epoch bounds. The trace encoder uses it to
// explain why traced retired blocks stayed pinned without being examined —
// one event per kept bucket, never a walk of the bucket's blocks.
func (o *SchemeObs) BucketSkip(tid int, birthLo, birthHi uint64) {
	if o == nil || o.rec == nil {
		return
	}
	o.rec.Record(o.ringBase+tid, KindBucketSkip, tid, birthLo, birthHi)
}

// PhaseStart begins timing one scan phase, returning the start timestamp
// for PhaseEnd (0 when phase timing is off — still a valid argument).
func (o *SchemeObs) PhaseStart() uint64 {
	if o == nil || o.phases == nil {
		return 0
	}
	return nowNanos()
}

// PhaseEnd records the duration of the phase started at t0.
func (o *SchemeObs) PhaseEnd(phase int, t0 uint64) {
	if t0 == 0 || o == nil || o.phases == nil {
		return
	}
	o.phases[phase].Record(nowNanos() - t0)
}

// PinBlame publishes scanner's per-witness kept-block counts from one scan:
// counts[w] is the number of blocks scanner kept because tid w's
// reservation pinned them. Each scanner owns its row and overwrites it
// wholesale, so the exported gauges always reflect every thread's latest
// scan; rows are summed at read time. The first scan that blames a witness
// stamps its pin-since time, and the stamp clears once no scanner blames it
// anymore. A nil counts clears the row.
func (o *SchemeObs) PinBlame(scanner int, counts []uint64) {
	if o == nil || scanner < 0 || scanner >= len(o.pin) {
		return
	}
	row := o.pin[scanner]
	for w := range row {
		var c uint64
		if w < len(counts) {
			c = counts[w]
		}
		row[w].Store(c)
	}
	now := nowNanos()
	for w := range o.pinSince {
		var total uint64
		for s := range o.pin {
			total += o.pin[s][w].Load()
		}
		if total == 0 {
			o.pinSince[w].Store(0)
		} else {
			o.pinSince[w].CompareAndSwap(0, now)
		}
	}
}

// PinnedBlame sums the scanners' blame rows into one PinStat per currently
// blamed tid, sorted by pinned blocks descending — the "who is pinning my
// memory" answer. Safe to call concurrently with scans.
func (o *SchemeObs) PinnedBlame() []PinStat {
	if o == nil || len(o.pin) == 0 {
		return nil
	}
	now := nowNanos()
	var out []PinStat
	for w := range o.pinSince {
		var total uint64
		for s := range o.pin {
			total += o.pin[s][w].Load()
		}
		if total == 0 {
			continue
		}
		st := PinStat{Tid: w, Blocks: total}
		if since := o.pinSince[w].Load(); since != 0 && since < now {
			st.Age = time.Duration(now - since)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Blocks != out[j].Blocks {
			return out[i].Blocks > out[j].Blocks
		}
		return out[i].Tid < out[j].Tid
	})
	return out
}
