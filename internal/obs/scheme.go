package obs

// SchemeObs is the hook sink a reclamation scheme (internal/core) reports
// into. Every method is safe on a nil receiver — a disabled observer is a
// nil pointer, so the hooks compiled into the scheme hot paths cost one
// predictable branch when observability is off. Per-operation kinds (alloc,
// retire) are thinned by the sampling mask before touching the ring; scan-
// rate kinds are recorded unconditionally, they are orders of magnitude
// rarer.
//
// A SchemeObs serves the thread ids of exactly one scheme instance: ring
// RingBase+tid of the recorder must be written only through this observer
// by the goroutine leasing tid (the same single-writer contract the scheme
// itself imposes).
type SchemeObs struct {
	rec        *Recorder
	ringBase   int
	retireAge  *Hist
	scanDur    *Hist
	freeBatch  *Hist
	sampleMask uint64
	ts         []schemeThread
}

// schemeThread is per-tid sampling state, padded so two workers' counters
// never share a cache line.
type schemeThread struct {
	_       [64]byte
	allocs  uint64
	retires uint64
	_       [64]byte
}

// SchemeObsConfig wires a SchemeObs.
type SchemeObsConfig struct {
	// Threads is the scheme's thread-id count. Required.
	Threads int
	// Recorder and RingBase place the per-tid event rings: tid writes ring
	// RingBase+tid. A nil Recorder disables ring events but keeps the
	// histograms.
	Recorder *Recorder
	RingBase int
	// RetireAge observes the retire→free age in epochs of every reclaimed
	// block (the live form of Fig. 9's unreclaimed-growth metric).
	RetireAge *Hist
	// ScanDur observes retire-list scan wall time in nanoseconds.
	ScanDur *Hist
	// FreeBatch observes blocks freed per scan (including zero-free scans).
	FreeBatch *Hist
	// SampleEvery thins alloc/retire ring events (default 64, rounded up
	// to a power of two).
	SampleEvery int
}

// NewSchemeObs builds an observer. Histograms left nil are simply not fed.
func NewSchemeObs(cfg SchemeObsConfig) *SchemeObs {
	if cfg.Threads <= 0 {
		panic("obs: SchemeObsConfig.Threads must be positive")
	}
	se := cfg.SampleEvery
	if se <= 0 {
		se = 64
	}
	if se&(se-1) != 0 {
		n := 1
		for n < se {
			n <<= 1
		}
		se = n
	}
	return &SchemeObs{
		rec:        cfg.Recorder,
		ringBase:   cfg.RingBase,
		retireAge:  cfg.RetireAge,
		scanDur:    cfg.ScanDur,
		freeBatch:  cfg.FreeBatch,
		sampleMask: uint64(se - 1),
		ts:         make([]schemeThread, cfg.Threads),
	}
}

// RetireAgeHist returns the retire→free age histogram (nil when unset).
func (o *SchemeObs) RetireAgeHist() *Hist {
	if o == nil {
		return nil
	}
	return o.retireAge
}

// Alloc records a block allocation (sampled). epoch is the birth epoch, 0
// for schemes that do not stamp births.
func (o *SchemeObs) Alloc(tid int, epoch uint64) {
	if o == nil {
		return
	}
	t := &o.ts[tid]
	t.allocs++
	if o.rec != nil && t.allocs&o.sampleMask == 0 {
		o.rec.Record(o.ringBase+tid, KindAlloc, tid, epoch, 0)
	}
}

// Retire records a block retirement (sampled). backlog is the retire-list
// length after the append.
func (o *SchemeObs) Retire(tid int, epoch uint64, backlog int) {
	if o == nil {
		return
	}
	t := &o.ts[tid]
	t.retires++
	if o.rec != nil && t.retires&o.sampleMask == 0 {
		o.rec.Record(o.ringBase+tid, KindRetire, tid, epoch, uint64(backlog))
	}
}

// EpochAdvance records a global-epoch bump to the new value e.
func (o *SchemeObs) EpochAdvance(tid int, e uint64) {
	if o == nil || o.rec == nil {
		return
	}
	o.rec.Record(o.ringBase+tid, KindEpochAdvance, tid, e, 0)
}

// ScanStart records the beginning of a retire-list scan and returns the
// start timestamp for the matching ScanEnd (0 when the observer is nil —
// still a valid argument to ScanEnd).
func (o *SchemeObs) ScanStart(tid int, epoch uint64) uint64 {
	if o == nil {
		return 0
	}
	if o.rec != nil {
		o.rec.Record(o.ringBase+tid, KindScanStart, tid, epoch, 0)
	}
	return nowNanos()
}

// ScanEnd records the completion of the scan started at t0: its duration
// into the scan-duration histogram and a scan_end event carrying blocks
// examined and the duration; freed goes to the free-batch histogram and,
// when non-zero, a free_batch event.
func (o *SchemeObs) ScanEnd(tid int, t0 uint64, examined, freed int) {
	if o == nil {
		return
	}
	dur := nowNanos() - t0
	if o.scanDur != nil {
		o.scanDur.Record(dur)
	}
	if o.freeBatch != nil {
		o.freeBatch.Record(uint64(freed))
	}
	if o.rec != nil {
		o.rec.Record(o.ringBase+tid, KindScanEnd, tid, uint64(examined), dur)
		if freed > 0 {
			o.rec.Record(o.ringBase+tid, KindFreeBatch, tid, uint64(examined), uint64(freed))
		}
	}
}

// ScanBuckets records a scan's whole-bucket decisions: skipped buckets were
// kept by one corner test, freed buckets freed by one. No-op (and no ring
// event) when both are zero — scans over flat single-bucket stores (EBR and
// friends) stay silent.
func (o *SchemeObs) ScanBuckets(tid int, skipped, freed uint64) {
	if o == nil || o.rec == nil || (skipped == 0 && freed == 0) {
		return
	}
	o.rec.Record(o.ringBase+tid, KindBucketScan, tid, skipped, freed)
}

// FreeAge records one reclaimed block's retire→free age in epochs.
func (o *SchemeObs) FreeAge(age uint64) {
	if o == nil || o.retireAge == nil {
		return
	}
	o.retireAge.Record(age)
}

// FreeAgeBatch folds one scan's locally bucketed retire→free ages into the
// age histogram — per-bucket atomics instead of per-block.
func (o *SchemeObs) FreeAgeBatch(counts *BucketCounts, sum uint64) {
	if o == nil || o.retireAge == nil {
		return
	}
	o.retireAge.AddBatch(counts, sum)
}

// Enabled reports whether o is non-nil; core uses it to skip per-block work
// (the age loop) entirely when observability is off.
func (o *SchemeObs) Enabled() bool { return o != nil }
