package obs

import (
	"testing"
	"time"
)

// fakeSource is a hand-driven reservation table.
type fakeSource struct {
	epoch  uint64
	lowers []uint64
}

func (f *fakeSource) source() Source {
	return Source{
		Label:  "fake",
		Epoch:  func() uint64 { return f.epoch },
		Lowers: func(buf []uint64) []uint64 { return append(buf, f.lowers...) },
	}
}

func TestWatchdogStallAlert(t *testing.T) {
	f := &fakeSource{epoch: 100, lowers: []uint64{NoEpoch, NoEpoch}}
	rec := NewRecorder(1, 16)
	// Huge interval: the test drives Tick by hand; threshold 1ns means any
	// reservation surviving two ticks is past it.
	w := NewWatchdog([]Source{f.source()}, time.Nanosecond, time.Hour, rec, 0)

	w.Tick()
	if w.Alerts() != 0 || w.Stalled() != 0 {
		t.Fatalf("idle table raised alerts=%d stalled=%d", w.Alerts(), w.Stalled())
	}

	// Slot 1 publishes and holds the same lower endpoint.
	f.lowers[1] = 40
	w.Tick() // first observation: clock starts
	time.Sleep(time.Millisecond)
	w.Tick() // still held past threshold → one alert
	if w.Alerts() != 1 {
		t.Fatalf("Alerts = %d after held reservation, want 1", w.Alerts())
	}
	if w.Stalled() != 1 {
		t.Fatalf("Stalled = %d, want 1", w.Stalled())
	}
	if lag := w.MaxEpochLag(); lag != 60 {
		t.Fatalf("MaxEpochLag = %d, want 60", lag)
	}
	w.Tick() // still stalled: edge-triggered, no second alert
	if w.Alerts() != 1 {
		t.Fatalf("Alerts = %d after repeat tick, want still 1", w.Alerts())
	}

	// The stall event landed in the system ring.
	evs := rec.Snapshot()
	if len(evs) != 1 || evs[0].Kind != KindStall || evs[0].Tid != 1 || evs[0].Value != 40 {
		t.Fatalf("stall event wrong: %+v", evs)
	}

	// EndOp: the slot clears, gauge drops, alert re-arms.
	f.lowers[1] = NoEpoch
	w.Tick()
	if w.Stalled() != 0 {
		t.Fatalf("Stalled = %d after clear, want 0", w.Stalled())
	}
	f.lowers[1] = 90
	w.Tick()
	time.Sleep(time.Millisecond)
	w.Tick()
	if w.Alerts() != 2 {
		t.Fatalf("Alerts = %d after second stall episode, want 2", w.Alerts())
	}
}

// TestWatchdogProgressNoAlert: a slot that republishes fresh lower
// endpoints (a making-progress thread) never alerts.
func TestWatchdogProgressNoAlert(t *testing.T) {
	f := &fakeSource{epoch: 10, lowers: []uint64{5}}
	w := NewWatchdog([]Source{f.source()}, time.Nanosecond, time.Hour, nil, 0)
	for i := 0; i < 5; i++ {
		w.Tick()
		time.Sleep(time.Millisecond)
		f.lowers[0]++ // StartOp of the next operation: new epoch
		f.epoch++
	}
	if w.Alerts() != 0 {
		t.Fatalf("Alerts = %d for a progressing thread, want 0", w.Alerts())
	}
}

// TestWatchdogStartStop exercises the goroutine path.
func TestWatchdogStartStop(t *testing.T) {
	f := &fakeSource{epoch: 3, lowers: []uint64{1}}
	w := NewWatchdog([]Source{f.source()}, time.Microsecond, time.Millisecond, nil, 0)
	w.Start()
	deadline := time.Now().Add(2 * time.Second)
	for w.Alerts() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	w.Stop()
	if w.Alerts() == 0 {
		t.Fatal("polling watchdog never alerted on a held reservation")
	}
}
