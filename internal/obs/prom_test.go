package obs

import (
	"strconv"
	"strings"
	"testing"
)

func TestEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `plain`},
		{`has "quotes"`, `has \"quotes\"`},
		{`back\slash`, `back\\slash`},
		{"new\nline", `new\nline`},
		{"all\\\"\n", `all\\\"\n`},
	}
	for _, c := range cases {
		if got := EscapeLabel(c.in); got != c.want {
			t.Errorf("EscapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPromSamples(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Header("ibr_test_total", "counter", "a help line\nwith a newline and back\\slash")
	p.Uint("ibr_test_total", []Label{{"shard", "0"}, {"note", `x"y`}}, 42)
	p.Sample("ibr_test_ratio", nil, 0.5)
	p.Int("ibr_test_delta", nil, -3)
	if err := p.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP ibr_test_total a help line\\nwith a newline and back\\\\slash\n",
		"# TYPE ibr_test_total counter\n",
		"ibr_test_total{shard=\"0\",note=\"x\\\"y\"} 42\n",
		"ibr_test_ratio 0.5\n",
		"ibr_test_delta -3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q; got:\n%s", want, out)
		}
	}
}

// TestPromHistogramCumulative checks the histogram encoding: buckets are
// cumulative and monotone, the +Inf bucket equals _count, and _sum matches.
func TestPromHistogramCumulative(t *testing.T) {
	var h Hist
	for _, v := range []uint64{1, 1, 3, 3, 3, 9, 200} {
		h.Record(v)
	}
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Header("ibr_age", "histogram", "test")
	p.Histogram("ibr_age", []Label{{"shard", "1"}}, h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	out := sb.String()

	// Parse the bucket lines back and check monotonicity + the fixed points.
	var prev uint64
	var infSeen bool
	var bucketLines int
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "ibr_age_bucket") {
			continue
		}
		bucketLines++
		val, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket value in %q: %v", line, err)
		}
		if val < prev {
			t.Errorf("bucket counts not cumulative: %d after %d in %q", val, prev, line)
		}
		prev = val
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if val != 7 {
				t.Errorf("+Inf bucket = %d, want 7", val)
			}
		}
	}
	if !infSeen {
		t.Error("no +Inf bucket emitted")
	}
	// Values 1,1 → bucket 0 (le 2); 3,3,3 → bucket 1 (le 4); 9 → bucket 3
	// (le 16); 200 → bucket 7 (le 256). Trimmed at the highest non-empty
	// bucket: le=2,4,8,16,32,64,128,256 plus +Inf = 9 lines.
	if bucketLines != 9 {
		t.Errorf("got %d bucket lines, want 9 (trimmed at max bucket + Inf):\n%s", bucketLines, out)
	}
	for _, want := range []string{
		`ibr_age_bucket{shard="1",le="2"} 2`,
		`ibr_age_bucket{shard="1",le="4"} 5`,
		`ibr_age_bucket{shard="1",le="16"} 6`,
		`ibr_age_bucket{shard="1",le="256"} 7`,
		`ibr_age_sum{shard="1"} 220`,
		`ibr_age_count{shard="1"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q; got:\n%s", want, out)
		}
	}
}

// TestPromHistogramEmpty: an empty snapshot still emits +Inf, _sum, _count.
func TestPromHistogramEmpty(t *testing.T) {
	var h Hist
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Histogram("ibr_empty", nil, h.Snapshot())
	out := sb.String()
	for _, want := range []string{
		`ibr_empty_bucket{le="+Inf"} 0`,
		"ibr_empty_sum 0",
		"ibr_empty_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q; got:\n%s", want, out)
		}
	}
}
