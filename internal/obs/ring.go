package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync/atomic"
)

// slot is one ring entry. Every field is accessed atomically so a snapshot
// can run concurrently with the writer; seq is the per-slot seqlock:
//
//	0          never written
//	2·pos + 1  write of event #pos in progress
//	2·pos + 2  event #pos valid
//
// A reader that observes the same even seq before and after copying the
// payload fields has a consistent event; anything else is a torn read and
// the slot is skipped (the writer lapped the reader — the event is lost to
// that snapshot, never corrupted).
type slot struct {
	seq   atomic.Uint64
	ts    atomic.Uint64
	kt    atomic.Uint64 // Kind<<32 | uint32(tid)
	epoch atomic.Uint64
	value atomic.Uint64
}

// ring is a single-writer fixed-size event buffer. pos is owned by the
// writer (plain read-modify-write would do) but is read by snapshots, so it
// is atomic; padding keeps neighbouring rings' hot words off a shared line.
type ring struct {
	_     [64]byte
	pos   atomic.Uint64 // events ever written to this ring
	slots []slot
	mask  uint64
	_     [64]byte
}

// Recorder is the flight recorder: one ring per writer. Writers are thread
// ids of a scheme (each tid is driven by one goroutine, matching the rings'
// single-writer contract) plus, by convention, one extra ring for system
// writers such as the watchdog. Recording never blocks and never
// allocates; old events are overwritten, newest-wins.
type Recorder struct {
	rings []ring
}

// NewRecorder creates a recorder with n rings of the given capacity
// (rounded up to a power of two, minimum 8).
func NewRecorder(n, size int) *Recorder {
	if n <= 0 {
		panic("obs: NewRecorder needs at least one ring")
	}
	if size < 8 {
		size = 8
	}
	if size&(size-1) != 0 {
		size = 1 << bits.Len(uint(size))
	}
	r := &Recorder{rings: make([]ring, n)}
	for i := range r.rings {
		r.rings[i].slots = make([]slot, size)
		r.rings[i].mask = uint64(size - 1)
	}
	return r
}

// Rings returns the number of rings.
func (r *Recorder) Rings() int { return len(r.rings) }

// Record appends one event to ring i. It must be called by at most one
// goroutine per ring at a time (the single-writer contract).
func (r *Recorder) Record(i int, k Kind, tid int, epoch, value uint64) {
	rg := &r.rings[i]
	pos := rg.pos.Load()
	s := &rg.slots[pos&rg.mask]
	s.seq.Store(2*pos + 1)
	s.ts.Store(nowNanos())
	s.kt.Store(uint64(k)<<32 | uint64(uint32(tid)))
	s.epoch.Store(epoch)
	s.value.Store(value)
	s.seq.Store(2*pos + 2)
	rg.pos.Store(pos + 1)
}

// Written returns the total number of events ever recorded across rings.
func (r *Recorder) Written() uint64 {
	var n uint64
	for i := range r.rings {
		n += r.rings[i].pos.Load()
	}
	return n
}

// Dropped returns the number of events overwritten before any possible
// snapshot: max(0, written - capacity) summed over rings.
func (r *Recorder) Dropped() uint64 {
	var n uint64
	for i := range r.rings {
		if w, c := r.rings[i].pos.Load(), uint64(len(r.rings[i].slots)); w > c {
			n += w - c
		}
	}
	return n
}

// Snapshot copies every currently valid event, oldest first, without
// stopping the writers. Events being overwritten during the copy are
// skipped, not torn.
func (r *Recorder) Snapshot() []Event {
	out := make([]Event, 0, 256)
	for ri := range r.rings {
		rg := &r.rings[ri]
		for si := range rg.slots {
			s := &rg.slots[si]
			s1 := s.seq.Load()
			if s1 == 0 || s1&1 == 1 {
				continue
			}
			ev := Event{
				Ring:  ri,
				TS:    s.ts.Load(),
				Epoch: s.epoch.Load(),
				Value: s.value.Load(),
			}
			kt := s.kt.Load()
			if s.seq.Load() != s1 {
				continue // torn: the writer lapped us mid-copy
			}
			ev.Pos = s1/2 - 1
			ev.Kind = Kind(kt >> 32)
			ev.Tid = int(int32(uint32(kt)))
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		if out[i].Ring != out[j].Ring {
			return out[i].Ring < out[j].Ring
		}
		return out[i].Pos < out[j].Pos
	})
	return out
}

// jsonEvent is the JSONL wire form of an Event: Kind rendered as a string.
type jsonEvent struct {
	Event
	KindName string `json:"kind"`
}

// WriteJSONL dumps a snapshot as JSON Lines: one header object carrying the
// timestamp anchor and totals, then one object per event. The snapshot is
// taken inside, so the dump observes a single moment without pausing any
// writer.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	events := r.Snapshot()
	if _, err := fmt.Fprintf(w, `{"kind":"header","start":%q,"rings":%d,"written":%d,"dropped":%d,"events":%d}`+"\n",
		start.Format("2006-01-02T15:04:05.000000000Z07:00"), len(r.rings), r.Written(), r.Dropped(), len(events)); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(jsonEvent{Event: ev, KindName: ev.Kind.String()}); err != nil {
			return err
		}
	}
	return nil
}
