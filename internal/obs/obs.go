// Package obs is the observability layer of the running system: a
// per-thread lock-free flight recorder of SMR lifecycle events, a family of
// concurrent log2-bucketed histograms (server latency per op type, scan
// duration, free-batch size, and the paper-critical retire→free age
// distribution), a hand-rolled Prometheus text-format encoder, and a stall
// watchdog that turns the paper's stalled-thread experiment (§4.3.1,
// Fig. 9) into a live alert.
//
// The package depends only on the standard library and knows nothing about
// the reclamation schemes: internal/core calls into a *SchemeObs through
// nil-safe methods (a disabled observer is a nil pointer and each hook is a
// single predictable branch), and internal/server assembles recorders,
// histograms and the watchdog into an engine-wide view that cmd/ibrd
// exposes on /metrics and /debug/flightrecorder.
package obs

import "time"

// start anchors every timestamp the package records. Using one process-wide
// monotonic base keeps events from different recorders comparable and makes
// a recorded timestamp a plain uint64 nanosecond offset.
var start = time.Now()

// nowNanos returns monotonic nanoseconds since process start.
func nowNanos() uint64 { return uint64(time.Since(start)) }

// Start returns the wall-clock anchor of the package's monotonic
// timestamps: an event with TS t happened at Start().Add(t).
func Start() time.Time { return start }

// Now returns the package's monotonic timestamp — nanosecond offsets on the
// same axis as every recorded event, so callers can time spans (op latency)
// in recorder units.
func Now() uint64 { return nowNanos() }

// NoEpoch mirrors epoch.None ("no epoch reserved", the paper's MAX) without
// importing the epoch package; the watchdog treats it as an idle slot.
const NoEpoch = ^uint64(0)

// Kind classifies a flight-recorder event.
type Kind uint8

const (
	// KindAlloc: a block was allocated (sampled; Epoch = birth epoch, 0
	// for the epoch-free schemes).
	KindAlloc Kind = 1 + iota
	// KindRetire: a block was retired (sampled; Epoch = retire epoch,
	// Value = retire-list length after the append).
	KindRetire
	// KindScanStart: a retire-list scan began (Epoch = current epoch).
	KindScanStart
	// KindScanEnd: the scan finished (Value = duration in nanoseconds,
	// Epoch = blocks examined).
	KindScanEnd
	// KindFreeBatch: the scan's frees were batch-returned to the allocator
	// (Value = batch size).
	KindFreeBatch
	// KindEpochAdvance: the global epoch advanced (Epoch = new epoch).
	KindEpochAdvance
	// KindStall: the watchdog flagged a reservation held past the
	// threshold (Tid = the stalled slot, Epoch = current epoch, Value =
	// the reservation's stale lower endpoint).
	KindStall
	// KindQuarantine: the serving engine quarantined a stalled or dead tid
	// — cleared its reservation and adopted its retire list (Tid = the
	// quarantined tid, Epoch = current epoch, Value = blocks adopted).
	// Written by the worker that executed the cleanup, into its own ring.
	KindQuarantine
	// KindBucketScan: a scan decided whole retire-list buckets with corner
	// tests instead of per-block sweeps (Epoch = buckets kept wholesale,
	// Value = buckets freed wholesale). Recorded only when either is
	// non-zero.
	KindBucketScan
	// KindBlockAlloc: a traced block's lifecycle span began (Value = the
	// block's pool slot index, Epoch = birth epoch, 0 for the epoch-free
	// schemes). Block spans are selected deterministically by slot index
	// (see Options.TraceEvery), so a given block is either fully traced or
	// fully absent.
	KindBlockAlloc
	// KindBlockPublish: a traced block's handle was stored into a shared
	// pointer — the block became reachable (Value = slot index).
	KindBlockPublish
	// KindBlockRetire: a traced block was retired (Value = slot index,
	// Epoch = retire epoch).
	KindBlockRetire
	// KindBlockKept: a scan examined a traced block individually and kept
	// it because a reservation interval pinned it (Value = slot index,
	// Epoch = the witness reservation's tid).
	KindBlockKept
	// KindBlockFree: a traced block was reclaimed (Value = slot index,
	// Epoch = its retire→free age in epochs).
	KindBlockFree
	// KindBucketSkip: a scan kept a whole retire bucket on one corner test
	// (Epoch = the bucket's lowest birth epoch, Value = its highest).
	// Traced blocks retired into the bucket stay pinned without per-block
	// events — the skip marker is their "examined wholesale" record, kept
	// O(1) per bucket so stalls never degrade scans back to backlog walks.
	KindBucketSkip
	// KindOp: a traced request executed on a serving worker (Value = the
	// wire trace ID, Epoch = execution duration in nanoseconds; TS is the
	// end time). Joins a client-chosen trace ID to the shard timeline.
	KindOp
)

func (k Kind) String() string {
	switch k {
	case KindAlloc:
		return "alloc"
	case KindRetire:
		return "retire"
	case KindScanStart:
		return "scan_start"
	case KindScanEnd:
		return "scan_end"
	case KindFreeBatch:
		return "free_batch"
	case KindEpochAdvance:
		return "epoch_advance"
	case KindStall:
		return "stall"
	case KindQuarantine:
		return "quarantine"
	case KindBucketScan:
		return "bucket_scan"
	case KindBlockAlloc:
		return "block_alloc"
	case KindBlockPublish:
		return "block_publish"
	case KindBlockRetire:
		return "block_retire"
	case KindBlockKept:
		return "block_kept"
	case KindBlockFree:
		return "block_free"
	case KindBucketSkip:
		return "bucket_skip"
	case KindOp:
		return "op"
	}
	return "unknown"
}

// KindFromString parses a JSONL kind name back to its Kind; 0 for unknown
// names (including the dump's "header" line). cmd/ibrtrace uses it to
// re-encode flight-recorder dumps offline.
func KindFromString(s string) Kind {
	for k := KindAlloc; k <= KindOp; k++ {
		if k.String() == s {
			return k
		}
	}
	return 0
}

// Event is one decoded flight-recorder entry. The Epoch and Value fields
// are kind-specific (see the Kind constants).
type Event struct {
	Ring  int    `json:"ring"`
	Pos   uint64 `json:"pos"`   // position in the ring's append order
	TS    uint64 `json:"ts_ns"` // monotonic ns since process start
	Kind  Kind   `json:"-"`
	Tid   int    `json:"tid"`
	Epoch uint64 `json:"epoch"`
	Value uint64 `json:"value"`
}

// Options tunes the observability layer; the zero value of every field
// selects a sensible default.
type Options struct {
	// RingSize is the per-thread flight-recorder capacity in events
	// (default 4096, rounded up to a power of two).
	RingSize int
	// SampleEvery thins the per-operation event kinds (alloc, retire) to
	// one ring write every SampleEvery occurrences per thread (default 64,
	// rounded up to a power of two; 1 records everything). Scans, free
	// batches, epoch advances and stalls are always recorded — they are
	// orders of magnitude rarer than operations.
	SampleEvery int
	// TraceEvery selects which block-lifecycle spans the flight recorder
	// traces: a block whose pool slot index is ≡ 0 (mod TraceEvery) records
	// alloc/publish/retire/kept/free span events (default 64, rounded up to
	// a power of two; 1 traces every block). Selecting by slot index is
	// deterministic — the same block is traced across every reuse of its
	// slot, never half a lifecycle.
	TraceEvery int
	// StallThreshold is how long a reservation may stay unchanged before
	// the watchdog raises a stall alert (default 1s).
	StallThreshold time.Duration
	// WatchInterval is the watchdog poll period (default 100ms).
	WatchInterval time.Duration
}

// WithDefaults returns o with zero fields replaced by defaults.
func (o Options) WithDefaults() Options {
	if o.RingSize <= 0 {
		o.RingSize = 4096
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 64
	}
	if o.TraceEvery <= 0 {
		o.TraceEvery = 64
	}
	if o.StallThreshold <= 0 {
		o.StallThreshold = time.Second
	}
	if o.WatchInterval <= 0 {
		o.WatchInterval = 100 * time.Millisecond
	}
	return o
}
