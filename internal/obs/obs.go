// Package obs is the observability layer of the running system: a
// per-thread lock-free flight recorder of SMR lifecycle events, a family of
// concurrent log2-bucketed histograms (server latency per op type, scan
// duration, free-batch size, and the paper-critical retire→free age
// distribution), a hand-rolled Prometheus text-format encoder, and a stall
// watchdog that turns the paper's stalled-thread experiment (§4.3.1,
// Fig. 9) into a live alert.
//
// The package depends only on the standard library and knows nothing about
// the reclamation schemes: internal/core calls into a *SchemeObs through
// nil-safe methods (a disabled observer is a nil pointer and each hook is a
// single predictable branch), and internal/server assembles recorders,
// histograms and the watchdog into an engine-wide view that cmd/ibrd
// exposes on /metrics and /debug/flightrecorder.
package obs

import "time"

// start anchors every timestamp the package records. Using one process-wide
// monotonic base keeps events from different recorders comparable and makes
// a recorded timestamp a plain uint64 nanosecond offset.
var start = time.Now()

// nowNanos returns monotonic nanoseconds since process start.
func nowNanos() uint64 { return uint64(time.Since(start)) }

// Start returns the wall-clock anchor of the package's monotonic
// timestamps: an event with TS t happened at Start().Add(t).
func Start() time.Time { return start }

// Now returns the package's monotonic timestamp — nanosecond offsets on the
// same axis as every recorded event, so callers can time spans (op latency)
// in recorder units.
func Now() uint64 { return nowNanos() }

// NoEpoch mirrors epoch.None ("no epoch reserved", the paper's MAX) without
// importing the epoch package; the watchdog treats it as an idle slot.
const NoEpoch = ^uint64(0)

// Kind classifies a flight-recorder event.
type Kind uint8

const (
	// KindAlloc: a block was allocated (sampled; Epoch = birth epoch, 0
	// for the epoch-free schemes).
	KindAlloc Kind = 1 + iota
	// KindRetire: a block was retired (sampled; Epoch = retire epoch,
	// Value = retire-list length after the append).
	KindRetire
	// KindScanStart: a retire-list scan began (Epoch = current epoch).
	KindScanStart
	// KindScanEnd: the scan finished (Value = duration in nanoseconds,
	// Epoch = blocks examined).
	KindScanEnd
	// KindFreeBatch: the scan's frees were batch-returned to the allocator
	// (Value = batch size).
	KindFreeBatch
	// KindEpochAdvance: the global epoch advanced (Epoch = new epoch).
	KindEpochAdvance
	// KindStall: the watchdog flagged a reservation held past the
	// threshold (Tid = the stalled slot, Epoch = current epoch, Value =
	// the reservation's stale lower endpoint).
	KindStall
	// KindQuarantine: the serving engine quarantined a stalled or dead tid
	// — cleared its reservation and adopted its retire list (Tid = the
	// quarantined tid, Epoch = current epoch, Value = blocks adopted).
	// Written by the worker that executed the cleanup, into its own ring.
	KindQuarantine
	// KindBucketScan: a scan decided whole retire-list buckets with corner
	// tests instead of per-block sweeps (Epoch = buckets kept wholesale,
	// Value = buckets freed wholesale). Recorded only when either is
	// non-zero.
	KindBucketScan
)

func (k Kind) String() string {
	switch k {
	case KindAlloc:
		return "alloc"
	case KindRetire:
		return "retire"
	case KindScanStart:
		return "scan_start"
	case KindScanEnd:
		return "scan_end"
	case KindFreeBatch:
		return "free_batch"
	case KindEpochAdvance:
		return "epoch_advance"
	case KindStall:
		return "stall"
	case KindQuarantine:
		return "quarantine"
	case KindBucketScan:
		return "bucket_scan"
	}
	return "unknown"
}

// Event is one decoded flight-recorder entry. The Epoch and Value fields
// are kind-specific (see the Kind constants).
type Event struct {
	Ring  int    `json:"ring"`
	Pos   uint64 `json:"pos"`   // position in the ring's append order
	TS    uint64 `json:"ts_ns"` // monotonic ns since process start
	Kind  Kind   `json:"-"`
	Tid   int    `json:"tid"`
	Epoch uint64 `json:"epoch"`
	Value uint64 `json:"value"`
}

// Options tunes the observability layer; the zero value of every field
// selects a sensible default.
type Options struct {
	// RingSize is the per-thread flight-recorder capacity in events
	// (default 4096, rounded up to a power of two).
	RingSize int
	// SampleEvery thins the per-operation event kinds (alloc, retire) to
	// one ring write every SampleEvery occurrences per thread (default 64,
	// rounded up to a power of two; 1 records everything). Scans, free
	// batches, epoch advances and stalls are always recorded — they are
	// orders of magnitude rarer than operations.
	SampleEvery int
	// StallThreshold is how long a reservation may stay unchanged before
	// the watchdog raises a stall alert (default 1s).
	StallThreshold time.Duration
	// WatchInterval is the watchdog poll period (default 100ms).
	WatchInterval time.Duration
}

// WithDefaults returns o with zero fields replaced by defaults.
func (o Options) WithDefaults() Options {
	if o.RingSize <= 0 {
		o.RingSize = 4096
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 64
	}
	if o.StallThreshold <= 0 {
		o.StallThreshold = time.Second
	}
	if o.WatchInterval <= 0 {
		o.WatchInterval = 100 * time.Millisecond
	}
	return o
}
