// Package epoch provides the global epoch clock and the per-thread
// reservation table shared by every epoch- and interval-based reclamation
// scheme in this repository (EBR, HE, POIBR, TagIBR, 2GEIBR).
//
// The clock is the "global epoch counter" of Fig. 2 of the paper; the
// reservation table is the "reservations[thread_cnt]" array. Entries are
// cache-line padded: every thread scans the whole table in empty(), and an
// unpadded layout would put hot per-thread stores on shared lines.
package epoch

import (
	"math"
	"sync/atomic"
)

// None is the reservation value meaning "no epoch reserved" (the paper's
// MAX). Any comparison against a real epoch fails safe: no block is
// protected by an idle thread.
const None uint64 = math.MaxUint64

// Clock is the global epoch counter. As the paper notes (§2.2), a 64-bit
// counter bumped every ~100µs will not overflow in practice.
type Clock struct {
	_ [64]byte
	e atomic.Uint64
	_ [64]byte
}

// NewClock returns a clock starting at epoch 1 (0 is reserved so that a
// zero-valued birth field is always "older than everything", and so the
// hazard-era convention "era 0 = unreserved" works).
func NewClock() *Clock {
	c := &Clock{}
	c.e.Store(1)
	return c
}

// Now returns the current epoch.
func (c *Clock) Now() uint64 { return c.e.Load() }

// Advance atomically increments the epoch (fetch_and_increment in the
// paper) and returns the new value.
func (c *Clock) Advance() uint64 { return c.e.Add(1) }

// Reservation is one thread's published protection: a closed interval
// [Lower, Upper] of epochs. Schemes that reserve a single epoch (EBR,
// POIBR) keep Lower == Upper. An idle thread publishes [None, None].
type Reservation struct {
	_     [64]byte
	lower atomic.Uint64
	upper atomic.Uint64
	_     [48]byte
}

// Lower returns the reserved interval's lower endpoint.
func (r *Reservation) Lower() uint64 { return r.lower.Load() }

// Upper returns the reserved interval's upper endpoint.
func (r *Reservation) Upper() uint64 { return r.upper.Load() }

// Set publishes the interval [lo, hi]. The store is sequentially consistent
// (Go atomics), which provides the write-read fence the snapshot idioms of
// Figs. 4–6 rely on.
func (r *Reservation) Set(lo, hi uint64) {
	r.lower.Store(lo)
	r.upper.Store(hi)
}

// SetUpper publishes a new upper endpoint only.
func (r *Reservation) SetUpper(hi uint64) { r.upper.Store(hi) }

// Clear publishes the idle interval.
func (r *Reservation) Clear() { r.Set(None, None) }

// Table is the global reservation array, one padded entry per thread id.
type Table struct {
	res []Reservation
}

// NewTable creates a table of n reservations, all idle.
func NewTable(n int) *Table {
	t := &Table{res: make([]Reservation, n)}
	for i := range t.res {
		t.res[i].Clear()
	}
	return t
}

// Len returns the number of slots.
func (t *Table) Len() int { return len(t.res) }

// At returns thread tid's reservation.
func (t *Table) At(tid int) *Reservation { return &t.res[tid] }

// MinLower scans the table and returns the smallest reserved lower
// endpoint — the "max_safe_epoch" computation of Fig. 2 line 8. Idle
// entries (None) do not constrain the result; if every entry is idle the
// result is None.
func (t *Table) MinLower() uint64 {
	min := None
	for i := range t.res {
		if lo := t.res[i].lower.Load(); lo < min {
			min = lo
		}
	}
	return min
}

// MinLowerSlot is MinLower returning the argmin too: the slot index holding
// the smallest reserved lower endpoint and that endpoint (slot 0 and None
// when every entry is idle). An EBR-style scan's unfree prefix is pinned by
// exactly this reservation, so the slot is the scan's blame witness.
func (t *Table) MinLowerSlot() (int, uint64) {
	slot, min := 0, None
	for i := range t.res {
		if lo := t.res[i].lower.Load(); lo < min {
			min, slot = lo, i
		}
	}
	return slot, min
}

// Intersects reports whether any published reservation interval intersects
// the block lifetime [birth, retire] — the conflict test of Fig. 5 line 26:
// protected iff birth ≤ res.upper && retire ≥ res.lower.
func (t *Table) Intersects(birth, retire uint64) bool {
	for i := range t.res {
		r := &t.res[i]
		lo := r.lower.Load()
		hi := r.upper.Load()
		if lo == None && hi == None {
			continue
		}
		if birth <= hi && retire >= lo {
			return true
		}
	}
	return false
}

// CoversEra reports whether any single reserved epoch value (an entry in a
// flat era array, as hazard eras uses) lies within [birth, retire]. It is a
// helper for tests; the HE scheme keeps its own era slots.
func CoversEra(era, birth, retire uint64) bool {
	return era != None && birth <= era && era <= retire
}
