package epoch

import (
	"sync"
	"testing"
	"testing/quick"
	"unsafe"
)

func TestClockStartsAtOne(t *testing.T) {
	c := NewClock()
	if c.Now() != 1 {
		t.Fatalf("Now() = %d, want 1", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if got := c.Advance(); got != 2 {
		t.Fatalf("Advance() = %d, want 2", got)
	}
	if c.Now() != 2 {
		t.Fatalf("Now() = %d, want 2", c.Now())
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := NewClock()
	const threads, per = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Advance()
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != 1+threads*per {
		t.Fatalf("Now() = %d, want %d (lost increments)", got, 1+threads*per)
	}
}

func TestReservationLifecycle(t *testing.T) {
	tb := NewTable(3)
	r := tb.At(1)
	if r.Lower() != None || r.Upper() != None {
		t.Fatal("fresh reservation not idle")
	}
	r.Set(5, 9)
	if r.Lower() != 5 || r.Upper() != 9 {
		t.Fatalf("interval = [%d,%d], want [5,9]", r.Lower(), r.Upper())
	}
	r.SetUpper(12)
	if r.Lower() != 5 || r.Upper() != 12 {
		t.Fatal("SetUpper clobbered lower")
	}
	r.Clear()
	if r.Lower() != None || r.Upper() != None {
		t.Fatal("Clear did not idle the reservation")
	}
}

func TestMinLower(t *testing.T) {
	tb := NewTable(4)
	if tb.MinLower() != None {
		t.Fatal("all-idle table should report None")
	}
	tb.At(2).Set(7, 7)
	tb.At(0).Set(3, 10)
	if tb.MinLower() != 3 {
		t.Fatalf("MinLower = %d, want 3", tb.MinLower())
	}
	tb.At(0).Clear()
	if tb.MinLower() != 7 {
		t.Fatalf("MinLower = %d, want 7", tb.MinLower())
	}
}

func TestIntersects(t *testing.T) {
	tb := NewTable(2)
	tb.At(0).Set(10, 20)
	cases := []struct {
		birth, retire uint64
		want          bool
	}{
		{1, 5, false},   // ends before interval
		{1, 10, true},   // touches lower endpoint
		{15, 16, true},  // inside
		{5, 25, true},   // spans
		{20, 30, true},  // touches upper endpoint
		{21, 30, false}, // starts after interval
	}
	for _, c := range cases {
		if got := tb.Intersects(c.birth, c.retire); got != c.want {
			t.Errorf("Intersects(%d,%d) = %v, want %v", c.birth, c.retire, got, c.want)
		}
	}
}

func TestIntersectsIgnoresIdle(t *testing.T) {
	tb := NewTable(8) // all idle
	if tb.Intersects(0, None-1) {
		t.Fatal("idle table protected a block")
	}
}

// TestIntersectsMatchesBruteForce cross-checks the production intersection
// predicate against the obvious quadratic definition on random tables.
func TestIntersectsMatchesBruteForce_Quick(t *testing.T) {
	f := func(los, his [4]uint16, birth16, len16 uint16) bool {
		tb := NewTable(4)
		type iv struct{ lo, hi uint64 }
		var ivs []iv
		for i := 0; i < 4; i++ {
			lo, hi := uint64(los[i]), uint64(his[i])
			if lo > hi {
				lo, hi = hi, lo
			}
			if i%2 == 0 { // leave half idle sometimes
				tb.At(i).Set(lo, hi)
				ivs = append(ivs, iv{lo, hi})
			}
		}
		birth := uint64(birth16)
		retire := birth + uint64(len16)
		want := false
		for _, v := range ivs {
			if birth <= v.hi && retire >= v.lo {
				want = true
			}
		}
		return tb.Intersects(birth, retire) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestCoversEra(t *testing.T) {
	if CoversEra(None, 0, None) {
		t.Fatal("None must never cover")
	}
	if !CoversEra(5, 5, 5) {
		t.Fatal("era equal to both endpoints must cover")
	}
	if CoversEra(4, 5, 9) || CoversEra(10, 5, 9) {
		t.Fatal("era outside interval covered")
	}
}

// TestReservationPadding pins the anti-false-sharing layout: consecutive
// reservations must not share a 64-byte line for their hot fields.
func TestReservationPadding(t *testing.T) {
	tb := NewTable(2)
	a := uintptr(unsafe.Pointer(&tb.res[0].lower))
	b := uintptr(unsafe.Pointer(&tb.res[1].lower))
	if d := b - a; d < 64 {
		t.Fatalf("adjacent reservations %d bytes apart; want >= 64", d)
	}
}
