package ds

import (
	"fmt"
	"math/bits"
	"sort"

	"ibr/internal/core"
	"ibr/internal/guard"
	"ibr/internal/mem"
)

// HashMap is Michael's lock-free hash map (§5 of the paper): a fixed array
// of buckets, each an independent Harris–Michael ordered list. It is the
// paper's high-throughput, short-traversal workload — the opposite extreme
// from the single list.
type HashMap struct {
	lc      listCore
	buckets []core.Ptr
	shift   uint
}

// NewHashMap builds a hash map with cfg.Buckets buckets (default
// DefaultBuckets; rounded up to a power of two).
func NewHashMap(cfg Config) (*HashMap, error) {
	n := cfg.Buckets
	if n == 0 {
		n = DefaultBuckets
	}
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n))
	}
	if n < 1 {
		return nil, fmt.Errorf("ds: invalid bucket count %d", cfg.Buckets)
	}
	popt := mem.Options[listNode]{Threads: cfg.Core.Threads, MaxSlots: cfg.PoolSlots}
	if cfg.Poison {
		popt.Poison = listPoison
	}
	pool := mem.New[listNode](popt)
	s, err := core.New(cfg.Scheme, pool, cfg.Core)
	if err != nil {
		return nil, err
	}
	return &HashMap{
		lc:      listCore{w: guard.New(s, pool)},
		buckets: make([]core.Ptr, n),
		shift:   uint(64 - bits.Len(uint(n-1))),
	}, nil
}

// bucket hashes key to its bucket head with a Fibonacci multiplicative
// hash, which spreads the benchmark's small dense key range well.
func (m *HashMap) bucket(key uint64) *core.Ptr {
	return &m.buckets[(key*0x9E3779B97F4A7C15)>>m.shift]
}

// Name returns "hashmap".
func (m *HashMap) Name() string { return "hashmap" }

// Insert adds key→val; false if present.
func (m *HashMap) Insert(tid int, key, val uint64) bool {
	return m.lc.insert(tid, m.bucket(key), key, val)
}

// Remove deletes key; false if absent.
func (m *HashMap) Remove(tid int, key uint64) bool {
	return m.lc.remove(tid, m.bucket(key), key)
}

// Get returns the value bound to key.
func (m *HashMap) Get(tid int, key uint64) (uint64, bool) {
	return m.lc.get(tid, m.bucket(key), key)
}

// Fill bulk-loads pairs (single-threaded).
func (m *HashMap) Fill(pairs []KV) {
	perBucket := make(map[*core.Ptr][]KV)
	for _, kv := range pairs {
		b := m.bucket(kv.Key)
		perBucket[b] = append(perBucket[b], kv)
	}
	for b, kvs := range perBucket {
		sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
		dedup := kvs[:0]
		for i, kv := range kvs {
			if i == 0 || kv.Key != kvs[i-1].Key {
				dedup = append(dedup, kv)
			}
		}
		m.lc.fill(b, dedup)
	}
}

// Keys returns the ascending key set (quiescence only).
func (m *HashMap) Keys() []uint64 {
	var out []uint64
	for i := range m.buckets {
		out = m.lc.keys(&m.buckets[i], out)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Scheme exposes the reclamation scheme.
func (m *HashMap) Scheme() core.Scheme { return m.lc.w.Scheme() }

// PoolStats exposes allocator counters.
func (m *HashMap) PoolStats() mem.Stats { return m.lc.w.Pool().Stats() }
