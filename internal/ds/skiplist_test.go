package ds

import (
	"math/rand"
	"sync"
	"testing"

	"ibr/internal/core"
)

func newTestSkipList(t *testing.T, scheme string, threads int) *SkipList {
	t.Helper()
	sl, err := NewSkipList(testConfig(scheme, threads))
	if err != nil {
		t.Fatal(err)
	}
	return sl
}

func TestSkipListEmpty(t *testing.T) {
	sl := newTestSkipList(t, "ebr", 1)
	if _, ok := sl.Get(0, 1); ok {
		t.Fatal("Get on empty skiplist found a key")
	}
	if sl.Remove(0, 1) {
		t.Fatal("Remove on empty skiplist succeeded")
	}
	if err := sl.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSkipListLevelDistribution: tower heights must be roughly geometric;
// a broken generator (all height 1 or all max) would degrade to a list.
func TestSkipListLevelDistribution(t *testing.T) {
	sl := newTestSkipList(t, "ebr", 1)
	counts := make([]int, MaxLevel+1)
	for i := 0; i < 100000; i++ {
		l := sl.randomLevel(0)
		if l < 1 || l > MaxLevel {
			t.Fatalf("randomLevel = %d out of [1,%d]", l, MaxLevel)
		}
		counts[l]++
	}
	if counts[1] < 40000 || counts[1] > 60000 {
		t.Fatalf("P(level=1) = %d/100000, want ~0.5", counts[1])
	}
	if counts[2] < 20000 || counts[2] > 30000 {
		t.Fatalf("P(level=2) = %d/100000, want ~0.25", counts[2])
	}
	tall := 0
	for l := 5; l <= MaxLevel; l++ {
		tall += counts[l]
	}
	if tall < 3000 || tall > 10000 {
		t.Fatalf("P(level>=5) = %d/100000, want ~0.0625", tall)
	}
}

// TestSkipListTallTowersIndex: with enough keys, upper levels must be
// populated and Validate's sub-sequence property must hold.
func TestSkipListTallTowers(t *testing.T) {
	sl := newTestSkipList(t, "tagibr", 1)
	for k := uint64(0); k < 4096; k++ {
		sl.Insert(0, k, k)
	}
	levelsUsed := 0
	for l := 0; l < MaxLevel; l++ {
		if !sl.head.next[l].Raw().IsNil() {
			levelsUsed++
		}
	}
	if levelsUsed < 8 {
		t.Fatalf("only %d levels populated for 4096 keys", levelsUsed)
	}
	if err := sl.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSkipListLinkCountLifecycle: a node's link count must reach zero (and
// the node be reclaimed) after removal, for towers of every height.
func TestSkipListLinkCountLifecycle(t *testing.T) {
	sl := newTestSkipList(t, "ebr", 1)
	for k := uint64(0); k < 2000; k++ {
		sl.Insert(0, k, k)
	}
	for k := uint64(0); k < 2000; k++ {
		if !sl.Remove(0, k) {
			t.Fatalf("Remove(%d) failed", k)
		}
	}
	sl.Sweep(0)
	core.DrainAll(sl.Scheme(), 1)
	if live := sl.PoolStats().Live(); live != 0 {
		t.Fatalf("%d towers leaked (link counts stuck)", live)
	}
}

// TestSkipListConcurrentSameKey: racing insert/remove of one key must stay
// linearizable (each successful remove is preceded by a successful insert).
func TestSkipListConcurrentSameKey(t *testing.T) {
	const threads = 4
	sl := newTestSkipList(t, "tagibr", threads)
	var ins, rem [threads]int
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				if i%2 == tid%2 {
					if sl.Insert(tid, 7, uint64(tid)) {
						ins[tid]++
					}
				} else {
					if sl.Remove(tid, 7) {
						rem[tid]++
					}
				}
			}
		}(tid)
	}
	wg.Wait()
	totalIns, totalRem := 0, 0
	for i := 0; i < threads; i++ {
		totalIns += ins[i]
		totalRem += rem[i]
	}
	_, present := sl.Get(0, 7)
	want := totalIns - totalRem
	got := 0
	if present {
		got = 1
	}
	if want != got {
		t.Fatalf("inserts %d - removes %d = %d, but present=%v", totalIns, totalRem, want, present)
	}
}

// TestSkipListSweepReleasesGhosts: artificially interleave an insert's
// late upper-level link with removal traffic, then check Sweep leaves no
// ghost routers behind. (Driven statistically: heavy same-key churn with
// tall towers.)
func TestSkipListSweepReleasesGhosts(t *testing.T) {
	const threads = 4
	sl := newTestSkipList(t, "2geibr", threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid)))
			for i := 0; i < 10000; i++ {
				k := uint64(rng.Intn(32))
				if rng.Intn(2) == 0 {
					sl.Insert(tid, k, k)
				} else {
					sl.Remove(tid, k)
				}
			}
		}(tid)
	}
	wg.Wait()
	sl.Sweep(0)
	core.DrainAll(sl.Scheme(), threads)
	keys := sl.Keys()
	if live := sl.PoolStats().Live(); live != uint64(len(keys)) {
		t.Fatalf("live %d != keys %d after sweep (ghost routers leaked)", live, len(keys))
	}
	if err := sl.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSkipListRejectsHPHE: fixed-slot schemes cannot run the skip list.
func TestSkipListSchemeRestrictions(t *testing.T) {
	for _, scheme := range []string{"hp", "he", "poibr"} {
		if SchemeSupports(scheme, "skiplist") {
			t.Errorf("SchemeSupports(%q, skiplist) = true", scheme)
		}
	}
	for _, scheme := range []string{"none", "ebr", "tagibr", "tagibr-faa", "tagibr-wcas", "tagibr-tpa", "2geibr"} {
		if !SchemeSupports(scheme, "skiplist") {
			t.Errorf("SchemeSupports(%q, skiplist) = false", scheme)
		}
	}
}
