// Package ds implements the concurrent data structures ("rideables" in the
// paper's artifact) used by the evaluation in §5 of "Interval-Based Memory
// Reclamation": the Harris–Michael ordered list, Michael's lock-free hash
// map, the Natarajan–Mittal external binary search tree, and a lock-free
// variant of the Bonsai tree (a persistent balanced BST). A Treiber stack
// and a Michael–Scott queue round out the collection as additional
// persistent / FIFO workloads.
//
// Every structure stores its nodes in a mem.Pool and accesses every shared
// pointer through a core.Scheme, so each can be run under any reclamation
// scheme (subject to the paper's restrictions: POIBR requires a persistent
// structure; HP/HE cannot run the Bonsai tree, whose rebalancing needs an
// unbounded number of protections).
package ds

import (
	"fmt"

	"ibr/internal/core"
	"ibr/internal/mem"
)

// Map is the shared key-value interface the benchmarks drive. Keys must be
// strictly less than KeyLimit (large sentinel keys are reserved for the
// Natarajan–Mittal tree). A given tid must be used by one goroutine at a
// time.
type Map interface {
	// Name returns the structure's registry name, e.g. "list".
	Name() string
	// Insert adds key→val; it returns false (and changes nothing) if the
	// key is already present.
	Insert(tid int, key, val uint64) bool
	// Remove deletes key, returning false if it was absent.
	Remove(tid int, key uint64) bool
	// Get returns the value bound to key.
	Get(tid int, key uint64) (uint64, bool)
	// Fill bulk-loads key→val pairs before concurrent use (single-threaded;
	// the benchmark's prefill). Keys need not be sorted or unique.
	Fill(pairs []KV)
	// Keys returns the current key set in ascending order. It must only be
	// called at quiescence (no concurrent operations); tests use it to
	// compare against a model.
	Keys() []uint64
}

// Ranger is the optional ordered-iteration interface: a Map additionally
// implements it when it can scan a key interval in ascending order. Range
// calls fn for every pair with from <= key <= to, ascending, under ONE
// reclamation bracket per call — the serving layer relies on that to make a
// large scan a single long reservation interval (the paper's adversarial
// reader). Consistency is structure-specific: the Bonsai tree scans an
// atomic snapshot, while the list and skip list are weakly consistent —
// keys mutated mid-scan may or may not appear, but every key untouched for
// the scan's duration is reported exactly once and no key twice. fn
// returning false stops the scan. fn must not retain node references
// beyond its return (it receives values, not handles, precisely so it
// cannot); structures without ordered layout (hashmap, nmtree) do not
// implement Ranger and the engine answers StatusUnsupported for them.
type Ranger interface {
	Range(tid int, from, to uint64, fn func(key, val uint64) bool)
}

// KV is a key-value pair for Fill.
type KV struct{ Key, Val uint64 }

// KeyLimit is the exclusive upper bound on application keys; values at or
// above it are reserved for internal sentinels.
const KeyLimit = uint64(1) << 62

// Instrumented exposes the plumbing beneath a Map for benchmarks and tests.
type Instrumented interface {
	Scheme() core.Scheme
	PoolStats() mem.Stats
}

// Config carries everything needed to build a structure+scheme pair.
type Config struct {
	// Scheme is a core registry name ("ebr", "tagibr", ...).
	Scheme string
	// Core tunes the reclamation scheme; Core.Threads is required.
	Core core.Options
	// PoolSlots caps the node pool (0 = mem.DefaultMaxSlots).
	PoolSlots uint64
	// Buckets sets the hash map's bucket count (0 = DefaultBuckets).
	Buckets int
	// Poison enables sentinel-poisoning of freed nodes (tests).
	Poison bool
}

// DefaultBuckets is the hash map bucket count used by the benchmarks.
const DefaultBuckets = 1 << 14

// Structures lists the registry names in the order of the paper's figures,
// then the extension structures.
func Structures() []string {
	return []string{"list", "hashmap", "nmtree", "bonsai", "skiplist", "stack", "msqueue"}
}

// MapStructures returns the registry names that implement Map (valid -r
// values for the benchmark and server commands), sorted lexically.
func MapStructures() []string {
	return []string{"bonsai", "hashmap", "list", "nmtree", "skiplist"}
}

// IsMapStructure reports whether name names a Map structure.
func IsMapStructure(name string) bool {
	for _, n := range MapStructures() {
		if n == name {
			return true
		}
	}
	return false
}

// NewMap builds a key-value structure by name. "stack" and "msqueue" are
// not Maps; use NewStack / NewQueue for those.
func NewMap(structure string, cfg Config) (Map, error) {
	switch structure {
	case "list":
		return NewList(cfg)
	case "hashmap":
		return NewHashMap(cfg)
	case "nmtree":
		return NewNMTree(cfg)
	case "bonsai":
		return NewBonsai(cfg)
	case "skiplist":
		return NewSkipList(cfg)
	}
	return nil, fmt.Errorf("ds: unknown map structure %q", structure)
}

// SchemeSupports reports whether a scheme can legally run a structure:
// POIBR requires a persistent structure (bonsai, stack); structures whose
// operations hold an unbounded or large number of simultaneous references
// (the Bonsai tree's rotations, the skip list's pred/succ arrays) rule out
// the fixed-slot pointer-based schemes (the paper omits HP and HE from
// Fig. 8d for exactly this reason).
func SchemeSupports(scheme, structure string) bool {
	persistent := structure == "bonsai" || structure == "stack"
	switch scheme {
	case "poibr":
		return persistent
	case "hp", "he":
		return structure != "bonsai" && structure != "skiplist"
	}
	// Everything else — the epoch/interval family plus the post-paper
	// hyaline and debra engines — protects whole operations rather than
	// individual pointers, so any structure is legal.
	return true
}
