package ds

import (
	"fmt"

	"ibr/internal/core"
	"ibr/internal/mem"
)

// Bonsai is a lock-free variant of the Bonsai tree (Clements, Kaashoek &
// Zeldovich, ASPLOS 2012): a *persistent*, weight-balanced binary search
// tree, the fourth rideable of the IBR paper's evaluation (§5). Every
// update builds a fresh copy of the root-to-target path (plus any rotation
// nodes) and publishes it with a single CAS on the root pointer; all
// pointers except the root are immutable. That makes it the natural
// workload for POIBR (§3.1), whose only instrumented read is the root
// snapshot — and it is why the paper's Fig. 8d/9d include POIBR and omit
// HP/HE (rebalancing touches an unbounded number of nodes, which
// fixed-slot pointer schemes cannot protect).
//
// Balancing follows Adams' weight-balanced algorithm with the proven
// integer parameters ⟨Δ=3, Γ=2⟩ over weights w(t) = size(t)+1.
type Bonsai struct {
	pool *mem.Pool[bonsaiNode]
	s    core.Scheme
	root core.Ptr
	ops  []*bonsaiOp
}

// bonsaiNode is immutable after publication; temp is a private build-time
// field (index+1 in the creating operation's created list) and is zeroed
// before the node becomes reachable.
type bonsaiNode struct {
	key, val uint64
	size     uint64
	temp     uint64
	left     core.Ptr
	right    core.Ptr
}

func bonsaiPoison(n *bonsaiNode) { n.key = ^uint64(0); n.val = ^uint64(0) }

const (
	wbDelta = 3 // sibling weight ratio that triggers a rotation
	wbRatio = 2 // inner/outer weight ratio that selects a double rotation
)

// NewBonsai builds a Bonsai tree running under cfg.Scheme.
func NewBonsai(cfg Config) (*Bonsai, error) {
	popt := mem.Options[bonsaiNode]{Threads: cfg.Core.Threads, MaxSlots: cfg.PoolSlots}
	if cfg.Poison {
		popt.Poison = bonsaiPoison
	}
	pool := mem.New[bonsaiNode](popt)
	s, err := core.New(cfg.Scheme, pool, cfg.Core)
	if err != nil {
		return nil, err
	}
	t := &Bonsai{pool: pool, s: s}
	t.ops = make([]*bonsaiOp, cfg.Core.Threads)
	for i := range t.ops {
		t.ops[i] = &bonsaiOp{t: t, tid: i}
	}
	return t, nil
}

// bonsaiOp is one thread's scratch state for building a new version:
// created tracks private nodes (freed wholesale if the publish CAS fails),
// replaced tracks published nodes copied out of the new version (retired
// wholesale if the publish succeeds).
type bonsaiOp struct {
	t        *Bonsai
	tid      int
	created  []mem.Handle
	replaced []mem.Handle
	failed   bool // allocator exhausted mid-build
}

func (op *bonsaiOp) reset() {
	op.created = op.created[:0]
	op.replaced = op.replaced[:0]
	op.failed = false
}

func (op *bonsaiOp) read(p *core.Ptr) mem.Handle {
	return op.t.s.Read(op.tid, 0, p)
}

func (op *bonsaiOp) wt(h mem.Handle) uint64 {
	if h.IsNil() {
		return 1
	}
	return op.t.pool.Get(h).size + 1
}

// mk builds a private node. On allocator exhaustion it sets failed and
// returns Nil; callers propagate outward and the operation fails cleanly.
func (op *bonsaiOp) mk(key, val uint64, l, r mem.Handle) mem.Handle {
	h := op.t.s.Alloc(op.tid)
	if h.IsNil() {
		op.failed = true
		return mem.Nil
	}
	n := op.t.pool.Get(h)
	n.key, n.val = key, val
	n.size = op.wt(l) + op.wt(r) - 1 // = size(l)+size(r)+1
	n.temp = uint64(len(op.created)) + 1
	op.t.s.Write(op.tid, &n.left, l)
	op.t.s.Write(op.tid, &n.right, r)
	op.created = append(op.created, h)
	return h
}

// open disassembles a node for rebuilding. A private (just-created) node is
// freed on the spot — it was never reachable; a published node is recorded
// for retirement after a successful publish.
func (op *bonsaiOp) open(h mem.Handle) (key, val uint64, l, r mem.Handle) {
	n := op.t.pool.Get(h)
	key, val = n.key, n.val
	l, r = op.read(&n.left), op.read(&n.right)
	if n.temp != 0 {
		idx := n.temp - 1
		last := len(op.created) - 1
		op.created[idx] = op.created[last]
		op.t.pool.Get(op.created[idx]).temp = idx + 1
		op.created = op.created[:last]
		//ibrlint:ignore never published; h is a private build-time node of this op's version
		op.t.pool.Free(op.tid, h)
	} else {
		op.replaced = append(op.replaced, h)
	}
	return
}

// seal zeroes the private temp fields; it must run before the publish CAS
// so readers of the new version never observe build-time state.
func (op *bonsaiOp) seal() {
	for _, h := range op.created {
		op.t.pool.Get(h).temp = 0
	}
}

func (op *bonsaiOp) freeCreated() {
	for _, h := range op.created {
		//ibrlint:ignore never published; the op's publish CAS failed, its created nodes stayed private
		op.t.pool.Free(op.tid, h)
	}
	op.created = op.created[:0]
	op.replaced = op.replaced[:0]
}

func (op *bonsaiOp) retireReplaced() {
	for _, h := range op.replaced {
		op.t.s.Retire(op.tid, h)
	}
	op.replaced = op.replaced[:0]
}

// balance is Adams' smart constructor: it builds a node for (key, val, l, r)
// and restores the weight-balance invariant with a single or double
// rotation if one side has grown too heavy (the caller changed a subtree by
// at most one element).
func (op *bonsaiOp) balance(key, val uint64, l, r mem.Handle) mem.Handle {
	if op.failed {
		return mem.Nil
	}
	lw, rw := op.wt(l), op.wt(r)
	switch {
	case lw+rw <= 3: // at most one real child: always balanced
		return op.mk(key, val, l, r)
	case rw > wbDelta*lw: // right too heavy: rotate left
		rk, rv, rl, rr := op.open(r)
		if op.wt(rl) < wbRatio*op.wt(rr) {
			return op.mk(rk, rv, op.mk(key, val, l, rl), rr)
		}
		rlk, rlv, rll, rlr := op.open(rl)
		return op.mk(rlk, rlv, op.mk(key, val, l, rll), op.mk(rk, rv, rlr, rr))
	case lw > wbDelta*rw: // left too heavy: rotate right
		lk, lv, ll, lr := op.open(l)
		if op.wt(lr) < wbRatio*op.wt(ll) {
			return op.mk(lk, lv, ll, op.mk(key, val, lr, r))
		}
		lrk, lrv, lrl, lrr := op.open(lr)
		return op.mk(lrk, lrv, op.mk(lk, lv, ll, lrl), op.mk(key, val, lrr, r))
	default:
		return op.mk(key, val, l, r)
	}
}

// insert returns the root of a new version containing key→val, or
// (h, false) if the key was already present (no nodes consumed).
func (op *bonsaiOp) insert(h mem.Handle, key, val uint64) (mem.Handle, bool) {
	if h.IsNil() {
		return op.mk(key, val, mem.Nil, mem.Nil), true
	}
	n := op.t.pool.Get(h)
	switch {
	case key == n.key:
		return h, false
	case key < n.key:
		nl, ok := op.insert(op.read(&n.left), key, val)
		if !ok || op.failed {
			return h, false
		}
		k, v, _, r := op.open(h)
		return op.balance(k, v, nl, r), true
	default:
		nr, ok := op.insert(op.read(&n.right), key, val)
		if !ok || op.failed {
			return h, false
		}
		k, v, l, _ := op.open(h)
		return op.balance(k, v, l, nr), true
	}
}

// remove returns the root of a new version without key, or (h, false) if
// the key was absent.
func (op *bonsaiOp) remove(h mem.Handle, key uint64) (mem.Handle, bool) {
	if h.IsNil() {
		return h, false
	}
	n := op.t.pool.Get(h)
	switch {
	case key < n.key:
		nl, ok := op.remove(op.read(&n.left), key)
		if !ok || op.failed {
			return h, false
		}
		k, v, _, r := op.open(h)
		return op.balance(k, v, nl, r), true
	case key > n.key:
		nr, ok := op.remove(op.read(&n.right), key)
		if !ok || op.failed {
			return h, false
		}
		k, v, l, _ := op.open(h)
		return op.balance(k, v, l, nr), true
	default: // found: glue the children
		_, _, l, r := op.open(h)
		switch {
		case l.IsNil():
			return r, true
		case r.IsNil():
			return l, true
		case op.wt(l) > op.wt(r):
			mk, mv, l2 := op.extractMax(l)
			return op.balance(mk, mv, l2, r), true
		default:
			mk, mv, r2 := op.extractMin(r)
			return op.balance(mk, mv, l, r2), true
		}
	}
}

func (op *bonsaiOp) extractMax(h mem.Handle) (key, val uint64, rest mem.Handle) {
	k, v, l, r := op.open(h)
	if r.IsNil() {
		return k, v, l
	}
	mk, mv, r2 := op.extractMax(r)
	return mk, mv, op.balance(k, v, l, r2)
}

func (op *bonsaiOp) extractMin(h mem.Handle) (key, val uint64, rest mem.Handle) {
	k, v, l, r := op.open(h)
	if l.IsNil() {
		return k, v, r
	}
	mk, mv, l2 := op.extractMin(l)
	return mk, mv, op.balance(k, v, l2, r)
}

// Name returns "bonsai".
func (t *Bonsai) Name() string { return "bonsai" }

// update runs one copy-and-publish round trip per attempt until the root
// CAS lands (or the operation is a no-op).
func (t *Bonsai) update(tid int, build func(op *bonsaiOp, root mem.Handle) (mem.Handle, bool)) bool {
	s := t.s
	s.StartOp(tid)
	defer s.EndOp(tid)
	op := t.ops[tid]
	fails := 0
	for {
		op.reset()
		oldRoot := s.ReadRoot(tid, 0, &t.root)
		newRoot, changed := build(op, oldRoot)
		if op.failed {
			op.freeCreated()
			return false // allocator exhausted: fail the operation
		}
		if !changed {
			op.freeCreated() // defensive; build leaves nothing on a no-op
			return false
		}
		op.seal()
		if s.CompareAndSwap(tid, &t.root, oldRoot, newRoot) {
			op.retireReplaced()
			return true
		}
		op.freeCreated()
		fails++
		if fails >= restartThreshold {
			fails = 0
			s.RestartOp(tid) // no shared references held here
		}
	}
}

// Insert adds key→val; false if present.
func (t *Bonsai) Insert(tid int, key, val uint64) bool {
	checkKey(key)
	return t.update(tid, func(op *bonsaiOp, root mem.Handle) (mem.Handle, bool) {
		return op.insert(root, key, val)
	})
}

// Remove deletes key; false if absent.
func (t *Bonsai) Remove(tid int, key uint64) bool {
	checkKey(key)
	return t.update(tid, func(op *bonsaiOp, root mem.Handle) (mem.Handle, bool) {
		return op.remove(root, key)
	})
}

// Get returns the value bound to key by traversing one immutable snapshot.
func (t *Bonsai) Get(tid int, key uint64) (uint64, bool) {
	checkKey(key)
	s := t.s
	s.StartOp(tid)
	defer s.EndOp(tid)
	h := s.ReadRoot(tid, 0, &t.root)
	for !h.IsNil() {
		n := t.pool.Get(h)
		switch {
		case key == n.key:
			return n.val, true
		case key < n.key:
			h = s.Read(tid, 0, &n.left)
		default:
			h = s.Read(tid, 0, &n.right)
		}
	}
	return 0, false
}

// Fill bulk-loads pairs (single-threaded) through the normal insert path.
func (t *Bonsai) Fill(pairs []KV) {
	for _, kv := range pairs {
		t.Insert(0, kv.Key, kv.Val)
	}
}

// Keys returns the ascending key set (quiescence only).
//
//ibrlint:ignore quiescence-only: documented to run with no concurrent operations
func (t *Bonsai) Keys() []uint64 {
	var out []uint64
	var walk func(h mem.Handle)
	walk = func(h mem.Handle) {
		if h.IsNil() {
			return
		}
		n := t.pool.Get(h)
		walk(n.left.Raw())
		out = append(out, n.key)
		walk(n.right.Raw())
	}
	walk(t.root.Raw())
	return out
}

// Validate checks the structural invariants at quiescence: BST order,
// accurate sizes, and the ⟨Δ,Γ⟩ weight-balance bound. Tests call it after
// concurrent stress.
//
//ibrlint:ignore quiescence-only: documented to run with no concurrent operations
func (t *Bonsai) Validate() error {
	var walk func(h mem.Handle, lo, hi uint64) (uint64, error)
	walk = func(h mem.Handle, lo, hi uint64) (uint64, error) {
		if h.IsNil() {
			return 0, nil
		}
		n := t.pool.Get(h)
		if n.key < lo || n.key >= hi {
			return 0, fmt.Errorf("bonsai: key %d outside (%d,%d)", n.key, lo, hi)
		}
		ls, err := walk(n.left.Raw(), lo, n.key)
		if err != nil {
			return 0, err
		}
		rs, err := walk(n.right.Raw(), n.key+1, hi)
		if err != nil {
			return 0, err
		}
		if n.size != ls+rs+1 {
			return 0, fmt.Errorf("bonsai: node %d size %d, want %d", n.key, n.size, ls+rs+1)
		}
		lw, rw := ls+1, rs+1
		if lw+rw > 4 && (lw > wbDelta*rw || rw > wbDelta*lw) {
			return 0, fmt.Errorf("bonsai: node %d unbalanced (weights %d/%d)", n.key, lw, rw)
		}
		return ls + rs + 1, nil
	}
	_, err := walk(t.root.Raw(), 0, ^uint64(0))
	return err
}

// Scheme exposes the reclamation scheme.
func (t *Bonsai) Scheme() core.Scheme { return t.s }

// PoolStats exposes allocator counters.
func (t *Bonsai) PoolStats() mem.Stats { return t.pool.Stats() }

// Range calls fn in ascending key order for every pair with from <= key <=
// to, over one immutable snapshot of the tree: the traversal observes a
// single linearization point (the root read) regardless of concurrent
// updates — the signature capability of a persistent structure under
// interval-based reclamation, impossible to get this cheaply from the
// mutable rideables. fn returning false stops the scan.
func (t *Bonsai) Range(tid int, from, to uint64, fn func(key, val uint64) bool) {
	s := t.s
	s.StartOp(tid)
	defer s.EndOp(tid)
	root := s.ReadRoot(tid, 0, &t.root)
	var walk func(h mem.Handle) bool
	walk = func(h mem.Handle) bool {
		if h.IsNil() {
			return true
		}
		n := t.pool.Get(h)
		if n.key > from {
			if !walk(s.Read(tid, 0, &n.left)) {
				return false
			}
		}
		if n.key >= from && n.key <= to {
			if !fn(n.key, n.val) {
				return false
			}
		}
		if n.key < to {
			return walk(s.Read(tid, 0, &n.right))
		}
		return true
	}
	walk(root)
}
