package ds

import (
	"ibr/internal/core"
	"ibr/internal/mem"
)

// Queue is the Michael–Scott lock-free FIFO queue, an extra rideable beyond
// the paper's four (its authors' artifact ships one too). It exercises a
// different reclamation pattern from the search structures: every dequeue
// retires the old dummy node, so the retire rate equals the operation rate.
// Not persistent (the tail node's next field mutates), so POIBR does not
// apply.
type Queue struct {
	pool *mem.Pool[queueNode]
	s    core.Scheme
	head core.Ptr // dummy node
	tail core.Ptr
}

type queueNode struct {
	val  uint64
	next core.Ptr
}

// NewQueue builds a Michael–Scott queue running under cfg.Scheme.
func NewQueue(cfg Config) (*Queue, error) {
	popt := mem.Options[queueNode]{Threads: cfg.Core.Threads, MaxSlots: cfg.PoolSlots}
	if cfg.Poison {
		popt.Poison = func(n *queueNode) { n.val = ^uint64(0) }
	}
	pool := mem.New[queueNode](popt)
	s, err := core.New(cfg.Scheme, pool, cfg.Core)
	if err != nil {
		return nil, err
	}
	q := &Queue{pool: pool, s: s}
	// Bracket the dummy-node setup like any operation: construction is
	// single-threaded, but a uniform reservation discipline is what ibrlint
	// can check.
	s.StartOp(0)
	defer s.EndOp(0)
	dummy := s.Alloc(0)
	pool.Get(dummy).val = 0
	s.Write(0, &pool.Get(dummy).next, mem.Nil)
	s.Write(0, &q.head, dummy)
	s.Write(0, &q.tail, dummy)
	return q, nil
}

// Name returns "msqueue".
func (q *Queue) Name() string { return "msqueue" }

// Enqueue appends val. It returns false only on pool exhaustion.
func (q *Queue) Enqueue(tid int, val uint64) bool {
	s := q.s
	s.StartOp(tid)
	defer s.EndOp(tid)
	h := s.Alloc(tid)
	if h.IsNil() {
		return false
	}
	n := q.pool.Get(h)
	n.val = val
	s.Write(tid, &n.next, mem.Nil)
	for {
		tail := s.Read(tid, 0, &q.tail)
		tn := q.pool.Get(tail)
		next := s.Read(tid, 1, &tn.next)
		if q.tail.Raw() != tail {
			continue // tail moved while we looked
		}
		if !next.IsNil() {
			// Tail lags: help swing it, then retry.
			s.CompareAndSwap(tid, &q.tail, tail, next)
			continue
		}
		if s.CompareAndSwap(tid, &tn.next, mem.Nil, h) {
			s.CompareAndSwap(tid, &q.tail, tail, h) // ok to fail: someone helped
			return true
		}
	}
}

// Dequeue removes and returns the oldest value.
func (q *Queue) Dequeue(tid int) (uint64, bool) {
	s := q.s
	s.StartOp(tid)
	defer s.EndOp(tid)
	for {
		head := s.Read(tid, 0, &q.head)
		tail := s.Read(tid, 2, &q.tail)
		hn := q.pool.Get(head)
		next := s.Read(tid, 1, &hn.next)
		if q.head.Raw() != head {
			continue // head moved; re-read the triple
		}
		if head.SameAddr(tail) {
			if next.IsNil() {
				return 0, false // empty
			}
			// Tail lags behind a half-finished enqueue: help it.
			s.CompareAndSwap(tid, &q.tail, tail, next)
			continue
		}
		val := q.pool.Get(next).val
		if s.CompareAndSwap(tid, &q.head, head, next) {
			s.Retire(tid, head) // old dummy
			return val, true
		}
	}
}

// Len counts queued values (quiescence only).
//
//ibrlint:ignore quiescence-only: documented to run with no concurrent operations
func (q *Queue) Len() int {
	n := 0
	for h := q.pool.Get(q.head.Raw()).next.Raw(); !h.IsNil(); h = q.pool.Get(h).next.Raw() {
		n++
	}
	return n
}

// Scheme exposes the reclamation scheme.
func (q *Queue) Scheme() core.Scheme { return q.s }

// PoolStats exposes allocator counters.
func (q *Queue) PoolStats() mem.Stats { return q.pool.Stats() }
