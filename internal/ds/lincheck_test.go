package ds

import (
	"math/rand"
	"sync"
	"testing"

	"ibr/internal/lincheck"
)

// TestLinearizability records real concurrent histories on a small shared
// key set and verifies each key's history against the sequential
// set-register spec with the lincheck DFS. Unlike the disjoint-key model
// tests, this validates *contended* interleavings — the place where an
// unsound reclamation scheme manifests as stale reads or lost updates.
// Histories are kept short (per round) so every key's history is
// conclusively checkable.
func TestLinearizability(t *testing.T) {
	const (
		threads     = 3
		keys        = 4
		opsPerRound = 4
		rounds      = 150
	)
	for _, structure := range mapStructures {
		for _, scheme := range []string{"none", "ebr", "hp", "tagibr", "tagibr-wcas", "2geibr", "hyaline", "debra"} {
			if !SchemeSupports(scheme, structure) {
				continue
			}
			t.Run(structure+"/"+scheme, func(t *testing.T) {
				m := newTestMap(t, structure, scheme, threads)
				present := map[uint64]bool{}
				for round := 0; round < rounds; round++ {
					rec := lincheck.NewRecorder(threads)
					var wg sync.WaitGroup
					for tid := 0; tid < threads; tid++ {
						wg.Add(1)
						go func(tid int) {
							defer wg.Done()
							rng := rand.New(rand.NewSource(int64(round*threads + tid)))
							for i := 0; i < opsPerRound; i++ {
								key := uint64(rng.Intn(keys))
								t0 := rec.Begin()
								switch rng.Intn(3) {
								case 0:
									ok := m.Insert(tid, key, key)
									rec.Record(tid, lincheck.Insert, key, ok, t0)
								case 1:
									ok := m.Remove(tid, key)
									rec.Record(tid, lincheck.Remove, key, ok, t0)
								default:
									_, ok := m.Get(tid, key)
									rec.Record(tid, lincheck.Get, key, ok, t0)
								}
							}
						}(tid)
					}
					wg.Wait()
					rep := lincheck.Check(rec.Events(), func(k uint64) bool { return present[k] })
					if err := rep.Err(); err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
					if rep.Inconclusive > 0 {
						t.Fatalf("round %d: %d keys inconclusive (history too long)", round, rep.Inconclusive)
					}
					// Refresh the quiescent state for the next round.
					for k := uint64(0); k < keys; k++ {
						_, ok := m.Get(0, k)
						present[k] = ok
					}
				}
			})
		}
	}
}

// TestRangeLinearizability drives concurrent scans against insert/remove
// churn on every Ranger structure and checks the combined history: each
// scan's structural contract (ascending, in-bounds, duplicate-free) via
// RecordRange, and each key's observations against its own history via the
// per-key DFS. A reclamation bug in the scan path — which holds one
// reservation across the whole traversal — shows up as a phantom (a freed
// node's key returned) or a lost key.
func TestRangeLinearizability(t *testing.T) {
	const (
		threads     = 3
		keys        = 4
		opsPerRound = 4
		rounds      = 150
	)
	universe := make([]uint64, keys)
	for i := range universe {
		universe[i] = uint64(i)
	}
	for _, structure := range mapStructures {
		for _, scheme := range []string{"none", "ebr", "tagibr", "2geibr", "hyaline", "debra"} {
			if !SchemeSupports(scheme, structure) {
				continue
			}
			m := newTestMap(t, structure, scheme, threads)
			r, ok := m.(Ranger)
			if !ok {
				continue
			}
			t.Run(structure+"/"+scheme, func(t *testing.T) {
				present := map[uint64]bool{}
				for round := 0; round < rounds; round++ {
					rec := lincheck.NewRecorder(threads)
					var (
						wg      sync.WaitGroup
						scanErr error
						errMu   sync.Mutex
					)
					for tid := 0; tid < threads; tid++ {
						wg.Add(1)
						go func(tid int) {
							defer wg.Done()
							rng := rand.New(rand.NewSource(int64(round*threads+tid) + 777))
							for i := 0; i < opsPerRound; i++ {
								key := uint64(rng.Intn(keys))
								t0 := rec.Begin()
								switch rng.Intn(4) {
								case 0:
									ok := m.Insert(tid, key, key)
									rec.Record(tid, lincheck.Insert, key, ok, t0)
								case 1:
									ok := m.Remove(tid, key)
									rec.Record(tid, lincheck.Remove, key, ok, t0)
								case 2:
									_, ok := m.Get(tid, key)
									rec.Record(tid, lincheck.Get, key, ok, t0)
								default:
									var got []uint64
									r.Range(tid, 0, keys-1, func(k, v uint64) bool {
										got = append(got, k)
										return true
									})
									if err := rec.RecordRange(tid, 0, keys-1, got, universe, t0); err != nil {
										errMu.Lock()
										if scanErr == nil {
											scanErr = err
										}
										errMu.Unlock()
										return
									}
								}
							}
						}(tid)
					}
					wg.Wait()
					if scanErr != nil {
						t.Fatalf("round %d: %v", round, scanErr)
					}
					rep := lincheck.Check(rec.Events(), func(k uint64) bool { return present[k] })
					if err := rep.Err(); err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
					if rep.Inconclusive > 0 {
						t.Fatalf("round %d: %d keys inconclusive (history too long)", round, rep.Inconclusive)
					}
					for k := uint64(0); k < keys; k++ {
						_, ok := m.Get(0, k)
						present[k] = ok
					}
				}
			})
		}
	}
}
