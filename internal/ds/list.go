package ds

import (
	"sort"

	"ibr/internal/core"
	"ibr/internal/mem"
)

// listNode is a Harris–Michael list node. The mark bit of §9.8 of Herlihy &
// Shavit (Harris's "logical deletion") lives in the *next pointer's* mark0
// bit, as in the original algorithms: a node whose next pointer is marked
// is logically deleted.
type listNode struct {
	key, val uint64
	next     core.Ptr
}

// listPoison plants an impossible key so any traversal through a freed node
// is caught by tests (application keys are < KeyLimit).
func listPoison(n *listNode) { n.key = ^uint64(0); n.val = ^uint64(0) }

// listCore implements the Harris–Michael ordered-list algorithm over an
// arbitrary head pointer. It backs both the List structure (one head) and
// Michael's hash map (one head per bucket), mirroring how the paper's
// artifact composes them.
//
// Protection-slot discipline (HP/HE): slot 0 guards prev, slot 1 guards
// curr, slot 2 guards next; slots rotate as the traversal advances. Every
// other scheme ignores the slot numbers.
type listCore struct {
	pool *mem.Pool[listNode]
	s    core.Scheme
}

// Protection slot roles for the list traversal.
const (
	slotPrev = 0
	slotCurr = 1
	slotNext = 2
)

// restartThreshold is the §4.3.1 starvation bound: after this many failed
// CAS/validation retries an operation renews its reservation (RestartOp)
// before restarting from the head.
const restartThreshold = 16

// findResult carries the window returned by find: prev is the pointer cell
// whose target is curr (or would be, for an insertion point).
type findResult struct {
	prev  *core.Ptr
	curr  mem.Handle // unmarked
	found bool
	// slot indices protecting prev's node and curr after rotation
	prevSlot, currSlot, nextSlot int
}

// find locates the window (prev, curr) for key per Michael's algorithm:
// curr is the first unmarked node with curr.key >= key. It unlinks (and
// retires) any marked nodes it encounters. fails counts retries for the
// RestartOp cadence and persists across restarts within one operation.
func (lc *listCore) find(tid int, head *core.Ptr, key uint64, fails *int) findResult {
	s := lc.s
retry:
	if *fails >= restartThreshold {
		*fails = 0
		s.RestartOp(tid)
	}
	pp, cc, nn := slotPrev, slotCurr, slotNext
	prev := head
	curr := s.ReadRoot(tid, cc, prev).ClearMarks()
	for {
		if curr.IsNil() {
			return findResult{prev: prev, curr: mem.Nil, found: false, prevSlot: pp, currSlot: cc, nextSlot: nn}
		}
		currNode := lc.pool.Get(curr)
		next := s.Read(tid, nn, &currNode.next)
		// Validate: prev must still point to curr, unmarked. A raw load
		// suffices — the value is only compared, never dereferenced.
		if pv := prev.Raw(); pv.Mark0() || pv.ClearMarks() != curr {
			*fails++
			goto retry
		}
		if next.Mark0() {
			// curr is logically deleted: unlink it. Whoever wins the CAS
			// owns the retirement.
			if !s.CompareAndSwap(tid, prev, curr, next.ClearMarks()) {
				*fails++
				goto retry
			}
			s.Retire(tid, curr)
			curr = next.ClearMarks()
			cc, nn = nn, cc // next's protection slot now guards curr
			continue
		}
		if k := currNode.key; k >= key {
			return findResult{prev: prev, curr: curr, found: k == key, prevSlot: pp, currSlot: cc, nextSlot: nn}
		}
		prev = &currNode.next
		pp, cc, nn = cc, nn, pp // rotate: curr becomes prev, next slot is reused
		curr = next.ClearMarks()
	}
}

// insert adds key→val into the list at head.
func (lc *listCore) insert(tid int, head *core.Ptr, key, val uint64) bool {
	s := lc.s
	s.StartOp(tid)
	defer s.EndOp(tid)
	node := mem.Nil
	fails := 0
	for {
		r := lc.find(tid, head, key, &fails)
		if r.found {
			if !node.IsNil() {
				//ibrlint:ignore never published; no CAS linked the node, so no other thread can hold it
				lc.pool.Free(tid, node)
			}
			return false
		}
		if node.IsNil() {
			node = s.Alloc(tid)
			if node.IsNil() {
				return false // allocator exhausted; fail the operation
			}
			n := lc.pool.Get(node)
			n.key, n.val = key, val
		}
		// Link our private node to the window, then publish.
		s.Write(tid, &lc.pool.Get(node).next, r.curr)
		if s.CompareAndSwap(tid, r.prev, r.curr, node) {
			return true
		}
		fails++
	}
}

// remove deletes key from the list at head.
func (lc *listCore) remove(tid int, head *core.Ptr, key uint64) bool {
	s := lc.s
	s.StartOp(tid)
	defer s.EndOp(tid)
	fails := 0
	for {
		r := lc.find(tid, head, key, &fails)
		if !r.found {
			return false
		}
		currNode := lc.pool.Get(r.curr)
		next := s.Read(tid, r.nextSlot, &currNode.next)
		if next.Mark0() {
			// Another remover beat us to the logical delete.
			fails++
			continue
		}
		// Logical delete: mark curr's next pointer.
		if !s.CompareAndSwap(tid, &currNode.next, next, next.WithMark0()) {
			fails++
			continue
		}
		// Physical unlink; on failure a later find will clean up (and that
		// find's thread will retire the node).
		if s.CompareAndSwap(tid, r.prev, r.curr, next.ClearMarks()) {
			s.Retire(tid, r.curr)
		}
		return true
	}
}

// get looks key up in the list at head. It reuses find, so it helps unlink
// marked nodes like the artifact's Michael-list contains.
func (lc *listCore) get(tid int, head *core.Ptr, key uint64) (uint64, bool) {
	s := lc.s
	s.StartOp(tid)
	defer s.EndOp(tid)
	fails := 0
	r := lc.find(tid, head, key, &fails)
	if !r.found {
		return 0, false
	}
	return lc.pool.Get(r.curr).val, true
}

// fill bulk-loads sorted unique pairs into an empty chain at head,
// single-threaded. Links are written through the scheme so TagIBR tags and
// WCAS packed epochs are consistent.
func (lc *listCore) fill(head *core.Ptr, pairs []KV) {
	s := lc.s
	prev := head
	for _, kv := range pairs {
		h := s.Alloc(0)
		if h.IsNil() {
			panic("ds: pool exhausted during Fill")
		}
		n := lc.pool.Get(h)
		n.key, n.val = kv.Key, kv.Val
		s.Write(0, &n.next, mem.Nil)
		s.Write(0, prev, h)
		prev = &n.next
	}
}

// keys walks the chain at quiescence, returning unmarked keys in order.
func (lc *listCore) keys(head *core.Ptr, out []uint64) []uint64 {
	for h := head.Raw().ClearMarks(); !h.IsNil(); {
		n := lc.pool.Get(h)
		next := n.next.Raw()
		if !next.Mark0() { // skip logically deleted stragglers
			out = append(out, n.key)
		}
		h = next.ClearMarks()
	}
	return out
}

// List is the Harris–Michael sorted linked list (§5 "ordered list of Harris
// and Michael"): the paper's pointer-chasing-heavy workload, where TagIBR's
// cheap reads shine against hazard pointers.
type List struct {
	lc   listCore
	head core.Ptr
}

// NewList builds a list running under cfg.Scheme.
func NewList(cfg Config) (*List, error) {
	popt := mem.Options[listNode]{Threads: cfg.Core.Threads, MaxSlots: cfg.PoolSlots}
	if cfg.Poison {
		popt.Poison = listPoison
	}
	pool := mem.New[listNode](popt)
	s, err := core.New(cfg.Scheme, pool, cfg.Core)
	if err != nil {
		return nil, err
	}
	return &List{lc: listCore{pool: pool, s: s}}, nil
}

// Name returns "list".
func (l *List) Name() string { return "list" }

// Insert adds key→val; false if present.
func (l *List) Insert(tid int, key, val uint64) bool { return l.lc.insert(tid, &l.head, key, val) }

// Remove deletes key; false if absent.
func (l *List) Remove(tid int, key uint64) bool { return l.lc.remove(tid, &l.head, key) }

// Get returns the value bound to key.
func (l *List) Get(tid int, key uint64) (uint64, bool) { return l.lc.get(tid, &l.head, key) }

// Fill bulk-loads pairs (single-threaded).
func (l *List) Fill(pairs []KV) {
	sorted := append([]KV(nil), pairs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	dedup := sorted[:0]
	for i, kv := range sorted {
		if i == 0 || kv.Key != sorted[i-1].Key {
			dedup = append(dedup, kv)
		}
	}
	l.lc.fill(&l.head, dedup)
}

// Keys returns the ascending key set (quiescence only).
func (l *List) Keys() []uint64 { return l.lc.keys(&l.head, nil) }

// Scheme exposes the reclamation scheme.
func (l *List) Scheme() core.Scheme { return l.lc.s }

// PoolStats exposes allocator counters.
func (l *List) PoolStats() mem.Stats { return l.lc.pool.Stats() }

// Range calls fn in ascending key order for every pair with from <= key <=
// to. Unlike the Bonsai tree's snapshot Range, a mutable list offers only
// a weakly consistent scan: keys inserted or removed while the scan runs
// may or may not be observed, but every key untouched during the scan is
// reported exactly once, and the traversal is reclamation-safe under any
// scheme. fn returning false stops the scan.
func (l *List) Range(tid int, from, to uint64, fn func(key, val uint64) bool) {
	s := l.lc.s
	s.StartOp(tid)
	defer s.EndOp(tid)
	lo := from // resume cursor: never re-emit a key after a restart
	pp, cc, nn := slotPrev, slotCurr, slotNext
	prev := &l.head
	curr := s.ReadRoot(tid, cc, prev).ClearMarks()
	for !curr.IsNil() {
		node := l.lc.pool.Get(curr)
		next := s.Read(tid, nn, &node.next)
		if pv := prev.Raw(); pv.Mark0() || pv.ClearMarks() != curr {
			// Window changed under us: restart from the head (weakly
			// consistent, like Michael's unlink-helping traversals); the
			// cursor guarantees each key is emitted at most once.
			pp, cc, nn = slotPrev, slotCurr, slotNext
			prev = &l.head
			curr = s.ReadRoot(tid, cc, prev).ClearMarks()
			continue
		}
		if !next.Mark0() { // skip logically deleted nodes
			k := node.key
			if k > to {
				return
			}
			if k >= lo {
				if !fn(k, node.val) {
					return
				}
				lo = k + 1
			}
		}
		prev = &node.next
		pp, cc, nn = cc, nn, pp
		curr = next.ClearMarks()
	}
	_ = pp
}
