package ds

import (
	"sort"

	"ibr/internal/core"
	"ibr/internal/guard"
	"ibr/internal/mem"
)

// listNode is a Harris–Michael list node. The mark bit of §9.8 of Herlihy &
// Shavit (Harris's "logical deletion") lives in the *next pointer's* mark0
// bit, as in the original algorithms: a node whose next pointer is marked
// is logically deleted.
type listNode struct {
	key, val uint64
	next     core.Ptr
}

// listPoison plants an impossible key so any traversal through a freed node
// is caught by tests (application keys are < KeyLimit).
func listPoison(n *listNode) { n.key = ^uint64(0); n.val = ^uint64(0) }

// listCore implements the Harris–Michael ordered-list algorithm over an
// arbitrary head pointer. It backs both the List structure (one head) and
// Michael's hash map (one head per bucket), mirroring how the paper's
// artifact composes them.
//
// All protocol traffic goes through the guard facade: each public operation
// opens a reservation bracket with w.Do, and the Guard it receives is the
// only handle touch point inside — which is exactly the shape the lifecycle
// analyzer trusts.
//
// Protection-slot discipline (HP/HE): slot 0 guards prev, slot 1 guards
// curr, slot 2 guards next; slots rotate as the traversal advances. Every
// other scheme ignores the slot numbers.
type listCore struct {
	w *guard.Guarded[listNode]
}

// Protection slot roles for the list traversal.
const (
	slotPrev = 0
	slotCurr = 1
	slotNext = 2
)

// restartThreshold is the §4.3.1 starvation bound: after this many failed
// CAS/validation retries an operation renews its reservation (Restart)
// before restarting from the head.
const restartThreshold = 16

// findResult carries the window returned by find: prev is the pointer cell
// whose target is curr (or would be, for an insertion point).
type findResult struct {
	prev  *core.Ptr
	curr  mem.Handle // unmarked
	found bool
	// slot indices protecting prev's node and curr after rotation
	prevSlot, currSlot, nextSlot int
}

// find locates the window (prev, curr) for key per Michael's algorithm:
// curr is the first unmarked node with curr.key >= key. It unlinks (and
// retires) any marked nodes it encounters. fails counts retries for the
// Restart cadence and persists across restarts within one operation.
func (lc *listCore) find(g *guard.Guard[listNode], head *core.Ptr, key uint64, fails *int) findResult {
retry:
	if *fails >= restartThreshold {
		*fails = 0
		g.Restart()
	}
	pp, cc, nn := slotPrev, slotCurr, slotNext
	prev := head
	curr := g.LoadRoot(cc, prev).ClearMarks()
	for {
		if curr.IsNil() {
			return findResult{prev: prev, curr: mem.Nil, found: false, prevSlot: pp, currSlot: cc, nextSlot: nn}
		}
		currNode := g.Deref(curr)
		next := g.Load(nn, &currNode.next)
		// Validate: prev must still point to curr, unmarked. A raw load
		// suffices — the value is only compared, never dereferenced.
		if pv := prev.Raw(); pv.Mark0() || pv.ClearMarks() != curr {
			*fails++
			goto retry
		}
		if next.Mark0() {
			// curr is logically deleted: unlink it. Whoever wins the CAS
			// owns the retirement.
			if !g.CompareAndSwap(prev, curr, next.ClearMarks()) {
				*fails++
				goto retry
			}
			g.Retire(curr)
			curr = next.ClearMarks()
			cc, nn = nn, cc // next's protection slot now guards curr
			continue
		}
		if k := currNode.key; k >= key {
			return findResult{prev: prev, curr: curr, found: k == key, prevSlot: pp, currSlot: cc, nextSlot: nn}
		}
		prev = &currNode.next
		pp, cc, nn = cc, nn, pp // rotate: curr becomes prev, next slot is reused
		curr = next.ClearMarks()
	}
}

// insert adds key→val into the list at head.
func (lc *listCore) insert(tid int, head *core.Ptr, key, val uint64) bool {
	var ok bool
	lc.w.Do(tid, func(g *guard.Guard[listNode]) {
		node := mem.Nil
		fails := 0
		for {
			r := lc.find(g, head, key, &fails)
			if r.found {
				if !node.IsNil() {
					g.Discard(node)
				}
				return
			}
			if node.IsNil() {
				node = g.Alloc()
				if node.IsNil() {
					return // allocator exhausted; fail the operation
				}
				n := g.Deref(node)
				n.key, n.val = key, val
			}
			// Link our private node to the window, then publish.
			g.Publish(&g.Deref(node).next, r.curr)
			if g.CompareAndSwap(r.prev, r.curr, node) {
				ok = true
				return
			}
			fails++
		}
	})
	return ok
}

// remove deletes key from the list at head.
func (lc *listCore) remove(tid int, head *core.Ptr, key uint64) bool {
	var ok bool
	lc.w.Do(tid, func(g *guard.Guard[listNode]) {
		fails := 0
		for {
			r := lc.find(g, head, key, &fails)
			if !r.found {
				return
			}
			currNode := g.Deref(r.curr)
			next := g.Load(r.nextSlot, &currNode.next)
			if next.Mark0() {
				// Another remover beat us to the logical delete.
				fails++
				continue
			}
			// Logical delete: mark curr's next pointer.
			if !g.CompareAndSwap(&currNode.next, next, next.WithMark0()) {
				fails++
				continue
			}
			// Physical unlink; on failure a later find will clean up (and
			// that find's thread will retire the node).
			if g.CompareAndSwap(r.prev, r.curr, next.ClearMarks()) {
				g.Retire(r.curr)
			}
			ok = true
			return
		}
	})
	return ok
}

// get looks key up in the list at head. It reuses find, so it helps unlink
// marked nodes like the artifact's Michael-list contains.
func (lc *listCore) get(tid int, head *core.Ptr, key uint64) (val uint64, found bool) {
	lc.w.Do(tid, func(g *guard.Guard[listNode]) {
		fails := 0
		r := lc.find(g, head, key, &fails)
		if !r.found {
			return
		}
		val, found = g.Deref(r.curr).val, true
	})
	return val, found
}

// fill bulk-loads sorted unique pairs into an empty chain at head,
// single-threaded. Links are written through the scheme so TagIBR tags and
// WCAS packed epochs are consistent. It runs at quiescence, outside any
// bracket, so it uses the facade's raw Scheme/Pool accessors.
func (lc *listCore) fill(head *core.Ptr, pairs []KV) {
	s, pool := lc.w.Scheme(), lc.w.Pool()
	prev := head
	for _, kv := range pairs {
		h := s.Alloc(0)
		if h.IsNil() {
			panic("ds: pool exhausted during Fill")
		}
		n := pool.Get(h)
		n.key, n.val = kv.Key, kv.Val
		s.Write(0, &n.next, mem.Nil)
		s.Write(0, prev, h)
		prev = &n.next
	}
}

// keys walks the chain at quiescence, returning unmarked keys in order.
func (lc *listCore) keys(head *core.Ptr, out []uint64) []uint64 {
	pool := lc.w.Pool()
	for h := head.Raw().ClearMarks(); !h.IsNil(); {
		n := pool.Get(h)
		next := n.next.Raw()
		if !next.Mark0() { // skip logically deleted stragglers
			out = append(out, n.key)
		}
		h = next.ClearMarks()
	}
	return out
}

// List is the Harris–Michael sorted linked list (§5 "ordered list of Harris
// and Michael"): the paper's pointer-chasing-heavy workload, where TagIBR's
// cheap reads shine against hazard pointers.
type List struct {
	lc   listCore
	head core.Ptr
}

// NewList builds a list running under cfg.Scheme.
func NewList(cfg Config) (*List, error) {
	popt := mem.Options[listNode]{Threads: cfg.Core.Threads, MaxSlots: cfg.PoolSlots}
	if cfg.Poison {
		popt.Poison = listPoison
	}
	pool := mem.New[listNode](popt)
	s, err := core.New(cfg.Scheme, pool, cfg.Core)
	if err != nil {
		return nil, err
	}
	return &List{lc: listCore{w: guard.New(s, pool)}}, nil
}

// Name returns "list".
func (l *List) Name() string { return "list" }

// Insert adds key→val; false if present.
func (l *List) Insert(tid int, key, val uint64) bool { return l.lc.insert(tid, &l.head, key, val) }

// Remove deletes key; false if absent.
func (l *List) Remove(tid int, key uint64) bool { return l.lc.remove(tid, &l.head, key) }

// Get returns the value bound to key.
func (l *List) Get(tid int, key uint64) (uint64, bool) { return l.lc.get(tid, &l.head, key) }

// Fill bulk-loads pairs (single-threaded).
func (l *List) Fill(pairs []KV) {
	sorted := append([]KV(nil), pairs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	dedup := sorted[:0]
	for i, kv := range sorted {
		if i == 0 || kv.Key != sorted[i-1].Key {
			dedup = append(dedup, kv)
		}
	}
	l.lc.fill(&l.head, dedup)
}

// Keys returns the ascending key set (quiescence only).
func (l *List) Keys() []uint64 { return l.lc.keys(&l.head, nil) }

// Scheme exposes the reclamation scheme.
func (l *List) Scheme() core.Scheme { return l.lc.w.Scheme() }

// PoolStats exposes allocator counters.
func (l *List) PoolStats() mem.Stats { return l.lc.w.Pool().Stats() }

// Range calls fn in ascending key order for every pair with from <= key <=
// to. Unlike the Bonsai tree's snapshot Range, a mutable list offers only
// a weakly consistent scan: keys inserted or removed while the scan runs
// may or may not be observed, but every key untouched during the scan is
// reported exactly once, and the traversal is reclamation-safe under any
// scheme. fn returning false stops the scan.
func (l *List) Range(tid int, from, to uint64, fn func(key, val uint64) bool) {
	l.lc.w.Do(tid, func(g *guard.Guard[listNode]) {
		lo := from // resume cursor: never re-emit a key after a restart
		pp, cc, nn := slotPrev, slotCurr, slotNext
		prev := &l.head
		curr := g.LoadRoot(cc, prev).ClearMarks()
		for !curr.IsNil() {
			node := g.Deref(curr)
			next := g.Load(nn, &node.next)
			if pv := prev.Raw(); pv.Mark0() || pv.ClearMarks() != curr {
				// Window changed under us: restart from the head (weakly
				// consistent, like Michael's unlink-helping traversals);
				// the cursor guarantees each key is emitted at most once.
				pp, cc, nn = slotPrev, slotCurr, slotNext
				prev = &l.head
				curr = g.LoadRoot(cc, prev).ClearMarks()
				continue
			}
			if !next.Mark0() { // skip logically deleted nodes
				k := node.key
				if k > to {
					return
				}
				if k >= lo {
					if !fn(k, node.val) {
						return
					}
					lo = k + 1
				}
			}
			prev = &node.next
			pp, cc, nn = cc, nn, pp
			curr = next.ClearMarks()
		}
		_ = pp
	})
}
