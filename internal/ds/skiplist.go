package ds

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"ibr/internal/core"
	"ibr/internal/mem"
)

// SkipList is a lock-free skip list map (Fraser's design as presented by
// Herlihy & Shavit ch. 14.4), an extension rideable beyond the paper's
// four. It is the poster child for IBR's usability claim: an operation
// holds references to up to 2×MaxLevel nodes at once (the pred/succ
// arrays), so fixed-slot pointer-based schemes (HP, HE) are excluded for
// exactly the reason the paper excludes them from the Bonsai tree — a
// statically unknown (here: large) number of simultaneous reservations —
// while the interval schemes protect the whole working set with one
// [lower, upper] pair and zero per-node bookkeeping.
//
// Deletion marks a node's next pointers (mark bit 0, upper levels first,
// level 0 as the linearization point); traversals snip marked levels out.
// Retirement must wait until the *last* incoming link is gone, and a
// lagging insert can legally link an upper level after the node is already
// marked — so each node carries a link count: +1 when a level is linked,
// −1 when a level is snipped, and whoever moves it to zero owns the (now
// fully detached) node's retirement. This closes the classic skip-list
// insert/delete race in which a slow inserter re-links a node that a
// simple "level-0 snipper retires" rule has already handed to the
// allocator.
type SkipList struct {
	pool *mem.Pool[slNode]
	s    core.Scheme
	head slNode // sentinel tower; its Ptr cells are the roots
	rnd  []slRand
}

// MaxLevel is the tower height cap: level-16 towers comfortably index the
// benchmark's 65536-key range.
const MaxLevel = 16

type slNode struct {
	key, val uint64
	topLevel uint32
	links    atomic.Int32 // levels currently linked (+pending link attempts)
	next     [MaxLevel]core.Ptr
}

func slPoison(n *slNode) { n.key = ^uint64(0); n.val = ^uint64(0) }

// slRand is a padded per-thread SplitMix64 for level drawing.
type slRand struct {
	_ [64]byte
	s uint64
	_ [56]byte
}

func (r *slRand) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NewSkipList builds a skip list running under cfg.Scheme.
func NewSkipList(cfg Config) (*SkipList, error) {
	popt := mem.Options[slNode]{Threads: cfg.Core.Threads, MaxSlots: cfg.PoolSlots}
	if cfg.Poison {
		popt.Poison = slPoison
	}
	pool := mem.New[slNode](popt)
	s, err := core.New(cfg.Scheme, pool, cfg.Core)
	if err != nil {
		return nil, err
	}
	sl := &SkipList{pool: pool, s: s, rnd: make([]slRand, cfg.Core.Threads)}
	for i := range sl.rnd {
		sl.rnd[i].s = uint64(i)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	}
	return sl, nil
}

// randomLevel draws a geometric(1/2) tower height in [1, MaxLevel].
func (sl *SkipList) randomLevel(tid int) int {
	v := sl.rnd[tid].next() | (1 << (MaxLevel - 1)) // cap at MaxLevel
	return bits.TrailingZeros64(v) + 1
}

// linksRetired is the sentinel installed (by CAS) when a node's link count
// first reaches zero: it makes the zero-crossing unique, so a lagging
// insert's Inc/Dec rollback can never trigger a second retirement, and it
// lets such an insert detect — before linking — that the node is already
// dead (Add(1) on the sentinel stays hugely negative).
const linksRetired = -(1 << 20)

// unlink records that one incoming link to h was removed; whoever wins the
// unique zero-crossing CAS retires the node.
func (sl *SkipList) unlink(tid int, h mem.Handle) {
	n := sl.pool.Get(h)
	if n.links.Add(-1) == 0 && n.links.CompareAndSwap(0, linksRetired) {
		sl.s.Retire(tid, h)
	}
}

// find locates key's window at every level, snipping marked nodes as it
// descends. preds[L] is the Ptr cell whose level-L target is succs[L];
// found reports whether succs[0] holds key.
func (sl *SkipList) find(tid int, key uint64, preds *[MaxLevel]*core.Ptr, succs *[MaxLevel]mem.Handle, fails *int) bool {
	return sl.findRestart(tid, key, preds, succs, fails, true)
}

// findRestart is find with the §4.3.1 reservation renewal made optional:
// callers that hold references across the call (Insert's upper-level
// linking keeps its just-published node) MUST pass allowRestart=false —
// RestartOp would renew the reservation and let a concurrent removal
// retire-and-recycle the held node under them, whose stale writes would
// then corrupt the slot's next occupant.
func (sl *SkipList) findRestart(tid int, key uint64, preds *[MaxLevel]*core.Ptr, succs *[MaxLevel]mem.Handle, fails *int, allowRestart bool) bool {
	s := sl.s
retry:
	if allowRestart && *fails >= restartThreshold {
		*fails = 0
		s.RestartOp(tid)
	}
	pred := &sl.head
	for level := MaxLevel - 1; level >= 0; level-- {
		predPtr := &pred.next[level]
		curr := s.Read(tid, 0, predPtr).ClearMarks()
		for {
			if curr.IsNil() {
				break
			}
			currNode := sl.pool.Get(curr)
			succ := s.Read(tid, 1, &currNode.next[level])
			if succ.Mark0() {
				// curr is logically deleted at this level: snip it.
				if !s.CompareAndSwap(tid, predPtr, curr, succ.ClearMarks()) {
					*fails++
					goto retry
				}
				sl.unlink(tid, curr)
				curr = succ.ClearMarks()
				continue
			}
			if currNode.key < key {
				pred = currNode
				predPtr = &currNode.next[level]
				curr = succ.ClearMarks()
				continue
			}
			break
		}
		preds[level] = predPtr
		succs[level] = curr
	}
	return !succs[0].IsNil() && sl.pool.Get(succs[0]).key == key
}

// Name returns "skiplist".
func (sl *SkipList) Name() string { return "skiplist" }

// Insert adds key→val; false if present.
func (sl *SkipList) Insert(tid int, key, val uint64) bool {
	checkKey(key)
	s := sl.s
	s.StartOp(tid)
	defer s.EndOp(tid)
	var preds [MaxLevel]*core.Ptr
	var succs [MaxLevel]mem.Handle
	node := mem.Nil
	top := sl.randomLevel(tid)
	fails := 0
	for {
		if sl.find(tid, key, &preds, &succs, &fails) {
			if !node.IsNil() {
				//ibrlint:ignore never published; no CAS linked the node, so no other thread can hold it
				sl.pool.Free(tid, node)
			}
			return false
		}
		if node.IsNil() {
			node = s.Alloc(tid)
			if node.IsNil() {
				return false
			}
			n := sl.pool.Get(node)
			n.key, n.val, n.topLevel = key, val, uint32(top)
			n.links.Store(0)
			for l := 0; l < MaxLevel; l++ {
				s.Write(tid, &n.next[l], mem.Nil)
			}
		}
		n := sl.pool.Get(node)
		// Point the private tower at the window, then publish level 0.
		for l := 0; l < top; l++ {
			s.Write(tid, &n.next[l], succs[l])
		}
		n.links.Store(1) // the level-0 link we are about to make
		if !s.CompareAndSwap(tid, preds[0], succs[0], node) {
			fails++
			continue
		}
		// Cover our own node with our reservation before touching it again:
		// interval schemes raise `upper` only on reads, and the published
		// node can already be under concurrent removal. Re-reading the cell
		// we just CASed raises upper past the node's birth (the CAS raised
		// the cell's born tag), so no scan can free the node while the
		// linking phase still holds it.
		s.Read(tid, 0, preds[0])
		sl.linkUpper(tid, key, node, top, &preds, &succs, &fails)
		return true
	}
}

// linkUpper links node's levels 1..top-1 after a successful level-0
// publish. Every attempt pre-increments the link count (so a concurrent
// full removal cannot retire the node under a link that is about to land)
// and rolls it back on failure; a rollback that hits zero means we were
// the last link holder and we retire.
func (sl *SkipList) linkUpper(tid int, key uint64, node mem.Handle, top int, preds *[MaxLevel]*core.Ptr, succs *[MaxLevel]mem.Handle, fails *int) {
	s := sl.s
	n := sl.pool.Get(node)
	for l := 1; l < top; l++ {
		for {
			cur := s.Read(tid, 0, &n.next[l])
			if cur.Mark0() {
				return // a deleter owns the remaining levels
			}
			// Keep our forward pointer current with the window.
			if !cur.SameAddr(succs[l]) {
				if !s.CompareAndSwap(tid, &n.next[l], cur, succs[l]) {
					continue // marked or raced: re-examine
				}
			}
			if n.links.Add(1) <= 0 {
				// The node was fully removed and retired while we prepared:
				// undo the probe and abandon linking (linking a retired
				// node would resurrect it into the structure).
				n.links.Add(-1)
				return
			}
			if s.CompareAndSwap(tid, preds[l], succs[l], node) {
				break // linked at level l
			}
			if n.links.Add(-1) == 0 {
				if n.links.CompareAndSwap(0, linksRetired) {
					s.Retire(tid, node) // removal completed under us
				}
				return
			}
			*fails++
			// Window moved: recompute it (without RestartOp — we hold
			// node). If our node is gone from level 0 (removed, possibly
			// replaced by a same-key successor), stop.
			if !sl.findRestart(tid, key, preds, succs, fails, false) || !succs[0].SameAddr(node) {
				return
			}
			if succs[l].SameAddr(node) {
				break // already linked at this level (defensive)
			}
		}
	}
}

// Remove deletes key; false if absent. Upper levels are marked first, the
// level-0 mark is the linearization point, and a final find snips the
// levels (decrementing the link count; the last snipper retires).
func (sl *SkipList) Remove(tid int, key uint64) bool {
	checkKey(key)
	s := sl.s
	s.StartOp(tid)
	defer s.EndOp(tid)
	var preds [MaxLevel]*core.Ptr
	var succs [MaxLevel]mem.Handle
	fails := 0
	if !sl.find(tid, key, &preds, &succs, &fails) {
		return false
	}
	node := succs[0]
	n := sl.pool.Get(node)
	top := int(n.topLevel)
	// Mark levels top-1..1 (idempotent across racing removers).
	for l := top - 1; l >= 1; l-- {
		for {
			cur := s.Read(tid, 0, &n.next[l])
			if cur.Mark0() {
				break
			}
			if s.CompareAndSwap(tid, &n.next[l], cur, cur.WithMark0()) {
				break
			}
			fails++
		}
	}
	// Level-0 mark: exactly one remover wins the linearization.
	for {
		cur := s.Read(tid, 0, &n.next[0])
		if cur.Mark0() {
			return false // another remover linearized first
		}
		if s.CompareAndSwap(tid, &n.next[0], cur, cur.WithMark0()) {
			// Snip eagerly; the last unlink (here or elsewhere) retires.
			sl.find(tid, key, &preds, &succs, &fails)
			return true
		}
		fails++
	}
}

// Get returns the value bound to key.
func (sl *SkipList) Get(tid int, key uint64) (uint64, bool) {
	checkKey(key)
	s := sl.s
	s.StartOp(tid)
	defer s.EndOp(tid)
	var preds [MaxLevel]*core.Ptr
	var succs [MaxLevel]mem.Handle
	fails := 0
	if !sl.find(tid, key, &preds, &succs, &fails) {
		return 0, false
	}
	return sl.pool.Get(succs[0]).val, true
}

// Range calls fn in ascending key order for every pair with from <= key <=
// to. It descends the index levels (as Get does) to reach from's level-0
// predecessor, then walks the level-0 chain from there — so a small
// interval costs O(log n + results), not O(total keys), and the
// reservation the scan holds is no longer than the scan itself. The whole
// thing runs under one StartOp/EndOp bracket. Unlike find, the descent is
// read-only: it steps over marked nodes instead of snipping them (a scan
// should not CAS), which is safe for the same reason the level-0 walk is —
// Harris-style removal leaves a removed node's next pointers intact, so a
// frozen chain converges back into the live list and the reservation keeps
// every node on it from being recycled under us. Like the list's Range it
// is weakly consistent: logically deleted nodes are skipped, and the
// resume cursor guarantees no key is ever emitted twice.
func (sl *SkipList) Range(tid int, from, to uint64, fn func(key, val uint64) bool) {
	s := sl.s
	s.StartOp(tid)
	defer s.EndOp(tid)
	lo := from
	pred := &sl.head
	for level := MaxLevel - 1; level >= 1; level-- {
		curr := s.Read(tid, 0, &pred.next[level]).ClearMarks()
		for !curr.IsNil() {
			n := sl.pool.Get(curr)
			if n.key >= from {
				break
			}
			// Advancing through (possibly marked) nodes without snipping:
			// keys are immutable while reserved, so the order holds even on
			// a frozen chain.
			pred = n
			curr = s.Read(tid, 1, &n.next[level]).ClearMarks()
		}
	}
	curr := s.Read(tid, 0, &pred.next[0]).ClearMarks()
	for !curr.IsNil() {
		n := sl.pool.Get(curr)
		next := s.Read(tid, 1, &n.next[0])
		if !next.Mark0() { // skip logically deleted nodes
			k := n.key
			if k > to {
				return
			}
			if k >= lo {
				if !fn(k, n.val) {
					return
				}
				lo = k + 1
			}
		}
		curr = next.ClearMarks()
	}
}

// Fill bulk-loads pairs (single-threaded) through the insert path.
func (sl *SkipList) Fill(pairs []KV) {
	for _, kv := range pairs {
		sl.Insert(0, kv.Key, kv.Val)
	}
}

// Sweep walks every level and snips out all marked entries, releasing
// "ghost routers": nodes already removed at level 0 whose upper levels
// were linked late by a racing insert and not yet crossed by any traversal.
// Safe to run concurrently with operations; long-running applications can
// call it periodically, and tests call it before exact leak accounting.
func (sl *SkipList) Sweep(tid int) {
	s := sl.s
	s.StartOp(tid)
	defer s.EndOp(tid)
	for level := MaxLevel - 1; level >= 0; level-- {
	restart:
		pred := &sl.head
		predPtr := &pred.next[level]
		curr := s.Read(tid, 0, predPtr).ClearMarks()
		for !curr.IsNil() {
			currNode := sl.pool.Get(curr)
			succ := s.Read(tid, 1, &currNode.next[level])
			if succ.Mark0() {
				if !s.CompareAndSwap(tid, predPtr, curr, succ.ClearMarks()) {
					goto restart
				}
				sl.unlink(tid, curr)
				curr = succ.ClearMarks()
				continue
			}
			predPtr = &currNode.next[level]
			curr = succ.ClearMarks()
		}
	}
}

// Keys returns the ascending key set (quiescence only).
//
//ibrlint:ignore quiescence-only: documented to run with no concurrent operations
func (sl *SkipList) Keys() []uint64 {
	var out []uint64
	h := sl.head.next[0].Raw().ClearMarks()
	for !h.IsNil() {
		n := sl.pool.Get(h)
		nxt := n.next[0].Raw()
		if !nxt.Mark0() {
			out = append(out, n.key)
		}
		h = nxt.ClearMarks()
	}
	return out
}

// Validate checks level coherence at quiescence: every level's chain is
// strictly sorted, and every unmarked upper-level occupant is present
// below (ghost routers — marked upper levels not yet snipped — are legal).
//
//ibrlint:ignore quiescence-only: documented to run with no concurrent operations
func (sl *SkipList) Validate() error {
	var below map[uint64]bool
	for level := 0; level < MaxLevel; level++ {
		seen := map[uint64]bool{}
		last := int64(-1)
		for h := sl.head.next[level].Raw().ClearMarks(); !h.IsNil(); {
			n := sl.pool.Get(h)
			if int64(n.key) <= last {
				return fmt.Errorf("skiplist: level %d not strictly sorted at key %d", level, n.key)
			}
			last = int64(n.key)
			nxt := n.next[level].Raw()
			if !nxt.Mark0() {
				seen[n.key] = true
				if level > 0 && !below[n.key] {
					return fmt.Errorf("skiplist: key %d at level %d missing from level %d", n.key, level, level-1)
				}
			}
			h = nxt.ClearMarks()
		}
		below = seen
	}
	return nil
}

// Scheme exposes the reclamation scheme.
func (sl *SkipList) Scheme() core.Scheme { return sl.s }

// PoolStats exposes allocator counters.
func (sl *SkipList) PoolStats() mem.Stats { return sl.pool.Stats() }
