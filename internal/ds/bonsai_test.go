package ds

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"ibr/internal/core"
	"ibr/internal/mem"
)

func newTestBonsai(t *testing.T, scheme string, threads int) *Bonsai {
	t.Helper()
	b, err := NewBonsai(testConfig(scheme, threads))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBonsaiEmpty(t *testing.T) {
	b := newTestBonsai(t, "poibr", 1)
	if _, ok := b.Get(0, 1); ok {
		t.Fatal("Get on empty tree found a key")
	}
	if b.Remove(0, 1) {
		t.Fatal("Remove on empty tree succeeded")
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestBonsaiNoOpCreatesNothing: failed inserts/removes must not allocate,
// retire, or replace anything (the no-copy fast path).
func TestBonsaiNoOpCreatesNothing(t *testing.T) {
	b := newTestBonsai(t, "poibr", 1)
	for k := uint64(0); k < 100; k++ {
		b.Insert(0, k, k)
	}
	core.DrainAll(b.Scheme(), 1)
	before := b.PoolStats()
	if b.Insert(0, 50, 99) {
		t.Fatal("duplicate insert succeeded")
	}
	if b.Remove(0, 1000) {
		t.Fatal("remove of absent key succeeded")
	}
	core.DrainAll(b.Scheme(), 1)
	after := b.PoolStats()
	if after.Allocs != before.Allocs || after.Live() != before.Live() {
		t.Fatalf("no-op operations changed accounting: %+v -> %+v", before, after)
	}
}

// TestBonsaiPathCopyCount: an insert must copy exactly the root-to-leaf
// path (plus rotation nodes), and retire the same number of replaced nodes.
func TestBonsaiPathCopying(t *testing.T) {
	b := newTestBonsai(t, "poibr", 1)
	for k := uint64(0); k < 64; k++ {
		b.Insert(0, k*2, k)
	}
	core.DrainAll(b.Scheme(), 1)
	before := b.PoolStats()
	if !b.Insert(0, 63, 1) { // interior key: full path copy
		t.Fatal("insert failed")
	}
	core.DrainAll(b.Scheme(), 1)
	after := b.PoolStats()
	created := after.Allocs - before.Allocs
	// Live grows by exactly 1 (the new key), everything else copied and
	// the originals reclaimed.
	if after.Live() != before.Live()+1 {
		t.Fatalf("live delta = %d, want 1", after.Live()-before.Live())
	}
	// Path length in a balanced 64-node tree is ~log2(64) ± rotations.
	if created < 2 || created > 20 {
		t.Fatalf("insert created %d nodes; expected a short path copy", created)
	}
}

// TestBonsaiSnapshotIsolation: a reader traversing an old root must see the
// exact state at its snapshot even while writers churn.
func TestBonsaiSnapshotIsolation(t *testing.T) {
	b := newTestBonsai(t, "poibr", 2)
	for k := uint64(0); k < 512; k++ {
		b.Insert(0, k, k)
	}
	var wg sync.WaitGroup
	var stop atomic.Bool
	wg.Add(1)
	go func() { // writer: churn odd keys
		defer wg.Done()
		for i := 0; i < 200; i++ {
			k := uint64(i%256)*2 + 1
			b.Insert(0, k, k)
			b.Remove(0, k)
		}
		stop.Store(true)
	}()
	wg.Add(1)
	go func() { // reader: even keys are immutable and must always be intact
		defer wg.Done()
		for !stop.Load() {
			for k := uint64(0); k < 512; k += 2 {
				if v, ok := b.Get(1, k); !ok || v != k {
					t.Errorf("even key %d = (%d,%v) during churn", k, v, ok)
					return
				}
			}
		}
	}()
	wg.Wait()
}

// TestBonsaiBalanceUnderRandomChurn: the weight-balance invariant must
// survive arbitrary interleavings of inserts and deletes.
func TestBonsaiBalanceUnderRandomChurn(t *testing.T) {
	b := newTestBonsai(t, "tagibr", 1)
	rng := rand.New(rand.NewSource(99))
	model := map[uint64]bool{}
	for i := 0; i < 30000; i++ {
		k := uint64(rng.Intn(1000))
		if rng.Intn(2) == 0 {
			b.Insert(0, k, k)
			model[k] = true
		} else {
			b.Remove(0, k)
			delete(model, k)
		}
		if i%5000 == 0 {
			if err := b.Validate(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(b.Keys()); got != len(model) {
		t.Fatalf("%d keys, model has %d", got, len(model))
	}
}

// TestBonsaiDepthIsLogarithmic: ascending inserts (BST worst case) must
// still yield an O(log n) tree.
func TestBonsaiDepthIsLogarithmic(t *testing.T) {
	b := newTestBonsai(t, "poibr", 1)
	const n = 1 << 13
	for k := uint64(0); k < n; k++ {
		b.Insert(0, k, k)
	}
	depth := 0
	var walk func(h mem.Handle, d int)
	walk = func(h mem.Handle, d int) {
		if h.IsNil() {
			return
		}
		if d > depth {
			depth = d
		}
		n := b.pool.Get(h)
		walk(n.left.Raw(), d+1)
		walk(n.right.Raw(), d+1)
	}
	walk(b.root.Raw(), 1)
	// Weight-balanced with delta=3: height <= ~log_{4/3}(n) ≈ 2.41 log2 n.
	if limit := 2*13 + 8; depth > limit {
		t.Fatalf("depth %d for %d ascending inserts; want <= %d", depth, n, limit)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestBonsaiExtractBoundaries: removing the min and max repeatedly drives
// the extractMin/extractMax glue paths.
func TestBonsaiExtractBoundaries(t *testing.T) {
	b := newTestBonsai(t, "2geibr", 1)
	for k := uint64(0); k < 200; k++ {
		b.Insert(0, k, k)
	}
	for k := uint64(0); k < 100; k++ {
		if !b.Remove(0, k) { // ascending: always the min
			t.Fatalf("Remove(min=%d) failed", k)
		}
		if !b.Remove(0, 199-k) { // descending: always the max
			t.Fatalf("Remove(max=%d) failed", 199-k)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("after removing %d/%d: %v", k, 199-k, err)
		}
	}
	if got := len(b.Keys()); got != 0 {
		t.Fatalf("%d keys left", got)
	}
	core.DrainAll(b.Scheme(), 1)
	if live := b.PoolStats().Live(); live != 0 {
		t.Fatalf("%d nodes leaked", live)
	}
}

// TestBonsaiFailedCASReclaimsPrivateVersion: under write contention, losing
// builders must free their entire private path copy.
func TestBonsaiFailedCASCleanup(t *testing.T) {
	const threads = 4
	b := newTestBonsai(t, "poibr", threads)
	for k := uint64(0); k < 256; k++ {
		b.Insert(0, k*2, k)
	}
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid)))
			for i := 0; i < 2000; i++ {
				k := uint64(rng.Intn(512))
				if rng.Intn(2) == 0 {
					b.Insert(tid, k, k)
				} else {
					b.Remove(tid, k)
				}
			}
		}(tid)
	}
	wg.Wait()
	core.DrainAll(b.Scheme(), threads)
	keys := b.Keys()
	if live := b.PoolStats().Live(); live != uint64(len(keys)) {
		t.Fatalf("live %d != keys %d: lost private copies or leaked versions", live, len(keys))
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}
