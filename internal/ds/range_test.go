package ds

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestBonsaiRangeSnapshot(t *testing.T) {
	b := newTestBonsai(t, "poibr", 2)
	for k := uint64(0); k < 100; k += 2 {
		b.Insert(0, k, k*3)
	}
	var got []uint64
	b.Range(0, 10, 30, func(k, v uint64) bool {
		if v != k*3 {
			t.Fatalf("value of %d = %d", k, v)
		}
		got = append(got, k)
		return true
	})
	want := []uint64{10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	b.Range(0, 0, 99, func(k, v uint64) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestBonsaiRangeIsAtomicSnapshot: a writer flips between two disjoint key
// sets with a pivot key marking which set is current; a snapshot range must
// never observe a mix.
func TestBonsaiRangeIsAtomicSnapshot(t *testing.T) {
	b := newTestBonsai(t, "poibr", 2)
	// Set A = {1..8}, set B = {11..18}. Writer alternates.
	for k := uint64(1); k <= 8; k++ {
		b.Insert(0, k, 0)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if i%2 == 0 { // A -> B
				for k := uint64(1); k <= 8; k++ {
					b.Remove(0, k)
				}
				for k := uint64(11); k <= 18; k++ {
					b.Insert(0, k, 0)
				}
			} else { // B -> A
				for k := uint64(11); k <= 18; k++ {
					b.Remove(0, k)
				}
				for k := uint64(1); k <= 8; k++ {
					b.Insert(0, k, 0)
				}
			}
		}
	}()
	for i := 0; i < 3000; i++ {
		lowSeen, highSeen := 0, 0
		b.Range(1, 0, 100, func(k, v uint64) bool {
			if k <= 8 {
				lowSeen++
			} else {
				highSeen++
			}
			return true
		})
		// A snapshot can straddle a transition (writer removes one by one),
		// but it can never contain a FULL low set and ANY high key that was
		// inserted only after the low set was fully removed — and vice
		// versa. The strong check: the union of a full A and a full B is
		// impossible.
		if lowSeen == 8 && highSeen == 8 {
			t.Fatal("snapshot mixed two complete generations")
		}
	}
	stop.Store(true)
	wg.Wait()
}

func TestListRange(t *testing.T) {
	l := newTestList(t, "tagibr", 1)
	for k := uint64(0); k < 50; k += 5 {
		l.Insert(0, k, k+1)
	}
	var got []uint64
	l.Range(0, 10, 35, func(k, v uint64) bool {
		if v != k+1 {
			t.Fatalf("value of %d = %d", k, v)
		}
		got = append(got, k)
		return true
	})
	want := []uint64{10, 15, 20, 25, 30, 35}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
}

// TestRangerSet pins which structures implement the optional Ranger
// interface: the ordered ones do, the unordered ones must not (the engine's
// StatusUnsupported answer keys off exactly this assertion).
func TestRangerSet(t *testing.T) {
	want := map[string]bool{"list": true, "bonsai": true, "skiplist": true, "hashmap": false, "nmtree": false}
	for _, name := range MapStructures() {
		m, err := NewMap(name, testConfig("tagibr", 1))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := m.(Ranger); ok != want[name] {
			t.Fatalf("%s implements Ranger = %v, want %v", name, ok, want[name])
		}
	}
}

func TestSkipListRange(t *testing.T) {
	sl := newTestSkipList(t, "tagibr", 1)
	for k := uint64(0); k < 50; k += 5 {
		sl.Insert(0, k, k+1)
	}
	var got []uint64
	sl.Range(0, 10, 35, func(k, v uint64) bool {
		if v != k+1 {
			t.Fatalf("value of %d = %d", k, v)
		}
		got = append(got, k)
		return true
	})
	want := []uint64{10, 15, 20, 25, 30, 35}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	sl.Range(0, 0, 49, func(k, v uint64) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestSkipListRangeNoDuplicatesUnderChurn mirrors the list test: under
// concurrent churn, stable keys must be reported exactly once and no key
// twice — the resume cursor's contract.
func TestSkipListRangeNoDuplicatesUnderChurn(t *testing.T) {
	sl := newTestSkipList(t, "tagibr", 2)
	for k := uint64(0); k < 300; k += 10 {
		sl.Insert(0, k, k)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			k := uint64(i%150)*2 + 1
			sl.Insert(0, k, k)
			sl.Remove(0, k)
		}
	}()
	for i := 0; i < 300; i++ {
		seen := map[uint64]int{}
		sl.Range(1, 0, 299, func(k, v uint64) bool {
			seen[k]++
			return true
		})
		for k, c := range seen {
			if c > 1 {
				t.Fatalf("key %d reported %d times", k, c)
			}
		}
		for k := uint64(0); k < 300; k += 10 {
			if seen[k] != 1 {
				t.Fatalf("stable key %d reported %d times", k, seen[k])
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestListRangeNoDuplicatesUnderChurn: concurrent inserts/removes force
// validation restarts; stable keys must be reported exactly once.
func TestListRangeNoDuplicatesUnderChurn(t *testing.T) {
	l := newTestList(t, "2geibr", 2)
	// Stable keys: multiples of 10. Churn keys: odd.
	for k := uint64(0); k < 300; k += 10 {
		l.Insert(0, k, k)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			k := uint64(i%150)*2 + 1
			l.Insert(0, k, k)
			l.Remove(0, k)
		}
	}()
	for i := 0; i < 300; i++ {
		seen := map[uint64]int{}
		l.Range(1, 0, 299, func(k, v uint64) bool {
			seen[k]++
			return true
		})
		for k, c := range seen {
			if c > 1 {
				t.Fatalf("key %d reported %d times", k, c)
			}
		}
		for k := uint64(0); k < 300; k += 10 {
			if seen[k] != 1 {
				t.Fatalf("stable key %d reported %d times", k, seen[k])
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}
