package ds

import (
	"sync"
	"testing"

	"ibr/internal/core"
	"ibr/internal/mem"
)

func newTestList(t *testing.T, scheme string, threads int) *List {
	t.Helper()
	l, err := NewList(testConfig(scheme, threads))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestListEmpty(t *testing.T) {
	l := newTestList(t, "ebr", 1)
	if _, ok := l.Get(0, 1); ok {
		t.Fatal("Get on empty list found a key")
	}
	if l.Remove(0, 1) {
		t.Fatal("Remove on empty list succeeded")
	}
	if got := l.Keys(); len(got) != 0 {
		t.Fatalf("empty list Keys() = %v", got)
	}
}

func TestListBoundaryKeys(t *testing.T) {
	l := newTestList(t, "tagibr", 1)
	for _, k := range []uint64{0, 1, KeyLimit - 1} {
		if !l.Insert(0, k, k+100) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if got := l.Keys(); len(got) != 3 || got[0] != 0 || got[2] != KeyLimit-1 {
		t.Fatalf("Keys() = %v", got)
	}
	// Head insertion: a new minimum must link before the current head.
	l2 := newTestList(t, "tagibr", 1)
	l2.Insert(0, 10, 0)
	l2.Insert(0, 5, 0)
	l2.Insert(0, 1, 0)
	got := l2.Keys()
	for i, want := range []uint64{1, 5, 10} {
		if got[i] != want {
			t.Fatalf("Keys() = %v", got)
		}
	}
}

// TestListLogicalDeletionVisible: a marked (logically deleted) node must be
// invisible to Get even before physical unlinking. We stage it by marking
// the node's next pointer directly, as a concurrent remover would.
func TestListLogicalDeletionVisible(t *testing.T) {
	l := newTestList(t, "ebr", 1)
	l.Insert(0, 1, 10)
	l.Insert(0, 2, 20)
	l.Insert(0, 3, 30)
	// Mark node 2 by hand: logical deletion without physical unlink.
	h2 := l.head.Raw().ClearMarks()
	n1 := l.lc.w.Pool().Get(h2)
	h2 = n1.next.Raw().ClearMarks()
	n2 := l.lc.w.Pool().Get(h2)
	if n2.key != 2 {
		t.Fatalf("walked to key %d, want 2", n2.key)
	}
	n2.next.FetchOrMarks(mem.Mark0Bit)
	if _, ok := l.Get(0, 2); ok {
		t.Fatal("Get found a logically deleted node")
	}
	if l.Remove(0, 2) {
		t.Fatal("Remove succeeded on an already logically deleted node")
	}
	// The traversal should also have physically unlinked (helped) node 2.
	if got := l.Keys(); len(got) != 2 {
		t.Fatalf("Keys() = %v, want [1 3]", got)
	}
}

// TestListHelperRetiresExactlyOnce: when the remover's unlink CAS fails,
// the helping traversal must retire the node — exactly one retirement
// overall (a double retire panics in the pool).
func TestListHelperRetiresExactlyOnce(t *testing.T) {
	l := newTestList(t, "ebr", 2)
	l.Insert(0, 1, 0)
	l.Insert(0, 2, 0)
	l.Insert(0, 3, 0)
	// Mark key 2 by hand (logical delete), then let a traversal help.
	h1 := l.head.Raw().ClearMarks()
	h2 := l.lc.w.Pool().Get(h1).next.Raw().ClearMarks()
	l.lc.w.Pool().Get(h2).next.FetchOrMarks(mem.Mark0Bit)
	if _, ok := l.Get(1, 3); !ok {
		t.Fatal("Get(3) failed")
	}
	if l.lc.w.Pool().State(h2) == mem.StateLive {
		t.Fatal("helped node was not retired by the traversal")
	}
	core.DrainAll(l.Scheme(), 2)
	if l.lc.w.Pool().State(h2) != mem.StateFree {
		t.Fatal("helped node not reclaimed at quiescence")
	}
}

// TestListInsertReusesPrivateNode: a failed-then-successful insert must not
// leak its pre-allocated node, and an insert that loses to an existing key
// must free it.
func TestListInsertNoPrivateLeak(t *testing.T) {
	l := newTestList(t, "tagibr", 1)
	l.Insert(0, 5, 1)
	before := l.PoolStats()
	if l.Insert(0, 5, 2) {
		t.Fatal("duplicate insert succeeded")
	}
	after := l.PoolStats()
	if after.Live() != before.Live() {
		t.Fatalf("duplicate insert leaked %d nodes", after.Live()-before.Live())
	}
}

// TestListConcurrentInsertContention: all threads insert the same key;
// exactly one wins, and the losers' private nodes are freed.
func TestListConcurrentInsertContention(t *testing.T) {
	for _, scheme := range []string{"ebr", "hp", "tagibr", "tagibr-wcas", "2geibr"} {
		t.Run(scheme, func(t *testing.T) {
			const threads = 4
			l := newTestList(t, scheme, threads)
			var wg sync.WaitGroup
			wins := make([]int, threads)
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for k := uint64(0); k < 500; k++ {
						if l.Insert(tid, k, uint64(tid)) {
							wins[tid]++
						}
					}
				}(tid)
			}
			wg.Wait()
			total := 0
			for _, w := range wins {
				total += w
			}
			if total != 500 {
				t.Fatalf("%d total successful inserts of 500 distinct keys", total)
			}
			core.DrainAll(l.Scheme(), threads)
			if live := l.PoolStats().Live(); live != 500 {
				t.Fatalf("%d live nodes, want 500", live)
			}
		})
	}
}

// TestListConcurrentRemoveContention: all threads remove the same keys;
// each key is removed exactly once.
func TestListConcurrentRemoveContention(t *testing.T) {
	const threads = 4
	l := newTestList(t, "2geibr", threads)
	var pairs []KV
	for k := uint64(0); k < 500; k++ {
		pairs = append(pairs, KV{k, k})
	}
	l.Fill(pairs)
	var wg sync.WaitGroup
	wins := make([]int, threads)
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for k := uint64(0); k < 500; k++ {
				if l.Remove(tid, k) {
					wins[tid]++
				}
			}
		}(tid)
	}
	wg.Wait()
	total := 0
	for _, w := range wins {
		total += w
	}
	if total != 500 {
		t.Fatalf("%d total successful removes of 500 keys", total)
	}
	if got := l.Keys(); len(got) != 0 {
		t.Fatalf("list not empty: %v", got)
	}
	core.DrainAll(l.Scheme(), threads)
	if live := l.PoolStats().Live(); live != 0 {
		t.Fatalf("%d nodes leaked", live)
	}
}

// TestListValueFidelity: values must round-trip exactly, including extreme
// bit patterns that would collide with marks or poison if mishandled.
func TestListValueFidelity(t *testing.T) {
	l := newTestList(t, "tagibr-wcas", 1)
	vals := []uint64{0, 1, ^uint64(0), 0xDEADBEEF, 1 << 63}
	for i, v := range vals {
		l.Insert(0, uint64(i), v)
	}
	for i, v := range vals {
		if got, ok := l.Get(0, uint64(i)); !ok || got != v {
			t.Fatalf("Get(%d) = (%d,%v), want %d", i, got, ok, v)
		}
	}
}

// TestHashMapCrossBucketIsolation: operations on one bucket must never
// disturb keys hashing elsewhere.
func TestHashMapCrossBucketIsolation(t *testing.T) {
	m, err := NewHashMap(testConfig("tagibr", 1))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 1000; k++ {
		m.Insert(0, k, k*7)
	}
	for k := uint64(0); k < 1000; k += 2 {
		m.Remove(0, k)
	}
	for k := uint64(1); k < 1000; k += 2 {
		if v, ok := m.Get(0, k); !ok || v != k*7 {
			t.Fatalf("odd key %d disturbed: (%d,%v)", k, v, ok)
		}
	}
	if got := len(m.Keys()); got != 500 {
		t.Fatalf("%d keys, want 500", got)
	}
}
