package ds

import (
	"sync"
	"testing"

	"ibr/internal/core"
	"ibr/internal/mem"
)

func newTestNMTree(t *testing.T, scheme string, threads int) *NMTree {
	t.Helper()
	tr, err := NewNMTree(testConfig(scheme, threads))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNMTreeInitialShape(t *testing.T) {
	tr := newTestNMTree(t, "ebr", 1)
	r := tr.pool.Get(tr.rootR)
	s := tr.pool.Get(tr.rootS)
	if r.key != nmInf2 || r.isLeaf != 0 {
		t.Fatalf("R = {key %d, leaf %d}", r.key, r.isLeaf)
	}
	if s.key != nmInf1 || s.isLeaf != 0 {
		t.Fatalf("S = {key %d, leaf %d}", s.key, s.isLeaf)
	}
	if !r.left.Raw().SameAddr(tr.rootS) {
		t.Fatal("R.left != S")
	}
	// Three sentinel leaves: S.left(inf1), S.right(inf2), R.right(inf2).
	for _, probe := range []struct {
		p    *core.Ptr
		want uint64
	}{{&s.left, nmInf1}, {&s.right, nmInf2}, {&r.right, nmInf2}} {
		leaf := tr.pool.Get(probe.p.Raw())
		if leaf.isLeaf != 1 || leaf.key != probe.want {
			t.Fatalf("sentinel leaf = {key %d, leaf %d}, want key %d", leaf.key, leaf.isLeaf, probe.want)
		}
	}
	// Initial node count: R, S, 3 leaves = 2*(0+3)-1 = 5.
	if live := tr.PoolStats().Live(); live != 5 {
		t.Fatalf("initial live = %d, want 5", live)
	}
}

// TestNMTreeExternalProperty: every application key must live in a leaf,
// and internal nodes must route correctly (left < key <= right).
func TestNMTreeExternalProperty(t *testing.T) {
	tr := newTestNMTree(t, "tagibr", 1)
	for _, k := range []uint64{50, 20, 80, 10, 30, 70, 90, 25} {
		tr.Insert(0, k, k)
	}
	var check func(h mem.Handle, lo, hi uint64)
	check = func(h mem.Handle, lo, hi uint64) {
		h = h.ClearMarks()
		n := tr.pool.Get(h)
		if n.isLeaf == 1 {
			if n.key < lo || n.key >= hi {
				t.Fatalf("leaf %d outside [%d,%d)", n.key, lo, hi)
			}
			return
		}
		check(n.left.Raw(), lo, n.key)
		check(n.right.Raw(), n.key, hi)
	}
	// The subtree's rightmost leaf is the inf1 sentinel, so the exclusive
	// bound is nmInf1+1.
	check(tr.pool.Get(tr.rootS).left.Raw(), 0, nmInf1+1)
}

func TestNMTreeEmptyToFullCycle(t *testing.T) {
	tr := newTestNMTree(t, "2geibr", 1)
	// Fill, empty, refill: sentinels must survive and accounting must be
	// exact at each quiescent point.
	for round := 0; round < 3; round++ {
		for k := uint64(0); k < 64; k++ {
			if !tr.Insert(0, k, k) {
				t.Fatalf("round %d: Insert(%d) failed", round, k)
			}
		}
		for k := uint64(0); k < 64; k++ {
			if !tr.Remove(0, k) {
				t.Fatalf("round %d: Remove(%d) failed", round, k)
			}
		}
		if got := tr.Keys(); len(got) != 0 {
			t.Fatalf("round %d: %v left", round, got)
		}
		core.DrainAll(tr.Scheme(), 1)
		if live := tr.PoolStats().Live(); live != 5 {
			t.Fatalf("round %d: live = %d, want 5 (sentinels only)", round, live)
		}
	}
}

// TestNMTreeCleanupGuard: a stale help request on a window with no
// injected delete must not excise anything (the spurious-cleanup guard).
func TestNMTreeCleanupGuard(t *testing.T) {
	tr := newTestNMTree(t, "ebr", 1)
	tr.Insert(0, 10, 1)
	tr.Insert(0, 20, 2)
	tr.s.StartOp(0)
	sr := tr.seek(0, 10)
	if tr.cleanup(0, 10, sr) {
		t.Fatal("cleanup succeeded with no flag planted")
	}
	tr.s.EndOp(0)
	if _, ok := tr.Get(0, 10); !ok {
		t.Fatal("spurious cleanup removed a live key")
	}
	if _, ok := tr.Get(0, 20); !ok {
		t.Fatal("spurious cleanup removed a live key")
	}
}

// TestNMTreeHelpCompletesInjectedDelete: after a delete's injection CAS
// (flag planted), any other thread's cleanup can complete the removal.
func TestNMTreeHelpCompletesInjectedDelete(t *testing.T) {
	tr := newTestNMTree(t, "ebr", 2)
	tr.Insert(0, 10, 1)
	tr.Insert(0, 20, 2)

	// Inject a delete of 10 by hand: flag the edge parent→leaf(10).
	tr.s.StartOp(0)
	sr := tr.seek(0, 10)
	parNode := tr.pool.Get(sr.parent)
	childAddr := childOf(parNode, 10)
	if !tr.s.CompareAndSwap(0, childAddr, sr.leaf, sr.leaf.WithMark0()) {
		t.Fatal("injection CAS failed")
	}
	// A second thread helps: its cleanup must finish the removal.
	tr.s.StartOp(1)
	sr1 := tr.seek(1, 10)
	if !tr.cleanup(1, 10, sr1) {
		t.Fatal("helper cleanup did not complete the injected delete")
	}
	tr.s.EndOp(1)
	tr.s.EndOp(0)
	if _, ok := tr.Get(0, 10); ok {
		t.Fatal("key 10 still present after helped delete")
	}
	if _, ok := tr.Get(0, 20); !ok {
		t.Fatal("helping removed the wrong key")
	}
	core.DrainAll(tr.Scheme(), 2)
	if live, want := tr.PoolStats().Live(), expectedNodes("nmtree", 1); live != want {
		t.Fatalf("live = %d, want %d", live, want)
	}
}

// TestNMTreeFragmentRedirectsPointToSentinel: after a removal, the
// detached nodes' edges must point (tagged) at S — the invariant that
// keeps parked readers safe (DESIGN.md finding iii).
func TestNMTreeFragmentRedirects(t *testing.T) {
	tr := newTestNMTree(t, "ebr", 2)
	tr.Insert(0, 10, 1)
	tr.Insert(0, 20, 2)

	// Capture the parent internal node that Remove(10) will detach.
	tr.s.StartOp(1)
	srBefore := tr.seek(1, 10)
	parent := srBefore.parent
	tr.s.EndOp(1)

	// A live operation on tid 1 pins the epoch so the detached fragment
	// stays unreclaimed and inspectable after Remove returns.
	tr.s.StartOp(1)
	if !tr.Remove(0, 10) {
		t.Fatal("Remove failed")
	}
	pn := tr.pool.Get(parent)
	l, r := pn.left.Raw(), pn.right.Raw()
	if !l.SameAddr(tr.rootS) || !r.SameAddr(tr.rootS) {
		t.Fatalf("fragment edges = %v/%v, want sentinel redirects", l, r)
	}
	if !l.Mark1() || !r.Mark1() {
		t.Fatal("redirect edges must be tagged")
	}
	tr.s.EndOp(1)
}

// TestNMTreeConcurrentSameKeyDelete: N threads remove one key; exactly one
// wins and the loser sees a clean false.
func TestNMTreeConcurrentSameKeyDelete(t *testing.T) {
	for _, scheme := range []string{"ebr", "hp", "tagibr-wcas"} {
		t.Run(scheme, func(t *testing.T) {
			const threads = 4
			for round := 0; round < 50; round++ {
				tr := newTestNMTree(t, scheme, threads)
				tr.Insert(0, 42, 1)
				var wg sync.WaitGroup
				wins := make([]bool, threads)
				for tid := 0; tid < threads; tid++ {
					wg.Add(1)
					go func(tid int) {
						defer wg.Done()
						wins[tid] = tr.Remove(tid, 42)
					}(tid)
				}
				wg.Wait()
				n := 0
				for _, w := range wins {
					if w {
						n++
					}
				}
				if n != 1 {
					t.Fatalf("round %d: %d winners for one key", round, n)
				}
			}
		})
	}
}

// TestNMTreeDegenerateInsertionOrders: ascending, descending and organ-pipe
// orders must all produce a correct (if unbalanced) external tree.
func TestNMTreeDegenerateInsertionOrders(t *testing.T) {
	orders := map[string][]uint64{
		"ascending":  {1, 2, 3, 4, 5, 6, 7, 8},
		"descending": {8, 7, 6, 5, 4, 3, 2, 1},
		"organpipe":  {1, 8, 2, 7, 3, 6, 4, 5},
	}
	for name, keys := range orders {
		t.Run(name, func(t *testing.T) {
			tr := newTestNMTree(t, "tagibr", 1)
			for _, k := range keys {
				tr.Insert(0, k, k*10)
			}
			got := tr.Keys()
			if len(got) != 8 {
				t.Fatalf("%d keys, want 8", len(got))
			}
			for i := range got {
				if got[i] != uint64(i+1) {
					t.Fatalf("Keys() = %v", got)
				}
				if v, _ := tr.Get(0, got[i]); v != got[i]*10 {
					t.Fatalf("value of %d corrupted", got[i])
				}
			}
		})
	}
}
