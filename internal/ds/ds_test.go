package ds

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"ibr/internal/core"
)

// mapStructures are the key-value rideables of the paper's evaluation.
var mapStructures = []string{"list", "hashmap", "nmtree", "bonsai", "skiplist"}

func testConfig(scheme string, threads int) Config {
	return Config{
		Scheme:    scheme,
		Core:      core.Options{Threads: threads, EpochFreq: 16, EmptyFreq: 8},
		PoolSlots: 1 << 19,
		Buckets:   64,
		Poison:    true,
	}
}

func newTestMap(t *testing.T, structure, scheme string, threads int) Map {
	t.Helper()
	m, err := NewMap(structure, testConfig(scheme, threads))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// expectedNodes returns the node count a structure should hold at
// quiescence with k keys present (for leak accounting).
func expectedNodes(structure string, k int) uint64 {
	switch structure {
	case "nmtree":
		// External tree: k+3 leaves (3 sentinel leaves), internals = leaves-1,
		// minus the two fixed sentinel internals already counted.
		return uint64(2*(k+3) - 1)
	default: // list, hashmap, bonsai: one node per key
		return uint64(k)
	}
}

func TestNewMapUnknown(t *testing.T) {
	if _, err := NewMap("btree", testConfig("ebr", 1)); err == nil {
		t.Fatal("unknown structure did not error")
	}
}

func TestSchemeSupports(t *testing.T) {
	cases := []struct {
		scheme, structure string
		want              bool
	}{
		{"poibr", "list", false},
		{"poibr", "bonsai", true},
		{"poibr", "stack", true},
		{"hp", "bonsai", false},
		{"he", "bonsai", false},
		{"hp", "nmtree", true},
		{"ebr", "bonsai", true},
		{"tagibr", "list", true},
		// The post-paper engines protect whole operations (no per-pointer
		// slots), so every structure is legal — including the ones HP/HE
		// must skip.
		{"hyaline", "bonsai", true},
		{"hyaline", "skiplist", true},
		{"debra", "bonsai", true},
		{"debra", "skiplist", true},
	}
	for _, c := range cases {
		if got := SchemeSupports(c.scheme, c.structure); got != c.want {
			t.Errorf("SchemeSupports(%q,%q) = %v, want %v", c.scheme, c.structure, got, c.want)
		}
	}
}

// TestMapSequentialModel drives each structure (under EBR) against a Go map
// with a long random op sequence.
func TestMapSequentialModel(t *testing.T) {
	for _, structure := range mapStructures {
		t.Run(structure, func(t *testing.T) {
			m := newTestMap(t, structure, "ebr", 1)
			model := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(42))
			const keyRange = 128
			for i := 0; i < 20000; i++ {
				key := uint64(rng.Intn(keyRange))
				switch rng.Intn(3) {
				case 0:
					val := uint64(i)
					_, inModel := model[key]
					if got := m.Insert(0, key, val); got == inModel {
						t.Fatalf("op %d: Insert(%d) = %v, model has=%v", i, key, got, inModel)
					}
					if !inModel {
						model[key] = val
					}
				case 1:
					_, inModel := model[key]
					if got := m.Remove(0, key); got != inModel {
						t.Fatalf("op %d: Remove(%d) = %v, model has=%v", i, key, got, inModel)
					}
					delete(model, key)
				default:
					want, inModel := model[key]
					got, ok := m.Get(0, key)
					if ok != inModel || (ok && got != want) {
						t.Fatalf("op %d: Get(%d) = (%d,%v), model (%d,%v)", i, key, got, ok, want, inModel)
					}
				}
			}
			checkKeysMatchModel(t, m, model)
		})
	}
}

func checkKeysMatchModel(t *testing.T, m Map, model map[uint64]uint64) {
	t.Helper()
	want := make([]uint64, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := m.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys(): %d keys, model has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Keys()[%d] = %d, want %d", i, got[i], want[i])
		}
		if v, ok := m.Get(0, got[i]); !ok || v != model[got[i]] {
			t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", got[i], v, ok, model[got[i]])
		}
	}
}

// TestMapSequentialModel_Quick is a testing/quick-style randomized property
// run with different seeds per structure, catching order-dependent bugs the
// fixed-seed test misses.
func TestMapSequentialModel_Quick(t *testing.T) {
	for _, structure := range mapStructures {
		t.Run(structure, func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				m := newTestMap(t, structure, "tagibr", 1)
				model := map[uint64]uint64{}
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 2000; i++ {
					key := uint64(rng.Intn(40))
					if rng.Intn(2) == 0 {
						_, in := model[key]
						if m.Insert(0, key, key*3) == in {
							t.Fatalf("seed %d: Insert(%d) inconsistent", seed, key)
						}
						model[key] = key * 3
					} else {
						_, in := model[key]
						if m.Remove(0, key) != in {
							t.Fatalf("seed %d: Remove(%d) inconsistent", seed, key)
						}
						delete(model, key)
					}
				}
				checkKeysMatchModel(t, m, model)
			}
		})
	}
}

func TestFillThenOperate(t *testing.T) {
	for _, structure := range mapStructures {
		t.Run(structure, func(t *testing.T) {
			m := newTestMap(t, structure, "2geibr", 1)
			var pairs []KV
			for k := uint64(0); k < 500; k += 2 {
				pairs = append(pairs, KV{Key: k, Val: k + 1})
			}
			m.Fill(pairs)
			if got := m.Keys(); len(got) != 250 {
				t.Fatalf("after Fill: %d keys, want 250", len(got))
			}
			if v, ok := m.Get(0, 48); !ok || v != 49 {
				t.Fatalf("Get(48) = (%d,%v), want (49,true)", v, ok)
			}
			if m.Insert(0, 48, 0) {
				t.Fatal("Insert of filled key succeeded")
			}
			if !m.Insert(0, 49, 50) {
				t.Fatal("Insert of absent key failed")
			}
			if !m.Remove(0, 48) {
				t.Fatal("Remove of filled key failed")
			}
			if _, ok := m.Get(0, 48); ok {
				t.Fatal("removed key still present")
			}
		})
	}
}

func TestFillDuplicatesAndUnsorted(t *testing.T) {
	for _, structure := range mapStructures {
		t.Run(structure, func(t *testing.T) {
			m := newTestMap(t, structure, "ebr", 1)
			m.Fill([]KV{{5, 1}, {1, 2}, {5, 3}, {3, 4}, {1, 5}})
			got := m.Keys()
			want := []uint64{1, 3, 5}
			if len(got) != len(want) {
				t.Fatalf("Keys() = %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Keys() = %v, want %v", got, want)
				}
			}
		})
	}
}

// TestMapConcurrentDisjointModel is the main correctness stress: each
// thread owns a disjoint key range and checks every operation's result
// against its private model — any lost update, phantom key, or
// use-after-free-induced corruption shows up as a model mismatch or a
// poisoned value. Runs over the full (structure × applicable scheme) grid.
func TestMapConcurrentDisjointModel(t *testing.T) {
	const (
		threads  = 4
		iters    = 3000
		keysEach = 64
	)
	for _, structure := range mapStructures {
		for _, scheme := range core.Names() {
			if !SchemeSupports(scheme, structure) {
				continue
			}
			t.Run(structure+"/"+scheme, func(t *testing.T) {
				m := newTestMap(t, structure, scheme, threads)
				var wg sync.WaitGroup
				models := make([]map[uint64]uint64, threads)
				for tid := 0; tid < threads; tid++ {
					wg.Add(1)
					go func(tid int) {
						defer wg.Done()
						model := map[uint64]uint64{}
						models[tid] = model
						base := uint64(tid) * 1000
						rng := rand.New(rand.NewSource(int64(tid) * 7919))
						for i := 0; i < iters; i++ {
							key := base + uint64(rng.Intn(keysEach))
							switch rng.Intn(4) {
							case 0, 1:
								val := uint64(i)*uint64(threads) + uint64(tid)
								_, in := model[key]
								if m.Insert(tid, key, val) == in {
									t.Errorf("tid %d: Insert(%d) inconsistent with model", tid, key)
									return
								}
								if !in {
									model[key] = val
								}
							case 2:
								_, in := model[key]
								if m.Remove(tid, key) != in {
									t.Errorf("tid %d: Remove(%d) inconsistent with model", tid, key)
									return
								}
								delete(model, key)
							default:
								want, in := model[key]
								got, ok := m.Get(tid, key)
								if ok != in || (ok && got != want) {
									t.Errorf("tid %d: Get(%d) = (%d,%v), model (%d,%v)", tid, key, got, ok, want, in)
									return
								}
							}
						}
					}(tid)
				}
				wg.Wait()
				if t.Failed() {
					return
				}
				// Union of models must equal the final key set.
				union := map[uint64]uint64{}
				for _, model := range models {
					for k, v := range model {
						union[k] = v
					}
				}
				checkKeysMatchModel(t, m, union)

				// Leak accounting (quiescent): drain every retire list and
				// compare live slots against the reachable structure.
				inst := m.(Instrumented)
				if sl, ok := m.(*SkipList); ok {
					sl.Sweep(0) // release ghost routers before accounting
				}
				if scheme != "none" {
					core.DrainAll(inst.Scheme(), threads)
					st := inst.PoolStats()
					if want := expectedNodes(structure, len(union)); st.Live() != want {
						t.Fatalf("leak check: %d live slots, want %d (allocs %d frees %d)",
							st.Live(), want, st.Allocs, st.Frees)
					}
				}
				if b, ok := m.(*Bonsai); ok {
					if err := b.Validate(); err != nil {
						t.Fatal(err)
					}
				}
				if sl, ok := m.(*SkipList); ok {
					if err := sl.Validate(); err != nil {
						t.Fatal(err)
					}
				}
			})
		}
	}
}

// TestMapConcurrentSharedKeys hammers a tiny shared key range from all
// threads — maximum contention on the same nodes — and then checks
// structural invariants and leak accounting.
func TestMapConcurrentSharedKeys(t *testing.T) {
	const (
		threads = 4
		iters   = 4000
		keys    = 16
	)
	for _, structure := range mapStructures {
		for _, scheme := range []string{"none", "ebr", "hp", "he", "poibr", "tagibr", "tagibr-wcas", "2geibr", "hyaline", "debra"} {
			if !SchemeSupports(scheme, structure) {
				continue
			}
			t.Run(structure+"/"+scheme, func(t *testing.T) {
				m := newTestMap(t, structure, scheme, threads)
				var wg sync.WaitGroup
				for tid := 0; tid < threads; tid++ {
					wg.Add(1)
					go func(tid int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(tid)*104729 + 7))
						for i := 0; i < iters; i++ {
							key := uint64(rng.Intn(keys))
							switch rng.Intn(3) {
							case 0:
								m.Insert(tid, key, key*2+1)
							case 1:
								m.Remove(tid, key)
							default:
								if v, ok := m.Get(tid, key); ok && v != key*2+1 {
									t.Errorf("Get(%d) returned corrupted value %d", key, v)
									return
								}
							}
						}
					}(tid)
				}
				wg.Wait()
				if t.Failed() {
					return
				}
				got := m.Keys()
				for i := 1; i < len(got); i++ {
					if got[i-1] >= got[i] {
						t.Fatalf("Keys() not strictly sorted: %v", got)
					}
				}
				inst := m.(Instrumented)
				if sl, ok := m.(*SkipList); ok {
					sl.Sweep(0)
				}
				if scheme != "none" {
					core.DrainAll(inst.Scheme(), threads)
					st := inst.PoolStats()
					if want := expectedNodes(structure, len(got)); st.Live() != want {
						t.Fatalf("leak check: %d live, want %d", st.Live(), want)
					}
				}
				if b, ok := m.(*Bonsai); ok {
					if err := b.Validate(); err != nil {
						t.Fatal(err)
					}
				}
				if sl, ok := m.(*SkipList); ok {
					if err := sl.Validate(); err != nil {
						t.Fatal(err)
					}
				}
			})
		}
	}
}

func TestBonsaiBalanceAfterSkewedLoad(t *testing.T) {
	m := newTestMap(t, "bonsai", "poibr", 1).(*Bonsai)
	// Ascending inserts are the classic BST worst case.
	for k := uint64(0); k < 4096; k++ {
		m.Insert(0, k, k)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Remove every other key; balance must survive deletion too.
	for k := uint64(0); k < 4096; k += 2 {
		m.Remove(0, k)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Keys()); got != 2048 {
		t.Fatalf("%d keys left, want 2048", got)
	}
}

func TestNMTreeSentinelsUntouchable(t *testing.T) {
	m := newTestMap(t, "nmtree", "ebr", 1).(*NMTree)
	m.Insert(0, 1, 1)
	m.Remove(0, 1)
	// The sentinel internals must still be wired after churn.
	if m.pool.Get(m.rootR).key != nmInf2 || m.pool.Get(m.rootS).key != nmInf1 {
		t.Fatal("sentinel keys corrupted")
	}
	if !m.pool.Get(m.rootR).left.Raw().SameAddr(m.rootS) {
		t.Fatal("R.left no longer points at S")
	}
}

func TestKeyLimitEnforced(t *testing.T) {
	for _, structure := range []string{"nmtree", "bonsai", "skiplist"} {
		m := newTestMap(t, structure, "ebr", 1)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: oversized key did not panic", structure)
				}
			}()
			m.Insert(0, KeyLimit, 1)
		}()
	}
}

// --- Stack tests ---

func TestStackSequential(t *testing.T) {
	for _, scheme := range []string{"ebr", "poibr", "hp", "tagibr-wcas"} {
		t.Run(scheme, func(t *testing.T) {
			st, err := NewStack(testConfig(scheme, 1))
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := st.Pop(0); ok {
				t.Fatal("pop from empty stack succeeded")
			}
			for i := uint64(1); i <= 100; i++ {
				st.Push(0, i)
			}
			if st.Len() != 100 {
				t.Fatalf("Len = %d, want 100", st.Len())
			}
			for i := uint64(100); i >= 1; i-- {
				v, ok := st.Pop(0)
				if !ok || v != i {
					t.Fatalf("Pop = (%d,%v), want (%d,true)", v, ok, i)
				}
			}
			if _, ok := st.Pop(0); ok {
				t.Fatal("stack not empty at end")
			}
		})
	}
}

func TestStackConcurrentConservation(t *testing.T) {
	const threads, per = 4, 5000
	for _, scheme := range []string{"ebr", "poibr", "hp", "he", "tagibr", "2geibr"} {
		t.Run(scheme, func(t *testing.T) {
			st, err := NewStack(testConfig(scheme, threads))
			if err != nil {
				t.Fatal(err)
			}
			var pushed, popped [threads]uint64
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(tid)))
					for i := 0; i < per; i++ {
						if rng.Intn(2) == 0 {
							if st.Push(tid, uint64(i)+1) {
								pushed[tid]++
							}
						} else {
							if _, ok := st.Pop(tid); ok {
								popped[tid]++
							}
						}
					}
				}(tid)
			}
			wg.Wait()
			var p, q uint64
			for i := 0; i < threads; i++ {
				p += pushed[i]
				q += popped[i]
			}
			if got := uint64(st.Len()); got != p-q {
				t.Fatalf("Len = %d, want pushed-popped = %d", got, p-q)
			}
			core.DrainAll(st.Scheme(), threads)
			if live := st.PoolStats().Live(); live != p-q {
				t.Fatalf("leak: %d live, want %d", live, p-q)
			}
		})
	}
}

// --- Queue tests ---

func TestQueueSequentialFIFO(t *testing.T) {
	for _, scheme := range []string{"ebr", "hp", "he", "tagibr", "tagibr-wcas", "2geibr"} {
		t.Run(scheme, func(t *testing.T) {
			q, err := NewQueue(testConfig(scheme, 1))
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := q.Dequeue(0); ok {
				t.Fatal("dequeue from empty queue succeeded")
			}
			for i := uint64(1); i <= 100; i++ {
				q.Enqueue(0, i)
			}
			for i := uint64(1); i <= 100; i++ {
				v, ok := q.Dequeue(0)
				if !ok || v != i {
					t.Fatalf("Dequeue = (%d,%v), want (%d,true)", v, ok, i)
				}
			}
			if q.Len() != 0 {
				t.Fatal("queue not empty at end")
			}
		})
	}
}

func TestQueueConcurrentFIFOPerProducer(t *testing.T) {
	// With concurrent producers, global FIFO order is undefined, but each
	// producer's values must be consumed in that producer's order.
	const producers, per = 3, 4000
	for _, scheme := range []string{"ebr", "hp", "tagibr", "2geibr"} {
		t.Run(scheme, func(t *testing.T) {
			threads := producers + 1
			q, err := NewQueue(testConfig(scheme, threads))
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						// value = producer id in high bits, sequence in low
						for !q.Enqueue(p, uint64(p)<<32|uint64(i)) {
						}
					}
				}(p)
			}
			seen := make([]int64, producers)
			for i := range seen {
				seen[i] = -1
			}
			consumed := 0
			done := make(chan struct{})
			go func() {
				defer close(done)
				tid := producers
				for consumed < producers*per {
					v, ok := q.Dequeue(tid)
					if !ok {
						continue
					}
					p := int(v >> 32)
					seq := int64(v & 0xffffffff)
					if seq <= seen[p] {
						t.Errorf("producer %d: saw seq %d after %d", p, seq, seen[p])
						return
					}
					seen[p] = seq
					consumed++
				}
			}()
			wg.Wait()
			<-done
			if t.Failed() {
				return
			}
			if q.Len() != 0 {
				t.Fatalf("queue has %d leftovers", q.Len())
			}
			core.DrainAll(q.Scheme(), threads)
			if live := q.PoolStats().Live(); live != 1 { // the dummy
				t.Fatalf("leak: %d live, want 1 (dummy)", live)
			}
		})
	}
}

// TestListWorstCaseChain checks long-chain traversal with interleaved
// removals at a boundary (regression guard for window validation).
func TestListWorstCaseChain(t *testing.T) {
	m := newTestMap(t, "list", "tagibr", 2)
	var pairs []KV
	for k := uint64(0); k < 2000; k++ {
		pairs = append(pairs, KV{k, k})
	}
	m.Fill(pairs)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // remover sweeps forward
		defer wg.Done()
		for k := uint64(0); k < 2000; k += 2 {
			m.Remove(0, k)
		}
	}()
	go func() { // reader sweeps backward
		defer wg.Done()
		for k := int64(1999); k >= 0; k-- {
			if v, ok := m.Get(1, uint64(k)); ok && v != uint64(k) {
				t.Errorf("Get(%d) corrupted: %d", k, v)
				return
			}
		}
	}()
	wg.Wait()
	if got := len(m.Keys()); got != 1000 {
		t.Fatalf("%d keys left, want 1000", got)
	}
}

func TestStructuresList(t *testing.T) {
	want := map[string]bool{}
	for _, s := range Structures() {
		want[s] = true
	}
	for _, s := range []string{"list", "hashmap", "nmtree", "bonsai", "stack", "msqueue"} {
		if !want[s] {
			t.Fatalf("Structures() missing %q", s)
		}
	}
}

func TestHashMapBucketSpread(t *testing.T) {
	m := newTestMap(t, "hashmap", "ebr", 1).(*HashMap)
	counts := map[*core.Ptr]int{}
	for k := uint64(0); k < 1024; k++ {
		counts[m.bucket(k)]++
	}
	if len(counts) < len(m.buckets)/2 {
		t.Fatalf("1024 consecutive keys landed in only %d/%d buckets", len(counts), len(m.buckets))
	}
}

func ExampleMap() {
	m, _ := NewMap("hashmap", Config{Scheme: "tagibr", Core: core.Options{Threads: 1}})
	m.Insert(0, 7, 700)
	v, ok := m.Get(0, 7)
	fmt.Println(v, ok)
	// Output: 700 true
}

// TestNMTreeFragmentChurn is the regression test for the stale-fragment
// redirect bug (DESIGN.md finding iii): a tiny key range drives constant
// overlapping deletes, maximizing detached-fragment traffic. Freed-node
// poison turns any read through a recycled slot into a visible corruption,
// and the final accounting proves the fragment walk retires exactly the
// detached nodes. Run with -race for the full proof.
func TestNMTreeFragmentChurn(t *testing.T) {
	for _, scheme := range []string{"tagibr", "tagibr-wcas", "2geibr", "hp", "he", "ebr"} {
		t.Run(scheme, func(t *testing.T) {
			const threads, iters, keys = 4, 30000, 8
			m := newTestMap(t, "nmtree", scheme, threads).(*NMTree)
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						k := uint64(i*7+tid*3) % keys
						m.Insert(tid, k, k*2+1)
						m.Remove(tid, (k+3)%keys)
						if v, ok := m.Get(tid, (k+5)%keys); ok && v != ((k+5)%keys)*2+1 {
							t.Errorf("Get returned corrupted value %d (freed slot reached?)", v)
							return
						}
					}
				}(tid)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			core.DrainAll(m.Scheme(), threads)
			got := m.Keys()
			if want := expectedNodes("nmtree", len(got)); m.PoolStats().Live() != want {
				t.Fatalf("leak: %d live, want %d", m.PoolStats().Live(), want)
			}
		})
	}
}
