package ds

import (
	"ibr/internal/core"
	"ibr/internal/mem"
)

// NMTree is the lock-free external binary search tree of Natarajan and
// Mittal (PPoPP 2014), the third rideable of the IBR paper's evaluation
// (§5). Keys live in leaves; internal nodes route. Updates synchronize on
// *edges*: a delete first FLAGs the edge to its victim leaf (injection),
// then TAGs the edge to the sibling and swings the deepest clean ancestor
// edge over the whole doomed chain (cleanup). Mark bit 0 of a child pointer
// is the FLAG; mark bit 1 is the TAG.
//
// One deliberate improvement over the paper's artifact: when a cleanup CAS
// wins, this implementation retires the *entire* detached fragment (the
// tagged chain from successor down to parent plus every flagged leaf
// hanging off it), not just parent and leaf. Overlapping deletes otherwise
// leak the inner nodes of the chain; owning the fragment is safe because
// every edge inside it is tagged or flagged, so no other CAS can succeed
// there (the winner has exclusive custody).
type NMTree struct {
	pool *mem.Pool[nmNode]
	s    core.Scheme
	// Sentinel internals R (key infinity2) and S (key infinity1); fixed,
	// never retired. All application keys are < infinity1, so every seek
	// descends R -> S -> S.left subtree.
	rootR, rootS mem.Handle
}

// nmNode is a tree node; isLeaf is immutable after publication.
type nmNode struct {
	key    uint64
	val    uint64
	isLeaf uint32
	left   core.Ptr
	right  core.Ptr
}

func nmPoison(n *nmNode) { n.key = ^uint64(0); n.val = ^uint64(0) }

// Sentinel keys: infinity1 < infinity2, both above every application key.
const (
	nmInf1 = KeyLimit
	nmInf2 = KeyLimit + 1
)

// Protection slot roles for the tree (HP/HE). slotHold keeps the victim
// leaf protected across the re-seeks of a delete's cleanup phase.
const (
	nmSlotAnc  = 0
	nmSlotSuc  = 1
	nmSlotPar  = 2
	nmSlotLeaf = 3
	nmSlotCur  = 4
	nmSlotHold = 5
)

// NewNMTree builds a Natarajan–Mittal tree running under cfg.Scheme.
func NewNMTree(cfg Config) (*NMTree, error) {
	popt := mem.Options[nmNode]{Threads: cfg.Core.Threads, MaxSlots: cfg.PoolSlots}
	if cfg.Poison {
		popt.Poison = nmPoison
	}
	pool := mem.New[nmNode](popt)
	s, err := core.New(cfg.Scheme, pool, cfg.Core)
	if err != nil {
		return nil, err
	}
	t := &NMTree{pool: pool, s: s}

	// Initial shape (single-threaded): R(inf2){S, leaf(inf2)},
	// S(inf1){leaf(inf1), leaf(inf2)}. Bracketed like any operation so the
	// setup follows the same reservation discipline ibrlint checks.
	s.StartOp(0)
	defer s.EndOp(0)
	leaf := func(key uint64) mem.Handle {
		h := s.Alloc(0)
		n := pool.Get(h)
		n.key, n.val, n.isLeaf = key, 0, 1
		s.Write(0, &n.left, mem.Nil)
		s.Write(0, &n.right, mem.Nil)
		return h
	}
	t.rootS = s.Alloc(0)
	sn := pool.Get(t.rootS)
	sn.key, sn.isLeaf = nmInf1, 0
	s.Write(0, &sn.left, leaf(nmInf1))
	s.Write(0, &sn.right, leaf(nmInf2))
	t.rootR = s.Alloc(0)
	rn := pool.Get(t.rootR)
	rn.key, rn.isLeaf = nmInf2, 0
	s.Write(0, &rn.left, t.rootS)
	s.Write(0, &rn.right, leaf(nmInf2))
	return t, nil
}

// nmSeek is the seek record: handles are mark-free but may carry a packed
// epoch (TagIBR-WCAS), so comparisons use SameAddr and CAS expectations use
// the handle exactly as read.
type nmSeek struct {
	ancestor, successor, parent, leaf mem.Handle
}

// childOf returns the child field of internal node n on key's side.
func childOf(n *nmNode, key uint64) *core.Ptr {
	if key < n.key {
		return &n.left
	}
	return &n.right
}

// seek walks from the sentinels to the leaf on key's search path,
// maintaining the Natarajan–Mittal invariant: (ancestor → successor) is the
// deepest clean (untagged) edge seen on the path, and parent is leaf's
// parent. Protection slots are transferred as roles shift, so every
// recorded node stays protected.
func (t *NMTree) seek(tid int, key uint64) nmSeek {
	s := t.s
	r := nmSeek{ancestor: t.rootR, successor: t.rootS, parent: t.rootS}
	sn := t.pool.Get(t.rootS)
	// Edge S -> S.left: sentinel edges are never tagged or flagged.
	parentField := s.Read(tid, nmSlotLeaf, &sn.left)
	r.leaf = parentField.ClearMarks()
	for {
		node := t.pool.Get(r.leaf)
		if node.isLeaf == 1 {
			return r
		}
		cf := s.Read(tid, nmSlotCur, childOf(node, key))
		// Advance: leaf becomes parent; if the edge into it was untagged it
		// also becomes the successor (with its parent as ancestor).
		if !parentField.Mark1() {
			r.ancestor = r.parent
			s.TransferSlot(tid, nmSlotPar, nmSlotAnc)
			r.successor = r.leaf
			s.TransferSlot(tid, nmSlotLeaf, nmSlotSuc)
		}
		r.parent = r.leaf
		s.TransferSlot(tid, nmSlotLeaf, nmSlotPar)
		r.leaf = cf.ClearMarks()
		s.TransferSlot(tid, nmSlotCur, nmSlotLeaf)
		parentField = cf
	}
}

// cleanup attempts to physically remove the delete operation injected at
// sr's parent/leaf window (ours or another thread's — callers use it to
// help). It returns true iff this call's CAS performed the removal.
func (t *NMTree) cleanup(tid int, key uint64, sr nmSeek) bool {
	s := t.s
	anc := t.pool.Get(sr.ancestor)
	par := t.pool.Get(sr.parent)
	succField := childOf(anc, key)
	childAddr := childOf(par, key)
	sibAddr := &par.left
	if childAddr == &par.left {
		sibAddr = &par.right
	}
	if !childAddr.Raw().Mark0() {
		// Our side is not the flagged one: we are helping a delete whose
		// victim is the other child.
		childAddr, sibAddr = sibAddr, childAddr
		if !childAddr.Raw().Mark0() {
			// No injection on either edge (stale help request): tagging or
			// swinging here could excise an innocent leaf. Bail out.
			return false
		}
	}
	// Freeze the sibling edge so the subtree we are about to relink cannot
	// change underneath the swing.
	sv := sibAddr.FetchOrMarks(mem.Mark1Bit).WithMark1()
	// Swing the deepest clean ancestor edge over the doomed chain: the
	// sibling is relinked in place of successor. The sibling edge's FLAG
	// (if its leaf is itself under deletion) is preserved; the TAG is not
	// copied — the new edge is a fresh, mutable one.
	if !s.CompareAndSwap(tid, succField, sr.successor, sv.ClearMark1()) {
		return false
	}
	t.retireFragment(tid, key, sr, childAddr)
	return true
}

// retireFragment retires the chain detached by a winning cleanup CAS:
// internal nodes from successor down to parent (inclusive) along key's
// path, each flagged leaf hanging off it, and the victim leaf. Every edge
// in the fragment is tagged or flagged, so no concurrent CAS can succeed
// inside it: the winner owns every node and each is retired exactly once.
//
// The paper's well-behavedness proviso (§4.1) requires every shared pointer
// to a block to be overwritten before the block is retired — otherwise a
// reader already inside the fragment could pick up a pointer to a block
// *after* its retire, which no lightweight scheme tolerates (validation
// re-reads the source pointer, so it catches an overwrite but never a
// retire of an unchanged target). We therefore redirect each fragment
// node's child edges before retiring the children. The redirect target
// must be a node that can NEVER be retired: these stale edges live forever
// inside dead fragments, so pointing them at any reclaimable node (the
// sibling, say) re-creates the violation the moment that node is deleted —
// a parked reader would follow the stale edge to a freed slot and no
// revalidation could tell. We use the sentinel S: a reader routed there
// simply resumes its descent through live edges (an implicit restart), and
// the tag bit on the redirect makes every clean-expecting CAS against a
// detached edge fail, so no update can be lost into a dead fragment.
func (t *NMTree) retireFragment(tid int, key uint64, sr nmSeek, victimAddr *core.Ptr) {
	s := t.s
	cur := sr.successor // incoming pointer already gone: the swing removed it
	for !cur.SameAddr(sr.parent) {
		n := t.pool.Get(cur)
		onPath := childOf(n, key)
		offPath := &n.left
		if onPath == &n.left {
			offPath = &n.right
		}
		// The off-path edge of a tagged-chain node is a flagged leaf —
		// the victim of the delete that tagged our on-path edge.
		next := onPath.Raw().ClearMarks()
		off := offPath.Raw()
		// Route readers to the immortal sentinel, then retire; children
		// follow once their incoming edge is overwritten.
		s.Write(tid, &n.left, t.rootS.WithMark1())
		s.Write(tid, &n.right, t.rootS.WithMark1())
		s.Retire(tid, cur)
		if !off.IsNil() {
			s.Retire(tid, off)
		}
		cur = next
	}
	// cur == parent: same dance; its children are the victim leaf and the
	// sibling (which was just relinked — never retired).
	v := victimAddr.Raw()
	n := t.pool.Get(cur)
	s.Write(tid, &n.left, t.rootS.WithMark1())
	s.Write(tid, &n.right, t.rootS.WithMark1())
	if !cur.SameAddr(t.rootS) { // never retire sentinels (defensive)
		s.Retire(tid, cur)
	}
	if !v.IsNil() {
		s.Retire(tid, v)
	}
}

// Name returns "nmtree".
func (t *NMTree) Name() string { return "nmtree" }

// Get returns the value bound to key.
func (t *NMTree) Get(tid int, key uint64) (uint64, bool) {
	checkKey(key)
	s := t.s
	s.StartOp(tid)
	defer s.EndOp(tid)
	sr := t.seek(tid, key)
	n := t.pool.Get(sr.leaf)
	if n.key != key {
		return 0, false
	}
	return n.val, true
}

// Insert adds key→val; false if present.
func (t *NMTree) Insert(tid int, key, val uint64) bool {
	checkKey(key)
	s := t.s
	s.StartOp(tid)
	defer s.EndOp(tid)
	newLeaf := mem.Nil
	fails := 0
	for {
		if fails >= restartThreshold {
			fails = 0
			s.RestartOp(tid) // holds only private (unpublished) nodes
		}
		sr := t.seek(tid, key)
		leafNode := t.pool.Get(sr.leaf)
		if leafNode.key == key {
			if !newLeaf.IsNil() {
				//ibrlint:ignore never published; no CAS linked the leaf, so no other thread can hold it
				t.pool.Free(tid, newLeaf)
			}
			return false
		}
		if newLeaf.IsNil() {
			newLeaf = s.Alloc(tid)
			if newLeaf.IsNil() {
				return false
			}
			ln := t.pool.Get(newLeaf)
			ln.key, ln.val, ln.isLeaf = key, val, 1
			s.Write(tid, &ln.left, mem.Nil)
			s.Write(tid, &ln.right, mem.Nil)
		}
		// Replace the leaf with internal{max(key, leaf.key)} routing to
		// {new leaf, old leaf} in key order.
		newInt := s.Alloc(tid)
		if newInt.IsNil() {
			//ibrlint:ignore never published; the private leaf is discarded on allocator exhaustion
			t.pool.Free(tid, newLeaf)
			return false
		}
		in := t.pool.Get(newInt)
		in.isLeaf = 0
		if key < leafNode.key {
			in.key = leafNode.key
			s.Write(tid, &in.left, newLeaf)
			s.Write(tid, &in.right, sr.leaf)
		} else {
			in.key = key
			s.Write(tid, &in.left, sr.leaf)
			s.Write(tid, &in.right, newLeaf)
		}
		parNode := t.pool.Get(sr.parent)
		childAddr := childOf(parNode, key)
		if s.CompareAndSwap(tid, childAddr, sr.leaf, newInt) {
			return true
		}
		// Failed: discard the internal (never published), help any delete
		// stuck on this edge, retry.
		//ibrlint:ignore never published; the publish CAS failed, the internal node stayed private
		t.pool.Free(tid, newInt)
		fails++
		if cf := childAddr.Raw(); cf.SameAddr(sr.leaf) && cf.Marks() != 0 {
			t.cleanup(tid, key, sr)
		}
	}
}

// Remove deletes key; false if absent. It follows the paper's two-phase
// protocol: INJECTION (flag the victim edge — the delete's linearization)
// then CLEANUP (swing the ancestor edge; retried, with helping, until the
// victim is observed gone).
func (t *NMTree) Remove(tid int, key uint64) bool {
	checkKey(key)
	s := t.s
	s.StartOp(tid)
	defer s.EndOp(tid)
	injecting := true
	victim := mem.Nil
	fails := 0
	for {
		sr := t.seek(tid, key)
		if injecting {
			if fails >= restartThreshold {
				fails = 0
				s.RestartOp(tid) // no references held in injection mode
				continue
			}
			if t.pool.Get(sr.leaf).key != key {
				return false
			}
			parNode := t.pool.Get(sr.parent)
			childAddr := childOf(parNode, key)
			if s.CompareAndSwap(tid, childAddr, sr.leaf, sr.leaf.WithMark0()) {
				victim = sr.leaf
				// Keep the victim protected across cleanup's re-seeks.
				s.TransferSlot(tid, nmSlotLeaf, nmSlotHold)
				injecting = false
				if t.cleanup(tid, key, sr) {
					return true
				}
			} else {
				fails++
				if cf := childAddr.Raw(); cf.SameAddr(sr.leaf) && cf.Marks() != 0 {
					t.cleanup(tid, key, sr)
				}
			}
		} else {
			// Our flag is planted; the delete has logically happened. Keep
			// cleaning until we win or someone else removed the victim.
			if !sr.leaf.SameAddr(victim) {
				return true
			}
			if t.cleanup(tid, key, sr) {
				return true
			}
		}
	}
}

// Fill bulk-loads pairs (single-threaded) through the normal insert path.
func (t *NMTree) Fill(pairs []KV) {
	for _, kv := range pairs {
		t.Insert(0, kv.Key, kv.Val)
	}
}

// Keys returns the ascending application key set (quiescence only).
//
//ibrlint:ignore quiescence-only: documented to run with no concurrent operations
func (t *NMTree) Keys() []uint64 {
	var out []uint64
	var walk func(h mem.Handle)
	walk = func(h mem.Handle) {
		h = h.ClearMarks()
		if h.IsNil() {
			return
		}
		n := t.pool.Get(h)
		if n.isLeaf == 1 {
			if n.key < KeyLimit {
				out = append(out, n.key)
			}
			return
		}
		walk(n.left.Raw())
		walk(n.right.Raw())
	}
	walk(t.pool.Get(t.rootS).left.Raw())
	return out
}

// Scheme exposes the reclamation scheme.
func (t *NMTree) Scheme() core.Scheme { return t.s }

// PoolStats exposes allocator counters.
func (t *NMTree) PoolStats() mem.Stats { return t.pool.Stats() }

func checkKey(key uint64) {
	if key >= KeyLimit {
		panic("ds: application keys must be below KeyLimit")
	}
}
