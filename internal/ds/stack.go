package ds

import (
	"ibr/internal/core"
	"ibr/internal/mem"
)

// Stack is the Treiber lock-free stack (Treiber 1986), cited in §3.1 of the
// paper as the simplest persistent data structure: nodes below the top are
// immutable, and the only mutable pointer is the top-of-stack — so POIBR's
// root-snapshot reservation protects everything a pop can touch.
type Stack struct {
	pool *mem.Pool[stackNode]
	s    core.Scheme
	top  core.Ptr
}

type stackNode struct {
	val  uint64
	next core.Ptr
}

// NewStack builds a Treiber stack running under cfg.Scheme.
func NewStack(cfg Config) (*Stack, error) {
	popt := mem.Options[stackNode]{Threads: cfg.Core.Threads, MaxSlots: cfg.PoolSlots}
	if cfg.Poison {
		popt.Poison = func(n *stackNode) { n.val = ^uint64(0) }
	}
	pool := mem.New[stackNode](popt)
	s, err := core.New(cfg.Scheme, pool, cfg.Core)
	if err != nil {
		return nil, err
	}
	return &Stack{pool: pool, s: s}, nil
}

// Name returns "stack".
func (st *Stack) Name() string { return "stack" }

// Push adds val to the top. It returns false only on pool exhaustion.
func (st *Stack) Push(tid int, val uint64) bool {
	s := st.s
	s.StartOp(tid)
	defer s.EndOp(tid)
	h := s.Alloc(tid)
	if h.IsNil() {
		return false
	}
	n := st.pool.Get(h)
	n.val = val
	fails := 0
	for {
		top := s.ReadRoot(tid, 0, &st.top)
		s.Write(tid, &n.next, top)
		if s.CompareAndSwap(tid, &st.top, top, h) {
			return true
		}
		if fails++; fails >= restartThreshold {
			fails = 0
			s.RestartOp(tid) // only the private node is held
		}
	}
}

// Pop removes and returns the top value.
func (st *Stack) Pop(tid int) (uint64, bool) {
	s := st.s
	s.StartOp(tid)
	defer s.EndOp(tid)
	fails := 0
	for {
		top := s.ReadRoot(tid, 0, &st.top)
		if top.IsNil() {
			return 0, false
		}
		n := st.pool.Get(top)
		next := s.Read(tid, 1, &n.next)
		val := n.val
		if s.CompareAndSwap(tid, &st.top, top, next) {
			s.Retire(tid, top)
			return val, true
		}
		if fails++; fails >= restartThreshold {
			fails = 0
			s.RestartOp(tid)
		}
	}
}

// Len counts nodes (quiescence only).
//
//ibrlint:ignore quiescence-only: documented to run with no concurrent operations
func (st *Stack) Len() int {
	n := 0
	for h := st.top.Raw(); !h.IsNil(); h = st.pool.Get(h).next.Raw() {
		n++
	}
	return n
}

// Scheme exposes the reclamation scheme.
func (st *Stack) Scheme() core.Scheme { return st.s }

// PoolStats exposes allocator counters.
func (st *Stack) PoolStats() mem.Stats { return st.pool.Stats() }
