package mem

import (
	"sync"
	"testing"
)

func TestFreeBatchBasics(t *testing.T) {
	p := newTestPool(t, 1, 0)
	var hs []Handle
	stamps := map[Handle]uint64{}
	for i := 0; i < 10; i++ {
		h, ok := p.Alloc(0)
		if !ok {
			t.Fatal("alloc failed")
		}
		stamps[h] = p.Stamp(h)
		hs = append(hs, h)
	}
	p.FreeBatch(0, hs)
	for _, h := range hs {
		if p.State(h) != StateFree {
			t.Fatalf("%v: state = %v after FreeBatch, want free", h, p.State(h))
		}
		if p.Stamp(h) != stamps[h]+1 {
			t.Fatalf("%v: stamp = %d, want %d (one bump per free)", h, p.Stamp(h), stamps[h]+1)
		}
	}
	if st := p.Stats(); st.Frees != 10 {
		t.Fatalf("Frees = %d, want 10", st.Frees)
	}
	// The slots are genuinely reusable.
	for i := 0; i < 10; i++ {
		if _, ok := p.Alloc(0); !ok {
			t.Fatalf("alloc %d after FreeBatch failed", i)
		}
	}
}

func TestFreeBatchRetiredSlots(t *testing.T) {
	// Reclamation scans free Retired slots, not Live ones; both transitions
	// must be accepted, exactly as in Free.
	p := newTestPool(t, 1, 0)
	live, _ := p.Alloc(0)
	retired, _ := p.Alloc(0)
	p.SetRetireEpoch(retired, 3)
	p.MarkRetired(retired)
	p.FreeBatch(0, []Handle{live, retired})
	if p.State(live) != StateFree || p.State(retired) != StateFree {
		t.Fatalf("states = %v/%v, want free/free", p.State(live), p.State(retired))
	}
}

func TestFreeBatchEmptyIsNoop(t *testing.T) {
	p := newTestPool(t, 1, 0)
	p.FreeBatch(0, nil)
	p.FreeBatch(0, []Handle{})
	if st := p.Stats(); st.Frees != 0 {
		t.Fatalf("Frees = %d after empty batches, want 0", st.Frees)
	}
}

func TestFreeBatchPoisons(t *testing.T) {
	p := New[testNode](Options[testNode]{
		Threads: 1,
		Poison:  func(n *testNode) { n.key, n.val = 0xDEAD, 0xDEAD },
	})
	var hs []Handle
	for i := 0; i < 4; i++ {
		h, _ := p.Alloc(0)
		n := p.Get(h)
		n.key, n.val = uint64(i), uint64(i)
		hs = append(hs, h)
	}
	p.FreeBatch(0, hs)
	for _, h := range hs {
		// get, not Get: reading a freed body is the point here, and the
		// ibrdebug build would (rightly) panic on the public accessor.
		if n := p.get(h); n.key != 0xDEAD || n.val != 0xDEAD {
			t.Fatalf("%v: body = %+v, want poison", h, *n)
		}
	}
}

func TestFreeBatchDoubleFreePanics(t *testing.T) {
	p := newTestPool(t, 1, 0)
	h, _ := p.Alloc(0)
	other, _ := p.Alloc(0)
	p.Free(0, h)
	defer func() {
		if recover() == nil {
			t.Fatal("FreeBatch of an already-free slot did not panic")
		}
	}()
	p.FreeBatch(0, []Handle{other, h})
}

func TestFreeBatchNilPanics(t *testing.T) {
	p := newTestPool(t, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("FreeBatch of Nil did not panic")
		}
	}()
	p.FreeBatch(0, []Handle{Nil})
}

// TestFreeBatchSpillHysteresis checks the one-lock spill: a batch that
// overfills the thread cache drains it to the same low-water mark Free's
// per-slot hysteresis converges to, and the spilled slots reach the global
// list where another thread can refill from them.
func TestFreeBatchSpillHysteresis(t *testing.T) {
	p := newTestPool(t, 2, 0)
	const n = 300
	var hs []Handle
	for i := 0; i < n; i++ {
		h, ok := p.Alloc(0)
		if !ok {
			t.Fatal("alloc failed")
		}
		hs = append(hs, h)
	}
	leftover := len(p.caches[0].slots) // refill batches over-carve a little
	p.FreeBatch(0, hs)

	if got, want := len(p.caches[0].slots), cacheCap-refillBatch; got != want {
		t.Fatalf("cache holds %d slots after spill, want low-water mark %d", got, want)
	}
	if got, want := len(p.freeList), leftover+n-(cacheCap-refillBatch); got != want {
		t.Fatalf("global free list holds %d slots, want %d", got, want)
	}
	// A different thread's refill sees the spilled slots.
	if _, ok := p.Alloc(1); !ok {
		t.Fatal("tid 1 could not alloc from spilled slots")
	}
}

// TestFreeBatchSmallBatchStaysCached: a batch that fits under cacheCap must
// not touch the global list at all.
func TestFreeBatchSmallBatchStaysCached(t *testing.T) {
	p := newTestPool(t, 1, 0)
	var hs []Handle
	for i := 0; i < 16; i++ {
		h, _ := p.Alloc(0)
		hs = append(hs, h)
	}
	p.FreeBatch(0, hs)
	if len(p.freeList) != 0 {
		t.Fatalf("global free list got %d slots from an under-cap batch", len(p.freeList))
	}
}

// TestFreeBatchesMultiSlice: the variadic form frees every slice under one
// acquisition — nil and empty slices mixed in are fine, the total reaches
// the counters, and an all-empty call is a no-op.
func TestFreeBatchesMultiSlice(t *testing.T) {
	p := newTestPool(t, 1, 0)
	var g1, g2 []Handle
	for i := 0; i < 6; i++ {
		h, _ := p.Alloc(0)
		g1 = append(g1, h)
	}
	for i := 0; i < 4; i++ {
		h, _ := p.Alloc(0)
		g2 = append(g2, h)
	}
	p.FreeBatches(0, g1, nil, []Handle{}, g2)
	for _, h := range append(append([]Handle{}, g1...), g2...) {
		if p.State(h) != StateFree {
			t.Fatalf("%v: state = %v after FreeBatches, want free", h, p.State(h))
		}
	}
	if st := p.Stats(); st.Frees != 10 {
		t.Fatalf("Frees = %d, want 10", st.Frees)
	}
	p.FreeBatches(0)
	p.FreeBatches(0, nil, nil)
	if st := p.Stats(); st.Frees != 10 {
		t.Fatalf("Frees = %d after empty FreeBatches, want 10", st.Frees)
	}
}

// TestFreeBatchesSpillHysteresis: an over-cap multi-slice free drains the
// thread cache to the same low-water mark as FreeBatch, with one spill for
// the whole call.
func TestFreeBatchesSpillHysteresis(t *testing.T) {
	p := newTestPool(t, 2, 0)
	const n = 300
	var a, b []Handle
	for i := 0; i < n; i++ {
		h, ok := p.Alloc(0)
		if !ok {
			t.Fatal("alloc failed")
		}
		if i%2 == 0 {
			a = append(a, h)
		} else {
			b = append(b, h)
		}
	}
	leftover := len(p.caches[0].slots)
	p.FreeBatches(0, a, b)
	if got, want := len(p.caches[0].slots), cacheCap-refillBatch; got != want {
		t.Fatalf("cache holds %d slots after spill, want low-water mark %d", got, want)
	}
	if got, want := len(p.freeList), leftover+n-(cacheCap-refillBatch); got != want {
		t.Fatalf("global free list holds %d slots, want %d", got, want)
	}
	if _, ok := p.Alloc(1); !ok {
		t.Fatal("tid 1 could not alloc from spilled slots")
	}
}

// TestFreeBatchConcurrent races batch frees against allocations on distinct
// tids; run with -race. At quiescence every slot must be back in the free
// state with balanced counters.
func TestFreeBatchConcurrent(t *testing.T) {
	const (
		threads = 4
		rounds  = 50
		chunk   = 37 // not a divisor of anything: exercises partial batches
	)
	p := newTestPool(t, threads, 1<<16)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			var hs []Handle
			for r := 0; r < rounds; r++ {
				for len(hs) < chunk {
					h, ok := p.Alloc(tid)
					if !ok {
						t.Errorf("tid %d: pool exhausted", tid)
						return
					}
					hs = append(hs, h)
				}
				p.FreeBatch(tid, hs)
				hs = hs[:0]
			}
		}(tid)
	}
	wg.Wait()
	st := p.Stats()
	if st.Allocs != st.Frees {
		t.Fatalf("allocs %d != frees %d at quiescence", st.Allocs, st.Frees)
	}
	c := p.Census()
	if c.Live != 0 || c.Retired != 0 {
		t.Fatalf("census shows %d live / %d retired after everything was freed", c.Live, c.Retired)
	}
}
