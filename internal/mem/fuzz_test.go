package mem

import "testing"

// FuzzHandleRoundTrip fuzzes the handle bit layout: any slot/mark/epoch
// combination must round-trip and keep the three fields independent.
func FuzzHandleRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(0), uint64(0))
	f.Add(uint64(MaxSlots-1), uint8(3), uint64(MaxPackedEpoch))
	f.Add(uint64(12345), uint8(1), uint64(99))
	f.Fuzz(func(t *testing.T, slot uint64, marks uint8, epoch uint64) {
		slot %= MaxSlots
		m := uint64(marks % 4)
		e := epoch % (MaxPackedEpoch + 1)
		h := FromSlot(slot).WithMarks(m).WithEpoch(e)
		if got, ok := h.Slot(); !ok || got != slot {
			t.Fatalf("slot %d -> %d,%v", slot, got, ok)
		}
		if h.Marks() != m || h.Epoch() != e {
			t.Fatalf("fields: marks %d->%d epoch %d->%d", m, h.Marks(), e, h.Epoch())
		}
		if h.Addr() != FromSlot(slot) {
			t.Fatal("Addr not canonical")
		}
		if h.ClearMarks().Marks() != 0 || h.ClearMarks().Epoch() != e {
			t.Fatal("ClearMarks touched epoch")
		}
		if h.IsNil() {
			t.Fatal("non-nil handle reported nil")
		}
	})
}
