package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNilHandle(t *testing.T) {
	if !Nil.IsNil() {
		t.Fatal("Nil.IsNil() = false")
	}
	if _, ok := Nil.Slot(); ok {
		t.Fatal("Nil.Slot() reported a slot")
	}
	if Nil.String() != "nil" {
		t.Fatalf("Nil.String() = %q", Nil.String())
	}
}

func TestMarkedNilIsDistinctFromNil(t *testing.T) {
	m := Nil.WithMark0()
	if m == Nil {
		t.Fatal("marked nil collapsed to Nil")
	}
	if !m.IsNil() {
		t.Fatal("marked nil should still be address-nil")
	}
	if !m.Mark0() {
		t.Fatal("mark bit lost")
	}
	if m.ClearMarks() != Nil {
		t.Fatal("clearing marks on marked nil should give Nil")
	}
}

func TestFromSlotRoundTrip(t *testing.T) {
	for _, i := range []uint64{0, 1, 7, SlabSize - 1, SlabSize, MaxSlots - 1} {
		h := FromSlot(i)
		got, ok := h.Slot()
		if !ok || got != i {
			t.Fatalf("FromSlot(%d).Slot() = %d,%v", i, got, ok)
		}
		if h.IsNil() {
			t.Fatalf("FromSlot(%d) is nil", i)
		}
	}
}

func TestFromSlotPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range slot")
		}
	}()
	FromSlot(MaxSlots)
}

func TestMarkBits(t *testing.T) {
	h := FromSlot(42)
	if h.Mark0() || h.Mark1() {
		t.Fatal("fresh handle has marks set")
	}
	m0 := h.WithMark0()
	if !m0.Mark0() || m0.Mark1() {
		t.Fatal("WithMark0 wrong bits")
	}
	m01 := m0.WithMark1()
	if !m01.Mark0() || !m01.Mark1() {
		t.Fatal("WithMark1 wrong bits")
	}
	if m01.Marks() != 3 {
		t.Fatalf("Marks() = %d, want 3", m01.Marks())
	}
	if m01.ClearMarks() != h {
		t.Fatal("ClearMarks did not restore original")
	}
	if !m01.SameAddr(h) {
		t.Fatal("SameAddr should ignore marks")
	}
	if got, ok := m01.Slot(); !ok || got != 42 {
		t.Fatalf("Slot() through marks = %d,%v", got, ok)
	}
}

func TestWithMarksCopiesExactly(t *testing.T) {
	h := FromSlot(9).WithMark0()
	h2 := h.WithMarks(2) // only mark1
	if h2.Mark0() || !h2.Mark1() {
		t.Fatalf("WithMarks(2): m0=%v m1=%v", h2.Mark0(), h2.Mark1())
	}
	if h.WithMarks(0) != FromSlot(9) {
		t.Fatal("WithMarks(0) should clear all marks")
	}
}

func TestEpochPacking(t *testing.T) {
	h := FromSlot(123).WithMark1()
	for _, e := range []uint64{0, 1, 100, MaxPackedEpoch} {
		he := h.WithEpoch(e)
		if he.Epoch() != e {
			t.Fatalf("Epoch round trip: got %d want %d", he.Epoch(), e)
		}
		if !he.SameAddr(h) {
			t.Fatal("WithEpoch changed address")
		}
		if he.Marks() != h.Marks() {
			t.Fatal("WithEpoch changed marks")
		}
	}
	// WithEpoch replaces, not ORs.
	if h.WithEpoch(5).WithEpoch(3).Epoch() != 3 {
		t.Fatal("WithEpoch did not replace previous epoch")
	}
	// Epoch truncates to the field width.
	if h.WithEpoch(math.MaxUint64).Epoch() != MaxPackedEpoch {
		t.Fatal("oversized epoch not truncated to field")
	}
}

func TestAddrStripsEverything(t *testing.T) {
	h := FromSlot(77).WithMark0().WithMark1().WithEpoch(999)
	a := h.Addr()
	if a != FromSlot(77) {
		t.Fatalf("Addr() = %v, want plain slot 77", a)
	}
}

func TestHandleFieldsIndependent_Quick(t *testing.T) {
	f := func(slot uint64, marks uint8, epoch uint64) bool {
		slot %= MaxSlots
		m := uint64(marks % 4)
		h := FromSlot(slot).WithMarks(m).WithEpoch(epoch % (MaxPackedEpoch + 1))
		s, ok := h.Slot()
		return ok && s == slot && h.Marks() == m &&
			h.Epoch() == epoch%(MaxPackedEpoch+1) &&
			h.Addr() == FromSlot(slot)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSameAddrIgnoresEpochAndMarks_Quick(t *testing.T) {
	f := func(slot uint64, m1, m2 uint8, e1, e2 uint64) bool {
		slot %= MaxSlots
		a := FromSlot(slot).WithMarks(uint64(m1 % 4)).WithEpoch(e1 % MaxPackedEpoch)
		b := FromSlot(slot).WithMarks(uint64(m2 % 4)).WithEpoch(e2 % MaxPackedEpoch)
		return a.SameAddr(b) && b.SameAddr(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckEpochRange(t *testing.T) {
	CheckEpochRange(0)
	CheckEpochRange(MaxPackedEpoch)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for epoch overflow")
		}
	}()
	CheckEpochRange(MaxPackedEpoch + 1)
}
