//go:build ibrdebug

package mem

import (
	"strings"
	"testing"
)

// mustPanic runs fn and asserts it panics with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one containing %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v; want one containing %q", r, want)
		}
	}()
	fn()
}

func TestDebugGetFreedPanics(t *testing.T) {
	if !DebugChecks {
		t.Fatal("ibrdebug build without DebugChecks")
	}
	p := New[testNode](Options[testNode]{Threads: 1})
	h, ok := p.Alloc(0)
	if !ok {
		t.Fatal("alloc failed")
	}
	p.Get(h).key = 7 // live: fine
	p.Free(0, h)
	mustPanic(t, "Get of freed", func() { p.Get(h) })
}

func TestDebugStaleEpochPanics(t *testing.T) {
	p := New[testNode](Options[testNode]{Threads: 1})
	h, _ := p.Alloc(0)
	p.SetBirth(h, 5)
	p.Get(h.WithEpoch(5)) // matching packed birth: fine
	p.Get(h)              // no packed epoch (non-WCAS schemes): fine
	mustPanic(t, "stale", func() { p.Get(h.WithEpoch(4)) })
}
