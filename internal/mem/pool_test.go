package mem

import (
	"math"
	"sync"
	"testing"
)

type testNode struct {
	key, val uint64
}

func newTestPool(t *testing.T, threads int, maxSlots uint64) *Pool[testNode] {
	t.Helper()
	return New[testNode](Options[testNode]{Threads: threads, MaxSlots: maxSlots})
}

func TestAllocBasics(t *testing.T) {
	p := newTestPool(t, 1, 0)
	h, ok := p.Alloc(0)
	if !ok || h.IsNil() {
		t.Fatal("first Alloc failed")
	}
	if p.State(h) != StateLive {
		t.Fatalf("state = %v, want live", p.State(h))
	}
	if p.RetireEpoch(h) != math.MaxUint64 {
		t.Fatal("live block should have open retire epoch")
	}
	n := p.Get(h)
	n.key, n.val = 7, 8
	if p.Get(h).key != 7 || p.Get(h).val != 8 {
		t.Fatal("body write lost")
	}
}

func TestAllocDistinctSlots(t *testing.T) {
	p := newTestPool(t, 1, 0)
	seen := map[Handle]bool{}
	for i := 0; i < 1000; i++ {
		h, ok := p.Alloc(0)
		if !ok {
			t.Fatal("alloc failed")
		}
		if seen[h] {
			t.Fatalf("slot %v handed out twice without a free", h)
		}
		seen[h] = true
	}
}

func TestFreeThenReuse(t *testing.T) {
	p := newTestPool(t, 1, 0)
	h, _ := p.Alloc(0)
	s0 := p.Stamp(h)
	p.Free(0, h)
	if p.State(h) != StateFree {
		t.Fatal("freed slot not in free state")
	}
	if p.Stamp(h) != s0+1 {
		t.Fatal("stamp did not advance on free")
	}
	// LIFO cache should hand the same slot straight back.
	h2, _ := p.Alloc(0)
	if !h2.SameAddr(h) {
		t.Fatalf("expected immediate reuse of %v, got %v", h, h2)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	p := newTestPool(t, 1, 0)
	h, _ := p.Alloc(0)
	p.Free(0, h)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	p.Free(0, h)
}

func TestFreeNilPanics(t *testing.T) {
	p := newTestPool(t, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("free of nil did not panic")
		}
	}()
	p.Free(0, Nil)
}

func TestGetNilPanics(t *testing.T) {
	p := newTestPool(t, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Get of nil did not panic")
		}
	}()
	p.Get(Nil)
}

func TestRetireTransitions(t *testing.T) {
	p := newTestPool(t, 1, 0)
	h, _ := p.Alloc(0)
	p.MarkRetired(h)
	if p.State(h) != StateRetired {
		t.Fatalf("state = %v, want retired", p.State(h))
	}
	p.Free(0, h) // retired -> free is the reclaim path
	if p.State(h) != StateFree {
		t.Fatal("retired slot did not free")
	}
}

func TestDoubleRetirePanics(t *testing.T) {
	p := newTestPool(t, 1, 0)
	h, _ := p.Alloc(0)
	p.MarkRetired(h)
	defer func() {
		if recover() == nil {
			t.Fatal("double retire did not panic")
		}
	}()
	p.MarkRetired(h)
}

func TestBirthRetireEpochs(t *testing.T) {
	p := newTestPool(t, 1, 0)
	h, _ := p.Alloc(0)
	p.SetBirth(h, 3)
	p.SetRetireEpoch(h, 9)
	if p.Birth(h) != 3 || p.RetireEpoch(h) != 9 {
		t.Fatalf("epochs = [%d,%d], want [3,9]", p.Birth(h), p.RetireEpoch(h))
	}
	// Marks and packed epochs must not confuse header access.
	if p.Birth(h.WithMark0().WithEpoch(123)) != 3 {
		t.Fatal("header access through decorated handle failed")
	}
}

func TestExhaustion(t *testing.T) {
	const cap = 200
	p := newTestPool(t, 1, cap)
	var hs []Handle
	for {
		h, ok := p.Alloc(0)
		if !ok {
			break
		}
		hs = append(hs, h)
	}
	if len(hs) != cap {
		t.Fatalf("allocated %d slots from a %d-slot pool", len(hs), cap)
	}
	if _, ok := p.Alloc(0); ok {
		t.Fatal("alloc succeeded past capacity")
	}
	// Freeing makes slots available again.
	p.Free(0, hs[0])
	if _, ok := p.Alloc(0); !ok {
		t.Fatal("alloc failed after a free")
	}
}

func TestPoisonApplied(t *testing.T) {
	p := New[testNode](Options[testNode]{
		Threads: 1,
		Poison:  func(n *testNode) { n.key, n.val = 0xDEAD, 0xBEEF },
	})
	h, _ := p.Alloc(0)
	p.Get(h).key = 1
	p.Free(0, h)
	// get, not Get: reading a freed body is the point here, and the
	// ibrdebug build would (rightly) panic on the public accessor.
	if p.get(h).key != 0xDEAD || p.get(h).val != 0xBEEF {
		t.Fatal("poison not applied on free")
	}
}

func TestStats(t *testing.T) {
	p := newTestPool(t, 2, 0)
	var hs []Handle
	for i := 0; i < 10; i++ {
		h, _ := p.Alloc(i % 2)
		hs = append(hs, h)
	}
	p.Free(0, hs[0])
	st := p.Stats()
	if st.Allocs != 10 || st.Frees != 1 || st.Live() != 9 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Slabs != 1 {
		t.Fatalf("expected 1 slab, got %d", st.Slabs)
	}
}

func TestSlabGrowth(t *testing.T) {
	p := newTestPool(t, 1, 3*SlabSize)
	last := Nil
	for i := 0; i < 2*SlabSize+10; i++ {
		h, ok := p.Alloc(0)
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		last = h
	}
	if st := p.Stats(); st.Slabs != 3 {
		t.Fatalf("expected 3 slabs, got %d", st.Slabs)
	}
	p.Get(last).key = 5 // touch a slot in the last slab
	if p.Get(last).key != 5 {
		t.Fatal("slot in grown slab unusable")
	}
}

func TestCrossThreadFree(t *testing.T) {
	// Thread 0 allocates, thread 1 frees (a reclaimer freeing another
	// thread's block), thread 1 then reuses it.
	p := newTestPool(t, 2, 0)
	h, _ := p.Alloc(0)
	p.Free(1, h)
	h2, _ := p.Alloc(1)
	if !h2.SameAddr(h) {
		t.Fatalf("thread 1 should reuse freed slot, got %v want %v", h2, h)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	const threads = 8
	const iters = 20000
	p := New[testNode](Options[testNode]{Threads: threads, MaxSlots: 1 << 16})
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			var held []Handle
			for i := 0; i < iters; i++ {
				if len(held) < 32 {
					h, ok := p.Alloc(tid)
					if !ok {
						t.Errorf("tid %d: pool exhausted unexpectedly", tid)
						return
					}
					p.Get(h).key = uint64(tid)
					held = append(held, h)
				} else {
					h := held[len(held)-1]
					held = held[:len(held)-1]
					if p.Get(h).key != uint64(tid) {
						t.Errorf("tid %d: slot body clobbered while live", tid)
						return
					}
					p.Free(tid, h)
				}
			}
			for _, h := range held {
				p.Free(tid, h)
			}
		}(tid)
	}
	wg.Wait()
	st := p.Stats()
	if st.Allocs != st.Frees {
		t.Fatalf("leak: allocs %d != frees %d", st.Allocs, st.Frees)
	}
}

func TestConcurrentUniqueOwnership(t *testing.T) {
	// No slot may ever be live in two threads at once. Each thread writes
	// its tid into every slot it holds and re-checks before freeing.
	const threads = 6
	p := New[testNode](Options[testNode]{Threads: threads, MaxSlots: 4096})
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 30000; i++ {
				h, ok := p.Alloc(tid)
				if !ok {
					continue
				}
				n := p.Get(h)
				n.key = uint64(tid)
				n.val = uint64(i)
				if n.key != uint64(tid) || n.val != uint64(i) {
					t.Errorf("slot shared between threads")
					return
				}
				p.Free(tid, h)
			}
		}(tid)
	}
	wg.Wait()
}

func TestCensus(t *testing.T) {
	p := newTestPool(t, 1, 0)
	var live, retired []Handle
	for i := 0; i < 10; i++ {
		h, _ := p.Alloc(0)
		live = append(live, h)
	}
	for i := 0; i < 3; i++ {
		p.MarkRetired(live[i])
		retired = append(retired, live[i])
	}
	p.Free(0, retired[0])
	c := p.Census()
	if c.Live != 7 || c.Retired != 2 || c.Free != 55 { // 64 carved - 9 in use
		t.Fatalf("census = %+v", c)
	}
}
