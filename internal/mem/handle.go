// Package mem provides the manual memory-management substrate that the IBR
// paper assumes: a slab-based, type-preserving allocator with explicit
// Alloc/Free, block headers carrying birth and retire epochs, and 64-bit
// handles that play the role of C pointers.
//
// Go's garbage collector would otherwise make safe memory reclamation a
// non-problem, so data structures in this repository never hold native Go
// pointers to nodes. They hold Handles. A freed slot goes back on a free
// list and is reused (possibly immediately), so every hazard the paper
// studies — dangling references, ABA on reuse, unbounded retire lists — is
// real and observable. Because slabs are never returned to the runtime and a
// slot is only ever reused for the same node type, the allocator is
// type-preserving in exactly the sense of §3.2.1 of the paper: a read
// through a stale handle is well-defined (it sees some valid slot of the
// right type), which is the property TagIBR-TPA relies on and which makes
// the transient dangling windows of HP/HE well-defined in Go.
package mem

import "fmt"

// Handle is a 64-bit pseudo-pointer to a slot in a Pool.
//
// Bit layout:
//
//	bit  0      application mark bit 0 (Harris "logically deleted" mark,
//	            Natarajan–Mittal FLAG)
//	bit  1      application mark bit 1 (Natarajan–Mittal TAG)
//	bits 2..39  slot index + 1 (0 means nil), 38 bits
//	bits 40..63 packed epoch, 24 bits; used only by the TagIBR-WCAS scheme,
//	            zero everywhere else
//
// A Handle is opaque to data structures except for nil tests, equality,
// mark-bit manipulation, and Pool access (which masks the non-address bits).
type Handle uint64

// Nil is the null Handle. Note that a marked nil (e.g. Nil.WithMark0()) is
// non-zero and distinct from Nil, mirroring a tagged null pointer in C.
const Nil Handle = 0

const (
	mark0Bit = Handle(1) << 0
	mark1Bit = Handle(1) << 1
	markMask = mark0Bit | mark1Bit

	slotShift = 2
	slotBits  = 38
	slotMask  = Handle((1<<slotBits)-1) << slotShift

	epochShift = 40
	// EpochBits is the width of the packed-epoch field used by TagIBR-WCAS.
	EpochBits = 24
	epochMask = Handle((1<<EpochBits)-1) << epochShift

	addrMask = slotMask // "address" = slot field only

	// MaxSlots is the largest number of slots a Pool may manage: the slot
	// field holds index+1, so index MaxSlots-1 is the largest encodable.
	MaxSlots = 1<<slotBits - 1

	// MaxPackedEpoch is the largest epoch representable in the packed field.
	MaxPackedEpoch = 1<<EpochBits - 1
)

// FromSlot builds an unmarked, epoch-free Handle for slot index i.
// It panics if i is out of the encodable range.
func FromSlot(i uint64) Handle {
	if i >= MaxSlots {
		panic(fmt.Sprintf("mem: slot index %d exceeds MaxSlots %d", i, uint64(MaxSlots)))
	}
	return Handle(i+1) << slotShift
}

// Slot returns the slot index addressed by h and whether h is non-nil.
func (h Handle) Slot() (uint64, bool) {
	f := uint64(h&slotMask) >> slotShift
	if f == 0 {
		return 0, false
	}
	return f - 1, true
}

// IsNil reports whether the address part of h is null (marks and packed
// epoch are ignored).
func (h Handle) IsNil() bool { return h&slotMask == 0 }

// Addr strips mark bits and the packed epoch, yielding the canonical
// address-only form of h. Two handles refer to the same slot iff their Addrs
// are equal.
func (h Handle) Addr() Handle { return h & addrMask }

// SameAddr reports whether h and o address the same slot (or are both nil).
func (h Handle) SameAddr(o Handle) bool { return h&addrMask == o&addrMask }

// WithMark0 returns h with mark bit 0 set.
func (h Handle) WithMark0() Handle { return h | mark0Bit }

// WithMark1 returns h with mark bit 1 set.
func (h Handle) WithMark1() Handle { return h | mark1Bit }

// ClearMarks returns h with both mark bits cleared (packed epoch preserved).
func (h Handle) ClearMarks() Handle { return h &^ markMask }

// ClearMark0 returns h with mark bit 0 cleared.
func (h Handle) ClearMark0() Handle { return h &^ mark0Bit }

// ClearMark1 returns h with mark bit 1 cleared.
func (h Handle) ClearMark1() Handle { return h &^ mark1Bit }

// Mark0Bit and Mark1Bit expose the mark masks for atomic bit operations on
// stored pointer words (e.g. the Natarajan–Mittal tree's edge tagging).
const (
	Mark0Bit = uint64(mark0Bit)
	Mark1Bit = uint64(mark1Bit)
)

// Mark0 reports whether mark bit 0 is set.
func (h Handle) Mark0() bool { return h&mark0Bit != 0 }

// Mark1 reports whether mark bit 1 is set.
func (h Handle) Mark1() bool { return h&mark1Bit != 0 }

// Marks returns the two mark bits as a value in 0..3.
func (h Handle) Marks() uint64 { return uint64(h & markMask) }

// WithMarks returns h carrying exactly the mark bits of m.
func (h Handle) WithMarks(m uint64) Handle {
	return (h &^ markMask) | (Handle(m) & markMask)
}

// WithEpoch returns h with the packed-epoch field set to e. Used only by
// TagIBR-WCAS, which needs the birth epoch and the pointer updated by one
// atomic instruction; see Pool.CheckEpochRange for the overflow guard.
func (h Handle) WithEpoch(e uint64) Handle {
	return (h &^ epochMask) | (Handle(e)<<epochShift)&epochMask
}

// Epoch extracts the packed-epoch field.
func (h Handle) Epoch() uint64 { return uint64(h&epochMask) >> epochShift }

// String renders h for debugging, e.g. "slot 41 [m0] (epoch 7)".
func (h Handle) String() string {
	s, ok := h.Slot()
	if !ok {
		if h == Nil {
			return "nil"
		}
		return fmt.Sprintf("nil[m=%d,e=%d]", h.Marks(), h.Epoch())
	}
	return fmt.Sprintf("slot %d[m=%d,e=%d]", s, h.Marks(), h.Epoch())
}
