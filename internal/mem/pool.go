package mem

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

const (
	slabShift = 16
	// SlabSize is the number of slots per slab. Slabs are allocated lazily
	// as the pool grows and are never released, which is what makes the
	// allocator type-preserving.
	SlabSize = 1 << slabShift
	slabMask = SlabSize - 1

	cacheCap    = 128 // per-thread free-list cache capacity
	refillBatch = 64  // slots moved between the global list and a cache
)

// State is the lifecycle state of a slot, mirroring the block life course of
// §2.1 of the paper: alloc → (publish, detach) → retire → reclaim.
type State uint32

const (
	// StateFree marks a slot that is on a free list and may be reused.
	StateFree State = iota
	// StateLive marks a slot handed out by Alloc and not yet retired.
	StateLive
	// StateRetired marks a slot passed to a reclamation scheme's retire()
	// and not yet freed. Only the reclamation core moves slots here.
	StateRetired
)

func (s State) String() string {
	switch s {
	case StateFree:
		return "free"
	case StateLive:
		return "live"
	case StateRetired:
		return "retired"
	}
	return fmt.Sprintf("State(%d)", uint32(s))
}

// Header is the per-block metadata the paper stores "in the block header
// managed by the allocator (and hidden from the application)": the birth
// epoch, the retire epoch, and — an addition for validation — a reuse stamp
// that increments every time the slot is freed, letting tests detect
// use-after-free deterministically.
type Header struct {
	birth  atomic.Uint64
	retire atomic.Uint64
	stamp  atomic.Uint64
	state  atomic.Uint32
}

type slot[T any] struct {
	hdr  Header
	body T
}

type slab[T any] struct{ slots []slot[T] }

// pad64 pads a struct to a cache line to prevent false sharing between
// per-thread fields; 64 bytes matches the line size of every x86-64 and most
// arm64 parts.
type pad64 struct{ _ [64]byte }

type threadCache struct {
	_     pad64
	slots []uint64 // free slot ids owned by this thread
	// local statistics, folded into Stats on demand; atomic because Stats
	// may be read while workers run
	allocs        atomic.Uint64
	frees         atomic.Uint64
	cacheHits     atomic.Uint64 // Allocs served from the non-empty cache
	cacheMisses   atomic.Uint64 // Allocs that had to refill first
	globalRefills atomic.Uint64 // refills satisfied from the global free list
	freshCarves   atomic.Uint64 // refills that carved never-used slots
	_             pad64
}

// Options configures a Pool of nodes of type T.
type Options[T any] struct {
	// Threads is the number of worker thread ids (0..Threads-1) that will
	// call Alloc/Free. Required.
	Threads int
	// MaxSlots caps the pool. 0 means DefaultMaxSlots. Must not exceed
	// MaxSlots (the handle-encodable limit).
	MaxSlots uint64
	// Poison, if non-nil, is applied to a slot body when it is freed. Tests
	// use it to plant sentinel values that surface any read-after-free.
	Poison func(*T)
}

// DefaultMaxSlots is the default pool capacity: 1<<22 slots (4M nodes). At a
// typical 96-byte node this is ~400 MB if fully used.
const DefaultMaxSlots = 1 << 22

// ErrPoolExhausted is the typed form of a failed Alloc: the pool (plus any
// forced reclamation scan the caller ran) could not produce a free slot.
// Alloc itself keeps its (Handle, bool) hot-path signature; layers that turn
// exhaustion into an error — the serving engine's StatusBusy path, the
// public constructors — wrap this sentinel so callers can errors.Is it.
// Exhaustion is an overload condition, never a panic: the allocator's
// panics are reserved for invariant violations (double free, retire of a
// non-live slot), which indicate corruption rather than pressure.
var ErrPoolExhausted = errors.New("mem: pool exhausted")

// Pool is a slab-based manual allocator for nodes of type T. It plays the
// role jemalloc plays in the paper's artifact: a fast, thread-cached
// allocator whose free() really recycles memory.
//
// All methods are safe for concurrent use by distinct thread ids; a given
// tid must not be used by two goroutines at once.
type Pool[T any] struct {
	maxSlots uint64
	poison   func(*T)

	slabs  atomic.Pointer[[]*slab[T]]
	next   atomic.Uint64 // bump pointer over never-yet-used slots
	growMu sync.Mutex

	freeMu   sync.Mutex
	freeList []uint64

	caches []threadCache
}

// New creates a Pool for nodes of type T.
func New[T any](opt Options[T]) *Pool[T] {
	if opt.Threads <= 0 {
		panic("mem: Options.Threads must be positive")
	}
	max := opt.MaxSlots
	if max == 0 {
		max = DefaultMaxSlots
	}
	if max > MaxSlots {
		panic(fmt.Sprintf("mem: MaxSlots %d exceeds handle limit %d", max, uint64(MaxSlots)))
	}
	p := &Pool[T]{
		maxSlots: max,
		poison:   opt.Poison,
		caches:   make([]threadCache, opt.Threads),
	}
	empty := make([]*slab[T], 0)
	p.slabs.Store(&empty)
	for i := range p.caches {
		p.caches[i].slots = make([]uint64, 0, cacheCap)
	}
	return p
}

// Threads returns the number of thread ids the pool was created for.
func (p *Pool[T]) Threads() int { return len(p.caches) }

// Capacity returns the configured maximum number of slots.
func (p *Pool[T]) Capacity() uint64 { return p.maxSlots }

// Alloc hands out a live slot. It returns (Nil, false) when the pool is
// exhausted — including the thread-cached near-miss where the remaining
// free slots sit in other threads' caches (the usual price of lock-free
// allocation fast paths; jemalloc behaves the same way). The body is NOT
// zeroed — exactly like malloc — so callers must initialize every field
// before publishing; the reuse stamp and poison make forgotten
// initialization loud in tests.
func (p *Pool[T]) Alloc(tid int) (Handle, bool) {
	c := &p.caches[tid]
	if len(c.slots) == 0 {
		c.cacheMisses.Add(1)
		if !p.refill(c) {
			return Nil, false
		}
	} else {
		c.cacheHits.Add(1)
	}
	gid := c.slots[len(c.slots)-1]
	c.slots = c.slots[:len(c.slots)-1]
	c.allocs.Add(1)
	h := FromSlot(gid)
	hdr := p.hdr(h)
	if !hdr.state.CompareAndSwap(uint32(StateFree), uint32(StateLive)) {
		panic(fmt.Sprintf("mem: free-list corruption: slot %d in state %v", gid, State(hdr.state.Load())))
	}
	hdr.retire.Store(math.MaxUint64) // live blocks have an open interval
	return h, true
}

// refill tops up tid's cache from the global free list, or by carving fresh
// slots off the bump region (growing a slab if needed). Returns false only
// on exhaustion.
func (p *Pool[T]) refill(c *threadCache) bool {
	// Size the cache for the copy before taking freeMu: the append under
	// the allocator's only global lock must never have to grow the slice,
	// or one thread's cache reallocation stalls every other thread's
	// refill and spill.
	if cap(c.slots)-len(c.slots) < refillBatch {
		grown := make([]uint64, len(c.slots), len(c.slots)+refillBatch)
		copy(grown, c.slots)
		c.slots = grown
	}
	p.freeMu.Lock()
	if n := len(p.freeList); n > 0 {
		take := refillBatch
		if take > n {
			take = n
		}
		c.slots = append(c.slots, p.freeList[n-take:]...)
		p.freeList = p.freeList[:n-take]
		p.freeMu.Unlock()
		c.globalRefills.Add(1)
		return true
	}
	p.freeMu.Unlock()

	// Carve a batch of brand-new slots.
	carved := false
	for i := 0; i < refillBatch; i++ {
		gid := p.next.Add(1) - 1
		if gid >= p.maxSlots {
			p.next.Add(^uint64(0)) // undo; harmless if racy, next only guards
			break
		}
		p.ensureSlab(gid)
		c.slots = append(c.slots, gid)
		carved = true
	}
	if carved {
		c.freshCarves.Add(1)
	}
	return len(c.slots) > 0
}

func (p *Pool[T]) ensureSlab(gid uint64) {
	idx := int(gid >> slabShift)
	if s := *p.slabs.Load(); idx < len(s) {
		return
	}
	p.growMu.Lock()
	defer p.growMu.Unlock()
	cur := *p.slabs.Load()
	for idx >= len(cur) {
		grown := make([]*slab[T], len(cur)+1)
		copy(grown, cur)
		grown[len(cur)] = &slab[T]{slots: make([]slot[T], SlabSize)}
		p.slabs.Store(&grown)
		cur = grown
	}
}

// release runs the per-slot part of a free: the state transition, the
// reuse-stamp bump and the poison. It returns the slot id for the caller
// to put on a free list.
func (p *Pool[T]) release(h Handle) uint64 {
	gid, ok := h.Slot()
	if !ok {
		panic("mem: Free of nil handle")
	}
	hdr := p.hdr(h)
	old := State(hdr.state.Load())
	if old == StateFree || !hdr.state.CompareAndSwap(uint32(old), uint32(StateFree)) {
		panic(fmt.Sprintf("mem: double free of slot %d (state %v)", gid, old))
	}
	hdr.stamp.Add(1)
	if p.poison != nil {
		p.poison(p.get(h))
	}
	return gid
}

// Free returns a slot to the allocator. The slot must be Live (never
// published; e.g. discarded by a failed CAS before linking) or Retired
// (reclaimed by a scheme). Freeing a Free slot panics: that is a double
// free, one of the two bugs (§2.1) this whole system exists to prevent.
func (p *Pool[T]) Free(tid int, h Handle) {
	gid := p.release(h)
	c := &p.caches[tid]
	c.frees.Add(1)
	c.slots = append(c.slots, gid)
	if len(c.slots) > cacheCap {
		p.freeMu.Lock()
		n := len(c.slots)
		p.freeList = append(p.freeList, c.slots[n-refillBatch:]...)
		p.freeMu.Unlock()
		c.slots = c.slots[:n-refillBatch]
	}
}

// FreeBatch frees every handle in hs under Free's lifecycle rules, with at
// most one acquisition of the global free-list lock for the whole batch
// instead of one potential freeMu round-trip per slot. Reclamation scans
// use it to return everything a scan freed in one go.
func (p *Pool[T]) FreeBatch(tid int, hs []Handle) {
	if len(hs) == 0 {
		return
	}
	c := &p.caches[tid]
	for _, h := range hs {
		c.slots = append(c.slots, p.release(h))
	}
	c.frees.Add(uint64(len(hs)))
	if len(c.slots) > cacheCap {
		// Spill down to the same low-water mark Free's per-slot hysteresis
		// converges to, in one critical section.
		spill := len(c.slots) - (cacheCap - refillBatch)
		p.freeMu.Lock()
		p.freeList = append(p.freeList, c.slots[len(c.slots)-spill:]...)
		p.freeMu.Unlock()
		c.slots = c.slots[:len(c.slots)-spill]
	}
}

// FreeBatches frees every handle in every batch under Free's lifecycle
// rules, with at most one acquisition of the global free-list lock for all
// batches together. The bucketed reclamation scans use it to return a mix
// of whole-bucket handle arrays and a residual batch without first copying
// them into one slice.
func (p *Pool[T]) FreeBatches(tid int, batches ...[]Handle) {
	total := 0
	for _, hs := range batches {
		total += len(hs)
	}
	if total == 0 {
		return
	}
	c := &p.caches[tid]
	for _, hs := range batches {
		for _, h := range hs {
			c.slots = append(c.slots, p.release(h))
		}
	}
	c.frees.Add(uint64(total))
	if len(c.slots) > cacheCap {
		spill := len(c.slots) - (cacheCap - refillBatch)
		p.freeMu.Lock()
		p.freeList = append(p.freeList, c.slots[len(c.slots)-spill:]...)
		p.freeMu.Unlock()
		c.slots = c.slots[:len(c.slots)-spill]
	}
}

// Get returns the body of the slot addressed by h; marks and packed epoch
// are ignored. Get panics on a nil handle. Get does not check the slot
// state: like a C pointer dereference, reading a freed slot "works" and
// returns whatever is there now — that's the point. Builds with the
// ibrdebug tag trade that fidelity for assertions: Get panics on a freed
// slot or on a stale packed birth epoch (see debugCheck).
func (p *Pool[T]) Get(h Handle) *T {
	p.debugCheck(h)
	return p.get(h)
}

// get is Get without the ibrdebug assertion. release poisons through it (the
// slot is already Free by then), and the allocator's own tests use it to
// inspect freed bodies.
func (p *Pool[T]) get(h Handle) *T {
	gid, ok := h.Slot()
	if !ok {
		panic("mem: Get of nil handle")
	}
	slabs := *p.slabs.Load()
	return &slabs[gid>>slabShift].slots[gid&slabMask].body
}

func (p *Pool[T]) hdr(h Handle) *Header {
	gid, ok := h.Slot()
	if !ok {
		panic("mem: header of nil handle")
	}
	slabs := *p.slabs.Load()
	return &slabs[gid>>slabShift].slots[gid&slabMask].hdr
}

// Birth returns the birth epoch recorded in h's block header.
func (p *Pool[T]) Birth(h Handle) uint64 { return p.hdr(h).birth.Load() }

// SetBirth stamps h's birth epoch; called by schemes at allocation.
func (p *Pool[T]) SetBirth(h Handle, e uint64) { p.hdr(h).birth.Store(e) }

// RetireEpoch returns the retire epoch in h's header (MaxUint64 while live).
func (p *Pool[T]) RetireEpoch(h Handle) uint64 { return p.hdr(h).retire.Load() }

// SetRetireEpoch stamps h's retire epoch; called by schemes at retirement.
func (p *Pool[T]) SetRetireEpoch(h Handle, e uint64) { p.hdr(h).retire.Store(e) }

// MarkRetired transitions h from Live to Retired, panicking on a retire of a
// non-live block (retire-before-detach misuse or double retire).
func (p *Pool[T]) MarkRetired(h Handle) {
	if !p.hdr(h).state.CompareAndSwap(uint32(StateLive), uint32(StateRetired)) {
		panic(fmt.Sprintf("mem: retire of non-live %v (state %v)", h, p.State(h)))
	}
}

// State returns the lifecycle state of h's slot.
func (p *Pool[T]) State(h Handle) State { return State(p.hdr(h).state.Load()) }

// Stamp returns h's reuse stamp: it increments on every Free, so a changed
// stamp proves the slot was recycled under the caller.
func (p *Pool[T]) Stamp(h Handle) uint64 { return p.hdr(h).stamp.Load() }

// Stats is a snapshot of allocator counters.
type Stats struct {
	Allocs    uint64 // total successful Allocs
	Frees     uint64 // total Frees
	HighWater uint64 // slots ever touched (bump pointer)
	Capacity  uint64
	Slabs     int

	// Free-list cache behaviour, summed over threads (per-thread detail
	// via CacheStats): an Alloc either hits its thread cache or misses and
	// refills — from the global free list (GlobalRefills) or by carving
	// never-used slots (FreshCarves). A rising miss or refill rate under a
	// steady workload means frees are landing on other threads' caches —
	// the cross-thread producer/consumer pattern jemalloc calls remote
	// frees.
	CacheHits     uint64
	CacheMisses   uint64
	GlobalRefills uint64
	FreshCarves   uint64
}

// Live returns Allocs - Frees: slots currently Live or Retired.
func (s Stats) Live() uint64 { return s.Allocs - s.Frees }

// Stats gathers per-thread counters. It is approximate while threads run.
func (p *Pool[T]) Stats() Stats {
	var st Stats
	for i := range p.caches {
		c := &p.caches[i]
		st.Allocs += c.allocs.Load()
		st.Frees += c.frees.Load()
		st.CacheHits += c.cacheHits.Load()
		st.CacheMisses += c.cacheMisses.Load()
		st.GlobalRefills += c.globalRefills.Load()
		st.FreshCarves += c.freshCarves.Load()
	}
	hw := p.next.Load()
	if hw > p.maxSlots {
		hw = p.maxSlots
	}
	st.HighWater = hw
	st.Capacity = p.maxSlots
	st.Slabs = len(*p.slabs.Load())
	return st
}

// CacheStats is one thread's free-list cache counters.
type CacheStats struct {
	Allocs        uint64
	Frees         uint64
	CacheHits     uint64
	CacheMisses   uint64
	GlobalRefills uint64
	FreshCarves   uint64
}

// CacheStats snapshots every thread cache's counters, indexed by tid. Like
// Stats it is approximate while threads run.
func (p *Pool[T]) CacheStats() []CacheStats {
	out := make([]CacheStats, len(p.caches))
	for i := range p.caches {
		c := &p.caches[i]
		out[i] = CacheStats{
			Allocs:        c.allocs.Load(),
			Frees:         c.frees.Load(),
			CacheHits:     c.cacheHits.Load(),
			CacheMisses:   c.cacheMisses.Load(),
			GlobalRefills: c.globalRefills.Load(),
			FreshCarves:   c.freshCarves.Load(),
		}
	}
	return out
}

// CheckEpochRange panics if e no longer fits the packed-epoch field; the
// TagIBR-WCAS scheme calls it so that a (pathological, >16M-epoch) run fails
// loudly instead of wrapping silently. See DESIGN.md substitution #3.
func CheckEpochRange(e uint64) {
	if e > MaxPackedEpoch {
		panic(fmt.Sprintf("mem: epoch %d overflows the %d-bit packed field used by TagIBR-WCAS", e, EpochBits))
	}
}

// Census counts slots by lifecycle state across the pool's touched region.
// It is approximate while threads run and exact at quiescence; tests and
// leak reports use it to see *where* memory stands, not just how much.
type Census struct {
	Free    uint64
	Live    uint64
	Retired uint64
}

// Census scans every slot ever touched and tallies states.
func (p *Pool[T]) Census() Census {
	var c Census
	slabs := *p.slabs.Load()
	hw := p.next.Load()
	if hw > p.maxSlots {
		hw = p.maxSlots
	}
	for gid := uint64(0); gid < hw; gid++ {
		st := State(slabs[gid>>slabShift].slots[gid&slabMask].hdr.state.Load())
		switch st {
		case StateLive:
			c.Live++
		case StateRetired:
			c.Retired++
		default:
			c.Free++
		}
	}
	return c
}
