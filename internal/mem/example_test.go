package mem_test

import (
	"fmt"

	"ibr/internal/mem"
)

type record struct {
	id uint64
}

// Example shows the manual allocator's lifecycle — the C-style discipline
// (alloc, use, retire, free) that the reclamation schemes automate, with
// the reuse stamp exposing recycling.
func Example() {
	pool := mem.New[record](mem.Options[record]{Threads: 1})

	h, _ := pool.Alloc(0)
	pool.Get(h).id = 7
	fmt.Println("state:", pool.State(h), "stamp:", pool.Stamp(h))

	pool.MarkRetired(h) // a reclamation scheme does this in Retire
	pool.Free(0, h)     // ... and this once no reservation conflicts

	h2, _ := pool.Alloc(0) // LIFO cache hands the same slot back
	fmt.Println("recycled:", h2.SameAddr(h), "stamp:", pool.Stamp(h2))

	// Output:
	// state: live stamp: 0
	// recycled: true stamp: 1
}
