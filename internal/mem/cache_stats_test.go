package mem

import "testing"

// TestCacheStats checks the free-list cache counters: a fresh pool's first
// Alloc misses and carves, cached slots hit, a Free→Alloc cycle hits, and
// slots spilled to the global list come back as a global refill.
func TestCacheStats(t *testing.T) {
	p := New[int](Options[int]{Threads: 2})

	// First Alloc: cold cache → miss + fresh carve.
	h, ok := p.Alloc(0)
	if !ok {
		t.Fatal("Alloc failed")
	}
	st := p.Stats()
	if st.CacheMisses != 1 || st.FreshCarves != 1 || st.CacheHits != 0 {
		t.Fatalf("after first alloc: hits=%d misses=%d carves=%d, want 0/1/1",
			st.CacheHits, st.CacheMisses, st.FreshCarves)
	}

	// Second Alloc: refill left refillBatch-1 slots cached → hit.
	h2, ok := p.Alloc(0)
	if !ok {
		t.Fatal("Alloc failed")
	}
	if st = p.Stats(); st.CacheHits != 1 {
		t.Fatalf("after second alloc: hits=%d, want 1", st.CacheHits)
	}

	// Free then Alloc on the same tid: the slot sits in the cache → hit.
	p.Free(0, h)
	if _, ok = p.Alloc(0); !ok {
		t.Fatal("Alloc failed")
	}
	if st = p.Stats(); st.CacheHits != 2 || st.GlobalRefills != 0 {
		t.Fatalf("after free/alloc cycle: hits=%d globalRefills=%d, want 2/0", st.CacheHits, st.GlobalRefills)
	}
	p.Free(0, h2)

	// Overflow tid 0's cache so it spills to the global list, then drain
	// tid 1's cold cache: its refill must come from the global list.
	var hs []Handle
	for i := 0; i < cacheCap+refillBatch; i++ {
		h, ok := p.Alloc(0)
		if !ok {
			t.Fatal("Alloc failed")
		}
		hs = append(hs, h)
	}
	for _, h := range hs {
		p.Free(0, h) // beyond cacheCap each Free spills refillBatch slots
	}
	if st = p.Stats(); st.GlobalRefills != 0 {
		t.Fatalf("frees alone performed %d global refills", st.GlobalRefills)
	}
	if _, ok := p.Alloc(1); !ok {
		t.Fatal("Alloc failed")
	}
	st = p.Stats()
	if st.GlobalRefills != 1 {
		t.Fatalf("tid 1 cold alloc after spill: globalRefills=%d, want 1", st.GlobalRefills)
	}

	// Per-thread view: tid 1 has exactly the one miss + one global refill.
	cs := p.CacheStats()
	if len(cs) != 2 {
		t.Fatalf("CacheStats len = %d, want 2", len(cs))
	}
	if cs[1].CacheMisses != 1 || cs[1].GlobalRefills != 1 || cs[1].FreshCarves != 0 || cs[1].Allocs != 1 {
		t.Fatalf("tid 1 cache stats = %+v, want 1 miss, 1 global refill, 0 carves, 1 alloc", cs[1])
	}
	if cs[0].FreshCarves == 0 || cs[0].CacheHits == 0 {
		t.Fatalf("tid 0 cache stats = %+v, want carves and hits recorded", cs[0])
	}

	// The aggregate equals the per-thread sum.
	var hits, misses uint64
	for _, c := range cs {
		hits += c.CacheHits
		misses += c.CacheMisses
	}
	if hits != st.CacheHits || misses != st.CacheMisses {
		t.Fatalf("aggregate (%d,%d) != per-thread sum (%d,%d)", st.CacheHits, st.CacheMisses, hits, misses)
	}
}
