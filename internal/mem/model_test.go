package mem

import (
	"math/rand"
	"testing"
)

// TestPoolModel drives the pool with long random operation sequences and
// cross-checks every observable against a trivial model: which slots are
// live/retired/free, their bodies, stamps, and the aggregate statistics.
func TestPoolModel(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run("", func(t *testing.T) {
			const capSlots = 256
			p := New[testNode](Options[testNode]{Threads: 2, MaxSlots: capSlots})
			rng := rand.New(rand.NewSource(seed))

			type slotModel struct {
				state State
				key   uint64
				stamp uint64
			}
			model := map[Handle]*slotModel{}
			var live, retired []Handle
			allocs, frees := uint64(0), uint64(0)

			removeFrom := func(s []Handle, h Handle) []Handle {
				for i := range s {
					if s[i] == h {
						s[i] = s[len(s)-1]
						return s[:len(s)-1]
					}
				}
				t.Fatalf("handle %v not tracked", h)
				return s
			}

			for i := 0; i < 5000; i++ {
				tid := rng.Intn(2)
				switch rng.Intn(4) {
				case 0, 1: // alloc
					h, ok := p.Alloc(tid)
					if !ok {
						// Legitimate under-capacity failure: freed slots may
						// be cached by the *other* thread (thread-cached
						// allocators trade this for lock-free fast paths).
						// It must never happen while most of the pool is
						// genuinely free, though.
						if uint64(len(live)+len(retired)) < capSlots/2 {
							t.Fatalf("op %d: alloc failed with only %d/%d slots in use",
								i, len(live)+len(retired), capSlots)
						}
						continue
					}
					h = h.Addr()
					m := model[h]
					if m == nil {
						m = &slotModel{}
						model[h] = m
					}
					if m.state != StateFree {
						t.Fatalf("op %d: alloc returned non-free slot %v (%v)", i, h, m.state)
					}
					m.state = StateLive
					m.key = rng.Uint64()
					p.Get(h).key = m.key
					live = append(live, h)
					allocs++
				case 2: // retire a random live slot
					if len(live) == 0 {
						continue
					}
					h := live[rng.Intn(len(live))]
					p.MarkRetired(h)
					model[h].state = StateRetired
					live = removeFrom(live, h)
					retired = append(retired, h)
				default: // free a random retired slot
					if len(retired) == 0 {
						continue
					}
					h := retired[rng.Intn(len(retired))]
					p.Free(tid, h)
					m := model[h]
					m.state = StateFree
					m.stamp++
					retired = removeFrom(retired, h)
					frees++
				}
				// Spot-check a few tracked slots every step.
				for j := 0; j < 3 && j < len(live); j++ {
					h := live[rng.Intn(len(live))]
					if p.State(h) != StateLive {
						t.Fatalf("op %d: slot %v state %v, model live", i, h, p.State(h))
					}
					if p.Get(h).key != model[h].key {
						t.Fatalf("op %d: slot %v body diverged", i, h)
					}
					if p.Stamp(h) != model[h].stamp {
						t.Fatalf("op %d: slot %v stamp %d, model %d", i, h, p.Stamp(h), model[h].stamp)
					}
				}
			}
			st := p.Stats()
			if st.Allocs != allocs || st.Frees != frees {
				t.Fatalf("stats %+v, model allocs %d frees %d", st, allocs, frees)
			}
			c := p.Census()
			if c.Live != uint64(len(live)) || c.Retired != uint64(len(retired)) {
				t.Fatalf("census %+v, model live %d retired %d", c, len(live), len(retired))
			}
		})
	}
}
