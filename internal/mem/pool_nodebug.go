//go:build !ibrdebug

package mem

// DebugChecks reports whether the ibrdebug assertions are compiled in.
const DebugChecks = false

// debugCheck is a no-op without the ibrdebug build tag; it inlines away so
// the production Get stays a bare slab index.
func (p *Pool[T]) debugCheck(Handle) {}
