//go:build ibrdebug

package mem

import "fmt"

// DebugChecks reports whether the ibrdebug assertions are compiled in.
const DebugChecks = true

// debugCheck panics when h addresses a slot no reservation could possibly
// cover: a slot that is already on a free list, or a TagIBR-WCAS handle
// whose packed birth epoch disagrees with the slot header — the slot was
// reclaimed and reused since the pointer word was read, so the access is a
// use-after-free. The check is best-effort (a racing Free right after it
// still slips through), but it converts the silent corruption the paper's
// schemes exist to prevent into a deterministic panic under `make testdebug`.
func (p *Pool[T]) debugCheck(h Handle) {
	if _, ok := h.Slot(); !ok {
		return // let Get raise its canonical nil-handle panic
	}
	hdr := p.hdr(h)
	if State(hdr.state.Load()) == StateFree {
		panic(fmt.Sprintf("ibrdebug: Get of freed %v (reuse stamp %d)", h, hdr.stamp.Load()))
	}
	if e := h.Epoch(); e != 0 && e != hdr.birth.Load() {
		panic(fmt.Sprintf("ibrdebug: Get through stale %v: packed birth %d, slot birth %d (slot reused since the read)", h, e, hdr.birth.Load()))
	}
}
