// Package ds holds the clean retirefree case: detachment goes through
// Scheme.Retire so a reclamation scan can prove the block unreachable.
package ds

import (
	"stub/internal/core"
	"stub/internal/mem"
)

type T struct {
	s core.Scheme
}

// Unlink retires through the scheme, as the protocol requires.
func (t *T) Unlink(tid int, h mem.Handle) {
	t.s.Retire(tid, h)
}
