// Package ds holds the clean retirefree case: detachment goes through
// Scheme.Retire so a reclamation scan can prove the block unreachable.
package ds

import (
	"stub/internal/core"
	"stub/internal/mem"
)

type T struct {
	s core.Scheme
}

// Unlink retires through the scheme, as the protocol requires.
func (t *T) Unlink(tid int, h mem.Handle) {
	t.s.Retire(tid, h)
}

// Quarantine is the sanctioned transfer idiom: each cross-tid call carries
// an //ibrlint:ignore directive stating the parked-or-dead evidence.
func (t *T) Quarantine(victim, tid int) {
	//ibrlint:ignore quarantine: holder verified parked or dead via lease table
	core.ClearReservation(t.s, victim)
	//ibrlint:ignore quarantine: victim revoked, this goroutine owns the adopting tid
	core.AdoptRetired(t.s, victim, tid)
}
