// Package ds exercises the lifecycle analyzer's path sensitivity: a Retire
// on one branch poisons every use reachable after the join, while a branch
// that returns (or a reassignment) keeps the fall-through clean.
package ds

import "stub/internal/core"
import "stub/internal/mem"

// branchUse retires h only when cond holds, then dereferences it on the
// joined path: the bad path makes the Get a use-after-retire.
func branchUse(s core.Scheme, p *mem.Pool, head *core.Ptr, tid int, cond bool) uint64 {
	s.StartOp(tid)
	defer s.EndOp(tid)
	h := s.ReadRoot(tid, 0, head)
	if cond {
		s.Retire(tid, h)
	}
	return p.Get(h).Val // want "Pool.Get of a handle retired at line 16: the block may already be reclaimed"
}

// branchRetireAgain retires on one branch and unconditionally after the
// join: the same handle would enter the retire list twice.
func branchRetireAgain(s core.Scheme, head *core.Ptr, tid int, cond bool) {
	s.StartOp(tid)
	defer s.EndOp(tid)
	h := s.ReadRoot(tid, 0, head)
	if cond {
		s.Retire(tid, h)
	}
	s.Retire(tid, h) // want "Retire of a handle already retired at line 28"
}

// branchReturn is the clean shape: the retiring branch leaves the function,
// so no retired value reaches the Get.
func branchReturn(s core.Scheme, p *mem.Pool, head *core.Ptr, tid int, cond bool) uint64 {
	s.StartOp(tid)
	defer s.EndOp(tid)
	h := s.ReadRoot(tid, 0, head)
	if cond {
		s.Retire(tid, h)
		return 0
	}
	return p.Get(h).Val
}

// branchReacquire is the Harris–Michael idiom: the retired value is
// overwritten before the join, so the back edge carries a fresh handle.
func branchReacquire(s core.Scheme, p *mem.Pool, head *core.Ptr, tid int) uint64 {
	s.StartOp(tid)
	defer s.EndOp(tid)
	h := s.ReadRoot(tid, 0, head)
	for i := 0; i < 4; i++ {
		if h.Mark0() {
			s.Retire(tid, h)
			h = s.Read(tid, 1, head)
			continue
		}
	}
	return p.Get(h).Val
}
