// Package ds exercises the range-callback idiom: a visitor callback passed
// into an exported scan entry point is opaque code, so a handle exposed to
// it can be retained past the StartOp/EndOp bracket that protects it. The
// ds.Ranger contract therefore requires visitors to receive values — this
// suite checks both sides: derefguard demands the exposure itself happen
// inside the bracket, and lifecycle rejects protected-read handles (and
// worse, retired or expired ones) crossing the callback boundary at all.
// Locally bound closures (the recursive-walk idiom) and unexported helpers
// taking package-internal builders stay exempt.
package ds

import (
	"stub/internal/core"
	"stub/internal/mem"
)

// ScanValues is the idiomatic scan: one bracket for the whole traversal,
// the visitor sees values copied out of the node. Clean.
func ScanValues(s core.Scheme, p *mem.Pool, head *core.Ptr, tid int, fn func(k, v uint64) bool) {
	s.StartOp(tid)
	defer s.EndOp(tid)
	curr := s.ReadRoot(tid, 0, head)
	for !curr.IsNil() {
		n := p.Get(curr)
		if !fn(n.Key, n.Val) {
			return
		}
		curr = s.Read(tid, 1, head).ClearMarks()
	}
}

// ScanHandles leaks protection: the visitor receives the protected-read
// handle itself, and nothing stops it from stashing the handle past EndOp.
func ScanHandles(s core.Scheme, head *core.Ptr, tid int, fn func(h mem.Handle) bool) {
	s.StartOp(tid)
	defer s.EndOp(tid)
	curr := s.ReadRoot(tid, 0, head)
	for !curr.IsNil() {
		if !fn(curr) { // want "protected read handle is exposed to a visitor callback"
			return
		}
		curr = s.Read(tid, 1, head).ClearMarks()
	}
}

// ScanRetired hands the visitor a handle this op already retired.
func ScanRetired(s core.Scheme, head *core.Ptr, tid int, fn func(h mem.Handle) bool) {
	s.StartOp(tid)
	defer s.EndOp(tid)
	curr := s.ReadRoot(tid, 0, head)
	s.Retire(tid, curr)
	fn(curr) // want "handle retired at line 51 is exposed to a visitor callback"
}

// ScanAfterEnd closes the bracket first: the exposure happens outside it
// (derefguard) and the handle's protection has already lapsed (lifecycle).
func ScanAfterEnd(s core.Scheme, head *core.Ptr, tid int, fn func(h mem.Handle) bool) {
	s.StartOp(tid)
	curr := s.ReadRoot(tid, 0, head)
	s.EndOp(tid)
	fn(curr) // want "visitor callback receiving a handle may follow EndOp" "after EndOp at line 60"
}

// ScanUnbracketed never opens a bracket at all; exposing the caller's
// handle to the visitor is a protected operation like any other.
func ScanUnbracketed(h mem.Handle, fn func(h mem.Handle) bool) {
	fn(h) // want "visitor callback receiving a handle outside the reservation bracket"
}

// ScanAlloc is clean: the exposed handle is privately allocated this op,
// not a protected read, so its lifetime does not hang on the bracket.
func ScanAlloc(s core.Scheme, tid int, fn func(h mem.Handle) bool) {
	s.StartOp(tid)
	defer s.EndOp(tid)
	h := s.Alloc(tid)
	fn(h)
}

// ScanPublished is clean: the handle was written into the structure before
// the exposure, so the callback retaining it observes reachable memory.
func ScanPublished(s core.Scheme, head, dst *core.Ptr, tid int, fn func(h mem.Handle) bool) {
	s.StartOp(tid)
	defer s.EndOp(tid)
	h := s.ReadRoot(tid, 0, head)
	s.Write(tid, dst, h)
	fn(h)
}

// ScanWalk is the bonsai idiom and clean: the handles flow through a
// recursive closure bound locally (visible code), and the opaque visitor
// only ever sees values.
func ScanWalk(s core.Scheme, p *mem.Pool, head *core.Ptr, tid int, fn func(k, v uint64) bool) {
	s.StartOp(tid)
	defer s.EndOp(tid)
	root := s.ReadRoot(tid, 0, head)
	var walk func(h mem.Handle) bool
	walk = func(h mem.Handle) bool {
		if h.IsNil() {
			return true
		}
		n := p.Get(h)
		return fn(n.Key, n.Val)
	}
	walk(root)
}

// scanBuild mirrors bonsai's update helper and is clean: an unexported
// function's callback parameter is package-internal plumbing — every call
// site passes a literal whose body the analyzer checks on its own.
func scanBuild(s core.Scheme, head *core.Ptr, tid int, build func(root mem.Handle) mem.Handle) bool {
	s.StartOp(tid)
	defer s.EndOp(tid)
	oldRoot := s.ReadRoot(tid, 0, head)
	newRoot := build(oldRoot)
	return s.CompareAndSwap(tid, head, oldRoot, newRoot)
}
