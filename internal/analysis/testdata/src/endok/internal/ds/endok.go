// Package ds holds the clean endop cases.
package ds

import "stub/internal/core"

// Deferred is the canonical shape: the deferred EndOp covers every exit.
func Deferred(s core.Scheme, tid int) {
	s.StartOp(tid)
	defer s.EndOp(tid)
}

// AllPaths closes the bracket explicitly on every return path.
func AllPaths(s core.Scheme, tid int, abort bool) {
	s.StartOp(tid)
	if abort {
		s.EndOp(tid)
		return
	}
	s.EndOp(tid)
}

// PanicPath leaves the bracket open only on a panicking path, which is not
// a return.
func PanicPath(s core.Scheme, tid int, bad bool) {
	s.StartOp(tid)
	if bad {
		panic("corrupt structure")
	}
	s.EndOp(tid)
}

// ClosureCovered defers a closure that withdraws the reservation.
func ClosureCovered(s core.Scheme, tid int) {
	s.StartOp(tid)
	defer func() {
		s.EndOp(tid)
	}()
}

// SelectBracket holds the reservation across a default-less select. The
// CFG ends the last clause in a successor-less SelectAfterCase block (the
// impossible "no case ready" path); that is a block-forever path, not a
// return, so the bracket is closed on every real exit.
func SelectBracket(s core.Scheme, tid int, stop, tick chan struct{}) {
	for {
		s.StartOp(tid)
		done := false
		select {
		case <-stop:
			done = true
		case <-tick:
		}
		s.EndOp(tid)
		if done {
			return
		}
	}
}

// SelectReturnInCase withdraws inside each clause body, including one that
// returns directly.
func SelectReturnInCase(s core.Scheme, tid int, stop, tick chan struct{}) {
	s.StartOp(tid)
	select {
	case <-stop:
		s.EndOp(tid)
		return
	case <-tick:
	}
	s.EndOp(tid)
}
