// Package ds holds the clean endop cases.
package ds

import "stub/internal/core"

// Deferred is the canonical shape: the deferred EndOp covers every exit.
func Deferred(s core.Scheme, tid int) {
	s.StartOp(tid)
	defer s.EndOp(tid)
}

// AllPaths closes the bracket explicitly on every return path.
func AllPaths(s core.Scheme, tid int, abort bool) {
	s.StartOp(tid)
	if abort {
		s.EndOp(tid)
		return
	}
	s.EndOp(tid)
}

// PanicPath leaves the bracket open only on a panicking path, which is not
// a return.
func PanicPath(s core.Scheme, tid int, bad bool) {
	s.StartOp(tid)
	if bad {
		panic("corrupt structure")
	}
	s.EndOp(tid)
}

// ClosureCovered defers a closure that withdraws the reservation.
func ClosureCovered(s core.Scheme, tid int) {
	s.StartOp(tid)
	defer func() {
		s.EndOp(tid)
	}()
}
