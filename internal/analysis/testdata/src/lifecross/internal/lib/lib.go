// Package lib provides protocol helpers for the cross-package lifecycle
// golden: the analyzer summarizes what each function does to its handle
// parameters (retire, deref, publish) and exports the summaries as facts,
// which the ds-side golden then sees through its call sites.
package lib

import (
	"stub/internal/core"
	"stub/internal/mem"
)

// Unlink retires h on behalf of the caller: its summary carries EffRetire
// on the h parameter.
func Unlink(s core.Scheme, tid int, h mem.Handle) {
	s.Retire(tid, h)
}

// Val dereferences h: its summary carries EffDeref.
func Val(p *mem.Pool, h mem.Handle) uint64 {
	return p.Get(h).Val
}

// Install publishes h into dst: its summary carries EffPublish.
func Install(s core.Scheme, tid int, dst *core.Ptr, h mem.Handle) {
	s.Write(tid, dst, h)
}
