// Package ds exercises the lifecycle analyzer across function boundaries:
// the retire and the offending use live in different functions — and, for
// the lib helpers, in a different package — connected only by
// parameter-effect summaries (intra-package fixpoint and exported facts).
package ds

import (
	"lifecross/internal/lib"

	"stub/internal/core"
	"stub/internal/mem"
)

// retireThenRead crosses the package boundary both ways: lib.Unlink's
// EffRetire fact poisons h, and lib.Val's EffDeref fact makes the last call
// a use-after-retire.
func retireThenRead(s core.Scheme, p *mem.Pool, head *core.Ptr, tid int) uint64 {
	s.StartOp(tid)
	defer s.EndOp(tid)
	h := s.ReadRoot(tid, 0, head)
	lib.Unlink(s, tid, h)
	return lib.Val(p, h) // want "handle retired at line 21 is passed to Val, which dereferences it"
}

// doubleRetireCross retires locally, then again through the helper.
func doubleRetireCross(s core.Scheme, head *core.Ptr, tid int) {
	s.StartOp(tid)
	defer s.EndOp(tid)
	h := s.ReadRoot(tid, 0, head)
	s.Retire(tid, h)
	lib.Unlink(s, tid, h) // want "handle already retired at line 30 is retired again by Unlink"
}

// publishRetiredCross hands a retired handle to a helper that publishes it.
func publishRetiredCross(s core.Scheme, head, dst *core.Ptr, tid int) {
	s.StartOp(tid)
	defer s.EndOp(tid)
	h := s.ReadRoot(tid, 0, head)
	s.Retire(tid, h)
	lib.Install(s, tid, dst, h) // want "handle retired at line 39 is passed to Install, which publishes it"
}

// unlinkLocal is the same-package helper: its summary comes from the
// intra-package fixpoint rather than an imported fact.
func unlinkLocal(s core.Scheme, tid int, h mem.Handle) {
	s.Retire(tid, h)
}

// retireThenReadLocal is the intra-package variant of retireThenRead.
func retireThenReadLocal(s core.Scheme, p *mem.Pool, head *core.Ptr, tid int) uint64 {
	s.StartOp(tid)
	defer s.EndOp(tid)
	h := s.ReadRoot(tid, 0, head)
	unlinkLocal(s, tid, h)
	return p.Get(h).Val // want "Pool.Get of a handle retired at line 54"
}

// readFresh is the clean counterpart: the helper retires a different
// handle, so the deref stays legitimate.
func readFresh(s core.Scheme, p *mem.Pool, head *core.Ptr, tid int) uint64 {
	s.StartOp(tid)
	defer s.EndOp(tid)
	dead := s.ReadRoot(tid, 0, head)
	lib.Unlink(s, tid, dead)
	h := s.ReadRoot(tid, 1, head)
	return lib.Val(p, h)
}
