// Package ds exercises ibrdirective's staleness check: an //ibrlint:ignore
// that suppressed a real finding is fine, one that suppresses nothing from
// the whole suite is itself reported — a rotted suppression sits ready to
// hide the next real finding at that site.
package ds

import "stub/internal/mem"

// discard's directive suppresses a live retirefree finding: used, not
// stale.
func discard(p *mem.Pool, tid int, h mem.Handle) {
	//ibrlint:ignore never published; discarded before any publication
	p.Free(tid, h)
}

// check carries a directive above a line that triggers nothing in any
// analyzer: the suppression is dead weight and must be flagged.
func check(h mem.Handle) bool {
	//ibrlint:ignore never published; nothing here needs suppressing
	// want-1 "stale //ibrlint:ignore: it suppresses no diagnostic from the suite"
	return h.IsNil()
}
