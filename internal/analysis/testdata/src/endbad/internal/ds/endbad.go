// Package ds exercises endop: StartOp left open on some return path.
package ds

import "stub/internal/core"

// Leak returns early without closing the bracket.
func Leak(s core.Scheme, tid int, abort bool) {
	s.StartOp(tid) // want "StartOp is not matched by EndOp on every return path"
	if abort {
		return
	}
	s.EndOp(tid)
}

// Spawn leaks inside a closure; function literals are checked on their own.
func Spawn(s core.Scheme, tid int) func() {
	return func() {
		s.StartOp(tid) // want "StartOp is not matched by EndOp on every return path"
	}
}

// SelectLeak returns from one select clause without withdrawing: the
// successor-less SelectAfterCase artifact is exempt, real clause-body
// returns are not.
func SelectLeak(s core.Scheme, tid int, stop, tick chan struct{}) {
	s.StartOp(tid) // want "StartOp is not matched by EndOp on every return path"
	select {
	case <-stop:
		return
	case <-tick:
	}
	s.EndOp(tid)
}
