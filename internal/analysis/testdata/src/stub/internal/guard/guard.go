// Package guard stubs ibr/internal/guard for the analyzer golden tests.
// The real facade is generic over the node type; the analyzers match its
// methods by name plus import-path suffix, so a non-generic stub over the
// stub mem.Node suffices.
package guard

import (
	"stub/internal/core"
	"stub/internal/mem"
)

// Guarded mirrors guard.Guarded[T].
type Guarded struct {
	s    core.Scheme
	pool *mem.Pool
}

func New(s core.Scheme, pool *mem.Pool) *Guarded { return &Guarded{s: s, pool: pool} }

func (w *Guarded) Scheme() core.Scheme { return w.s }
func (w *Guarded) Pool() *mem.Pool     { return w.pool }

func (w *Guarded) Do(tid int, fn func(g *Guard)) {
	w.s.StartOp(tid)
	defer w.s.EndOp(tid)
	fn(&Guard{w: w, tid: tid})
}

// Guard mirrors guard.Guard[T].
type Guard struct {
	w   *Guarded
	tid int
}

func (g *Guard) Tid() int                                  { return g.tid }
func (g *Guard) Load(slot int, p *core.Ptr) mem.Handle     { return g.w.s.Read(g.tid, slot, p) }
func (g *Guard) LoadRoot(slot int, p *core.Ptr) mem.Handle { return g.w.s.ReadRoot(g.tid, slot, p) }
func (g *Guard) Deref(h mem.Handle) *mem.Node              { return g.w.pool.Get(h) }
func (g *Guard) Publish(p *core.Ptr, h mem.Handle)         { g.w.s.Write(g.tid, p, h) }
func (g *Guard) CompareAndSwap(p *core.Ptr, old, new mem.Handle) bool {
	return g.w.s.CompareAndSwap(g.tid, p, old, new)
}
func (g *Guard) Retire(h mem.Handle) { g.w.s.Retire(g.tid, h) }
func (g *Guard) Alloc() mem.Handle   { return g.w.s.Alloc(g.tid) }
func (g *Guard) Discard(h mem.Handle) {
	//ibrlint:ignore never published by contract: the facade's failed-insert path
	g.w.pool.Free(g.tid, h)
}
func (g *Guard) Restart() { g.w.s.RestartOp(g.tid) }
