// Package core stubs ibr/internal/core for the analyzer golden tests.
package core

import "stub/internal/mem"

// Ptr is a shared pointer cell.
type Ptr struct{ v uint64 }

func (p *Ptr) Raw() mem.Handle { return mem.Handle(p.v) }

// Scheme is the reservation API surface the analyzers key on.
type Scheme interface {
	StartOp(tid int)
	EndOp(tid int)
	RestartOp(tid int)
	Alloc(tid int) mem.Handle
	Read(tid, slot int, p *Ptr) mem.Handle
	ReadRoot(tid, slot int, p *Ptr) mem.Handle
	Write(tid int, p *Ptr, h mem.Handle)
	CompareAndSwap(tid int, p *Ptr, old, new mem.Handle) bool
	Retire(tid int, h mem.Handle)
}
