// Package core stubs ibr/internal/core for the analyzer golden tests.
package core

import "stub/internal/mem"

// Ptr is a shared pointer cell.
type Ptr struct{ v uint64 }

func (p *Ptr) Raw() mem.Handle { return mem.Handle(p.v) }

// Scheme is the reservation API surface the analyzers key on.
type Scheme interface {
	StartOp(tid int)
	EndOp(tid int)
	RestartOp(tid int)
	Alloc(tid int) mem.Handle
	Read(tid, slot int, p *Ptr) mem.Handle
	ReadRoot(tid, slot int, p *Ptr) mem.Handle
	Write(tid int, p *Ptr, h mem.Handle)
	CompareAndSwap(tid int, p *Ptr, old, new mem.Handle) bool
	Retire(tid int, h mem.Handle)
}

// Transferer mirrors the cross-tid transfer surface.
type Transferer interface {
	AdoptRetired(from, to int) int
	ClearReservation(tid int)
}

// AdoptRetired mirrors the package-function form of retire-list adoption.
func AdoptRetired(s Scheme, from, to int) int {
	if t, ok := s.(Transferer); ok {
		return t.AdoptRetired(from, to)
	}
	return 0
}

// ClearReservation mirrors the package-function form of the cross-tid
// reservation clear.
func ClearReservation(s Scheme, tid int) {
	if t, ok := s.(Transferer); ok {
		t.ClearReservation(tid)
	}
}
