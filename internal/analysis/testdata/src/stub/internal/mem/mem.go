// Package mem stubs ibr/internal/mem for the analyzer golden tests. The
// ibrlint analyzers match protocol calls by method name plus import-path
// suffix, so only the signatures matter here; the real Pool is generic, the
// stub is not.
package mem

// Handle indexes a pool slot.
type Handle uint64

// Nil is the null handle.
const Nil Handle = 0

func (h Handle) IsNil() bool        { return h == 0 }
func (h Handle) ClearMarks() Handle { return h }
func (h Handle) Mark0() bool        { return false }

// Node is the pooled element.
type Node struct {
	Key, Val uint64
}

// Pool mimics mem.Pool[T].
type Pool struct{ nodes []Node }

func (p *Pool) Get(h Handle) *Node             { return &p.nodes[h] }
func (p *Pool) Free(tid int, h Handle)         {}
func (p *Pool) FreeBatch(tid int, hs []Handle) {}
func (p *Pool) Alloc(tid int) (Handle, bool)   { return 0, false }
func (p *Pool) SetBirth(h Handle, e uint64)    {}
