// Package core exercises the idioms the post-paper engines (hyaline,
// debra) introduced into the reclamation core: birth-stamp-free allocation
// behind a documented //ibrlint:ignore directive, and handoff frees driven
// by a batch reference count instead of a reservation scan. epochstamp must
// accept the documented plain alloc but still flag an undocumented one;
// retirefree must accept the refcount-driven FreeBatch under the in-core
// substrate exemption.
package core

import "stub/internal/mem"

// batch is a hyaline-style batch descriptor: a shared reference count over
// a group of retired blocks, freed by whoever drops the last reference.
type batch struct {
	refs   int64
	blocks []mem.Handle
}

type handoff struct {
	pool  *mem.Pool
	epoch uint64
}

// allocPlain is the debra/hyaline alloc: no birth stamp, documented.
//
//ibrlint:ignore handoff schemes never read birth epochs; the retire stamp is their only interval data
func (s *handoff) allocPlain(tid int) mem.Handle {
	h, ok := s.pool.Alloc(tid)
	if !ok {
		return mem.Nil
	}
	return h
}

// allocLoud has no directive: an in-core allocation escaping unstamped must
// stay a finding even inside a handoff scheme's file.
func (s *handoff) allocLoud(tid int) mem.Handle {
	h, ok := s.pool.Alloc(tid)
	if !ok {
		return mem.Nil
	}
	return h // want "allocated handle escapes before SetBirth"
}

// dropRef is the hyaline leave: decrement the batch's reference count and
// free the whole batch at zero. internal/core frees what it has proven
// unreachable, so retirefree reports nothing here.
func (s *handoff) dropRef(tid int, b *batch) {
	b.refs--
	if b.refs == 0 {
		s.pool.FreeBatch(tid, b.blocks)
	}
}

// neutralizeAndFree is the debra quarantine tail: after the victim's
// reservation is cleared, its expired limbo bags free as one prefix batch —
// also covered by the substrate exemption.
func (s *handoff) neutralizeAndFree(tid int, bags []mem.Handle) {
	s.pool.FreeBatch(tid, bags)
}
