// Package core exercises epochstamp rule (b): inside the reclamation core,
// a successful allocator Alloc must reach SetBirth on every path before the
// handle escapes.
package core

import "stub/internal/mem"

type scheme struct {
	pool  *mem.Pool
	epoch uint64
}

// alloc forgets to stamp before returning the handle.
func (s *scheme) alloc(tid int) mem.Handle {
	h, ok := s.pool.Alloc(tid)
	if !ok {
		return mem.Nil
	}
	return h // want "allocated handle escapes before SetBirth"
}

// allocMaybe stamps on only one path; the merge is still may-unstamped.
func (s *scheme) allocMaybe(tid int, fast bool) mem.Handle {
	h, ok := s.pool.Alloc(tid)
	if !ok {
		return mem.Nil
	}
	if !fast {
		s.pool.SetBirth(h, s.epoch)
	}
	return h // want "allocated handle escapes before SetBirth"
}

// stash publishes the unstamped handle through a shared cell.
func (s *scheme) stash(tid int, slot *mem.Handle) {
	h, ok := s.pool.Alloc(tid)
	if ok {
		*slot = h // want "allocated handle escapes before SetBirth"
	}
}
