// Package ds exercises the protected-window check: a handle obtained from
// a protected read is covered only until the plain EndOp of its op; using
// it past that point — unless it was published first — reads memory the
// reclamation scan may already have freed.
package ds

import "stub/internal/core"
import "stub/internal/mem"

// endExpire dereferences a read handle after the op's EndOp.
func endExpire(s core.Scheme, p *mem.Pool, head *core.Ptr, tid int) uint64 {
	s.StartOp(tid)
	h := s.ReadRoot(tid, 0, head)
	s.EndOp(tid)
	return p.Get(h).Val // want "op whose EndOp already ran at line 14"
}

// endEscape leaks the expired handle to the caller instead.
func endEscape(s core.Scheme, head *core.Ptr, tid int) mem.Handle {
	s.StartOp(tid)
	h := s.ReadRoot(tid, 0, head)
	s.EndOp(tid)
	return h // want "handle read inside this op is returned after EndOp at line 22: it is no longer protected"
}

// endPublished is clean: the handle was published into the structure before
// EndOp, so its lifetime no longer depends on the reservation.
func endPublished(s core.Scheme, p *mem.Pool, head, dst *core.Ptr, tid int) uint64 {
	s.StartOp(tid)
	h := s.ReadRoot(tid, 0, head)
	s.Write(tid, dst, h)
	s.EndOp(tid)
	return p.Get(h).Val
}

// endFresh is clean: a handle allocated (not read) this op is private, so
// the reservation's end does not expire it.
func endFresh(s core.Scheme, p *mem.Pool, tid int) uint64 {
	s.StartOp(tid)
	h := s.Alloc(tid)
	s.EndOp(tid)
	return p.Get(h).Val
}

// endDeferred is clean: the deferred EndOp runs at return, after the Get.
func endDeferred(s core.Scheme, p *mem.Pool, head *core.Ptr, tid int) uint64 {
	s.StartOp(tid)
	defer s.EndOp(tid)
	h := s.ReadRoot(tid, 0, head)
	return p.Get(h).Val
}
