// Package ds exercises retirefree's double-Retire path check: handing the
// same variable to Retire twice along one control-flow path corrupts the
// retire list, while rebinding between retires (loops over fresh handles,
// explicit reassignment) is the normal idiom and must stay clean.
package ds

import (
	"stub/internal/core"
	"stub/internal/mem"
)

// doubleRetire retires h on the branch and again on the fall-through: the
// branch path hands the same value over twice.
func doubleRetire(s core.Scheme, tid int, h mem.Handle, cond bool) {
	if cond {
		s.Retire(tid, h)
	}
	s.Retire(tid, h) // want "h is retired again on this path: already handed to Retire at line 16"
}

// doubleRetireStraight is the degenerate straight-line case.
func doubleRetireStraight(s core.Scheme, tid int, h mem.Handle) {
	s.Retire(tid, h)
	s.Retire(tid, h) // want "h is retired again on this path: already handed to Retire at line 23"
}

// retireEach is the loop shape that must stay clean: the range variable is
// rebound every iteration.
func retireEach(s core.Scheme, tid int, hs []mem.Handle) {
	for _, h := range hs {
		s.Retire(tid, h)
	}
}

// reassigned is clean: the second Retire hands over a different value.
func reassigned(s core.Scheme, p *core.Ptr, tid int, h mem.Handle) {
	s.Retire(tid, h)
	h = p.Raw()
	s.Retire(tid, h)
}

// branchExclusive is clean: the two Retire calls are on mutually exclusive
// paths.
func branchExclusive(s core.Scheme, tid int, h mem.Handle, cond bool) {
	if cond {
		s.Retire(tid, h)
		return
	}
	s.Retire(tid, h)
}
