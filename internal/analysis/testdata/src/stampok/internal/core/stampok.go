// Package core holds the clean epochstamp cases for the in-core rule.
package core

import "stub/internal/mem"

type scheme struct {
	pool  *mem.Pool
	epoch uint64
}

// alloc stamps the birth before the handle escapes (paper Fig. 4).
func (s *scheme) alloc(tid int) mem.Handle {
	h, ok := s.pool.Alloc(tid)
	if !ok {
		return mem.Nil
	}
	s.pool.SetBirth(h, s.epoch)
	return h
}

// probe may inspect the handle (Handle methods are not escapes) before
// stamping it.
func (s *scheme) probe(tid int) mem.Handle {
	h, ok := s.pool.Alloc(tid)
	if !ok || h.IsNil() {
		return mem.Nil
	}
	s.pool.SetBirth(h, s.epoch)
	return h
}

// drop discards the unstamped handle by reassignment: nothing escapes.
func (s *scheme) drop(tid int) mem.Handle {
	h, ok := s.pool.Alloc(tid)
	if !ok {
		return mem.Nil
	}
	h = mem.Nil
	return h
}
