// Package ds exercises the //ibrlint:ignore escape hatch. It is checked
// with retirefree and ibrdirective together: valid directives suppress the
// retirefree finding, while bare or misspelled directives are themselves
// findings and suppress nothing.
package ds

import "stub/internal/mem"

// dropPrevLine is a documented false positive: the directive on the line
// above suppresses the retirefree finding.
func dropPrevLine(p *mem.Pool, tid int, h mem.Handle) {
	//ibrlint:ignore never published; no CAS linked the node, so no other thread can hold it
	p.Free(tid, h)
}

// dropSameLine is suppressed by a same-line directive.
func dropSameLine(p *mem.Pool, tid int, h mem.Handle) {
	p.Free(tid, h) //ibrlint:ignore never published; discarded before any publication
}

// DropDoc is suppressed for the whole function by its doc directive.
//
//ibrlint:ignore quiescence-only: the structure is torn down single-threaded
func DropDoc(p *mem.Pool, tid int, hs []mem.Handle) {
	for _, h := range hs {
		p.Free(tid, h)
	}
	p.FreeBatch(tid, hs)
}

// dropLoud has no directive: the finding must survive.
func dropLoud(p *mem.Pool, tid int, h mem.Handle) {
	p.Free(tid, h) // want "direct Free bypasses reclamation"
}

// dropBare shows a bare ignore: it suppresses nothing and is itself
// flagged by ibrdirective.
func dropBare(p *mem.Pool, tid int, h mem.Handle) {
	//ibrlint:ignore
	// want-1 "ignore without a reason suppresses nothing"
	p.Free(tid, h) // want "direct Free bypasses reclamation"
}

//ibrlint:ignroe typo-verbs-must-not-pass-silently
// want-1 "unknown ibrlint directive \"ignroe\""
func typoVerb(p *mem.Pool, tid int, h mem.Handle) {
	p.Free(tid, h) // want "direct Free bypasses reclamation"
}
