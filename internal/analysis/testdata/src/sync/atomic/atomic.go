// Package atomic stubs the functional sync/atomic API for the atomicmix
// golden tests; the analyzer keys on the exact import path "sync/atomic".
package atomic

func LoadUint64(addr *uint64) uint64 { return *addr }

func StoreUint64(addr *uint64, val uint64) { *addr = val }

func AddUint64(addr *uint64, delta uint64) uint64 {
	*addr += delta
	return *addr
}

func CompareAndSwapUint64(addr *uint64, old, new uint64) bool {
	if *addr != old {
		return false
	}
	*addr = new
	return true
}
