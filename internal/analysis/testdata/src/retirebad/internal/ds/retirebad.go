// Package ds exercises retirefree: direct frees outside the reclamation
// substrate.
package ds

import "stub/internal/mem"

type T struct {
	pool *mem.Pool
}

// Drop frees a detached node directly instead of retiring it.
func (t *T) Drop(tid int, h mem.Handle) {
	t.pool.Free(tid, h) // want "direct Free bypasses reclamation"
}

// DropBatch is the batched variant.
func (t *T) DropBatch(tid int, hs []mem.Handle) {
	t.pool.FreeBatch(tid, hs) // want "direct FreeBatch bypasses reclamation"
}
