// Package ds exercises retirefree: direct frees outside the reclamation
// substrate.
package ds

import (
	"stub/internal/core"
	"stub/internal/mem"
)

type T struct {
	pool *mem.Pool
}

// Drop frees a detached node directly instead of retiring it.
func (t *T) Drop(tid int, h mem.Handle) {
	t.pool.Free(tid, h) // want "direct Free bypasses reclamation"
}

// DropBatch is the batched variant.
func (t *T) DropBatch(tid int, hs []mem.Handle) {
	t.pool.FreeBatch(tid, hs) // want "direct FreeBatch bypasses reclamation"
}

// Steal transfers another tid's state with no evidence its holder is parked
// or dead — both the package-function and the method forms must be flagged.
func Steal(s core.Scheme, tr core.Transferer, victim, tid int) {
	core.ClearReservation(s, victim) // want "cross-tid ClearReservation acts on another thread's reservation state"
	core.AdoptRetired(s, victim, tid) // want "cross-tid AdoptRetired acts on another thread's reservation state"
	tr.ClearReservation(victim)       // want "cross-tid ClearReservation acts on another thread's reservation state"
	tr.AdoptRetired(victim, tid)      // want "cross-tid AdoptRetired acts on another thread's reservation state"
}
