// Package atomicbad mixes plain and atomic access to the same words.
package atomicbad

import "sync/atomic"

type counter struct {
	n    uint64
	cold uint64
}

var hits uint64

func inc(c *counter) { atomic.AddUint64(&c.n, 1) }

func read(c *counter) uint64 {
	return c.n // want "plain access to n"
}

func bump() { atomic.StoreUint64(&hits, 1) }

func peek() uint64 {
	return hits // want "plain access to hits"
}

// seed is exempt: composite-literal keys initialize before publication.
func seed() *counter {
	return &counter{n: 1, cold: 2}
}
