// Package ds holds the clean derefguard cases: properly bracketed
// operations, caller-bracketed helpers, and test-file exemptions.
package ds

import (
	"stub/internal/core"
	"stub/internal/mem"
)

type Q struct {
	pool *mem.Pool
	s    core.Scheme
	head core.Ptr
}

// Quarantine adopts a victim's retire list without touching pool memory:
// pure bookkeeping needs no reservation bracket, only the transfer
// directive.
func (q *Q) Quarantine(victim, tid int) int {
	//ibrlint:ignore quarantine: victim verified parked or dead via lease table
	return core.AdoptRetired(q.s, victim, tid)
}

// Get brackets the traversal; nothing to report.
func (q *Q) Get(tid int) uint64 {
	q.s.StartOp(tid)
	defer q.s.EndOp(tid)
	h := q.s.ReadRoot(tid, 0, &q.head)
	for !h.IsNil() {
		n := q.pool.Get(h)
		if n.Key != 0 {
			return n.Val
		}
		h = mem.Nil
	}
	return 0
}

// find is an unexported helper with no StartOp of its own: it runs under
// its caller's bracket and is skipped.
func (q *Q) find(tid int) *mem.Node {
	return q.pool.Get(q.head.Raw())
}

// Drain reopens the bracket after a plain EndOp; the accesses after the
// second StartOp are dominated again.
func (q *Q) Drain(tid int) uint64 {
	q.s.StartOp(tid)
	q.s.EndOp(tid)
	q.s.StartOp(tid)
	defer q.s.EndOp(tid)
	return q.pool.Get(q.s.ReadRoot(tid, 0, &q.head)).Val
}
