package ds

// Test files are exempt: tests deliberately stage quiescent inspections of
// pool memory with no reservation.
func QuiescentPeek(q *Q) uint64 {
	return q.pool.Get(q.head.Raw()).Val
}
