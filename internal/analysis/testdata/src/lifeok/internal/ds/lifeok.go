// Package ds is the lifecycle analyzer's negative suite: the idioms the
// real data structures use — retire-then-reacquire traversal loops,
// CAS-published private nodes discarded on the failed path, deferred EndOp,
// and the guard facade's bracketed closures — must produce no diagnostics.
package ds

import (
	"stub/internal/core"
	"stub/internal/guard"
	"stub/internal/mem"
)

// helpUnlink mirrors find's marked-node cleanup: the retired handle is
// overwritten before the back edge, so the loop stays clean.
func helpUnlink(s core.Scheme, p *mem.Pool, cells []*core.Ptr, tid int, key uint64) (uint64, bool) {
	s.StartOp(tid)
	defer s.EndOp(tid)
	curr := s.ReadRoot(tid, 1, cells[0])
	for i := 1; i < len(cells); i++ {
		next := s.Read(tid, 2, cells[i])
		if next.Mark0() {
			if !s.CompareAndSwap(tid, cells[i-1], curr, next.ClearMarks()) {
				continue
			}
			s.Retire(tid, curr)
			curr = next.ClearMarks()
			continue
		}
		if n := p.Get(curr); n.Key == key {
			return n.Val, true
		}
		curr = next.ClearMarks()
	}
	return 0, false
}

// remove mirrors the unlink-then-retire path: retiring a node that was
// structure-published is the protocol's normal reclamation entry.
func remove(s core.Scheme, head *core.Ptr, tid int) bool {
	s.StartOp(tid)
	defer s.EndOp(tid)
	curr := s.ReadRoot(tid, 1, head)
	if curr.IsNil() {
		return false
	}
	next := s.Read(tid, 2, head)
	if !s.CompareAndSwap(tid, head, curr, next.ClearMarks()) {
		return false
	}
	s.Retire(tid, curr)
	return true
}

// insert mirrors the facade port of the list insert: the private node is
// published by CAS only (maybe), so the failed path's Discard of the
// still-private block is legitimate.
func insert(w *guard.Guarded, dst *core.Ptr, tid int, key uint64) bool {
	var ok bool
	w.Do(tid, func(g *guard.Guard) {
		node := g.Alloc()
		if node.IsNil() {
			return
		}
		n := g.Deref(node)
		n.Key = key
		if g.CompareAndSwap(dst, mem.Nil, node) {
			ok = true
			return
		}
		g.Discard(node)
	})
	return ok
}

// traverse mirrors the facade read path: protected loads, derefs, and a
// retire inside one Do bracket.
func traverse(w *guard.Guarded, head *core.Ptr, tid int, key uint64) (uint64, bool) {
	var val uint64
	var found bool
	w.Do(tid, func(g *guard.Guard) {
		curr := g.LoadRoot(1, head)
		for !curr.IsNil() {
			n := g.Deref(curr)
			if n.Key == key {
				val, found = n.Val, true
				return
			}
			next := g.Load(2, head)
			if next.Mark0() {
				if g.CompareAndSwap(head, curr, next.ClearMarks()) {
					g.Retire(curr)
				}
				g.Restart()
			}
			curr = next.ClearMarks()
		}
	})
	return val, found
}

// retireParam mirrors a helper that retires its argument: fine locally —
// the caller-side checks are the summaries' job.
func retireParam(s core.Scheme, tid int, h mem.Handle) {
	s.Retire(tid, h)
}

// publishThenEnd mirrors insert's success path: the new node is published
// before the bracket closes, so nothing expires.
func publishThenEnd(s core.Scheme, dst *core.Ptr, tid int, key uint64) bool {
	s.StartOp(tid)
	h := s.Alloc(tid)
	if h.IsNil() {
		s.EndOp(tid)
		return false
	}
	prev := s.ReadRoot(tid, 0, dst)
	ok := s.CompareAndSwap(tid, dst, prev, h)
	s.EndOp(tid)
	return ok
}
