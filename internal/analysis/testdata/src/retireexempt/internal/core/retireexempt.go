// Package core stands in for the reclamation substrate: packages whose path
// ends in internal/core or internal/mem may free directly — their scans free
// what they have proven unreachable.
package core

import "stub/internal/mem"

// Reclaim frees blocks a scan proved unreachable.
func Reclaim(p *mem.Pool, tid int, hs []mem.Handle) {
	for _, h := range hs {
		p.Free(tid, h)
	}
	p.FreeBatch(tid, hs)
}
