// Package ds exercises the lifecycle analyzer's flow through struct
// fields: publication by storing into a node field, and retired state
// carried by depth-1 field paths and their aliases.
package ds

import (
	"stub/internal/core"
	"stub/internal/mem"
)

// node is a linked node whose next handle lives in a plain field.
type node struct {
	val  uint64
	next mem.Handle
}

// window mirrors the findResult idiom: handles held in struct fields.
type window struct {
	prev, curr mem.Handle
}

// fieldPublish stores a fresh handle into another node's field — the block
// becomes structure-reachable — and then frees it directly.
func fieldPublish(s core.Scheme, p *mem.Pool, n *node, tid int) {
	h := s.Alloc(tid)
	n.next = h
	p.Free(tid, h) // want "Free of a handle that was published into the shared structure"
}

// fieldUseAfterRetire retires a handle held in a struct field and then
// dereferences it through the same field path.
func fieldUseAfterRetire(s core.Scheme, p *mem.Pool, head *core.Ptr, tid int) uint64 {
	s.StartOp(tid)
	defer s.EndOp(tid)
	var w window
	w.curr = s.ReadRoot(tid, 0, head)
	s.Retire(tid, w.curr)
	return p.Get(w.curr).Val // want "Pool.Get of a handle retired at line 37"
}

// fieldAlias copies the field into a local: retiring the local poisons the
// field view it aliases.
func fieldAlias(s core.Scheme, p *mem.Pool, head *core.Ptr, tid int) uint64 {
	s.StartOp(tid)
	defer s.EndOp(tid)
	var w window
	w.curr = s.ReadRoot(tid, 0, head)
	c := w.curr
	s.Retire(tid, c)
	return p.Get(w.curr).Val // want "Pool.Get of a handle retired at line 49"
}

// fieldReassign is the clean counterpart: overwriting the whole struct
// kills its field views, so the second window's curr is unrelated to the
// retired handle.
func fieldReassign(s core.Scheme, p *mem.Pool, head *core.Ptr, tid int) uint64 {
	s.StartOp(tid)
	defer s.EndOp(tid)
	var w window
	w.curr = s.ReadRoot(tid, 0, head)
	s.Retire(tid, w.curr)
	w = window{}
	w.curr = s.ReadRoot(tid, 0, head)
	return p.Get(w.curr).Val
}
