// Package atomicok accesses each word through exactly one discipline.
package atomicok

import "sync/atomic"

type counter struct {
	n     uint64 // atomic only
	plain uint64 // plain only
}

func inc(c *counter) uint64 { return atomic.AddUint64(&c.n, 1) }

func load(c *counter) uint64 { return atomic.LoadUint64(&c.n) }

func touch(c *counter) uint64 {
	c.plain++
	return c.plain
}

// scratch hands a local's address to atomic: single-threaded setup, not a
// second access path, so the plain read below is fine.
func scratch() uint64 {
	var local uint64
	atomic.StoreUint64(&local, 7)
	return local
}
