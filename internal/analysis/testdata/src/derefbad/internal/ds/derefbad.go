// Package ds exercises derefguard: shared-memory accesses outside the
// StartOp/EndOp reservation bracket.
package ds

import (
	"stub/internal/core"
	"stub/internal/mem"
)

type Q struct {
	pool *mem.Pool
	s    core.Scheme
	head core.Ptr
}

// Peek is an exported entry point with no reservation at all: every
// protected operation is flagged.
func (q *Q) Peek(tid int) uint64 {
	h := q.s.ReadRoot(tid, 0, &q.head) // want "ReadRoot outside the reservation bracket"
	return q.pool.Get(h).Val           // want "Pool.Get outside the reservation bracket"
}

// PopStale closes the bracket and then touches the pool.
func (q *Q) PopStale(tid int) uint64 {
	q.s.StartOp(tid)
	h := q.s.ReadRoot(tid, 0, &q.head)
	q.s.EndOp(tid)
	return q.pool.Get(h).Val // want "Pool.Get may follow EndOp"
}

// MaybeBracket reserves on only one path, so the accesses after the merge
// are not dominated by StartOp.
func (q *Q) MaybeBracket(tid int, guard bool) uint64 {
	if guard {
		q.s.StartOp(tid)
		defer q.s.EndOp(tid)
	}
	h := q.head.Raw()        // want "Ptr.Raw outside the reservation bracket"
	return q.pool.Get(h).Val // want "Pool.Get outside the reservation bracket"
}

// AdoptAndPeek runs a quarantine transfer and then dereferences pool memory
// anyway: the transfer's ignore directive covers the bookkeeping move, not
// reads — those still need a bracket of their own.
func (q *Q) AdoptAndPeek(victim, tid int, h mem.Handle) uint64 {
	//ibrlint:ignore quarantine: victim verified parked or dead via lease table
	core.AdoptRetired(q.s, victim, tid)
	return q.pool.Get(h).Val // want "Pool.Get outside the reservation bracket"
}
