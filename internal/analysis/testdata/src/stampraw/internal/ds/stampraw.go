// Package ds exercises epochstamp rule (a): outside the core, the raw
// two-result allocator is always a violation — nothing out here can stamp
// the birth epoch.
package ds

import (
	"stub/internal/core"
	"stub/internal/mem"
)

// Grab bypasses Scheme.Alloc, so its block is never birth-stamped.
func Grab(p *mem.Pool, tid int) mem.Handle {
	h, _ := p.Alloc(tid) // want "raw allocator Alloc bypasses birth-epoch stamping"
	return h
}

// GrabStamped allocates through the scheme, which advances the epoch clock
// and stamps the birth.
func GrabStamped(s core.Scheme, tid int) mem.Handle {
	return s.Alloc(tid)
}
