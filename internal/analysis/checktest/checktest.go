// Package checktest is a minimal analysistest replacement for the ibrlint
// analyzers. The vendored x/tools subset has no go/packages (and hence no
// analysistest), so this harness loads golden packages from
// internal/analysis/testdata/src with go/parser + go/types directly, runs an
// analyzer (and its transitive Requires) over them, and matches the reported
// diagnostics against analysistest-style expectation comments:
//
//	p.Free(tid, h) // want `direct Free bypasses reclamation`
//
// An expectation matches diagnostics on its own line. For diagnostics whose
// position IS a comment (the ibrdirective analyzer reports at the offending
// //ibrlint: comment, where no second line comment can sit), a line offset
// is allowed: `// want-1 "..."` anchors to the previous line.
//
// Stub packages under testdata/src reuse the real import-path suffixes
// (stub/internal/core, stub/internal/mem, sync/atomic), which is all the
// analyzers key on — see ibrlint.PkgIs.
//
// Each analyzer runs over every package the golden package (transitively)
// imports, in dependency order, before the golden package itself, against a
// real in-memory fact store — so fact-producing analyzers (lifecycle) see
// their cross-package summaries exactly as they would under the unitchecker
// driver. Only the golden package's diagnostics are matched.
package checktest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// srcRoot is the testdata tree, relative to the analyzer package under test
// (go test runs each test binary in its own package directory).
const srcRoot = "../testdata/src"

// Run loads the package at pkgPath (relative to testdata/src), runs every
// analyzer in analyzers over it, and matches diagnostics against the
// package's want comments. Analyzers that share golden files (retirefree and
// ibrdirective over the escape-hatch package) are passed together so every
// expectation in the file set is owned by some analyzer in the run.
func Run(t *testing.T, pkgPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	l := &loader{fset: token.NewFileSet(), root: srcRoot, pkgs: make(map[string]*pkgInfo)}
	pi, err := l.load(pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", pkgPath, err)
	}

	h := &harness{
		l:        l,
		facts:    make(map[factKey]analysis.Fact),
		pkgFacts: make(map[pkgFactKey]analysis.Fact),
		results:  make(map[resKey]any),
	}
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		// Dependency packages first (in load order, which is import-closed),
		// so object facts are in the store before the golden package runs.
		for _, dep := range l.order {
			if dep == pkgPath {
				continue
			}
			if err := h.exec(a, l.pkgs[dep], nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := h.exec(a, pi, &diags); err != nil {
			t.Fatal(err)
		}
	}

	match(t, l.fset, pi, diags)
}

type resKey struct {
	a   *analysis.Analyzer
	pkg *types.Package
}

type factKey struct {
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	t   reflect.Type
}

type harness struct {
	l         *loader
	facts     map[factKey]analysis.Fact
	pkgFacts  map[pkgFactKey]analysis.Fact
	results   map[resKey]any
	collected map[resKey]bool
}

// exec runs a (and its transitive Requires) over one package. Diagnostics
// are appended to diags when non-nil, else dropped.
func (h *harness) exec(a *analysis.Analyzer, pi *pkgInfo, diags *[]analysis.Diagnostic) error {
	key := resKey{a, pi.pkg}
	if _, done := h.results[key]; done {
		// Already ran (possibly collecting): nothing more to do.
		if diags == nil || h.collected[key] {
			return nil
		}
		// Ran earlier as a dependency without collection; diagnostics for
		// this package were dropped. Re-running would double-report facts,
		// so callers always collect the golden package last — this branch
		// exists only to fail loudly if that invariant breaks.
		return fmt.Errorf("%s: ran over %s before collection was requested", a.Name, pi.pkg.Path())
	}
	for _, req := range a.Requires {
		if err := h.exec(req, pi, nil); err != nil {
			return err
		}
	}
	resultOf := make(map[*analysis.Analyzer]any)
	for _, req := range a.Requires {
		resultOf[req] = h.results[resKey{req, pi.pkg}]
	}
	pass := h.newPass(a, pi, resultOf, func(d analysis.Diagnostic) {
		if diags != nil {
			*diags = append(*diags, d)
		}
	})
	res, err := a.Run(pass)
	if err != nil {
		return fmt.Errorf("%s over %s: %v", a.Name, pi.pkg.Path(), err)
	}
	h.results[key] = res
	if h.collected == nil {
		h.collected = make(map[resKey]bool)
	}
	h.collected[key] = diags != nil
	return nil
}

// newPass assembles an analysis.Pass by hand, with fact functions backed by
// the harness's in-memory store.
func (h *harness) newPass(a *analysis.Analyzer, pi *pkgInfo, resultOf map[*analysis.Analyzer]any, report func(analysis.Diagnostic)) *analysis.Pass {
	return &analysis.Pass{
		Analyzer:   a,
		Fset:       h.l.fset,
		Files:      pi.files,
		Pkg:        pi.pkg,
		TypesInfo:  pi.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   resultOf,
		Report:     report,
		ReadFile:   os.ReadFile,
		ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
			f, ok := h.facts[factKey{obj, reflect.TypeOf(fact)}]
			if !ok {
				return false
			}
			reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		},
		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
			h.facts[factKey{obj, reflect.TypeOf(fact)}] = fact
		},
		ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool {
			f, ok := h.pkgFacts[pkgFactKey{pkg, reflect.TypeOf(fact)}]
			if !ok {
				return false
			}
			reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		},
		ExportPackageFact: func(fact analysis.Fact) {
			h.pkgFacts[pkgFactKey{pi.pkg, reflect.TypeOf(fact)}] = fact
		},
		AllObjectFacts: func() []analysis.ObjectFact {
			var out []analysis.ObjectFact
			for k, f := range h.facts {
				out = append(out, analysis.ObjectFact{Object: k.obj, Fact: f})
			}
			return out
		},
		AllPackageFacts: func() []analysis.PackageFact {
			var out []analysis.PackageFact
			for k, f := range h.pkgFacts {
				out = append(out, analysis.PackageFact{Package: k.pkg, Fact: f})
			}
			return out
		},
	}
}

// --- package loading -------------------------------------------------------

type pkgInfo struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader parses and typechecks testdata packages, resolving imports to
// sibling directories under root. It doubles as the types.Importer, so stub
// packages can import each other (ds stubs import stub/internal/core). The
// order slice records completion order: a package's imports always precede
// it.
type loader struct {
	fset  *token.FileSet
	root  string
	pkgs  map[string]*pkgInfo
	order []string
}

func (l *loader) Import(path string) (*types.Package, error) {
	pi, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return pi.pkg, nil
}

func (l *loader) load(path string) (*pkgInfo, error) {
	if path == "unsafe" {
		return &pkgInfo{pkg: types.Unsafe}, nil
	}
	if pi, ok := l.pkgs[path]; ok {
		return pi, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("import %q: %v", path, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("import %q: no Go files in %s", path, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %q: %v", path, err)
	}
	pi := &pkgInfo{pkg: pkg, files: files, info: info}
	l.pkgs[path] = pi
	l.order = append(l.order, path)
	return pi, nil
}

// --- expectation matching --------------------------------------------------

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRE finds a want clause: the keyword, an optional line offset, and one
// or more Go-quoted regexps.
var wantRE = regexp.MustCompile(`want([+-][0-9]+)?((?:\s+"(?:[^"\\]|\\.)*")+)`)

var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func match(t *testing.T, fset *token.FileSet, pi *pkgInfo, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pi.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				line := p.Line
				if m[1] != "" {
					off, _ := strconv.Atoi(m[1])
					line += off
				}
				for _, q := range quotedRE.FindAllString(m[2], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", p.Filename, p.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", p.Filename, p.Line, pat, err)
					}
					wants = append(wants, &expectation{file: p.Filename, line: line, re: re, raw: pat})
				}
			}
		}
	}

	for _, d := range diags {
		p := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == p.Filename && w.line == p.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", p.Filename, p.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}
