// Package checktest is a minimal analysistest replacement for the ibrlint
// analyzers. The vendored x/tools subset has no go/packages (and hence no
// analysistest), so this harness loads golden packages from
// internal/analysis/testdata/src with go/parser + go/types directly, runs an
// analyzer (and its transitive Requires) over them, and matches the reported
// diagnostics against analysistest-style expectation comments:
//
//	p.Free(tid, h) // want `direct Free bypasses reclamation`
//
// An expectation matches diagnostics on its own line. For diagnostics whose
// position IS a comment (the ibrdirective analyzer reports at the offending
// //ibrlint: comment, where no second line comment can sit), a line offset
// is allowed: `// want-1 "..."` anchors to the previous line.
//
// Stub packages under testdata/src reuse the real import-path suffixes
// (stub/internal/core, stub/internal/mem, sync/atomic), which is all the
// analyzers key on — see ibrlint.PkgIs.
package checktest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// srcRoot is the testdata tree, relative to the analyzer package under test
// (go test runs each test binary in its own package directory).
const srcRoot = "../testdata/src"

// Run loads the package at pkgPath (relative to testdata/src), runs every
// analyzer in analyzers over it, and matches diagnostics against the
// package's want comments. Analyzers that share golden files (retirefree and
// ibrdirective over the escape-hatch package) are passed together so every
// expectation in the file set is owned by some analyzer in the run.
func Run(t *testing.T, pkgPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	l := &loader{fset: token.NewFileSet(), root: srcRoot, pkgs: make(map[string]*pkgInfo)}
	pi, err := l.load(pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", pkgPath, err)
	}

	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]any)
	var exec func(a *analysis.Analyzer, collect bool) error
	exec = func(a *analysis.Analyzer, collect bool) error {
		if _, done := results[a]; done {
			return nil
		}
		for _, req := range a.Requires {
			if err := exec(req, false); err != nil {
				return err
			}
		}
		pass := newPass(a, l.fset, pi, results, func(d analysis.Diagnostic) {
			if collect {
				diags = append(diags, d)
			}
		})
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %v", a.Name, err)
		}
		results[a] = res
		return nil
	}
	for _, a := range analyzers {
		if err := exec(a, true); err != nil {
			t.Fatal(err)
		}
	}

	match(t, l.fset, pi, diags)
}

// newPass assembles an analysis.Pass by hand. Fact functions are inert: the
// ibrlint analyzers declare no facts, and ctrlflow merely loses cross-package
// noReturn precision, which the golden packages do not rely on.
func newPass(a *analysis.Analyzer, fset *token.FileSet, pi *pkgInfo, results map[*analysis.Analyzer]any, report func(analysis.Diagnostic)) *analysis.Pass {
	return &analysis.Pass{
		Analyzer:          a,
		Fset:              fset,
		Files:             pi.files,
		Pkg:               pi.pkg,
		TypesInfo:         pi.info,
		TypesSizes:        types.SizesFor("gc", "amd64"),
		ResultOf:          results,
		Report:            report,
		ReadFile:          os.ReadFile,
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
		ExportObjectFact:  func(types.Object, analysis.Fact) {},
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportPackageFact: func(analysis.Fact) {},
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
	}
}

// --- package loading -------------------------------------------------------

type pkgInfo struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader parses and typechecks testdata packages, resolving imports to
// sibling directories under root. It doubles as the types.Importer, so stub
// packages can import each other (ds stubs import stub/internal/core).
type loader struct {
	fset *token.FileSet
	root string
	pkgs map[string]*pkgInfo
}

func (l *loader) Import(path string) (*types.Package, error) {
	pi, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return pi.pkg, nil
}

func (l *loader) load(path string) (*pkgInfo, error) {
	if path == "unsafe" {
		return &pkgInfo{pkg: types.Unsafe}, nil
	}
	if pi, ok := l.pkgs[path]; ok {
		return pi, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("import %q: %v", path, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("import %q: no Go files in %s", path, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %q: %v", path, err)
	}
	pi := &pkgInfo{pkg: pkg, files: files, info: info}
	l.pkgs[path] = pi
	return pi, nil
}

// --- expectation matching --------------------------------------------------

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRE finds a want clause: the keyword, an optional line offset, and one
// or more Go-quoted regexps.
var wantRE = regexp.MustCompile(`want([+-][0-9]+)?((?:\s+"(?:[^"\\]|\\.)*")+)`)

var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func match(t *testing.T, fset *token.FileSet, pi *pkgInfo, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pi.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				line := p.Line
				if m[1] != "" {
					off, _ := strconv.Atoi(m[1])
					line += off
				}
				for _, q := range quotedRE.FindAllString(m[2], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", p.Filename, p.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", p.Filename, p.Line, pat, err)
					}
					wants = append(wants, &expectation{file: p.Filename, line: line, re: re, raw: pat})
				}
			}
		}
	}

	for _, d := range diags {
		p := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == p.Filename && w.line == p.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", p.Filename, p.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}
