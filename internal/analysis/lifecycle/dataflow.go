package lifecycle

import (
	"fmt"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/cfg"

	"ibr/internal/analysis/ibrlint"
)

// Typestate flag bits, per tracked variable. This is a may-analysis: a set
// bit means the property holds on some path reaching the program point.
const (
	fTracked  uint8 = 1 << iota // holds a tracked handle value
	fFromRead                   // value came from a protected read; its protection ends at EndOp
	fPub                        // possibly published (CAS new-value, escape)
	fPubDef                     // definitely published (Write, node-field store)
	fRetired                    // retired on some path
	fExpired                    // read-origin value outlived its op's plain EndOp
	// fFresh marks a variable that no longer holds the value it entered the
	// function with: effects on it do not belong to the parameter summary.
	fFresh
)

type evKind int

const (
	evAssign  evKind = iota // pairs of dst <- src / gen / kill
	evRetire                // src handed to Retire
	evFree                  // src freed directly (Free / Discard)
	evPublish               // src stored into a shared pointer (def: definitely)
	evUse                   // src dereferenced (Pool.Get / Guard.Deref)
	evEscape                // src escapes (return, composite, append, send)
	evExpose                // src passed to an opaque visitor callback
	evEndOp                 // plain EndOp: unpublished read handles expire
	evCall                  // summarized call: fn's effects apply to args
)

type assignPair struct {
	dst, src int // var indices; src == -1 means kill
	gen      bool
	genFlags uint8
}

type event struct {
	kind  evKind
	src   int
	def   bool
	what  string
	pos   token.Pos
	pairs []assignPair
	fn    *types.Func
	args  []int
}

// absState is the dataflow fact: per-variable flags plus a symmetric
// may-alias bitset (bit j of alias[i] means i and j may hold the same
// handle). Assignment copies flags and joins alias sets; assignment TO a
// variable divorces it from its old aliases, which is what keeps the
// retire-then-reacquire loop idiom clean.
type absState struct {
	flags []uint8
	alias []uint64
}

func newState(n int) *absState {
	return &absState{flags: make([]uint8, n), alias: make([]uint64, n)}
}

func (s *absState) clone() *absState {
	c := newState(len(s.flags))
	copy(c.flags, s.flags)
	copy(c.alias, s.alias)
	return c
}

// join ORs o into s (may-analysis), reporting whether s changed.
func (s *absState) join(o *absState) bool {
	changed := false
	for i := range s.flags {
		if f := s.flags[i] | o.flags[i]; f != s.flags[i] {
			s.flags[i] = f
			changed = true
		}
		if a := s.alias[i] | o.alias[i]; a != s.alias[i] {
			s.alias[i] = a
			changed = true
		}
	}
	return changed
}

func bit(v int) uint64 { return 1 << uint(v) }

// kill divorces v from its aliases and resets it to untracked-but-fresh.
func (s *absState) kill(v int) {
	for u := range s.alias {
		s.alias[u] &^= bit(v)
	}
	s.alias[v] = 0
	s.flags[v] = fFresh
}

// markSet returns v plus everything it may alias.
func (s *absState) markSet(v int) uint64 { return s.alias[v] | bit(v) }

func forEach(set uint64, f func(u int)) {
	for u := 0; set != 0; u++ {
		if set&1 != 0 {
			f(u)
		}
		set >>= 1
	}
}

// reportCtx is present only on the final walk over the converged states:
// it collects the parameter summary and (inside internal/ds) diagnostics.
type reportCtx struct {
	sum      *Summary
	rep      *ibrlint.Reporter
	reported map[string]bool
}

func (fa *funcAnalysis) reportf(ctx *reportCtx, pos token.Pos, format string, args ...any) {
	if ctx.rep == nil {
		return
	}
	key := fmt.Sprintf("%d:%s", pos, format)
	if ctx.reported[key] {
		return
	}
	ctx.reported[key] = true
	ctx.rep.Reportf(pos, format, args...)
}

// noteEffect records eff against every unrebound parameter in set.
func (fa *funcAnalysis) noteEffect(ctx *reportCtx, st *absState, set uint64, eff ParamEffect) {
	forEach(set, func(u int) {
		if pi := fa.paramIdx[u]; pi >= 0 && st.flags[u]&fFresh == 0 {
			ctx.sum.Params[pi] |= eff
		}
	})
}

func (fa *funcAnalysis) line(pos token.Pos) int {
	return fa.pass.Fset.Position(pos).Line
}

// notePos records the source-earliest position that retired (or expired) v,
// for diagnostics. Earliest-by-position rather than first-seen: the worklist
// visits blocks in an order unrelated to source order, and diagnostics must
// not anchor "retired at line N" to the later of two retires.
func notePos(slot []token.Pos, v int, pos token.Pos) {
	if slot[v] == token.NoPos || pos < slot[v] {
		slot[v] = pos
	}
}

// apply advances st across one event. With ctx == nil this is the pure
// transfer function used during the fixpoint; with ctx it also emits
// diagnostics and accumulates the parameter summary.
func (fa *funcAnalysis) apply(st *absState, ev *event, ctx *reportCtx) {
	switch ev.kind {
	case evAssign:
		type snap struct {
			fl  uint8
			set uint64
		}
		snaps := make([]snap, len(ev.pairs))
		for i, p := range ev.pairs {
			if p.src >= 0 {
				snaps[i] = snap{st.flags[p.src], st.markSet(p.src)}
			}
		}
		for i, p := range ev.pairs {
			wasSelf := p.src >= 0 && snaps[i].set&bit(p.dst) != 0
			st.kill(p.dst)
			switch {
			case p.gen:
				st.flags[p.dst] = p.genFlags | fFresh
			case p.src >= 0:
				fl := snaps[i].fl
				if !wasSelf {
					fl |= fFresh
				}
				st.flags[p.dst] = fl
				set := snaps[i].set &^ bit(p.dst)
				st.alias[p.dst] = set
				forEach(set, func(u int) { st.alias[u] |= bit(p.dst) })
			}
		}

	case evRetire, evFree:
		v := ev.src
		set := st.markSet(v)
		if ctx != nil {
			if st.flags[v]&fRetired != 0 {
				if ev.kind == evRetire {
					fa.reportf(ctx, ev.pos, "%s of a handle already retired at line %d: the block would enter the retire list twice (double retire)", ev.what, fa.line(fa.retireAt[v]))
				} else {
					fa.reportf(ctx, ev.pos, "%s of a handle already retired at line %d: double reclamation", ev.what, fa.line(fa.retireAt[v]))
				}
			} else if ev.kind == evFree && st.flags[v]&fPubDef != 0 {
				fa.reportf(ctx, ev.pos, "%s of a handle that was published into the shared structure: another thread may still reach it; Retire it instead", ev.what)
			}
			eff := EffRetire
			if ev.kind == evFree {
				eff = EffFree
			}
			fa.noteEffect(ctx, st, set, eff)
		}
		forEach(set, func(u int) {
			st.flags[u] |= fRetired | fTracked
			notePos(fa.retireAt, u, ev.pos)
		})

	case evPublish:
		v := ev.src
		set := st.markSet(v)
		if ctx != nil {
			if st.flags[v]&fRetired != 0 {
				fa.reportf(ctx, ev.pos, "%s publishes a handle retired at line %d: readers could traverse into a reclaimed block (use-after-retire)", ev.what, fa.line(fa.retireAt[v]))
			}
			fa.noteEffect(ctx, st, set, EffPublish)
		}
		fl := fPub
		if ev.def {
			fl |= fPubDef
		}
		forEach(set, func(u int) { st.flags[u] |= fl })

	case evUse:
		v := ev.src
		if ctx != nil {
			if st.flags[v]&fRetired != 0 {
				fa.reportf(ctx, ev.pos, "%s of a handle retired at line %d: the block may already be reclaimed (use-after-retire)", ev.what, fa.line(fa.retireAt[v]))
			} else if st.flags[v]&fExpired != 0 {
				fa.reportf(ctx, ev.pos, "%s of a handle read inside an op whose EndOp already ran at line %d: the reservation no longer protects it (publish it or use it before EndOp)", ev.what, fa.line(fa.endAt[v]))
			}
			fa.noteEffect(ctx, st, st.markSet(v), EffDeref)
		}

	case evEscape:
		v := ev.src
		set := st.markSet(v)
		if ctx != nil {
			if st.flags[v]&fRetired != 0 {
				fa.reportf(ctx, ev.pos, "handle retired at line %d is %s: the receiver may dereference a reclaimed block (use-after-retire)", fa.line(fa.retireAt[v]), ev.what)
			} else if st.flags[v]&fExpired != 0 {
				fa.reportf(ctx, ev.pos, "handle read inside this op is %s after EndOp at line %d: it is no longer protected", ev.what, fa.line(fa.endAt[v]))
			}
			fa.noteEffect(ctx, st, set, EffEscape)
		}
		forEach(set, func(u int) { st.flags[u] |= fPub })

	case evExpose:
		// The range-callback idiom: the callee is caller-supplied code the
		// analyzer cannot see, so a handle argument may be retained past
		// the reservation bracket. Exposing a retired or expired handle is
		// the usual use-after-retire escape; exposing a live protected-read
		// handle violates the ds.Ranger contract outright — the visitor
		// must receive values, because only values cannot outlive the
		// StartOp/EndOp bracket that protects the scan.
		v := ev.src
		set := st.markSet(v)
		if ctx != nil {
			if st.flags[v]&fRetired != 0 {
				fa.reportf(ctx, ev.pos, "handle retired at line %d is %s: the callback may dereference a reclaimed block (use-after-retire)", fa.line(fa.retireAt[v]), ev.what)
			} else if st.flags[v]&fExpired != 0 {
				fa.reportf(ctx, ev.pos, "handle read inside this op is %s after EndOp at line %d: it is no longer protected", ev.what, fa.line(fa.endAt[v]))
			} else if st.flags[v]&fFromRead != 0 && st.flags[v]&fPubDef == 0 {
				fa.reportf(ctx, ev.pos, "protected read handle is %s: the callback can retain it past the StartOp/EndOp bracket — range visitors receive values, not handles", ev.what)
			}
			fa.noteEffect(ctx, st, set, EffEscape)
		}
		forEach(set, func(u int) { st.flags[u] |= fPub })

	case evEndOp:
		for v := range st.flags {
			fl := st.flags[v]
			if fl&fTracked != 0 && fl&fFromRead != 0 && fl&(fPub|fRetired) == 0 {
				st.flags[v] |= fExpired
				notePos(fa.endAt, v, ev.pos)
			}
		}

	case evCall:
		sum := fa.lookupSummary(ev.fn)
		if sum == nil {
			return
		}
		for i, v := range ev.args {
			if v < 0 || i >= len(sum.Params) {
				continue
			}
			eff := sum.Params[i]
			if eff == 0 {
				continue
			}
			set := st.markSet(v)
			if ctx != nil {
				name := ev.fn.Name()
				if st.flags[v]&fRetired != 0 {
					switch {
					case eff&(EffRetire|EffFree) != 0:
						fa.reportf(ctx, ev.pos, "handle already retired at line %d is retired again by %s (double retire)", fa.line(fa.retireAt[v]), name)
					case eff&(EffDeref) != 0:
						fa.reportf(ctx, ev.pos, "handle retired at line %d is passed to %s, which dereferences it: the block may already be reclaimed (use-after-retire)", fa.line(fa.retireAt[v]), name)
					case eff&(EffPublish|EffEscape) != 0:
						fa.reportf(ctx, ev.pos, "handle retired at line %d is passed to %s, which publishes it (use-after-retire)", fa.line(fa.retireAt[v]), name)
					}
				} else if st.flags[v]&fExpired != 0 && eff&EffDeref != 0 {
					fa.reportf(ctx, ev.pos, "handle read inside an op whose EndOp already ran at line %d is passed to %s, which dereferences it without protection", fa.line(fa.endAt[v]), name)
				}
				fa.noteEffect(ctx, st, set, eff)
			}
			if eff&(EffRetire|EffFree) != 0 {
				forEach(set, func(u int) {
					st.flags[u] |= fRetired | fTracked
					notePos(fa.retireAt, u, ev.pos)
				})
			}
			if eff&(EffPublish|EffEscape) != 0 {
				forEach(set, func(u int) { st.flags[u] |= fPub })
			}
		}
	}
}

// analyze runs the worklist fixpoint over the function's CFG and then a
// final reporting/summarizing walk over the converged block-entry states.
// rep is nil outside internal/ds (summaries only).
func (fa *funcAnalysis) analyze(rep *ibrlint.Reporter) *Summary {
	blocks := fa.g.Blocks
	index := make(map[*cfg.Block]int, len(blocks))
	for i, b := range blocks {
		index[b] = i
	}

	n := len(fa.keys)
	in := make([]*absState, len(blocks))
	seen := make([]bool, len(blocks))
	entry := newState(n)
	for v := range fa.keys {
		if fa.paramIdx[v] >= 0 {
			// Parameters enter tracked and published: the caller still
			// holds the value, so it neither expires at EndOp nor trips
			// the escape checks.
			entry.flags[v] = fTracked | fPub
		}
	}
	in[0] = entry
	seen[0] = true
	work := []int{0}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		out := in[i].clone()
		for e := range fa.events[i] {
			fa.apply(out, &fa.events[i][e], nil)
		}
		for _, succ := range blocks[i].Succs {
			j := index[succ]
			if !seen[j] {
				in[j] = out.clone()
				seen[j] = true
				work = append(work, j)
			} else if in[j].join(out) {
				work = append(work, j)
			}
		}
	}

	ctx := &reportCtx{
		sum:      &Summary{Params: make([]ParamEffect, fa.nparams)},
		rep:      rep,
		reported: make(map[string]bool),
	}
	for i := range blocks {
		if !seen[i] {
			continue
		}
		st := in[i].clone()
		for e := range fa.events[i] {
			fa.apply(st, &fa.events[i][e], ctx)
		}
	}
	return ctx.sum
}
