// Package lifecycle assigns every mem.Handle value a typestate — local,
// published, retired, expired — and flows it along CFG paths, through
// struct fields, and across function boundaries (via go/analysis facts) to
// catch protocol violations that the per-call-site analyzers cannot see:
//
//   - any read, Retire, publish, or escape of a handle after its Retire on
//     some path is reported, with the retiring statement in the diagnostic;
//   - a handle obtained from a protected read must not outlive the plain
//     EndOp of the op that fetched it unless it was published first (the
//     protected-window assumption the reclamation scan relies on);
//   - a handle that was definitely published must not be freed directly.
//
// The state machine:
//
//	          Alloc                    Read/Load
//	            │                          │ (enters at published: the
//	            ▼                          ▼  value is structure-reachable)
//	         ┌─────┐   Write/CAS/store ┌─────────┐
//	         │local│ ────────────────▶ │published│
//	         └─────┘                   └─────────┘
//	            │         Retire            │ Retire (after unlink)
//	            ▼                           ▼
//	         ┌───────┐    plain EndOp   ┌───────┐
//	         │retired│ ◀── (unpublished │expired│  (read-origin only)
//	         └───────┘      reads only) └───────┘
//
// Retired and expired are sink states: any further dereference, publish, or
// escape is a diagnostic. Aliases created by assignment share state, and
// assignment to a variable divorces it from its old aliases, so loops that
// retire-then-reacquire (the Harris–Michael unlink idiom) stay clean.
//
// The analyzer trusts the internal/guard facade: Guard.Load, Publish,
// Retire, Deref, and Discard are protocol events exactly like the raw
// Scheme calls, and the facade's own implementation is proven by the other
// analyzers (endop brackets Do, retirefree audits Discard's Free).
// Diagnostics are reported only inside internal/ds packages; every package
// that touches the protocol gets parameter-effect summaries so the ds-side
// reports see through helpers.
package lifecycle

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"

	"ibr/internal/analysis/ibrlint"
)

var Analyzer = &analysis.Analyzer{
	Name:      "lifecycle",
	Doc:       "track handle typestates (local/published/retired/expired) across paths, fields, and calls",
	Requires:  []*analysis.Analyzer{ctrlflow.Analyzer, ibrlint.Directives},
	FactTypes: []analysis.Fact{(*Summary)(nil)},
	Run:       run,
}

// maxVars caps the tracked handle variables per function: the alias sets
// are uint64 bitmasks. Functions juggling more than 64 distinct handles do
// not exist in this tree; overflow variables simply go untracked.
const maxVars = 64

// maxFixpointRounds bounds the intra-package summary iteration. Effects
// only accumulate, so the fixpoint terminates long before this; the cap is
// a safety net against a transfer-function bug looping forever.
const maxFixpointRounds = 20

// Handle methods that return the receiver's handle with bits adjusted: the
// result denotes the same block, so state flows through them.
var preserveMethods = []string{
	"Addr", "ClearMarks", "ClearMark0", "ClearMark1",
	"WithMark0", "WithMark1", "WithMarks", "WithEpoch",
}

func run(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	// The protocol substrate and the facade implement the life cycle; they
	// are proven by the other analyzers, not typestate-checked.
	if ibrlint.PkgInProtocol(path) || ibrlint.PkgIs(trimTest(path), ibrlint.GuardPkg) {
		return nil, nil
	}
	if !touchesProtocol(pass.Pkg) {
		return nil, nil // cheap early-out: stdlib and unrelated packages
	}

	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	type entry struct {
		fn *types.Func
		fa *funcAnalysis
	}
	var entries []entry
	sums := make(map[*types.Func]*Summary)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g := cfgs.FuncDecl(fd)
			if g == nil {
				continue
			}
			fa := prepare(pass, sums, g, fd.Body, fn.Signature(), fd.Name.IsExported(),
				ibrlint.FuncLitBindings(pass.TypesInfo, fd.Body))
			if fa == nil {
				continue // no tracked handles in this function
			}
			entries = append(entries, entry{fn, fa})
		}
	}

	// Intra-package fixpoint: helper summaries feed their callers' transfer
	// functions, so chains like remove → unlink → Retire converge.
	for round := 0; round < maxFixpointRounds; round++ {
		changed := false
		for _, e := range entries {
			s := e.fa.analyze(nil)
			if !sumEqual(sums[e.fn], s) {
				sums[e.fn] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, e := range entries {
		if s := sums[e.fn]; s != nil && s.nonzero() {
			pass.ExportObjectFact(e.fn, s)
		}
	}

	// Diagnostics are scoped to the data-structure layer. Test files are
	// exempt like everywhere else in the suite: tests stage quiescent and
	// deliberately broken states.
	if !ibrlint.PkgIs(path, "internal/ds") {
		return nil, nil
	}
	rep := ibrlint.NewReporter(pass)
	for _, e := range entries {
		if ibrlint.TestFile(pass, e.fa.body.Pos()) {
			continue
		}
		e.fa.analyze(rep)
	}
	// Closures (the Guarded.Do bodies after the facade port) are analyzed
	// standalone: their captured environment enters untracked, which is
	// sound for reporting. A closure inherits its enclosing declaration's
	// visitor-exposure context: exported-ness and the set of locally bound
	// closures (a captured recursive walk is still visible code).
	for _, f := range pass.Files {
		if ibrlint.TestFile(pass, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			exposed := true
			root := ast.Node(d)
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fd.Body == nil {
					continue
				}
				exposed = fd.Name.IsExported()
				root = fd.Body
			}
			ast.Inspect(root, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				g := cfgs.FuncLit(lit)
				if g == nil {
					return true
				}
				sig, ok := pass.TypesInfo.TypeOf(lit).(*types.Signature)
				if !ok {
					return true
				}
				// Bindings from the enclosing declaration, so the captured
				// recursive-walk idiom stays exempt.
				locals := ibrlint.FuncLitBindings(pass.TypesInfo, root)
				if fa := prepare(pass, sums, g, lit.Body, sig, exposed, locals); fa != nil {
					fa.analyze(rep)
				}
				return true
			})
		}
	}
	return nil, nil
}

func trimTest(path string) string {
	if len(path) > 5 && path[len(path)-5:] == "_test" {
		return path[: len(path)-5]
	}
	return path
}

// touchesProtocol reports whether pkg directly imports a protocol package.
// Everything the analyzer can say about a package that does not is vacuous,
// and with facts declared the driver runs us over every dependency
// (including the standard library), so the early-out matters.
func touchesProtocol(pkg *types.Package) bool {
	for _, imp := range pkg.Imports() {
		p := imp.Path()
		if ibrlint.PkgIs(p, ibrlint.CorePkg) || ibrlint.PkgIs(p, ibrlint.MemPkg) || ibrlint.PkgIs(p, ibrlint.GuardPkg) {
			return true
		}
	}
	return false
}

// --- per-function preparation ----------------------------------------------

// varKey names a tracked storage location: a handle-typed local/parameter
// (field == "") or a depth-1 handle field path base.field.
type varKey struct {
	obj   types.Object
	field string
}

type funcAnalysis struct {
	pass *analysis.Pass
	sums map[*types.Func]*Summary // package-local summaries (shared, fixpointed)
	g    *cfg.CFG
	body *ast.BlockStmt

	vars     map[varKey]int
	keys     []varKey
	paramIdx []int                  // var index -> signature param position, or -1
	deps     map[types.Object][]int // base object -> its tracked field vars
	excluded map[types.Object]bool
	exKeys   map[varKey]bool

	events  [][]event // per CFG block, in source order
	nparams int

	// exposed marks a body whose callbacks come from outside the package
	// surface (an exported function, or a closure inside one): handles
	// crossing into an opaque visitor call there are escape events. locals
	// holds the variables bound to function literals, whose calls invoke
	// visible code and are exempt.
	exposed bool
	locals  map[types.Object]bool

	// First-retire / first-expiry positions per var, for diagnostics.
	retireAt, endAt []token.Pos

	factCache map[*types.Func]*Summary // imported cross-package summaries
}

// prepare collects the tracked variables and per-block events for one
// function body. It returns nil when the body tracks no handles at all.
func prepare(pass *analysis.Pass, sums map[*types.Func]*Summary, g *cfg.CFG, body *ast.BlockStmt, sig *types.Signature, exposed bool, locals map[types.Object]bool) *funcAnalysis {
	fa := &funcAnalysis{
		pass:      pass,
		sums:      sums,
		g:         g,
		body:      body,
		vars:      make(map[varKey]int),
		deps:      make(map[types.Object][]int),
		excluded:  make(map[types.Object]bool),
		exKeys:    make(map[varKey]bool),
		factCache: make(map[*types.Func]*Summary),
		exposed:   exposed,
		locals:    locals,
	}
	fa.collectExclusions(body)
	fa.collectVars(body)
	if len(fa.keys) == 0 {
		return nil
	}
	fa.paramIdx = make([]int, len(fa.keys))
	for i := range fa.paramIdx {
		fa.paramIdx[i] = -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if v, ok := fa.vars[varKey{sig.Params().At(i), ""}]; ok {
			fa.paramIdx[v] = i
		}
	}
	fa.retireAt = make([]token.Pos, len(fa.keys))
	fa.endAt = make([]token.Pos, len(fa.keys))
	fa.nparams = sig.Params().Len()
	fa.events = make([][]event, len(g.Blocks))
	for i, b := range g.Blocks {
		for _, n := range b.Nodes {
			fa.walk(n, &fa.events[i])
		}
	}
	return fa
}

// collectExclusions removes variables the flow model cannot speak for:
// address-taken handles, range-bound handles (rebound per iteration in the
// loop head, which the CFG represents only once), and outer handles
// assigned inside nested closures.
func (fa *funcAnalysis) collectExclusions(body ast.Node) {
	var inLit func(n ast.Node)
	inLit = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, l := range n.Lhs {
					fa.excludeTarget(l)
				}
			case *ast.RangeStmt:
				fa.excludeTarget(n.Key)
				fa.excludeTarget(n.Value)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					fa.excludeTarget(n.X)
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inLit(n.Body)
			return false
		case *ast.RangeStmt:
			fa.excludeTarget(n.Key)
			fa.excludeTarget(n.Value)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				fa.excludeTarget(n.X)
			}
		}
		return true
	})
}

func (fa *funcAnalysis) excludeTarget(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := fa.objOf(e); obj != nil && ibrlint.IsHandleType(obj.Type()) {
			fa.excluded[obj] = true
		}
	case *ast.SelectorExpr:
		if key, ok := fa.rawFieldKey(e); ok {
			fa.exKeys[key] = true
		}
	}
}

// collectVars indexes every handle-typed local, parameter, and depth-1
// field path used in the body (closures excluded — they are analyzed on
// their own).
func (fa *funcAnalysis) collectVars(body ast.Node) {
	add := func(key varKey) {
		if _, ok := fa.vars[key]; ok || len(fa.keys) >= maxVars {
			return
		}
		fa.vars[key] = len(fa.keys)
		fa.keys = append(fa.keys, key)
		if key.field != "" {
			fa.deps[key.obj] = append(fa.deps[key.obj], fa.vars[key])
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			obj := fa.objOf(n)
			if fa.trackableVar(obj) && ibrlint.IsHandleType(obj.Type()) {
				add(varKey{obj, ""})
			}
		case *ast.SelectorExpr:
			if key, ok := fa.fieldKey(n); ok {
				add(key)
			}
		}
		return true
	})
}

// trackableVar: a non-field, function-local (or parameter) variable that
// was not excluded. Package-level handles are shared state the
// function-local flow cannot own.
func (fa *funcAnalysis) trackableVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || fa.excluded[obj] {
		return false
	}
	return v.Parent() == nil || v.Parent() != fa.pass.Pkg.Scope()
}

func (fa *funcAnalysis) objOf(id *ast.Ident) types.Object {
	if obj := fa.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return fa.pass.TypesInfo.Defs[id]
}

// rawFieldKey resolves sel to (base object, field name) when sel is a
// depth-1 field selection off a plain variable, without type filtering.
func (fa *funcAnalysis) rawFieldKey(sel *ast.SelectorExpr) (varKey, bool) {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return varKey{}, false
	}
	obj := fa.objOf(id)
	if !fa.trackableVar(obj) {
		return varKey{}, false
	}
	f, ok := fa.objOf(sel.Sel).(*types.Var)
	if !ok || !f.IsField() {
		return varKey{}, false
	}
	return varKey{obj, sel.Sel.Name}, true
}

// fieldKey is rawFieldKey restricted to handle-typed fields that were not
// excluded by address-taking.
func (fa *funcAnalysis) fieldKey(sel *ast.SelectorExpr) (varKey, bool) {
	key, ok := fa.rawFieldKey(sel)
	if !ok || fa.exKeys[key] {
		return varKey{}, false
	}
	if t := fa.pass.TypesInfo.TypeOf(sel); t == nil || !ibrlint.IsHandleType(t) {
		return varKey{}, false
	}
	return key, true
}

func (fa *funcAnalysis) varIndex(key varKey) int {
	if v, ok := fa.vars[key]; ok {
		return v
	}
	return -1
}

func (fa *funcAnalysis) isParam(v int) bool { return fa.paramIdx[v] >= 0 }

// resolve maps an expression to the tracked variable holding its value, or
// -1. Handle-preserving methods (ClearMarks and friends) pass through to
// their receiver: the result names the same block.
func (fa *funcAnalysis) resolve(e ast.Expr) int {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if obj := fa.objOf(e); obj != nil {
			return fa.varIndex(varKey{obj, ""})
		}
	case *ast.SelectorExpr:
		if key, ok := fa.fieldKey(e); ok {
			return fa.varIndex(key)
		}
	case *ast.CallExpr:
		if ibrlint.MemCall(fa.pass.TypesInfo, e, preserveMethods...) != nil {
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
				return fa.resolve(sel.X)
			}
		}
	}
	return -1
}

// genCall classifies calls that mint a tracked handle. Protected reads
// re-enter the flow at published-origin (fFromRead): the value is reachable
// from the structure and its protection dies with the op's EndOp.
func (fa *funcAnalysis) genCall(call *ast.CallExpr) (bool, uint8) {
	info := fa.pass.TypesInfo
	if ibrlint.CoreCall(info, call, "Read", "ReadRoot", "Raw", "FetchOrMarks") != nil ||
		ibrlint.GuardCall(info, call, "Load", "LoadRoot") != nil {
		return true, fTracked | fFromRead
	}
	if fn := ibrlint.CoreCall(info, call, "Alloc"); fn != nil && fn.Signature().Results().Len() == 1 {
		return true, fTracked
	}
	if ibrlint.GuardCall(info, call, "Alloc") != nil {
		return true, fTracked
	}
	if ibrlint.AllocCall(info, call) {
		return true, fTracked // raw allocator handle (epochstamp audits it)
	}
	return false, 0
}

// --- event extraction ------------------------------------------------------

// walk appends the life-cycle events of node n (one CFG block node) to evs
// in evaluation order. Closures, defers, and go statements are skipped: a
// deferred call runs at return, a closure is analyzed standalone.
func (fa *funcAnalysis) walk(n ast.Node, evs *[]event) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.AssignStmt:
			fa.assign(n, evs)
			return false
		case *ast.ValueSpec:
			fa.valueSpec(n, evs)
			return false
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				fa.walk(r, evs)
				fa.escapeCheck(r, "returned", evs)
			}
			return false
		case *ast.SendStmt:
			fa.walk(n.Chan, evs)
			fa.walk(n.Value, evs)
			fa.escapeCheck(n.Value, "sent on a channel", evs)
			return false
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				fa.walk(v, evs)
				fa.escapeCheck(v, "stored in a composite literal", evs)
			}
			return false
		case *ast.CallExpr:
			fa.callEvents(n, evs)
			return false
		}
		return true
	})
}

func (fa *funcAnalysis) escapeCheck(e ast.Expr, how string, evs *[]event) {
	if v := fa.resolve(e); v >= 0 {
		*evs = append(*evs, event{kind: evEscape, src: v, what: how, pos: e.Pos()})
	}
}

// assign lowers an assignment into publish/copy/kill events. The RHS is
// walked first (evaluation order), all sources are snapshotted before any
// destination changes (parallel-assignment semantics), and destinations
// that are not tracked but carry tracked field views (struct reassignment)
// kill — or field-wise copy — those views.
func (fa *funcAnalysis) assign(as *ast.AssignStmt, evs *[]event) {
	for _, r := range as.Rhs {
		fa.walk(r, evs)
	}
	for _, l := range as.Lhs {
		switch l := l.(type) {
		case *ast.Ident:
		case *ast.SelectorExpr:
			fa.walk(l.X, evs)
		default:
			fa.walk(l, evs)
		}
	}

	// Tuple assignment from one call: h, ok := pool.Alloc(tid).
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		var pairs []assignPair
		gen, genFl := false, uint8(0)
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			gen, genFl = fa.genCall(call)
		}
		for i, l := range as.Lhs {
			for _, p := range fa.lowerTarget(l, -1, i == 0 && gen, genFl, evs) {
				pairs = append(pairs, p)
			}
		}
		if len(pairs) > 0 {
			*evs = append(*evs, event{kind: evAssign, pairs: pairs, pos: as.Pos()})
		}
		return
	}

	var pairs []assignPair
	for i, l := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		r := ast.Unparen(as.Rhs[i])
		src := -1
		gen, genFl := false, uint8(0)
		if call, ok := r.(*ast.CallExpr); ok {
			gen, genFl = fa.genCall(call)
		}
		if !gen {
			src = fa.resolve(r)
		}
		// A tracked handle stored through a pointer is published: the
		// block becomes reachable from wherever that pointer leads.
		if src >= 0 {
			if sel, ok := l.(*ast.SelectorExpr); ok {
				if t := fa.pass.TypesInfo.TypeOf(sel.X); t != nil {
					if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
						*evs = append(*evs, event{kind: evPublish, src: src, def: true, what: "a node-field store", pos: l.Pos()})
					}
				}
			} else if _, ok := l.(*ast.IndexExpr); ok {
				*evs = append(*evs, event{kind: evPublish, src: src, what: "an element store", pos: l.Pos()})
			} else if _, ok := l.(*ast.StarExpr); ok {
				*evs = append(*evs, event{kind: evPublish, src: src, def: true, what: "a pointer store", pos: l.Pos()})
			}
		}
		// Struct-to-struct copy: carry handle field views across.
		if lid, ok := l.(*ast.Ident); ok && fa.varIndex(varKey{fa.objOf(lid), ""}) < 0 {
			if lobj := fa.objOf(lid); lobj != nil && len(fa.deps[lobj]) > 0 {
				rid, rok := r.(*ast.Ident)
				var robj types.Object
				if rok {
					robj = fa.objOf(rid)
				}
				for _, d := range fa.deps[lobj] {
					fsrc := -1
					if robj != nil {
						fsrc = fa.varIndex(varKey{robj, fa.keys[d].field})
					}
					pairs = append(pairs, assignPair{dst: d, src: fsrc})
				}
				continue
			}
		}
		pairs = append(pairs, fa.lowerTarget(l, src, gen, genFl, evs)...)
	}
	if len(pairs) > 0 {
		*evs = append(*evs, event{kind: evAssign, pairs: pairs, pos: as.Pos()})
	}
}

// lowerTarget maps one assignment destination to its pairs (empty when the
// destination is untracked and carries no field views).
func (fa *funcAnalysis) lowerTarget(l ast.Expr, src int, gen bool, genFl uint8, evs *[]event) []assignPair {
	dst := -1
	switch l := ast.Unparen(l).(type) {
	case *ast.Ident:
		if obj := fa.objOf(l); obj != nil {
			dst = fa.varIndex(varKey{obj, ""})
			if dst < 0 && len(fa.deps[obj]) > 0 {
				var pairs []assignPair
				for _, d := range fa.deps[obj] {
					pairs = append(pairs, assignPair{dst: d, src: -1})
				}
				return pairs
			}
		}
	case *ast.SelectorExpr:
		if key, ok := fa.fieldKey(l); ok {
			dst = fa.varIndex(key)
		}
	}
	if dst < 0 {
		return nil
	}
	return []assignPair{{dst: dst, src: src, gen: gen, genFlags: genFl}}
}

func (fa *funcAnalysis) valueSpec(spec *ast.ValueSpec, evs *[]event) {
	for _, v := range spec.Values {
		fa.walk(v, evs)
	}
	var pairs []assignPair
	for i, name := range spec.Names {
		dst := -1
		if obj := fa.objOf(name); obj != nil {
			dst = fa.varIndex(varKey{obj, ""})
		}
		if dst < 0 {
			continue
		}
		src := -1
		gen, genFl := false, uint8(0)
		if i < len(spec.Values) {
			r := ast.Unparen(spec.Values[i])
			if call, ok := r.(*ast.CallExpr); ok {
				gen, genFl = fa.genCall(call)
			}
			if !gen {
				src = fa.resolve(r)
			}
		}
		pairs = append(pairs, assignPair{dst: dst, src: src, gen: gen, genFlags: genFl})
	}
	if len(pairs) > 0 {
		*evs = append(*evs, event{kind: evAssign, pairs: pairs, pos: spec.Pos()})
	}
}

// callEvents classifies one call. Protocol calls become direct events; any
// other statically-resolved call applies its summary (local fixpoint result
// or imported fact) to its handle arguments.
func (fa *funcAnalysis) callEvents(call *ast.CallExpr, evs *[]event) {
	fa.walk(call.Fun, evs)
	for _, arg := range call.Args {
		fa.walk(arg, evs)
	}

	info := fa.pass.TypesInfo
	arg := func(i int) int {
		if i < len(call.Args) {
			return fa.resolve(call.Args[i])
		}
		return -1
	}
	emit := func(kind evKind, src int, def bool, what string) {
		if src >= 0 {
			*evs = append(*evs, event{kind: kind, src: src, def: def, what: what, pos: call.Pos()})
		}
	}

	switch {
	case ibrlint.CoreCall(info, call, "EndOp") != nil:
		*evs = append(*evs, event{kind: evEndOp, pos: call.Pos()})
	case ibrlint.CoreCall(info, call, "Retire") != nil:
		emit(evRetire, arg(1), false, "Retire")
	case ibrlint.GuardCall(info, call, "Retire") != nil:
		emit(evRetire, arg(0), false, "Guard.Retire")
	case ibrlint.MemCall(info, call, "Free") != nil || ibrlint.CoreCall(info, call, "Free") != nil:
		emit(evFree, arg(1), false, "Free")
	case ibrlint.GuardCall(info, call, "Discard") != nil:
		emit(evFree, arg(0), false, "Guard.Discard")
	case ibrlint.CoreCall(info, call, "Write") != nil:
		emit(evPublish, arg(2), true, "Write")
	case ibrlint.GuardCall(info, call, "Publish") != nil:
		emit(evPublish, arg(1), true, "Guard.Publish")
	case ibrlint.CoreCall(info, call, "CompareAndSwap") != nil:
		emit(evPublish, arg(3), false, "CompareAndSwap") // old value is compare-only
	case ibrlint.GuardCall(info, call, "CompareAndSwap") != nil:
		emit(evPublish, arg(2), false, "Guard.CompareAndSwap")
	case ibrlint.MemCall(info, call, "Get") != nil:
		emit(evUse, arg(0), false, "Pool.Get")
	case ibrlint.GuardCall(info, call, "Deref") != nil:
		emit(evUse, arg(0), false, "Guard.Deref")
	case isBuiltinAppend(info, call):
		for _, a := range call.Args[1:] {
			fa.escapeCheck(a, "appended to a slice", evs)
		}
	case fa.exposed && ibrlint.VisitorCall(info, call, fa.locals):
		// The range-callback idiom: a handle crossing into an opaque
		// visitor is gone from the bracket's custody (see evExpose).
		for _, a := range call.Args {
			if v := fa.resolve(a); v >= 0 {
				*evs = append(*evs, event{kind: evExpose, src: v, what: "exposed to a visitor callback", pos: call.Pos()})
			}
		}
	default:
		fn := fa.summaryCallee(call)
		if fn == nil {
			return
		}
		args := make([]int, len(call.Args))
		any := false
		for i := range call.Args {
			args[i] = arg(i)
			any = any || args[i] >= 0
		}
		if any {
			*evs = append(*evs, event{kind: evCall, fn: fn, args: args, pos: call.Pos()})
		}
	}
}

// summaryCallee resolves call to a summarizable function: statically known,
// outside the protocol substrate and the trusted facade, and not one of the
// value-preserving Handle helpers.
func (fa *funcAnalysis) summaryCallee(call *ast.CallExpr) *types.Func {
	fn, ok := typeutil.Callee(fa.pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	p := fn.Pkg().Path()
	if ibrlint.PkgInProtocol(p) || ibrlint.PkgIs(p, ibrlint.GuardPkg) {
		return nil
	}
	return fn.Origin()
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// lookupSummary finds fn's effect summary: the package-local fixpoint map
// first, then the imported fact store.
func (fa *funcAnalysis) lookupSummary(fn *types.Func) *Summary {
	if fn.Pkg() == fa.pass.Pkg {
		return fa.sums[fn]
	}
	if s, ok := fa.factCache[fn]; ok {
		return s
	}
	var s Summary
	if fa.pass.ImportObjectFact(fn, &s) {
		fa.factCache[fn] = &s
		return &s
	}
	fa.factCache[fn] = nil
	return nil
}
