package lifecycle

import (
	"fmt"
	"strings"
)

// ParamEffect is a bitmask of life-cycle effects a function applies to one
// of its parameters. Summaries let the caller-side dataflow see through a
// call: passing a handle to a function that retires it is a retire at the
// call site, and passing an already-retired handle to a function that
// dereferences it is a use-after-retire.
type ParamEffect uint8

const (
	// EffDeref: the parameter is dereferenced (Pool.Get / Guard.Deref).
	EffDeref ParamEffect = 1 << iota
	// EffRetire: the parameter is handed to Scheme.Retire on some path.
	EffRetire
	// EffFree: the parameter is freed directly (Pool.Free / Guard.Discard).
	EffFree
	// EffPublish: the parameter is stored into a shared pointer
	// (Scheme.Write / CAS new-value / a node-field store).
	EffPublish
	// EffEscape: the parameter escapes (returned, stored in a composite
	// literal or slice) and may outlive the call.
	EffEscape
)

func (e ParamEffect) String() string {
	if e == 0 {
		return "-"
	}
	var parts []string
	for _, f := range []struct {
		bit  ParamEffect
		name string
	}{{EffDeref, "deref"}, {EffRetire, "retire"}, {EffFree, "free"}, {EffPublish, "publish"}, {EffEscape, "escape"}} {
		if e&f.bit != 0 {
			parts = append(parts, f.name)
		}
	}
	return strings.Join(parts, "+")
}

// Summary is the per-function fact: one effect mask per signature parameter
// (the receiver, if any, is not summarized). It is computed by an
// intra-package fixpoint so effects propagate through local helper chains,
// and exported as an object fact so they propagate across package
// boundaries through the driver's fact files.
type Summary struct {
	Params []ParamEffect
}

// AFact marks Summary as a go/analysis fact.
func (*Summary) AFact() {}

func (s *Summary) String() string {
	parts := make([]string, len(s.Params))
	for i, e := range s.Params {
		parts[i] = e.String()
	}
	return fmt.Sprintf("lifecycle(%s)", strings.Join(parts, ", "))
}

// nonzero reports whether any parameter carries an effect.
func (s *Summary) nonzero() bool {
	for _, e := range s.Params {
		if e != 0 {
			return true
		}
	}
	return false
}

// merge ORs o into s, reporting whether s changed.
func (s *Summary) merge(o *Summary) bool {
	changed := false
	for i, e := range o.Params {
		if i < len(s.Params) && s.Params[i]|e != s.Params[i] {
			s.Params[i] |= e
			changed = true
		}
	}
	return changed
}

// sumEqual reports whether two summaries carry identical effect masks.
func sumEqual(a, b *Summary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			return false
		}
	}
	return true
}
