package lifecycle_test

import (
	"testing"

	"ibr/internal/analysis/checktest"
	"ibr/internal/analysis/derefguard"
	"ibr/internal/analysis/lifecycle"
)

// TestStructFields: typestate flows through depth-1 field paths (the
// findResult/window idiom) and publication via node-field stores.
func TestStructFields(t *testing.T) {
	checktest.Run(t, "lifefield/internal/ds", lifecycle.Analyzer)
}

// TestCrossFunction: the retire and the use live in different functions —
// same package (fixpointed summaries) and across packages (exported facts).
func TestCrossFunction(t *testing.T) {
	checktest.Run(t, "lifecross/internal/ds", lifecycle.Analyzer)
}

// TestBranches: a Retire on one CFG path poisons uses after the join;
// returning branches and reassignment keep the fall-through clean.
func TestBranches(t *testing.T) {
	checktest.Run(t, "lifebranch/internal/ds", lifecycle.Analyzer)
}

// TestProtectedWindow: read handles must not outlive their op's plain
// EndOp unpublished.
func TestProtectedWindow(t *testing.T) {
	checktest.Run(t, "lifeend/internal/ds", lifecycle.Analyzer)
}

// TestClean: the real data-structure idioms (traversal loops, facade
// brackets, failed-insert discards) produce no diagnostics.
func TestClean(t *testing.T) {
	checktest.Run(t, "lifeok/internal/ds", lifecycle.Analyzer)
}

// TestRangeCallback: the range-scan visitor idiom — handles exposed to an
// opaque callback must not escape the StartOp/EndOp bracket. Both owners of
// the rule run together: derefguard polices WHERE the exposure happens
// (inside the bracket), lifecycle polices WHAT crosses (values, or handles
// whose lifetime no longer hangs on the reservation).
func TestRangeCallback(t *testing.T) {
	checktest.Run(t, "liferange/internal/ds", derefguard.Analyzer, lifecycle.Analyzer)
}
