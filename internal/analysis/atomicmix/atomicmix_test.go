package atomicmix_test

import (
	"testing"

	"ibr/internal/analysis/atomicmix"
	"ibr/internal/analysis/checktest"
)

func TestFlagged(t *testing.T) {
	checktest.Run(t, "atomicbad", atomicmix.Analyzer)
}

func TestClean(t *testing.T) {
	checktest.Run(t, "atomicok", atomicmix.Analyzer)
}
