// Package atomicmix flags mixed atomic/plain access to the same memory
// word: a struct field or package-level variable that is passed to a
// sync/atomic function anywhere in the package must never be read or
// written plainly elsewhere. The plain access is invisible to the memory
// model and races with every atomic one — the bug class behind the
// historical Pool.refill data race in this repository.
//
// Fields of the typed atomic.* wrappers cannot be accessed plainly without
// unsafe, so the analyzer only tracks words reached through the functional
// sync/atomic API (atomic.LoadUint64(&x.f), atomic.AddUint64(&x.f, 1), ...).
// Composite-literal keys are exempt: initialization before publication is
// the idiomatic way to seed such fields.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"ibr/internal/analysis/ibrlint"
)

var Analyzer = &analysis.Analyzer{
	Name:     "atomicmix",
	Doc:      "check that words accessed through sync/atomic are never read or written plainly",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ibrlint.Directives},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	rep := ibrlint.NewReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1: every &x.f (or &v) handed to a sync/atomic function marks the
	// variable as atomically accessed; remember the idents inside those
	// arguments so pass 2 does not count them as plain uses.
	atomicVars := make(map[*types.Var]token.Pos)
	inAtomicArg := make(map[*ast.Ident]bool)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || fn.Signature().Recv() != nil {
			return
		}
		for _, arg := range call.Args {
			un, ok := arg.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			if v := addressedVar(pass.TypesInfo, un.X); v != nil {
				if _, have := atomicVars[v]; !have {
					atomicVars[v] = un.Pos()
				}
			}
			ast.Inspect(un, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					inAtomicArg[id] = true
				}
				return true
			})
		}
	})
	if len(atomicVars) == 0 {
		return nil, nil
	}

	// Pass 2: any other use of those variables is a plain (racy) access.
	ins.WithStack([]ast.Node{(*ast.Ident)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		id := n.(*ast.Ident)
		if inAtomicArg[id] {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		at, tracked := atomicVars[v]
		if !tracked || compositeLitKey(id, stack) {
			return true
		}
		rep.Reportf(id.Pos(), "plain access to %s, which is accessed via sync/atomic at %s; every access to an atomic word must be atomic", v.Name(), shortPos(pass, at))
		return true
	})
	return nil, nil
}

// addressedVar resolves the operand of an & expression to a struct field or
// package-level variable, the cases where a second, plain access path to
// the same word can plausibly exist. Locals whose address is taken are
// skipped: &local handed to atomic is ordinary single-threaded setup.
func addressedVar(info *types.Info, x ast.Expr) *types.Var {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if sel := info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			return sel.Obj().(*types.Var)
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	}
	return nil
}

// compositeLitKey reports whether id is the key of a keyed composite
// literal entry (S{f: 0}).
func compositeLitKey(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	kv, ok := stack[len(stack)-2].(*ast.KeyValueExpr)
	if !ok || kv.Key != id {
		return false
	}
	_, ok = stack[len(stack)-3].(*ast.CompositeLit)
	return ok
}

func shortPos(pass *analysis.Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}
