package derefguard_test

import (
	"testing"

	"ibr/internal/analysis/checktest"
	"ibr/internal/analysis/derefguard"
)

func TestFlagged(t *testing.T) {
	checktest.Run(t, "derefbad/internal/ds", derefguard.Analyzer)
}

func TestClean(t *testing.T) {
	checktest.Run(t, "derefok/internal/ds", derefguard.Analyzer)
}
