// Package derefguard enforces the read-side reservation discipline of the
// IBR protocol (paper Fig. 1, §2–§3) inside the data-structure layer: every
// access to shared pool memory — mem.Pool.Get, core.Ptr loads, and the
// Scheme pointer operations — must happen inside a StartOp/EndOp bracket.
//
// Concretely, for every function in a package ending in internal/ds:
//
//   - if the function calls StartOp, every protected operation must be
//     dominated by a StartOp call and must not follow a plain (non-deferred)
//     EndOp on any control-flow path;
//   - if the function is exported and performs protected operations without
//     any StartOp, every such operation is flagged: an API entry point must
//     establish a reservation or be annotated as quiescence-only with
//     //ibrlint:ignore <reason>;
//   - unexported functions with no StartOp of their own are assumed to be
//     traversal helpers running under their caller's bracket and are skipped
//     (the bracket is checked at the exported entry points).
//
// Passing a mem.Handle to an opaque visitor callback (a function-typed
// parameter or field — the ds.Ranger idiom) counts as a protected operation
// too: the callback may dereference the handle, so the exposure must happen
// inside the bracket. Locally bound closures (the recursive-walk idiom) are
// exempt — their bodies are visible and checked on their own.
//
// Test files are exempt: tests deliberately stage quiescent inspections.
package derefguard

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"

	"ibr/internal/analysis/ibrlint"
)

var Analyzer = &analysis.Analyzer{
	Name:     "derefguard",
	Doc:      "check that shared-memory accesses in internal/ds are bracketed by StartOp/EndOp",
	Requires: []*analysis.Analyzer{ctrlflow.Analyzer, ibrlint.Directives},
	Run:      run,
}

// event kinds recognized inside a CFG block.
type evKind int

const (
	evStart evKind = iota // StartOp: opens the bracket
	evEnd                 // plain EndOp: closes the bracket
	evOp                  // protected operation: must be inside the bracket
)

type event struct {
	kind evKind
	pos  token.Pos
	what string // display name for evOp, e.g. "Pool.Get"
}

// state is the may-analysis lattice: unprot = some path reaches here with no
// dominating StartOp; ended = some path reaches here after a plain EndOp.
type state struct{ unprot, ended bool }

func (s state) join(o state) state { return state{s.unprot || o.unprot, s.ended || o.ended} }

func run(pass *analysis.Pass) (any, error) {
	if !ibrlint.PkgIs(pass.Pkg.Path(), "internal/ds") {
		return nil, nil
	}
	rep := ibrlint.NewReporter(pass)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	for _, f := range pass.Files {
		if ibrlint.TestFile(pass, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasStartOp(pass, fd.Body) && !fd.Name.IsExported() {
				continue // helper running under the caller's bracket
			}
			if g := cfgs.FuncDecl(fd); g != nil {
				locals := ibrlint.FuncLitBindings(pass.TypesInfo, fd.Body)
				checkFunc(pass, rep, g, locals)
			}
		}
	}
	return nil, nil
}

// hasStartOp reports whether body calls StartOp outside nested closures.
func hasStartOp(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if ibrlint.CoreCall(pass.TypesInfo, n, "StartOp") != nil {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkFunc runs the bracket dataflow over one function's CFG.
func checkFunc(pass *analysis.Pass, rep *ibrlint.Reporter, g *cfg.CFG, locals map[types.Object]bool) {
	blocks := g.Blocks
	events := make([][]event, len(blocks))
	index := make(map[*cfg.Block]int, len(blocks))
	for i, b := range blocks {
		index[b] = i
		for _, n := range b.Nodes {
			events[i] = append(events[i], blockEvents(pass, n, locals)...)
		}
	}

	in := make([]state, len(blocks))
	seen := make([]bool, len(blocks))
	in[0] = state{unprot: true}
	seen[0] = true
	work := []int{0}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		out := transfer(in[i], events[i])
		for _, succ := range blocks[i].Succs {
			j := index[succ]
			next := out
			if seen[j] {
				next = in[j].join(out)
				if next == in[j] {
					continue
				}
			}
			in[j] = next
			seen[j] = true
			work = append(work, j)
		}
	}

	reported := make(map[token.Pos]bool)
	for i := range blocks {
		if !seen[i] {
			continue
		}
		s := in[i]
		for _, ev := range events[i] {
			switch ev.kind {
			case evStart:
				s = state{}
			case evEnd:
				s.ended = true
			case evOp:
				if reported[ev.pos] {
					continue
				}
				if s.unprot {
					reported[ev.pos] = true
					rep.Reportf(ev.pos, "%s outside the reservation bracket: no StartOp dominates this access (IBR read protocol)", ev.what)
				} else if s.ended {
					reported[ev.pos] = true
					rep.Reportf(ev.pos, "%s may follow EndOp: the reservation bracket is already closed on some path", ev.what)
				}
			}
		}
	}
}

func transfer(s state, evs []event) state {
	for _, ev := range evs {
		switch ev.kind {
		case evStart:
			s = state{}
		case evEnd:
			s.ended = true
		}
	}
	return s
}

// blockEvents extracts bracket events from one CFG node in source order,
// skipping nested closures and defer statements (a deferred EndOp runs at
// return and does not close the bracket mid-function).
func blockEvents(pass *analysis.Pass, node ast.Node, locals map[types.Object]bool) []event {
	var evs []event
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			info := pass.TypesInfo
			if ibrlint.CoreCall(info, n, "StartOp") != nil {
				evs = append(evs, event{kind: evStart, pos: n.Pos()})
				return true
			}
			if ibrlint.CoreCall(info, n, "EndOp") != nil {
				evs = append(evs, event{kind: evEnd, pos: n.Pos()})
				return true
			}
			if fn := ibrlint.CoreCall(info, n, "Raw", "FetchOrMarks", "Read", "ReadRoot", "Write", "CompareAndSwap", "Retire", "RestartOp"); fn != nil {
				evs = append(evs, event{kind: evOp, pos: n.Pos(), what: methodName(fn)})
				return true
			}
			if fn := ibrlint.MemCall(info, n, "Get"); fn != nil {
				evs = append(evs, event{kind: evOp, pos: n.Pos(), what: methodName(fn)})
				return true
			}
			// Scheme.Alloc (one result). The raw two-result allocator Alloc
			// is epochstamp's concern, not a bracket violation.
			if fn := ibrlint.CoreCall(info, n, "Alloc"); fn != nil && fn.Signature().Results().Len() == 1 {
				evs = append(evs, event{kind: evOp, pos: n.Pos(), what: methodName(fn)})
				return true
			}
			// A handle crossing into an opaque visitor callback (the
			// ds.Ranger idiom): the callback may dereference it, so the
			// exposure is a protected operation.
			if ibrlint.VisitorCall(info, n, locals) {
				for _, a := range n.Args {
					if t := info.TypeOf(a); t != nil && ibrlint.IsHandleType(t) {
						evs = append(evs, event{kind: evOp, pos: n.Pos(), what: "visitor callback receiving a handle"})
						break
					}
				}
			}
		}
		return true
	})
	return evs
}

// methodName renders fn as "Recv.Name" for diagnostics.
func methodName(fn *types.Func) string {
	recv := fn.Signature().Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	name := recv.String()
	if n, ok := recv.(interface{ Obj() *types.TypeName }); ok {
		name = n.Obj().Name()
	}
	return fmt.Sprintf("%s.%s", name, fn.Name())
}
