package ibrdirective_test

import (
	"testing"

	"ibr/internal/analysis/checktest"
	"ibr/internal/analysis/ibrdirective"
	"ibr/internal/analysis/retirefree"
)

// TestEscapeHatch runs retirefree and ibrdirective together over the
// escape-hatch golden package: valid //ibrlint:ignore directives suppress
// the retirefree finding, while bare or misspelled directives suppress
// nothing and are themselves reported.
func TestEscapeHatch(t *testing.T) {
	checktest.Run(t, "ignorecase/internal/ds", retirefree.Analyzer, ibrdirective.Analyzer)
}

// TestStale runs the same pair over the staleness golden: a directive that
// suppressed a live retirefree finding is used, one that suppresses nothing
// from the whole suite is reported.
func TestStale(t *testing.T) {
	checktest.Run(t, "staleignore/internal/ds", retirefree.Analyzer, ibrdirective.Analyzer)
}
