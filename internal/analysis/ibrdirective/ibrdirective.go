// Package ibrdirective validates the //ibrlint: control comments
// themselves: an //ibrlint:ignore must carry a reason string (a bare ignore
// suppresses nothing), and unknown verbs are flagged so a typo like
// //ibrlint:ingore does not silently disable a suppression.
package ibrdirective

import (
	"strings"

	"golang.org/x/tools/go/analysis"

	"ibr/internal/analysis/ibrlint"
)

var Analyzer = &analysis.Analyzer{
	Name: "ibrdirective",
	Doc:  "validate //ibrlint: directives (ignore requires a reason)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, reason, ok := ibrlint.DirectiveReason(c.Text)
				if !ok {
					continue
				}
				switch {
				case verb != "ignore":
					pass.Reportf(c.Pos(), "unknown ibrlint directive %q (only //ibrlint:ignore <reason> is recognized)", strings.TrimSpace(verb))
				case reason == "":
					pass.Reportf(c.Pos(), "//ibrlint:ignore without a reason suppresses nothing; document why the finding is a false positive")
				}
			}
		}
	}
	return nil, nil
}
