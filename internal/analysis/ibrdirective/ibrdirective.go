// Package ibrdirective validates the //ibrlint: control comments
// themselves: an //ibrlint:ignore must carry a reason string (a bare ignore
// suppresses nothing), unknown verbs are flagged so a typo like
// //ibrlint:ingore does not silently disable a suppression, and a valid
// directive that suppressed no diagnostic from any analyzer in the suite is
// reported as stale — suppressions must not rot in place, ready to hide a
// future real finding.
//
// Staleness is computed from the shared ibrlint.Directives result: every
// analyzer's Reporter marks the directive that suppressed each finding, and
// this analyzer Requires the whole suite so it observes the final usage
// state. Directives in _test.go files are exempt (the suite skips test
// files, so their directives document intent rather than suppress).
package ibrdirective

import (
	"strings"

	"golang.org/x/tools/go/analysis"

	"ibr/internal/analysis/atomicmix"
	"ibr/internal/analysis/derefguard"
	"ibr/internal/analysis/endop"
	"ibr/internal/analysis/epochstamp"
	"ibr/internal/analysis/ibrlint"
	"ibr/internal/analysis/lifecycle"
	"ibr/internal/analysis/retirefree"
)

var Analyzer = &analysis.Analyzer{
	Name: "ibrdirective",
	Doc:  "validate //ibrlint: directives (ignore requires a reason; stale ignores are flagged)",
	Requires: []*analysis.Analyzer{
		ibrlint.Directives,
		derefguard.Analyzer,
		endop.Analyzer,
		retirefree.Analyzer,
		epochstamp.Analyzer,
		atomicmix.Analyzer,
		lifecycle.Analyzer,
	},
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	set := pass.ResultOf[ibrlint.Directives].(*ibrlint.DirectiveSet)
	for _, d := range set.All() {
		switch {
		case d.Verb != "ignore":
			pass.Reportf(d.Pos, "unknown ibrlint directive %q (only //ibrlint:ignore <reason> is recognized)", strings.TrimSpace(d.Verb))
		case d.Reason == "":
			pass.Reportf(d.Pos, "//ibrlint:ignore without a reason suppresses nothing; document why the finding is a false positive")
		case !d.Test && !set.Used(d):
			pass.Reportf(d.Pos, "stale //ibrlint:ignore: it suppresses no diagnostic from the suite; delete it so it cannot hide a future finding")
		}
	}
	return nil, nil
}
