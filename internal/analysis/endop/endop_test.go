package endop_test

import (
	"testing"

	"ibr/internal/analysis/checktest"
	"ibr/internal/analysis/endop"
)

func TestFlagged(t *testing.T) {
	checktest.Run(t, "endbad/internal/ds", endop.Analyzer)
}

func TestClean(t *testing.T) {
	checktest.Run(t, "endok/internal/ds", endop.Analyzer)
}
