// Package endop checks that every StartOp reservation is withdrawn: on
// every path from a StartOp call to a return (or to falling off the end of
// the function), either a plain EndOp call has closed the bracket or a
// `defer EndOp` is pending. A leaked reservation pins the reclamation clock
// for the rest of the run — the "leaked reservation" misuse class — so the
// suggested fix is `defer s.EndOp(tid)` right after StartOp.
//
// internal/core is exempt (the schemes implement the bracket; e.g.
// EBR.RestartOp legitimately calls StartOp with no EndOp), as are test
// files, which simulate stalled threads by parking open reservations.
package endop

import (
	"go/ast"
	"go/token"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"ibr/internal/analysis/ibrlint"
)

var Analyzer = &analysis.Analyzer{
	Name:     "endop",
	Doc:      "check that every StartOp is matched by EndOp on all return paths",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer, ibrlint.Directives},
	Run:      run,
}

type evKind int

const (
	evStart evKind = iota
	evEnd
	evDeferEnd
)

type event struct {
	kind evKind
	pos  token.Pos
}

// state is a bitset over (open, covered) pairs: bit (open<<1|covered) set
// means some path reaches this point with that bracket status. covered
// means a defer'd EndOp is pending for the rest of the function.
type state uint8

const stateEntry state = 1 << 0 // closed, uncovered

func run(pass *analysis.Pass) (any, error) {
	if ibrlint.PkgIs(pass.Pkg.Path(), ibrlint.CorePkg) {
		return nil, nil
	}
	rep := ibrlint.NewReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		if ibrlint.TestFile(pass, n.Pos()) {
			return
		}
		var g *cfg.CFG
		switch n := n.(type) {
		case *ast.FuncDecl:
			g = cfgs.FuncDecl(n)
		case *ast.FuncLit:
			g = cfgs.FuncLit(n)
		}
		if g != nil {
			checkFunc(pass, rep, g)
		}
	})
	return nil, nil
}

func checkFunc(pass *analysis.Pass, rep *ibrlint.Reporter, g *cfg.CFG) {
	blocks := g.Blocks
	events := make([][]event, len(blocks))
	index := make(map[*cfg.Block]int, len(blocks))
	firstStart := token.NoPos
	for i, b := range blocks {
		index[b] = i
		for _, n := range b.Nodes {
			events[i] = append(events[i], nodeEvents(pass, n)...)
		}
		for _, ev := range events[i] {
			if ev.kind == evStart && (!firstStart.IsValid() || ev.pos < firstStart) {
				firstStart = ev.pos
			}
		}
	}
	if !firstStart.IsValid() {
		return // no StartOp in this function
	}

	in := make([]state, len(blocks))
	in[0] = stateEntry
	work := []int{0}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		out := transfer(in[i], events[i])
		for _, succ := range blocks[i].Succs {
			j := index[succ]
			if in[j]|out == in[j] && in[j] != 0 {
				continue
			}
			in[j] |= out
			work = append(work, j)
		}
	}

	for i, b := range blocks {
		if in[i] == 0 || len(b.Succs) > 0 {
			continue
		}
		if !isReturnOrFalloff(b) {
			continue // ends in panic or another no-return call
		}
		out := transfer(in[i], events[i])
		// Any (open, uncovered) status reaching a function exit leaks.
		if out&(1<<(1<<1|0)) != 0 {
			rep.Reportf(firstStart, "StartOp is not matched by EndOp on every return path; add `defer EndOp` right after it")
			return
		}
	}
}

func transfer(s state, evs []event) state {
	for _, ev := range evs {
		var next state
		for bits := 0; bits < 4; bits++ {
			if s&(1<<bits) == 0 {
				continue
			}
			open, covered := bits>>1 == 1, bits&1 == 1
			switch ev.kind {
			case evStart:
				open = true
			case evEnd:
				open = false
			case evDeferEnd:
				covered = true
			}
			nb := 0
			if open {
				nb |= 1 << 1
			}
			if covered {
				nb |= 1
			}
			next |= 1 << nb
		}
		s = next
	}
	return s
}

// nodeEvents extracts StartOp / EndOp / defer-EndOp events from one CFG
// node, skipping nested closures (checked on their own).
func nodeEvents(pass *analysis.Pass, node ast.Node) []event {
	var evs []event
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if deferredEndOp(pass, n) {
				evs = append(evs, event{kind: evDeferEnd, pos: n.Pos()})
			}
			return false
		case *ast.CallExpr:
			if ibrlint.CoreCall(pass.TypesInfo, n, "StartOp") != nil {
				evs = append(evs, event{kind: evStart, pos: n.Pos()})
			} else if ibrlint.CoreCall(pass.TypesInfo, n, "EndOp") != nil {
				evs = append(evs, event{kind: evEnd, pos: n.Pos()})
			}
		}
		return true
	})
	return evs
}

// deferredEndOp reports whether d defers an EndOp call, either directly
// (`defer s.EndOp(tid)`) or via an immediate closure that calls it.
func deferredEndOp(pass *analysis.Pass, d *ast.DeferStmt) bool {
	if ibrlint.CoreCall(pass.TypesInfo, d.Call, "EndOp") != nil {
		return true
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && ibrlint.CoreCall(pass.TypesInfo, call, "EndOp") != nil {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

// isReturnOrFalloff reports whether an exit block represents a normal
// function exit (explicit return or falling off the end) rather than a
// call to a no-return function such as panic.
func isReturnOrFalloff(b *cfg.Block) bool {
	// A successor-less SelectAfterCase block is the CFG's encoding of "no
	// case ready" after the last clause of a default-less select — a path
	// that blocks forever rather than returning, so an open reservation
	// reaching it is not a leak (StartOp → select → EndOp is fine).
	if b.Kind == cfg.KindSelectAfterCase {
		return false
	}
	if len(b.Nodes) == 0 {
		return true
	}
	switch b.Nodes[len(b.Nodes)-1].(type) {
	case *ast.ExprStmt:
		return false // no-return call (panic, log.Fatal, ...)
	}
	return true
}
