// Package epochstamp enforces birth-epoch stamping (paper §3, Figs. 4–5):
// every block handed out by the raw allocator must have its birth epoch
// recorded before the handle can be published, or interval trackers would
// compare reservations against a stale (zero) birth and reclaim live blocks.
//
// Two rules:
//
//   - inside internal/core (non-test files), a successful two-result
//     allocator Alloc must be followed by SetBirth on the returned handle,
//     on every path, before the handle escapes the function (is returned,
//     stored, or passed to another call);
//   - everywhere else, calling the two-result allocator Alloc at all is
//     flagged: data structures must allocate through Scheme.Alloc, which
//     advances the epoch clock and stamps the birth (schemes that do not
//     tag births, like EBR, make that an explicit //ibrlint:ignore).
package epochstamp

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"

	"ibr/internal/analysis/ibrlint"
)

var Analyzer = &analysis.Analyzer{
	Name:     "epochstamp",
	Doc:      "check that allocator Alloc results are birth-stamped (SetBirth) before the handle escapes",
	Requires: []*analysis.Analyzer{ctrlflow.Analyzer, ibrlint.Directives},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	inCore := ibrlint.PkgIs(pass.Pkg.Path(), ibrlint.CorePkg)
	if ibrlint.PkgIs(pass.Pkg.Path(), ibrlint.MemPkg) ||
		ibrlint.PkgInProtocol(pass.Pkg.Path()) && !inCore {
		return nil, nil // the allocator itself is out of scope
	}
	rep := ibrlint.NewReporter(pass)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	for _, f := range pass.Files {
		if ibrlint.TestFile(pass, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !inCore {
				flagRawAllocs(pass, rep, fd.Body)
				continue
			}
			if g := cfgs.FuncDecl(fd); g != nil {
				checkStamped(pass, rep, g)
			}
		}
	}
	return nil, nil
}

// flagRawAllocs reports every two-result allocator Alloc outside the
// reclamation core: there is no way to stamp a birth epoch out there.
func flagRawAllocs(pass *analysis.Pass, rep *ibrlint.Reporter, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && ibrlint.AllocCall(pass.TypesInfo, call) {
			rep.Reportf(call.Pos(), "raw allocator Alloc bypasses birth-epoch stamping; allocate through Scheme.Alloc")
		}
		return true
	})
}

// --- in-core dataflow: Alloc must reach SetBirth before the handle escapes.

type evKind int

const (
	evAlloc evKind = iota // var := Alloc(...): handle is live and unstamped
	evStamp               // SetBirth(var, ...) or reassignment: stamped/dead
	evUse                 // var escapes (return / call arg / store)
)

type event struct {
	kind evKind
	v    int // index into the function's tracked alloc variables
	pos  token.Pos
}

func checkStamped(pass *analysis.Pass, rep *ibrlint.Reporter, g *cfg.CFG) {
	// Collect the variables assigned from allocator Alloc calls.
	vars := make(map[types.Object]int)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
					return true
				}
				call, ok := as.Rhs[0].(*ast.CallExpr)
				if !ok || !ibrlint.AllocCall(pass.TypesInfo, call) {
					return true
				}
				if id, ok := as.Lhs[0].(*ast.Ident); ok {
					if obj := objectOf(pass.TypesInfo, id); obj != nil {
						if _, have := vars[obj]; !have {
							vars[obj] = len(vars)
						}
					}
				}
				return true
			})
		}
	}
	if len(vars) == 0 {
		return
	}

	blocks := g.Blocks
	events := make([][]event, len(blocks))
	index := make(map[*cfg.Block]int, len(blocks))
	for i, b := range blocks {
		index[b] = i
		for _, n := range b.Nodes {
			events[i] = append(events[i], nodeEvents(pass, n, vars)...)
		}
	}

	// in[i] = bitset of variables that may be live-and-unstamped.
	in := make([]uint64, len(blocks))
	seen := make([]bool, len(blocks))
	seen[0] = true
	work := []int{0}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		out := transfer(in[i], events[i])
		for _, succ := range blocks[i].Succs {
			j := index[succ]
			if seen[j] && in[j]|out == in[j] {
				continue
			}
			in[j] |= out
			seen[j] = true
			work = append(work, j)
		}
	}

	reported := make(map[token.Pos]bool)
	for i := range blocks {
		if !seen[i] {
			continue
		}
		s := in[i]
		for _, ev := range events[i] {
			switch ev.kind {
			case evAlloc:
				s |= 1 << ev.v
			case evStamp:
				s &^= 1 << ev.v
			case evUse:
				if s&(1<<ev.v) != 0 && !reported[ev.pos] {
					reported[ev.pos] = true
					rep.Reportf(ev.pos, "allocated handle escapes before SetBirth stamps its birth epoch (interval invariant, paper §3)")
				}
			}
		}
	}
}

func transfer(s uint64, evs []event) uint64 {
	for _, ev := range evs {
		switch ev.kind {
		case evAlloc:
			s |= 1 << ev.v
		case evStamp:
			s &^= 1 << ev.v
		}
	}
	return s
}

// nodeEvents extracts alloc/stamp/use events for the tracked variables from
// one CFG node, in source order.
func nodeEvents(pass *analysis.Pass, node ast.Node, vars map[types.Object]int) []event {
	var evs []event
	var walk func(n ast.Node)
	emitUses := func(n ast.Node) {
		if n != nil {
			walk(n)
		}
	}
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				// var := Alloc(...): alloc event; the Lhs idents are
				// definitions, not uses. A plain reassignment of a tracked
				// var kills it (the unstamped handle is discarded).
				if len(n.Rhs) == 1 && len(n.Lhs) == 2 {
					if call, ok := n.Rhs[0].(*ast.CallExpr); ok && ibrlint.AllocCall(pass.TypesInfo, call) {
						emitUses(call)
						if id, ok := n.Lhs[0].(*ast.Ident); ok {
							if obj := objectOf(pass.TypesInfo, id); obj != nil {
								if v, have := vars[obj]; have {
									evs = append(evs, event{kind: evAlloc, v: v, pos: n.Pos()})
								}
							}
						}
						return false
					}
				}
				for _, rhs := range n.Rhs {
					emitUses(rhs)
				}
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := objectOf(pass.TypesInfo, id); obj != nil {
							if v, have := vars[obj]; have {
								evs = append(evs, event{kind: evStamp, v: v, pos: n.Pos()})
							}
							continue
						}
					}
					emitUses(lhs) // *p, s.f, a[i] — any tracked var inside is a use
				}
				return false
			case *ast.CallExpr:
				// SetBirth(h, e): stamps h. Pure Handle-inspection methods
				// on the tracked var (h.IsNil() etc.) are not escapes.
				info := pass.TypesInfo
				if ibrlint.MemCall(info, n, "SetBirth") != nil || ibrlint.CoreCall(info, n, "SetBirth") != nil {
					if len(n.Args) > 0 {
						if id, ok := n.Args[0].(*ast.Ident); ok {
							if obj := objectOf(info, id); obj != nil {
								if v, have := vars[obj]; have {
									for _, a := range n.Args[1:] {
										emitUses(a)
									}
									evs = append(evs, event{kind: evStamp, v: v, pos: n.Pos()})
									return false
								}
							}
						}
					}
				}
				if fn := ibrlint.MethodCallee(info, n); fn != nil && ibrlint.IsMethod(fn, ibrlint.MemPkg, fn.Name()) {
					if recv := fn.Signature().Recv(); recv != nil && namedTypeName(recv.Type()) == "Handle" {
						// h.Method(...): walk args only, skip the receiver.
						for _, a := range n.Args {
							emitUses(a)
						}
						return false
					}
				}
				return true
			case *ast.Ident:
				if obj := objectOf(pass.TypesInfo, n); obj != nil {
					if v, have := vars[obj]; have {
						evs = append(evs, event{kind: evUse, v: v, pos: n.Pos()})
					}
				}
			}
			return true
		})
	}
	walk(node)
	return evs
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(interface{ Obj() *types.TypeName }); ok {
		return n.Obj().Name()
	}
	return ""
}
