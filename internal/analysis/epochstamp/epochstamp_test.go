package epochstamp_test

import (
	"testing"

	"ibr/internal/analysis/checktest"
	"ibr/internal/analysis/epochstamp"
	"ibr/internal/analysis/retirefree"
)

func TestInCoreFlagged(t *testing.T) {
	checktest.Run(t, "stampbad/internal/core", epochstamp.Analyzer)
}

func TestInCoreClean(t *testing.T) {
	checktest.Run(t, "stampok/internal/core", epochstamp.Analyzer)
}

func TestRawAllocOutsideCore(t *testing.T) {
	checktest.Run(t, "stampraw/internal/ds", epochstamp.Analyzer)
}

// TestHandoffSchemeIdioms covers the idioms hyaline and debra added to the
// core: a documented plain alloc (no birth stamp) is accepted, an
// undocumented one is still flagged, and refcount-driven batch frees fall
// under the substrate exemption. Run with retirefree too so every
// expectation in the golden package is owned by an analyzer in the run.
func TestHandoffSchemeIdioms(t *testing.T) {
	checktest.Run(t, "handoff/internal/core", epochstamp.Analyzer, retirefree.Analyzer)
}
