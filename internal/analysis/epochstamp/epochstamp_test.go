package epochstamp_test

import (
	"testing"

	"ibr/internal/analysis/checktest"
	"ibr/internal/analysis/epochstamp"
)

func TestInCoreFlagged(t *testing.T) {
	checktest.Run(t, "stampbad/internal/core", epochstamp.Analyzer)
}

func TestInCoreClean(t *testing.T) {
	checktest.Run(t, "stampok/internal/core", epochstamp.Analyzer)
}

func TestRawAllocOutsideCore(t *testing.T) {
	checktest.Run(t, "stampraw/internal/ds", epochstamp.Analyzer)
}
