// Package retirefree enforces retire-before-free (paper §2.1): outside the
// reclamation substrate itself, nothing may return memory to the allocator
// directly. A detached block must go through Scheme.Retire so a reclamation
// scan can prove no reservation still covers its lifetime interval; a direct
// Pool.Free is exactly the use-after-free the schemes exist to prevent.
//
// Allowed callers are the packages ending in internal/core and internal/mem
// (including their tests): the schemes' scans free what they have proven
// unreachable, and the allocator's own tests exercise Free directly.
//
// The one legitimate exception elsewhere — freeing a node that was
// allocated but never published, e.g. discarded after a failed insert —
// must be annotated: //ibrlint:ignore never published.
//
// The cross-tid transfer primitives (core.AdoptRetired and
// core.ClearReservation, both the package-function and method forms) are
// held to the same standard: clearing another tid's reservation unpins
// whatever its holder was reading, and adopting a retire list reads it
// unsynchronized — sound only when that tid's holder is provably parked
// holding no node references, or dead. Each call site must state that
// evidence in an //ibrlint:ignore directive (the engine's quarantine path
// cites its lease-table verification).
package retirefree

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"ibr/internal/analysis/ibrlint"
)

var Analyzer = &analysis.Analyzer{
	Name:     "retirefree",
	Doc:      "check that only internal/core and internal/mem free pool memory directly; everything else must Scheme.Retire",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	if ibrlint.PkgInProtocol(pass.Pkg.Path()) {
		return nil, nil
	}
	rep := ibrlint.NewReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := ibrlint.MemCall(pass.TypesInfo, call, "Free", "FreeBatch", "FreeBatches")
		if fn == nil {
			fn = ibrlint.CoreCall(pass.TypesInfo, call, "Free", "FreeBatch", "FreeBatches")
		}
		if fn != nil {
			rep.Reportf(call.Pos(), "direct %s bypasses reclamation: detached blocks must go through Scheme.Retire (retire-before-free, paper §2.1)", fn.Name())
			return
		}
		fn = ibrlint.CoreCall(pass.TypesInfo, call, "AdoptRetired", "ClearReservation")
		if fn == nil {
			fn = ibrlint.PkgFuncCall(pass.TypesInfo, call, ibrlint.CorePkg, "AdoptRetired", "ClearReservation")
		}
		if fn != nil {
			rep.Reportf(call.Pos(), "cross-tid %s acts on another thread's reservation state: annotate the parked-or-dead evidence with //ibrlint:ignore", fn.Name())
		}
	})
	return nil, nil
}
