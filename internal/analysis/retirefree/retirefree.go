// Package retirefree enforces retire-before-free (paper §2.1): outside the
// reclamation substrate itself, nothing may return memory to the allocator
// directly. A detached block must go through Scheme.Retire so a reclamation
// scan can prove no reservation still covers its lifetime interval; a direct
// Pool.Free is exactly the use-after-free the schemes exist to prevent.
//
// Allowed callers are the packages ending in internal/core and internal/mem
// (including their tests): the schemes' scans free what they have proven
// unreachable, and the allocator's own tests exercise Free directly.
//
// The one legitimate exception elsewhere — freeing a node that was
// allocated but never published, e.g. discarded after a failed insert —
// must be annotated: //ibrlint:ignore never published.
//
// The cross-tid transfer primitives (core.AdoptRetired and
// core.ClearReservation, both the package-function and method forms) are
// held to the same standard: clearing another tid's reservation unpins
// whatever its holder was reading, and adopting a retire list reads it
// unsynchronized — sound only when that tid's holder is provably parked
// holding no node references, or dead. Each call site must state that
// evidence in an //ibrlint:ignore directive (the engine's quarantine path
// cites its lease-table verification).
//
// The package also audits retire placement itself: handing the same handle
// to Retire twice along one control-flow path corrupts the retire list (the
// block is freed twice once its interval clears), so a second Retire of a
// variable that was not reassigned in between is flagged.
package retirefree

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"ibr/internal/analysis/ibrlint"
)

var Analyzer = &analysis.Analyzer{
	Name:     "retirefree",
	Doc:      "check that only internal/core and internal/mem free pool memory directly, and that no path retires the same handle twice",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer, ibrlint.Directives},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	if ibrlint.PkgInProtocol(pass.Pkg.Path()) {
		return nil, nil
	}
	rep := ibrlint.NewReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := ibrlint.MemCall(pass.TypesInfo, call, "Free", "FreeBatch", "FreeBatches")
		if fn == nil {
			fn = ibrlint.CoreCall(pass.TypesInfo, call, "Free", "FreeBatch", "FreeBatches")
		}
		if fn != nil {
			rep.Reportf(call.Pos(), "direct %s bypasses reclamation: detached blocks must go through Scheme.Retire (retire-before-free, paper §2.1)", fn.Name())
			return
		}
		fn = ibrlint.CoreCall(pass.TypesInfo, call, "AdoptRetired", "ClearReservation")
		if fn == nil {
			fn = ibrlint.PkgFuncCall(pass.TypesInfo, call, ibrlint.CorePkg, "AdoptRetired", "ClearReservation")
		}
		if fn != nil {
			rep.Reportf(call.Pos(), "cross-tid %s acts on another thread's reservation state: annotate the parked-or-dead evidence with //ibrlint:ignore", fn.Name())
		}
	})

	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	for _, f := range pass.Files {
		if ibrlint.TestFile(pass, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if g := cfgs.FuncDecl(fd); g != nil {
				checkDoubleRetire(pass, rep, g, fd.Body)
			}
		}
	}
	return nil, nil
}

// --- double-Retire-on-one-path check ---------------------------------------
//
// A small CFG dataflow over the variables that appear as a Retire argument:
// Retire sets the variable's bit, any assignment (or range rebinding) to it
// clears the bit, and a Retire while the bit is set is reported with the
// first retiring position. Only plain identifiers are tracked — the
// lifecycle analyzer does the alias- and field-aware version inside
// internal/ds; this check is the cheap tree-wide backstop.

type retireEvent struct {
	v      int // candidate index
	retire bool
	pos    token.Pos
}

func checkDoubleRetire(pass *analysis.Pass, rep *ibrlint.Reporter, g *cfg.CFG, body *ast.BlockStmt) {
	objOf := func(id *ast.Ident) types.Object {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[id]
	}

	// Range Key/Value variables are excluded as candidates outright: go/cfg
	// places their assignment before the loop, not on the back edge, so the
	// per-iteration rebinding would never kill the retired bit and every
	// `for _, h := range hs { Retire(h) }` loop would be a false positive.
	excluded := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			for _, e := range []ast.Expr{r.Key, r.Value} {
				if id, ok := ast.Unparen(e).(*ast.Ident); ok && e != nil {
					if obj := objOf(id); obj != nil {
						excluded[obj] = true
					}
				}
			}
		}
		return true
	})

	// Pass 1: candidates = identifiers retired somewhere in this function.
	vars := make(map[types.Object]int)
	var names []string
	retireArg := func(call *ast.CallExpr) *ast.Ident {
		var e ast.Expr
		if ibrlint.CoreCall(pass.TypesInfo, call, "Retire") != nil && len(call.Args) > 1 {
			e = call.Args[1]
		} else if ibrlint.GuardCall(pass.TypesInfo, call, "Retire") != nil && len(call.Args) > 0 {
			e = call.Args[0]
		}
		if e == nil {
			return nil
		}
		id, _ := ast.Unparen(e).(*ast.Ident)
		return id
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id := retireArg(call); id != nil {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && !excluded[obj] {
					if _, seen := vars[obj]; !seen && len(vars) < 64 {
						vars[obj] = len(names)
						names = append(names, id.Name)
					}
				}
			}
		}
		return true
	})
	if len(vars) == 0 {
		return
	}

	killTarget := func(e ast.Expr, evs *[]retireEvent) {
		if e == nil {
			return
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := vars[objOf(id)]; ok {
				*evs = append(*evs, retireEvent{v: v, retire: false})
			}
		}
	}

	// Pass 2: per-block events.
	blocks := g.Blocks
	events := make([][]retireEvent, len(blocks))
	index := make(map[*cfg.Block]int, len(blocks))
	for i, b := range blocks {
		index[b] = i
		for _, node := range b.Nodes {
			ast.Inspect(node, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit, *ast.DeferStmt:
					return false
				case *ast.AssignStmt:
					for _, l := range n.Lhs {
						killTarget(l, &events[i])
					}
				case *ast.RangeStmt:
					killTarget(n.Key, &events[i])
					killTarget(n.Value, &events[i])
				case *ast.CallExpr:
					if id := retireArg(n); id != nil {
						if v, ok := vars[objOf(id)]; ok {
							events[i] = append(events[i], retireEvent{v: v, retire: true, pos: n.Pos()})
						}
					}
				}
				return true
			})
		}
	}

	// Pass 3: may-retired worklist fixpoint, then report.
	firstAt := make([]token.Pos, len(vars))
	transfer := func(s uint64, evs []retireEvent, report bool) uint64 {
		for _, ev := range evs {
			b := uint64(1) << uint(ev.v)
			if !ev.retire {
				s &^= b
				continue
			}
			if s&b != 0 && report {
				line := pass.Fset.Position(firstAt[ev.v]).Line
				rep.Reportf(ev.pos, "%s is retired again on this path: already handed to Retire at line %d (double retire)", names[ev.v], line)
			}
			// Anchor diagnostics to the source-earliest retire: the worklist
			// visits blocks in an order unrelated to source order.
			if firstAt[ev.v] == token.NoPos || ev.pos < firstAt[ev.v] {
				firstAt[ev.v] = ev.pos
			}
			s |= b
		}
		return s
	}

	in := make([]uint64, len(blocks))
	seen := make([]bool, len(blocks))
	seen[0] = true
	work := []int{0}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		out := transfer(in[i], events[i], false)
		for _, succ := range blocks[i].Succs {
			j := index[succ]
			next := out
			if seen[j] {
				next = in[j] | out
				if next == in[j] {
					continue
				}
			}
			in[j] = next
			seen[j] = true
			work = append(work, j)
		}
	}
	for i := range blocks {
		if seen[i] {
			transfer(in[i], events[i], true)
		}
	}
}
