package retirefree_test

import (
	"testing"

	"ibr/internal/analysis/checktest"
	"ibr/internal/analysis/retirefree"
)

func TestFlagged(t *testing.T) {
	checktest.Run(t, "retirebad/internal/ds", retirefree.Analyzer)
}

func TestClean(t *testing.T) {
	checktest.Run(t, "retireok/internal/ds", retirefree.Analyzer)
}

func TestSubstrateExempt(t *testing.T) {
	checktest.Run(t, "retireexempt/internal/core", retirefree.Analyzer)
}

func TestDoubleRetire(t *testing.T) {
	checktest.Run(t, "retiredouble/internal/ds", retirefree.Analyzer)
}
