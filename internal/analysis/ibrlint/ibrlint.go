// Package ibrlint carries the shared machinery of the IBR protocol
// analyzers: package scoping, call-site classification against the
// reservation API (core.Scheme, core.Ptr, mem.Pool), and the
// //ibrlint:ignore escape hatch.
//
// The analyzers match protocol calls by method name plus declaring-package
// suffix ("internal/core", "internal/mem") rather than by type identity, so
// the same analyzers run unchanged over this repository and over the golden
// packages under internal/analysis/testdata (whose stub packages reuse the
// real import-path suffixes).
package ibrlint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/types/typeutil"
)

// CorePkg, MemPkg, and GuardPkg are the import-path suffixes of the
// packages that define the reservation protocol surface: the raw scheme
// API, the allocator, and the Guarded[T] facade layered over both.
const (
	CorePkg  = "internal/core"
	MemPkg   = "internal/mem"
	GuardPkg = "internal/guard"
)

// PkgIs reports whether path is suffix or ends in "/"+suffix.
func PkgIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// PkgInProtocol reports whether path belongs to the protocol implementation
// itself (internal/core or internal/mem), including their external test
// packages ("..._test").
func PkgInProtocol(path string) bool {
	trimmed := strings.TrimSuffix(path, "_test")
	return PkgIs(trimmed, CorePkg) || PkgIs(trimmed, MemPkg)
}

// MethodCallee resolves call to the statically-known method it invokes
// (interface or concrete). It returns nil for non-methods, builtins, and
// dynamic calls through function values.
func MethodCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fn, ok := typeutil.Callee(info, call).(*types.Func)
	if !ok || fn.Signature().Recv() == nil {
		return nil
	}
	return fn
}

// IsMethod reports whether fn is a method named name declared in a package
// whose import path ends in pkgSuffix.
func IsMethod(fn *types.Func, pkgSuffix string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || !PkgIs(fn.Pkg().Path(), pkgSuffix) {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// CoreCall returns the invoked method if call invokes a method with one of
// the given names declared in internal/core (the Scheme interface, the
// concrete schemes, or Ptr), else nil.
func CoreCall(info *types.Info, call *ast.CallExpr, names ...string) *types.Func {
	if fn := MethodCallee(info, call); IsMethod(fn, CorePkg, names...) {
		return fn
	}
	return nil
}

// MemCall is CoreCall for methods declared in internal/mem (Pool).
func MemCall(info *types.Info, call *ast.CallExpr, names ...string) *types.Func {
	if fn := MethodCallee(info, call); IsMethod(fn, MemPkg, names...) {
		return fn
	}
	return nil
}

// GuardCall is CoreCall for methods declared in internal/guard (the
// Guarded[T]/Guard[T] facade).
func GuardCall(info *types.Info, call *ast.CallExpr, names ...string) *types.Func {
	if fn := MethodCallee(info, call); IsMethod(fn, GuardPkg, names...) {
		return fn
	}
	return nil
}

// IsHandleType reports whether t is mem.Handle (by name plus import-path
// suffix, so the testdata stub qualifies too).
func IsHandleType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Handle" && obj.Pkg() != nil && PkgIs(obj.Pkg().Path(), MemPkg)
}

// PkgFuncCall returns the invoked function if call invokes a PACKAGE-LEVEL
// function (no receiver) with one of the given names declared in a package
// whose import path ends in pkgSuffix, else nil. The transfer helpers
// (core.AdoptRetired, core.ClearReservation) are package functions, which
// MethodCallee deliberately ignores.
func PkgFuncCall(info *types.Info, call *ast.CallExpr, pkgSuffix string, names ...string) *types.Func {
	fn, ok := typeutil.Callee(info, call).(*types.Func)
	if !ok || fn.Signature().Recv() != nil {
		return nil
	}
	if fn.Pkg() == nil || !PkgIs(fn.Pkg().Path(), pkgSuffix) {
		return nil
	}
	for _, n := range names {
		if fn.Name() == n {
			return fn
		}
	}
	return nil
}

// AllocCall reports whether call is the allocator-level Alloc — the
// two-result (Handle, bool) form of mem.Pool / core.Memory — as opposed to
// the one-result Scheme.Alloc that stamps the birth epoch.
func AllocCall(info *types.Info, call *ast.CallExpr) bool {
	fn := MethodCallee(info, call)
	if fn == nil || fn.Name() != "Alloc" {
		return false
	}
	if !IsMethod(fn, CorePkg, "Alloc") && !IsMethod(fn, MemPkg, "Alloc") {
		return false
	}
	return fn.Signature().Results().Len() == 2
}

// FuncLitBindings returns the variables in root that are ever bound to a
// function literal — the recursive-walk closure idiom (var walk func(...);
// walk = func(...){...}). A call through such a variable invokes code the
// analyzers can see (closures are analyzed standalone), so the visitor-
// callback rules exempt them.
func FuncLitBindings(info *types.Info, root ast.Node) map[types.Object]bool {
	bound := make(map[types.Object]bool)
	bind := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		if obj := info.Defs[id]; obj != nil {
			bound[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			bound[obj] = true
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if _, ok := ast.Unparen(r).(*ast.FuncLit); ok && i < len(n.Lhs) {
					bind(n.Lhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, r := range n.Values {
				if _, ok := ast.Unparen(r).(*ast.FuncLit); ok && i < len(n.Names) {
					bind(n.Names[i])
				}
			}
		}
		return true
	})
	return bound
}

// VisitorCall reports whether call invokes an opaque function value — a
// caller-supplied visitor callback parameter, a function-typed field, or a
// stored function — as opposed to a statically known function or method, a
// builtin, a conversion, a literal invoked in place, or a closure bound in
// locals (see FuncLitBindings). The range-callback rules key on these:
// whatever crosses into such a call runs code the analyzers cannot see, so
// a handle argument may be retained past the reservation bracket.
func VisitorCall(info *types.Info, call *ast.CallExpr, locals map[types.Object]bool) bool {
	fun := ast.Unparen(call.Fun)
	if _, ok := fun.(*ast.FuncLit); ok {
		return false // body visible at the call site, analyzed standalone
	}
	switch obj := typeutil.Callee(info, call).(type) {
	case *types.Var:
		if locals[obj] {
			return false
		}
		_, ok := obj.Type().Underlying().(*types.Signature)
		return ok
	case nil:
		// Not a named object: a conversion, a type expression, or a call
		// through a computed function value (f()(h), m[k](h)).
		tv, ok := info.Types[fun]
		if !ok || !tv.IsValue() {
			return false
		}
		_, ok = tv.Type.Underlying().(*types.Signature)
		return ok
	default:
		return false // *types.Func (static call) or *types.Builtin
	}
}
