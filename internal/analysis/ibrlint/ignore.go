package ibrlint

import (
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// IgnorePrefix is the comment prefix of the suppression directive. A valid
// directive is "//ibrlint:ignore <reason>" — the reason is mandatory; a bare
// //ibrlint:ignore suppresses nothing and is itself flagged by the
// ibrdirective analyzer.
const IgnorePrefix = "//ibrlint:ignore"

// DirectiveReason splits an //ibrlint: comment into its verb and reason.
// ok is false when text is not an ibrlint directive at all.
func DirectiveReason(text string) (verb, reason string, ok bool) {
	const prefix = "//ibrlint:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	verb, reason, _ = strings.Cut(rest, " ")
	return verb, strings.TrimSpace(reason), true
}

// Reporter filters an analyzer's diagnostics through the //ibrlint:ignore
// directives of the package being analyzed. A finding is suppressed when a
// valid directive appears on the same line, on the line immediately above,
// or in the doc comment of the enclosing function declaration.
//
// The directive index lives in the shared Directives result so that every
// suppression is recorded against the directive that performed it;
// ibrdirective reports the directives that never suppressed anything.
type Reporter struct {
	pass *analysis.Pass
	set  *DirectiveSet
}

// NewReporter returns a Reporter backed by the pass's Directives result.
// The analyzer must list ibrlint.Directives in its Requires; if it does not
// (or the harness did not run it), the directives are collected locally and
// usage tracking is lost for the staleness check.
func NewReporter(pass *analysis.Pass) *Reporter {
	set, ok := pass.ResultOf[Directives].(*DirectiveSet)
	if !ok {
		res, _ := collectDirectives(pass)
		set = res.(*DirectiveSet)
	}
	return &Reporter{pass: pass, set: set}
}

// Suppressed reports whether a finding at pos is covered by a directive.
func (r *Reporter) Suppressed(pos token.Pos) bool {
	return r.set.Suppressed(pos)
}

// Reportf reports a diagnostic at pos unless it is suppressed.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	if r.Suppressed(pos) {
		return
	}
	r.pass.Reportf(pos, format, args...)
}

// TestFile reports whether the file containing pos is a _test.go file. The
// protocol analyzers exempt test files: tests deliberately stage quiescent
// states, stalled reservations, and direct frees.
func TestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}
