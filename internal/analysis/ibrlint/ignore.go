package ibrlint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// IgnorePrefix is the comment prefix of the suppression directive. A valid
// directive is "//ibrlint:ignore <reason>" — the reason is mandatory; a bare
// //ibrlint:ignore suppresses nothing and is itself flagged by the
// ibrdirective analyzer.
const IgnorePrefix = "//ibrlint:ignore"

// DirectiveReason splits an //ibrlint: comment into its verb and reason.
// ok is false when text is not an ibrlint directive at all.
func DirectiveReason(text string) (verb, reason string, ok bool) {
	const prefix = "//ibrlint:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	verb, reason, _ = strings.Cut(rest, " ")
	return verb, strings.TrimSpace(reason), true
}

// validIgnore reports whether text is an ignore directive carrying a reason.
func validIgnore(text string) bool {
	verb, reason, ok := DirectiveReason(text)
	return ok && verb == "ignore" && reason != ""
}

// Reporter filters an analyzer's diagnostics through the //ibrlint:ignore
// directives of the package being analyzed. A finding is suppressed when a
// valid directive appears on the same line, on the line immediately above,
// or in the doc comment of the enclosing function declaration.
type Reporter struct {
	pass  *analysis.Pass
	lines map[string]map[int]bool // filename -> lines carrying a directive
	funcs []funcRange             // functions whose doc comment carries one
}

type funcRange struct{ pos, end token.Pos }

// NewReporter scans pass.Files for ignore directives.
func NewReporter(pass *analysis.Pass) *Reporter {
	r := &Reporter{pass: pass, lines: make(map[string]map[int]bool)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !validIgnore(c.Text) {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				m := r.lines[p.Filename]
				if m == nil {
					m = make(map[int]bool)
					r.lines[p.Filename] = m
				}
				m[p.Line] = true
			}
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if validIgnore(c.Text) {
					r.funcs = append(r.funcs, funcRange{fd.Pos(), fd.End()})
					break
				}
			}
		}
	}
	return r
}

// Suppressed reports whether a finding at pos is covered by a directive.
func (r *Reporter) Suppressed(pos token.Pos) bool {
	p := r.pass.Fset.Position(pos)
	if m := r.lines[p.Filename]; m != nil && (m[p.Line] || m[p.Line-1]) {
		return true
	}
	for _, fr := range r.funcs {
		if fr.pos <= pos && pos < fr.end {
			return true
		}
	}
	return false
}

// Reportf reports a diagnostic at pos unless it is suppressed.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	if r.Suppressed(pos) {
		return
	}
	r.pass.Reportf(pos, format, args...)
}

// TestFile reports whether the file containing pos is a _test.go file. The
// protocol analyzers exempt test files: tests deliberately stage quiescent
// states, stalled reservations, and direct frees.
func TestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}
