package ibrlint

import (
	"go/ast"
	"go/token"
	"reflect"
	"strings"
	"sync"

	"golang.org/x/tools/go/analysis"
)

var directiveSetType = reflect.TypeOf((*DirectiveSet)(nil))

// Directives is a shared sub-analyzer every protocol analyzer Requires: it
// collects the package's //ibrlint: control comments once and hands out a
// *DirectiveSet. Routing all suppression checks through one set lets
// ibrdirective, which Requires the whole suite and therefore runs last,
// report the directives that suppressed nothing — a stale ignore is a latent
// protocol violation waiting to be pasted above real code.
var Directives = &analysis.Analyzer{
	Name:       "ibrlintdirectives",
	Doc:        "collect //ibrlint: directives and track which ones suppress a diagnostic",
	Run:        collectDirectives,
	ResultType: directiveSetType,
}

// Directive is one //ibrlint: control comment.
type Directive struct {
	Pos    token.Pos
	File   string
	Line   int
	Verb   string
	Reason string
	Test   bool // sits in a _test.go file
	// fnPos/fnEnd bound the enclosing function when the directive sits on a
	// func's doc comment (zero otherwise): such a directive suppresses
	// findings anywhere in that function.
	fnPos, fnEnd token.Pos
	used         bool
}

// Valid reports whether d is an ignore directive carrying a reason — the
// only form that suppresses anything.
func (d *Directive) Valid() bool { return d.Verb == "ignore" && d.Reason != "" }

// DirectiveSet indexes a package's directives and records which of them were
// consulted successfully by some analyzer's Reporter. Analyzers run
// concurrently under unitchecker, so usage marking is mutex-guarded.
type DirectiveSet struct {
	fset *token.FileSet

	mu    sync.Mutex
	all   []*Directive
	lines map[string]map[int]*Directive // valid ignores by file -> line
	funcs []*Directive                  // valid ignores on func doc comments
}

func collectDirectives(pass *analysis.Pass) (any, error) {
	s := &DirectiveSet{fset: pass.Fset, lines: make(map[string]map[int]*Directive)}
	for _, f := range pass.Files {
		// Map doc-comment positions to their function's extent so a
		// directive in a doc comment covers the whole declaration.
		docRange := make(map[*ast.Comment][2]token.Pos)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				docRange[c] = [2]token.Pos{fd.Pos(), fd.End()}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, reason, ok := DirectiveReason(c.Text)
				if !ok {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				d := &Directive{
					Pos:    c.Pos(),
					File:   p.Filename,
					Line:   p.Line,
					Verb:   verb,
					Reason: reason,
					Test:   strings.HasSuffix(p.Filename, "_test.go"),
				}
				if r, onDoc := docRange[c]; onDoc {
					d.fnPos, d.fnEnd = r[0], r[1]
				}
				s.all = append(s.all, d)
				if !d.Valid() {
					continue
				}
				m := s.lines[d.File]
				if m == nil {
					m = make(map[int]*Directive)
					s.lines[d.File] = m
				}
				m[d.Line] = d
				if d.fnPos != token.NoPos {
					s.funcs = append(s.funcs, d)
				}
			}
		}
	}
	return s, nil
}

// Suppressed reports whether a finding at pos is covered by a valid
// directive — same line, the line immediately above, or the doc comment of
// the enclosing function — and marks the covering directive as used.
func (s *DirectiveSet) Suppressed(pos token.Pos) bool {
	p := s.fset.Position(pos)
	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.lines[p.Filename]; m != nil {
		if d := m[p.Line]; d != nil {
			d.used = true
			return true
		}
		if d := m[p.Line-1]; d != nil {
			d.used = true
			return true
		}
	}
	for _, d := range s.funcs {
		if d.fnPos <= pos && pos < d.fnEnd {
			d.used = true
			return true
		}
	}
	return false
}

// All returns every directive in the package, valid or not.
func (s *DirectiveSet) All() []*Directive {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.all
}

// Used reports whether d suppressed at least one finding in this run.
func (s *DirectiveSet) Used(d *Directive) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return d.used
}
