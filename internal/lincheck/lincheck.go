// Package lincheck is a small linearizability checker for the key-value
// structures in this repository. Because keys are independent (a map is a
// product of per-key set-registers), a concurrent history decomposes into
// one history per key, each over a two-state object:
//
//	state ∈ {absent, present}
//	Insert → ok iff absent (then present)
//	Remove → ok iff present (then absent)
//	Get    → reports the state, never changes it
//	Range  → one scan-derived observation per key, same spec as Get
//	         (see Recorder.RecordRange for the scan-wide checks)
//
// CheckKey searches for a linearization of one key's history that respects
// real-time order (op A precedes op B iff A returned before B was invoked)
// and the sequential spec above, via depth-first search with memoization
// over (set of linearized ops, state). Histories are capped at 64 events
// per key so the memo key fits a machine word; callers record short
// windows (see Recorder) rather than whole runs.
//
// A use-after-free in a reclamation scheme shows up here as a stale read
// (Get observing a state no linearization allows) or a lost update — the
// precise symptoms SMR bugs produce.
package lincheck

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Kind is the operation type.
type Kind uint8

const (
	// Insert is a set-insert; OK means the key was absent.
	Insert Kind = iota
	// Remove is a set-remove; OK means the key was present.
	Remove
	// Get is a lookup; OK means the key was present.
	Get
	// Range is one key's observation extracted from a range scan: OK means
	// the scan returned the key, !OK means the scan covered the key's
	// interval but did not return it. Sequentially it behaves exactly like
	// Get; the distinct kind keeps scan-derived events identifiable in
	// violation reports. Scan-wide structural invariants (ordering,
	// duplicates, bounds) are checked by Recorder.RecordRange before any
	// event is emitted.
	Range
)

func (k Kind) String() string {
	switch k {
	case Insert:
		return "Insert"
	case Remove:
		return "Remove"
	case Range:
		return "Range"
	}
	return "Get"
}

// Event is one completed operation on one key.
type Event struct {
	Tid    int
	Kind   Kind
	Key    uint64
	OK     bool
	Invoke uint64 // global logical timestamp at invocation
	Return uint64 // global logical timestamp at response
}

func (e Event) String() string {
	return fmt.Sprintf("T%d %s(%d)=%v [%d,%d]", e.Tid, e.Kind, e.Key, e.OK, e.Invoke, e.Return)
}

// MaxEventsPerKey bounds the per-key history the checker accepts; the DFS
// memoizes on a 64-bit set of linearized operations.
const MaxEventsPerKey = 64

// Recorder collects events with a shared logical clock. One goroutine per
// tid; Begin/record pairs bracket each operation.
type Recorder struct {
	clock  atomic.Uint64
	events [][]Event // per tid, merged by Events()
}

// NewRecorder creates a recorder for the given number of thread ids.
func NewRecorder(threads int) *Recorder {
	return &Recorder{events: make([][]Event, threads)}
}

// Begin returns the invocation timestamp for an operation about to run.
func (r *Recorder) Begin() uint64 { return r.clock.Add(1) }

// Record appends a completed operation (stamped with a fresh response
// timestamp) to tid's log.
func (r *Recorder) Record(tid int, kind Kind, key uint64, ok bool, invoke uint64) {
	r.events[tid] = append(r.events[tid], Event{
		Tid: tid, Kind: kind, Key: key, OK: ok,
		Invoke: invoke, Return: r.clock.Add(1),
	})
}

// RecordRange validates and records one range-scan observation. got is the
// scan's returned key list, in return order; absentCandidates are keys the
// caller knows the workload drives (the scan's "universe") — each one in
// [from, to] and not in got is recorded as a negative observation.
//
// Two layers of checking happen. Structural invariants — keys strictly
// ascending (so no duplicates) and inside [from, to] — are scan-wide
// properties no linearization could excuse, so violations are returned as
// an error immediately and nothing is recorded. Everything semantic then
// rides the per-key decomposition: each returned key becomes Range(k)=true
// and each covered-but-missing candidate becomes Range(k)=false, all
// sharing the scan's [invoke, return] window. The checker then requires
// each key to have individually been in its observed state at some point
// during the scan — exactly the contract of a weakly consistent scan. A
// phantom (a returned key no history ever made present) or a lost key (a
// key present for the scan's whole window but not returned) surfaces as a
// per-key Violation.
func (r *Recorder) RecordRange(tid int, from, to uint64, got, absentCandidates []uint64, invoke uint64) error {
	for i, k := range got {
		if k < from || k > to {
			return fmt.Errorf("lincheck: range [%d,%d] returned out-of-bounds key %d at index %d", from, to, k, i)
		}
		if i > 0 && k <= got[i-1] {
			return fmt.Errorf("lincheck: range [%d,%d] not strictly ascending at index %d (%d after %d)", from, to, i, k, got[i-1])
		}
	}
	ret := r.clock.Add(1)
	seen := make(map[uint64]bool, len(got))
	for _, k := range got {
		seen[k] = true
		r.events[tid] = append(r.events[tid], Event{
			Tid: tid, Kind: Range, Key: k, OK: true, Invoke: invoke, Return: ret,
		})
	}
	for _, k := range absentCandidates {
		if k < from || k > to || seen[k] {
			continue
		}
		r.events[tid] = append(r.events[tid], Event{
			Tid: tid, Kind: Range, Key: k, OK: false, Invoke: invoke, Return: ret,
		})
	}
	return nil
}

// Events merges all thread logs.
func (r *Recorder) Events() []Event {
	var out []Event
	for _, evs := range r.events {
		out = append(out, evs...)
	}
	return out
}

// Result is a per-key verdict.
type Result int

const (
	// Linearizable: a valid linearization exists.
	Linearizable Result = iota
	// Violation: no linearization exists — a consistency bug.
	Violation
	// Inconclusive: the history exceeded MaxEventsPerKey, or the search
	// exceeded its step budget, and no verdict was reached.
	Inconclusive
)

func (r Result) String() string {
	switch r {
	case Linearizable:
		return "linearizable"
	case Violation:
		return "VIOLATION"
	}
	return "inconclusive"
}

// CheckKey decides whether one key's history (events for a single key,
// with initial state given by initiallyPresent) is linearizable.
func CheckKey(events []Event, initiallyPresent bool) Result {
	if len(events) == 0 {
		return Linearizable
	}
	if len(events) > MaxEventsPerKey {
		return Inconclusive
	}
	evs := append([]Event(nil), events...)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Invoke < evs[j].Invoke })

	n := len(evs)
	type memoKey struct {
		done  uint64
		state bool
	}
	memo := map[memoKey]bool{} // visited (done-set, state) pairs that failed
	steps := 0
	const maxSteps = 1 << 20 // DFS budget: beyond this, report Inconclusive

	var dfs func(done uint64, state bool) bool
	dfs = func(done uint64, state bool) bool {
		if done == (uint64(1)<<n)-1 {
			return true
		}
		if steps++; steps > maxSteps {
			panic(errBudget)
		}
		mk := memoKey{done, state}
		if memo[mk] {
			return false
		}
		// minResponse over not-yet-linearized ops: an op may linearize next
		// only if no pending op *returned* before it was invoked.
		minReturn := ^uint64(0)
		for i := 0; i < n; i++ {
			if done&(1<<i) == 0 && evs[i].Return < minReturn {
				minReturn = evs[i].Return
			}
		}
		for i := 0; i < n; i++ {
			if done&(1<<i) != 0 {
				continue
			}
			e := evs[i]
			if e.Invoke > minReturn {
				continue // would violate real-time order
			}
			next, okResult := apply(state, e)
			if !okResult {
				continue // result inconsistent with this state
			}
			if dfs(done|(1<<i), next) {
				return true
			}
		}
		memo[mk] = true
		return false
	}
	result := Violation
	func() {
		defer func() {
			if r := recover(); r != nil {
				if r == errBudget {
					result = Inconclusive
					return
				}
				panic(r)
			}
		}()
		if dfs(0, initiallyPresent) {
			result = Linearizable
		}
	}()
	return result
}

// errBudget is the sentinel used to unwind a DFS that exceeded its step
// budget; CheckKey converts it into Inconclusive.
var errBudget = fmt.Errorf("lincheck: search budget exceeded")

// apply runs the sequential spec: it returns the next state and whether
// the event's recorded result is possible from the given state.
func apply(present bool, e Event) (next bool, consistent bool) {
	switch e.Kind {
	case Insert:
		if e.OK {
			return true, !present
		}
		return present, present
	case Remove:
		if e.OK {
			return false, present
		}
		return present, !present
	default: // Get and Range observe without mutating
		return present, e.OK == present
	}
}

// Report is the outcome of checking a whole multi-key history.
type Report struct {
	Keys          int
	Linearizable  int
	Violations    []uint64 // keys that failed
	Inconclusive  int
	EventsChecked int
}

// Check partitions events by key and verifies each. initiallyPresent
// reports the pre-history state of a key (e.g. from the benchmark's
// prefill).
func Check(events []Event, initiallyPresent func(key uint64) bool) Report {
	byKey := map[uint64][]Event{}
	for _, e := range events {
		byKey[e.Key] = append(byKey[e.Key], e)
	}
	var rep Report
	rep.Keys = len(byKey)
	for key, evs := range byKey {
		switch CheckKey(evs, initiallyPresent(key)) {
		case Linearizable:
			rep.Linearizable++
			rep.EventsChecked += len(evs)
		case Violation:
			rep.Violations = append(rep.Violations, key)
		case Inconclusive:
			rep.Inconclusive++
		}
	}
	sort.Slice(rep.Violations, func(i, j int) bool { return rep.Violations[i] < rep.Violations[j] })
	return rep
}

// Err returns nil for a clean report and a descriptive error otherwise.
func (r Report) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("lincheck: %d key(s) not linearizable (first: %d)", len(r.Violations), r.Violations[0])
}
