package lincheck

import "testing"

// FuzzCheckKey fuzzes the checker with arbitrary small histories and
// verifies two sound metamorphic properties:
//
//  1. Permutation invariance: the verdict cannot depend on slice order
//     (the checker sorts internally).
//  2. Widening monotonicity: enlarging every operation's interval only
//     adds linearization flexibility, so a Linearizable history must stay
//     Linearizable after widening.
//
// (Note that *shrinking* histories is NOT sound: removing a successful
// insert from a linearizable history can orphan a later successful remove.)
func FuzzCheckKey(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, false)
	f.Add([]byte{9, 9, 9, 9, 9, 9}, true)
	f.Add([]byte{4, 0, 5, 1, 6, 2, 7}, false)
	f.Fuzz(func(t *testing.T, data []byte, initial bool) {
		if len(data) > 12 {
			data = data[:12]
		}
		var h []Event
		for i, b := range data {
			h = append(h, Event{
				Kind:   Kind(b % 3),
				Key:    1,
				OK:     b&4 != 0,
				Invoke: uint64(i*3 + 1 + int(b%2)),
				Return: uint64(i*3 + 3 + int(b%5)),
			})
		}
		res := CheckKey(h, initial)

		// Property 1: permutation invariance (reverse the slice).
		rev := make([]Event, len(h))
		for i := range h {
			rev[len(h)-1-i] = h[i]
		}
		if got := CheckKey(rev, initial); got != res {
			t.Fatalf("order dependence: %v vs %v", res, got)
		}

		// Property 2: widening monotonicity.
		if res == Linearizable {
			wide := make([]Event, len(h))
			for i, e := range h {
				e.Invoke = e.Invoke - 1
				e.Return = e.Return + 3
				wide[i] = e
			}
			if got := CheckKey(wide, initial); got == Violation {
				t.Fatalf("widening turned a linearizable history into a violation:\n%v", h)
			}
		}
	})
}
