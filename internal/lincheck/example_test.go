package lincheck_test

import (
	"fmt"

	"ibr/internal/lincheck"
)

// Example checks a tiny two-thread history: thread 0's insert overlaps
// thread 1's failed lookup (fine — the Get may linearize first), but a
// second Get that starts strictly after the insert returned must see the
// key.
func Example() {
	ok := []lincheck.Event{
		{Tid: 0, Kind: lincheck.Insert, Key: 9, OK: true, Invoke: 1, Return: 6},
		{Tid: 1, Kind: lincheck.Get, Key: 9, OK: false, Invoke: 2, Return: 4},
		{Tid: 1, Kind: lincheck.Get, Key: 9, OK: true, Invoke: 7, Return: 8},
	}
	fmt.Println(lincheck.CheckKey(ok, false))

	stale := []lincheck.Event{
		{Tid: 0, Kind: lincheck.Insert, Key: 9, OK: true, Invoke: 1, Return: 2},
		{Tid: 1, Kind: lincheck.Get, Key: 9, OK: false, Invoke: 3, Return: 4},
	}
	fmt.Println(lincheck.CheckKey(stale, false))

	// Output:
	// linearizable
	// VIOLATION
}
