package lincheck

import (
	"testing"
	"time"
)

// ev builds an event quickly for hand-written histories.
func ev(kind Kind, ok bool, invoke, ret uint64) Event {
	return Event{Kind: kind, Key: 1, OK: ok, Invoke: invoke, Return: ret}
}

func TestEmptyHistory(t *testing.T) {
	if got := CheckKey(nil, false); got != Linearizable {
		t.Fatalf("empty history: %v", got)
	}
}

func TestSequentialHistoryAccepted(t *testing.T) {
	h := []Event{
		ev(Insert, true, 1, 2),
		ev(Get, true, 3, 4),
		ev(Remove, true, 5, 6),
		ev(Get, false, 7, 8),
		ev(Remove, false, 9, 10),
		ev(Insert, true, 11, 12),
	}
	if got := CheckKey(h, false); got != Linearizable {
		t.Fatalf("valid sequential history rejected: %v", got)
	}
}

func TestSequentialViolationRejected(t *testing.T) {
	// Insert ok twice in a row with no remove: impossible.
	h := []Event{
		ev(Insert, true, 1, 2),
		ev(Insert, true, 3, 4),
	}
	if got := CheckKey(h, false); got != Violation {
		t.Fatalf("double successful insert accepted: %v", got)
	}
}

func TestStaleReadRejected(t *testing.T) {
	// Get=false strictly after a successful insert completed (and nothing
	// else ran): the classic use-after-free symptom.
	h := []Event{
		ev(Insert, true, 1, 2),
		ev(Get, false, 3, 4),
	}
	if got := CheckKey(h, false); got != Violation {
		t.Fatalf("stale read accepted: %v", got)
	}
}

func TestConcurrentOverlapUsesFlexibility(t *testing.T) {
	// Insert and Get overlap: the Get may linearize before or after, so
	// both results are acceptable.
	for _, getOK := range []bool{true, false} {
		h := []Event{
			ev(Insert, true, 1, 10),
			ev(Get, getOK, 2, 9),
		}
		if got := CheckKey(h, false); got != Linearizable {
			t.Fatalf("overlapping Get=%v rejected: %v", getOK, got)
		}
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// Two sequential Gets around a concurrent Remove: present→absent is
	// fine, absent→present is not (time travel).
	good := []Event{
		ev(Remove, true, 1, 20),
		ev(Get, true, 2, 3),
		ev(Get, false, 4, 5),
	}
	if got := CheckKey(good, true); got != Linearizable {
		t.Fatalf("good history rejected: %v", got)
	}
	bad := []Event{
		ev(Remove, true, 1, 20),
		ev(Get, false, 2, 3),
		ev(Get, true, 4, 5), // resurrect with no insert: impossible
	}
	if got := CheckKey(bad, true); got != Violation {
		t.Fatalf("time-travel history accepted: %v", got)
	}
}

func TestInitialStateMatters(t *testing.T) {
	h := []Event{ev(Remove, true, 1, 2)}
	if got := CheckKey(h, true); got != Linearizable {
		t.Fatalf("remove of prefilled key rejected: %v", got)
	}
	if got := CheckKey(h, false); got != Violation {
		t.Fatalf("remove of absent key accepted: %v", got)
	}
}

func TestAlternationWithConcurrency(t *testing.T) {
	// Two threads race one insert and one remove, both succeeding, fully
	// overlapped: only insert-then-remove linearizes from absent.
	h := []Event{
		ev(Insert, true, 1, 10),
		ev(Remove, true, 2, 9),
	}
	if got := CheckKey(h, false); got != Linearizable {
		t.Fatalf("racing I/R rejected: %v", got)
	}
	// Same but from present: only remove-then-insert works; still fine.
	if got := CheckKey(h, true); got != Linearizable {
		t.Fatalf("racing I/R from present rejected: %v", got)
	}
}

func TestLostUpdateDetected(t *testing.T) {
	// T1 inserts (ok), then strictly later T2 inserts (ok) while no remove
	// ever succeeded — a lost update some SMR bugs produce via ABA.
	h := []Event{
		ev(Insert, true, 1, 2),
		ev(Get, true, 3, 4),
		ev(Insert, true, 5, 6),
	}
	if got := CheckKey(h, false); got != Violation {
		t.Fatalf("lost update accepted: %v", got)
	}
}

func TestFailedOpsCarryInformation(t *testing.T) {
	// A failed remove pins state=absent at its linearization point; with a
	// non-overlapping successful insert strictly before it, that is a
	// violation.
	h := []Event{
		ev(Insert, true, 1, 2),
		ev(Remove, false, 3, 4),
	}
	if got := CheckKey(h, false); got != Violation {
		t.Fatalf("failed-remove-after-insert accepted: %v", got)
	}
}

func TestOversizedHistoryInconclusive(t *testing.T) {
	var h []Event
	for i := 0; i < MaxEventsPerKey+1; i++ {
		h = append(h, ev(Get, false, uint64(2*i+1), uint64(2*i+2)))
	}
	if got := CheckKey(h, false); got != Inconclusive {
		t.Fatalf("oversized history: %v", got)
	}
}

func TestRecorderAndCheck(t *testing.T) {
	r := NewRecorder(2)
	t0 := r.Begin()
	r.Record(0, Insert, 7, true, t0)
	t1 := r.Begin()
	r.Record(1, Get, 7, true, t1)
	t2 := r.Begin()
	r.Record(0, Remove, 7, true, t2)
	t3 := r.Begin()
	r.Record(1, Get, 9, false, t3)

	rep := Check(r.Events(), func(uint64) bool { return false })
	if rep.Keys != 2 || rep.Linearizable != 2 || len(rep.Violations) != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Err() != nil {
		t.Fatal(rep.Err())
	}
}

func TestReportErr(t *testing.T) {
	r := NewRecorder(1)
	t0 := r.Begin()
	r.Record(0, Insert, 5, true, t0)
	t1 := r.Begin()
	r.Record(0, Insert, 5, true, t1)
	rep := Check(r.Events(), func(uint64) bool { return false })
	if rep.Err() == nil {
		t.Fatal("violation not reported")
	}
}

// TestDeepBacktracking: a history whose only valid linearization requires
// choosing a non-greedy order (the DFS must backtrack).
func TestDeepBacktracking(t *testing.T) {
	// From absent: I1 [1,20] ok, R1 [2,19] ok, G [3,4] false.
	// Greedy by invocation would try I1 first, but then G (invoked at 3,
	// within real-time flexibility) must read present... The only valid
	// order is G(false), I1, R1.
	h := []Event{
		ev(Insert, true, 1, 20),
		ev(Remove, true, 2, 19),
		ev(Get, false, 3, 4),
	}
	if got := CheckKey(h, false); got != Linearizable {
		t.Fatalf("backtracking history rejected: %v", got)
	}
}

// TestGeneratedValidHistoriesAccepted_Quick builds histories by simulating
// a true sequential execution and then stretching each operation's
// interval backwards/forwards without crossing its neighbors' linearization
// points — every such history is linearizable by construction, and the
// checker must accept all of them.
func TestGeneratedValidHistoriesAccepted_Quick(t *testing.T) {
	rng := func(seed int64) func(n int) int {
		s := uint64(seed)*0x9E3779B97F4A7C15 + 1
		return func(n int) int {
			s += 0x9E3779B97F4A7C15
			z := s
			z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
			z = (z ^ (z >> 27)) * 0x94D049BB133111EB
			return int((z ^ (z >> 31)) % uint64(n))
		}
	}
	for seed := int64(0); seed < 200; seed++ {
		r := rng(seed)
		n := 3 + r(10)
		present := r(2) == 0
		initial := present
		// Linearization points at 10, 20, 30, ...; intervals stretch up to
		// ±9 around them, so adjacent ops may overlap but never swap.
		var h []Event
		for i := 0; i < n; i++ {
			point := uint64((i + 1) * 20)
			var e Event
			switch r(3) {
			case 0:
				e = Event{Kind: Insert, Key: 1, OK: !present}
				if !present {
					present = true
				}
			case 1:
				e = Event{Kind: Remove, Key: 1, OK: present}
				if present {
					present = false
				}
			default:
				e = Event{Kind: Get, Key: 1, OK: present}
			}
			e.Invoke = point - uint64(r(15)) // ±15 around points 20 apart: real overlap
			e.Return = point + uint64(r(15))
			h = append(h, e)
		}
		if got := CheckKey(h, initial); got != Linearizable {
			t.Fatalf("seed %d: generated-valid history rejected: %v\n%v", seed, got, h)
		}
	}
}

// TestSearchBudget: a maximally-overlapping history with a huge state
// space must terminate promptly with a sound verdict (Linearizable or
// Inconclusive — never a spurious Violation, and never a hang).
func TestSearchBudget(t *testing.T) {
	var h []Event
	// 60 fully-overlapping successful inserts and removes: all intervals
	// [1, 1000], so every permutation is real-time-admissible.
	for i := 0; i < 30; i++ {
		h = append(h, ev(Insert, true, 1, 1000), ev(Remove, true, 1, 1000))
	}
	start := time.Now()
	r := CheckKey(h, false)
	if r == Violation {
		t.Fatalf("alternating I/R history is linearizable; got %v", r)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("CheckKey took %v; budget did not bound the search", time.Since(start))
	}
}

// TestRecordRangeStructural: disorder, duplicates, and out-of-bounds keys
// in a scan result are scan-wide protocol bugs, rejected before any event
// is recorded.
func TestRecordRangeStructural(t *testing.T) {
	cases := []struct {
		name     string
		from, to uint64
		got      []uint64
		wantErr  bool
	}{
		{"empty", 10, 20, nil, false},
		{"ascending", 10, 20, []uint64{10, 15, 20}, false},
		{"duplicate", 10, 20, []uint64{10, 15, 15}, true},
		{"descending", 10, 20, []uint64{15, 10}, true},
		{"below", 10, 20, []uint64{9, 15}, true},
		{"above", 10, 20, []uint64{15, 21}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := NewRecorder(1)
			inv := rec.Begin()
			err := rec.RecordRange(0, c.from, c.to, c.got, nil, inv)
			if (err != nil) != c.wantErr {
				t.Fatalf("RecordRange(%v) err = %v, wantErr %v", c.got, err, c.wantErr)
			}
			if c.wantErr && len(rec.Events()) != 0 {
				t.Fatal("rejected scan still recorded events")
			}
			if !c.wantErr && len(rec.Events()) != len(c.got) {
				t.Fatalf("recorded %d events, want %d", len(rec.Events()), len(c.got))
			}
		})
	}
}

// TestRangePhantomRejected: a scan returning a key whose history never
// made it present is a phantom — the per-key check must reject it.
func TestRangePhantomRejected(t *testing.T) {
	rec := NewRecorder(2)
	// Key 5 is inserted and removed, sequentially. A later scan that still
	// returns key 5 observed freed memory.
	t0 := rec.Begin()
	rec.Record(0, Insert, 5, true, t0)
	t1 := rec.Begin()
	rec.Record(0, Remove, 5, true, t1)
	t2 := rec.Begin()
	if err := rec.RecordRange(1, 0, 10, []uint64{5}, nil, t2); err != nil {
		t.Fatal(err)
	}
	rep := Check(rec.Events(), func(uint64) bool { return false })
	if rep.Err() == nil {
		t.Fatal("phantom key in a range scan accepted")
	}
}

// TestRangeLostKeyRejected: a key continuously present across the scan's
// whole window must be returned; a scan that skips it lost an entry.
func TestRangeLostKeyRejected(t *testing.T) {
	rec := NewRecorder(2)
	t0 := rec.Begin()
	rec.Record(0, Insert, 7, true, t0)
	t1 := rec.Begin()
	// The scan covers [0,10], key 7 is present and untouched, yet absent
	// from the result. absentCandidates turns that absence into an event.
	if err := rec.RecordRange(1, 0, 10, nil, []uint64{7, 50}, t1); err != nil {
		t.Fatal(err)
	}
	rep := Check(rec.Events(), func(uint64) bool { return false })
	if rep.Err() == nil {
		t.Fatal("lost key in a range scan accepted")
	}
	// Candidate 50 lies outside [0,10]: no event, no spurious violation.
	for _, e := range rec.Events() {
		if e.Key == 50 {
			t.Fatal("out-of-interval candidate recorded")
		}
	}
}

// TestRangeConcurrentFlexibility: a key inserted concurrently with the
// scan may legitimately be either in or out of the result.
func TestRangeConcurrentFlexibility(t *testing.T) {
	for _, returned := range []bool{true, false} {
		rec := NewRecorder(2)
		scanInv := rec.Begin()
		insInv := rec.Begin()
		rec.Record(0, Insert, 3, true, insInv)
		var got []uint64
		if returned {
			got = []uint64{3}
		}
		if err := rec.RecordRange(1, 0, 10, got, []uint64{3}, scanInv); err != nil {
			t.Fatal(err)
		}
		rep := Check(rec.Events(), func(uint64) bool { return false })
		if err := rep.Err(); err != nil {
			t.Fatalf("concurrent insert, returned=%v: %v", returned, err)
		}
	}
}
