package core

import (
	"sync/atomic"

	"ibr/internal/mem"
)

// DEBRA is a neutralization-based EBR in the style of Brown's DEBRA+
// ("Reclaiming memory for lock-free data structures: there has to be a
// better way"; see PAPERS.md). The data path is exactly EBR — reserve the
// epoch at StartOp, uninstrumented reads and writes, limbo-bag rotation on
// retire — so it keeps EBR's speed. The difference is what happens when a
// thread stalls: instead of waiting for the stalled reservation (EBR) or
// paying per-access instrumentation to ignore it (the IBR family), DEBRA+
// *neutralizes* the thread — forcibly ends its operation from outside and
// adopts its limbo bags — and the neutralized thread detects the signal and
// restarts its operation rather than touching memory that may since have
// been freed.
//
// DEBRA+ delivers the neutralization with a POSIX signal, whose handler
// runs a sigsetjmp/siglongjmp restart. Go offers no safe analogue, but this
// repository already has the machinery the signal stands in for: the
// serving layer's lease/quarantine protocol detects a stalled or dead tid
// (parked-in-stall or failed heartbeat — evidence the goroutine is not
// mid-dereference), then calls ClearReservation + AdoptRetired. DEBRA's
// ClearReservation override is the signal handler: it clears the epoch
// reservation AND latches a per-tid neutralized flag. The StartOp
// neutralize-check is the sigsetjmp site: the next operation on that tid
// consumes the flag before publishing a fresh reservation, so the revoked
// thread resumes only at an operation boundary with a new epoch — it can
// never carry a pointer read under the revoked reservation across the
// neutralization, which is the safety argument spelled out in DESIGN.md §8.
//
// Limbo bags: DEBRA segregates retired nodes into per-epoch bags and frees
// whole bags once their epoch is safely behind every reservation. Here the
// single retire list ordered by retire epoch IS that rotation — each run of
// equal retire epochs is one bag, rotation is the epoch advance inside the
// shared retire helper, and the prefix scan (free everything retired before
// the minimum reservation) frees exactly the sequence of expired bags
// without examining the live ones. BagRotations counts the boundaries for
// the telemetry.
//
// Robust() is false by the paper's own accounting: neutralization needs an
// external stall detector (the signal there, the lease watchdog here), so
// plain DEBRA — the scheme alone, no serving layer — is EBR and inherits
// its unbounded worst case. The chaos suite demonstrates the recovered
// bound end to end: a quarantined DEBRA staller's backlog drains to zero
// while the stall is still running.
type DEBRA struct {
	base
	neut []neutFlag
	bags []bagState
	// signaled counts ClearReservation neutralizations delivered; observed
	// counts those consumed by a later StartOp on the same tid. observed ≤
	// signaled always; they converge as neutralized tids are re-leased.
	signaled atomic.Uint64
	observed atomic.Uint64
}

// neutFlag is one tid's neutralization latch, padded so the watchdog
// writing one tid's flag never invalidates a neighbour's StartOp line.
type neutFlag struct {
	_ [64]byte
	v atomic.Bool
	_ [63]byte
}

// bagState tracks tid's current limbo-bag epoch to count rotations. Only
// tid's own goroutine touches it (Retire path), hence no atomics.
type bagState struct {
	_         [64]byte
	cur       uint64 // retire epoch of the open bag; 0 = none yet
	rotations uint64
	_         [48]byte
}

// NewDEBRA builds a neutralization-based epoch reclaimer.
func NewDEBRA(m Memory, o Options) *DEBRA {
	o = o.withDefaults()
	return &DEBRA{
		base: newBase("debra", m, o),
		neut: make([]neutFlag, o.Threads),
		bags: make([]bagState, o.Threads),
	}
}

// StartOp is EBR's reservation post with the neutralize-check in front:
// consume a pending neutralization before publishing the new epoch. A
// neutralized thread therefore restarts cleanly — its old reservation is
// already cleared, any pointers it read under it are dead to it, and the
// fresh epoch protects everything the restarted operation will read.
func (s *DEBRA) StartOp(tid int) {
	if s.neut[tid].v.Swap(false) {
		s.observed.Add(1)
	}
	e := s.clock.Now()
	s.res.At(tid).Set(e, e)
}

// EndOp clears the reservation.
func (s *DEBRA) EndOp(tid int) { s.res.At(tid).Clear() }

// RestartOp renews the reservation (and, like StartOp, consumes a pending
// neutralization — a restart is an operation boundary).
func (s *DEBRA) RestartOp(tid int) { s.StartOp(tid) }

// Neutralized reports whether tid has a delivered-but-unconsumed
// neutralization pending.
func (s *DEBRA) Neutralized(tid int) bool { return s.neut[tid].v.Load() }

// NeutralizeStats returns (signaled, observed): neutralizations delivered
// by ClearReservation and those consumed by a subsequent StartOp.
func (s *DEBRA) NeutralizeStats() (signaled, observed uint64) {
	return s.signaled.Load(), s.observed.Load()
}

// BagRotations returns the number of limbo-bag boundaries crossed: retires
// that opened a new epoch's bag. It is the telemetry face of the rotation —
// the reclamation itself rides the ordered retire list's prefix scans.
func (s *DEBRA) BagRotations() uint64 {
	var n uint64
	for i := range s.bags {
		n += s.bags[i].rotations
	}
	return n
}

// Alloc allocates without epoch stamping: like EBR, DEBRA keeps no birth
// epochs (the reservation covers everything reachable in the operation).
func (s *DEBRA) Alloc(tid int) mem.Handle { return s.allocPlain(tid, s.Drain) }

// Retire drops the block into tid's current limbo bag: the shared retire
// helper stamps the retire epoch and appends in epoch order, so the bag is
// the maximal run of equal stamps; a stamp differing from the open bag's is
// a rotation.
func (s *DEBRA) Retire(tid int, h mem.Handle) {
	b := &s.bags[tid]
	if e := s.clock.Now(); e != b.cur {
		if b.cur != 0 {
			b.rotations++
		}
		b.cur = e
	}
	s.retire(tid, h, s.Drain)
}

// Read is an uninstrumented load, exactly EBR: the epoch reservation (or,
// after neutralization, the StartOp restart) is the whole protocol.
func (s *DEBRA) Read(tid, idx int, p *Ptr) mem.Handle { return p.Raw() }

// ReadRoot is Read.
func (s *DEBRA) ReadRoot(tid, idx int, p *Ptr) mem.Handle { return p.Raw() }

// Write is an uninstrumented store (plus the traced-span publish hook).
func (s *DEBRA) Write(tid int, p *Ptr, h mem.Handle) {
	p.setRaw(h)
	if s.obs != nil {
		s.publishSpan(tid, h)
	}
}

// CompareAndSwap is an uninstrumented CAS.
func (s *DEBRA) CompareAndSwap(tid int, p *Ptr, old, new mem.Handle) bool {
	if p.bits.CompareAndSwap(uint64(old), uint64(new)) {
		if s.obs != nil {
			s.publishSpan(tid, new)
		}
		return true
	}
	return false
}

// Drain frees the expired limbo bags: every block retired strictly before
// the minimum reservation. The bags are consecutive runs of the ordered
// retire list, so the prefix scan frees whole bags and stops at the first
// one still covered — O(freed+1), never a re-walk of the backlog.
func (s *DEBRA) Drain(tid int) {
	s.scanRetiredBefore(tid, s.res.MinLower())
}

// Robust is false for the scheme in isolation: neutralization requires an
// external stall detector. Paired with the serving layer's lease watchdog
// the bound is recovered operationally — see the resilience and chaos
// suites.
func (s *DEBRA) Robust() bool { return false }

// ClearReservation is the neutralization signal: clear tid's reservation
// so reclamation stops waiting on it, and latch the flag the next StartOp
// on that tid will consume. The caller (the quarantine path) must hold
// evidence the tid is not mid-operation on a CPU — parked in a stall or
// heartbeat-dead — which is the same precondition DEBRA+ discharges with
// the signal handler's synchronous restart.
func (s *DEBRA) ClearReservation(tid int) {
	s.neut[tid].v.Store(true)
	s.signaled.Add(1)
	s.base.ClearReservation(tid)
}
