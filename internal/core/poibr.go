package core

import "ibr/internal/mem"

// POIBR is persistent-object IBR, the paper's simplest scheme (Fig. 4,
// §3.1). It applies only to persistent data structures — all pointers but
// the root immutable — such as the Treiber stack or the Bonsai tree. A
// thread reserves the single epoch in which it reads the root; because
// every block reachable from that root was alive in that epoch, the
// reservation's intersection with each block's [birth, retire] interval
// protects the whole reachable snapshot.
//
// Only the root read is instrumented (a snapshot loop, like setting one
// hazard pointer); every interior read is a plain load. This is the
// cheapest robust scheme in the paper, bought by the immutability
// restriction.
type POIBR struct {
	base
}

// NewPOIBR builds a persistent-object IBR reclaimer.
func NewPOIBR(m Memory, o Options) *POIBR {
	return &POIBR{base: newBase("poibr", m, o)}
}

// StartOp posts the current epoch (Fig. 4 line 22). ReadRoot will re-post;
// this initial reservation covers allocations made before the root read.
func (s *POIBR) StartOp(tid int) {
	e := s.clock.Now()
	s.res.At(tid).Set(e, e)
}

// EndOp withdraws the reservation (Fig. 4 line 24).
func (s *POIBR) EndOp(tid int) { s.res.At(tid).Clear() }

// RestartOp renews the reservation; the operation must re-read the root.
func (s *POIBR) RestartOp(tid int) { s.StartOp(tid) }

// Alloc allocates, stamps the birth epoch, and advances the epoch every
// EpochFreq allocations (Fig. 4 lines 9–15).
func (s *POIBR) Alloc(tid int) mem.Handle { return s.allocEpochs(tid, s.Drain) }

// Retire stamps the retire epoch and appends to the retire list (Fig. 4
// lines 16–20).
func (s *POIBR) Retire(tid int, h mem.Handle) { s.retire(tid, h, s.Drain) }

// Read is a plain load: interior pointers of a persistent structure are
// immutable, so the root reservation already covers their targets.
func (s *POIBR) Read(tid, idx int, p *Ptr) mem.Handle { return p.Raw() }

// ReadRoot is the snapshot read of Fig. 4 lines 25–30: publish the epoch,
// read the root, and validate that the epoch did not change, guaranteeing
// the root's target was alive in the reserved epoch.
func (s *POIBR) ReadRoot(tid, idx int, p *Ptr) mem.Handle {
	r := s.res.At(tid)
	for {
		e := s.clock.Now()
		r.Set(e, e)
		h := mem.Handle(p.bits.Load())
		if s.clock.Now() == e {
			return h
		}
	}
}

// Write is an uninstrumented store (plus the traced-span publish hook).
func (s *POIBR) Write(tid int, p *Ptr, h mem.Handle) {
	p.setRaw(h)
	if s.obs != nil {
		s.publishSpan(tid, h)
	}
}

// CompareAndSwap is an uninstrumented CAS.
func (s *POIBR) CompareAndSwap(tid int, p *Ptr, old, new mem.Handle) bool {
	if p.bits.CompareAndSwap(uint64(old), uint64(new)) {
		if s.obs != nil {
			s.publishSpan(tid, new)
		}
		return true
	}
	return false
}

// Drain runs Fig. 4's empty(): free every block whose lifetime interval
// contains no reserved epoch, via the per-scan reservation summary.
func (s *POIBR) Drain(tid int) { s.scanIntervals(tid) }

// Robust is true (Theorem 2).
func (s *POIBR) Robust() bool { return true }
