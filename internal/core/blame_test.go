package core

import (
	"testing"

	"ibr/internal/mem"
	"ibr/internal/obs"
)

// TestPinnedBlameNamesStaller injects the paper's stalled-thread scenario
// and checks the blame attribution names the right culprit: blocks born
// before a parked reservation and retired after it conflict with exactly
// that reservation, so every kept block must be charged to the staller's
// tid — on the interval schemes via the conflict-witness search, and on EBR
// via the oldest-reservation argmin.
func TestPinnedBlameNamesStaller(t *testing.T) {
	const (
		threads = 3
		staller = 2
		blocks  = 64
	)
	for _, scheme := range []string{"tagibr", "ebr"} {
		t.Run(scheme, func(t *testing.T) {
			o := obs.NewSchemeObs(obs.SchemeObsConfig{Threads: threads})
			pool := mem.New[tnode](mem.Options[tnode]{Threads: threads, MaxSlots: 1 << 12})
			s, err := New(scheme, pool, Options{Threads: threads, EpochFreq: 4, EmptyFreq: 4, Obs: o})
			if err != nil {
				t.Fatal(err)
			}

			// Order matters: the blocks must be BORN before the staller's
			// reservation exists (birth ≤ its lower endpoint) and retired
			// after, otherwise they do not conflict with it and a correct
			// scan frees them unblamed.
			handles := make([]mem.Handle, 0, blocks)
			for i := 0; i < blocks; i++ {
				h := s.Alloc(0)
				if h.IsNil() {
					t.Fatal("pool exhausted")
				}
				handles = append(handles, h)
			}
			s.StartOp(staller) // parks a reservation at the current epoch
			for _, h := range handles {
				s.Retire(0, h)
			}
			s.Drain(0)

			if got := s.Unreclaimed(0); got == 0 {
				t.Fatalf("staller reservation pinned nothing; the scenario is broken")
			}
			top := o.PinnedBlame()
			if len(top) == 0 {
				t.Fatal("no blame recorded while memory is pinned")
			}
			if top[0].Tid != staller {
				t.Fatalf("top pinner = tid %d (%d blocks), want the staller tid %d; full table %+v",
					top[0].Tid, top[0].Blocks, staller, top)
			}
			if top[0].Blocks == 0 {
				t.Fatalf("staller blamed for zero blocks: %+v", top)
			}

			// Culprit leaves: the next scan finds no conflicts, frees, and
			// the blame table empties with it.
			s.EndOp(staller)
			s.Drain(0)
			if got := s.Unreclaimed(0); got != 0 {
				t.Fatalf("%d blocks survive after the staller left", got)
			}
			if left := o.PinnedBlame(); len(left) != 0 {
				t.Fatalf("stale blame after reclamation: %+v", left)
			}
		})
	}
}
