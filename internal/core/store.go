package core

// store.go: birth-epoch bucketed, structure-of-arrays storage for retired
// blocks. Every thread's retire backlog lives in a retireStore: buckets
// keyed by birth-epoch range (key = birth >> bucketShift), each holding its
// blocks' handles, birth epochs and retire epochs in three parallel arrays.
//
// The layout exists for the scans:
//
//   - The birth range of a bucket is bounded (its key fixes birth to a
//     2^shift-epoch window, and birthLo/birthHi track the exact bounds), and
//     within a bucket the retire epochs are sorted ascending (appends come
//     from a monotone global clock, and AdoptRetired merges by retire
//     epoch). The conflict test of Fig. 5 — ∃ interval: birth <= hi &&
//     retire >= lo — is monotone in the block's lifetime corner (a smaller
//     birth or a larger retire can only add conflicts), so ONE corner test
//     decides a whole bucket: if the most-protectable corner (birthHi,
//     firstRetire) is unprotected-by-every-interval... see the two corner
//     lemmas on scanSummarized in api.go.
//   - The residual per-block sweep inside a bucket is a linear pass over
//     packed []uint64 cache lines, not struct loads.
//
// The live window of a bucket is [start, len): EBR-style prefix frees
// advance start instead of memmoving the survivors, and maybeCompact
// re-rightsizes the arrays when the dead capacity (freed prefix plus append
// slack) dwarfs the live remainder — the fix for stall-grown backing arrays
// staying pinned after a quarantine drain.

import (
	"sort"

	"ibr/internal/mem"
)

// defaultBucketShift sets the birth-epoch width of one bucket to
// 2^5 = 32 epochs. At the paper's EpochFreq=150 cadence a bucket then spans
// ~4800 allocations per advancing thread — big enough that corner tests
// amortize, small enough that a reservation window only straddles a few
// buckets. Options.BucketShift overrides it (tests use extreme values).
const defaultBucketShift = 5

// Compaction gates: a bucket's arrays are reallocated to the live size when
// the capacity is at least storeCompactMin slots and at least
// storeCompactFactor times the live count. Below storeCompactMin the waste
// is bounded and not worth the copy.
const (
	storeCompactMin    = 1024
	storeCompactFactor = 4
)

// retireBucket is one birth-epoch bucket. handles, births and retires are
// parallel arrays; [start, len) is the live window; retires is sorted
// ascending over the live window.
type retireBucket struct {
	key     uint64 // birth >> bucketShift
	birthLo uint64 // min birth over live entries (conservative after frees)
	birthHi uint64 // max birth over live entries (conservative after frees)
	start   int
	handles []mem.Handle
	births  []uint64
	retires []uint64
}

// live returns the number of live entries.
func (bk *retireBucket) live() int { return len(bk.retires) - bk.start }

// firstRetire/lastRetire bound the live retire epochs (retires is sorted).
// Both require live() > 0.
func (bk *retireBucket) firstRetire() uint64 { return bk.retires[bk.start] }
func (bk *retireBucket) lastRetire() uint64  { return bk.retires[len(bk.retires)-1] }

// truncate shrinks the live window's upper end to w (entries [w, len) were
// freed or moved down by an in-place sweep).
func (bk *retireBucket) truncate(w int) {
	bk.handles = bk.handles[:w]
	bk.births = bk.births[:w]
	bk.retires = bk.retires[:w]
}

// maybeCompact reallocates the arrays to the live size when the dead
// capacity (freed prefix + append slack) exceeds the compaction gates, so a
// stall-grown backing array does not stay pinned after its backlog drains.
func (bk *retireBucket) maybeCompact() {
	n := bk.live()
	if cap(bk.retires) < storeCompactMin || cap(bk.retires) < storeCompactFactor*n {
		return
	}
	h := make([]mem.Handle, n)
	b := make([]uint64, n)
	r := make([]uint64, n)
	copy(h, bk.handles[bk.start:])
	copy(b, bk.births[bk.start:])
	copy(r, bk.retires[bk.start:])
	bk.handles, bk.births, bk.retires = h, b, r
	bk.start = 0
}

// retireStore is one thread's bucketed retire backlog. buckets is sorted by
// key; count is the total live entries across buckets. A single spare array
// set is recycled from the most recently emptied bucket so steady-state
// bucket churn (one bucket born and drained every 2^shift epochs) does not
// allocate three slices per generation.
type retireStore struct {
	buckets []retireBucket
	count   int
	hint    int // index of the bucket the last add landed in

	spareH []mem.Handle
	spareB []uint64
	spareR []uint64
}

// add appends one retired block. retire must be >= every live retire epoch
// already in its bucket (true for owner appends under a monotone clock).
func (st *retireStore) add(h mem.Handle, birth, retire uint64, shift uint) {
	key := birth >> shift
	bi := st.hint
	if bi >= len(st.buckets) || st.buckets[bi].key != key {
		i := sort.Search(len(st.buckets), func(i int) bool { return st.buckets[i].key >= key })
		if i == len(st.buckets) || st.buckets[i].key != key {
			st.buckets = append(st.buckets, retireBucket{})
			copy(st.buckets[i+1:], st.buckets[i:])
			nb := retireBucket{key: key, birthLo: birth, birthHi: birth}
			if st.spareR != nil {
				nb.handles, nb.births, nb.retires = st.spareH[:0], st.spareB[:0], st.spareR[:0]
				st.spareH, st.spareB, st.spareR = nil, nil, nil
			}
			st.buckets[i] = nb
		}
		bi = i
		st.hint = i
	}
	bk := &st.buckets[bi]
	if birth < bk.birthLo {
		bk.birthLo = birth
	}
	if birth > bk.birthHi {
		bk.birthHi = birth
	}
	bk.handles = append(bk.handles, h)
	bk.births = append(bk.births, birth)
	bk.retires = append(bk.retires, retire)
	st.count++
}

// recycle stashes an emptied bucket's arrays as the spare set (keeping the
// largest, but never one above storeCompactMin — a stall-grown array held as
// spare would be the same heap retention the compaction gates exist to
// prevent). The arrays may still be aliased by a pending whole-bucket free
// slice; that is safe because the store's owner finishes the scan (and the
// FreeBatch read) before its next add can touch the spare.
func (st *retireStore) recycle(bk *retireBucket) {
	if c := cap(bk.retires); c > cap(st.spareR) && c <= storeCompactMin {
		st.spareH, st.spareB, st.spareR = bk.handles[:0], bk.births[:0], bk.retires[:0]
	}
	bk.handles, bk.births, bk.retires = nil, nil, nil
}

// corners returns the global lifetime corners over all live entries:
// the minimum/maximum birth and the minimum/maximum retire epoch. Requires
// count > 0.
func (st *retireStore) corners() (birthLo, birthHi, retLo, retHi uint64) {
	birthLo, retLo = ^uint64(0), ^uint64(0)
	for i := range st.buckets {
		bk := &st.buckets[i]
		if bk.live() == 0 {
			continue
		}
		if bk.birthLo < birthLo {
			birthLo = bk.birthLo
		}
		if bk.birthHi > birthHi {
			birthHi = bk.birthHi
		}
		if f := bk.firstRetire(); f < retLo {
			retLo = f
		}
		if l := bk.lastRetire(); l > retHi {
			retHi = l
		}
	}
	return birthLo, birthHi, retLo, retHi
}

// takeAll removes every live entry and returns them sorted by retire epoch
// (Hyaline's seal; adoption-merged buckets keep per-bucket order, so a
// cross-bucket sort restores the global order the batch handoff wants).
func (st *retireStore) takeAll() []retiredBlock {
	out := make([]retiredBlock, 0, st.count)
	for i := range st.buckets {
		bk := &st.buckets[i]
		for k := bk.start; k < len(bk.retires); k++ {
			out = append(out, retiredBlock{h: bk.handles[k], birth: bk.births[k], retire: bk.retires[k]})
		}
		st.recycle(bk)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].retire < out[j].retire })
	st.buckets = st.buckets[:0]
	st.count = 0
	st.hint = 0
	return out
}

// snapshot returns a copy of every live entry sorted by retire epoch,
// without modifying the store (tests and diagnostics).
func (st *retireStore) snapshot() []retiredBlock {
	out := make([]retiredBlock, 0, st.count)
	for i := range st.buckets {
		bk := &st.buckets[i]
		for k := bk.start; k < len(bk.retires); k++ {
			out = append(out, retiredBlock{h: bk.handles[k], birth: bk.births[k], retire: bk.retires[k]})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].retire < out[j].retire })
	return out
}

// heldCap reports the total backing-array capacity (in entries) the store
// pins, including dead prefixes and append slack — the heap-retention
// metric the compaction regression test asserts on.
func (st *retireStore) heldCap() int {
	n := cap(st.spareR)
	for i := range st.buckets {
		n += cap(st.buckets[i].retires)
	}
	return n
}

// adopt merges every live entry of src into st, preserving the per-bucket
// sorted-by-retire invariant: same-key buckets are merged by retire epoch
// (two already-sorted sequences), distinct keys move wholesale. Returns the
// number of entries adopted; src is left empty.
func (st *retireStore) adopt(src *retireStore) int {
	moved := src.count
	if moved == 0 {
		return 0
	}
	if st.count == 0 {
		st.buckets, src.buckets = src.buckets, nil
	} else {
		a, b := st.buckets, src.buckets
		merged := make([]retireBucket, 0, len(a)+len(b))
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i].key < b[j].key:
				merged = append(merged, a[i])
				i++
			case b[j].key < a[i].key:
				merged = append(merged, b[j])
				j++
			default:
				merged = append(merged, mergeBuckets(&a[i], &b[j]))
				i++
				j++
			}
		}
		merged = append(merged, a[i:]...)
		merged = append(merged, b[j:]...)
		st.buckets = merged
		src.buckets = nil
	}
	st.count += moved
	st.hint = 0
	src.count = 0
	src.hint = 0
	return moved
}

// mergeBuckets merges two same-key buckets' live windows by retire epoch
// into a fresh bucket. Both inputs' arrays are released.
func mergeBuckets(a, b *retireBucket) retireBucket {
	na, nb := a.live(), b.live()
	out := retireBucket{
		key:     a.key,
		birthLo: minU64(a.birthLo, b.birthLo),
		birthHi: maxU64(a.birthHi, b.birthHi),
		handles: make([]mem.Handle, 0, na+nb),
		births:  make([]uint64, 0, na+nb),
		retires: make([]uint64, 0, na+nb),
	}
	i, j := a.start, b.start
	for i < len(a.retires) && j < len(b.retires) {
		if a.retires[i] <= b.retires[j] {
			out.handles = append(out.handles, a.handles[i])
			out.births = append(out.births, a.births[i])
			out.retires = append(out.retires, a.retires[i])
			i++
		} else {
			out.handles = append(out.handles, b.handles[j])
			out.births = append(out.births, b.births[j])
			out.retires = append(out.retires, b.retires[j])
			j++
		}
	}
	out.handles = append(out.handles, a.handles[i:]...)
	out.births = append(out.births, a.births[i:]...)
	out.retires = append(out.retires, a.retires[i:]...)
	out.handles = append(out.handles, b.handles[j:]...)
	out.births = append(out.births, b.births[j:]...)
	out.retires = append(out.retires, b.retires[j:]...)
	return out
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
