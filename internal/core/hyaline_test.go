package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"ibr/internal/mem"
)

// hyQuiet builds a Hyaline whose cadence never fires on its own, so tests
// seal batches explicitly via Drain.
func hyQuiet(t *testing.T, threads int) (*mem.Pool[tnode], *Hyaline) {
	t.Helper()
	pool, s := quietScheme(t, "hyaline", threads)
	return pool, s.(*Hyaline)
}

// TestHyalineBatchFreesOnLastLeave is the reference-count choreography: a
// batch handed to three active sessions must survive the first two leaves
// and free exactly at the third — no scan, no epoch, just the count.
func TestHyalineBatchFreesOnLastLeave(t *testing.T) {
	pool, s := hyQuiet(t, 4)
	for tid := 1; tid <= 3; tid++ {
		s.StartOp(tid)
	}
	const blocks = 8
	var hs []mem.Handle
	for i := 0; i < blocks; i++ {
		h := s.Alloc(0)
		if h.IsNil() {
			t.Fatal("pool exhausted")
		}
		pool.Get(h).key = uint64(i)
		hs = append(hs, h)
		s.Retire(0, h)
	}
	s.Drain(0) // seal: the batch is pushed to slots 1..3, refs = 3
	if got := s.Unreclaimed(0); got != blocks {
		t.Fatalf("Unreclaimed(0) = %d after seal, want %d in flight", got, blocks)
	}
	for _, tid := range []int{2, 1} {
		s.EndOp(tid)
		if got := s.Unreclaimed(0); got != blocks {
			t.Fatalf("batch freed after tid %d left with a session still active (Unreclaimed=%d)", tid, got)
		}
		// The blocks must still be readable by the remaining session.
		for i, h := range hs {
			if pool.Get(h).key != uint64(i) {
				t.Fatalf("block %d corrupted while still referenced", i)
			}
		}
	}
	s.EndOp(3) // last reference: the whole batch frees here
	if got := s.Unreclaimed(0); got != 0 {
		t.Fatalf("Unreclaimed(0) = %d after the last leave, want 0", got)
	}
	if live := pool.Stats().Live(); live != 0 {
		t.Fatalf("%d slots live after the last leave", live)
	}
}

// TestHyalineQuiescentSealFreesImmediately: with no active session, sealing
// must free the batch on the spot (the sealer holds the last "reference"
// via the bias) — this is what makes DrainAll at quiescence complete.
func TestHyalineQuiescentSealFreesImmediately(t *testing.T) {
	pool, s := hyQuiet(t, 4)
	for i := 0; i < 16; i++ {
		h := s.Alloc(0)
		if h.IsNil() {
			t.Fatal("pool exhausted")
		}
		s.Retire(0, h)
	}
	s.Drain(0)
	if got := s.Unreclaimed(0); got != 0 {
		t.Fatalf("Unreclaimed(0) = %d after quiescent seal, want 0", got)
	}
	if live := pool.Stats().Live(); live != 0 {
		t.Fatalf("%d slots live after quiescent seal", live)
	}
}

// TestHyalineInactiveSlotTakesNoReference: a session that ends before the
// seal must not receive the batch — only slots active at seal time hold
// references, so a quiescent-at-seal thread can never pin anything.
func TestHyalineInactiveSlotTakesNoReference(t *testing.T) {
	_, s := hyQuiet(t, 3)
	s.StartOp(1)
	s.EndOp(1) // active once, but inactive at seal time
	s.StartOp(2)
	for i := 0; i < 8; i++ {
		h := s.Alloc(0)
		if h.IsNil() {
			t.Fatal("pool exhausted")
		}
		s.Retire(0, h)
	}
	s.Drain(0) // only slot 2 takes a reference
	if got := s.Unreclaimed(0); got != 8 {
		t.Fatalf("Unreclaimed(0) = %d, want 8 in flight behind slot 2", got)
	}
	s.EndOp(2)
	if got := s.Unreclaimed(0); got != 0 {
		t.Fatalf("Unreclaimed(0) = %d after slot 2 left; slot 1's dead session pinned the batch", got)
	}
}

// TestHyalineRestartOpDropsReferences: RestartOp is a session boundary — it
// must release every batch handed to the session so far, exactly like the
// interval schemes' reservation renewal bounds a starving thread.
func TestHyalineRestartOpDropsReferences(t *testing.T) {
	_, s := hyQuiet(t, 2)
	s.StartOp(1)
	for i := 0; i < 8; i++ {
		h := s.Alloc(0)
		if h.IsNil() {
			t.Fatal("pool exhausted")
		}
		s.Retire(0, h)
	}
	s.Drain(0)
	if got := s.Unreclaimed(0); got != 8 {
		t.Fatalf("Unreclaimed(0) = %d, want 8 pinned by the active session", got)
	}
	s.RestartOp(1) // leave + re-enter: the old references drop
	if got := s.Unreclaimed(0); got != 0 {
		t.Fatalf("Unreclaimed(0) = %d after RestartOp, want 0", got)
	}
	s.EndOp(1)
}

// TestHyalineFreeMatchesRefCountOracle is the differential test in the
// spirit of TestScanSummarizedMatchesNaiveFullScan: over random interleaved
// seals and leaves, a naive oracle tracks each batch's reference set (the
// sessions active at its seal); a batch must be freed exactly when the last
// of those sessions has since left — never earlier, never later.
func TestHyalineFreeMatchesRefCountOracle(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		pool, s := hyQuiet(t, 5)
		rng := rand.New(rand.NewSource(seed))

		active := map[int]bool{} // sessions 1..4 currently active
		type oracleBatch struct {
			size int
			held map[int]bool // sessions that must leave before it frees
		}
		var pending []oracleBatch
		freedWant := 0
		retiredTotal := 0

		expectUnreclaimed := func() int {
			n := 0
			for _, b := range pending {
				n += b.size
			}
			return n
		}
		dropRefs := func(tid int) {
			kept := pending[:0]
			for _, b := range pending {
				delete(b.held, tid)
				if len(b.held) == 0 {
					freedWant += b.size
				} else {
					kept = append(kept, b)
				}
			}
			pending = kept
		}

		for step := 0; step < 400; step++ {
			switch rng.Intn(4) {
			case 0: // toggle a session
				tid := 1 + rng.Intn(4)
				if active[tid] {
					s.EndOp(tid)
					delete(active, tid)
					dropRefs(tid)
				} else {
					s.StartOp(tid)
					active[tid] = true
				}
			case 1, 2: // retire a few blocks on the sealer tid
				for i := 0; i < 1+rng.Intn(3); i++ {
					h := s.Alloc(0)
					if h.IsNil() {
						t.Fatal("pool exhausted")
					}
					s.Retire(0, h)
					retiredTotal++
				}
			default: // seal whatever tid 0 has accumulated
				n := s.ts[0].store.count
				if n == 0 {
					continue
				}
				s.Drain(0)
				if len(active) > 0 {
					held := make(map[int]bool, len(active))
					for tid := range active {
						held[tid] = true
					}
					pending = append(pending, oracleBatch{size: n, held: held})
				} else {
					freedWant += n
				}
			}
			unsealed := s.ts[0].store.count
			if got, want := s.Unreclaimed(0), unsealed+expectUnreclaimed(); got != want {
				t.Fatalf("seed %d step %d: Unreclaimed(0) = %d, oracle predicts %d", seed, step, got, want)
			}
		}
		// Quiesce: end every session, seal the remainder — all must free.
		for tid := range active {
			s.EndOp(tid)
			dropRefs(tid)
		}
		s.Drain(0)
		if got := s.Unreclaimed(0); got != 0 {
			t.Fatalf("seed %d: %d blocks unreclaimed at quiescence", seed, got)
		}
		st := pool.Stats()
		if got := st.Live(); got != 0 {
			t.Fatalf("seed %d: %d slots live at quiescence (retired %d)", seed, got, retiredTotal)
		}
	}
}

// TestHyalineConcurrentHandoffRace hammers the seal/enter/leave protocol
// under the race detector: one goroutine churns retire+seal while others
// cycle sessions and read a shared cell, with poison catching any
// premature free. The pool's double-free panic catches any duplicated
// reference drop.
func TestHyalineConcurrentHandoffRace(t *testing.T) {
	const (
		readers = 3
		iters   = 4000
	)
	pool := mem.New[tnode](mem.Options[tnode]{
		Threads:  readers + 1,
		MaxSlots: 1 << 16,
		Poison:   func(n *tnode) { n.key = math.MaxUint64 },
	})
	s := NewHyaline(pool, Options{Threads: readers + 1, EpochFreq: 8, EmptyFreq: 4})
	var cell Ptr

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.StartOp(tid)
				if h := s.Read(tid, 0, &cell); !h.IsNil() {
					if pool.Get(h).key == math.MaxUint64 {
						t.Errorf("tid %d read a poisoned block", tid)
						s.EndOp(tid)
						return
					}
				}
				s.EndOp(tid)
			}
		}(r + 1)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		const wtid = 0
		for i := 0; i < iters; i++ {
			s.StartOp(wtid)
			nh := s.Alloc(wtid)
			if nh.IsNil() {
				s.EndOp(wtid)
				continue
			}
			pool.Get(nh).key = uint64(i)
			old := s.Read(wtid, 0, &cell)
			if s.CompareAndSwap(wtid, &cell, old, nh) {
				if !old.IsNil() {
					s.Retire(wtid, old)
				}
			} else {
				pool.Free(wtid, nh)
			}
			s.EndOp(wtid)
		}
	}()
	wg.Wait()

	if h := cell.Raw(); !h.IsNil() {
		s.Write(0, &cell, mem.Nil)
		s.Retire(0, h)
	}
	DrainAll(s, readers+1)
	if got := TotalUnreclaimed(s, readers+1); got != 0 {
		t.Fatalf("%d blocks unreclaimed after quiescent drain", got)
	}
	if live := pool.Stats().Live(); live != 0 {
		t.Fatalf("%d slots leaked", live)
	}
}

// TestHyalineExaminedPerFreedStaysNearOne pins the scheme's reason to
// exist: reclamation by handoff examines each link and block O(1) times,
// so examined-per-freed must stay near 1 even with cadence seals — this is
// the acceptance bar (≤ 2× EBR) in microcosm.
func TestHyalineExaminedPerFreedStaysNearOne(t *testing.T) {
	pool := mem.New[tnode](mem.Options[tnode]{Threads: 2, MaxSlots: 1 << 16})
	s := NewHyaline(pool, Options{Threads: 2, EpochFreq: 8, EmptyFreq: 8})
	const blocks = 4096
	for i := 0; i < blocks; i++ {
		s.StartOp(0)
		h := s.Alloc(0)
		if h.IsNil() {
			t.Fatal("pool exhausted")
		}
		s.Retire(0, h)
		s.EndOp(0)
	}
	DrainAll(s, 2)
	st := s.ScanStats()
	if st.Freed != blocks {
		t.Fatalf("freed %d, want %d", st.Freed, blocks)
	}
	if epf := st.ExaminedPerFreed(); epf > 2.0 {
		t.Fatalf("examined per freed = %.2f, want ≤ 2.0 (handoff must not rescan)", epf)
	}
}
