package core

import "testing"

// TestRetireSources checks the by-cause retirement accounting the serving
// layer's TTL expiry rides on: retirements tagged SourceExpiry land in the
// expiry counter, everything else defaults to SourceUser, and the sum
// matches the total retirement count.
func TestRetireSources(t *testing.T) {
	for _, name := range reclaimers() {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 1)
			s := r.scheme
			const userN, expN = 7, 5
			for i := 0; i < userN; i++ {
				s.StartOp(0)
				h := s.Alloc(0)
				s.Retire(0, h)
				s.EndOp(0)
			}
			SetRetireSource(s, 0, SourceExpiry)
			for i := 0; i < expN; i++ {
				s.StartOp(0)
				h := s.Alloc(0)
				s.Retire(0, h)
				s.EndOp(0)
			}
			SetRetireSource(s, 0, SourceUser)
			got := RetireSources(s)
			if got[SourceUser] != userN || got[SourceExpiry] != expN {
				t.Fatalf("RetireSources = %v, want [%d %d]", got, userN, expN)
			}
		})
	}
}

// TestRetireSourcesUnknownPanics pins the API contract: tagging with an
// out-of-range source is a programming error, not a silent misattribution.
func TestRetireSourcesUnknownPanics(t *testing.T) {
	r := newRig(t, "tagibr", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("SetRetireSource with unknown source did not panic")
		}
	}()
	SetRetireSource(r.scheme, 0, NumRetireSources)
}
