package core

import (
	"math/rand"
	"testing"

	"ibr/internal/epoch"
	"ibr/internal/mem"
)

// TestDEBRANeutralizeLifecycle walks the signal protocol end to end:
// ClearReservation latches the flag and clears the epoch reservation
// (signaled); the next StartOp on that tid consumes the flag (observed)
// and publishes a fresh reservation. The counters converge and the flag
// is one-shot.
func TestDEBRANeutralizeLifecycle(t *testing.T) {
	_, qs := quietScheme(t, "debra", 2)
	s := qs.(*DEBRA)
	s.StartOp(0)
	if s.Neutralized(0) {
		t.Fatal("fresh tid reports a pending neutralization")
	}
	ClearReservation(s, 0)
	if !s.Neutralized(0) {
		t.Fatal("ClearReservation did not latch the neutralize flag")
	}
	if lo := s.Reservations().At(0).Lower(); lo != epoch.None {
		t.Fatalf("reservation lower = %d after neutralization, want None", lo)
	}
	if sig, obs := s.NeutralizeStats(); sig != 1 || obs != 0 {
		t.Fatalf("stats = (%d signaled, %d observed), want (1, 0)", sig, obs)
	}
	s.StartOp(0) // the sigsetjmp site: consume and restart
	if s.Neutralized(0) {
		t.Fatal("StartOp did not consume the neutralization")
	}
	if lo := s.Reservations().At(0).Lower(); lo == epoch.None {
		t.Fatal("restarted operation published no reservation")
	}
	if sig, obs := s.NeutralizeStats(); sig != 1 || obs != 1 {
		t.Fatalf("stats = (%d signaled, %d observed), want (1, 1)", sig, obs)
	}
	s.EndOp(0)
	s.StartOp(0) // a normal start must not count as observing anything
	if _, obs := s.NeutralizeStats(); obs != 1 {
		t.Fatalf("observed = %d after a normal StartOp, want still 1", obs)
	}
	s.EndOp(0)
}

// TestDEBRANeutralizationDrainsWithoutResume is the scheme-level half of
// the quarantine acceptance scenario: a stalled tid pins a backlog;
// neutralizing it (without it ever calling EndOp) lets the survivor's next
// drain free everything, and the stalled tid's eventual restart is safe —
// it observes the signal and publishes a fresh epoch.
func TestDEBRANeutralizationDrainsWithoutResume(t *testing.T) {
	rig := newRig(t, "debra", 2)
	s := rig.scheme.(*DEBRA)
	s.StartOp(0) // the staller: publishes and never withdraws
	churnRetire(t, rig, 1, 64)
	s.Drain(1)
	if got := s.Unreclaimed(1); got == 0 {
		t.Fatal("stalled reservation did not pin the backlog; test is vacuous")
	}
	ClearReservation(s, 0)
	s.Drain(1)
	if got := s.Unreclaimed(1); got != 0 {
		t.Fatalf("%d blocks unreclaimed after neutralizing the staller", got)
	}
	// The staller "wakes": its next StartOp restarts instead of resuming.
	s.StartOp(0)
	if s.Neutralized(0) {
		t.Fatal("restart did not consume the neutralization")
	}
	s.EndOp(0)
}

// TestDEBRABagRotations: each epoch boundary crossed by a retirement opens
// a new limbo bag. With a quiet cadence and a manually advanced clock, the
// rotation count is exactly the number of distinct later-epoch stamps.
func TestDEBRABagRotations(t *testing.T) {
	pool, qs := quietScheme(t, "debra", 1)
	s := qs.(*DEBRA)
	clk := epochOf(qs)
	alloc := func() mem.Handle {
		h := s.Alloc(0)
		if h.IsNil() {
			t.Fatal("pool exhausted")
		}
		return h
	}
	// Three retirements in epoch e: one bag, zero rotations.
	for i := 0; i < 3; i++ {
		s.Retire(0, alloc())
	}
	if got := s.BagRotations(); got != 0 {
		t.Fatalf("rotations = %d within one epoch, want 0", got)
	}
	// Two more epochs, two retirements each: two rotations.
	for e := 0; e < 2; e++ {
		clk.Advance()
		s.Retire(0, alloc())
		s.Retire(0, alloc())
	}
	if got := s.BagRotations(); got != 2 {
		t.Fatalf("rotations = %d across three epochs, want 2", got)
	}
	// The bags free as whole prefixes: nobody is reserved, one drain takes
	// every expired bag (here: all of them).
	clk.Advance()
	s.Drain(0)
	if got := s.Unreclaimed(0); got != 0 {
		t.Fatalf("%d blocks unreclaimed after draining the expired bags", got)
	}
	if live := pool.Stats().Live(); live != 0 {
		t.Fatalf("%d slots live after the drain", live)
	}
}

// TestDEBRADrainMatchesEBR is the differential test: DEBRA's data path is
// EBR by construction, so under an identical random schedule of retires,
// reservations, and drains, both schemes must keep and free exactly the
// same counts at every step. Divergence means the neutralization machinery
// leaked into the reclamation logic.
func TestDEBRADrainMatchesEBR(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		_, d := quietScheme(t, "debra", 4)
		_, e := quietScheme(t, "ebr", 4)
		rng := rand.New(rand.NewSource(seed))
		both := [2]Scheme{d, e}

		for step := 0; step < 300; step++ {
			switch rng.Intn(5) {
			case 0: // a reader pins or unpins
				tid := 1 + rng.Intn(3)
				if rng.Intn(2) == 0 {
					for _, s := range both {
						s.StartOp(tid)
					}
				} else {
					for _, s := range both {
						s.EndOp(tid)
					}
				}
			case 1: // the clock advances (same drift on both)
				for _, s := range both {
					epochOf(s).Advance()
				}
			case 2, 3: // retire a few blocks on tid 0
				n := 1 + rng.Intn(4)
				for _, s := range both {
					for i := 0; i < n; i++ {
						h := s.Alloc(0)
						if h.IsNil() {
							t.Fatal("pool exhausted")
						}
						s.Retire(0, h)
					}
				}
			default:
				for _, s := range both {
					s.Drain(0)
				}
			}
			if du, eu := d.Unreclaimed(0), e.Unreclaimed(0); du != eu {
				t.Fatalf("seed %d step %d: debra keeps %d, ebr keeps %d", seed, step, du, eu)
			}
		}
		dst := d.(*DEBRA).ScanStats()
		est := e.(*EBR).ScanStats()
		if dst.Freed != est.Freed || dst.Scanned != est.Scanned {
			t.Fatalf("seed %d: scan stats diverge: debra %+v, ebr %+v", seed, dst, est)
		}
	}
}
