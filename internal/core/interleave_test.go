package core

import (
	"testing"

	"ibr/internal/mem"
)

// This file exhaustively enumerates interleavings of a reader's and an
// adversary's scheme-API calls (each call taken as an atomic step) and
// checks the central protection invariant in every ordering: once the
// reader's protected Read has returned a handle, that block must not be
// freed until the reader ends its operation. Stress tests sample this
// space; here we cover it completely at API granularity.

// step is one atomic action in a scripted thread.
type step func()

// interleave enumerates all merge orders of a and b, calling run for each
// with the merged script. C(len(a)+len(b), len(a)) executions.
func interleave(a, b []int, prefix []int, visit func([]int)) {
	if len(a) == 0 && len(b) == 0 {
		visit(prefix)
		return
	}
	if len(a) > 0 {
		interleave(a[1:], b, append(prefix, a[0]), visit)
	}
	if len(b) > 0 {
		interleave(a, b[1:], append(prefix, b[0]), visit)
	}
}

// TestInterleavedProtectionInvariant: reader = StartOp, Read, (hold), EndOp;
// adversary = detach, Retire, Drain, Drain. In every interleaving, the
// handle the reader got from Read (if any) must stay un-freed until the
// reader's EndOp has executed.
func TestInterleavedProtectionInvariant(t *testing.T) {
	for _, name := range reclaimers() {
		t.Run(name, func(t *testing.T) {
			// Script step ids: reader 0..2, adversary 10..12.
			readerScript := []int{0, 1, 2}     // StartOp; Read; EndOp
			advScript := []int{10, 11, 12, 13} // detach; retire; drain; drain
			count := 0
			interleave(readerScript, advScript, nil, func(order []int) {
				count++
				r := newRig(t, name, 2)
				s := r.scheme
				var root Ptr
				h := s.Alloc(1)
				r.pool.Get(h).key = 77
				s.Write(1, &root, h)

				var got mem.Handle
				readerInOp := false
				readerDone := false

				steps := map[int]step{
					0: func() { s.StartOp(0); readerInOp = true },
					1: func() {
						if readerInOp {
							got = s.ReadRoot(0, 0, &root)
						}
					},
					2: func() { s.EndOp(0); readerDone = true },
					10: func() {
						s.StartOp(1)
						s.Write(1, &root, mem.Nil)
						s.EndOp(1)
					},
					11: func() { s.StartOp(1); s.Retire(1, h); s.EndOp(1) },
					12: func() { s.Drain(1) },
					13: func() { s.Drain(1) },
				}
				for _, id := range order {
					steps[id]()
					// Invariant: while the reader holds a non-nil protected
					// handle and has not ended its op, the block is not free.
					if !readerDone && !got.IsNil() && got.SameAddr(h) {
						if r.pool.State(h) == mem.StateFree {
							t.Fatalf("order %v: block freed while reader (in-op) held it", order)
						}
						if r.pool.Get(got).key != 77 {
							t.Fatalf("order %v: payload clobbered under protection", order)
						}
					}
				}
				// Quiescent close-out: everything must now drain.
				s.Drain(1)
				if r.pool.State(h) != mem.StateFree {
					t.Fatalf("order %v: block not reclaimed at quiescence", order)
				}
			})
			if count != 35 { // C(7,3)
				t.Fatalf("enumerated %d interleavings, want 35", count)
			}
		})
	}
}

// TestInterleavedTwoReaders: two readers and one adversary; the block must
// survive until BOTH readers finished, in every interleaving.
func TestInterleavedTwoReaders(t *testing.T) {
	for _, name := range []string{"ebr", "hp", "he", "tagibr", "tagibr-wcas", "2geibr"} {
		t.Run(name, func(t *testing.T) {
			r1Script := []int{0, 1, 2}
			mixed := []int{10, 11, 12, 20, 21, 22} // adversary interleaved with reader2 (fixed relative order)
			interleave(r1Script, mixed, nil, func(order []int) {
				r := newRig(t, name, 3)
				s := r.scheme
				var root Ptr
				h := s.Alloc(2)
				s.Write(2, &root, h)

				var got1, got2 mem.Handle
				done1, done2 := false, false
				steps := map[int]step{
					0:  func() { s.StartOp(0) },
					1:  func() { got1 = s.ReadRoot(0, 0, &root) },
					2:  func() { s.EndOp(0); done1 = true },
					10: func() { s.StartOp(1) },
					11: func() { got2 = s.ReadRoot(1, 0, &root) },
					12: func() { s.EndOp(1); done2 = true },
					20: func() { s.Write(2, &root, mem.Nil) },
					21: func() { s.Retire(2, h) },
					22: func() { s.Drain(2) },
				}
				for _, id := range order {
					steps[id]()
					held := (!done1 && got1.SameAddr(h) && !got1.IsNil()) ||
						(!done2 && got2.SameAddr(h) && !got2.IsNil())
					if held && r.pool.State(h) == mem.StateFree {
						t.Fatalf("order %v: freed while a reader held it", order)
					}
				}
				s.Drain(2)
				if r.pool.State(h) != mem.StateFree {
					t.Fatalf("order %v: not reclaimed at quiescence", order)
				}
			})
		})
	}
}
