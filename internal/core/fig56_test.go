package core

import (
	"testing"

	"ibr/internal/epoch"
	"ibr/internal/mem"
)

// This file demonstrates, deterministically, the unsafe window in the
// paper's printed read protocols (Figs. 5 and 6) that DESIGN.md finding (i)
// describes — and shows that the publish-first order this library
// implements closes it. The "literal" protocols are re-enacted step by
// step with the scheme's own primitives, with the adversary (detach,
// retire, scan) interleaved at the vulnerable point.
//
// Scenario (2GEIBR flavor; TagIBR's is isomorphic):
//
//	reader:   StartOp at epoch e1       → interval [e1, e1]
//	writer:   allocates B at epoch e2 > e1, links it
//	reader:   loads p → B               (literal Fig. 6 step 1)
//	adversary: detaches B, retires B, scans:
//	           B.birth = e2 > reader's published upper e1 → NO conflict → FREED
//	reader:   raises upper to e2, "returns" B   ← dangling!
//
// With the publish-first loop, the reader publishes upper = e2 and then
// RE-READS p; the detach already overwrote p, so the reader gets the new
// value (nil) instead of the freed block.

// stage prepares the common choreography: a reader with a stale interval
// and a block born after its upper endpoint.
func stageFig6(t *testing.T) (r *testRig, s *TwoGE, p *Ptr, b mem.Handle) {
	t.Helper()
	rig := newRig(t, "2geibr", 2)
	s = rig.scheme.(*TwoGE)
	p = &Ptr{}

	s.StartOp(0) // reader reserves [e1, e1]
	e1 := resOf(s).At(0).Upper()

	// Writer: advance the epoch, then create and link B (birth e2 > e1).
	s.Clock().Advance()
	b = s.Alloc(1)
	s.Write(1, p, b)
	if rig.pool.Birth(b) <= e1 {
		t.Fatalf("staging failed: birth %d <= e1 %d", rig.pool.Birth(b), e1)
	}
	return rig, s, p, b
}

// TestFig6LiteralOrderIsUnsafe replays the printed Fig. 6 read verbatim
// and shows the returned block is freed memory.
func TestFig6LiteralOrderIsUnsafe(t *testing.T) {
	rig, s, p, b := stageFig6(t)

	// -- literal Fig. 6 read, step 1: ret = *ptraddr
	ret := mem.Handle(p.bits.Load())
	if !ret.SameAddr(b) {
		t.Fatal("staging: reader did not see B")
	}

	// -- adversary runs BEFORE the reader publishes its raised upper:
	s.Write(1, p, mem.Nil) // detach
	s.Retire(1, b)
	s.Drain(1) // scan sees reader's stale [e1,e1]; B.birth=e2 > e1 → freed

	if rig.pool.State(b) != mem.StateFree {
		t.Fatal("adversary could not free B: the window is already closed?")
	}

	// -- literal Fig. 6 steps 2-3: raise upper to the current epoch,
	//    verify the epoch is unchanged, and "return" ret.
	e := s.Clock().Now()
	if up := resOf(s).At(0).Upper(); e > up {
		resOf(s).At(0).SetUpper(e)
	}
	if s.Clock().Now() == e {
		// The literal protocol accepts ret here. ret is dangling:
		if rig.pool.State(ret) != mem.StateFree {
			t.Fatal("expected ret to be freed")
		}
		// (In C++ this is the use-after-free; here the state check is the
		// proof. This is exactly DESIGN.md finding (i).)
	} else {
		t.Fatal("epoch moved; choreography needs adjusting")
	}
	s.EndOp(0)
}

// TestFig6PublishFirstOrderIsSafe runs the same adversary against this
// library's actual Read and shows the reader never obtains the freed block.
func TestFig6PublishFirstOrderIsSafe(t *testing.T) {
	rig, s, p, b := stageFig6(t)

	// Adversary acts first this time — worst case for the reader.
	s.Write(1, p, mem.Nil)
	s.Retire(1, b)
	s.Drain(1)
	if rig.pool.State(b) != mem.StateFree {
		t.Fatal("staging: B not freed")
	}

	// The real Read: it may raise the reservation, but it re-reads the
	// pointer afterwards and must come back with the CURRENT value (nil),
	// never the freed block.
	got := s.Read(0, 0, p)
	if !got.IsNil() {
		t.Fatalf("Read returned %v; want nil (B was detached and freed)", got)
	}
	s.EndOp(0)
}

// TestFig5LiteralOrderIsUnsafe is the TagIBR version: the born_before tag
// is read and the upper endpoint raised only AFTER the pointer load, so
// the same adversary wins the race.
func TestFig5LiteralOrderIsUnsafe(t *testing.T) {
	rig := newRig(t, "tagibr", 2)
	s := rig.scheme.(*TagIBR)
	p := &Ptr{}

	s.StartOp(0)
	e1 := resOf(s).At(0).Upper()
	s.Clock().Advance()
	b := s.Alloc(1) // birth e2 > e1
	s.Write(1, p, b)

	// -- literal Fig. 5 read: ret = ptraddr->p (no publish yet)
	ret := mem.Handle(p.bits.Load())

	// -- adversary: detach, retire, scan against the stale [e1,e1].
	s.Write(1, p, mem.Nil)
	s.Retire(1, b)
	s.Drain(1)
	if rig.pool.State(b) != mem.StateFree {
		t.Fatalf("B not freed: birth %d vs reader upper %d", rig.pool.Birth(b), e1)
	}

	// -- literal Fig. 5 continues: upper = max(upper, born_before); the
	//    check "upper >= born_before" passes, and ret is returned. Dangling.
	bb := p.born.Load()
	if up := resOf(s).At(0).Upper(); bb > up {
		resOf(s).At(0).SetUpper(bb)
	}
	if rig.pool.State(ret) != mem.StateFree {
		t.Fatal("expected the literal protocol to hand back freed memory")
	}
	s.EndOp(0)

	// And the actual Read, same staging, re-run:
	s.StartOp(0)
	got := s.Read(0, 0, p)
	if !got.IsNil() {
		t.Fatalf("real Read returned %v; want nil", got)
	}
	s.EndOp(0)
}

// TestPublishFirstCoversBeforeReturn: whenever the real Read returns a
// non-nil handle, the reader's PUBLISHED interval must already cover the
// block's lifetime start — the property the literal order lacks.
func TestPublishFirstCoversBeforeReturn(t *testing.T) {
	for _, name := range []string{"tagibr", "tagibr-faa", "tagibr-wcas", "2geibr"} {
		t.Run(name, func(t *testing.T) {
			rig := newRig(t, name, 2)
			s := rig.scheme
			p := &Ptr{}
			s.StartOp(0)
			for i := 0; i < 50; i++ {
				rig.scheme.(interface{ Clock() *epoch.Clock }).Clock().Advance()
				b := s.Alloc(1)
				s.Write(1, p, b)
				got := s.Read(0, 0, p)
				if got.IsNil() {
					t.Fatal("read lost the block")
				}
				if up := resOf(s).At(0).Upper(); up < rig.pool.Birth(got.Addr()) {
					t.Fatalf("returned a block born at %d with published upper %d",
						rig.pool.Birth(got.Addr()), up)
				}
				s.Write(1, p, mem.Nil)
				s.Retire(1, got)
			}
			s.EndOp(0)
			s.Drain(1)
		})
	}
}
