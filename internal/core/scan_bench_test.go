package core

import (
	"testing"

	"ibr/internal/mem"
)

// BenchmarkScan measures one Drain over the three paths the summarized scan
// takes, per scheme family. Run with:
//
//	go test ./internal/core -bench Scan -benchtime 0.5s
//
//   - pinned: a stalled reader's window covers every retired block; the scan
//     must skip the whole backlog (one binary search), freeing nothing.
//     Cost should be flat in the backlog size.
//   - free-all: no reservations; every retired block takes the
//     retire < minLower fast path and the batch is returned to the pool in
//     one FreeBatch. Reported per retired block.
//   - general: stale reservations force the sorted-prefix test on every
//     block (retire ≥ minLower, outside the protected window) and every
//     block is then freed. Reported per retired block.
func BenchmarkScan(b *testing.B) {
	b.Run("pinned", func(b *testing.B) {
		for _, name := range []string{"ebr", "tagibr"} {
			for _, listLen := range []int{1024, 32768} {
				b.Run(name+"/"+byLen(listLen), func(b *testing.B) {
					pool := mem.New[tnode](mem.Options[tnode]{Threads: 2, MaxSlots: 1 << 17})
					s, _ := New(name, pool, Options{Threads: 2, EpochFreq: 64, EmptyFreq: 1 << 30})
					resOf(s).At(1).Set(1, 1<<60)
					for i := 0; i < listLen; i++ {
						s.Retire(0, s.Alloc(0))
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						s.Drain(0) // skips listLen pinned blocks, frees none
					}
					b.StopTimer()
					resOf(s).At(1).Clear()
					s.Drain(0)
				})
			}
		}
	})

	const batch = 256
	b.Run("free-all", func(b *testing.B) {
		for _, name := range []string{"ebr", "tagibr", "2geibr"} {
			b.Run(name, func(b *testing.B) {
				pool := mem.New[tnode](mem.Options[tnode]{Threads: 1, MaxSlots: 1 << 16})
				s, _ := New(name, pool, Options{Threads: 1, EpochFreq: 1 << 30, EmptyFreq: 1 << 30})
				clk := epochOf(s)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for k := 0; k < batch; k++ {
						s.Retire(0, s.Alloc(0))
					}
					clk.Advance() // every retire is now strictly in the past
					s.Drain(0)    // frees the whole batch
				}
				b.StopTimer()
				if n := s.Unreclaimed(0); n != 0 {
					b.Fatalf("%d blocks unreclaimed in the free-all case", n)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/block")
			})
		}
	})

	b.Run("general", func(b *testing.B) {
		pool := mem.New[tnode](mem.Options[tnode]{Threads: 9, MaxSlots: 1 << 16})
		s, _ := New("tagibr", pool, Options{Threads: 9, EpochFreq: 1 << 30, EmptyFreq: 1 << 30})
		clk := epochOf(s)
		// Eight stale single-epoch reservations below every birth this loop
		// produces: retire ≥ minLower rules out the fast path, retire > winHi
		// rules out the window skip, and birth > every upper endpoint means
		// the prefix-max test frees each block after doing real work.
		for tid := 1; tid <= 8; tid++ {
			resOf(s).At(tid).Set(uint64(tid)+1, uint64(tid)+1)
			clk.Advance()
		}
		clk.Advance()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < batch; k++ {
				s.Retire(0, s.Alloc(0))
			}
			clk.Advance()
			s.Drain(0)
		}
		b.StopTimer()
		if n := s.Unreclaimed(0); n != 0 {
			b.Fatalf("%d blocks unreclaimed in the general case", n)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/block")
	})
}
