package core

import (
	"testing"

	"ibr/internal/epoch"
	"ibr/internal/mem"
)

// churnRetire allocates and immediately retires n blocks on tid, advancing
// the clock between retirements so the retire epochs spread out.
func churnRetire(t *testing.T, rig *testRig, tid, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		h := rig.scheme.Alloc(tid)
		if h.IsNil() {
			t.Fatalf("tid %d: pool exhausted after %d blocks", tid, i)
		}
		rig.scheme.Retire(tid, h)
	}
}

// assertStoreInvariants checks the retire-store invariants every scan relies
// on: bucket keys strictly ascending, no empty bucket retained, retire
// epochs sorted within each bucket's live window, births inside the
// bucket's birth bounds, and the live total matching count.
func assertStoreInvariants(t *testing.T, st *retireStore) {
	t.Helper()
	total := 0
	for bi := range st.buckets {
		bk := &st.buckets[bi]
		if bi > 0 && st.buckets[bi-1].key >= bk.key {
			t.Fatalf("bucket keys out of order at %d: %d >= %d", bi, st.buckets[bi-1].key, bk.key)
		}
		if bk.live() <= 0 {
			t.Fatalf("bucket %d (key %d) is empty but still present", bi, bk.key)
		}
		total += bk.live()
		for k := bk.start; k < len(bk.retires); k++ {
			if k > bk.start && bk.retires[k-1] > bk.retires[k] {
				t.Fatalf("bucket %d retire order violated at %d: %d > %d",
					bi, k, bk.retires[k-1], bk.retires[k])
			}
			if birth := bk.births[k]; birth < bk.birthLo || birth > bk.birthHi {
				t.Fatalf("bucket %d birth %d outside bounds [%d, %d]",
					bi, birth, bk.birthLo, bk.birthHi)
			}
		}
	}
	if total != st.count {
		t.Fatalf("store count = %d but live entries = %d", st.count, total)
	}
}

// TestAdoptRetiredMergesByRetireEpoch: adoption must interleave the two
// retire lists by retire epoch, because the prefix (EBR) and merge-pointer
// (summarized) scans rely on monotone order. A naive append would place an
// old orphaned backlog after the adopter's fresh tail and strand it.
func TestAdoptRetiredMergesByRetireEpoch(t *testing.T) {
	for _, name := range []string{"ebr", "tagibr", "2geibr", "debra"} {
		t.Run(name, func(t *testing.T) {
			rig := newRig(t, name, 3)
			s := rig.scheme
			// Pin everything: tid 2 publishes a reservation at the first
			// epoch, so the churn below cannot be reclaimed by cadence scans.
			s.StartOp(2)
			// Interleave retirements across tids 0 and 1 (the clock advances
			// every EpochFreq=4 allocations, so epochs genuinely interleave).
			for round := 0; round < 8; round++ {
				churnRetire(t, rig, 0, 3)
				churnRetire(t, rig, 1, 3)
			}
			from := s.Unreclaimed(0)
			if from == 0 {
				t.Fatal("tid 0 retired nothing despite the pin")
			}
			before := s.Unreclaimed(1)

			n := AdoptRetired(s, 0, 1)
			if n != from {
				t.Fatalf("AdoptRetired moved %d blocks, want %d", n, from)
			}
			if got := s.Unreclaimed(0); got != 0 {
				t.Fatalf("source list kept %d blocks after adoption", got)
			}
			if got := s.Unreclaimed(1); got != before+from {
				t.Fatalf("adopter has %d blocks, want %d", got, before+from)
			}
			// The merged store must preserve the per-bucket invariants the
			// scans rely on: every bucket's live retire epochs monotone,
			// birth bounds covering its blocks, keys matching the births.
			if _, ok := s.(Transferer); !ok {
				t.Fatal("scheme does not implement Transferer")
			}
			st := s.(interface{ threadStore(int) *retireStore }).threadStore(1)
			assertStoreInvariants(t, st)
			// With the pin withdrawn, one drain of the adopter must reclaim
			// the whole merged backlog — the drains-to-zero half of the
			// quarantine story.
			s.EndOp(2)
			s.Drain(1)
			if got := s.Unreclaimed(1); got != 0 {
				t.Fatalf("%d blocks unreclaimed after adoption + drain", got)
			}
		})
	}
}

// TestAdoptRetiredHyalineUnsealed: for Hyaline, adoption moves exactly the
// victim's *unsealed* accumulation (its open batch) — sealed batches are
// already handed off and free through their reference counts, so they are
// not the adopter's to take. The merged open batch must stay in retire-epoch
// order so the adopter's next seal produces an age-ordered batch, and a
// quiescent drain after adoption must reclaim everything.
func TestAdoptRetiredHyalineUnsealed(t *testing.T) {
	rig := newRig(t, "hyaline", 3)
	s := rig.scheme.(*Hyaline)
	s.StartOp(2) // keep slot 2 active so sealed batches stay in flight
	// 11 retires per tid with EmptyFreq=4: three seals (cadence), 3 blocks
	// left unsealed on each — interleaved so the retire epochs interleave.
	for round := 0; round < 2; round++ {
		churnRetire(t, rig, 0, 4)
		churnRetire(t, rig, 1, 4)
	}
	churnRetire(t, rig, 0, 3)
	churnRetire(t, rig, 1, 3)
	unsealed := s.ts[0].store.count
	if unsealed == 0 {
		t.Fatal("tid 0 has no unsealed blocks; the scenario is vacuous")
	}
	inflight := s.inflight[0].n.Load()
	if inflight == 0 {
		t.Fatal("tid 0 has no sealed batches in flight; the scenario is vacuous")
	}
	beforeUnsealed := s.ts[1].store.count

	n := AdoptRetired(s, 0, 1)
	if n != unsealed {
		t.Fatalf("AdoptRetired moved %d blocks, want the %d unsealed", n, unsealed)
	}
	if got := s.ts[0].store.count; got != 0 {
		t.Fatalf("source kept %d unsealed blocks after adoption", got)
	}
	// The victim's in-flight blocks stay charged to it until their batches
	// free — adoption must not touch the reference-counted handoff.
	if got := s.inflight[0].n.Load(); got != inflight {
		t.Fatalf("inflight[0] = %d after adoption, want %d untouched", got, inflight)
	}
	merged := s.ts[1].store.snapshot()
	if len(merged) != beforeUnsealed+unsealed {
		t.Fatalf("adopter has %d unsealed blocks, want %d", len(merged), beforeUnsealed+unsealed)
	}
	assertStoreInvariants(t, &s.ts[1].store)
	// Quiescence: slot 2 leaves (dropping the in-flight batches' references)
	// and the adopter seals its merged batch with no slot active — everything
	// must free.
	s.EndOp(2)
	s.Drain(1)
	for tid := 0; tid < 3; tid++ {
		if got := s.Unreclaimed(tid); got != 0 {
			t.Fatalf("tid %d: %d blocks unreclaimed after quiescent drain", tid, got)
		}
	}
}

// TestClearReservationUnpins: clearing a stalled tid's reservation on its
// behalf must let other threads' scans reclaim the backlog it pinned,
// without that tid ever calling EndOp — drain-without-resume.
func TestClearReservationUnpins(t *testing.T) {
	for _, name := range []string{"ebr", "poibr", "tagibr", "tagibr-wcas", "2geibr", "debra", "hyaline"} {
		t.Run(name, func(t *testing.T) {
			rig := newRig(t, name, 2)
			s := rig.scheme
			s.StartOp(0) // the stalled thread: publishes and never withdraws
			churnRetire(t, rig, 1, 64)
			s.Drain(1)
			if got := s.Unreclaimed(1); got == 0 {
				t.Fatal("reservation did not pin the backlog; test is vacuous")
			}
			ClearReservation(s, 0)
			if r, ok := s.(interface{ Reservations() *epoch.Table }); ok {
				if lo := r.Reservations().At(0).Lower(); lo != epoch.None {
					t.Fatalf("reservation lower = %d after clear, want None", lo)
				}
			}
			s.Drain(1)
			if got := s.Unreclaimed(1); got != 0 {
				t.Fatalf("%d blocks unreclaimed after clearing the stalled reservation", got)
			}
		})
	}
}

// TestClearReservationHazardSlots: the HP/HE overrides clear the per-slot
// protections, which is their form of a published reservation.
func TestClearReservationHazardSlots(t *testing.T) {
	rig := newRig(t, "hp", 2)
	s := rig.scheme.(*HP)
	h := s.Alloc(0)
	var p Ptr
	s.Write(0, &p, h)
	s.StartOp(0)
	if got := s.Read(0, 0, &p); got.Addr() != h.Addr() {
		t.Fatalf("Read = %v, want %v", got, h)
	}
	ClearReservation(rig.scheme, 0)
	for i := range s.haz[0] {
		if v := s.haz[0][i].v.Load(); v != 0 {
			t.Fatalf("hazard slot %d still holds %#x after clear", i, v)
		}
	}
}

// TestTakeAllocFailed: a Nil return from Scheme.Alloc for exhaustion sets
// the per-tid flag exactly once (clear-on-read), and a successful Alloc
// resets it — the signal the serving engine turns into StatusBusy.
func TestTakeAllocFailed(t *testing.T) {
	pool := mem.New[tnode](mem.Options[tnode]{Threads: 1, MaxSlots: 8})
	s, err := New("none", pool, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if AllocFailed(s, 0) {
		t.Fatal("flag set before any Alloc")
	}
	for i := 0; i < 8; i++ {
		if s.Alloc(0).IsNil() {
			t.Fatalf("pool exhausted early at %d", i)
		}
	}
	if !s.Alloc(0).IsNil() {
		t.Fatal("expected exhaustion")
	}
	if !AllocFailed(s, 0) {
		t.Fatal("exhausted Alloc did not set the flag")
	}
	if AllocFailed(s, 0) {
		t.Fatal("flag not cleared on read")
	}
}
