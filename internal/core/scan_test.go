package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ibr/internal/epoch"
	"ibr/internal/mem"
)

// TestResSummaryMatchesNaive_Quick is the differential property test for
// the summarized conflict test: on any reservation snapshot and any block
// lifetime, resSummary.conflicts must return exactly what the naive linear
// sweep returns. This is the correctness argument for every interval scan.
func TestResSummaryMatchesNaive_Quick(t *testing.T) {
	f := func(los, his [6]uint16, n uint8, b16, len16 uint16) bool {
		// Variable-size snapshots, including the empty one.
		ivs := make([]interval, 0, 6)
		for i := 0; i < int(n%7); i++ {
			lo, hi := uint64(los[i]), uint64(his[i])
			if lo > hi {
				lo, hi = hi, lo
			}
			ivs = append(ivs, interval{lo, hi, 0})
		}
		birth := uint64(b16)
		retire := birth + uint64(len16)
		naive := conflicts(ivs, birth, retire)
		var sum resSummary
		sum.build(append([]interval(nil), ivs...)) // build re-sorts in place
		return sum.conflicts(birth, retire) == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

// TestResSummaryEdgeCases pins the boundary values quick.Check is unlikely
// to hit: the empty snapshot, epoch.None endpoints (a thread with a lower
// bound published and no upper yet reserves everything from lo on), and
// exact endpoint touches.
func TestResSummaryEdgeCases(t *testing.T) {
	cases := []struct {
		name          string
		ivs           []interval
		birth, retire uint64
		want          bool
	}{
		{"empty snapshot", nil, 0, epoch.None, false},
		{"touch at lo", []interval{{5, 9, 0}}, 1, 5, true},
		{"touch at hi", []interval{{5, 9, 0}}, 9, 20, true},
		{"just before lo", []interval{{5, 9, 0}}, 1, 4, false},
		{"just after hi", []interval{{5, 9, 0}}, 10, 20, false},
		{"open upper (None)", []interval{{5, epoch.None, 0}}, 100, 200, true},
		{"retire at None", []interval{{5, 9, 0}}, 3, epoch.None, true},
		{"gap between intervals", []interval{{1, 2, 0}, {8, 9, 0}}, 3, 7, false},
		{"covered by later interval", []interval{{1, 2, 0}, {8, 9, 0}}, 3, 8, true},
		{"earlier interval reaches highest", []interval{{1, 100, 0}, {8, 9, 0}}, 50, 200, true},
	}
	for _, c := range cases {
		var sum resSummary
		sum.build(append([]interval(nil), c.ivs...))
		if got := sum.conflicts(c.birth, c.retire); got != c.want {
			t.Errorf("%s: summarized = %v, want %v", c.name, got, c.want)
		}
		if got := conflicts(c.ivs, c.birth, c.retire); got != c.want {
			t.Errorf("%s: naive = %v, want %v (test oracle is wrong)", c.name, got, c.want)
		}
	}
}

// quietScheme builds a scheme whose cadence never fires on its own
// (EpochFreq/EmptyFreq effectively infinite), so a test controls the clock
// and every scan explicitly.
func quietScheme(t *testing.T, name string, threads int) (*mem.Pool[tnode], Scheme) {
	t.Helper()
	pool := mem.New[tnode](mem.Options[tnode]{Threads: threads, MaxSlots: 1 << 16})
	s, err := New(name, pool, Options{Threads: threads, EpochFreq: 1 << 30, EmptyFreq: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	return pool, s
}

// TestScanSummarizedMatchesNaiveFullScan drives a whole scan (not just the
// predicate) differentially: retire a few hundred blocks with scattered
// lifetimes under randomly pinned reservations, predict each block's fate
// with the naive conflict sweep, then Drain once and check the scan kept
// exactly the predicted survivors — i.e. the summary fast path, the
// protected-window run-skip, and the merge pointer change nothing.
func TestScanSummarizedMatchesNaiveFullScan(t *testing.T) {
	for _, name := range []string{"poibr", "tagibr", "tagibr-faa", "tagibr-wcas", "tagibr-tpa", "2geibr"} {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				pool, s := quietScheme(t, name, 4)
				rng := rand.New(rand.NewSource(seed))
				clk := epochOf(s)

				// Pin reservations for tids 1..3 over a band of the epochs
				// the blocks will live in; tid 0 (the scanner) stays idle.
				var ivs []interval
				for tid := 1; tid < 4; tid++ {
					if rng.Intn(4) == 0 {
						continue // this thread stays idle
					}
					lo := 1 + rng.Uint64()%200
					hi := lo + rng.Uint64()%100
					resOf(s).At(tid).Set(lo, hi)
					ivs = append(ivs, interval{lo, hi, 0})
				}

				type lifetime struct{ birth, retire uint64 }
				var lives []lifetime
				const blocks = 300
				for i := 0; i < blocks; i++ {
					h := s.Alloc(0)
					if h.IsNil() {
						t.Fatal("pool exhausted")
					}
					birth := pool.Birth(h)
					for n := rng.Intn(3); n > 0; n-- {
						clk.Advance()
					}
					lives = append(lives, lifetime{birth: birth, retire: clk.Now()})
					s.Retire(0, h)
					if rng.Intn(2) == 0 {
						clk.Advance()
					}
				}

				wantKept := 0
				for _, l := range lives {
					if conflicts(ivs, l.birth, l.retire) {
						wantKept++
					}
				}

				s.Drain(0)
				st := s.(interface{ ScanStats() ScanStats }).ScanStats()
				if got := s.Unreclaimed(0); got != wantKept {
					t.Fatalf("seed %d: scan kept %d blocks, naive predicts %d (reservations %v)",
						seed, got, wantKept, ivs)
				}
				if want := uint64(blocks - wantKept); st.Freed != want {
					t.Fatalf("seed %d: freed %d, want %d", seed, st.Freed, want)
				}

				// Release every reservation: a second scan must free the rest.
				for tid := 1; tid < 4; tid++ {
					resOf(s).At(tid).Clear()
				}
				clk.Advance()
				s.Drain(0)
				if got := s.Unreclaimed(0); got != 0 {
					t.Fatalf("seed %d: %d blocks survive with no reservations published", seed, got)
				}
			}
		})
	}
}

// TestScanExaminedDropsWhenPinned is the regression test for the scan cost
// itself: with one stalled reader pinning every retired block, repeated
// scans over the ever-growing backlog must examine O(1) blocks each (the
// store-level keep-all corner test for the interval schemes,
// stop-at-first-kept for EBR) — not re-walk the whole list. Before the
// summarized scans the mean examined per scan grew linearly with the
// backlog. Scans are driven explicitly every 4 retirements: the adaptive
// drain would (correctly) stop scheduling futile scans on its own, and this
// test is about the cost of a scan that does run, not about how often.
func TestScanExaminedDropsWhenPinned(t *testing.T) {
	for _, name := range []string{"ebr", "poibr", "tagibr", "2geibr"} {
		t.Run(name, func(t *testing.T) {
			_, s := quietScheme(t, name, 2)
			clk := epochOf(s)

			// tid 1 is a stalled reader covering every epoch this test uses.
			resOf(s).At(1).Set(1, 1<<60)

			const blocks = 400
			for i := 0; i < blocks; i++ {
				h := s.Alloc(0)
				if h.IsNil() {
					t.Fatal("pool exhausted")
				}
				s.Retire(0, h)
				if i%2 == 0 {
					clk.Advance() // spread lifetimes across many buckets
				}
				if (i+1)%4 == 0 {
					s.Drain(0)
				}
			}

			st := s.(interface{ ScanStats() ScanStats }).ScanStats()
			if st.Scans < uint64(blocks/4) {
				t.Fatalf("only %d scans ran; the test lost its explicit drains", st.Scans)
			}
			if st.Freed != 0 {
				t.Fatalf("%d blocks freed under a covering reservation", st.Freed)
			}
			if got := s.Unreclaimed(0); got != blocks {
				t.Fatalf("Unreclaimed = %d, want %d", got, blocks)
			}
			// The backlog averaged ~blocks/2 per scan; examining a handful of
			// blocks per scan is the behavior under test. 4.0 leaves slack
			// for scheme-specific effects while still failing any full-list
			// walk by two orders of magnitude.
			if mean := st.MeanListLen(); mean > 4.0 {
				t.Fatalf("mean examined per scan = %.1f over a pinned backlog of %d; scans are re-walking the list",
					mean, blocks)
			}

			// Unpin: the whole backlog reclaims in one scan.
			resOf(s).At(1).Clear()
			clk.Advance()
			s.Drain(0)
			if got := s.Unreclaimed(0); got != 0 {
				t.Fatalf("%d blocks survive after the reservation cleared", got)
			}
		})
	}
}

// TestAdaptiveDrainBacksOffWhenFutile pins the drain policy itself: under a
// stalled reservation that makes every scan futile, the watermark must back
// off (far fewer scans than retirements/EmptyFreq), and after the pin
// clears, a productive scan must reset the step to the base cadence.
// Hyaline is the counter-case: its seal cadence stays fixed at EmptyFreq.
func TestAdaptiveDrainBacksOffWhenFutile(t *testing.T) {
	for _, name := range []string{"ebr", "tagibr", "2geibr", "debra"} {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 2) // EmptyFreq 4
			s := r.scheme
			resOf(s).At(1).Set(1, 1<<60)

			const blocks = 400
			for i := 0; i < blocks; i++ {
				h := s.Alloc(0)
				if h.IsNil() {
					t.Fatal("pool exhausted")
				}
				s.Retire(0, h)
			}
			st := s.(interface{ ScanStats() ScanStats }).ScanStats()
			if st.Scans == 0 {
				t.Fatal("no scan ran at all; the watermark never fired")
			}
			// Fixed cadence would run blocks/EmptyFreq = 100 scans; doubling
			// backoff (capped at 32×EmptyFreq=128) runs ~8 over 400 retires.
			if st.Scans > uint64(blocks/8) {
				t.Fatalf("%d futile scans over %d pinned retires; the watermark is not backing off", st.Scans, blocks)
			}

			// Unpin; the next cadence-triggered scan is productive and the
			// step resets: retiring another 2×EmptyFreq blocks must scan at
			// least once and leave at most a cadence-worth unreclaimed.
			resOf(s).At(1).Clear()
			epochOf(s).Advance()
			s.Drain(0)
			if got := s.Unreclaimed(0); got != 0 {
				t.Fatalf("%d blocks survive after the reservation cleared", got)
			}
			before := s.(interface{ ScanStats() ScanStats }).ScanStats().Scans
			for i := 0; i < 8; i++ {
				h := s.Alloc(0)
				if h.IsNil() {
					t.Fatal("pool exhausted")
				}
				s.Retire(0, h)
			}
			after := s.(interface{ ScanStats() ScanStats }).ScanStats().Scans
			if after == before {
				t.Fatal("no scan within 2×EmptyFreq retirements after a productive drain; the step did not reset")
			}
		})
	}
	t.Run("hyaline-fixed-cadence", func(t *testing.T) {
		r := newRig(t, "hyaline", 2)
		s := r.scheme
		s.StartOp(1) // an active slot keeps every sealed batch in flight
		const blocks = 64
		for i := 0; i < blocks; i++ {
			h := s.Alloc(0)
			if h.IsNil() {
				t.Fatal("pool exhausted")
			}
			s.Retire(0, h)
		}
		st := s.(interface{ ScanStats() ScanStats }).ScanStats()
		if want := uint64(blocks / 4); st.Scans != want {
			t.Fatalf("hyaline sealed %d times over %d retires, want the fixed cadence %d", st.Scans, blocks, want)
		}
		s.EndOp(1)
		s.Drain(0)
	})
}

// TestDrainPressureOverridesBackoff: the serving layer's soft-watermark
// signal must collapse the futile-scan backoff to the base cadence — under
// pressure a pinned thread keeps probing every EmptyFreq retirements (so
// reclaim happens promptly once the pin clears), instead of waiting out a
// backed-off watermark.
func TestDrainPressureOverridesBackoff(t *testing.T) {
	r := newRig(t, "tagibr", 2) // EmptyFreq 4
	s := r.scheme
	resOf(s).At(1).Set(1, 1<<60)

	const blocks = 400
	retireN := func(n int) {
		for i := 0; i < n; i++ {
			h := s.Alloc(0)
			if h.IsNil() {
				t.Fatal("pool exhausted")
			}
			s.Retire(0, h)
		}
	}
	retireN(blocks)
	stats := func() ScanStats { return s.(interface{ ScanStats() ScanStats }).ScanStats() }
	backedOff := stats().Scans
	if backedOff > uint64(blocks/8) {
		t.Fatalf("%d scans before pressure; backoff is broken", backedOff)
	}

	SetDrainPressure(s, true)
	retireN(blocks)
	underPressure := stats().Scans - backedOff
	// Every EmptyFreq retirements must now scan: 400/4 = 100 scans.
	if underPressure < uint64(blocks/4) {
		t.Fatalf("only %d scans under drain pressure over %d retires, want ~%d", underPressure, blocks, blocks/4)
	}

	SetDrainPressure(s, false)
	prev := stats().Scans
	retireN(blocks)
	relaxed := stats().Scans - prev
	if relaxed > uint64(blocks/8) {
		t.Fatalf("%d scans after pressure cleared; the backoff did not resume", relaxed)
	}

	resOf(s).At(1).Clear()
	epochOf(s).Advance()
	s.Drain(0)
	if got := s.Unreclaimed(0); got != 0 {
		t.Fatalf("%d blocks survive after the reservation cleared", got)
	}
}
