package core

import (
	"fmt"
	"testing"

	"ibr/internal/mem"
	"ibr/internal/obs"
)

// BenchmarkObsHooks measures the cost of the observability hooks on the
// scheme hot path: a start/alloc/retire/end cycle (the retire cadence
// triggers the real scan + free-batch path every EmptyFreq iterations) with
// the observer off (nil — the shipped default for benchmarks), on with a
// flight recorder + all histograms, and hists-only. The acceptance bar for
// the PR that added the hooks is <3% between off and on.
func BenchmarkObsHooks(b *testing.B) {
	for _, cfg := range []struct {
		name string
		mk   func(threads int) *obs.SchemeObs
	}{
		{"off", func(int) *obs.SchemeObs { return nil }},
		{"on", func(threads int) *obs.SchemeObs {
			return obs.NewSchemeObs(obs.SchemeObsConfig{
				Threads:   threads,
				Recorder:  obs.NewRecorder(threads, 4096),
				RetireAge: &obs.Hist{},
				ScanDur:   &obs.Hist{},
				FreeBatch: &obs.Hist{},
			})
		}},
		{"hists-only", func(threads int) *obs.SchemeObs {
			return obs.NewSchemeObs(obs.SchemeObsConfig{
				Threads:   threads,
				RetireAge: &obs.Hist{},
				ScanDur:   &obs.Hist{},
				FreeBatch: &obs.Hist{},
			})
		}},
	} {
		for _, scheme := range []string{"tagibr", "ebr"} {
			b.Run(fmt.Sprintf("%s/%s", scheme, cfg.name), func(b *testing.B) {
				pool := mem.New[[8]uint64](mem.Options[[8]uint64]{Threads: 1})
				s, err := New(scheme, pool, Options{Threads: 1, Obs: cfg.mk(1)})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.StartOp(0)
					h := s.Alloc(0)
					if h.IsNil() {
						b.Fatal("pool exhausted")
					}
					s.Retire(0, h)
					s.EndOp(0)
				}
				b.StopTimer()
				s.EndOp(0)
				s.Drain(0)
			})
		}
	}
}
