package core

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"ibr/internal/epoch"
	"ibr/internal/mem"
)

// TestConflictsMatchesBruteForce_Quick cross-checks the scan predicate used
// by every interval scheme against the obvious definition.
func TestConflictsMatchesBruteForce_Quick(t *testing.T) {
	f := func(los, his [5]uint16, b16, len16 uint16) bool {
		var ivs []interval
		for i := range los {
			lo, hi := uint64(los[i]), uint64(his[i])
			if lo > hi {
				lo, hi = hi, lo
			}
			ivs = append(ivs, interval{lo, hi, 0})
		}
		birth := uint64(b16)
		retire := birth + uint64(len16)
		want := false
		for _, iv := range ivs {
			// intersect([lo,hi],[birth,retire]) != empty
			lo, hi := iv.lo, iv.hi
			if max64(lo, birth) <= min64(hi, retire) {
				want = true
			}
		}
		return conflicts(ivs, birth, retire) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// TestSortedContains_Quick checks the HP scan's binary search against a
// linear scan.
func TestSortedContains_Quick(t *testing.T) {
	f := func(vals []uint64, probe uint64) bool {
		sorted := append([]uint64(nil), vals...)
		for i := 1; i < len(sorted); i++ { // insertion sort (small inputs)
			for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
				sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
			}
		}
		want := false
		for _, v := range sorted {
			if v == probe {
				want = true
			}
		}
		return sortedContains(sorted, probe) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestWCASPackIdempotent_Quick: re-packing a stored WCAS word must be the
// identity, otherwise CAS expected-value semantics break.
func TestWCASPackIdempotent_Quick(t *testing.T) {
	r := newRig(t, "tagibr-wcas", 1)
	s := r.scheme.(*TagIBR)
	clk := epochOf(r.scheme)
	var handles []mem.Handle
	for i := 0; i < 50; i++ {
		handles = append(handles, s.Alloc(0))
		clk.Advance()
	}
	f := func(idx uint8, marks uint8) bool {
		h := handles[int(idx)%len(handles)].WithMarks(uint64(marks % 4))
		once := s.pack(h)
		return s.pack(once) == once && once.SameAddr(h) && once.Marks() == h.Marks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestRaiseBornMonotoneUnderContention_Quick hammers raiseBorn from many
// goroutines; the tag must end at the maximum and never decrease.
func TestRaiseBornMonotoneUnderContention(t *testing.T) {
	for _, name := range []string{"tagibr", "tagibr-faa"} {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 8)
			s := r.scheme.(*TagIBR)
			var p Ptr
			const threads, per = 8, 2000
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 1; i <= per; i++ {
						s.raiseBorn(&p, uint64(i*threads+tid))
					}
				}(tid)
			}
			wg.Wait()
			got := p.born.Load()
			maxArg := uint64(per*threads + threads - 1)
			if got < maxArg {
				t.Fatalf("born = %d, want >= max argument %d (monotonicity violated)", got, maxArg)
			}
			if s.variant == TagCAS && got > maxArg {
				t.Fatalf("CAS variant overshot: born = %d > %d (only FAA may have slack)", got, maxArg)
			}
		})
	}
}

// TestFetchOrMarksPreservesPayload: the atomic OR must touch only mark bits.
func TestFetchOrMarksPreservesPayload_Quick(t *testing.T) {
	f := func(slot uint64, epoch32 uint32, m uint8) bool {
		h := mem.FromSlot(slot % (1 << 20)).WithEpoch(uint64(epoch32) % mem.MaxPackedEpoch)
		var p Ptr
		p.setRaw(h)
		old := p.FetchOrMarks(uint64(m)) // only bits 0..1 may take effect
		now := p.Raw()
		return old == h && now.SameAddr(h) && now.Epoch() == h.Epoch() &&
			now.Marks() == (h.Marks()|uint64(m%4))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestHEReadFastPathNoStore: when the era is unchanged, HE's read must not
// publish (the scheme's advantage over HP).
func TestHEReadFastPathNoStore(t *testing.T) {
	r := newRig(t, "he", 1)
	s := r.scheme.(*HE)
	var p Ptr
	h := s.Alloc(0)
	s.Write(0, &p, h)
	s.StartOp(0)
	s.Read(0, 0, &p) // publishes current era
	era := s.eras[0][0].v.Load()
	for i := 0; i < 10; i++ {
		s.Read(0, 0, &p)
	}
	if got := s.eras[0][0].v.Load(); got != era {
		t.Fatalf("era slot changed (%d -> %d) without an epoch advance", era, got)
	}
	// After an advance, the next read re-publishes.
	epochOf(s).Advance()
	s.Read(0, 0, &p)
	if got := s.eras[0][0].v.Load(); got != era+1 {
		t.Fatalf("era slot = %d after advance, want %d", got, era+1)
	}
	s.EndOp(0)
}

// TestTransferSlotKeepsProtection: the NM-tree role handoff must leave the
// node continuously protected.
func TestTransferSlotKeepsProtection(t *testing.T) {
	for _, name := range []string{"hp", "he"} {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 2)
			s := r.scheme
			var p Ptr
			h := s.Alloc(0)
			s.Write(0, &p, h)
			s.StartOp(0)
			s.Read(0, 4, &p)        // protect in slot 4
			s.TransferSlot(0, 4, 1) // move protection to slot 1
			s.Read(0, 4, &p)        // reuse slot 4 for something else... same node here
			s.Unreserve(0, 4)       // drop slot 4
			// Slot 1 must still protect h.
			s.Write(1, &p, mem.Nil)
			s.Retire(1, h)
			s.Drain(1)
			if r.pool.State(h) == mem.StateFree {
				t.Fatal("freed while protected via transferred slot")
			}
			s.EndOp(0)
			s.Drain(1)
			if r.pool.State(h) != mem.StateFree {
				t.Fatal("not freed after EndOp")
			}
		})
	}
}

// TestTagTPAReadDetectsReuse: the type-preserving variant's double-check
// must reject a block recycled between the pointer load and the header
// read. We simulate the recycle deterministically.
func TestTagTPAReadDetectsReuse(t *testing.T) {
	r := newRig(t, "tagibr-tpa", 2)
	s := r.scheme
	clk := epochOf(s)
	var p Ptr
	h := s.Alloc(0)
	s.Write(0, &p, h)
	s.StartOp(0)
	got := s.Read(0, 0, &p)
	if !got.SameAddr(h) {
		t.Fatalf("read %v want %v", got, h)
	}
	// Upper must cover the block's birth.
	if up := resOf(s).At(0).Upper(); up < r.pool.Birth(h) {
		t.Fatalf("upper %d < birth %d", up, r.pool.Birth(h))
	}
	s.EndOp(0)
	// Recycle the slot with a newer birth; a fresh read through a *stale
	// pointer cell* must still return the new, covered value.
	s.Write(1, &p, mem.Nil)
	s.Retire(1, h)
	s.Drain(1)
	clk.Advance()
	h2 := s.Alloc(1) // same slot, newer birth
	if !h2.SameAddr(h) {
		t.Skip("allocator did not recycle the slot; cannot stage the race")
	}
	s.Write(1, &p, h2)
	s.StartOp(0)
	got = s.Read(0, 0, &p)
	if up := resOf(s).At(0).Upper(); up < r.pool.Birth(h2) {
		t.Fatalf("upper %d does not cover recycled birth %d", up, r.pool.Birth(h2))
	}
	s.EndOp(0)
}

// TestNoMMLeakAccountingUnderChurn pins the leaking baseline's books.
func TestNoMMLeakAccountingUnderChurn(t *testing.T) {
	r := newRig(t, "none", 2)
	s := r.scheme
	for i := 0; i < 500; i++ {
		h := s.Alloc(i % 2)
		s.Retire(i%2, h)
	}
	if got := TotalUnreclaimed(s, 2); got != 500 {
		t.Fatalf("TotalUnreclaimed = %d, want 500", got)
	}
	st := r.pool.Stats()
	if st.Frees != 0 {
		t.Fatalf("NoMM freed %d blocks", st.Frees)
	}
}

// TestReservationIsolation: one thread's EndOp must not disturb another's
// reservation.
func TestReservationIsolation(t *testing.T) {
	for _, name := range []string{"ebr", "tagibr", "2geibr", "poibr"} {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 3)
			s := r.scheme
			s.StartOp(0)
			s.StartOp(1)
			lo0 := resOf(s).At(0).Lower()
			s.EndOp(1)
			if resOf(s).At(0).Lower() != lo0 {
				t.Fatal("EndOp(1) disturbed reservation of thread 0")
			}
			if resOf(s).At(1).Lower() != epoch.None {
				t.Fatal("EndOp(1) did not clear its own reservation")
			}
			s.EndOp(0)
		})
	}
}

// TestUnreclaimedTracksListLength: the Fig. 9 metric must track the retire
// list exactly through retire/scan cycles.
func TestUnreclaimedTracksListLength(t *testing.T) {
	r := newRig(t, "tagibr", 2)
	s := r.scheme
	resOf(s).At(1).Set(1, math.MaxUint64-1) // pin everything
	for i := 1; i <= 10; i++ {
		s.Retire(0, s.Alloc(0))
		if got := s.Unreclaimed(0); got != i {
			t.Fatalf("after %d retires: Unreclaimed = %d", i, got)
		}
	}
	resOf(s).At(1).Clear()
	s.Drain(0)
	if got := s.Unreclaimed(0); got != 0 {
		t.Fatalf("after drain: Unreclaimed = %d", got)
	}
}

// TestInterleavedOpsManyThreads drives a randomized schedule of the raw
// scheme API (no data structure) across goroutines as a liveness smoke.
func TestInterleavedOpsManyThreads(t *testing.T) {
	for _, name := range reclaimers() {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 6)
			s := r.scheme
			var cells [8]Ptr
			var wg sync.WaitGroup
			for tid := 0; tid < 6; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 0; i < 2000; i++ {
						s.StartOp(tid)
						c := &cells[(i*7+tid)%8]
						h := s.Alloc(tid)
						if h.IsNil() {
							s.EndOp(tid)
							continue
						}
						old := s.Read(tid, 0, c)
						if s.CompareAndSwap(tid, c, old, h) {
							if !old.IsNil() {
								s.Retire(tid, old)
							}
						} else {
							r.pool.Free(tid, h)
						}
						s.EndOp(tid)
					}
				}(tid)
			}
			wg.Wait()
			for i := range cells {
				if h := cells[i].Raw(); !h.IsNil() {
					s.Retire(0, cells[i].Raw())
				}
			}
			DrainAll(s, 6)
			if got := TotalUnreclaimed(s, 6); got != 0 {
				t.Fatalf("%d unreclaimed after quiescent drain", got)
			}
		})
	}
}

// TestScanStats verifies the reclamation-work accounting.
func TestScanStats(t *testing.T) {
	r := newRig(t, "tagibr", 1) // EmptyFreq 4
	s := r.scheme.(*TagIBR)
	for i := 0; i < 8; i++ {
		s.Retire(0, s.Alloc(0))
	}
	st := s.ScanStats()
	if st.Scans != 2 {
		t.Fatalf("scans = %d, want 2 (8 retires, freq 4)", st.Scans)
	}
	if st.Freed == 0 || st.Freed > 8 {
		t.Fatalf("freed = %d", st.Freed)
	}
	if st.MeanListLen() <= 0 {
		t.Fatalf("mean list len = %v", st.MeanListLen())
	}
	var zero ScanStats
	if zero.MeanListLen() != 0 {
		t.Fatal("zero-scan mean should be 0")
	}
}
