package core_test

import (
	"fmt"

	"ibr/internal/core"
	"ibr/internal/mem"
)

type node struct {
	value uint64
	next  core.Ptr
}

// Example shows the Fig. 1 lifecycle on a bare scheme: allocate, publish,
// protect with a read, detach, retire — and observe that reclamation waits
// for the reader.
func Example() {
	pool := mem.New[node](mem.Options[node]{Threads: 2})
	scheme, _ := core.New("tagibr", pool, core.Options{Threads: 2})

	var shared core.Ptr

	// Writer (thread 0): allocate, initialize, publish.
	h := scheme.Alloc(0)
	pool.Get(h).value = 42
	scheme.Write(0, &shared, h)

	// Reader (thread 1): protected read inside an operation.
	scheme.StartOp(1)
	got := scheme.Read(1, 0, &shared)
	fmt.Println("reader sees:", pool.Get(got).value)

	// Writer detaches and retires; the block must survive the reader.
	scheme.Write(0, &shared, mem.Nil)
	scheme.Retire(0, h)
	scheme.Drain(0)
	fmt.Println("freed while reader active:", pool.State(h) == mem.StateFree)

	// Reader finishes; now the scan reclaims.
	scheme.EndOp(1)
	scheme.Drain(0)
	fmt.Println("freed after reader done: ", pool.State(h) == mem.StateFree)

	// Output:
	// reader sees: 42
	// freed while reader active: false
	// freed after reader done:  true
}
