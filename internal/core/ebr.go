package core

import (
	"ibr/internal/mem"
)

// EBR is epoch-based reclamation, the pseudocode of Fig. 2 of the paper: a
// thread reserves the global epoch at start_op, implicitly protecting every
// block not retired before that epoch. It is the fastest scheme and the
// usability baseline IBR matches — but it is not robust: one stalled thread
// pins every block retired at or after its start epoch, without bound.
type EBR struct {
	base
}

// NewEBR builds an epoch-based reclaimer.
func NewEBR(m Memory, o Options) *EBR {
	return &EBR{base: newBase("ebr", m, o)}
}

// StartOp posts the current epoch as the thread's reservation (Fig. 2
// line 21).
func (s *EBR) StartOp(tid int) {
	e := s.clock.Now()
	s.res.At(tid).Set(e, e)
}

// EndOp clears the reservation to MAX (Fig. 2 line 23).
func (s *EBR) EndOp(tid int) { s.res.At(tid).Clear() }

// RestartOp renews the reservation with the current epoch.
func (s *EBR) RestartOp(tid int) { s.StartOp(tid) }

// Alloc allocates a block. Fig. 2's EBR advances the epoch in retire, not
// alloc, and keeps no birth epochs; Alloc is therefore uninstrumented.
func (s *EBR) Alloc(tid int) mem.Handle { return s.allocPlain(tid, s.Drain) }

// Retire stamps the retire epoch, appends to the thread-local list, and —
// per Fig. 2 lines 15–19 — advances the global epoch every EpochFreq
// retirements and scans every EmptyFreq retirements (both inside the
// shared retire helper).
func (s *EBR) Retire(tid int, h mem.Handle) { s.retire(tid, h, s.Drain) }

// Read is an uninstrumented load: EBR's reservation already covers every
// block the operation can reach. This is why EBR is the fast end of the
// spectrum — no per-read work at all.
func (s *EBR) Read(tid, idx int, p *Ptr) mem.Handle { return p.Raw() }

// ReadRoot is Read.
func (s *EBR) ReadRoot(tid, idx int, p *Ptr) mem.Handle { return p.Raw() }

// Write is an uninstrumented store (plus the traced-span publish hook).
func (s *EBR) Write(tid int, p *Ptr, h mem.Handle) {
	p.setRaw(h)
	if s.obs != nil {
		s.publishSpan(tid, h)
	}
}

// CompareAndSwap is an uninstrumented CAS.
func (s *EBR) CompareAndSwap(tid int, p *Ptr, old, new mem.Handle) bool {
	if p.bits.CompareAndSwap(uint64(old), uint64(new)) {
		if s.obs != nil {
			s.publishSpan(tid, new)
		}
		return true
	}
	return false
}

// Drain runs Fig. 2's empty(): free every block retired strictly before
// the earliest reserved epoch. The freeable blocks form a prefix of the
// retire list (it is appended in retire-epoch order), so the scan stops at
// the first still-reserved block instead of re-walking the backlog; when no
// thread is in an operation (MinLower == None) everything is freed.
func (s *EBR) Drain(tid int) {
	s.scanRetiredBefore(tid, s.res.MinLower())
}

// Robust is false: this is the defining weakness of EBR (§1, §2.2).
func (s *EBR) Robust() bool { return false }
