package core

// TransferSlot is a no-op for schemes without per-slot protection (all
// epoch- and interval-based schemes); HP and HE override it.
func (b *base) TransferSlot(tid, from, to int) {}
