package core

// This file is the tid-transfer surface of the reclamation substrate: the
// primitives that move protection or reclamation state from one thread id
// to another. TransferSlot is the benign, in-operation form (a traversal's
// node roles shift under one tid). AdoptRetired and ClearReservation are the
// dangerous, cross-tid form used by the serving engine's stall quarantine:
// they act on ANOTHER tid's state, which is sound only when that tid's
// holder can be proven to never act under it again (its goroutine is parked
// holding no node references, or has exited). ibrlint's retirefree analyzer
// flags every call outside internal/core and internal/mem so each use site
// must carry an //ibrlint:ignore directive stating that evidence — see
// DESIGN.md §7 for the safety argument.

// TransferSlot is a no-op for schemes without per-slot protection (all
// epoch- and interval-based schemes); HP and HE override it.
func (b *base) TransferSlot(tid, from, to int) {}

// AdoptRetired moves every block in from's retire store into to's,
// returning the number of blocks adopted. Both stores keep each bucket's
// retire epochs sorted — the invariant the prefix (EBR) and merge-pointer
// (summarized) scans rely on — so adoption merges bucket-by-bucket: buckets
// with the same birth-epoch key merge their SoA arrays by retire epoch (the
// clock is global and monotone, but the two threads' retirements interleave
// arbitrarily, and a naive append would put an old orphaned backlog after
// to's fresh tail); buckets whose key only one side has move wholesale,
// without copying a block.
//
// The caller must own tid `to` (be its single goroutine) and must have
// established that no goroutine owns `from`: the from-side retire store is
// read without synchronization, exactly like its owner would read it.
func (b *base) AdoptRetired(from, to int) int {
	if from == to {
		return 0
	}
	src := &b.ts[from]
	dst := &b.ts[to]
	n := dst.store.adopt(&src.store)
	if n == 0 {
		return 0
	}
	src.unreclaimed.Store(0)
	dst.unreclaimed.Store(int64(dst.store.count))
	return n
}

// ClearReservation withdraws tid's published reservation on its behalf —
// EndOp executed by someone else. The epoch/interval schemes clear the
// reservation-table entry; HP and HE override it to clear their hazard and
// era slots instead. After the call, no retired block is pinned by tid,
// which is what lets a quarantined staller's backlog drain without waiting
// for the stall to end (the robustness bar of §4.3.1 turned into an
// operation instead of an observation).
func (b *base) ClearReservation(tid int) {
	b.res.At(tid).Clear()
}

// Transferer is the cross-tid transfer surface, implemented by every scheme
// via base (HP/HE override ClearReservation).
type Transferer interface {
	AdoptRetired(from, to int) int
	ClearReservation(tid int)
}

// AdoptRetired invokes the scheme's retire-list adoption if it supports the
// transfer surface (every registered scheme does), else reports 0.
func AdoptRetired(s Scheme, from, to int) int {
	if t, ok := s.(Transferer); ok {
		return t.AdoptRetired(from, to)
	}
	return 0
}

// ClearReservation invokes the scheme's cross-tid reservation clear if it
// supports the transfer surface.
func ClearReservation(s Scheme, tid int) {
	if t, ok := s.(Transferer); ok {
		t.ClearReservation(tid)
	}
}
