package core

import (
	"math"
	"sync"
	"testing"

	"ibr/internal/epoch"
	"ibr/internal/mem"
)

// tnode is the node type used by core tests: a payload plus one link, like
// a list node.
type tnode struct {
	key  uint64
	next Ptr
}

// testRig couples a pool and a scheme with small cadence settings so tests
// can observe epoch advances and scans without thousands of operations.
type testRig struct {
	pool   *mem.Pool[tnode]
	scheme Scheme
}

func newRig(t *testing.T, name string, threads int) *testRig {
	t.Helper()
	pool := mem.New[tnode](mem.Options[tnode]{Threads: threads, MaxSlots: 1 << 16})
	s, err := New(name, pool, Options{Threads: threads, EpochFreq: 4, EmptyFreq: 4})
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{pool: pool, scheme: s}
}

// reclaimers are the schemes that actually free memory (everything but the
// leaking baseline).
func reclaimers() []string {
	var out []string
	for _, n := range Names() {
		if n != "none" {
			out = append(out, n)
		}
	}
	return out
}

func TestRegistryNames(t *testing.T) {
	pool := mem.New[tnode](mem.Options[tnode]{Threads: 1})
	for _, n := range Names() {
		s, err := New(n, pool, Options{Threads: 1})
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if s.Name() != n {
			t.Fatalf("New(%q).Name() = %q", n, s.Name())
		}
	}
	if _, err := New("bogus", pool, Options{Threads: 1}); err == nil {
		t.Fatal("unknown scheme did not error")
	}
}

// TestNamesSchemesSameSet pins the PR-6 fix: Names() (paper-plot order) and
// Schemes() (sorted) must derive from the one registry table, so they hold
// the identical set and registering a scheme can't silently miss one list.
func TestNamesSchemesSameSet(t *testing.T) {
	names, schemes := Names(), Schemes()
	if len(names) != len(schemes) {
		t.Fatalf("Names() has %d entries, Schemes() has %d", len(names), len(schemes))
	}
	set := make(map[string]bool, len(names))
	for _, n := range names {
		if set[n] {
			t.Fatalf("Names() lists %q twice", n)
		}
		set[n] = true
	}
	for _, n := range schemes {
		if !set[n] {
			t.Fatalf("Schemes() has %q which Names() lacks", n)
		}
	}
	for i := 1; i < len(schemes); i++ {
		if schemes[i-1] >= schemes[i] {
			t.Fatalf("Schemes() not sorted at %q >= %q", schemes[i-1], schemes[i])
		}
	}
	for _, want := range []string{"hyaline", "debra"} {
		if !set[want] {
			t.Fatalf("registry missing %q", want)
		}
	}
}

func TestRegistryAliases(t *testing.T) {
	pool := mem.New[tnode](mem.Options[tnode]{Threads: 1})
	for alias, canonical := range map[string]string{
		"nomm": "none", "epoch": "ebr", "2ge": "2geibr",
	} {
		s, err := New(alias, pool, Options{Threads: 1})
		if err != nil || s.Name() != canonical {
			t.Fatalf("alias %q: scheme %v err %v", alias, s, err)
		}
	}
}

func TestRobustFlagsMatchFig7(t *testing.T) {
	// Fig. 7: EBR is the only non-robust scheme in the paper's comparison.
	// The post-paper engines are honest about needing external help: plain
	// Hyaline pins batches behind a stalled slot, and DEBRA without the
	// serving layer's neutralization watchdog is EBR.
	want := map[string]bool{
		"none": true, "ebr": false, "hp": true, "he": true, "poibr": true,
		"tagibr": true, "tagibr-faa": true, "tagibr-wcas": true,
		"tagibr-tpa": true, "2geibr": true,
		"hyaline": false, "debra": false,
	}
	for _, n := range Names() {
		if _, ok := want[n]; !ok {
			t.Fatalf("scheme %q missing from the Fig. 7 want-map", n)
		}
		r := newRig(t, n, 1)
		if r.scheme.Robust() != want[n] {
			t.Errorf("%s.Robust() = %v, want %v", n, r.scheme.Robust(), want[n])
		}
	}
}

// TestProtectedBlockSurvivesReclaim is the central safety choreography:
// a reader protects a block; a second thread detaches, retires and scans;
// the block must survive until the reader finishes, and be reclaimed after.
func TestProtectedBlockSurvivesReclaim(t *testing.T) {
	for _, name := range reclaimers() {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 2)
			s, pool := r.scheme, r.pool

			var root Ptr
			h := s.Alloc(0)
			pool.Get(h).key = 42
			s.Write(0, &root, h)

			// Reader (tid 0) protects the block.
			s.StartOp(0)
			got := s.ReadRoot(0, 0, &root)
			if !got.SameAddr(h) {
				t.Fatalf("ReadRoot = %v, want %v", got, h)
			}
			if pool.Get(got).key != 42 {
				t.Fatal("payload wrong through protected read")
			}

			// Writer (tid 1) detaches and retires.
			s.StartOp(1)
			s.Write(1, &root, mem.Nil)
			s.Retire(1, got)
			s.EndOp(1)

			s.Drain(1)
			if pool.State(h) == mem.StateFree {
				t.Fatalf("%s freed a block while a reader held it", name)
			}

			// Reader finishes; now the block must be reclaimable.
			s.EndOp(0)
			s.Drain(1)
			if pool.State(h) != mem.StateFree {
				t.Fatalf("%s failed to free an unprotected retired block", name)
			}
		})
	}
}

// TestNoMMNeverFrees pins the leaking baseline's defining behaviour.
func TestNoMMNeverFrees(t *testing.T) {
	r := newRig(t, "none", 1)
	s, pool := r.scheme, r.pool
	h := s.Alloc(0)
	s.Retire(0, h)
	s.Drain(0)
	if pool.State(h) != mem.StateRetired {
		t.Fatalf("state = %v, want retired forever", pool.State(h))
	}
	if s.Unreclaimed(0) != 1 {
		t.Fatalf("Unreclaimed = %d, want 1", s.Unreclaimed(0))
	}
}

// epochOf digs out the scheme's clock; all real schemes embed base.
func epochOf(s Scheme) *epoch.Clock {
	type clocked interface{ Clock() *epoch.Clock }
	return s.(clocked).Clock()
}

func resOf(s Scheme) *epoch.Table {
	type reserved interface{ Reservations() *epoch.Table }
	return s.(reserved).Reservations()
}

func TestAllocAdvancesEpochEveryFreq(t *testing.T) {
	for _, name := range []string{"he", "poibr", "tagibr", "tagibr-faa", "tagibr-wcas", "tagibr-tpa", "2geibr"} {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 1) // EpochFreq = 4
			s := r.scheme
			e0 := epochOf(s).Now()
			for i := 0; i < 8; i++ {
				if s.Alloc(0).IsNil() {
					t.Fatal("alloc failed")
				}
			}
			if got := epochOf(s).Now(); got != e0+2 {
				t.Fatalf("epoch advanced %d times in 8 allocs with freq 4, want 2", got-e0)
			}
		})
	}
}

func TestEBRAdvancesEpochOnRetire(t *testing.T) {
	r := newRig(t, "ebr", 1) // EpochFreq = 4 retirements
	s := r.scheme
	e0 := epochOf(s).Now()
	for i := 0; i < 8; i++ {
		s.Retire(0, s.Alloc(0))
	}
	if got := epochOf(s).Now(); got != e0+2 {
		t.Fatalf("epoch advanced %d times in 8 retires with freq 4, want 2", got-e0)
	}
}

func TestBirthEpochStamped(t *testing.T) {
	for _, name := range []string{"he", "poibr", "tagibr", "tagibr-wcas", "2geibr"} {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 1)
			s := r.scheme
			h := s.Alloc(0)
			if b := r.pool.Birth(h); b != epochOf(s).Now() {
				t.Fatalf("birth = %d, epoch = %d", b, epochOf(s).Now())
			}
		})
	}
}

// TestEmptyFreqCadence verifies retirements trigger scans automatically:
// with no reservations, everything should be reclaimed by the EmptyFreq'th
// retire without an explicit Drain.
func TestEmptyFreqCadence(t *testing.T) {
	for _, name := range reclaimers() {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 1) // EmptyFreq = 4
			s := r.scheme
			for i := 0; i < 4; i++ {
				s.Retire(0, s.Alloc(0))
			}
			if got := s.Unreclaimed(0); got != 0 {
				t.Fatalf("Unreclaimed = %d after %d retirements, want 0", got, 4)
			}
		})
	}
}

func TestDrainAllAndTotalUnreclaimed(t *testing.T) {
	r := newRig(t, "ebr", 3)
	s := r.scheme
	for tid := 0; tid < 3; tid++ {
		s.Retire(tid, s.Alloc(tid))
	}
	if got := TotalUnreclaimed(s, 3); got != 3 {
		t.Fatalf("TotalUnreclaimed = %d, want 3", got)
	}
	DrainAll(s, 3)
	if got := TotalUnreclaimed(s, 3); got != 0 {
		t.Fatalf("TotalUnreclaimed after DrainAll = %d, want 0", got)
	}
}

// TestIntervalReclamationPrecision builds blocks with known lifetimes and a
// reservation with a known interval, and checks that exactly the
// non-intersecting blocks are freed — Fig. 5's empty() truth table.
func TestIntervalReclamationPrecision(t *testing.T) {
	for _, name := range []string{"poibr", "tagibr", "tagibr-faa", "tagibr-wcas", "tagibr-tpa", "2geibr"} {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 2)
			s := r.scheme
			clk := epochOf(s)

			// Block A: lifetime [1, 2]. Block B: lifetime [4, 5].
			a := s.Alloc(0) // birth 1
			clk.Advance()   // epoch 2
			s.Retire(0, a)  // retire 2
			clk.Advance()   // epoch 3
			clk.Advance()   // epoch 4
			b := s.Alloc(0) // birth 4
			clk.Advance()   // epoch 5
			s.Retire(0, b)  // retire 5

			// Reservation [3,3]: intersects neither lifetime, so both must go.
			resOf(s).At(1).Set(3, 3)
			s.Drain(0)
			if r.pool.State(a) != mem.StateFree || r.pool.State(b) != mem.StateFree {
				t.Fatal("reservation [3,3] should protect neither [1,2] nor [4,5]")
			}
		})
	}
}

// TestIntervalConflictTable drives the scan predicate directly through
// scheme state with hand-placed reservations.
func TestIntervalConflictTable(t *testing.T) {
	for _, name := range []string{"tagibr", "2geibr", "poibr"} {
		t.Run(name, func(t *testing.T) {
			cases := []struct {
				lo, hi uint64 // reservation
				free   bool   // block [3,5] freeable?
			}{
				{1, 2, true},
				{1, 3, false},
				{4, 4, false},
				{5, 9, false},
				{6, 9, true},
				{epoch.None, epoch.None, true},
			}
			for _, c := range cases {
				r := newRig(t, name, 2)
				s := r.scheme
				clk := epochOf(s)
				for clk.Now() < 3 {
					clk.Advance()
				}
				h := s.Alloc(0) // birth 3
				for clk.Now() < 5 {
					clk.Advance()
				}
				s.Retire(0, h) // retire 5
				if c.lo != epoch.None {
					resOf(s).At(1).Set(c.lo, c.hi)
				}
				s.Drain(0)
				gotFree := r.pool.State(h) == mem.StateFree
				if gotFree != c.free {
					t.Errorf("res [%d,%d] vs block [3,5]: freed=%v want %v",
						c.lo, c.hi, gotFree, c.free)
				}
			}
		})
	}
}

// TestEBRReclaimBoundary pins Fig. 2's strict inequality: blocks retired in
// the reserved epoch are protected; blocks retired strictly before are not.
func TestEBRReclaimBoundary(t *testing.T) {
	r := newRig(t, "ebr", 2)
	s := r.scheme
	clk := epochOf(s)

	early := s.Alloc(0)
	s.Retire(0, early) // retired at epoch 1
	clk.Advance()      // epoch 2
	late := s.Alloc(0)
	s.Retire(0, late) // retired at epoch 2

	resOf(s).At(1).Set(2, 2) // reader started in epoch 2
	s.Drain(0)
	if r.pool.State(early) != mem.StateFree {
		t.Fatal("block retired before reserved epoch not freed")
	}
	if r.pool.State(late) == mem.StateFree {
		t.Fatal("block retired in reserved epoch was freed")
	}
}

func TestHPUnreserveReleasesProtection(t *testing.T) {
	for _, name := range []string{"hp", "he"} {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 2)
			s := r.scheme
			var root Ptr
			h := s.Alloc(0)
			s.Write(0, &root, h)

			s.StartOp(0)
			s.Read(0, 3, &root) // protect via slot 3

			s.Write(1, &root, mem.Nil)
			s.Retire(1, h)
			s.Drain(1)
			if r.pool.State(h) == mem.StateFree {
				t.Fatal("freed while slot 3 protected it")
			}
			s.Unreserve(0, 3)
			s.Drain(1)
			if r.pool.State(h) != mem.StateFree {
				t.Fatal("not freed after Unreserve")
			}
			s.EndOp(0)
		})
	}
}

func TestHPEndOpClearsAllSlots(t *testing.T) {
	r := newRig(t, "hp", 2)
	s := r.scheme
	var p0, p1 Ptr
	a, b := s.Alloc(0), s.Alloc(0)
	s.Write(0, &p0, a)
	s.Write(0, &p1, b)

	s.StartOp(0)
	s.Read(0, 0, &p0)
	s.Read(0, 1, &p1)
	s.EndOp(0)

	s.Write(1, &p0, mem.Nil)
	s.Write(1, &p1, mem.Nil)
	s.Retire(1, a)
	s.Retire(1, b)
	s.Drain(1)
	if r.pool.State(a) != mem.StateFree || r.pool.State(b) != mem.StateFree {
		t.Fatal("EndOp did not clear hazard slots")
	}
}

func TestReadPreservesMarkBits(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 1)
			s := r.scheme
			var p Ptr
			h := s.Alloc(0)
			s.Write(0, &p, h.WithMark0())
			s.StartOp(0)
			got := s.Read(0, 0, &p)
			if !got.Mark0() || !got.SameAddr(h) {
				t.Fatalf("Read = %v, want marked %v", got, h)
			}
			s.EndOp(0)
		})
	}
}

func TestCASSemantics(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 1)
			s := r.scheme
			var p Ptr
			a, b := s.Alloc(0), s.Alloc(0)
			s.StartOp(0)
			s.Write(0, &p, a)
			cur := s.Read(0, 0, &p)

			// Failing CAS: wrong expected value.
			if s.CompareAndSwap(0, &p, b, a) {
				t.Fatal("CAS succeeded with wrong expected value")
			}
			// Succeeding CAS with the value just read.
			if !s.CompareAndSwap(0, &p, cur, b) {
				t.Fatal("CAS failed with correct expected value")
			}
			if got := s.Read(0, 0, &p); !got.SameAddr(b) {
				t.Fatalf("after CAS, read %v want %v", got, b)
			}
			// Mark transition: unmarked -> marked, as Harris does.
			cur = s.Read(0, 0, &p)
			if !s.CompareAndSwap(0, &p, cur, cur.WithMark0()) {
				t.Fatal("mark CAS failed")
			}
			if got := s.Read(0, 0, &p); !got.Mark0() {
				t.Fatal("mark lost")
			}
			s.EndOp(0)
		})
	}
}

func TestCASNilTransitions(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 1)
			s := r.scheme
			var p Ptr
			h := s.Alloc(0)
			s.StartOp(0)
			if !s.CompareAndSwap(0, &p, mem.Nil, h) {
				t.Fatal("CAS from nil failed")
			}
			cur := s.Read(0, 0, &p)
			if !s.CompareAndSwap(0, &p, cur, mem.Nil) {
				t.Fatal("CAS to nil failed")
			}
			if got := s.Read(0, 0, &p); !got.IsNil() {
				t.Fatalf("expected nil, got %v", got)
			}
			s.EndOp(0)
		})
	}
}

func TestWCASPacksPreciseBirth(t *testing.T) {
	r := newRig(t, "tagibr-wcas", 1)
	s := r.scheme
	var p Ptr
	h := s.Alloc(0)
	birth := r.pool.Birth(h)
	s.Write(0, &p, h)
	if w := p.Raw(); w.Epoch() != birth {
		t.Fatalf("stored word epoch = %d, want birth %d", w.Epoch(), birth)
	}
	s.StartOp(0)
	got := s.Read(0, 0, &p)
	if got.Epoch() != birth || !got.SameAddr(h) {
		t.Fatalf("read %v, want addr %v epoch %d", got, h, birth)
	}
	s.EndOp(0)
}

func TestTagIBRBornBeforeMonotone(t *testing.T) {
	for _, name := range []string{"tagibr", "tagibr-faa"} {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 1)
			s := r.scheme
			clk := epochOf(s)
			var p Ptr
			newer := s.Alloc(0) // birth 1
			clk.Advance()
			clk.Advance()
			newest := s.Alloc(0) // birth 3
			s.Write(0, &p, newest)
			if p.born.Load() != 3 {
				t.Fatalf("born = %d, want 3", p.born.Load())
			}
			// Writing an *older* block must not lower born_before.
			s.Write(0, &p, newer)
			if p.born.Load() != 3 {
				t.Fatalf("born dropped to %d; must be monotone", p.born.Load())
			}
		})
	}
}

func TestTagIBRReadRaisesUpper(t *testing.T) {
	for _, name := range []string{"tagibr", "tagibr-faa", "tagibr-wcas", "tagibr-tpa"} {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 1)
			s := r.scheme
			clk := epochOf(s)
			var p Ptr
			s.StartOp(0) // reservation [1,1]
			for clk.Now() < 5 {
				clk.Advance()
			}
			h := s.Alloc(0) // birth 5
			s.Write(0, &p, h)
			s.Read(0, 0, &p)
			if up := resOf(s).At(0).Upper(); up < 5 {
				t.Fatalf("upper = %d after reading a birth-5 block, want >= 5", up)
			}
			if lo := resOf(s).At(0).Lower(); lo != 1 {
				t.Fatalf("lower = %d, want 1 (pinned at start)", lo)
			}
			s.EndOp(0)
		})
	}
}

func Test2GEReadRaisesUpperToCurrentEpoch(t *testing.T) {
	r := newRig(t, "2geibr", 1)
	s := r.scheme
	clk := epochOf(s)
	var p Ptr
	h := s.Alloc(0)
	s.Write(0, &p, h)
	s.StartOp(0)
	for clk.Now() < 7 {
		clk.Advance()
	}
	s.Read(0, 0, &p)
	if up := resOf(s).At(0).Upper(); up != 7 {
		t.Fatalf("upper = %d, want current epoch 7", up)
	}
	s.EndOp(0)
}

func TestRestartOpRenewsReservation(t *testing.T) {
	for _, name := range []string{"ebr", "poibr", "tagibr", "2geibr"} {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 1)
			s := r.scheme
			clk := epochOf(s)
			s.StartOp(0)
			lo0 := resOf(s).At(0).Lower()
			for clk.Now() < lo0+5 {
				clk.Advance()
			}
			s.RestartOp(0)
			if lo := resOf(s).At(0).Lower(); lo != lo0+5 {
				t.Fatalf("lower = %d after restart, want %d", lo, lo0+5)
			}
			s.EndOp(0)
		})
	}
}

func TestEndOpClearsReservation(t *testing.T) {
	for _, name := range []string{"ebr", "poibr", "tagibr", "tagibr-wcas", "2geibr"} {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 1)
			s := r.scheme
			s.StartOp(0)
			s.EndOp(0)
			res := resOf(s).At(0)
			if res.Lower() != epoch.None || res.Upper() != epoch.None {
				t.Fatalf("reservation [%d,%d] not cleared", res.Lower(), res.Upper())
			}
		})
	}
}

// TestRobustnessBound is Theorem 2 in executable form: with one stalled
// reader, a robust scheme's unreclaimed count stays bounded while EBR's
// grows with the churn.
func TestRobustnessBound(t *testing.T) {
	const churn = 4000
	for _, name := range reclaimers() {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, name, 2) // EpochFreq 4, EmptyFreq 4
			s := r.scheme

			// tid 0 parks inside an operation holding a protected root.
			var root Ptr
			h := s.Alloc(1)
			s.Write(1, &root, h)
			s.StartOp(0)
			s.ReadRoot(0, 0, &root)
			// (no EndOp: stalled)

			// tid 1 churns: every allocated block is immediately retired.
			for i := 0; i < churn; i++ {
				g := s.Alloc(1)
				if g.IsNil() {
					t.Fatal("pool exhausted: reclamation wedged")
				}
				s.Retire(1, g)
			}
			s.Drain(1)
			got := s.Unreclaimed(1)
			if s.Robust() {
				// The stalled interval can cover only blocks born while its
				// upper endpoint was still current; everything born after
				// must drain. Allow generous slack.
				if got > 200 {
					t.Fatalf("%s: %d unreclaimed with a stalled thread; expected bounded", name, got)
				}
			} else if got < churn*9/10 {
				t.Fatalf("EBR: %d unreclaimed, expected ~%d pinned by the stalled thread", got, churn)
			}
			s.EndOp(0)
		})
	}
}

// TestConcurrentChurnAllSchemes hammers alloc/write/read/retire from many
// goroutines over a shared array of pointer cells; the pool's state machine
// (double-free/double-retire panics) and the poison pattern catch unsound
// reclamation.
func TestConcurrentChurnAllSchemes(t *testing.T) {
	const (
		threads = 4
		iters   = 8000
		cells   = 64
	)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			pool := mem.New[tnode](mem.Options[tnode]{
				Threads:  threads,
				MaxSlots: 1 << 18,
				Poison:   func(n *tnode) { n.key = math.MaxUint64 },
			})
			s, err := New(name, pool, Options{Threads: threads, EpochFreq: 8, EmptyFreq: 8})
			if err != nil {
				t.Fatal(err)
			}
			var cellsArr [cells]Ptr
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rng := uint64(tid)*0x9E3779B97F4A7C15 + 1
					for i := 0; i < iters; i++ {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						c := &cellsArr[rng%cells]
						s.StartOp(tid)
						switch rng % 3 {
						case 0: // replace: swap a new block in, retire the old
							nh := s.Alloc(tid)
							if nh.IsNil() {
								s.EndOp(tid)
								continue
							}
							pool.Get(nh).key = rng
							old := s.Read(tid, 0, c)
							if s.CompareAndSwap(tid, c, old, nh) {
								if !old.IsNil() {
									s.Retire(tid, old)
								}
							} else {
								pool.Free(tid, nh) // never published
							}
						case 1: // remove: swap nil in, retire the old
							old := s.Read(tid, 0, c)
							if !old.IsNil() && s.CompareAndSwap(tid, c, old, mem.Nil) {
								s.Retire(tid, old)
							}
						default: // read and check for poison
							h := s.Read(tid, 0, c)
							if !h.IsNil() {
								if pool.Get(h).key == math.MaxUint64 {
									t.Errorf("%s: read a poisoned (freed) block", name)
									s.EndOp(tid)
									return
								}
							}
						}
						s.EndOp(tid)
					}
				}(tid)
			}
			wg.Wait()
			if name == "none" {
				return
			}
			// Detach everything, drain: all retired blocks must free.
			for i := range cellsArr {
				if h := cellsArr[i].Raw(); !h.IsNil() {
					s.Write(0, &cellsArr[i], mem.Nil)
					s.Retire(0, h)
				}
			}
			DrainAll(s, threads)
			if got := TotalUnreclaimed(s, threads); got != 0 {
				t.Fatalf("%s: %d blocks unreclaimed after quiescent drain", name, got)
			}
			st := pool.Stats()
			if st.Live() != 0 {
				t.Fatalf("%s: %d slots leaked", name, st.Live())
			}
		})
	}
}

// TestAllocRecoversViaDrain exhausts a tiny pool with retired blocks and
// checks Alloc reclaims and succeeds rather than failing.
func TestAllocRecoversViaDrain(t *testing.T) {
	for _, name := range reclaimers() {
		t.Run(name, func(t *testing.T) {
			pool := mem.New[tnode](mem.Options[tnode]{Threads: 1, MaxSlots: 64})
			s, _ := New(name, pool, Options{Threads: 1, EpochFreq: 1024, EmptyFreq: 1024})
			for i := 0; i < 64; i++ {
				h := s.Alloc(0)
				if h.IsNil() {
					t.Fatalf("alloc %d failed before exhaustion", i)
				}
				s.Retire(0, h)
			}
			// Pool is now fully retired; EmptyFreq hasn't triggered.
			if h := s.Alloc(0); h.IsNil() {
				t.Fatal("Alloc did not recover by draining its own garbage")
			}
		})
	}
}

func TestRetireNilPanics(t *testing.T) {
	r := newRig(t, "ebr", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("retire of nil did not panic")
		}
	}()
	r.scheme.Retire(0, mem.Nil)
}

func TestPtrRawRoundTrip(t *testing.T) {
	var p Ptr
	if !p.Raw().IsNil() {
		t.Fatal("zero Ptr not nil")
	}
	h := mem.FromSlot(5).WithMark1()
	p.setRaw(h)
	if p.Raw() != h {
		t.Fatal("Raw round trip failed")
	}
}
