package core

import (
	"testing"

	"ibr/internal/mem"
)

// Ablation benchmarks for the design choices DESIGN.md §1b calls out.
// Run with: go test ./internal/core -bench Ablation -benchtime 0.5s

// BenchmarkAblationReadRevalidation measures the publish-first read's
// retry cost as a function of epoch-advance pressure: the loop re-reads
// only when the epoch (2GE) or born tag (TagIBR) moved past the published
// upper endpoint, so the overhead the safe ordering adds over the
// (unsafe) literal Fig. 5/6 protocols is bounded by the advance rate.
func BenchmarkAblationReadRevalidation(b *testing.B) {
	for _, name := range []string{"tagibr", "2geibr"} {
		for _, advanceEvery := range []int{0, 64, 1} { // 0 = never
			label := map[int]string{0: "quiet-epoch", 64: "advance-per-64", 1: "advance-per-read"}[advanceEvery]
			b.Run(name+"/"+label, func(b *testing.B) {
				pool := mem.New[tnode](mem.Options[tnode]{Threads: 1})
				s, _ := New(name, pool, Options{Threads: 1, EpochFreq: 1 << 30, EmptyFreq: 1 << 30})
				var p Ptr
				h := s.Alloc(0)
				s.Write(0, &p, h)
				s.StartOp(0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if advanceEvery > 0 && i%advanceEvery == 0 {
						epochOf(s).Advance()
					}
					s.Read(0, 0, &p)
				}
				b.StopTimer()
				s.EndOp(0)
			})
		}
	}
}

// BenchmarkAblationScanCost measures empty() as a function of retire-list
// length — the quantity behind the single-CPU throughput inversion
// documented in EXPERIMENTS.md. One pinned reservation keeps every block
// unreclaimable. Historically each scan re-walked the full list (cost grew
// with list-len); the summarized scan skips the pinned run in one binary
// search, so the three sizes should now cost nearly the same per scan —
// that flattening is the regression this benchmark watches.
func BenchmarkAblationScanCost(b *testing.B) {
	for _, listLen := range []int{32, 1024, 32768} {
		b.Run(byLen(listLen), func(b *testing.B) {
			pool := mem.New[tnode](mem.Options[tnode]{Threads: 2, MaxSlots: 1 << 17})
			s, _ := New("tagibr", pool, Options{Threads: 2, EpochFreq: 64, EmptyFreq: 1 << 30})
			// Pin everything with a wide reservation on thread 1.
			resOf(s).At(1).Set(1, 1<<60)
			for i := 0; i < listLen; i++ {
				s.Retire(0, s.Alloc(0))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Drain(0) // scans listLen blocks, frees none
			}
			b.StopTimer()
			b.ReportMetric(float64(listLen), "list-len")
			resOf(s).At(1).Clear()
			s.Drain(0)
		})
	}
}

func byLen(n int) string {
	switch {
	case n < 100:
		return "list-32"
	case n < 10000:
		return "list-1k"
	default:
		return "list-32k"
	}
}
