package core

import (
	"sync/atomic"

	"ibr/internal/mem"
)

// NoMM is the paper's "No MM" baseline (§5): it never reclaims memory.
// Retired blocks are counted but leaked, so it has zero synchronization
// overhead and unbounded space — the upper bound on throughput and the
// reason manual reclamation exists at all.
type NoMM struct {
	base
	leaked []paddedCounter
}

type paddedCounter struct {
	_ [64]byte
	n atomic.Int64
	_ [56]byte
}

// NewNoMM builds the leaking baseline.
func NewNoMM(m Memory, o Options) *NoMM {
	return &NoMM{
		base:   newBase("none", m, o),
		leaked: make([]paddedCounter, o.withDefaults().Threads),
	}
}

// StartOp is a no-op: nothing is ever reclaimed, so nothing needs reserving.
func (s *NoMM) StartOp(tid int) { s.checkTid(tid) }

// EndOp is a no-op.
func (s *NoMM) EndOp(tid int) {}

// RestartOp is a no-op.
func (s *NoMM) RestartOp(tid int) {}

// Alloc allocates without epoch stamping; NoMM keeps no epochs at all.
func (s *NoMM) Alloc(tid int) mem.Handle { return s.allocPlain(tid, nil) }

// Retire leaks the block: it is marked retired (so tests can still verify
// lifecycle discipline) and counted, but never freed.
func (s *NoMM) Retire(tid int, h mem.Handle) {
	if h.IsNil() {
		panic("core: retire of nil handle")
	}
	s.mem.MarkRetired(h.Addr())
	s.leaked[tid].n.Add(1)
}

// Read is an uninstrumented load.
func (s *NoMM) Read(tid, idx int, p *Ptr) mem.Handle { return p.Raw() }

// ReadRoot is an uninstrumented load.
func (s *NoMM) ReadRoot(tid, idx int, p *Ptr) mem.Handle { return p.Raw() }

// Write is an uninstrumented store (plus the traced-span publish hook).
func (s *NoMM) Write(tid int, p *Ptr, h mem.Handle) {
	p.setRaw(h)
	if s.obs != nil {
		s.publishSpan(tid, h)
	}
}

// CompareAndSwap is an uninstrumented CAS.
func (s *NoMM) CompareAndSwap(tid int, p *Ptr, old, new mem.Handle) bool {
	if p.bits.CompareAndSwap(uint64(old), uint64(new)) {
		if s.obs != nil {
			s.publishSpan(tid, new)
		}
		return true
	}
	return false
}

// Drain is a no-op; there is no retire list.
func (s *NoMM) Drain(tid int) {}

// Unreclaimed reports the blocks leaked by tid.
func (s *NoMM) Unreclaimed(tid int) int { return int(s.leaked[tid].n.Load()) }

// Robust is vacuously true (nothing is ever blocked because nothing is
// ever reclaimed), but NoMM is of course unusable long-running.
func (s *NoMM) Robust() bool { return true }
