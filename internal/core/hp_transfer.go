package core

// TransferSlot copies the hazard in slot from into slot to: the node stays
// continuously protected across a role change, so no re-validation is
// needed.
func (s *HP) TransferSlot(tid, from, to int) {
	s.haz[tid][to].v.Store(s.haz[tid][from].v.Load())
}

// TransferSlot copies the era in slot from into slot to.
func (s *HE) TransferSlot(tid, from, to int) {
	s.eras[tid][to].v.Store(s.eras[tid][from].v.Load())
}

// ClearReservation clears every hazard slot of tid — EndOp on its behalf.
// Same caller obligations as the base version: tid's holder must be parked
// or dead, since a cleared hazard no longer protects a dereference.
func (s *HP) ClearReservation(tid int) {
	for i := range s.haz[tid] {
		s.haz[tid][i].v.Store(0)
	}
}

// ClearReservation clears every era slot of tid on its behalf.
func (s *HE) ClearReservation(tid int) {
	for i := range s.eras[tid] {
		s.eras[tid][i].v.Store(0)
	}
}
