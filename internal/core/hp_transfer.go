package core

// TransferSlot copies the hazard in slot from into slot to: the node stays
// continuously protected across a role change, so no re-validation is
// needed.
func (s *HP) TransferSlot(tid, from, to int) {
	s.haz[tid][to].v.Store(s.haz[tid][from].v.Load())
}

// TransferSlot copies the era in slot from into slot to.
func (s *HE) TransferSlot(tid, from, to int) {
	s.eras[tid][to].v.Store(s.eras[tid][from].v.Load())
}
