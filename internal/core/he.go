package core

import (
	"ibr/internal/mem"
	"ibr/internal/obs"
)

// HE is the hazard-eras scheme of Ramalhete and Correia (SPAA '17),
// described in §2.3 of the IBR paper: hazard pointers whose reservations
// are epoch ("era") values instead of addresses. Each block is tagged with
// the era it was born in and the era it was retired in; a protection slot
// holding era e protects every block whose [birth, retire] interval
// contains e. HE contributed the key observation IBR generalizes: block
// lifetimes can stand in for reachability.
//
// Like HP, HE is robust and needs per-read slot management (Unreserve);
// unlike HP, re-reads of pointers under an already-published era cost no
// fence.
type HE struct {
	base
	eras [][]hazSlot // 0 = unreserved (the clock starts at 1)
}

// NewHE builds a hazard-eras reclaimer with Options.Slots era slots per
// thread.
func NewHE(m Memory, o Options) *HE {
	o = o.withDefaults()
	s := &HE{base: newBase("he", m, o)}
	s.eras = make([][]hazSlot, o.Threads)
	for i := range s.eras {
		s.eras[i] = make([]hazSlot, o.Slots)
	}
	return s
}

// StartOp is a no-op; protection is per-slot.
func (s *HE) StartOp(tid int) { s.checkTid(tid) }

// EndOp clears all era slots.
func (s *HE) EndOp(tid int) {
	for i := range s.eras[tid] {
		s.eras[tid][i].v.Store(0)
	}
}

// RestartOp clears all era slots.
func (s *HE) RestartOp(tid int) { s.EndOp(tid) }

// Alloc allocates and stamps the birth era, advancing the global era every
// EpochFreq allocations (HE and IBR share this cadence).
func (s *HE) Alloc(tid int) mem.Handle { return s.allocEpochs(tid, s.Drain) }

// Retire stamps the retire era and appends to the retire list.
func (s *HE) Retire(tid int, h mem.Handle) { s.retire(tid, h, s.Drain) }

// Read implements the hazard-era protocol: if the current global era is
// already published in the slot, a pointer loaded now is protected;
// otherwise publish the era and retry. On the fast path (era unchanged
// since the last read through this slot) there is no store at all.
func (s *HE) Read(tid, idx int, p *Ptr) mem.Handle {
	slot := &s.eras[tid][idx]
	prev := slot.v.Load()
	for {
		h := mem.Handle(p.bits.Load())
		cur := s.clock.Now()
		if cur == prev {
			return h
		}
		slot.v.Store(cur) // publish; seq-cst, so the re-read validates
		prev = cur
	}
}

// ReadRoot is Read.
func (s *HE) ReadRoot(tid, idx int, p *Ptr) mem.Handle { return s.Read(tid, idx, p) }

// Write is an uninstrumented store (plus the traced-span publish hook).
func (s *HE) Write(tid int, p *Ptr, h mem.Handle) {
	p.setRaw(h)
	if s.obs != nil {
		s.publishSpan(tid, h)
	}
}

// CompareAndSwap is an uninstrumented CAS.
func (s *HE) CompareAndSwap(tid int, p *Ptr, old, new mem.Handle) bool {
	if p.bits.CompareAndSwap(uint64(old), uint64(new)) {
		if s.obs != nil {
			s.publishSpan(tid, new)
		}
		return true
	}
	return false
}

// Unreserve clears era slot idx.
func (s *HE) Unreserve(tid, idx int) { s.eras[tid][idx].v.Store(0) }

// Drain frees every retired block whose lifetime interval contains no
// reserved era. A reserved era e is the degenerate interval [e, e], so the
// scan reuses the interval summary: "some era in [birth, retire]" becomes
// "the largest era <= retire is >= birth", one binary search per block.
func (s *HE) Drain(tid int) {
	t0 := s.obs.PhaseStart()
	sum := &s.ts[tid].sum
	snap := sum.ivs[:0]
	for t := range s.eras {
		for i := range s.eras[t] {
			if v := s.eras[t][i].v.Load(); v != 0 {
				snap = append(snap, interval{v, v, int32(t)})
			}
		}
	}
	sum.build(snap)
	s.obs.PhaseEnd(obs.PhaseSummarize, t0)
	s.scanSummarized(tid, sum)
}

// Robust is true: a stalled thread reserves at most Slots eras, and each
// era can cover at most EpochFreq × Threads block births (Theorem 2's
// counting argument).
func (s *HE) Robust() bool { return true }
