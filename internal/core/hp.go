package core

import (
	"sort"
	"sync/atomic"

	"ibr/internal/mem"
)

// HP is Michael's hazard-pointer scheme (§2.3 of the IBR paper; Michael,
// TPDS 2004): before dereferencing a block, a thread publishes the block's
// address in one of its hazard slots, fences, and re-reads the source
// pointer to validate. A reclaimer frees a retired block only if no hazard
// slot holds its address.
//
// HP is robust (a stalled thread pins at most Slots blocks) but pays a
// sequentially-consistent store + re-load on *every* pointer read, and
// requires the data structure to manage slots explicitly (Unreserve) — the
// two costs IBR is designed to avoid.
type HP struct {
	base
	haz [][]hazSlot
}

type hazSlot struct {
	_ [64]byte
	v atomic.Uint64
	_ [56]byte
}

// NewHP builds a hazard-pointer reclaimer with Options.Slots slots per
// thread.
func NewHP(m Memory, o Options) *HP {
	o = o.withDefaults()
	s := &HP{base: newBase("hp", m, o)}
	s.haz = make([][]hazSlot, o.Threads)
	for i := range s.haz {
		s.haz[i] = make([]hazSlot, o.Slots)
	}
	return s
}

// StartOp is a no-op: HP has no per-operation reservation, only per-read
// hazards.
func (s *HP) StartOp(tid int) { s.checkTid(tid) }

// EndOp clears all of tid's hazard slots.
func (s *HP) EndOp(tid int) {
	for i := range s.haz[tid] {
		s.haz[tid][i].v.Store(0)
	}
}

// RestartOp clears all hazard slots; the operation will re-protect from the
// root.
func (s *HP) RestartOp(tid int) { s.EndOp(tid) }

// Alloc allocates a block; HP keeps no epochs.
func (s *HP) Alloc(tid int) mem.Handle { return s.allocPlain(tid, s.Drain) }

// Retire appends to the thread-local list and scans every EmptyFreq
// retirements.
func (s *HP) Retire(tid int, h mem.Handle) { s.retire(tid, h, s.Drain) }

// Read implements the hazard-pointer protocol: loop { load pointer; publish
// address; fence; re-load and validate }. Go's atomic store is sequentially
// consistent, providing the write-read fence of §2.3. Reading a nil pointer
// publishes nothing and leaves the slot untouched (stale over-protection is
// safe; precise slot management is the data structure's job via Unreserve).
func (s *HP) Read(tid, idx int, p *Ptr) mem.Handle {
	slot := &s.haz[tid][idx]
	for {
		h := mem.Handle(p.bits.Load())
		a := h.Addr()
		if a.IsNil() {
			return h
		}
		slot.v.Store(uint64(a)) // publish + implicit fence
		if mem.Handle(p.bits.Load()) == h {
			return h
		}
	}
}

// ReadRoot is Read.
func (s *HP) ReadRoot(tid, idx int, p *Ptr) mem.Handle { return s.Read(tid, idx, p) }

// Write is an uninstrumented store (plus the traced-span publish hook).
func (s *HP) Write(tid int, p *Ptr, h mem.Handle) {
	p.setRaw(h)
	if s.obs != nil {
		s.publishSpan(tid, h)
	}
}

// CompareAndSwap is an uninstrumented CAS.
func (s *HP) CompareAndSwap(tid int, p *Ptr, old, new mem.Handle) bool {
	if p.bits.CompareAndSwap(uint64(old), uint64(new)) {
		if s.obs != nil {
			s.publishSpan(tid, new)
		}
		return true
	}
	return false
}

// Unreserve clears hazard slot idx — the explicit "last use" annotation the
// paper's Fig. 1 lists as optional and IBR exists to remove.
func (s *HP) Unreserve(tid, idx int) { s.haz[tid][idx].v.Store(0) }

// Drain runs Michael's scan: snapshot all hazard slots, sort them, and free
// every retired block whose address is not present.
func (s *HP) Drain(tid int) {
	ts := &s.ts[tid]
	snap := ts.scratch[:0]
	for t := range s.haz {
		for i := range s.haz[t] {
			if v := s.haz[t][i].v.Load(); v != 0 {
				snap = append(snap, v)
			}
		}
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	ts.scratch = snap
	s.scan(tid, func(rb retiredBlock) bool {
		return !sortedContains(snap, uint64(rb.h.Addr()))
	})
}

// Robust is true: a stalled thread reserves at most Slots blocks.
func (s *HP) Robust() bool { return true }
