package core

import (
	"math/rand"
	"testing"

	"ibr/internal/mem"
)

// mkHandle fabricates distinct handles for store-level unit tests (the store
// never dereferences them).
func mkHandle(t *testing.T, pool *mem.Pool[tnode]) mem.Handle {
	t.Helper()
	h, ok := pool.Alloc(0)
	if !ok {
		t.Fatal("pool exhausted")
	}
	return h
}

// TestRetireStoreAddBuckets: add routes blocks to buckets by birth>>shift,
// keeps keys sorted, tracks exact birth bounds, and keeps retires ascending
// per bucket under a monotone clock.
func TestRetireStoreAddBuckets(t *testing.T) {
	pool := mem.New[tnode](mem.Options[tnode]{Threads: 1, MaxSlots: 256})
	var st retireStore
	const shift = 2 // 4-epoch buckets
	// Births hit buckets 0,1,3 out of order within an epoch but under a
	// monotone retire clock.
	births := []uint64{1, 2, 5, 6, 13, 0, 7}
	for i, b := range births {
		st.add(mkHandle(t, pool), b, uint64(10+i), shift)
	}
	if st.count != len(births) {
		t.Fatalf("count = %d, want %d", st.count, len(births))
	}
	wantKeys := []uint64{0, 1, 3}
	if len(st.buckets) != len(wantKeys) {
		t.Fatalf("got %d buckets, want %d", len(st.buckets), len(wantKeys))
	}
	for i, k := range wantKeys {
		if st.buckets[i].key != k {
			t.Fatalf("bucket %d key = %d, want %d", i, st.buckets[i].key, k)
		}
	}
	assertStoreInvariants(t, &st)
	if b0 := &st.buckets[0]; b0.birthLo != 0 || b0.birthHi != 2 {
		t.Fatalf("bucket 0 birth bounds [%d, %d], want [0, 2]", b0.birthLo, b0.birthHi)
	}
}

// TestRetireStoreAdoptMerges: adopting interleaves same-key buckets by
// retire epoch and moves distinct-key buckets wholesale; the source ends
// empty and the invariants hold.
func TestRetireStoreAdoptMerges(t *testing.T) {
	pool := mem.New[tnode](mem.Options[tnode]{Threads: 1, MaxSlots: 256})
	var a, b retireStore
	const shift = 3
	// Same-key bucket (births 0..7) with interleaved retires, plus a key
	// only a has (births 16..) and a key only b has (births 32..).
	a.add(mkHandle(t, pool), 1, 10, shift)
	a.add(mkHandle(t, pool), 2, 14, shift)
	a.add(mkHandle(t, pool), 17, 20, shift)
	b.add(mkHandle(t, pool), 3, 12, shift)
	b.add(mkHandle(t, pool), 4, 16, shift)
	b.add(mkHandle(t, pool), 33, 18, shift)

	moved := b.count
	if n := a.adopt(&b); n != moved {
		t.Fatalf("adopt moved %d, want %d", n, moved)
	}
	if b.count != 0 || len(b.buckets) != 0 {
		t.Fatalf("source not emptied: count=%d buckets=%d", b.count, len(b.buckets))
	}
	if a.count != 6 {
		t.Fatalf("adopter count = %d, want 6", a.count)
	}
	assertStoreInvariants(t, &a)
	// The merged key-0 bucket must interleave 10,12,14,16.
	got := a.buckets[0].retires
	want := []uint64{10, 12, 14, 16}
	if len(got) != len(want) {
		t.Fatalf("merged bucket has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged retires = %v, want %v", got, want)
		}
	}
}

// TestRetireStoreTakeAllSorted: takeAll drains everything sorted by retire
// epoch (Hyaline's seal order) and leaves the store reusable.
func TestRetireStoreTakeAllSorted(t *testing.T) {
	pool := mem.New[tnode](mem.Options[tnode]{Threads: 1, MaxSlots: 256})
	var st retireStore
	rng := rand.New(rand.NewSource(7))
	clock := uint64(0)
	for i := 0; i < 100; i++ {
		clock += uint64(rng.Intn(3))
		st.add(mkHandle(t, pool), clock, clock, defaultBucketShift)
	}
	out := st.takeAll()
	if len(out) != 100 || st.count != 0 || len(st.buckets) != 0 {
		t.Fatalf("takeAll returned %d (count=%d, buckets=%d), want 100/0/0",
			len(out), st.count, len(st.buckets))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].retire > out[i].retire {
			t.Fatalf("takeAll order violated at %d: %d > %d", i, out[i-1].retire, out[i].retire)
		}
	}
	// The store still accepts adds after a full drain.
	st.add(mkHandle(t, pool), 5, 5, defaultBucketShift)
	if st.count != 1 {
		t.Fatalf("count = %d after post-drain add, want 1", st.count)
	}
}

// TestStoreCompactionReleasesStallBacklog is the heap-retention regression
// test: a stalled reservation grows one thread's backlog to tens of
// thousands of blocks; once the stall clears and a drain frees the huge
// prefix, the store must not keep the stall-sized backing arrays pinned
// behind the few survivors (the old `retired = list[i:]` reslice did exactly
// that). EBR stamps no births, so everything lands in one bucket and the
// drain exercises the partial-free compaction path.
func TestStoreCompactionReleasesStallBacklog(t *testing.T) {
	_, s := quietScheme(t, "ebr", 2)
	clk := epochOf(s)

	const blocks = 40000
	for i := 0; i < blocks; i++ {
		h := s.Alloc(0)
		if h.IsNil() {
			t.Fatal("pool exhausted")
		}
		s.Retire(0, h)
		if i%16 == 0 {
			clk.Advance()
		}
	}
	st := s.(interface{ threadStore(int) *retireStore }).threadStore(0)
	grown := st.heldCap()
	if grown < blocks {
		t.Fatalf("backing capacity %d after %d retires; the scenario is vacuous", grown, blocks)
	}

	// A reader pins only the most recent epochs: the drain frees the huge
	// prefix and keeps a small tail.
	resOf(s).At(1).Set(clk.Now(), 1<<60)
	s.Drain(0)
	kept := s.Unreclaimed(0)
	if kept == 0 || kept > 64 {
		t.Fatalf("drain kept %d blocks, want a small pinned tail", kept)
	}
	if got := st.heldCap(); got >= grown/storeCompactFactor {
		t.Fatalf("store still pins %d entries of backing capacity for %d live blocks (was %d); compaction did not run",
			got, kept, grown)
	}

	// Full drain: with the whole bucket freed, the spare-array bound keeps
	// retained capacity at most storeCompactMin.
	resOf(s).At(1).Clear()
	clk.Advance()
	s.Drain(0)
	if got := s.Unreclaimed(0); got != 0 {
		t.Fatalf("%d blocks survive with no reservations", got)
	}
	if got := st.heldCap(); got > storeCompactMin {
		t.Fatalf("empty store pins %d entries of backing capacity, want <= %d", got, storeCompactMin)
	}
}

// TestEpochAdvanceOneSourcePerOp pins the unified cadence: per thread the
// clock advances exactly once per EpochFreq operations, whether the ops are
// alloc+retire pairs (alloc is the source; retire's fallback stays silent)
// or pure retirements (the fallback is the source). Before unification the
// interval schemes advanced twice per EpochFreq mixed ops.
func TestEpochAdvanceOneSourcePerOp(t *testing.T) {
	for _, name := range []string{"ebr", "poibr", "tagibr", "tagibr-wcas", "2geibr", "he", "debra"} {
		t.Run(name, func(t *testing.T) {
			pool := mem.New[tnode](mem.Options[tnode]{Threads: 1, MaxSlots: 1 << 10})
			s, err := New(name, pool, Options{Threads: 1, EpochFreq: 4, EmptyFreq: 1 << 30})
			if err != nil {
				t.Fatal(err)
			}
			clk := epochOf(s)

			// Phase 1: 8 alloc+retire pairs = 8 ops → exactly 2 advances.
			e0 := clk.Now()
			for i := 0; i < 8; i++ {
				h := s.Alloc(0)
				if h.IsNil() {
					t.Fatal("pool exhausted")
				}
				s.Retire(0, h)
			}
			if d := clk.Now() - e0; d != 2 {
				t.Fatalf("mixed phase advanced the epoch %d times over 8 ops (EpochFreq 4), want 2", d)
			}

			// Phase 2: pre-allocate, then 8 pure retirements → exactly 2
			// advances via the liveness fallback.
			hs := make([]mem.Handle, 8)
			for i := range hs {
				if hs[i] = s.Alloc(0); hs[i].IsNil() {
					t.Fatal("pool exhausted")
				}
			}
			e1 := clk.Now()
			for _, h := range hs {
				s.Retire(0, h)
			}
			if d := clk.Now() - e1; d != 2 {
				t.Fatalf("pure-retire phase advanced the epoch %d times over 8 retires (EpochFreq 4), want 2", d)
			}
		})
	}
}

// TestScanBucketedMatchesNaiveAcrossAdoption extends the scan differential
// test across the operations that restructure the store mid-stream: two
// threads churn concurrently-interleaved lifetimes, one thread's backlog is
// adopted by the other (bucket merges), one reservation is cleared on the
// stalled holder's behalf after the backlog was built (the quarantine path),
// and only then does the adopter drain. The bucketed scan must keep exactly
// the blocks the naive per-block conflict sweep predicts from the final
// reservation snapshot — adoption merges and reservation clears must change
// nothing about the freed set.
func TestScanBucketedMatchesNaiveAcrossAdoption(t *testing.T) {
	for _, name := range []string{"poibr", "tagibr", "tagibr-wcas", "2geibr"} {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				pool, s := quietScheme(t, name, 5)
				rng := rand.New(rand.NewSource(seed))
				clk := epochOf(s)

				// tids 2..4 pin reservations; tid 4's will be cleared before
				// the drain, so it must NOT count toward the prediction.
				var ivs []interval
				for tid := 2; tid <= 4; tid++ {
					lo := 1 + rng.Uint64()%150
					hi := lo + rng.Uint64()%80
					resOf(s).At(tid).Set(lo, hi)
					if tid != 4 {
						ivs = append(ivs, interval{lo, hi, 0})
					}
				}

				// tids 0 and 1 churn interleaved lifetimes.
				const blocks = 200
				for i := 0; i < blocks; i++ {
					tid := i % 2
					h := s.Alloc(tid)
					if h.IsNil() {
						t.Fatal("pool exhausted")
					}
					for n := rng.Intn(3); n > 0; n-- {
						clk.Advance()
					}
					s.Retire(tid, h)
					if rng.Intn(3) == 0 {
						clk.Advance()
					}
				}

				// Quarantine tid 0: adopt its backlog into tid 1, then clear
				// tid 4's reservation (drain-without-resume).
				AdoptRetired(s, 0, 1)
				if got := s.Unreclaimed(0); got != 0 {
					t.Fatalf("seed %d: source kept %d blocks after adoption", seed, got)
				}
				ClearReservation(s, 4)

				// Predict per block from the merged store's own records.
				st := s.(interface{ threadStore(int) *retireStore }).threadStore(1)
				assertStoreInvariants(t, st)
				wantKept := 0
				for _, blk := range st.snapshot() {
					if conflicts(ivs, blk.birth, blk.retire) {
						wantKept++
					}
				}

				s.Drain(1)
				if got := s.Unreclaimed(1); got != wantKept {
					t.Fatalf("seed %d: bucketed scan kept %d blocks, naive predicts %d (reservations %v)",
						seed, got, wantKept, ivs)
				}
				// Survivors must be exactly the predicted ones, not merely the
				// predicted number: every kept block still conflicts, per its
				// own birth/retire stamps.
				for _, blk := range st.snapshot() {
					if !conflicts(ivs, blk.birth, blk.retire) {
						t.Fatalf("seed %d: kept block birth=%d retire=%d conflicts with no reservation",
							seed, blk.birth, blk.retire)
					}
					if pool.State(blk.h) != mem.StateRetired {
						t.Fatalf("seed %d: kept block in state %v", seed, pool.State(blk.h))
					}
				}

				// Clear the rest: everything frees.
				for tid := 2; tid <= 3; tid++ {
					resOf(s).At(tid).Clear()
				}
				clk.Advance()
				s.Drain(1)
				if got := s.Unreclaimed(1); got != 0 {
					t.Fatalf("seed %d: %d blocks survive with no reservations", seed, got)
				}
			}
		})
	}
}
