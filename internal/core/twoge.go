package core

import "ibr/internal/mem"

// TwoGE is two-global-epochs IBR (Fig. 6, §3.3): TagIBR's interval
// reservation without any tag in (or near) the pointer. On each read the
// thread raises its upper endpoint to the *current global epoch* instead of
// the pointer's born-before value — a coarser bound (the target was alive
// now, hence born before now) that keeps pointers at native width and adds
// no write-side instrumentation at all.
//
// 2GEIBR trades precision for portability: its intervals grow faster than
// TagIBR's (every read under a new epoch widens them), but it needs no
// WCAS, no type-preserving allocator, and no extra CAS per write. The
// paper's results show it within noise of the other IBRs in time, with
// slightly larger space.
type TwoGE struct {
	base
}

// NewTwoGE builds a two-global-epochs IBR reclaimer.
func NewTwoGE(m Memory, o Options) *TwoGE {
	return &TwoGE{base: newBase("2geibr", m, o)}
}

// StartOp sets both endpoints to the current epoch.
func (s *TwoGE) StartOp(tid int) {
	e := s.clock.Now()
	s.res.At(tid).Set(e, e)
}

// EndOp withdraws the interval.
func (s *TwoGE) EndOp(tid int) { s.res.At(tid).Clear() }

// RestartOp renews the interval with a fresh start epoch (§4.3.1).
func (s *TwoGE) RestartOp(tid int) { s.StartOp(tid) }

// Alloc allocates, stamps the birth epoch, and advances the epoch every
// EpochFreq allocations (shared with TagIBR, Fig. 5 lines 30–36).
func (s *TwoGE) Alloc(tid int) mem.Handle { return s.allocEpochs(tid, s.Drain) }

// Retire stamps the retire epoch and appends to the retire list.
func (s *TwoGE) Retire(tid int, h mem.Handle) { s.retire(tid, h, s.Drain) }

// Read is the snapshot read of Fig. 6, in the publish-first form (see the
// package comment): if the current epoch is already covered by the
// published upper endpoint, a pointer loaded now points to a block born no
// later than that endpoint; otherwise raise the endpoint and retry. The
// fast path (epoch unchanged since the last read) performs no store.
func (s *TwoGE) Read(tid, idx int, p *Ptr) mem.Handle {
	r := s.res.At(tid)
	for {
		h := mem.Handle(p.bits.Load())
		e := s.clock.Now()
		if e <= r.Upper() {
			return h
		}
		r.SetUpper(e)
	}
}

// ReadRoot is Read.
func (s *TwoGE) ReadRoot(tid, idx int, p *Ptr) mem.Handle { return s.Read(tid, idx, p) }

// Write is an uninstrumented store (Fig. 6: "write and CAS same as in
// default (no instrumentation)"), plus the traced-span publish hook.
func (s *TwoGE) Write(tid int, p *Ptr, h mem.Handle) {
	p.setRaw(h)
	if s.obs != nil {
		s.publishSpan(tid, h)
	}
}

// CompareAndSwap is an uninstrumented CAS.
func (s *TwoGE) CompareAndSwap(tid int, p *Ptr, old, new mem.Handle) bool {
	if p.bits.CompareAndSwap(uint64(old), uint64(new)) {
		if s.obs != nil {
			s.publishSpan(tid, new)
		}
		return true
	}
	return false
}

// Drain runs empty() (shared with TagIBR): free every block whose lifetime
// intersects no reserved interval, via the per-scan reservation summary.
func (s *TwoGE) Drain(tid int) { s.scanIntervals(tid) }

// Robust is true (Theorem 2).
func (s *TwoGE) Robust() bool { return true }
