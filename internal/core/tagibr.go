package core

import "ibr/internal/mem"

// TagVariant selects one of the four TagIBR implementations of §3.2.
type TagVariant int

const (
	// TagCAS is the portable default of Fig. 5: a separate, monotonically
	// increasing born_before word per pointer, raised with compare-and-swap
	// before each write. Doubles pointer size; write/CAS are lock free.
	TagCAS TagVariant = iota
	// TagFAA raises born_before with fetch-and-add instead of CAS
	// (§3.2.1): wait-free writes, O(n) completion under contention, at the
	// cost of extra "slack" (over-approximated born_before) when racing.
	TagFAA
	// TagWCAS updates born_before and the pointer in one atomic word
	// (§3.2.1 "wide CAS"): normal-width here because the birth epoch is
	// packed into the handle's high 24 bits (DESIGN.md substitution #3).
	// Precise birth epochs, no slack, wait-free writes.
	TagWCAS
	// TagTPA stores no epoch in the pointer at all: the reader fetches the
	// birth epoch from the block header, which is safe because the
	// allocator is type-preserving (§3.2.1). No per-pointer space, no extra
	// CAS, wait-free writes.
	TagTPA
)

func (v TagVariant) String() string {
	switch v {
	case TagCAS:
		return "tagibr"
	case TagFAA:
		return "tagibr-faa"
	case TagWCAS:
		return "tagibr-wcas"
	case TagTPA:
		return "tagibr-tpa"
	}
	return "tagibr-?"
}

// TagIBR is tagged-pointer interval-based reclamation (Fig. 5, §3.2), the
// paper's general-purpose scheme: applicable to arbitrary nonblocking
// structures. Each thread reserves an epoch interval [lower, upper]; lower
// is pinned at start_op, and upper is raised on reads to cover the
// born-before tag of every pointer followed. A retired block is freed once
// no thread's interval intersects its [birth, retire] lifetime.
//
// Compared to hazard pointers, TagIBR needs no per-slot bookkeeping and no
// unreserve; compared to EBR, a stalled thread reserves only the blocks
// born up to its (frozen) upper endpoint — a bounded set (Theorem 2).
type TagIBR struct {
	base
	variant TagVariant
}

// NewTagIBR builds a TagIBR reclaimer of the given variant.
func NewTagIBR(m Memory, o Options, v TagVariant) *TagIBR {
	return &TagIBR{base: newBase(v.String(), m, o), variant: v}
}

// StartOp sets both interval endpoints to the current epoch (Fig. 5
// line 43).
func (s *TagIBR) StartOp(tid int) {
	e := s.clock.Now()
	s.res.At(tid).Set(e, e)
}

// EndOp withdraws the interval (Fig. 5 line 45).
func (s *TagIBR) EndOp(tid int) { s.res.At(tid).Clear() }

// RestartOp renews the interval with a fresh start epoch — the §4.3.1
// remedy that bounds the reservation of a starving thread.
func (s *TagIBR) RestartOp(tid int) { s.StartOp(tid) }

// Alloc allocates, stamps the birth epoch, and advances the epoch every
// EpochFreq allocations (Fig. 5 lines 30–36). Under TagWCAS it also checks
// that the epoch still fits the 24-bit packed field.
func (s *TagIBR) Alloc(tid int) mem.Handle {
	h := s.allocEpochs(tid, s.Drain)
	if s.variant == TagWCAS && !h.IsNil() {
		mem.CheckEpochRange(s.mem.Birth(h))
	}
	return h
}

// Retire stamps the retire epoch and appends to the retire list (Fig. 5
// lines 37–41).
func (s *TagIBR) Retire(tid int, h mem.Handle) { s.retire(tid, h, s.Drain) }

// birthOf returns the born-before value to install for a handle about to be
// written: its birth epoch, or 0 for nil (protects nothing).
func (s *TagIBR) birthOf(h mem.Handle) uint64 {
	if h.IsNil() {
		return 0
	}
	return s.mem.Birth(h)
}

// raiseBorn makes born_before(p) >= e, preserving monotonicity (Fig. 5
// protected_write/protected_CAS lines 7–9 and 12–14).
func (s *TagIBR) raiseBorn(p *Ptr, e uint64) {
	if s.variant == TagFAA {
		// FAA variant: add the difference; overshoot under races is
		// harmless slack (§3.2.1).
		if bb := p.born.Load(); e > bb {
			p.born.Add(e - bb)
		}
		return
	}
	for {
		bb := p.born.Load()
		if e <= bb || p.born.CompareAndSwap(bb, e) {
			return
		}
	}
}

// pack attaches the precise birth epoch to a handle's packed field (WCAS
// variant only). It is idempotent: re-packing a previously read value
// yields the same word, so data-structure equality tests stay meaningful.
func (s *TagIBR) pack(h mem.Handle) mem.Handle {
	if h.IsNil() {
		return h
	}
	return h.WithEpoch(s.mem.Birth(h))
}

// Read is the protected load. See the package comment for why the
// reservation is published before the load that is trusted, rather than
// after as in the literal Fig. 5 pseudocode.
func (s *TagIBR) Read(tid, idx int, p *Ptr) mem.Handle {
	r := s.res.At(tid)
	switch s.variant {
	case TagWCAS:
		// born_before rides in the same word as the pointer: one load is a
		// consistent snapshot.
		for {
			h := mem.Handle(p.bits.Load())
			if bb := h.Epoch(); bb <= r.Upper() {
				return h
			} else {
				r.SetUpper(bb)
			}
		}
	case TagTPA:
		// The tag lives in the block header. A handle may dangle between
		// the pointer load and the header read; the type-preserving
		// allocator makes that read well-defined, and the re-validation of
		// both the pointer and the birth field (the paper's "double-check")
		// rejects any block recycled meanwhile.
		for {
			h := mem.Handle(p.bits.Load())
			if h.IsNil() {
				return h
			}
			bb := s.mem.Birth(h.Addr())
			if bb <= r.Upper() {
				if mem.Handle(p.bits.Load()) == h && s.mem.Birth(h.Addr()) == bb {
					return h
				}
				continue
			}
			r.SetUpper(bb)
		}
	default: // TagCAS, TagFAA: separate born_before word
		for {
			h := mem.Handle(p.bits.Load())
			bb := p.born.Load() // >= birth of h's target (monotone, raised pre-store)
			if bb <= r.Upper() {
				return h
			}
			r.SetUpper(bb)
		}
	}
}

// ReadRoot is Read.
func (s *TagIBR) ReadRoot(tid, idx int, p *Ptr) mem.Handle { return s.Read(tid, idx, p) }

// Write is Fig. 5's protected_write: raise born_before, then store. Under
// WCAS the two updates are one store of the packed word.
func (s *TagIBR) Write(tid int, p *Ptr, h mem.Handle) {
	if s.variant == TagWCAS {
		p.setRaw(s.pack(h))
		if s.obs != nil {
			s.publishSpan(tid, h)
		}
		return
	}
	if s.variant != TagTPA {
		s.raiseBorn(p, s.birthOf(h))
	}
	p.setRaw(h)
	if s.obs != nil {
		s.publishSpan(tid, h)
	}
}

// CompareAndSwap is Fig. 5's protected_CAS: raise born_before for the new
// value, then CAS the pointer word. A failed pointer CAS after a successful
// raise leaves only harmless slack.
func (s *TagIBR) CompareAndSwap(tid int, p *Ptr, old, new mem.Handle) bool {
	var ok bool
	if s.variant == TagWCAS {
		ok = p.bits.CompareAndSwap(uint64(s.pack(old)), uint64(s.pack(new)))
	} else {
		if s.variant != TagTPA {
			s.raiseBorn(p, s.birthOf(new))
		}
		ok = p.bits.CompareAndSwap(uint64(old), uint64(new))
	}
	if ok && s.obs != nil {
		s.publishSpan(tid, new)
	}
	return ok
}

// Drain runs Fig. 5's empty(): free every block whose lifetime intersects
// no reserved interval, via the per-scan reservation summary.
func (s *TagIBR) Drain(tid int) { s.scanIntervals(tid) }

// Robust is true (Theorem 2): a stalled thread's frozen interval can cover
// only blocks born at or before its upper endpoint.
func (s *TagIBR) Robust() bool { return true }
