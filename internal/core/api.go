// Package core implements the memory-reclamation schemes evaluated in
// "Interval-Based Memory Reclamation" (Wen et al., PPoPP 2018): the paper's
// three IBR algorithms (POIBR, TagIBR with its FAA/WCAS/TPA variants, and
// 2GEIBR) plus the comparison schemes (NoMM, EBR, hazard pointers, hazard
// eras), and two post-paper engines: Hyaline's per-batch reference counting
// (hyaline.go) and a DEBRA+-style neutralization EBR (debra.go). All schemes
// implement the shared API of Fig. 1 of the paper.
//
// A scheme mediates every access to shared pointers (Ptr cells) of a data
// structure whose nodes live in a mem.Pool. Threads are identified by small
// integer ids; a given tid must be used by one goroutine at a time.
//
// # Deviation from the paper's Figs. 5 and 6
//
// The figures publish the upper reservation endpoint *after* loading the
// pointer and then return immediately. Between the load and the publish, a
// concurrent reclaimer can scan the thread's stale (small) interval, miss
// the conflict, and free the block just loaded — the same window hazard
// pointers close by re-reading the pointer after the fence. We therefore
// implement the read protocol the way the authors' artifact does: publish
// the candidate endpoint first, then re-read the pointer, returning only a
// value that was (re)loaded while the covering reservation was already
// visible. The loop is still lock free: it retries only when another thread
// raised born_before / the global epoch, i.e. when some thread made
// progress (Theorem 3's argument is unchanged).
package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"ibr/internal/epoch"
	"ibr/internal/mem"
	"ibr/internal/obs"
)

// Ptr is a shared mutable pointer cell ("block**" in Fig. 1). Data
// structures embed Ptr for every mutable link (list next, tree children,
// the root) and access it only through a Scheme.
//
// bits holds the mem.Handle (with the application's mark bits, and — under
// TagIBR-WCAS — the packed birth epoch). born is the monotonically
// increasing born_before tag of Fig. 5, used only by the portable and FAA
// TagIBR variants; it is the "doubles the size of pointers" cost the WCAS
// and TPA variants remove.
type Ptr struct {
	born atomic.Uint64
	bits atomic.Uint64
}

// Raw returns the current handle without any protection. It is safe only
// when the caller knows no reclamation can interfere (single-threaded
// setup, tests, NoMM) — exactly like dereferencing without a hazard in C.
func (p *Ptr) Raw() mem.Handle { return mem.Handle(p.bits.Load()) }

// setRaw stores without instrumentation; used by schemes and for
// single-threaded initialization via Scheme implementations.
func (p *Ptr) setRaw(h mem.Handle) { p.bits.Store(uint64(h)) }

// FetchOrMarks atomically ORs mark bits (mem.Mark0Bit/Mark1Bit) into the
// stored word and returns the previous value. Because the target address is
// unchanged, no scheme needs write-side instrumentation for it: TagIBR's
// born_before already covers the target, and WCAS's packed epoch rides
// along untouched. The Natarajan–Mittal tree uses it to flag and tag edges,
// mirroring the bitwise-OR instruction of that paper.
func (p *Ptr) FetchOrMarks(m uint64) mem.Handle {
	return mem.Handle(p.bits.Or(m & (mem.Mark0Bit | mem.Mark1Bit)))
}

// Memory is the allocator surface a Scheme needs: allocation, reclamation,
// and the birth/retire epoch fields of the block header. *mem.Pool[T]
// satisfies it for every T.
type Memory interface {
	Alloc(tid int) (mem.Handle, bool)
	Free(tid int, h mem.Handle)
	FreeBatch(tid int, hs []mem.Handle)
	Birth(h mem.Handle) uint64
	SetBirth(h mem.Handle, e uint64)
	RetireEpoch(h mem.Handle) uint64
	SetRetireEpoch(h mem.Handle, e uint64)
	MarkRetired(h mem.Handle)
}

// Scheme is the memory-management API of Fig. 1, extended with the thread
// id and protection-slot plumbing that the paper leaves implicit.
type Scheme interface {
	// Name returns the scheme's registry name, e.g. "tagibr-wcas".
	Name() string

	// StartOp marks the start of a data-structure operation (Fig. 1
	// start_op): the thread publishes its reservation.
	StartOp(tid int)

	// EndOp marks the end of the operation: the reservation is withdrawn
	// and, for pointer-based schemes, all protection slots are cleared.
	EndOp(tid int)

	// RestartOp renews the reservation mid-operation. Data structures call
	// it when they restart from the root after repeated CAS failures; per
	// §4.3.1 this bounds the memory a starving (but not stalled) thread can
	// reserve. The caller must hold no node references across the call.
	RestartOp(tid int)

	// Alloc allocates a block and stamps its birth epoch, advancing the
	// global epoch every EpochFreq allocations (Figs. 4/5 alloc). It
	// returns Nil only if the pool is exhausted even after a forced scan.
	Alloc(tid int) mem.Handle

	// Retire hands a detached block to the reclamation system (Fig. 1
	// retire). The block must already be unreachable from the structure's
	// shared pointers. Every EmptyFreq retirements the thread scans its
	// retire list and frees every block no longer protected.
	Retire(tid int, h mem.Handle)

	// Read performs a protected pointer load (Fig. 1 read). idx names the
	// per-thread protection slot for HP/HE (0 <= idx < Options.Slots);
	// epoch- and interval-based schemes ignore it. The returned handle
	// carries the application mark bits of the stored value.
	Read(tid, idx int, p *Ptr) mem.Handle

	// ReadRoot is Read for a data structure's root pointer. POIBR overrides
	// it with the snapshot read of Fig. 4 (its only protected read); every
	// other scheme treats it as Read.
	ReadRoot(tid, idx int, p *Ptr) mem.Handle

	// Write performs a shared pointer store (Fig. 1 write). TagIBR
	// variants first raise the pointer's born_before tag.
	Write(tid int, p *Ptr, h mem.Handle)

	// CompareAndSwap conditionally updates a shared pointer (Fig. 1 CAS).
	CompareAndSwap(tid int, p *Ptr, old, new mem.Handle) bool

	// Unreserve releases protection slot idx (Fig. 1 unreserve). Only
	// HP and HE need it; it is a no-op elsewhere — the headline usability
	// win of interval-based reclamation.
	Unreserve(tid, idx int)

	// TransferSlot copies the protection in slot from to slot to (both
	// owned by tid). HP/HE use it when a traversal's node roles shift
	// (e.g. the Natarajan–Mittal seek promoting leaf to parent): the node
	// stays continuously protected, so no re-validation is needed. A no-op
	// for every other scheme — more per-read bookkeeping that IBR avoids.
	TransferSlot(tid, from, to int)

	// Drain forces a scan of tid's retire list regardless of EmptyFreq.
	Drain(tid int)

	// Unreclaimed returns the number of blocks tid has retired but not yet
	// reclaimed — the space metric of Fig. 9.
	Unreclaimed(tid int) int

	// Robust reports whether a stalled thread can block only a bounded
	// number of reclamations under this scheme (Fig. 7 summary).
	Robust() bool
}

// Options tunes a scheme; zero values select the paper's settings.
type Options struct {
	// Threads is the number of thread ids. Required.
	Threads int
	// EpochFreq: advance the global epoch every EpochFreq allocations by a
	// thread (paper §5 uses n×k total with k=150, i.e. each thread
	// advances every 150 of its own allocations). Default 150.
	EpochFreq int
	// EmptyFreq: scan the retire list every EmptyFreq retirements
	// (paper §5: k=30). Default 30.
	EmptyFreq int
	// Slots is the number of protection slots per thread for HP/HE.
	// Default 8 (enough for every structure here except the Bonsai tree,
	// which pointer-based schemes cannot run; see §5 of the paper).
	Slots int
	// Obs, when non-nil, receives SMR lifecycle hooks (alloc, retire,
	// scan, free ages, epoch advances) for the flight recorder and the
	// reclamation histograms. Nil disables observability: every hook site
	// degrades to one nil check. The observer must be sized for Threads.
	Obs *obs.SchemeObs
}

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		panic("core: Options.Threads must be positive")
	}
	if o.EpochFreq <= 0 {
		o.EpochFreq = 150
	}
	if o.EmptyFreq <= 0 {
		o.EmptyFreq = 30
	}
	if o.Slots <= 0 {
		o.Slots = 8
	}
	return o
}

// retiredBlock caches the lifetime interval so scans do not touch block
// headers (which may be on remote cache lines).
type retiredBlock struct {
	h             mem.Handle
	birth, retire uint64
}

// threadState is per-thread bookkeeping, cache-line padded.
type threadState struct {
	_           [64]byte
	allocCount  uint64
	retireCount uint64
	allocFailed bool // last Alloc returned Nil for pool exhaustion
	retired     []retiredBlock
	unreclaimed atomic.Int64 // len(retired), readable by samplers
	scratch     []uint64      // scan scratch (HP address / HE era snapshot)
	sum         resSummary    // scan scratch (reservation summary)
	freeScratch []mem.Handle  // scan scratch (blocks to free in one batch)
	scans       atomic.Uint64 // retire-list scans executed
	scanned     atomic.Uint64 // retired blocks examined across all scans
	freed       atomic.Uint64 // blocks reclaimed by scans
	_           [64]byte
}

// base carries the machinery shared by every scheme: the global clock, the
// reservation table, per-thread retire lists, and the alloc/retire cadence
// of Figs. 2, 4 and 5.
type base struct {
	name  string
	mem   Memory
	clock *epoch.Clock
	res   *epoch.Table
	opts  Options
	obs   *obs.SchemeObs // nil when observability is off (hooks nil-check)
	ts    []threadState
}

func newBase(name string, m Memory, o Options) base {
	o = o.withDefaults()
	return base{
		name:  name,
		mem:   m,
		clock: epoch.NewClock(),
		res:   epoch.NewTable(o.Threads),
		opts:  o,
		obs:   o.Obs,
		ts:    make([]threadState, o.Threads),
	}
}

func (b *base) Name() string            { return b.name }
func (b *base) Unreclaimed(tid int) int { return int(b.ts[tid].unreclaimed.Load()) }

// TakeAllocFailed reports whether tid's most recent Scheme.Alloc returned
// Nil because the pool was exhausted, clearing the flag. It distinguishes
// "the structure op failed because the key was there" from "the op failed
// because no node could be allocated" — ds operations collapse both into a
// false return, and the serving layer must answer BUSY (overload) for the
// latter, never EXISTS. Like Alloc itself, it may only be called by the
// goroutine owning tid.
func (b *base) TakeAllocFailed(tid int) bool {
	ts := &b.ts[tid]
	f := ts.allocFailed
	ts.allocFailed = false
	return f
}

// AllocFailed invokes TakeAllocFailed on schemes that track exhaustion
// (every registered scheme does, via base).
func AllocFailed(s Scheme, tid int) bool {
	if a, ok := s.(interface{ TakeAllocFailed(int) bool }); ok {
		return a.TakeAllocFailed(tid)
	}
	return false
}
func (b *base) Unreserve(tid, idx int)  {}
func (b *base) checkTid(tid int)        { _ = &b.ts[tid] }

// Clock exposes the scheme's epoch clock (tests and diagnostics).
func (b *base) Clock() *epoch.Clock { return b.clock }

// ScanStats aggregates reclamation-scan work across threads. Scanned/Scans
// is the mean number of blocks *examined* per scan: the per-retirement
// overhead that lands on the critical path when no spare cores absorb it
// (see EXPERIMENTS.md on the single-CPU throughput inversion). With the
// summarized scans this can be far below the retire-list length — runs of
// still-protected blocks are skipped wholesale and EBR's scan stops at the
// first unreclaimable block — which is exactly the improvement the counters
// exist to surface. Callers should read it at quiescence.
type ScanStats struct {
	Scans   uint64 // empty() executions
	Scanned uint64 // retired blocks examined (conflict tests actually run)
	Freed   uint64 // blocks reclaimed
}

// MeanListLen returns the average number of blocks examined per scan.
// (The name predates the summarized scans, under which examined ≤ list
// length; it is kept for CSV/JSON column stability.)
func (s ScanStats) MeanListLen() float64 {
	if s.Scans == 0 {
		return 0
	}
	return float64(s.Scanned) / float64(s.Scans)
}

// ExaminedPerFreed returns the mean number of blocks examined per block
// reclaimed — the scan efficiency metric of BENCH_scan.json.
func (s ScanStats) ExaminedPerFreed() float64 {
	if s.Freed == 0 {
		return 0
	}
	return float64(s.Scanned) / float64(s.Freed)
}

// ScanStats sums the per-thread scan counters.
func (b *base) ScanStats() ScanStats {
	var out ScanStats
	for i := range b.ts {
		out.Scans += b.ts[i].scans.Load()
		out.Scanned += b.ts[i].scanned.Load()
		out.Freed += b.ts[i].freed.Load()
	}
	return out
}

// Reservations exposes the reservation table (tests and diagnostics).
func (b *base) Reservations() *epoch.Table { return b.res }

// allocEpochs implements the alloc cadence of Figs. 4/5: bump the counter,
// advance the epoch every EpochFreq allocations, allocate, stamp the birth
// epoch. Used by every scheme that tags births (all but EBR, HP, NoMM).
func (b *base) allocEpochs(tid int, drain func(int)) mem.Handle {
	ts := &b.ts[tid]
	ts.allocFailed = false
	ts.allocCount++
	if ts.allocCount%uint64(b.opts.EpochFreq) == 0 {
		e := b.clock.Advance()
		b.obs.EpochAdvance(tid, e)
	}
	h, ok := b.mem.Alloc(tid)
	if !ok {
		// Last resort: reclaim our own garbage, then retry once.
		drain(tid)
		if h, ok = b.mem.Alloc(tid); !ok {
			ts.allocFailed = true
			return mem.Nil
		}
	}
	birth := b.clock.Now()
	b.mem.SetBirth(h, birth)
	b.obs.Alloc(tid, birth)
	return h
}

// allocPlain allocates without epoch stamping (EBR, DEBRA, Hyaline, HP,
// NoMM).
//
//ibrlint:ignore non-interval schemes: EBR, DEBRA, Hyaline, HP and NoMM never read birth epochs, so stamping is dead work (DEBRA and Hyaline stamp only retire epochs, in retire)
func (b *base) allocPlain(tid int, drain func(int)) mem.Handle {
	ts := &b.ts[tid]
	ts.allocFailed = false
	h, ok := b.mem.Alloc(tid)
	if !ok {
		if drain != nil {
			drain(tid)
		}
		if h, ok = b.mem.Alloc(tid); !ok {
			ts.allocFailed = true
			return mem.Nil
		}
	}
	b.obs.Alloc(tid, 0)
	return h
}

// retire implements the retire cadence shared by Figs. 2/4/5: stamp the
// retire epoch, append to the thread-local list, scan every EmptyFreq
// retirements via the scheme-specific drain.
//
// It also advances the global epoch every EpochFreq retirements. For EBR
// this IS the paper's cadence (Fig. 2 lines 15–17). For the epoch-tagging
// schemes it is a liveness addition beyond the paper, which advances only
// in alloc (§3): a retire-heavy phase (e.g. draining a structure) performs
// no allocations, so the epoch would freeze, every retired block's
// interval would touch the current epoch, and nothing would ever be
// reclaimed until some future allocation. Advancing on retirement cannot
// weaken Theorem 2's robustness bound — it only reduces the number of
// births per epoch.
func (b *base) retire(tid int, h mem.Handle, drain func(int)) {
	if h.IsNil() {
		panic("core: retire of nil handle")
	}
	h = h.Addr()
	ts := &b.ts[tid]
	e := b.clock.Now()
	b.mem.SetRetireEpoch(h, e)
	b.mem.MarkRetired(h)
	ts.retired = append(ts.retired, retiredBlock{h: h, birth: b.mem.Birth(h), retire: e})
	ts.unreclaimed.Store(int64(len(ts.retired)))
	b.obs.Retire(tid, e, len(ts.retired))
	ts.retireCount++
	if ts.retireCount%uint64(b.opts.EpochFreq) == 0 {
		ne := b.clock.Advance()
		b.obs.EpochAdvance(tid, ne)
	}
	if ts.retireCount%uint64(b.opts.EmptyFreq) == 0 {
		drain(tid)
	}
}

// scan walks tid's retire list, freeing every block for which canFree
// returns true; it is the skeleton of the pointer-based empty() (HP). The
// epoch and interval schemes use the cheaper scanRetiredBefore /
// scanSummarized below. Freed blocks are returned to the allocator in one
// batch at the end of the walk.
func (b *base) scan(tid int, canFree func(retiredBlock) bool) {
	ts := &b.ts[tid]
	t0 := b.obs.ScanStart(tid, b.clock.Now())
	ts.scans.Add(1)
	examined := uint64(len(ts.retired))
	ts.scanned.Add(examined)
	kept := ts.retired[:0]
	free := ts.freeScratch[:0]
	for _, rb := range ts.retired {
		if canFree(rb) {
			free = append(free, rb.h)
		} else {
			kept = append(kept, rb)
		}
	}
	// Zero the tail so freed entries do not linger in the backing array.
	for i := len(kept); i < len(ts.retired); i++ {
		ts.retired[i] = retiredBlock{}
	}
	ts.retired = kept
	ts.freeScratch = free
	b.finishScan(tid, free, examined, t0)
}

// finishScan frees the collected batch and settles the counters. examined
// and t0 feed the scan-end observability hook (t0 from the matching
// ScanStart; both are dead values when b.obs is nil).
func (b *base) finishScan(tid int, free []mem.Handle, examined uint64, t0 uint64) {
	ts := &b.ts[tid]
	ts.freed.Add(uint64(len(free)))
	ts.unreclaimed.Store(int64(len(ts.retired)))
	if b.obs.Enabled() {
		// Record each reclaimed block's retire→free age in epochs — the
		// live distribution behind Fig. 9's unreclaimed growth. The retire
		// epochs must be read before FreeBatch recycles the slots; ages are
		// bucketed locally and flushed once so the per-block cost is a load
		// and an increment, not an atomic RMW.
		now := b.clock.Now()
		var ages obs.BucketCounts
		var sum uint64
		for _, h := range free {
			age := now - b.mem.RetireEpoch(h)
			ages[obs.BucketOf(age)]++
			sum += age
		}
		b.obs.FreeAgeBatch(&ages, sum)
		b.obs.ScanEnd(tid, t0, int(examined), len(free))
	}
	if len(free) > 0 {
		b.mem.FreeBatch(tid, free)
	}
}

// scanRetiredBefore is EBR's empty(): free every block retired strictly
// before maxSafe. Because a thread's retire list is appended in retire-epoch
// order (the global clock is monotone), the freeable blocks form a prefix —
// the scan frees that prefix and stops at the first kept block instead of
// re-walking the whole backlog, so a scan's cost is O(freed+1) no matter
// how large a stalled reservation has let the list grow.
func (b *base) scanRetiredBefore(tid int, maxSafe uint64) {
	ts := &b.ts[tid]
	t0 := b.obs.ScanStart(tid, b.clock.Now())
	ts.scans.Add(1)
	list := ts.retired
	free := ts.freeScratch[:0]
	i := 0
	for i < len(list) && list[i].retire < maxSafe {
		free = append(free, list[i].h)
		list[i] = retiredBlock{}
		i++
	}
	examined := uint64(i)
	if i < len(list) {
		examined++ // the first kept block was examined too
	}
	ts.scanned.Add(examined)
	// Advance the slice instead of copying the kept suffix down: the dead
	// prefix is dropped when the slice next grows past its capacity, and a
	// scan's cost stays proportional to what it freed, not what it kept.
	ts.retired = list[i:]
	ts.freeScratch = free
	b.finishScan(tid, free, examined, t0)
}

// interval is one reserved epoch range [lo, hi]. The conflict test of
// Fig. 5 line 26: a block is protected iff some interval satisfies
// birth <= hi && retire >= lo. The snapshot is taken once per scan; each
// interval was published by its thread, and any thread that read a pointer
// to a scanned block before its retirement had already published a covering
// interval, so a snapshot sees it.
type interval struct{ lo, hi uint64 }

func (b *base) snapshotIntervals(buf []interval) []interval {
	buf = buf[:0]
	for i := 0; i < b.res.Len(); i++ {
		r := b.res.At(i)
		lo, hi := r.Lower(), r.Upper()
		if lo == epoch.None && hi == epoch.None {
			continue
		}
		buf = append(buf, interval{lo, hi})
	}
	return buf
}

// conflicts is the naive conflict test: a linear sweep over the snapshot
// per block, O(|reservations|) each. It is the reference the summarized
// test is checked against (props tests) — scans use resSummary instead.
func conflicts(ivs []interval, birth, retire uint64) bool {
	for _, iv := range ivs {
		if birth <= iv.hi && retire >= iv.lo {
			return true
		}
	}
	return false
}

// resSummary is a per-scan digest of the reservation intervals that turns
// the naive O(|reservations|) per-block conflict sweep into O(1) for the
// common cases and O(log |reservations|) in general:
//
//   - ivs sorted by lower endpoint with prefHi[i] = max(ivs[..i].hi) makes
//     "∃ interval: birth <= hi && retire >= lo" equivalent to "among the
//     intervals with lo <= retire (a sorted prefix, found by binary
//     search), the max upper endpoint is >= birth".
//   - minLower (= ivs[0].lo) gives the one-comparison fast path: a block
//     with retire < minLower predates every reservation and is free.
//   - [winLo, winHi] is the protected window of the interval with the
//     largest upper endpoint (smallest such lo on ties): any block whose
//     retire epoch falls inside it conflicts regardless of birth (birth <=
//     retire <= winHi and retire >= winLo), so a run of consecutive blocks
//     retired inside the window is kept wholesale without per-block tests.
type resSummary struct {
	ivs      []interval
	prefHi   []uint64
	minLower uint64 // epoch.None when no reservation is published
	winLo    uint64 // protected window; winLo > winHi when empty
	winHi    uint64
}

// build digests the snapshot (the slice is retained and re-sorted in
// place).
func (s *resSummary) build(ivs []interval) {
	s.ivs = ivs
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	s.prefHi = s.prefHi[:0]
	maxHi := uint64(0)
	for _, iv := range ivs {
		if iv.hi > maxHi {
			maxHi = iv.hi
		}
		s.prefHi = append(s.prefHi, maxHi)
	}
	s.minLower = epoch.None
	s.winLo, s.winHi = 1, 0 // empty window
	if len(ivs) == 0 {
		return
	}
	s.minLower = ivs[0].lo
	s.winHi = maxHi
	for _, iv := range ivs { // smallest lo among intervals reaching maxHi
		if iv.hi == maxHi {
			s.winLo = iv.lo
			break
		}
	}
}

// conflicts is the summarized form of the Fig. 5 conflict test; it returns
// exactly what conflicts(ivs, birth, retire) returns on the same snapshot
// (the differential property test in scan_test.go proves the equivalence).
func (s *resSummary) conflicts(birth, retire uint64) bool {
	if retire < s.minLower {
		return false
	}
	// Largest prefix of intervals with lo <= retire.
	j := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].lo > retire })
	return j > 0 && s.prefHi[j-1] >= birth
}

// summarize snapshots the reservation table into tid's summary scratch.
func (b *base) summarize(tid int) *resSummary {
	sum := &b.ts[tid].sum
	sum.build(b.snapshotIntervals(sum.ivs))
	return sum
}

// scanSummarized is the interval schemes' and HE's empty(): one summary per
// scan, then a single pass over the retire list. The list is appended in
// retire-epoch order, so the prefix of intervals with lo <= retire only
// grows along the walk — the binary search degrades to an amortized-O(1)
// merge pointer — and runs of blocks retired inside the protected window
// are kept in one jump without examining them.
func (b *base) scanSummarized(tid int, sum *resSummary) {
	ts := &b.ts[tid]
	t0 := b.obs.ScanStart(tid, b.clock.Now())
	ts.scans.Add(1)
	list := ts.retired
	kept := list[:0]
	free := ts.freeScratch[:0]
	examined := uint64(0)
	j := 0                  // #intervals with lo <= current block's retire
	prevRetire := uint64(0) // monotonicity guard for the merge pointer
	for i := 0; i < len(list); i++ {
		rb := list[i]
		examined++
		if rb.retire < sum.minLower {
			// Fast path: retired before every reservation began.
			free = append(free, rb.h)
			continue
		}
		if sum.winLo <= rb.retire && rb.retire <= sum.winHi {
			// Protected-window run: every consecutive block retired at
			// or before winHi is kept without a per-block conflict test.
			end := i + sort.Search(len(list)-i, func(k int) bool {
				return list[i+k].retire > sum.winHi
			})
			prevRetire = list[end-1].retire
			if len(kept) == i {
				// Nothing freed ahead of the run: it is already in place,
				// so a fully pinned backlog costs one binary search, not a
				// backlog-sized memmove.
				kept = list[:end]
			} else {
				kept = append(kept, list[i:end]...)
			}
			i = end - 1
			j = sort.Search(len(sum.ivs), func(k int) bool { return sum.ivs[k].lo > prevRetire })
			continue
		}
		if rb.retire < prevRetire {
			// Defensive: retire order violated (cannot happen under a
			// monotone clock) — fall back to a fresh binary search.
			j = sort.Search(len(sum.ivs), func(k int) bool { return sum.ivs[k].lo > rb.retire })
		} else {
			for j < len(sum.ivs) && sum.ivs[j].lo <= rb.retire {
				j++
			}
		}
		prevRetire = rb.retire
		if j > 0 && sum.prefHi[j-1] >= rb.birth {
			kept = append(kept, rb)
		} else {
			free = append(free, rb.h)
		}
	}
	ts.scanned.Add(examined)
	for i := len(kept); i < len(list); i++ {
		list[i] = retiredBlock{}
	}
	ts.retired = kept
	ts.freeScratch = free
	b.finishScan(tid, free, examined, t0)
}

// scanIntervals is the shared empty() of POIBR, TagIBR and 2GEIBR: digest
// the reservation table once, then scan against the summary.
func (b *base) scanIntervals(tid int) {
	b.scanSummarized(tid, b.summarize(tid))
}

// sortedContains reports whether x occurs in the sorted slice s.
func sortedContains(s []uint64, x uint64) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// TotalUnreclaimed sums Unreclaimed over all threads.
func TotalUnreclaimed(s Scheme, threads int) int {
	total := 0
	for tid := 0; tid < threads; tid++ {
		total += s.Unreclaimed(tid)
	}
	return total
}

// DrainAll forces a scan on every thread id; used at shutdown and in tests.
// It must be called only when no operations are in flight.
func DrainAll(s Scheme, threads int) {
	for tid := 0; tid < threads; tid++ {
		s.Drain(tid)
	}
}

// canonicalName resolves the accepted aliases ("nomm", "epoch", "2ge") to
// their registry names; unknown strings pass through unchanged.
func canonicalName(name string) string {
	switch name {
	case "nomm":
		return "none"
	case "epoch":
		return "ebr"
	case "2ge":
		return "2geibr"
	}
	return name
}

// schemeEntry couples one registry name with its constructor. The registry
// table below is the single source of truth behind New, Names, Schemes and
// IsScheme, so registering a scheme in one place registers it everywhere —
// the previous hand-duplicated Names/Schemes lists could silently disagree.
type schemeEntry struct {
	name string
	ctor func(Memory, Options) Scheme
}

// registry lists every scheme in the order the paper's plots use (NoMM
// first, then the baselines, then the IBR family), followed by the
// post-paper engines (Hyaline, neutralization EBR).
var registry = []schemeEntry{
	{"none", func(m Memory, o Options) Scheme { return NewNoMM(m, o) }},
	{"ebr", func(m Memory, o Options) Scheme { return NewEBR(m, o) }},
	{"hp", func(m Memory, o Options) Scheme { return NewHP(m, o) }},
	{"he", func(m Memory, o Options) Scheme { return NewHE(m, o) }},
	{"poibr", func(m Memory, o Options) Scheme { return NewPOIBR(m, o) }},
	{"tagibr", func(m Memory, o Options) Scheme { return NewTagIBR(m, o, TagCAS) }},
	{"tagibr-faa", func(m Memory, o Options) Scheme { return NewTagIBR(m, o, TagFAA) }},
	{"tagibr-wcas", func(m Memory, o Options) Scheme { return NewTagIBR(m, o, TagWCAS) }},
	{"tagibr-tpa", func(m Memory, o Options) Scheme { return NewTagIBR(m, o, TagTPA) }},
	{"2geibr", func(m Memory, o Options) Scheme { return NewTwoGE(m, o) }},
	{"hyaline", func(m Memory, o Options) Scheme { return NewHyaline(m, o) }},
	{"debra", func(m Memory, o Options) Scheme { return NewDEBRA(m, o) }},
}

// New constructs a scheme by registry name over the given Memory.
// Names: "none", "ebr", "hp", "he", "poibr", "tagibr", "tagibr-faa",
// "tagibr-wcas", "tagibr-tpa", "2geibr", "hyaline", "debra"
// (aliases: "nomm", "epoch", "2ge").
func New(name string, m Memory, o Options) (Scheme, error) {
	c := canonicalName(name)
	for _, e := range registry {
		if e.name == c {
			return e.ctor(m, o), nil
		}
	}
	return nil, fmt.Errorf("core: unknown scheme %q", name)
}

// Names lists every registered scheme name in the order the paper's plots
// use (NoMM first, then the baselines, then the IBR family, then the
// post-paper engines). It is derived from the registry table, so it cannot
// drift from New or Schemes.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// Schemes returns the registered scheme names sorted lexically — the form
// command-line tools print when rejecting an unknown -d flag. Same set as
// Names, same table.
func Schemes() []string {
	out := Names()
	sort.Strings(out)
	return out
}

// IsScheme reports whether name (or one of its aliases) is a registered
// scheme, without constructing one.
func IsScheme(name string) bool {
	c := canonicalName(name)
	for _, e := range registry {
		if e.name == c {
			return true
		}
	}
	return false
}
